(* dudect harness: it must flag a deliberately leaky function and pass a
   constant-cost one — the paper's Sec. 5.2 validation, on op counts. *)

module Dudect = Ctg_ctcheck.Dudect

let config = { Dudect.default_config with measurements = 8_000 }

let tests =
  [
    Alcotest.test_case "constant function is not flagged" `Quick (fun () ->
        let r = Dudect.test_ops ~config (fun _ -> 42) in
        Alcotest.(check bool) "no leak" false r.Dudect.leaky;
        Alcotest.(check bool) "t small" true (abs_float r.Dudect.t_statistic < 4.5));
    Alcotest.test_case "class-dependent cost is flagged" `Quick (fun () ->
        let rng = Ctg_prng.Splitmix64.create 7L in
        let f = function
          | Dudect.Fix -> 100 + Ctg_prng.Splitmix64.next_int rng 5
          | Dudect.Random -> 103 + Ctg_prng.Splitmix64.next_int rng 5
        in
        let r = Dudect.test_ops ~config f in
        Alcotest.(check bool) "leak" true r.Dudect.leaky);
    Alcotest.test_case "noisy but identical cost passes" `Quick (fun () ->
        let rng = Ctg_prng.Splitmix64.create 8L in
        let f _ = Ctg_prng.Splitmix64.next_int rng 1000 in
        let r = Dudect.test_ops ~config f in
        Alcotest.(check bool) "no leak" false r.Dudect.leaky);
    Alcotest.test_case "report fields are populated" `Quick (fun () ->
        let r = Dudect.test_ops ~config (fun _ -> 5) in
        Alcotest.(check bool) "samples" true (r.Dudect.samples_per_class > 1000);
        Alcotest.(check (float 1e-9)) "mean fix" 5.0 r.Dudect.mean_fix;
        Alcotest.(check (float 1e-9)) "mean random" 5.0 r.Dudect.mean_random);
    Alcotest.test_case "bitsliced sampler op-trace is constant" `Quick
      (fun () ->
        (* The real deal: fix class = all-zero input bits, random class =
           fresh random bits; the compiled program's work is the same. *)
        let s = Ctgauss.Sampler.create ~sigma:"2" ~precision:24 ~tail_cut:13 () in
        let p = Ctgauss.Sampler.program s in
        let rng = Ctg_prng.Splitmix64.create 9L in
        let gates = Ctgauss.Gate.gate_count p in
        let f clazz =
          let bits =
            match clazz with
            | Dudect.Fix -> Array.make 24 false
            | Dudect.Random ->
              Array.init 24 (fun _ -> Ctg_prng.Splitmix64.next_int rng 2 = 1)
          in
          ignore (Ctgauss.Sampler.eval_bits s bits);
          gates (* every call executes every gate *)
        in
        let r = Dudect.test_ops ~config:{ config with measurements = 2_000 } f in
        Alcotest.(check bool) "constant" false r.Dudect.leaky);
    Alcotest.test_case "byte-scan CDT op-trace leaks" `Quick (fun () ->
        let m = Ctg_kyao.Matrix.create ~sigma:"2" ~precision:24 ~tail_cut:13 in
        let table = Ctg_samplers.Cdt_table.of_matrix m in
        let inst = Ctg_samplers.Cdt_samplers.byte_scan table in
        (* Fix class: PRNG rigged to emit zero bytes => draw 0 => one
           compare; random class: true uniform draws. *)
        let zero = Ctg_prng.Bitstream.of_bits (Array.make 2_000_000 false) in
        let rnd = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "leak") in
        let f clazz =
          let bs = match clazz with Dudect.Fix -> zero | Dudect.Random -> rnd in
          snd (inst.Ctg_samplers.Sampler_sig.sample_traced bs)
        in
        let r = Dudect.test_ops ~config:{ config with measurements = 2_000 } f in
        Alcotest.(check bool) "leaky" true r.Dudect.leaky);
    Alcotest.test_case "linear CT CDT op-trace does not leak" `Quick (fun () ->
        let m = Ctg_kyao.Matrix.create ~sigma:"2" ~precision:24 ~tail_cut:13 in
        let table = Ctg_samplers.Cdt_table.of_matrix m in
        let inst = Ctg_samplers.Cdt_samplers.linear_ct table in
        let zero = Ctg_prng.Bitstream.of_bits (Array.make 2_000_000 false) in
        let rnd = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "ct") in
        let f clazz =
          let bs = match clazz with Dudect.Fix -> zero | Dudect.Random -> rnd in
          snd (inst.Ctg_samplers.Sampler_sig.sample_traced bs)
        in
        let r = Dudect.test_ops ~config:{ config with measurements = 2_000 } f in
        Alcotest.(check bool) "constant" false r.Dudect.leaky);
  ]

let () = Alcotest.run "ctcheck" [ ("dudect", tests) ]
