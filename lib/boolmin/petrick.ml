let max_products = ref 4_000

(* Products of the POS expansion are bitmasks over prime indices; the
   method is only attempted when there are at most 62 candidate primes.
   Absorption is quadratic, so the expansion loop bails out on a
   too-large product list *before* calling this — and the budget default
   is sized so one absorb pass stays in the millions of subset tests
   (sigma=215 windows used to spend minutes here at the old 20k). *)
let absorb products =
  let arr = Array.of_list products in
  (* An absorber is a subset of what it absorbs, so it has no more set
     bits: after sorting by popcount only the j > i direction can be
     absorbed, halving the scan. sort_uniq upstream guarantees no equal
     masks. *)
  Array.sort
    (fun a b -> compare (Ctg_util.Bits.popcount a) (Ctg_util.Bits.popcount b))
    arr;
  let n = Array.length arr in
  let dead = Array.make n false in
  for i = 0 to n - 1 do
    if not dead.(i) then
      for j = i + 1 to n - 1 do
        if (not dead.(j)) && arr.(i) land arr.(j) = arr.(i) then
          (* arr.(i) subset of arr.(j): j is absorbed. *)
          dead.(j) <- true
      done
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if not dead.(i) then acc := arr.(i) :: !acc
  done;
  !acc

let essential_split ~ones ~primes =
  let primes = Array.of_list primes in
  let covering m =
    let acc = ref [] in
    Array.iteri (fun i c -> if Cube.covers c m then acc := i :: !acc) primes;
    !acc
  in
  let essential = Hashtbl.create 16 in
  List.iter
    (fun m ->
      match covering m with
      | [ i ] -> Hashtbl.replace essential i ()
      | _ :: _ -> ()
      | [] -> failwith "Petrick.cover: uncoverable minterm")
    ones;
  let chosen = Hashtbl.fold (fun i () acc -> primes.(i) :: acc) essential [] in
  let remaining =
    List.filter (fun m -> not (List.exists (fun c -> Cube.covers c m) chosen)) ones
  in
  (chosen, remaining, primes)

let product_cost primes p =
  let terms = ref 0 and lits = ref 0 in
  Array.iteri
    (fun i c ->
      if p land (1 lsl i) <> 0 then begin
        incr terms;
        lits := !lits + Cube.num_literals c
      end)
    primes;
  (!terms, !lits)

let cover ~ones ~primes =
  let chosen, remaining, prime_arr = essential_split ~ones ~primes in
  if remaining = [] then chosen
  else begin
    (* Only primes that cover something remaining matter. *)
    let useful =
      Array.to_list prime_arr
      |> List.filter (fun c -> List.exists (fun m -> Cube.covers c m) remaining)
    in
    let useful_arr = Array.of_list useful in
    if Array.length useful_arr > 62 then
      chosen @ Greedy_cover.cover ~ones:remaining ~primes:useful
    else begin
      let sums =
        List.map
          (fun m ->
            let acc = ref [] in
            Array.iteri
              (fun i c -> if Cube.covers c m then acc := i :: !acc)
              useful_arr;
            !acc)
          remaining
      in
      let expand products sum =
        let next =
          List.concat_map
            (fun p -> List.map (fun i -> p lor (1 lsl i)) sum)
            products
        in
        let next = List.sort_uniq Stdlib.compare next in
        (* Give up before the quadratic absorption, not after. *)
        if List.length next > !max_products then None else Some (absorb next)
      in
      let rec go products = function
        | [] -> Some products
        | sum :: rest -> (
          match expand products sum with
          | None -> None
          | Some products ->
            if List.length products > !max_products then None
            else go products rest)
      in
      match go [ 0 ] sums with
      | None -> chosen @ Greedy_cover.cover ~ones:remaining ~primes:useful
      | Some products ->
        let best =
          List.fold_left
            (fun best p ->
              let cost = product_cost useful_arr p in
              match best with
              | None -> Some (p, cost)
              | Some (_, bc) -> if cost < bc then Some (p, cost) else best)
            None products
        in
        (match best with
        | None -> chosen
        | Some (p, _) ->
          let extra = ref [] in
          Array.iteri
            (fun i c -> if p land (1 lsl i) <> 0 then extra := c :: !extra)
            useful_arr;
          chosen @ List.rev !extra)
    end
  end
