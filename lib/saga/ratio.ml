module P = Ctg_fault.Plan
module F = Ctg_falcon
module Sig = Ctg_samplers.Sampler_sig
module Engine = Ctg_engine
module Jsonx = Ctg_obs.Jsonx

type fault = Value of P.value_fault | Rng of P.rng_fault

type severity = { label : string; fault : fault }

let default_severities =
  [
    { label = "center-shift-0.05"; fault = Value (P.Center_shift { delta = 0.05 }) };
    { label = "center-shift-0.10"; fault = Value (P.Center_shift { delta = 0.10 }) };
    { label = "center-shift-0.25"; fault = Value (P.Center_shift { delta = 0.25 }) };
    { label = "var-deflate-0.05"; fault = Value (P.Variance_deflate { p = 0.05 }) };
    { label = "var-deflate-0.15"; fault = Value (P.Variance_deflate { p = 0.15 }) };
    { label = "stuck-bit-or01";
      fault = Rng (P.Stuck_bits { and_mask = 0xff; or_mask = 0x01 }) };
  ]

let smoke_severities =
  [
    { label = "center-shift-0.25"; fault = Value (P.Center_shift { delta = 0.25 }) };
    { label = "var-deflate-0.15"; fault = Value (P.Variance_deflate { p = 0.15 }) };
  ]

type config = {
  n : int;
  sigma : string;
  precision : int;
  tail_cut : int;
  budget : int;
  check_every : int;
  drift_window : int;
  attack_z : float;
  battery : Battery.config;
  severities : severity list;
}

(* The harness battery runs *sequentially* (re-evaluated at every
   checkpoint on the growing prefix), so its bounds are wider than the
   single-look offline defaults — z 4.0 / chi 1e-4 keep the clean arm's
   many correlated looks inside the false-alarm budget. *)
let default_config =
  {
    n = 64;
    sigma = "2";
    precision = 16;
    tail_cut = 13;
    budget = 2048;
    check_every = 16;
    drift_window = 2048;
    attack_z = 4.0;
    battery =
      { Battery.default_config with z_crit = 4.0; chi_alpha = 1e-4 };
    severities = default_severities;
  }

let smoke_config =
  { default_config with budget = 512; severities = smoke_severities }

type row = {
  label : string;
  fault_name : string;
  attack_sigs : int option;  (** First checkpoint with key-recovery signal. *)
  attack_z_final : float;  (** z at detection, or at budget exhaustion. *)
  drift_sigs : int option;
  battery_sigs : int option;
  battery_families : string list;  (** Families failing at first battery alarm. *)
  leak_sigs : int option;
  monitor_sigs : int option;  (** Earliest of the three monitors. *)
  winner : string;  (** "monitor" | "attack" | "neither". *)
  attack_wins_first : bool;
}

type report = {
  seed : int64;
  n : int;
  sigma : string;
  precision : int;
  budget : int;
  check_every : int;
  drift_window : int;
  attack_threshold : float;
  clean_attack_z : float;
  clean_drift_alarms : int;
  clean_battery_pass : bool;
  attack_signals : int;  (** Severities where the attack found signal. *)
  rows : row list;
  ok : bool;
}

(* --- key-correlation estimator ------------------------------------- *)

(* Negacyclic ring helpers over float coefficient vectors (Z[x]/(x^n+1)). *)

let adjoint a =
  let n = Array.length a in
  Array.init n (fun i -> if i = 0 then a.(0) else -.a.(n - i))

let negacyclic_conv a b =
  let n = Array.length a in
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if a.(i) <> 0.0 then
      for j = 0 to n - 1 do
        let k = i + j in
        if k < n then out.(k) <- out.(k) +. (a.(i) *. b.(j))
        else out.(k - n) <- out.(k - n) -. (a.(i) *. b.(j))
      done
  done;
  out

(* (1 + x + ... + x^(n-1)) * h, i.e. the image of an all-ones mean shift:
   coefficient k is sum_{j<=k} h_j - sum_{j>k} h_j. *)
let ones_conv h =
  let n = Array.length h in
  let total = Array.fold_left ( +. ) 0.0 h in
  let out = Array.make n 0.0 in
  let running = ref 0.0 in
  for k = 0 to n - 1 do
    running := !running +. h.(k);
    out.(k) <- (2.0 *. !running) -. total
  done;
  out

let floats = Array.map float_of_int

(* Pearson correlation turned into a z score: under the null (no
   key-dependent structure) the correlation of a d-dimensional noise
   vector with a fixed template is ~ N(0, 1/d), so z = |r| sqrt(d). *)
let corr_z template v =
  let d = Array.length v in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int d in
  let mt = mean template and mv = mean v in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to d - 1 do
    let x = template.(i) -. mt and y = v.(i) -. mv in
    sxy := !sxy +. (x *. y);
    sxx := !sxx +. (x *. x);
    syy := !syy +. (y *. y)
  done;
  if !sxx <= 0.0 || !syy <= 0.0 then 0.0
  else abs_float (!sxy /. sqrt (!sxx *. !syy)) *. sqrt (float_of_int d)

(* The Ratio-attack templates, derived from the secret key.

   First moment (center shift delta on every base draw): each of the 2n
   ffSampling leaf draws is one coefficient of the integer vector z, so
   E[z] = clean + delta * ones and d = t - z shifts by -delta * ones.
   With s1 = d0 g + d1 G and s2 = -(d0 f + d1 F):
     E[s1] = -delta (ones*g + ones*G),  E[s2] = +delta (ones*f + ones*F).

   Second moment (variance deflation): E[s1 * adj(s2)] picks up the key
   Gram structure -(v0 g adj(f) + v1 G adj(F)) scaled by the per-leaf
   variance; deflation moves it along -(g adj f + G adj F), measured as a
   difference against the clean-run baseline (granting the attacker a
   clean reference run — the strongest version of the attack). *)
type templates = { t1 : float array; t2 : float array }

let templates_of_secret (s : F.Keygen.secret) =
  let f = floats s.F.Keygen.f
  and g = floats s.F.Keygen.g
  and big_f = floats s.F.Keygen.big_f
  and big_g = floats s.F.Keygen.big_g in
  let add = Array.map2 ( +. ) in
  let neg = Array.map (fun x -> -.x) in
  let t1 =
    Array.append (neg (add (ones_conv g) (ones_conv big_g)))
      (add (ones_conv f) (ones_conv big_f))
  in
  let t2 =
    neg
      (add
         (negacyclic_conv g (adjoint f))
         (negacyclic_conv big_g (adjoint big_f)))
  in
  { t1; t2 }

(* --- one signing arm ------------------------------------------------ *)

type arm = {
  a_attack_sigs : int option;
  a_attack_z : float;
  a_drift_sigs : int option;
  a_battery_sigs : int option;
  a_battery_families : string list;
  a_leak_sigs : int option;
  a_cross_mean : float array;  (** mean of s1 * adj(s2) over the arm. *)
}

(* Growable draw buffer: every biased base draw the signer consumed, in
   order — the stream the checkpoint battery judges. *)
type draws = { mutable buf : int array; mutable len : int }

let draws_create () = { buf = Array.make 4096 0; len = 0 }

let draws_push d v =
  if d.len = Array.length d.buf then begin
    let bigger = Array.make (2 * d.len) 0 in
    Array.blit d.buf 0 bigger 0 d.len;
    d.buf <- bigger
  end;
  d.buf.(d.len) <- v;
  d.len <- d.len + 1

let run_arm ~(config : config) ~model ~kp ~(tpl : templates) ~baseline
    ~seed_str ~lane ~bias ~wrap_rng () =
  let n = config.n in
  let table = Ctg_samplers.Cdt_table.of_matrix (Battery.matrix model) in
  let inst = Ctg_samplers.Cdt_samplers.linear_ct table in
  let registry = Ctg_obs.Registry.create () in
  let drift =
    Ctg_assure.Drift.create
      ~config:
        {
          Ctg_assure.Drift.default_config with
          window = config.drift_window;
        }
      ~registry ~matrix:(Battery.matrix model) ()
  in
  let leak =
    Ctg_assure.Leak.create ~registry
      ~probe:(Ctg_assure.Leak.ops_probe inst)
      ()
  in
  let draws = draws_create () in
  let chunk = Array.make 256 0 and chunk_len = ref 0 in
  let flush_chunk () =
    if !chunk_len > 0 then begin
      Ctg_assure.Drift.observe_sub drift chunk ~pos:0 ~len:!chunk_len;
      chunk_len := 0
    end
  in
  let observe v =
    draws_push draws v;
    chunk.(!chunk_len) <- v;
    incr chunk_len;
    if !chunk_len = 256 then flush_chunk ()
  in
  let base = F.Base_sampler.of_instance ~observe ?bias inst in
  let rng =
    wrap_rng (Engine.Stream_fork.bitstream ~seed:seed_str ~lane ())
  in
  let two_n = 2 * n in
  let sum_vec = Array.make two_n 0.0 in
  let cross_acc = Array.make n 0.0 in
  let attack_sigs = ref None and attack_z = ref 0.0 in
  let drift_sigs = ref None and leak_sigs = ref None in
  let battery_sigs = ref None and battery_families = ref [] in
  let i = ref 0 in
  let continue () =
    !i < config.budget
    && not
         (!attack_sigs <> None && !drift_sigs <> None
         && !battery_sigs <> None)
  in
  while continue () do
    incr i;
    let msg = Bytes.of_string (Printf.sprintf "ratio %s %d" seed_str !i) in
    let sg = F.Sign.sign kp base rng ~msg in
    let s1 = sg.F.Sign.s1 and s2 = sg.F.Sign.s2 in
    for k = 0 to n - 1 do
      sum_vec.(k) <- sum_vec.(k) +. float_of_int s1.(k);
      sum_vec.(n + k) <- sum_vec.(n + k) +. float_of_int s2.(k)
    done;
    let cross = negacyclic_conv (floats s1) (adjoint (floats s2)) in
    for k = 0 to n - 1 do
      cross_acc.(k) <- cross_acc.(k) +. cross.(k)
    done;
    (* Drift is evaluated per window as draws stream in; poll after every
       signature so the alarm is dated at signature granularity. *)
    if !drift_sigs = None && Ctg_assure.Drift.alarms drift > 0 then
      drift_sigs := Some !i;
    if !i mod config.check_every = 0 then begin
      let fn = float_of_int !i in
      let u = Array.map (fun s -> s /. fn) sum_vec in
      let z1 = corr_z tpl.t1 u in
      let z2 =
        match baseline with
        | None -> 0.0
        | Some b ->
          corr_z tpl.t2
            (Array.init n (fun k -> (cross_acc.(k) /. fn) -. b.(k)))
      in
      let z = Float.max z1 z2 in
      if z > !attack_z then attack_z := z;
      if !attack_sigs = None && z >= config.attack_z then
        attack_sigs := Some !i;
      if !battery_sigs = None then begin
        let v =
          Battery.evaluate ~config:config.battery model
            ~backend:inst.Sig.name ~samples:draws.buf ~len:draws.len
        in
        if not v.Battery.pass then begin
          battery_sigs := Some !i;
          battery_families := Battery.failed_families v
        end
      end;
      Ctg_assure.Leak.step ~n:64 leak;
      if
        !leak_sigs = None
        && (Ctg_assure.Leak.report leak).Ctg_ctcheck.Dudect.leaky
      then leak_sigs := Some !i
    end
  done;
  flush_chunk ();
  let total = float_of_int !i in
  {
    a_attack_sigs = !attack_sigs;
    a_attack_z = !attack_z;
    a_drift_sigs = !drift_sigs;
    a_battery_sigs = !battery_sigs;
    a_battery_families = !battery_families;
    a_leak_sigs = !leak_sigs;
    a_cross_mean = Array.map (fun s -> s /. total) cross_acc;
  }

(* --- the matrix ----------------------------------------------------- *)

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let row_of_arm ~label ~fault_name (a : arm) =
  let monitor_sigs =
    min_opt a.a_drift_sigs (min_opt a.a_battery_sigs a.a_leak_sigs)
  in
  let attack_wins_first, winner =
    match (a.a_attack_sigs, monitor_sigs) with
    | None, None -> (false, "neither")
    | None, Some _ -> (false, "monitor")
    | Some _, None -> (true, "attack")
    | Some at, Some mo -> if mo < at then (false, "monitor") else (true, "attack")
  in
  {
    label;
    fault_name;
    attack_sigs = a.a_attack_sigs;
    attack_z_final = a.a_attack_z;
    drift_sigs = a.a_drift_sigs;
    battery_sigs = a.a_battery_sigs;
    battery_families = a.a_battery_families;
    leak_sigs = a.a_leak_sigs;
    monitor_sigs;
    winner;
    attack_wins_first;
  }

let fault_name = function
  | Value v -> P.value_fault_name v
  | Rng r -> P.rng_fault_name r

let run ?(config : config = default_config) ~seed () =
  let params = F.Params.custom ~n:config.n in
  let seed_str = Printf.sprintf "saga-ratio-%Lx" seed in
  let kp =
    F.Keygen.generate params
      (Engine.Stream_fork.bitstream ~seed:seed_str ~lane:999_983 ())
  in
  let tpl = templates_of_secret kp.F.Keygen.secret in
  let matrix =
    Ctg_kyao.Matrix.create ~sigma:config.sigma ~precision:config.precision
      ~tail_cut:config.tail_cut
  in
  let model = Battery.model matrix in
  let sm = Ctg_prng.Splitmix64.create seed in
  let next_seed () = Ctg_prng.Splitmix64.next sm in
  (* Clean pilot, split in two: the first half's cross-correlation mean is
     the attacker's clean reference; the second half, judged against it,
     is the clean control for the second-moment estimator.  The whole
     pilot doubles as the monitors' clean control. *)
  let _pilot_seed = next_seed () in
  let half_budget = config.budget / 2 in
  let clean_a =
    run_arm
      ~config:{ config with budget = half_budget }
      ~model ~kp ~tpl ~baseline:None ~seed_str ~lane:1 ~bias:None
      ~wrap_rng:Fun.id ()
  in
  let clean_b =
    run_arm
      ~config:{ config with budget = half_budget }
      ~model ~kp ~tpl
      ~baseline:(Some clean_a.a_cross_mean)
      ~seed_str ~lane:2 ~bias:None ~wrap_rng:Fun.id ()
  in
  let baseline =
    (* Attacker's reference: the full pilot. *)
    Array.init config.n (fun k ->
        0.5 *. (clean_a.a_cross_mean.(k) +. clean_b.a_cross_mean.(k)))
  in
  let clean_attack_z = Float.max clean_a.a_attack_z clean_b.a_attack_z in
  let clean_drift_alarms =
    (match clean_a.a_drift_sigs with Some _ -> 1 | None -> 0)
    + (match clean_b.a_drift_sigs with Some _ -> 1 | None -> 0)
  in
  let clean_battery_pass =
    clean_a.a_battery_sigs = None && clean_b.a_battery_sigs = None
  in
  let rows =
    List.mapi
      (fun idx sev ->
        let plan_seed = next_seed () in
        let bias, wrap_rng =
          match sev.fault with
          | Value vf ->
            ( Some (P.value_transform (P.value_plan ~seed:plan_seed vf)),
              Fun.id )
          | Rng rf ->
            let plan = P.rng_plan ~seed:plan_seed rf in
            (None, fun bs -> P.wrap plan ~lane:0 bs)
        in
        let arm =
          run_arm ~config ~model ~kp ~tpl ~baseline:(Some baseline)
            ~seed_str ~lane:(10 + idx) ~bias ~wrap_rng ()
        in
        row_of_arm ~label:sev.label ~fault_name:(fault_name sev.fault) arm)
      config.severities
  in
  let attack_signals =
    List.length (List.filter (fun r -> r.attack_sigs <> None) rows)
  in
  let ok =
    List.for_all (fun r -> not r.attack_wins_first) rows
    && clean_attack_z < config.attack_z
    && clean_drift_alarms = 0 && clean_battery_pass && attack_signals >= 1
  in
  {
    seed;
    n = config.n;
    sigma = config.sigma;
    precision = config.precision;
    budget = config.budget;
    check_every = config.check_every;
    drift_window = config.drift_window;
    attack_threshold = config.attack_z;
    clean_attack_z;
    clean_drift_alarms;
    clean_battery_pass;
    attack_signals;
    rows;
    ok;
  }

(* --- reporting ------------------------------------------------------ *)

let opt_sigs = function None -> "-" | Some s -> string_of_int s

let opt_json = function
  | None -> Jsonx.Null
  | Some s -> Jsonx.Num (float_of_int s)

let row_json r =
  Jsonx.Obj
    [
      ("severity", Str r.label);
      ("fault", Str r.fault_name);
      ("attack_sigs", opt_json r.attack_sigs);
      ("attack_z", Num r.attack_z_final);
      ("drift_sigs", opt_json r.drift_sigs);
      ("battery_sigs", opt_json r.battery_sigs);
      ( "battery_families",
        List (List.map (fun f -> Jsonx.Str f) r.battery_families) );
      ("leak_sigs", opt_json r.leak_sigs);
      ("monitor_sigs", opt_json r.monitor_sigs);
      ("winner", Str r.winner);
      ("attack_wins_first", Bool r.attack_wins_first);
    ]

let to_json r =
  Jsonx.Obj
    [
      ("seed", Str (Printf.sprintf "0x%Lx" r.seed));
      ("n", Num (float_of_int r.n));
      ("sigma", Str r.sigma);
      ("precision", Num (float_of_int r.precision));
      ("budget", Num (float_of_int r.budget));
      ("check_every", Num (float_of_int r.check_every));
      ("drift_window", Num (float_of_int r.drift_window));
      ("attack_threshold", Num r.attack_threshold);
      ("clean_attack_z", Num r.clean_attack_z);
      ("clean_drift_alarms", Num (float_of_int r.clean_drift_alarms));
      ("clean_battery_pass", Bool r.clean_battery_pass);
      ("attack_signals", Num (float_of_int r.attack_signals));
      ("rows", List (List.map row_json r.rows));
      ("ok", Bool r.ok);
    ]

let pp_row fmt r =
  Format.fprintf fmt
    "%-18s %-16s attack=%-5s(z=%5.1f)  drift=%-5s battery=%-5s%s leak=%-4s -> %s%s"
    r.label r.fault_name (opt_sigs r.attack_sigs) r.attack_z_final
    (opt_sigs r.drift_sigs)
    (opt_sigs r.battery_sigs)
    (match r.battery_families with
    | [] -> ""
    | fs -> Printf.sprintf "[%s]" (String.concat "," fs))
    (opt_sigs r.leak_sigs) r.winner
    (if r.attack_wins_first then "  ATTACK-WINS-FIRST" else "")

let pp_report fmt r =
  Format.fprintf fmt
    "ratio-attack crossover: n=%d sigma=%s budget=%d sigs, checkpoints \
     every %d, drift window %d draws@."
    r.n r.sigma r.budget r.check_every r.drift_window;
  Format.fprintf fmt
    "clean control: attack z=%.2f (threshold %.1f), drift alarms=%d, \
     battery %s@."
    r.clean_attack_z r.attack_threshold r.clean_drift_alarms
    (if r.clean_battery_pass then "PASS" else "FAIL");
  List.iter (fun row -> Format.fprintf fmt "  %a@." pp_row row) r.rows;
  Format.fprintf fmt "verdict: %s@."
    (if r.ok then "OK (monitors fire first on every severity)"
     else "FAIL")
