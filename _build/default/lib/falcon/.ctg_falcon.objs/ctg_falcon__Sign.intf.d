lib/falcon/sign.mli: Base_sampler Ctg_prng Keygen Params
