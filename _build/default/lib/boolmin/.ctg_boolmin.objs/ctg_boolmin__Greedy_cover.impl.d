lib/boolmin/greedy_cover.ml: Cube Int List Set
