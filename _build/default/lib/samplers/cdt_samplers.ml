(* Each sampler returns the smallest v with r < cdf(v); a draw at or above
   the last entry (probability < 2^-117 at Falcon parameters) is redrawn. *)

let binary_search table =
  let size = Cdt_table.size table in
  let rec sample rng ops =
    let r = Cdt_table.draw table rng in
    let below_top, c = Cdt_table.lt_early_exit r (Cdt_table.cdf table (size - 1)) in
    let ops = ops + c in
    if not below_top then sample rng ops
    else begin
      (* Invariant: cdf(hi) > r, and cdf(v) <= r for all v < lo. *)
      let rec go lo hi ops =
        if lo >= hi then (hi, ops)
        else begin
          let mid = (lo + hi) / 2 in
          let lt, c = Cdt_table.lt_early_exit r (Cdt_table.cdf table mid) in
          if lt then go lo mid (ops + c) else go (mid + 1) hi (ops + c)
        end
      in
      go 0 (size - 1) ops
    end
  in
  {
    Sampler_sig.name = "cdt-binary";
    constant_time = false;
    sample_magnitude = (fun rng -> fst (sample rng 0));
    sample_traced = (fun rng -> sample rng 0);
  }

let byte_scan table =
  let size = Cdt_table.size table in
  let rec sample rng ops =
    let r = Cdt_table.draw table rng in
    let rec scan v ops =
      if v >= size then sample rng ops (* residual: redraw *)
      else begin
        let lt, c = Cdt_table.lt_early_exit r (Cdt_table.cdf table v) in
        if lt then (v, ops + c) else scan (v + 1) (ops + c)
      end
    in
    scan 0 ops
  in
  {
    Sampler_sig.name = "cdt-byte-scan";
    constant_time = false;
    sample_magnitude = (fun rng -> fst (sample rng 0));
    sample_traced = (fun rng -> sample rng 0);
  }

let linear_ct table =
  let size = Cdt_table.size table in
  let rec sample rng ops =
    let r = Cdt_table.draw table rng in
    (* v = number of entries with cdf <= r, accumulated branch-free over
       the full table on every call. *)
    let acc = ref 0 and ops = ref ops in
    for v = 0 to size - 1 do
      let lt, c = Cdt_table.lt_ct r (Cdt_table.cdf table v) in
      ops := !ops + c;
      acc := !acc + 1 - Bool.to_int lt
    done;
    if !acc >= size then sample rng !ops else (!acc, !ops)
  in
  {
    Sampler_sig.name = "cdt-linear-ct";
    constant_time = true;
    sample_magnitude = (fun rng -> fst (sample rng 0));
    sample_traced = (fun rng -> sample rng 0);
  }
