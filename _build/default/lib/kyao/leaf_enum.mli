(** Enumeration of the DDG tree leaves together with the random-bit strings
    that reach them — the paper's list L (Sec. 5.1) — plus the structural
    facts of Theorem 1 (every string is [x^i (0/1)^j 0 1^k]) and the
    experimentally small payload bound Δ. *)

type leaf = {
  value : int;  (** Sample magnitude at this leaf. *)
  level : int;  (** DDG level: the walk consumes [level + 1] bits. *)
  bits : bool array;
      (** The determined bits, [bits.(0)] = [b_0] (first consumed); length
          [level + 1].  Later bits are the don't-cares [x^i]. *)
  ones : int;  (** k: length of the all-ones prefix (paper's [1^k]). *)
  payload : int;  (** j = level - k: bits after the first zero. *)
}

type t = {
  matrix : Matrix.t;
  leaves : leaf array;  (** Sorted by (ones, then value of payload bits). *)
  delta : int;  (** Δ = max over leaves of [payload]. *)
  max_ones : int;  (** n' in the paper: largest κ with a non-empty sublist. *)
  unresolved : int;
      (** Walk states still internal after the last column (Theorem 1's
          never-terminating residual; equals the scaled residual mass). *)
}

val enumerate : Matrix.t -> t

val check_theorem1 : t -> bool
(** Every leaf string contains a zero (no [x^i 1^k'] leaf exists). *)

val sample_bit : leaf -> int -> bool
(** [sample_bit leaf i] is bit [i] of [leaf.value] (LSB = bit 0). *)

val pp_list : ?max_rows:int -> Format.formatter -> t -> unit
(** Print the sorted list L as in the paper's Fig. 3: bit string (don't
    cares as 'x', in paper order with b_0 rightmost) and the sample value
    in binary. *)
