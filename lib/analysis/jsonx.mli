(** Re-export of {!Ctg_obs.Jsonx} (the module moved to [lib/obs] when the
    observability layer started writing JSON below the analyzer in the
    dependency order).  The type equation keeps [Ctg_analysis.Jsonx.t] and
    [Ctg_obs.Jsonx.t] interchangeable for existing users. *)

type t = Ctg_obs.Jsonx.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val to_string : t -> string
val pretty : t -> string
val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
