lib/prng/keccak.ml: Array Bytes Char Int64
