(** Reduced ordered binary decision diagrams, self-contained (no external
    dependency), sized for the analyzer's workloads: programs over the
    random input bits [b_0 .. b_{n-1}] at test precision.

    The variable order is fixed to the bit-consumption order of the
    Knuth-Yao walk ([b_0] at the root) — by Theorem 1 every terminating
    string is decided by a prefix, so this order keeps the diagrams of the
    compiled samplers shallow.

    Nodes are hash-consed in a manager, so two BDDs built in the same
    manager represent the same Boolean function iff their handles are
    equal — equality of compiled programs becomes an [( = )] on ints,
    a proof over all [2^n] inputs at once. *)

type man
(** Node store + operation caches.  All [t] values are relative to the
    manager that built them. *)

type t = private int
(** BDD handle.  [( = )] is functional equivalence within one manager. *)

val create : num_vars:int -> man
val num_vars : man -> int

val zero : t
val one : t
val var : man -> int -> t
(** The projection function of input bit [i]; [0 <= i < num_vars]. *)

val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bnot : man -> t -> t
val implies : man -> t -> t -> t

val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool

val eval : man -> t -> bool array -> bool
(** Evaluate under an assignment ([assignment.(i)] = value of [b_i];
    missing trailing variables read as [false]). *)

val any_sat : man -> t -> bool array option
(** A satisfying assignment over all [num_vars] variables ([None] iff the
    function is constant false) — the counterexample extractor: to refute
    [f = g], ask for [any_sat (bxor f g)]. *)

val sat_count : man -> t -> float
(** Number of satisfying assignments over the manager's [num_vars]
    variables (float: callers report fractions at n up to 128). *)

val size : man -> t -> int
(** Reachable node count of one BDD (diagram size, not program size). *)

val node_count : man -> int
(** Total nodes allocated in the manager (analysis cost reporting). *)
