examples/ct_audit.ml: Array Ctg_ctcheck Ctg_kyao Ctg_prng Ctg_samplers Ctgauss Format List
