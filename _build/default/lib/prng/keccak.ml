(* Keccak-f[1600] on an int64 state of 25 lanes, FIPS 202 parameters. *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
    0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
    0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

let rotations =
  [| 0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21;
     8; 18; 2; 61; 56; 14 |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f (st : int64 array) =
  let c = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor st.(x)
          (Int64.logxor st.(x + 5)
             (Int64.logxor st.(x + 10) (Int64.logxor st.(x + 15) st.(x + 20))))
    done;
    for x = 0 to 4 do
      let d = Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1) in
      for y = 0 to 4 do
        st.(x + (5 * y)) <- Int64.logxor st.(x + (5 * y)) d
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let src = x + (5 * y) in
        let dst = y + (5 * (((2 * x) + (3 * y)) mod 5)) in
        b.(dst) <- rotl64 st.(src) rotations.(src)
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let i = x + (5 * y) in
        st.(i) <-
          Int64.logxor b.(i)
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    st.(0) <- Int64.logxor st.(0) round_constants.(round)
  done

type xof = {
  state : int64 array;
  rate : int; (* bytes *)
  mutable pos : int; (* squeeze position within the current block *)
  mutable perms : int;
}

let xor_byte_into st i v =
  let lane = i / 8 and off = i mod 8 in
  st.(lane) <-
    Int64.logxor st.(lane) (Int64.shift_left (Int64.of_int v) (8 * off))

let byte_of_state st i =
  let lane = i / 8 and off = i mod 8 in
  Int64.to_int (Int64.shift_right_logical st.(lane) (8 * off)) land 0xff

let absorb ~rate ~suffix msg =
  let state = Array.make 25 0L in
  let t = { state; rate; pos = 0; perms = 0 } in
  let len = Bytes.length msg in
  let block_off = ref 0 in
  for i = 0 to len - 1 do
    xor_byte_into state !block_off (Char.code (Bytes.get msg i));
    incr block_off;
    if !block_off = rate then begin
      keccak_f state;
      t.perms <- t.perms + 1;
      block_off := 0
    end
  done;
  (* Pad: suffix byte then 0x80 at the end of the rate block. *)
  xor_byte_into state !block_off suffix;
  xor_byte_into state (rate - 1) 0x80;
  keccak_f state;
  t.perms <- t.perms + 1;
  t

let shake128 msg = absorb ~rate:168 ~suffix:0x1f msg
let shake256 msg = absorb ~rate:136 ~suffix:0x1f msg

let squeeze t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    if t.pos = t.rate then begin
      keccak_f t.state;
      t.perms <- t.perms + 1;
      t.pos <- 0
    end;
    Bytes.set out i (Char.chr (byte_of_state t.state t.pos));
    t.pos <- t.pos + 1
  done;
  out

let permutations t = t.perms
let shake128_digest msg n = squeeze (shake128 msg) n
let shake256_digest msg n = squeeze (shake256 msg) n
