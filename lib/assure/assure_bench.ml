module Bs = Ctg_prng.Bitstream
module Jsonx = Ctg_obs.Jsonx

type entry = {
  sigma : string;
  precision : int;
  gates : int;
  samples : int;
  plain_ns : float;
  monitored_ns : float;
  overhead_pct : float;
  windows : int;  (** Drift windows evaluated during the timed passes. *)
  alarms : int;  (** Must be 0 — the streams are clean. *)
}

let threshold_pct = 3.0

let default_set = Ctg_engine.Obs_bench.default_set

let fill_plain sampler out rng =
  let n = Array.length out in
  let filled = ref 0 in
  while !filled < n do
    let batch = Ctgauss.Sampler.batch_signed sampler rng in
    let take = min (Array.length batch) (n - !filled) in
    Array.blit batch 0 out !filled take;
    filled := !filled + take
  done

(* The monitored arm reproduces what the pool does once the drift monitor
   is attached: fill a chunk, then fold it into the monitor under its
   mutex (via the allocation-free slice feed).  Window evaluations that
   fall inside the pass are part of the measured cost — that is the
   always-on price the 3% budget is about. *)
let fill_monitored sampler drift out rng ~chunk_samples =
  let n = Array.length out in
  let pos = ref 0 in
  while !pos < n do
    let count = min chunk_samples (n - !pos) in
    let out_pos = !pos in
    let filled = ref 0 in
    while !filled < count do
      let batch = Ctgauss.Sampler.batch_signed sampler rng in
      let take = min (Array.length batch) (count - !filled) in
      Array.blit batch 0 out (out_pos + !filled) take;
      filled := !filled + take
    done;
    Drift.observe_sub drift out ~pos:out_pos ~len:count;
    pos := !pos + count
  done

let measure ?(samples = 63 * 1000) ?(rounds = 5) ?(min_time = 0.4) ~sigma
    ~precision ~tail_cut () =
  let master =
    Ctg_engine.Registry.lookup Ctg_engine.Registry.global ~sigma ~precision
      ~tail_cut ()
  in
  let sampler = Ctgauss.Sampler.clone master in
  let registry = Ctg_obs.Registry.create () in
  let drift =
    Drift.create ~registry
      ~labels:[ ("sigma", sigma) ]
      ~matrix:(Ctgauss.Sampler.matrix sampler)
      ()
  in
  let chunk_samples = 16 * Ctgauss.Bitslice.lanes in
  let out = Array.make samples 0 in
  let seed = "assure-bench-" ^ sigma in
  let lane_rng lane = Ctg_engine.Stream_fork.bitstream ~health:false ~seed ~lane () in
  (* Warm both paths before timing. *)
  let warm_rng = Ctg_engine.Stream_fork.bitstream ~health:false ~seed ~lane:1000 () in
  fill_plain sampler out warm_rng;
  fill_monitored sampler drift out warm_rng ~chunk_samples;
  let one scale =
    Ctg_engine.Obs_bench.paired_ns ~rounds
      ~min_time:(min_time *. float_of_int scale)
      ~samples
      [|
        (false, fun ~lane -> fill_plain sampler out (lane_rng lane));
        ( false,
          fun ~lane -> fill_monitored sampler drift out (lane_rng lane) ~chunk_samples );
      |]
  in
  (* Same retry policy as Obs_bench: noise is additive, so keep the best
     (lowest-overhead) estimate and only re-measure with a bigger budget
     while it is not comfortably inside the threshold. *)
  let overhead_of (t : float array) = 100.0 *. (t.(1) -. t.(0)) /. t.(0) in
  let rec go attempt best =
    if overhead_of best < 0.75 *. threshold_pct || attempt > 6 then best
    else begin
      let cur = one attempt in
      go (attempt + 1) (if overhead_of cur <= overhead_of best then cur else best)
    end
  in
  let timings = go 2 (one 1) in
  let plain = timings.(0) and monitored = timings.(1) in
  {
    sigma;
    precision;
    gates = Ctgauss.Sampler.gate_count sampler;
    samples;
    plain_ns = plain;
    monitored_ns = monitored;
    overhead_pct = 100.0 *. (monitored -. plain) /. plain;
    windows = Drift.windows drift;
    alarms = Drift.alarms drift;
  }

let run ?samples ?rounds ?min_time ?(set = default_set) () =
  List.map
    (fun (sigma, precision) ->
      measure ?samples ?rounds ?min_time ~sigma ~precision ~tail_cut:13 ())
    set

let ok entries =
  List.for_all
    (fun e -> e.overhead_pct <= threshold_pct && e.alarms = 0)
    entries

let entry_json e =
  Jsonx.Obj
    [
      ("sigma", Str e.sigma);
      ("precision", Num (float_of_int e.precision));
      ("gates", Num (float_of_int e.gates));
      ("samples", Num (float_of_int e.samples));
      ("plain_ns", Num e.plain_ns);
      ("monitored_ns", Num e.monitored_ns);
      ("overhead_pct", Num e.overhead_pct);
      ("windows", Num (float_of_int e.windows));
      ("alarms", Num (float_of_int e.alarms));
    ]

let to_json entries =
  Jsonx.Obj
    [
      ("bench", Str "assure");
      ("threshold_pct", Num threshold_pct);
      ("entries", List (List.map entry_json entries));
    ]

let save path entries =
  let oc = open_out path in
  output_string oc (Jsonx.pretty (to_json entries));
  output_char oc '\n';
  close_out oc

let pp_entry fmt e =
  Format.fprintf fmt
    "sigma=%-8s prec=%-3d plain=%7.1f ns  monitored=%7.1f ns  overhead=%+5.2f%% \
     (budget %.1f%%)  windows=%d alarms=%d"
    e.sigma e.precision e.plain_ns e.monitored_ns e.overhead_pct threshold_pct
    e.windows e.alarms
