(** HTTP endpoint for metric exposition — a thin re-export of the shared
    {!Ctg_net.Http} server (keep-alive, bounded request bodies, worker-team
    concurrency, graceful drain), kept under [Ctg_obs] so the observability
    layer's callers and route tables are unaffected by the extraction.
    Handlers run on worker domains and must be thread-safe — the ctg_obs
    registry and the assure monitors already are. *)

include module type of Ctg_net.Http
(** @inline *)
