lib/core/sublist.ml: Array Ctg_boolmin Ctg_kyao Ctg_util List
