(** A persistent team of helper domains for successive parallel-for jobs —
    the pool-submission seam the serving layer batches signatures through.

    {!Pool.parallel_for} spawns and joins fresh domains per call; fine for
    one CLI batch, too heavy for a daemon dispatching a small
    [Sign.sign_many] batch every few milliseconds.  A workforce parks its
    helpers between jobs, so submitting a job costs one broadcast instead
    of [domains − 1] spawns.

    Scheduling semantics match {!Pool.parallel_for} exactly: an atomic
    cursor over [0 .. n-1], the calling domain participates, [f] must be
    safe to run concurrently for distinct [i], the first error cancels
    remaining iterations and is re-raised on the caller.  One job runs at
    a time; concurrent {!run} calls serialize (daemon batches are already
    serialized by the batcher). *)

type t

val create : ?domains:int -> unit -> t
(** Spawn [domains − 1] helper domains (default
    [Domain.recommended_domain_count ()]); the caller's domain is the
    remaining worker. *)

val domains : t -> int

val run : t -> n:int -> (int -> unit) -> unit
(** Run [f i] for every [i < n] across the team, caller participating.
    Deterministic in what is computed, not in who computes it.
    @raise Invalid_argument when [n < 0] or after {!shutdown}. *)

val shutdown : t -> unit
(** Join the helpers.  Idempotent; subsequent {!run} calls raise. *)
