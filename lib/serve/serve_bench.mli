(** The [bench serve] SLO gate behind [BENCH_serve.json].

    Boots a real {!Daemon} on an ephemeral port, drives it with
    concurrent keep-alive HTTP clients from several tenants, and gates
    the client-observed p99 latency against a {e direct}
    [Sign.sign_many] per-signature baseline measured in the same
    process: [p99 <= max (slo_mult * direct, floor_ns)].  Gating on the
    ratio keeps the check host-independent — the daemon may spend a
    bounded multiple of raw signing cost on queueing, coalescing and
    HTTP, wherever CI runs it; the absolute floor absorbs scheduler
    noise on slow runners.  The gate also requires coalescing to have
    actually happened ([mean_batch > 1]), zero shed at this moderate
    load, and a healthy monitor verdict. *)

type entry = {
  n : int;
  sigma : string;
  tenants : int;
  requests : int;
  batches : int;
  mean_batch : float;
  shed : int;
  direct_ns : float;  (** Per-signature cost of a direct sign_many run. *)
  p50_ns : float;  (** Client-observed, submit-to-verdict per request. *)
  p99_ns : float;
  slo_ns : float;  (** The bound actually applied to [p99_ns]. *)
  healthy : bool;
}

val slo_mult : float
val floor_ns : float

val measure :
  ?n:int ->
  ?sigma:string ->
  ?precision:int ->
  ?tail_cut:int ->
  ?tenants:int ->
  ?per_tenant:int ->
  unit ->
  entry

val ok : entry -> bool
val to_json : entry list -> Ctg_obs.Jsonx.t
val save : string -> entry list -> unit
val pp_entry : Format.formatter -> entry -> unit
