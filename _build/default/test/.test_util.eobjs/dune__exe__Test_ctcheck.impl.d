test/test_ctcheck.ml: Alcotest Array Ctg_ctcheck Ctg_kyao Ctg_prng Ctg_samplers Ctgauss
