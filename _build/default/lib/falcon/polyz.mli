(** Polynomials with arbitrary-precision integer coefficients in
    Z[x]/(x^n + 1) — the domain of NTRUSolve, where coefficients grow to
    thousands of bits during the recursive descent. *)

type t = Ctg_bigint.Zint.t array
(** Coefficient vector, degree index order, length = ring degree. *)

val of_int_array : int array -> t
val to_int_array : t -> int array
(** @raise Failure on overflow. *)

val zero : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Negacyclic product, schoolbook (keygen-only code path). *)

val mul_scalar : t -> Ctg_bigint.Zint.t -> t
val is_zero : t -> bool
val equal : t -> t -> bool

val adjoint : t -> t
(** [f*(x) = f(x^-1) mod x^n+1]: [f*_0 = f_0], [f*_i = -f_{n-i}]. *)

val galois : t -> t
(** [f(-x)]: negate odd coefficients. *)

val field_norm : t -> t
(** [N(f) = f_e² − x·f_o²] over Z[x]/(x^{n/2}+1), satisfying
    [N(f)(x²) = f(x)·f(−x)]. *)

val lift : t -> t
(** [f(x) ↦ f(x²)] from degree n to degree 2n. *)

val max_bits : t -> int
(** Largest coefficient magnitude in bits (for float scaling). *)

val reduce_mod_q : t -> q:int -> int array
(** Coefficients reduced to [[0, q)]. *)
