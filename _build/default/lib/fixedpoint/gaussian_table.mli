(** The paper's probability matrix (Sec. 3.2).

    Row [v] holds the n-bit binary expansion of [D^n_σ(v)] for [v = 0] and
    [2·D^n_σ(v)] for [v ∈ [1, τσ]] — the sign of a sample is decided by a
    separate random bit.  Probabilities are floor-rounded so their sum stays
    strictly below 1 (the residual mass is the never-terminating string set
    of Theorem 1; see DESIGN.md §5). *)

type t = private {
  sigma : string;  (** σ exactly as requested, e.g. ["6.15543"]. *)
  precision : int;  (** n: number of binary fraction digits kept. *)
  tail_cut : int;  (** τ: support is [[0, floor(τσ)]]. *)
  support : int;  (** floor(τσ). *)
  prob : Ctg_bigint.Nat.t array;  (** [prob.(v)] = floor(p_v · 2^n) < 2^n. *)
}

val create : sigma:string -> precision:int -> tail_cut:int -> t
(** Builds the table with 96 guard bits of internal precision.
    @raise Invalid_argument if σ parses to zero or precision < 4. *)

val row_bit : t -> row:int -> col:int -> int
(** Matrix entry [P[row][col]]: the digit of [p_row] worth [2^-(col+1)]. *)

val column_weight : t -> int -> int
(** [h_i]: Hamming weight of column [i] (number of DDG leaves at level i). *)

val residual : t -> Ctg_bigint.Nat.t
(** [2^n - Σ_v prob.(v)]: never-terminating probability mass, scaled by
    [2^n].  Bounded by [support + 1]. *)

val pp_matrix : Format.formatter -> t -> unit
(** Render the matrix like the paper's Fig. 1 (rows P0..P_support). *)
