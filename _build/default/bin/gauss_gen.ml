(* gauss_gen: the command-line tool the paper promises — instantiate a
   constant-time discrete Gaussian sampler for an arbitrary sigma and
   precision, inspect the pipeline, and emit portable source code.

     gauss_gen analyze --sigma 2 --precision 128
     gauss_gen emit --sigma 6.15543 --lang c -o sampler.c
     gauss_gen sample --sigma 2 -n 100
     gauss_gen table --sigma 2 --precision 16        # probability matrix
*)

open Cmdliner

let sigma_arg =
  let doc = "Standard deviation of the target discrete Gaussian (decimal)." in
  Arg.(value & opt string "2" & info [ "sigma" ] ~docv:"SIGMA" ~doc)

let precision_arg =
  let doc = "Binary precision n of the probabilities." in
  Arg.(value & opt int 128 & info [ "precision"; "p" ] ~docv:"N" ~doc)

let tail_cut_arg =
  let doc = "Tail cut factor tau; the support is [0, tau*sigma]." in
  Arg.(value & opt int 13 & info [ "tail-cut" ] ~docv:"TAU" ~doc)

let build_enum sigma precision tail_cut =
  Ctg_kyao.Leaf_enum.enumerate
    (Ctg_kyao.Matrix.create ~sigma ~precision ~tail_cut)

(* ------------------------------------------------------------------ *)

let analyze sigma precision tail_cut =
  let p = Ctgauss.Pipeline.run ~sigma ~precision ~tail_cut () in
  Format.printf "%a@." Ctgauss.Pipeline.pp p;
  let e = p.Ctgauss.Pipeline.enum in
  Format.printf "delta=%d n'=%d leaves=%d unresolved=%d theorem1=%b@."
    e.Ctg_kyao.Leaf_enum.delta e.Ctg_kyao.Leaf_enum.max_ones
    (Array.length e.Ctg_kyao.Leaf_enum.leaves)
    e.Ctg_kyao.Leaf_enum.unresolved
    (Ctg_kyao.Leaf_enum.check_theorem1 e);
  Format.printf "program: %a@." Ctgauss.Gate.pp_stats p.Ctgauss.Pipeline.program;
  Format.printf "baseline (simple minimization): %a@." Ctgauss.Gate.pp_stats
    p.Ctgauss.Pipeline.simple_program

let analyze_cmd =
  let doc = "Run the full pipeline and report every stage (paper Fig. 4)." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const analyze $ sigma_arg $ precision_arg $ tail_cut_arg)

(* ------------------------------------------------------------------ *)

let emit sigma precision tail_cut lang output method_ =
  let enum = build_enum sigma precision tail_cut in
  let program =
    match method_ with
    | "split" -> Ctgauss.Compile.compile (Ctgauss.Sublist.build enum)
    | "simple" -> Ctgauss.Compile_simple.compile enum
    | other -> failwith (Printf.sprintf "unknown method %S" other)
  in
  let name = "ct_gauss_sample" in
  let code =
    match lang with
    | "c" -> Ctgauss.Codegen.to_c ~name program
    | "ocaml" -> Ctgauss.Codegen.to_ocaml ~name program
    | "dot" -> Ctgauss.Codegen.to_dot ~name program
    | other -> failwith (Printf.sprintf "unknown language %S" other)
  in
  (match output with
  | None -> print_string code
  | Some file ->
    Out_channel.with_open_text file (fun oc -> output_string oc code);
    Format.printf "wrote %s: sigma=%s n=%d %a@." file sigma precision
      Ctgauss.Gate.pp_stats program)

let emit_cmd =
  let lang =
    Arg.(value & opt string "c" & info [ "lang"; "l" ] ~docv:"LANG"
           ~doc:"Output language: c, ocaml or dot.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Output file (stdout when omitted).")
  in
  let method_ =
    Arg.(value & opt string "split" & info [ "method" ] ~docv:"METHOD"
           ~doc:"Compiler: split (this paper) or simple (the [21] baseline).")
  in
  let doc = "Emit the compiled constant-time sampler as source code." in
  Cmd.v
    (Cmd.info "emit" ~doc)
    Term.(const emit $ sigma_arg $ precision_arg $ tail_cut_arg $ lang $ output $ method_)

(* ------------------------------------------------------------------ *)

let sample sigma precision tail_cut count seed histogram =
  let enum = build_enum sigma precision tail_cut in
  let s = Ctgauss.Sampler.of_enum enum in
  let rng = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed seed) in
  let samples = Array.init count (fun _ -> Ctgauss.Sampler.sample s rng) in
  if histogram then begin
    let hist = Ctg_stats.Histogram.of_samples samples in
    Format.printf "%a" (Ctg_stats.Histogram.pp_bars ~width:50) hist;
    Format.printf "mean=%+.4f std=%.4f (target sigma %s)@."
      (Ctg_stats.Histogram.mean hist)
      (Ctg_stats.Histogram.std_dev hist)
      sigma
  end
  else
    Array.iteri
      (fun i v ->
        Format.printf "%d%s" v (if (i + 1) mod 20 = 0 then "\n" else " "))
      samples;
  if not histogram then Format.printf "@."

let sample_cmd =
  let count =
    Arg.(value & opt int 63 & info [ "count"; "n" ] ~docv:"COUNT"
           ~doc:"Number of samples to draw.")
  in
  let seed =
    Arg.(value & opt string "gauss_gen" & info [ "seed" ] ~docv:"SEED"
           ~doc:"Deterministic ChaCha20 seed string.")
  in
  let histogram =
    Arg.(value & flag & info [ "histogram" ] ~doc:"Print a histogram instead of raw values.")
  in
  let doc = "Draw signed samples from the compiled sampler." in
  Cmd.v
    (Cmd.info "sample" ~doc)
    Term.(const sample $ sigma_arg $ precision_arg $ tail_cut_arg $ count $ seed $ histogram)

(* ------------------------------------------------------------------ *)

let table sigma precision tail_cut =
  let gt = Ctg_fixed.Gaussian_table.create ~sigma ~precision ~tail_cut in
  Format.printf "%a" Ctg_fixed.Gaussian_table.pp_matrix gt;
  Format.printf "support=%d residual=%s/2^%d@." gt.Ctg_fixed.Gaussian_table.support
    (Ctg_bigint.Nat.to_string (Ctg_fixed.Gaussian_table.residual gt))
    precision

let table_cmd =
  let doc = "Print the probability matrix (paper Fig. 1)." in
  Cmd.v
    (Cmd.info "table" ~doc)
    Term.(const table $ sigma_arg $ precision_arg $ tail_cut_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "constant-time discrete Gaussian sampler generator (DAC 2019 reproduction)"
  in
  let info = Cmd.info "gauss_gen" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ analyze_cmd; emit_cmd; sample_cmd; table_cmd ]))
