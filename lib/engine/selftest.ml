module Sm = Ctg_prng.Splitmix64
module Ky = Ctg_kyao

type failure = {
  sigma : string;
  index : int; (* -1: program digest mismatch, before any KAT ran *)
  expected : int option; (* None: the reference walk is unterminated *)
  got : int option; (* None: the compiled program flagged invalid *)
}

exception Failed of failure

let pp_failure fmt f =
  if f.index < 0 then
    Format.fprintf fmt
      "selftest integrity check failed for sigma=%s: gate-table digest \
       differs from the one recorded at compile time"
      f.sigma
  else begin
    let show = function Some v -> string_of_int v | None -> "-" in
    Format.fprintf fmt
      "selftest KAT %d failed for sigma=%s: reference %s, compiled %s" f.index
      f.sigma (show f.expected) (show f.got)
  end

let default_strings = 512

(* KAT inputs are fixed for all time: the all-zeros and all-ones strings
   plus [default_strings - 2] Splitmix-derived ones from a constant seed.
   A corrupted gate table must disagree with the trusted Knuth-Yao walk
   (driven by the sampler's own probability matrix, which the corruption
   model leaves intact) on at least one of them to be caught. *)
let kat_seed = 0x5E1F7E5700C0FFEEL

let vectors ~num_vars ~strings =
  let sm = Sm.create kat_seed in
  Array.init strings (fun i ->
      if i = 0 then Array.make num_vars false
      else if i = 1 then Array.make num_vars true
      else Array.init num_vars (fun _ -> Sm.next_int sm 2 = 1))

let run ?(strings = default_strings) sampler =
  let program = Ctgauss.Sampler.program sampler in
  let matrix = Ctgauss.Sampler.matrix sampler in
  let sigma = Ctgauss.Sampler.sigma sampler in
  if not (Ctgauss.Sampler.integrity_ok sampler) then
    Error { sigma; index = -1; expected = None; got = None }
  else begin
  let num_vars = program.Ctgauss.Gate.num_vars in
  let inputs = vectors ~num_vars ~strings in
  let rec go i =
    if i >= strings then Ok ()
    else begin
      let bits = inputs.(i) in
      let mag, valid = Ctgauss.Sampler.eval_bits sampler bits in
      let reference = Ky.Column_sampler.walk_bits matrix bits in
      let ok, expected, got =
        match reference with
        | Ky.Column_sampler.Hit { value; _ } ->
          (valid && mag = value, Some value, if valid then Some mag else None)
        | Ky.Column_sampler.Exhausted ->
          (not valid, None, if valid then Some mag else None)
      in
      if ok then go (i + 1) else Error { sigma; index = i; expected; got }
    end
  in
  go 0
  end

let check ?strings sampler =
  match run ?strings sampler with Ok () -> () | Error f -> raise (Failed f)
