module Int_set = Set.Make (Int)

let cover ~ones ~primes =
  let rec go uncovered chosen =
    if Int_set.is_empty uncovered then List.rev chosen
    else begin
      let score c =
        Int_set.fold
          (fun m acc -> if Cube.covers c m then acc + 1 else acc)
          uncovered 0
      in
      let best =
        List.fold_left
          (fun best c ->
            let s = score c in
            match best with
            | None -> if s > 0 then Some (c, s) else None
            | Some (_, bs) ->
              if s > bs then Some (c, s)
              else if
                s = bs && s > 0
                &&
                match best with
                | Some (bc, _) -> Cube.num_literals c < Cube.num_literals bc
                | None -> false
              then Some (c, s)
              else best)
          None primes
      in
      match best with
      | None -> failwith "Greedy_cover.cover: uncoverable minterm"
      | Some (c, _) ->
        let uncovered = Int_set.filter (fun m -> not (Cube.covers c m)) uncovered in
        go uncovered (c :: chosen)
    end
  in
  go (Int_set.of_list ones) []
