(* The multi-tenant Falcon signing daemon: HTTP request path (shared
   Ctg_net stack), per-tenant keyring, request batching onto a persistent
   Workforce, and the PR-5 assurance monitors fed from *live* signing
   traffic — /healthz guards a real request path now.

   Randomness discipline: every accepted request is assigned a lane of the
   daemon's master seed from an atomic counter at submit time, and
   Sign.sign_many is called with those explicit lanes.  A request's
   signature is therefore a pure function of (seed, lane, key, message) —
   independent of which batch the scheduler packed it into, which is what
   the bit-identity test pins. *)

open Ctg_sync.Shim
module Obs = Ctg_obs
module Rtev = Ctg_rtev.Rtev
module Assure = Ctg_assure
module F = Ctg_falcon
module Sig = Ctg_samplers.Sampler_sig
module Jsonx = Obs.Jsonx
module Http = Ctg_net.Http

type config = {
  n : int;
  sigma : string;
  precision : int;
  tail_cut : int;
  host : string;
  port : int;
  http_workers : int;
  queue_capacity : int;
  max_batch : int;
  linger : float;
  sign_domains : int option;
  check : bool;
  drift_window : int;
  leak_steps : int;
  seed : string;
  key_seed : string;
  trace : bool;
  rtev : bool;
  rtev_custom : bool;
  pause_budget_ms : float;
}

let default_config =
  {
    n = 64;
    sigma = "2";
    precision = 16;
    tail_cut = 13;
    host = "127.0.0.1";
    port = 8732;
    http_workers = 8;
    queue_capacity = 64;
    max_batch = 16;
    linger = 0.002;
    sign_domains = None;
    check = true;
    drift_window = 50_000;
    leak_steps = 8;
    seed = "ctg-serve";
    key_seed = "ctg-serve-key";
    trace = false;
    rtev = false;
    rtev_custom = false;
    pause_budget_ms = 0.0;
  }

type sign_request = {
  tenant : string;
  msg : bytes;
  lane : int;
  t_submit : int;
  rid : string;  (* X-Request-Id, threaded through for trace/flow args *)
}

type sign_result = {
  tenant : string;
  signature : F.Sign.signature;
  encoded : bytes;
  lane : int;
  batch : int;  (** Size of the batch this request was coalesced into. *)
}

type t = {
  config : config;
  params : F.Params.t;
  registry : Obs.Registry.t;
  monitor : Assure.Monitor.t;
  leak : Assure.Leak.t;
  keyring : Keyring.t;
  workforce : Ctg_engine.Workforce.t;
  master : Ctgauss.Sampler.t;
  batcher : (sign_request, sign_result) Batcher.t;
  lane_counter : int Atomic.t;
  rtev_on : bool;  (* config.rtev and the runtime ring actually started *)
  serve_gc_pause : Obs.Registry.histo option;
  last_rid : string Atomic.t;  (* pause-exemplar attribution window *)
  mutable server : Http.server option;
  mutable stopped : bool;
  stop_mu : Mutex.t;
  (* Metric handles that are not per-tenant. *)
  requests_histo_mu : Mutex.t;
  mutable tenant_handles :
    (string * (Obs.Registry.counter * Obs.Registry.histo)) list;
}

(* ------------------------------------------------------------------ *)
(* Live drift feed                                                     *)
(* ------------------------------------------------------------------ *)

(* Each base-sampler instance buffers its raw signed draws and folds them
   into the drift monitor a block at a time (Drift.observe_sub locks a
   mutex — amortize it).  The partial tail of an instance is dropped,
   which is value-independent and therefore unbiased; the monitor just
   sees a slightly smaller sample volume.  The block is capped at the
   draws of one signing attempt (2n) so small ring degrees still flush —
   an instance that never fills its buffer would feed the monitor
   nothing. *)
let observed_base ~n drift master =
  let inst = Sig.of_bitsliced (Ctgauss.Sampler.clone master) in
  let cap = max 16 (min 64 (2 * n)) in
  let buf = Array.make cap 0 in
  let fill = ref 0 in
  let observe v =
    buf.(!fill) <- v;
    incr fill;
    if !fill = cap then begin
      Assure.Drift.observe_sub drift buf ~pos:0 ~len:cap;
      fill := 0
    end
  in
  F.Base_sampler.of_instance ~observe inst

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let run_batch_inner t (reqs : sign_request array) : sign_result array =
  let drift = Assure.Monitor.drift t.monitor in
  let batch = Array.length reqs in
  (* Group by tenant, preserving submission order inside each group. *)
  let groups = Hashtbl.create 4 in
  let order = ref [] in
  Array.iteri
    (fun i (r : sign_request) ->
      match Hashtbl.find_opt groups r.tenant with
      | Some l -> l := i :: !l
      | None ->
        Hashtbl.replace groups r.tenant (ref [ i ]);
        order := r.tenant :: !order)
    reqs;
  let out = Array.make batch None in
  List.iter
    (fun tenant ->
      let idxs = List.rev !(Hashtbl.find groups tenant) in
      let kp = Keyring.lookup t.keyring ~tenant in
      let msgs = Array.of_list (List.map (fun i -> reqs.(i).msg) idxs) in
      let lanes = Array.of_list (List.map (fun i -> reqs.(i).lane) idxs) in
      let sigs =
        F.Sign.sign_many ~workforce:t.workforce ~lanes ~check:t.config.check kp
          ~make_base:(fun () ->
            observed_base ~n:t.params.F.Params.n drift t.master)
          ~seed:t.config.seed ~msgs
      in
      List.iteri
        (fun j i ->
          let s = sigs.(j) in
          out.(i) <-
            Some
              {
                tenant;
                signature = s;
                encoded =
                  F.Codec.encode_signature ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2;
                lane = reqs.(i).lane;
                batch;
              })
        idxs)
    (List.rev !order);
  (* Interleave the background leak probes with real work, Soak-style. *)
  if t.config.leak_steps > 0 then Assure.Leak.step ~n:t.config.leak_steps t.leak;
  Array.map
    (function Some r -> r | None -> failwith "Daemon.run_batch: missing result")
    out

let run_batch_traced t (reqs : sign_request array) : sign_result array =
  Obs.Trace.with_span "batch" ~cat:"serve"
    ~args:(fun () ->
      [
        ("batch", string_of_int (Array.length reqs));
        ( "lanes",
          String.concat ","
            (Array.to_list
               (Array.map (fun (r : sign_request) -> string_of_int r.lane) reqs))
        );
      ])
    (fun () ->
      (* One flow step per coalesced request: the arrow from each request
         span passes through this batch slice on the runner domain before
         landing on the per-message sign span. *)
      Array.iter
        (fun (r : sign_request) ->
          Obs.Trace.flow_step ~id:r.lane "sig"
            ~args:(fun () -> [ ("request_id", r.rid) ]))
        reqs;
      run_batch_inner t reqs)

(* Pause-charged latency split: alongside the batcher's queue-wait and
   service histograms, [serve_gc_pause_ns] records the GC pause time that
   landed during each batch run (the rtev cumulative counter sampled
   around it, with an opportunistic consumer poll on each read), carrying
   the batch's first request id as exemplar — a pause outlier in
   /metrics links to a real request's trace slice. *)
let run_batch t (reqs : sign_request array) : sign_result array =
  match t.serve_gc_pause with
  | None -> run_batch_traced t reqs
  | Some h ->
    let rid0 = if Array.length reqs > 0 then reqs.(0).rid else "" in
    Atomic.set t.last_rid rid0;
    let p0 = Rtev.pause_source_value () in
    let finish () =
      let dp = max 0 (Rtev.pause_source_value () - p0) in
      Obs.Registry.observe_exemplar h dp rid0;
      Atomic.set t.last_rid ""
    in
    (match run_batch_traced t reqs with
    | res ->
      finish ();
      res
    | exception e ->
      finish ();
      raise e)

(* ------------------------------------------------------------------ *)
(* Per-tenant metrics                                                  *)
(* ------------------------------------------------------------------ *)

let tenant_handles t tenant =
  Mutex.lock t.requests_histo_mu;
  let h =
    match List.assoc_opt tenant t.tenant_handles with
    | Some h -> h
    | None ->
      let labels = [ ("tenant", tenant) ] in
      let h =
        ( Obs.Registry.counter t.registry ~labels "serve_requests_total",
          Obs.Registry.histo t.registry ~labels "serve_request_latency_ns" )
      in
      t.tenant_handles <- (tenant, h) :: t.tenant_handles;
      h
  in
  Mutex.unlock t.requests_histo_mu;
  h

(* ------------------------------------------------------------------ *)
(* HTTP surface                                                        *)
(* ------------------------------------------------------------------ *)

let json ?(status = 200) j =
  Http.response ~status ~content_type:"application/json"
    (Jsonx.pretty j ^ "\n")

let error ~status msg = json ~status (Jsonx.Obj [ ("error", Jsonx.Str msg) ])

let tenant_of_request req =
  match Http.query_param req "tenant" with
  | Some tname -> Some tname
  | None -> Http.header req "x-tenant"

let sign_response (r : sign_result) ~latency_ns =
  Jsonx.Obj
    [
      ("tenant", Str r.tenant);
      ("sig", Str (Ctg_util.Hex.encode r.encoded));
      ("attempts", Num (float_of_int r.signature.F.Sign.attempts));
      ("lane", Num (float_of_int r.lane));
      ("batch", Num (float_of_int r.batch));
      ("latency_ns", Num (float_of_int latency_ns));
    ]

let handle_sign t req =
  match tenant_of_request req with
  | None -> error ~status:400 "missing tenant (query ?tenant= or X-Tenant)"
  | Some tenant when not (Keyring.valid_tenant tenant) ->
    error ~status:400 "invalid tenant name"
  | Some tenant ->
    let counter, histo = tenant_handles t tenant in
    let rid = Http.request_id req in
    let t_submit = Obs.Clock.now_ns () in
    let sreq =
      {
        tenant;
        msg = Bytes.of_string req.Http.body;
        lane = Atomic.fetch_and_add t.lane_counter 1;
        t_submit;
        rid;
      }
    in
    let outcome =
      (* The request span covers the whole blocking submit (queue wait +
         batch run); the flow it starts — id = lane, unique per request —
         is stepped by the batch span and terminated by the per-message
         sign span, drawing request -> batch -> sign across domains. *)
      Obs.Trace.with_span "request" ~cat:"serve"
        ~args:(fun () ->
          [
            ("request_id", rid);
            ("tenant", tenant);
            ("lane", string_of_int sreq.lane);
          ])
        (fun () ->
          Obs.Trace.flow_start ~id:sreq.lane "sig"
            ~args:(fun () -> [ ("request_id", rid) ]);
          Batcher.submit t.batcher sreq)
    in
    (match outcome with
    | Batcher.Done r ->
      let latency_ns = Obs.Clock.now_ns () - t_submit in
      Obs.Registry.incr counter;
      Obs.Registry.observe_exemplar histo latency_ns rid;
      json (sign_response r ~latency_ns)
    | Batcher.Shed ->
      if Batcher.stopping t.batcher then
        error ~status:503 "draining: daemon is shutting down"
      else error ~status:429 "overloaded: signing queue is full"
    | Batcher.Failed e ->
      error ~status:500 (Printf.sprintf "signing failed: %s" (Printexc.to_string e)))

let handle_pubkey t req =
  match tenant_of_request req with
  | None -> error ~status:400 "missing tenant (query ?tenant= or X-Tenant)"
  | Some tenant when not (Keyring.valid_tenant tenant) ->
    error ~status:400 "invalid tenant name"
  | Some tenant ->
    let kp = Keyring.lookup t.keyring ~tenant in
    json
      (Jsonx.Obj
         [
           ("tenant", Str tenant);
           ("n", Num (float_of_int t.params.F.Params.n));
           ( "pk",
             Str
               (Ctg_util.Hex.encode (F.Codec.encode_public_key kp.F.Keygen.h))
           );
           ( "norm_bound_sq",
             Num (F.Sign.norm_bound_sq t.params) );
         ])

let handle_tenants t =
  json
    (Jsonx.Obj
       [
         ( "tenants",
           Jsonx.List
             (List.map (fun s -> Jsonx.Str s) (Keyring.tenants t.keyring)) );
       ])

(* The causal slice of one request: every event carrying its request id,
   plus every event on its lane's flow (the per-domain chunk/sign spans and
   the batch span, whose [lanes] arg lists the coalesced lanes).  Arg
   matching avoids reconstructing a span tree — the ids were planted for
   exactly this query. *)
let trace_slice_events ~rid evs =
  let arg k (e : Obs.Trace.event) = List.assoc_opt k e.Obs.Trace.args in
  let lane =
    List.find_map
      (fun e ->
        match arg "request_id" e with
        | Some r when r = rid -> arg "lane" e
        | _ -> None)
      evs
  in
  match lane with
  | None -> None
  | Some lane ->
    let keep e =
      (match arg "request_id" e with Some r -> r = rid | None -> false)
      || (match arg "lane" e with Some l -> l = lane | None -> false)
      || (match arg "lanes" e with
         | Some ls -> List.mem lane (String.split_on_char ',' ls)
         | None -> false)
    in
    let kept = List.filter keep evs in
    (* Fold in the GC pause spans (rtev's synthetic per-domain tracks)
       overlapping the request's wall-clock window, so the slice shows
       the pauses that hit it. *)
    let window =
      List.fold_left
        (fun acc (e : Obs.Trace.event) ->
          let t0 = e.Obs.Trace.ts_ns in
          let t1 = t0 + max 0 e.Obs.Trace.dur_ns in
          match acc with
          | None -> Some (t0, t1)
          | Some (w0, w1) -> Some (min w0 t0, max w1 t1))
        None kept
    in
    let gc =
      match window with
      | None -> []
      | Some (w0, w1) ->
        List.filter
          (fun (e : Obs.Trace.event) ->
            e.Obs.Trace.cat = "gc"
            && e.Obs.Trace.ph = Obs.Trace.Complete
            && e.Obs.Trace.ts_ns < w1
            && e.Obs.Trace.ts_ns + e.Obs.Trace.dur_ns > w0)
          evs
    in
    Some (kept @ gc)

let trace_slice rid = trace_slice_events ~rid (Obs.Trace.events ())

let handle_trace t req =
  if not t.config.trace then
    error ~status:404 "tracing disabled (start the daemon with trace enabled)"
  else
    match Http.query_param req "request_id" with
    | None -> json (Obs.Trace.export ())
    | Some rid -> (
      match trace_slice rid with
      | None -> error ~status:404 ("no buffered trace for request_id " ^ rid)
      | Some evs -> json (Obs.Trace.export_events evs))

let handler t : Http.handler =
  let monitor_routes = Assure.Monitor.routes t.monitor ~registry:t.registry in
  fun req ->
    match (req.Http.meth, req.Http.path) with
    | "POST", "/v1/sign" -> handle_sign t req
    | "GET", "/v1/pubkey" -> handle_pubkey t req
    | "GET", "/v1/tenants" -> handle_tenants t
    | "GET", "/v1/trace" -> handle_trace t req
    | "GET", path -> (
      match List.assoc_opt path monitor_routes with
      | Some f -> (
        try f ()
        with e ->
          Http.response ~status:500
            (Printf.sprintf "handler error: %s\n" (Printexc.to_string e)))
      | None ->
        Http.response ~status:404 (Printf.sprintf "no route for %s\n" path))
    | "POST", _ ->
      Http.response ~status:404
        (Printf.sprintf "no route for %s\n" req.Http.path)
    | meth, _ ->
      Http.response ~status:405 (Printf.sprintf "method %s not allowed\n" meth)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let params_of_n n =
  match n with
  | 256 -> F.Params.level1
  | 512 -> F.Params.level2
  | 1024 -> F.Params.level3
  | _ -> F.Params.custom ~n

let create ?(listen = true) config =
  if config.trace then Obs.Trace.enable ();
  let params = params_of_n config.n in
  let registry = Obs.Registry.create () in
  let master =
    Ctg_engine.Registry.lookup Ctg_engine.Registry.global ~sigma:config.sigma
      ~precision:config.precision ~tail_cut:config.tail_cut ()
  in
  let labels = [ ("sigma", config.sigma) ] in
  let leak =
    Assure.Leak.create ~registry ~labels
      ~probe:
        (Assure.Leak.ops_probe (Sig.of_bitsliced (Ctgauss.Sampler.clone master)))
      ()
  in
  let drift_config =
    { Assure.Drift.default_config with window = config.drift_window }
  in
  let monitor =
    Assure.Monitor.create ~config:drift_config ~registry ~labels ~leak
      ~matrix:(Ctgauss.Sampler.matrix master) ()
  in
  let keyring =
    Keyring.create ~registry ~seed_prefix:config.key_seed ~params ()
  in
  let workforce = Ctg_engine.Workforce.create ?domains:config.sign_domains () in
  (* The batcher's run-function needs the daemon record; tie the knot with
     a ref rather than [lazy] (OCaml 5 [Lazy.force] is not domain-safe and
     the runner domain would race the main domain's force).  The ref is
     written before any request can be submitted, and the batcher's mutex
     publishes it to the runner domain. *)
  let self = ref None in
  let run reqs =
    match !self with
    | Some t -> run_batch t reqs
    | None -> failwith "Daemon: batch before initialisation"
  in
  let batcher =
    Batcher.create ~registry ~linger:config.linger
      ~capacity:config.queue_capacity ~max_batch:config.max_batch ~run ()
  in
  (* Start the rtev consumer before the record is built so its availability
     decides whether the pause-charged split exists at all. *)
  let rtev_on =
    config.rtev && Rtev.start ~registry ~trace:config.trace ()
  in
  let t =
    {
      config;
      params;
      registry;
      monitor;
      leak;
      keyring;
      workforce;
      master;
      batcher;
      lane_counter = Atomic.make 0;
      server = None;
      stopped = false;
      stop_mu = Mutex.create ();
      rtev_on;
      serve_gc_pause =
        (if rtev_on then Some (Obs.Registry.histo registry "serve_gc_pause_ns")
         else None);
      last_rid = Atomic.make "";
      requests_histo_mu = Mutex.create ();
      tenant_handles = [];
    }
  in
  self := Some t;
  if rtev_on then begin
    Rtev.set_rid_source
      (Some
         (fun () ->
           match Atomic.get t.last_rid with "" -> None | rid -> Some rid));
    Rtev.install_trace_pause_source ();
    (if config.pause_budget_ms > 0.0 then begin
       Rtev.set_pause_budget_ns
         (Some (int_of_float (config.pause_budget_ms *. 1e6)));
       Assure.Monitor.add_check monitor ~name:"gc_pause_budget" (fun () ->
           let b = Rtev.budget_breaches () in
           if b > 0 then
             Some
               (Printf.sprintf "%d pause(s) over %gms budget" b
                  config.pause_budget_ms)
           else None)
     end);
    if config.rtev_custom then Rtev.enable_custom_spans ();
    Rtev.start_poller ()
  end;
  if listen then
    t.server <-
      Some
        (Http.start_handler ~host:config.host ~workers:config.http_workers
           ~port:config.port (handler t));
  t

let port t =
  match t.server with Some s -> Http.port s | None -> t.config.port

let registry t = t.registry
let monitor t = t.monitor
let rtev_active t = t.rtev_on
let keyring t = t.keyring
let batcher_shed t = Batcher.shed_count t.batcher
let batches t = Batcher.batches t.batcher
let requests t = Batcher.submitted t.batcher
let config t = t.config

let healthy t = Assure.Monitor.healthy t.monitor

let stop t =
  Mutex.lock t.stop_mu;
  if t.stopped then Mutex.unlock t.stop_mu
  else begin
    t.stopped <- true;
    Mutex.unlock t.stop_mu;
    (* Order matters: the HTTP drain needs the batcher alive (in-flight
       requests are blocked in submit), the batcher drain needs the
       workforce alive.  Then flush the partial drift window so the final
       /metrics state reflects everything the daemon sampled. *)
    (match t.server with
    | Some s ->
      Http.stop s;
      t.server <- None
    | None -> ());
    Batcher.shutdown t.batcher;
    if t.rtev_on then begin
      Rtev.set_rid_source None;
      if t.config.pause_budget_ms > 0.0 then Rtev.set_pause_budget_ns None;
      if t.config.rtev_custom then Rtev.disable_custom_spans ();
      Rtev.stop ()
    end;
    ignore (Assure.Drift.flush (Assure.Monitor.drift t.monitor));
    Ctg_engine.Workforce.shutdown t.workforce
  end
