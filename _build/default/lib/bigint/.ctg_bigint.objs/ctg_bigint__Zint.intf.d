lib/bigint/zint.mli: Format Nat
