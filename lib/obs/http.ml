type response = { status : int; content_type : string; body : string }

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body
    =
  { status; content_type; body }

type route = string * (unit -> response)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let render_response r =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    r.status (status_text r.status) r.content_type
    (String.length r.body)
    r.body

let handle ~routes path =
  (* The query string never selects a route. *)
  let path =
    match String.index_opt path '?' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  match List.assoc_opt path routes with
  | None ->
    response ~status:404 (Printf.sprintf "no route for %s\n" path)
  | Some f -> (
    try f ()
    with e ->
      response ~status:500 (Printf.sprintf "handler error: %s\n" (Printexc.to_string e)))

let handle_request ~routes raw =
  let request_line =
    match String.index_opt raw '\r' with
    | Some i -> String.sub raw 0 i
    | None -> ( match String.index_opt raw '\n' with
      | Some i -> String.sub raw 0 i
      | None -> raw)
  in
  match String.split_on_char ' ' request_line with
  | [ "GET"; path; _version ] -> handle ~routes path
  | [ meth; _; _ ] ->
    response ~status:405 (Printf.sprintf "method %s not allowed\n" meth)
  | _ -> response ~status:400 "malformed request line\n"

(* ---------------------------------------------------------------- *)
(* Server                                                            *)
(* ---------------------------------------------------------------- *)

type server = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  acceptor : unit Domain.t;
}

let read_request fd =
  (* GET only, so the request ends at the blank line; cap the read so a
     hostile peer cannot grow the buffer unboundedly. *)
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      let s = Buffer.contents buf in
      let have_terminator =
        let rec find i =
          i + 3 < String.length s
          && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
               && s.[i + 3] = '\n')
             || find (i + 1))
        in
        find 0
        || (match String.index_opt s '\n' with
           | Some i -> String.length s > i + 1 && s.[i + 1] = '\n'
           | None -> false)
      in
      if (not have_terminator) && Buffer.length buf < 8192 then go ()
    end
  in
  go ();
  Buffer.contents buf

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | 0 -> pos := n
    | written -> pos := !pos + written
    | exception _ -> pos := n
  done

let accept_loop sock stopping routes =
  while not (Atomic.get stopping) do
    match Unix.accept sock with
    | client, _ ->
      (try
         let raw = read_request client in
         if raw <> "" then
           write_all client (render_response (handle_request ~routes raw))
       with _ -> ());
      (try Unix.close client with _ -> ())
    | exception _ ->
      (* [stop] closed the listening socket under us; the flag check
         terminates the loop.  Transient accept errors just retry. *)
      if not (Atomic.get stopping) then Unix.sleepf 0.01
  done

let start ?(host = "127.0.0.1") ?(backlog = 16) ~port ~routes () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  Unix.listen sock backlog;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = Atomic.make false in
  let acceptor = Domain.spawn (fun () -> accept_loop sock stopping routes) in
  { sock; port; stopping; acceptor }

let port s = s.port

let stop s =
  if not (Atomic.exchange s.stopping true) then begin
    (* Closing the socket aborts a blocked [accept]; a racing accept on
       some platforms instead returns the next connection, so poke the
       port once to guarantee a wakeup. *)
    (try Unix.close s.sock with _ -> ());
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", s.port))
        with _ -> ());
       Unix.close fd
     with _ -> ());
    Domain.join s.acceptor
  end
