lib/falcon/ntt.mli:
