(** Splitmix64: fast, seedable, non-cryptographic generator.  Used only for
    tests and workload generation — never for the samplers under test. *)

type t

val create : int64 -> t
val next : t -> int64
val next_int : t -> int -> int
(** [next_int t bound] is uniform in [[0, bound)]. *)

val next_float : t -> float
(** Uniform in [[0, 1)]. *)
