lib/falcon/keygen.ml: Array Ctg_bigint Ctg_prng Fftc Ldl Ntru_solve Ntt Params Polyz Zq
