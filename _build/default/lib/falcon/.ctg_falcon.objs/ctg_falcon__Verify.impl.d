lib/falcon/verify.ml: Array Bytes Hash_point Ntt Params Sign Zq
