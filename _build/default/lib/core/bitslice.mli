(** Bitsliced evaluation of gate programs (the paper's Sec. 3.2 SIMD trick).

    Each register holds one native [int]: 63 independent evaluation lanes.
    Passing words of all-zeros/all-ones per lane bit reproduces single-bit
    evaluation, which is how the equivalence tests drive it. *)

val lanes : int
(** 63 on a 64-bit OCaml runtime. *)

val all_ones : int
(** The lane word with every lane set. *)

type scratch
(** Reusable register file to keep the hot path allocation-free. *)

val scratch : Gate.t -> scratch

val eval : Gate.t -> scratch -> inputs:int array -> unit
(** Run the program; [inputs] has [num_vars] lane words. *)

val output : Gate.t -> scratch -> int -> int
(** Lane word of output bit [i] after {!eval}. *)

val valid_word : Gate.t -> scratch -> int
(** Lane word of the termination flag ([all_ones] if the program carries
    no valid bit). *)

val magnitudes : Gate.t -> scratch -> int array
(** Transpose the output bits into 63 per-lane sample magnitudes. *)

val eval_single : Gate.t -> bool array -> int * bool
(** Single evaluation on one bit string: [(magnitude, valid)]. *)
