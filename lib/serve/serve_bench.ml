(* The serving SLO gate: boot a real daemon on an ephemeral port, drive it
   with concurrent HTTP clients, and compare the client-observed tail
   latency against a direct sign_many baseline measured in the same
   process.  Gating on the *ratio* (plus an absolute floor for CI-runner
   noise) keeps the check meaningful across hosts: the daemon may spend a
   bounded multiple of the raw signing cost on queueing, coalescing and
   HTTP, wherever it runs. *)

open Ctg_sync.Shim
module Obs = Ctg_obs
module Jsonx = Obs.Jsonx
module F = Ctg_falcon
module Sig = Ctg_samplers.Sampler_sig
module Client = Ctg_net.Client

type entry = {
  n : int;
  sigma : string;
  tenants : int;
  requests : int;
  batches : int;
  mean_batch : float;
  shed : int;
  direct_ns : float;  (** Per-signature cost of a direct sign_many run. *)
  p50_ns : float;  (** Client-observed, connect-to-verdict per request. *)
  p99_ns : float;
  slo_ns : float;  (** The bound actually applied to [p99_ns]. *)
  healthy : bool;
}

let slo_mult = 25.0
let floor_ns = 250e6

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

(* Direct per-signature baseline: the same keypair, parameters and
   verify-after-sign work the daemon does, without HTTP or batching. *)
let direct_baseline ~params ~sigma ~precision ~tail_cut ~msgs () =
  let master =
    Ctg_engine.Registry.lookup Ctg_engine.Registry.global ~sigma ~precision
      ~tail_cut ()
  in
  let rng =
    Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "serve-bench-key")
  in
  let kp = F.Keygen.generate params rng in
  let make_base () =
    F.Base_sampler.of_instance (Sig.of_bitsliced (Ctgauss.Sampler.clone master))
  in
  let run () =
    F.Sign.sign_many ~check:true kp ~make_base ~seed:"serve-bench" ~msgs
  in
  ignore (run () : F.Sign.signature array);
  let t0 = Obs.Clock.now_ns () in
  let sigs = run () in
  let t1 = Obs.Clock.now_ns () in
  ignore (sigs : F.Sign.signature array);
  float_of_int (t1 - t0) /. float_of_int (Array.length msgs)

let measure ?(n = 16) ?(sigma = "2") ?(precision = 16) ?(tail_cut = 13)
    ?(tenants = 3) ?(per_tenant = 16) () =
  let params = Daemon.params_of_n n in
  let baseline_msgs =
    Array.init 8 (fun i -> Bytes.of_string (Printf.sprintf "baseline-%d" i))
  in
  let direct_ns =
    direct_baseline ~params ~sigma ~precision ~tail_cut ~msgs:baseline_msgs ()
  in
  let config =
    {
      Daemon.default_config with
      n;
      sigma;
      precision;
      tail_cut;
      port = 0;
      linger = 0.005;
      max_batch = 8;
      queue_capacity = 64;
    }
  in
  let d = Daemon.create config in
  let port = Daemon.port d in
  let tenant_names = Array.init tenants (Printf.sprintf "bench-t%d") in
  let workers =
    Array.map
      (fun tenant ->
        Domain.spawn (fun () ->
            let c = Client.connect ~port () in
            let lat = Array.make per_tenant 0.0 in
            for i = 0 to per_tenant - 1 do
              let t0 = Obs.Clock.now_ns () in
              let r =
                Client.request c ~meth:"POST"
                  ~path:("/v1/sign?tenant=" ^ tenant)
                  ~body:(Printf.sprintf "%s-%d" tenant i)
                  ()
              in
              let t1 = Obs.Clock.now_ns () in
              if r.Client.status <> 200 then
                failwith
                  (Printf.sprintf "sign -> %d: %s" r.Client.status r.Client.body);
              lat.(i) <- float_of_int (t1 - t0)
            done;
            Client.close c;
            lat))
      tenant_names
  in
  let latencies = Array.concat (Array.to_list (Array.map Domain.join workers)) in
  let requests = Daemon.requests d in
  let batches = Daemon.batches d in
  let shed = Daemon.batcher_shed d in
  let healthy = Daemon.healthy d in
  Daemon.stop d;
  Array.sort compare latencies;
  let mean_batch =
    if batches = 0 then 0.0 else float_of_int requests /. float_of_int batches
  in
  {
    n;
    sigma;
    tenants;
    requests;
    batches;
    mean_batch;
    shed;
    direct_ns;
    p50_ns = percentile latencies 0.50;
    p99_ns = percentile latencies 0.99;
    slo_ns = Float.max (slo_mult *. direct_ns) floor_ns;
    healthy;
  }

let ok e =
  e.p99_ns <= e.slo_ns && e.mean_batch > 1.0 && e.shed = 0 && e.healthy
  && e.requests > 0

let entry_json e =
  Jsonx.Obj
    [
      ("n", Num (float_of_int e.n));
      ("sigma", Str e.sigma);
      ("tenants", Num (float_of_int e.tenants));
      ("requests", Num (float_of_int e.requests));
      ("batches", Num (float_of_int e.batches));
      ("mean_batch", Num e.mean_batch);
      ("shed", Num (float_of_int e.shed));
      ("direct_ns", Num e.direct_ns);
      ("p50_ns", Num e.p50_ns);
      ("p99_ns", Num e.p99_ns);
      ("slo_ns", Num e.slo_ns);
      ("healthy", Bool e.healthy);
    ]

let to_json entries =
  Jsonx.Obj
    [
      ("bench", Str "serve");
      ("slo_mult", Num slo_mult);
      ("floor_ns", Num floor_ns);
      ("entries", List (List.map entry_json entries));
    ]

let save path entries =
  let oc = open_out path in
  output_string oc (Jsonx.pretty (to_json entries));
  output_char oc '\n';
  close_out oc

let pp_entry fmt e =
  Format.fprintf fmt
    "n=%-4d sigma=%-4s %d tenants x %d req: direct=%8.0f ns/sig  p50=%8.0f ns  \
     p99=%8.0f ns (slo %8.0f)  batch mean=%.2f  shed=%d  healthy=%b"
    e.n e.sigma e.tenants
    (if e.tenants = 0 then 0 else e.requests / e.tenants)
    e.direct_ns e.p50_ns e.p99_ns e.slo_ns e.mean_batch e.shed e.healthy
