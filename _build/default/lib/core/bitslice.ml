let lanes = 63
let all_ones = -1 (* all 63 value bits set; only bitwise use below *)

(* The evaluator is branchless: every gate is executed as
     r = ((a land b) land m1) lor ((a lxor b) land m2)
   with per-gate masks — And: (m1, m2) = (-1, 0); Or: (-1, -1);
   Xor: (0, -1); Not x: Xor against a pinned all-ones register; constants
   read the pinned register through the same formula.  A tag-dispatching
   interpreter paid a branch misprediction per gate on programs with
   irregular And/Or mixes (exactly what the selector-chain compiler
   emits), which skewed the Table-2 comparison; this form costs the same
   few ALU ops per gate regardless of the instruction pattern. *)
type scratch = {
  xs : int array;
  ys : int array;
  m1 : int array;
  m2 : int array;
  regs : int array;
  num_vars : int;
  ones_reg : int;
}

let scratch (p : Gate.t) =
  let nv = p.Gate.num_vars in
  let n = Array.length p.Gate.instrs in
  let ones_reg = nv + n in
  let xs = Array.make n ones_reg in
  let ys = Array.make n ones_reg in
  let m1 = Array.make n 0 in
  let m2 = Array.make n 0 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Gate.And (x, y) ->
        xs.(i) <- x;
        ys.(i) <- y;
        m1.(i) <- -1
      | Gate.Or (x, y) ->
        xs.(i) <- x;
        ys.(i) <- y;
        m1.(i) <- -1;
        m2.(i) <- -1
      | Gate.Xor (x, y) ->
        xs.(i) <- x;
        ys.(i) <- y;
        m2.(i) <- -1
      | Gate.Not x ->
        (* x lxor ones *)
        xs.(i) <- x;
        m2.(i) <- -1
      | Gate.Const true ->
        (* ones land ones *)
        m1.(i) <- -1
      | Gate.Const false -> ())
    p.Gate.instrs;
  let regs = Array.make (ones_reg + 1) 0 in
  regs.(ones_reg) <- all_ones;
  { xs; ys; m1; m2; regs; num_vars = nv; ones_reg }

let eval (p : Gate.t) (s : scratch) ~inputs =
  let nv = s.num_vars in
  Array.blit inputs 0 s.regs 0 nv;
  let n = Array.length p.Gate.instrs in
  let regs = s.regs and xs = s.xs and ys = s.ys and m1 = s.m1 and m2 = s.m2 in
  for i = 0 to n - 1 do
    let a = Array.unsafe_get regs (Array.unsafe_get xs i) in
    let b = Array.unsafe_get regs (Array.unsafe_get ys i) in
    Array.unsafe_set regs (nv + i)
      (a land b land Array.unsafe_get m1 i
      lor ((a lxor b) land Array.unsafe_get m2 i))
  done

let output (p : Gate.t) (s : scratch) i = s.regs.(p.Gate.outputs.(i))

let valid_word (p : Gate.t) (s : scratch) =
  match p.Gate.valid with None -> all_ones | Some r -> s.regs.(r)

let magnitudes (p : Gate.t) (s : scratch) =
  let m = Array.length p.Gate.outputs in
  let out = Array.make lanes 0 in
  for bit = 0 to m - 1 do
    let w = s.regs.(p.Gate.outputs.(bit)) in
    for lane = 0 to lanes - 1 do
      out.(lane) <- out.(lane) lor (((w lsr lane) land 1) lsl bit)
    done
  done;
  out

let eval_single (p : Gate.t) bits =
  let nv = p.Gate.num_vars in
  let inputs = Array.make nv 0 in
  let n = min nv (Array.length bits) in
  for i = 0 to n - 1 do
    inputs.(i) <- (if bits.(i) then all_ones else 0)
  done;
  let s = scratch p in
  eval p s ~inputs;
  let m = Array.length p.Gate.outputs in
  let mag = ref 0 in
  for bit = 0 to m - 1 do
    if output p s bit land 1 <> 0 then mag := !mag lor (1 lsl bit)
  done;
  (!mag, valid_word p s land 1 <> 0)
