type outcome = Hit of { value : int; level : int } | Exhausted

(* Alg. 1 with the inner row scan folded into arithmetic on the walk
   distance [d]: after [d <- 2d + r], the walk hits a leaf iff
   [d < h_col], and the sample is the (d+1)-th set row from the bottom. *)
let walk_gen (m : Matrix.t) next_bit =
  let rec go d col =
    if col >= m.Matrix.precision then Exhausted
    else
      match next_bit col with
      | None -> Exhausted
      | Some r ->
        let d = (2 * d) + r in
        let h = m.Matrix.col_weight.(col) in
        if d < h then Hit { value = Matrix.row_for m ~col ~rank:d; level = col }
        else go (d - h) (col + 1)
  in
  go 0 0

let walk m bs = walk_gen m (fun _ -> Some (Ctg_prng.Bitstream.next_bit bs))

let walk_bits m bits =
  walk_gen m (fun col ->
      if col < Array.length bits then Some (if bits.(col) then 1 else 0)
      else None)

let rec sample_magnitude m bs =
  match walk m bs with
  | Hit { value; _ } -> value
  | Exhausted -> sample_magnitude m bs

let sample_signed m bs =
  let v = sample_magnitude m bs in
  if Ctg_prng.Bitstream.next_bit bs = 1 then -v else v
