lib/falcon/hash_point.ml: Array Bytes Char Ctg_prng Zq
