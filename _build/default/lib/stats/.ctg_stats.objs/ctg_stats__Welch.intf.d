lib/stats/welch.mli: Moments
