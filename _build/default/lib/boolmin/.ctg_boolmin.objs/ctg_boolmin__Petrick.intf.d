lib/boolmin/petrick.mli: Cube
