(** Lint rules over compiled gate programs.  Rules that fire on a healthy
    compiler output are bugs in the compiler, so the default pipeline is
    expected to be lint-clean and CI fails on any [Warning]/[Error]:

    - ["well-formed"] ([Error]) — {!Ctgauss.Gate.validate} failed.
    - ["dead-gate"] ([Warning]) — instructions whose result cannot reach
      an output or the valid flag (the compilers prune, so any survivor
      is a regression).
    - ["duplicate-gate"] ([Warning]) — structurally identical live
      instructions (commutativity-normalized): missed CSE.
    - ["const-fold"] ([Warning]) — a live gate reads a register defined
      by [Const]: the builder should have folded it.
    - ["unused-input"] ([Info]) — input bits no output depends on;
      expected at full precision (strings longer than the deepest leaf
      decide nothing), reported for visibility only. *)

val lint : name:string -> Ctgauss.Gate.t -> Report.finding list
(** Runs every structural rule; [name] tags the findings' [where]. *)
