test/test_fixed.ml: Alcotest Array Ctg_bigint Ctg_fixed List Printf QCheck QCheck_alcotest String Test
