lib/stats/distance.mli: Ctg_kyao
