type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound <= 0";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let next_float t =
  let v = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int v /. 9007199254740992.0
