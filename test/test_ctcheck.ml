(* dudect harness: it must flag a deliberately leaky function and pass a
   constant-cost one — the paper's Sec. 5.2 validation, on op counts. *)

module Dudect = Ctg_ctcheck.Dudect

let config = { Dudect.default_config with measurements = 8_000 }

let tests =
  [
    Alcotest.test_case "constant function is not flagged" `Quick (fun () ->
        let r = Dudect.test_ops ~config (fun _ -> 42) in
        Alcotest.(check bool) "no leak" false r.Dudect.leaky;
        Alcotest.(check bool) "t small" true (abs_float r.Dudect.t_statistic < 4.5));
    Alcotest.test_case "class-dependent cost is flagged" `Quick (fun () ->
        let rng = Ctg_prng.Splitmix64.create 7L in
        let f = function
          | Dudect.Fix -> 100 + Ctg_prng.Splitmix64.next_int rng 5
          | Dudect.Random -> 103 + Ctg_prng.Splitmix64.next_int rng 5
        in
        let r = Dudect.test_ops ~config f in
        Alcotest.(check bool) "leak" true r.Dudect.leaky);
    Alcotest.test_case "noisy but identical cost passes" `Quick (fun () ->
        let rng = Ctg_prng.Splitmix64.create 8L in
        let f _ = Ctg_prng.Splitmix64.next_int rng 1000 in
        let r = Dudect.test_ops ~config f in
        Alcotest.(check bool) "no leak" false r.Dudect.leaky);
    Alcotest.test_case "report fields are populated" `Quick (fun () ->
        let r = Dudect.test_ops ~config (fun _ -> 5) in
        Alcotest.(check bool) "samples" true (r.Dudect.samples_per_class > 1000);
        Alcotest.(check (float 1e-9)) "mean fix" 5.0 r.Dudect.mean_fix;
        Alcotest.(check (float 1e-9)) "mean random" 5.0 r.Dudect.mean_random);
    Alcotest.test_case "bitsliced sampler op-trace is constant" `Quick
      (fun () ->
        (* The real deal: fix class = all-zero input bits, random class =
           fresh random bits; the compiled program's work is the same. *)
        let s = Ctgauss.Sampler.create ~sigma:"2" ~precision:24 ~tail_cut:13 () in
        let p = Ctgauss.Sampler.program s in
        let rng = Ctg_prng.Splitmix64.create 9L in
        let gates = Ctgauss.Gate.gate_count p in
        let f clazz =
          let bits =
            match clazz with
            | Dudect.Fix -> Array.make 24 false
            | Dudect.Random ->
              Array.init 24 (fun _ -> Ctg_prng.Splitmix64.next_int rng 2 = 1)
          in
          ignore (Ctgauss.Sampler.eval_bits s bits);
          gates (* every call executes every gate *)
        in
        let r = Dudect.test_ops ~config:{ config with measurements = 2_000 } f in
        Alcotest.(check bool) "constant" false r.Dudect.leaky);
    Alcotest.test_case "byte-scan CDT op-trace leaks" `Quick (fun () ->
        let m = Ctg_kyao.Matrix.create ~sigma:"2" ~precision:24 ~tail_cut:13 in
        let table = Ctg_samplers.Cdt_table.of_matrix m in
        let inst = Ctg_samplers.Cdt_samplers.byte_scan table in
        (* Fix class: PRNG rigged to emit zero bytes => draw 0 => one
           compare; random class: true uniform draws. *)
        let zero = Ctg_prng.Bitstream.of_bits (Array.make 2_000_000 false) in
        let rnd = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "leak") in
        let f clazz =
          let bs = match clazz with Dudect.Fix -> zero | Dudect.Random -> rnd in
          snd (inst.Ctg_samplers.Sampler_sig.sample_traced bs)
        in
        let r = Dudect.test_ops ~config:{ config with measurements = 2_000 } f in
        Alcotest.(check bool) "leaky" true r.Dudect.leaky);
    Alcotest.test_case "linear CT CDT op-trace does not leak" `Quick (fun () ->
        let m = Ctg_kyao.Matrix.create ~sigma:"2" ~precision:24 ~tail_cut:13 in
        let table = Ctg_samplers.Cdt_table.of_matrix m in
        let inst = Ctg_samplers.Cdt_samplers.linear_ct table in
        let zero = Ctg_prng.Bitstream.of_bits (Array.make 2_000_000 false) in
        let rnd = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "ct") in
        let f clazz =
          let bs = match clazz with Dudect.Fix -> zero | Dudect.Random -> rnd in
          snd (inst.Ctg_samplers.Sampler_sig.sample_traced bs)
        in
        let r = Dudect.test_ops ~config:{ config with measurements = 2_000 } f in
        Alcotest.(check bool) "constant" false r.Dudect.leaky);
  ]

(* The incremental accumulator: the base of the continuous assessor. *)
let acc_tests =
  [
    Alcotest.test_case "two same-seed runs are bit-identical" `Quick (fun () ->
        (* The determinism contract of the .mli, checked at the bit level:
           same seed + same deterministic measure => identical class
           sequence, identical Welford fold order, identical float bits. *)
        let run () =
          let a = Dudect.acc ~seed:42L () in
          let rng = Ctg_prng.Splitmix64.create 1234L in
          for _ = 1 to 5_000 do
            Dudect.acc_step a (fun clazz ->
                let noise = float_of_int (Ctg_prng.Splitmix64.next_int rng 7) in
                match clazz with
                | Dudect.Fix -> 100.0 +. noise
                | Dudect.Random -> 101.5 +. noise)
          done;
          Dudect.acc_report a
        in
        let r1 = run () and r2 = run () in
        let bits = Int64.bits_of_float in
        Alcotest.(check int64) "t bits" (bits r1.Dudect.t_statistic)
          (bits r2.Dudect.t_statistic);
        Alcotest.(check int64) "mean_fix bits" (bits r1.Dudect.mean_fix)
          (bits r2.Dudect.mean_fix);
        Alcotest.(check int64) "mean_random bits" (bits r1.Dudect.mean_random)
          (bits r2.Dudect.mean_random);
        Alcotest.(check int) "samples" r1.Dudect.samples_per_class
          r2.Dudect.samples_per_class;
        Alcotest.(check bool) "leaky" r1.Dudect.leaky r2.Dudect.leaky);
    Alcotest.test_case "different seeds interleave differently" `Quick
      (fun () ->
        let classes seed =
          let a = Dudect.acc ~seed () in
          List.init 64 (fun _ -> Dudect.acc_next_class a)
        in
        Alcotest.(check bool) "sequences differ" true
          (classes 1L <> classes 2L));
    Alcotest.test_case "test_ops equals a manual accumulator run" `Quick
      (fun () ->
        (* test_ops is specified as 2 x measurements steps of a fresh
           default-seeded accumulator — pin that equivalence down. *)
        let cfg = { config with Dudect.measurements = 3_000 } in
        let f = function Dudect.Fix -> 5 | Dudect.Random -> 9 in
        let one = Dudect.test_ops ~config:cfg f in
        let a = Dudect.acc ~config:cfg () in
        for _ = 1 to 2 * cfg.Dudect.measurements do
          Dudect.acc_step a (fun c -> float_of_int (f c))
        done;
        let two = Dudect.acc_report a in
        Alcotest.(check int64) "t bits"
          (Int64.bits_of_float one.Dudect.t_statistic)
          (Int64.bits_of_float two.Dudect.t_statistic);
        Alcotest.(check int) "count" (Dudect.acc_count a)
          (2 * cfg.Dudect.measurements));
    Alcotest.test_case "running report converges on a planted leak" `Quick
      (fun () ->
        let a = Dudect.acc () in
        let rng = Ctg_prng.Splitmix64.create 99L in
        let below = ref 0 and above = ref 0 in
        for _ = 1 to 4_000 do
          Dudect.acc_step a (fun clazz ->
              let noise = float_of_int (Ctg_prng.Splitmix64.next_int rng 4) in
              match clazz with
              | Dudect.Fix -> 10.0 +. noise
              | Dudect.Random -> 12.0 +. noise);
          let r = Dudect.acc_report a in
          if Dudect.acc_count a < 20 then ignore r
          else if r.Dudect.leaky then incr above
          else incr below
        done;
        Alcotest.(check bool) "eventually flags" true (!above > 0);
        let final = Dudect.acc_report a in
        Alcotest.(check bool) "final verdict leaky" true final.Dudect.leaky);
  ]

let () = Alcotest.run "ctcheck" [ ("dudect", tests); ("accumulator", acc_tests) ]
