(** Random-bit supply with exact cost accounting.

    Every sampler in this repo consumes randomness through this interface,
    so "random bits per sample" and "PRNG work per sample" (the paper's
    Sec. 7 overhead experiment) are measured, not estimated. *)

type t

val of_chacha : Chacha20.t -> t
val of_shake : Keccak.xof -> t

val of_splitmix : Splitmix64.t -> t
(** Tests and statistics only. *)

val of_bits : bool array -> t
(** Replays a fixed bit string, then raises [End_of_file].  Used by the
    equivalence tests (compiled sampler vs. the Knuth-Yao reference walk
    must agree on identical input bits). *)

val of_byte_fn : (unit -> int) -> t
(** A stream served byte by byte from a callback (low 8 bits are used).
    This is the seam the fault-injection layer ([ctg_fault]) wraps a real
    stream through; the callback may raise to model entropy exhaustion. *)

val attach_health : t -> Health.t -> unit
(** Attach online entropy health tests.  Block backends scan every fresh
    block before serving its first byte; byte-function backends are
    checked byte by byte — either way {!Health.Entropy_failure} fires
    before any bit of a failing window reaches a sampler.  The [Fixed]
    test backend is never health-checked (its replays are deliberately
    non-random). *)

val health : t -> Health.t option

val next_bit : t -> int
(** 0 or 1. *)

val next_bits : t -> int -> int
(** [next_bits t k] packs the next [k <= 54] bits, first bit in the least
    significant position (consumption order, the paper's [b_0] first). *)

val next_word : t -> int
(** 63 random bits as a native int bit pattern (one bitslice lane word; the
    value may be negative when bit 62 is set — only bitwise use is valid).
    Real PRNG backends draw 64 bits and discard one. *)

val next_byte : t -> int

val bits_consumed : t -> int
(** Total bits handed out so far. *)

val prng_work : t -> int
(** Backend work units so far: ChaCha20 blocks, Keccak permutations, or 0
    for test sources.  Comparable within one backend only. *)

val next_bytes_into : t -> bytes -> unit
(** Fill a byte buffer from the backend byte stream directly (the fast
    path of the CDT samplers' uniform draws).  Discards any buffered
    partial bits first on the Fixed backend. *)
