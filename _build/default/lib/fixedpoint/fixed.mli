(** Unsigned fixed-point reals with an explicit number of fraction bits.

    A value is a {!Ctg_bigint.Nat.t} [v] interpreted as [v * 2^-frac_bits].
    All binary operations require both operands to carry the same
    [frac_bits] (checked by assertion): mixing precisions silently is the
    classic source of wrong probability tables. *)

type t = private { frac_bits : int; v : Ctg_bigint.Nat.t }

val create : frac_bits:int -> Ctg_bigint.Nat.t -> t
val zero : frac_bits:int -> t
val one : frac_bits:int -> t
val of_int : frac_bits:int -> int -> t

val of_decimal_string : frac_bits:int -> string -> t
(** Parse a non-negative decimal such as ["6.15543"] exactly (rounded to the
    target precision).  Used to take σ as the paper spells it. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Full product, floor-rounded back to [frac_bits]. *)

val div : t -> t -> t
(** Floor division. @raise Division_by_zero *)

val shift_right : t -> int -> t
val shift_left : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val fraction_bits : t -> int -> Ctg_bigint.Nat.t
(** [fraction_bits x n] for [x < 1] is [floor(x * 2^n)]: the first [n]
    binary fraction digits, as an integer in [[0, 2^n)]. *)

val to_float : t -> float
(** Lossy, for diagnostics only. *)

val pp : Format.formatter -> t -> unit
