(** Distribution distances from the paper's Sec. 3.2 and Sec. 7: the
    statistical distance that fixes the precision requirement, and the
    Rényi / max-log relaxations cited as the way to reduce it. *)

val exact_probabilities : Ctg_kyao.Matrix.t -> float array
(** The folded distribution [p_v] of the matrix, as floats (index =
    magnitude).  Sums to slightly below 1 (floor rounding). *)

val statistical : float array -> float array -> float
(** Total variation distance ½·Σ|p−q| over the common support. *)

val renyi : alpha:float -> float array -> float array -> float
(** Rényi divergence [D_α(P‖Q)] (α > 1); ∞ when [Q] misses mass of [P]. *)

val max_log : float array -> float array -> float
(** max-log distance: [max |ln p − ln q|] over the support of either. *)

val empirical : int array -> support:int -> float array
(** Magnitude frequencies of signed samples folded to |·|, up to
    [support]. *)
