(** Engine observability: lock-free throughput counters.

    Every counter is an [Atomic.t] updated once per chunk (not per sample),
    so the accounting adds nothing measurable to the hot path while still
    reporting the paper's cost model exactly: samples, batches (63-lane
    program runs), random bits consumed, PRNG work units (ChaCha20 blocks /
    Keccak permutations) and total gate evaluations. *)

type t

type snapshot = {
  samples : int;  (** Signed samples delivered. *)
  batches : int;  (** Bitsliced program evaluations (63 lanes each). *)
  bits_consumed : int;  (** Random bits drawn across all lanes. *)
  prng_work : int;  (** Backend work units (blocks / permutations). *)
  gate_evals : int;  (** Boolean gates executed: batches × gate count. *)
  per_domain_samples : int array;
      (** Samples produced by each worker domain — the load-balance view. *)
}

val create : domains:int -> t

val record :
  t ->
  domain:int ->
  samples:int ->
  batches:int ->
  bits:int ->
  work:int ->
  gates:int ->
  unit
(** One bulk update per completed chunk, attributed to worker [domain]. *)

val snapshot : t -> snapshot
val reset : t -> unit

val pp : Format.formatter -> snapshot -> unit
(** Multi-line human dump (the [gauss_gen throughput] metrics block). *)
