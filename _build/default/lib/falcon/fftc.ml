type t = { re : float array; im : float array }

let pi = 4.0 *. atan 1.0

(* Per-size trigonometric tables, memoized: cyclic-FFT roots e^{2πik/n}
   (k < n), coefficient twists e^{iπj/n}, and split/merge factors
   e^{iπ(2k+1)/n}.  Signing walks the tree thousands of times; recomputing
   cos/sin per butterfly dominated the profile before this cache. *)
type tables = {
  root_re : float array;
  root_im : float array;
  twist_re : float array;
  twist_im : float array;
  split_re : float array;
  split_im : float array;
}

let table_cache : (int, tables) Hashtbl.t = Hashtbl.create 16

let tables n =
  match Hashtbl.find_opt table_cache n with
  | Some t -> t
  | None ->
    let root_re = Array.make n 0.0 and root_im = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let ang = 2.0 *. pi *. float_of_int k /. float_of_int n in
      root_re.(k) <- cos ang;
      root_im.(k) <- sin ang
    done;
    let twist_re = Array.make n 0.0 and twist_im = Array.make n 0.0 in
    for j = 0 to n - 1 do
      let ang = pi *. float_of_int j /. float_of_int n in
      twist_re.(j) <- cos ang;
      twist_im.(j) <- sin ang
    done;
    let h = max 1 (n / 2) in
    let split_re = Array.make h 0.0 and split_im = Array.make h 0.0 in
    for k = 0 to h - 1 do
      let ang = pi *. float_of_int ((2 * k) + 1) /. float_of_int n in
      split_re.(k) <- cos ang;
      split_im.(k) <- sin ang
    done;
    let t = { root_re; root_im; twist_re; twist_im; split_re; split_im } in
    Hashtbl.replace table_cache n t;
    t

let bit_reverse re im =
  let n = Array.length re in
  let bits =
    let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
    go 0 n
  in
  for i = 0 to n - 1 do
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    if i < !r then begin
      let t = re.(i) in
      re.(i) <- re.(!r);
      re.(!r) <- t;
      let t = im.(i) in
      im.(i) <- im.(!r);
      im.(!r) <- t
    end
  done

(* In-place iterative cyclic transform X_k = Σ_j x_j e^{sign·2πijk/n};
   [scale] divides by n afterwards (the inverse direction). *)
let cyclic re im ~sign ~scale =
  let n = Array.length re in
  if n > 1 then begin
    let tb = tables n in
    bit_reverse re im;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let stride = n / !len in
      let i = ref 0 in
      while !i < n do
        for j = 0 to half - 1 do
          let wr = tb.root_re.(j * stride) in
          let wi = sign *. tb.root_im.(j * stride) in
          let xr = re.(!i + j + half) and xi = im.(!i + j + half) in
          let vr = (xr *. wr) -. (xi *. wi) in
          let vi = (xr *. wi) +. (xi *. wr) in
          let ur = re.(!i + j) and ui = im.(!i + j) in
          re.(!i + j) <- ur +. vr;
          im.(!i + j) <- ui +. vi;
          re.(!i + j + half) <- ur -. vr;
          im.(!i + j + half) <- ui -. vi
        done;
        i := !i + !len
      done;
      len := !len * 2
    done
  end;
  if scale then begin
    let inv = 1.0 /. float_of_int n in
    for i = 0 to n - 1 do
      re.(i) <- re.(i) *. inv;
      im.(i) <- im.(i) *. inv
    done
  end

(* The forward transform twists coefficient j by e^{iπj/n}, turning the
   negacyclic evaluation points into a plain cyclic FFT: slot k holds the
   value at ζ_k = e^{iπ(2k+1)/n}, so ζ_k² is slot k of the half-size
   convention (what split/merge rely on) and -ζ_k is slot k + n/2. *)
let of_real coeffs =
  let n = Array.length coeffs in
  let tb = tables n in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for j = 0 to n - 1 do
    re.(j) <- coeffs.(j) *. tb.twist_re.(j);
    im.(j) <- coeffs.(j) *. tb.twist_im.(j)
  done;
  cyclic re im ~sign:1.0 ~scale:false;
  { re; im }

let of_int_poly a = of_real (Array.map float_of_int a)

let to_real { re; im } =
  let n = Array.length re in
  let tb = tables n in
  let re = Array.copy re and im = Array.copy im in
  cyclic re im ~sign:(-1.0) ~scale:true;
  Array.init n (fun j -> (re.(j) *. tb.twist_re.(j)) +. (im.(j) *. tb.twist_im.(j)))

let add a b =
  let n = Array.length a.re in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- a.re.(i) +. b.re.(i);
    im.(i) <- a.im.(i) +. b.im.(i)
  done;
  { re; im }

let sub a b =
  let n = Array.length a.re in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- a.re.(i) -. b.re.(i);
    im.(i) <- a.im.(i) -. b.im.(i)
  done;
  { re; im }

let mul a b =
  let n = Array.length a.re in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- (a.re.(i) *. b.re.(i)) -. (a.im.(i) *. b.im.(i));
    im.(i) <- (a.re.(i) *. b.im.(i)) +. (a.im.(i) *. b.re.(i))
  done;
  { re; im }

let div a b =
  let n = Array.length a.re in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let d = (b.re.(i) *. b.re.(i)) +. (b.im.(i) *. b.im.(i)) in
    re.(i) <- ((a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i))) /. d;
    im.(i) <- ((a.im.(i) *. b.re.(i)) -. (a.re.(i) *. b.im.(i))) /. d
  done;
  { re; im }

let adjoint a = { re = Array.copy a.re; im = Array.map (fun x -> -.x) a.im }
let scale a s = { re = Array.map (( *. ) s) a.re; im = Array.map (( *. ) s) a.im }

let split a =
  let n = Array.length a.re in
  assert (n >= 2);
  let tb = tables n in
  let h = n / 2 in
  let f0 = { re = Array.make h 0.0; im = Array.make h 0.0 } in
  let f1 = { re = Array.make h 0.0; im = Array.make h 0.0 } in
  for k = 0 to h - 1 do
    let ar = a.re.(k) and ai = a.im.(k) in
    let br = a.re.(k + h) and bi = a.im.(k + h) in
    f0.re.(k) <- 0.5 *. (ar +. br);
    f0.im.(k) <- 0.5 *. (ai +. bi);
    (* (f[k] - f[k+h]) · conj(ω_k) / 2, ω_k = e^{iπ(2k+1)/n}. *)
    let dr = 0.5 *. (ar -. br) and di = 0.5 *. (ai -. bi) in
    let wr = tb.split_re.(k) and wi = -.tb.split_im.(k) in
    f1.re.(k) <- (dr *. wr) -. (di *. wi);
    f1.im.(k) <- (dr *. wi) +. (di *. wr)
  done;
  (f0, f1)

let merge f0 f1 =
  let h = Array.length f0.re in
  let n = 2 * h in
  let tb = tables n in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for k = 0 to h - 1 do
    let wr = tb.split_re.(k) and wi = tb.split_im.(k) in
    let tr = (f1.re.(k) *. wr) -. (f1.im.(k) *. wi) in
    let ti = (f1.re.(k) *. wi) +. (f1.im.(k) *. wr) in
    re.(k) <- f0.re.(k) +. tr;
    im.(k) <- f0.im.(k) +. ti;
    re.(k + h) <- f0.re.(k) -. tr;
    im.(k + h) <- f0.im.(k) -. ti
  done;
  { re; im }

let norm_sq a =
  let n = Array.length a.re in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (a.re.(i) *. a.re.(i)) +. (a.im.(i) *. a.im.(i))
  done;
  !acc /. float_of_int n

let create n = { re = Array.make n 0.0; im = Array.make n 0.0 }

let blit src dst =
  Array.blit src.re 0 dst.re 0 (Array.length src.re);
  Array.blit src.im 0 dst.im 0 (Array.length src.im)

let split_into a (f0, f1) =
  let n = Array.length a.re in
  let tb = tables n in
  let h = n / 2 in
  for k = 0 to h - 1 do
    let ar = a.re.(k) and ai = a.im.(k) in
    let br = a.re.(k + h) and bi = a.im.(k + h) in
    f0.re.(k) <- 0.5 *. (ar +. br);
    f0.im.(k) <- 0.5 *. (ai +. bi);
    let dr = 0.5 *. (ar -. br) and di = 0.5 *. (ai -. bi) in
    let wr = tb.split_re.(k) and wi = -.tb.split_im.(k) in
    f1.re.(k) <- (dr *. wr) -. (di *. wi);
    f1.im.(k) <- (dr *. wi) +. (di *. wr)
  done

let merge_into (f0, f1) out =
  let h = Array.length f0.re in
  let n = 2 * h in
  let tb = tables n in
  for k = 0 to h - 1 do
    let wr = tb.split_re.(k) and wi = tb.split_im.(k) in
    let tr = (f1.re.(k) *. wr) -. (f1.im.(k) *. wi) in
    let ti = (f1.re.(k) *. wi) +. (f1.im.(k) *. wr) in
    out.re.(k) <- f0.re.(k) +. tr;
    out.im.(k) <- f0.im.(k) +. ti;
    out.re.(k + h) <- f0.re.(k) -. tr;
    out.im.(k + h) <- f0.im.(k) -. ti
  done
