(** Prime-implicant generation by the Quine-McCluskey tabular method. *)

val primes : Truth_table.t -> Cube.t list
(** All prime implicants of the function (don't-cares participate in
    merging but a cube consisting only of don't-cares is still reported;
    cover selection ignores it if useless). *)
