module Dudect = Ctg_ctcheck.Dudect
module Registry = Ctg_obs.Registry

type t = {
  acc : Dudect.acc;
  probe : Dudect.clazz -> float;
  mutex : Mutex.t;
  g_t : Registry.gauge;
  g_n : Registry.gauge;
}

let create ?config ?seed ?(registry = Registry.default) ?(labels = []) ~probe
    () =
  {
    acc = Dudect.acc ?config ?seed ();
    probe;
    mutex = Mutex.create ();
    g_t = Registry.gauge registry ~labels "assure_leak_t";
    g_n = Registry.gauge registry ~labels "assure_leak_measurements";
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let step ?(n = 256) t =
  locked t (fun () ->
      for _ = 1 to n do
        Dudect.acc_step t.acc t.probe
      done;
      let r = Dudect.acc_report t.acc in
      Registry.set_gauge t.g_t r.Dudect.t_statistic;
      Registry.set_gauge t.g_n (float_of_int (Dudect.acc_count t.acc)))

let report t = locked t (fun () -> Dudect.acc_report t.acc)
let count t = locked t (fun () -> Dudect.acc_count t.acc)

(* Fix class: a stream rebuilt from the same seed on every probe, so every
   fix measurement sees identical input bytes.  Random class: one live
   stream that keeps advancing.  The measured quantity is the sampler's
   own declared work trace (consumed bits / byte compares / gates), the
   Ops-counter mode of DESIGN.md — deterministic, so a CT sampler yields a
   degenerate (t = 0) test rather than GC noise. *)
let ops_probe ?(fix_seed = "assure-fix-probe") inst =
  let random =
    Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "assure-rnd-probe")
  in
  fun (clazz : Dudect.clazz) ->
    let rng =
      match clazz with
      | Dudect.Fix ->
        Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed fix_seed)
      | Dudect.Random -> random
    in
    let _, work = inst.Ctg_samplers.Sampler_sig.sample_traced rng in
    float_of_int work
