(* The serving stack: shared HTTP server/client, tenant keyring,
   batching queue, and the daemon end to end over live sockets. *)

module Http = Ctg_net.Http
module Client = Ctg_net.Client
module Serve = Ctg_serve
module Obs = Ctg_obs
module Histo = Obs.Histo
module Registry = Obs.Registry
module Promtext = Obs.Promtext
module Jsonx = Obs.Jsonx
module F = Ctg_falcon
module Sig = Ctg_samplers.Sampler_sig

(* ------------------------------------------------------------------ *)
(* net: server + client                                                *)
(* ------------------------------------------------------------------ *)

let echo_handler (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/echo" -> Http.response req.Http.body
  | "GET", "/greet" ->
    let who =
      match Http.query_param req "who" with Some w -> w | None -> "nobody"
    in
    Http.response ("hello " ^ who)
  | "GET", _ -> Http.response ~status:404 "not found\n"
  | _ -> Http.response ~status:405 "method not allowed\n"

let test_keepalive_and_bodies () =
  let srv = Http.start_handler ~port:0 ~workers:2 echo_handler in
  let port = Http.port srv in
  let c = Client.connect ~port () in
  (* Several requests over ONE connection: keep-alive must hold. *)
  let r1 = Client.request c ~meth:"GET" ~path:"/greet?who=a%20b" () in
  Alcotest.(check int) "greet 200" 200 r1.Client.status;
  Alcotest.(check string) "query percent-decoded" "hello a b" r1.Client.body;
  let big = String.init 50_000 (fun i -> Char.chr (32 + (i mod 90))) in
  let r2 = Client.request c ~meth:"POST" ~path:"/echo" ~body:big () in
  Alcotest.(check int) "echo 200" 200 r2.Client.status;
  Alcotest.(check bool) "50k body round-trips intact" true (r2.Client.body = big);
  let r3 = Client.request c ~meth:"GET" ~path:"/missing" () in
  Alcotest.(check int) "404 after big POST on same conn" 404 r3.Client.status;
  let r4 = Client.request c ~meth:"PUT" ~path:"/echo" ~body:"x" () in
  Alcotest.(check int) "405 for unknown method" 405 r4.Client.status;
  Client.close c;
  Http.stop srv

(* A raw socket lets us exercise the chunked decoder, which the client
   never emits. *)
let raw_roundtrip ~port payload =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let b = Bytes.of_string payload in
  let n = Unix.write fd b 0 (Bytes.length b) in
  assert (n = Bytes.length b);
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | k ->
      Buffer.add_subbytes buf chunk 0 k;
      drain ()
  in
  drain ();
  Unix.close fd;
  Buffer.contents buf

let test_chunked_body () =
  let srv = Http.start_handler ~port:0 ~workers:1 echo_handler in
  let port = Http.port srv in
  let raw =
    "POST /echo HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n"
    ^ "5\r\nhello\r\n8;ext=1\r\n, chunks\r\n0\r\nTrailer: x\r\n\r\n"
  in
  let reply = raw_roundtrip ~port raw in
  Alcotest.(check bool) "chunked POST got 200" true
    (String.length reply > 12 && String.sub reply 9 3 = "200");
  let body_ok =
    let needle = "hello, chunks" in
    let nh = String.length reply and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub reply i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chunks reassembled in order" true body_ok;
  Http.stop srv

let test_oversized_body_rejected () =
  let srv = Http.start_handler ~port:0 ~workers:1 ~max_body:100 echo_handler in
  let port = Http.port srv in
  let r =
    Client.one_shot ~port ~meth:"POST" ~path:"/echo"
      ~body:(String.make 200 'x') ()
  in
  Alcotest.(check int) "413 over max_body" 413 r.Client.status;
  Http.stop srv

let test_stop_is_clean () =
  let srv = Http.start_handler ~port:0 ~workers:2 echo_handler in
  let port = Http.port srv in
  let r = Client.one_shot ~port ~meth:"GET" ~path:"/greet" () in
  Alcotest.(check int) "served before stop" 200 r.Client.status;
  Http.stop srv;
  (match Client.connect ~port () with
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _) ->
    ()
  | c ->
    (* A connect that sneaks in must at least not be served. *)
    (match Client.request c ~meth:"GET" ~path:"/greet" () with
    | exception _ -> ()
    | r -> Alcotest.failf "served after stop: %d" r.Client.status));
  Http.stop srv (* idempotent *)

(* ------------------------------------------------------------------ *)
(* keyring                                                             *)
(* ------------------------------------------------------------------ *)

let test_keyring_single_flight () =
  let registry = Registry.create () in
  let kr =
    Serve.Keyring.create ~registry ~params:(F.Params.custom ~n:8) ()
  in
  let racers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () -> Serve.Keyring.lookup kr ~tenant:"alice"))
  in
  let kps = Array.map Domain.join racers in
  Array.iter
    (fun kp ->
      Alcotest.(check bool) "all racers share one keypair" true (kp == kps.(0)))
    kps;
  Alcotest.(check int) "exactly one keygen" 1 (Serve.Keyring.keygens kr);
  ignore (Serve.Keyring.lookup kr ~tenant:"bob" : F.Keygen.keypair);
  Alcotest.(check (list string)) "tenants sorted" [ "alice"; "bob" ]
    (Serve.Keyring.tenants kr);
  Alcotest.(check bool) "mem" true (Serve.Keyring.mem kr ~tenant:"alice");
  Alcotest.check_raises "invalid tenant rejected"
    (Invalid_argument "Keyring.lookup: invalid tenant \"no/slash\"") (fun () ->
      ignore (Serve.Keyring.lookup kr ~tenant:"no/slash"))

let test_keyring_deterministic () =
  let params = F.Params.custom ~n:8 in
  let kr1 = Serve.Keyring.create ~registry:(Registry.create ()) ~params () in
  let kr2 = Serve.Keyring.create ~registry:(Registry.create ()) ~params () in
  let k1 = Serve.Keyring.lookup kr1 ~tenant:"t" in
  let k2 = Serve.Keyring.lookup kr2 ~tenant:"t" in
  Alcotest.(check bool) "same tenant, same derived key" true
    (k1.F.Keygen.h = k2.F.Keygen.h)

(* ------------------------------------------------------------------ *)
(* batcher                                                             *)
(* ------------------------------------------------------------------ *)

let test_batcher_backpressure_and_shed () =
  let gate_mu = Mutex.create () in
  let gate_cond = Condition.create () in
  let go = ref false in
  let run reqs =
    Mutex.lock gate_mu;
    while not !go do
      Condition.wait gate_cond gate_mu
    done;
    Mutex.unlock gate_mu;
    Array.map (fun x -> x * 2) reqs
  in
  let b = Serve.Batcher.create ~linger:0.0 ~capacity:2 ~max_batch:1 ~run () in
  (* First submit; wait until the runner has it in flight (popped). *)
  let first = Domain.spawn (fun () -> Serve.Batcher.submit b 100) in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Serve.Batcher.queue_depth b > 0 || Serve.Batcher.submitted b < 1)
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.002
  done;
  (* Runner is blocked in [run]; capacity 2 means exactly two of the next
     five enqueue and three are shed — regardless of arrival order. *)
  let late =
    Array.init 5 (fun i -> Domain.spawn (fun () -> Serve.Batcher.submit b i))
  in
  while Serve.Batcher.shed_count b < 3 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check int) "bounded queue" 2 (Serve.Batcher.queue_depth b);
  Mutex.lock gate_mu;
  go := true;
  Condition.broadcast gate_cond;
  Mutex.unlock gate_mu;
  let outcomes = Array.map Domain.join late in
  (match Domain.join first with
  | Serve.Batcher.Done v -> Alcotest.(check int) "first served" 200 v
  | _ -> Alcotest.fail "first submit must be served");
  let served, shed =
    Array.fold_left
      (fun (d, s) -> function
        | Serve.Batcher.Done _ -> (d + 1, s)
        | Serve.Batcher.Shed -> (d, s + 1)
        | Serve.Batcher.Failed e -> raise e)
      (0, 0) outcomes
  in
  Alcotest.(check int) "two late submits served" 2 served;
  Alcotest.(check int) "three shed" 3 shed;
  Alcotest.(check int) "shed counted" 3 (Serve.Batcher.shed_count b);
  Serve.Batcher.shutdown b;
  Alcotest.(check bool) "submit after shutdown sheds" true
    (Serve.Batcher.submit b 9 = Serve.Batcher.Shed);
  Alcotest.(check int) "post-stop shed not counted" 3
    (Serve.Batcher.shed_count b)

let test_batcher_results_match_requests () =
  let b =
    Serve.Batcher.create ~linger:0.001 ~capacity:64 ~max_batch:8
      ~run:(Array.map (fun x -> x * x))
      ()
  in
  let workers =
    Array.init 20 (fun i -> Domain.spawn (fun () -> Serve.Batcher.submit b i))
  in
  Array.iteri
    (fun i d ->
      match Domain.join d with
      | Serve.Batcher.Done v ->
        Alcotest.(check int) "each caller gets its own square" (i * i) v
      | _ -> Alcotest.fail "unexpected non-Done")
    workers;
  Alcotest.(check bool) "some coalescing happened" true
    (Serve.Batcher.batches b < 20);
  Serve.Batcher.shutdown b

let test_batcher_run_errors_propagate () =
  let b =
    Serve.Batcher.create ~linger:0.0 ~capacity:4 ~max_batch:4
      ~run:(fun _ -> [||])
      ()
  in
  (match Serve.Batcher.submit b 1 with
  | Serve.Batcher.Failed (Failure m) ->
    Alcotest.(check string) "wrong-sized run flagged"
      "Batcher: run returned a wrong-sized array" m
  | _ -> Alcotest.fail "expected Failed");
  Serve.Batcher.shutdown b

(* ------------------------------------------------------------------ *)
(* daemon, end to end                                                  *)
(* ------------------------------------------------------------------ *)

let test_config =
  {
    Serve.Daemon.default_config with
    n = 16;
    port = 0;
    http_workers = 4;
    max_batch = 8;
    linger = 0.005;
  }

let decode_sign_response ~params body =
  match Jsonx.parse body with
  | Error e -> Alcotest.failf "bad sign JSON: %s" e
  | Ok j ->
    let str name =
      match Jsonx.member name j with
      | Some (Jsonx.Str s) -> s
      | _ -> Alcotest.failf "missing %s" name
    in
    let num name =
      match Option.bind (Jsonx.member name j) Jsonx.to_int with
      | Some v -> v
      | None -> Alcotest.failf "missing %s" name
    in
    let sig_bytes = Ctg_util.Hex.decode (str "sig") in
    match F.Codec.decode_signature ~params sig_bytes with
    | None -> Alcotest.fail "undecodable signature"
    | Some (salt, s2) -> (salt, s2, num "lane", num "batch", sig_bytes)

let test_daemon_live_e2e () =
  let d = Serve.Daemon.create test_config in
  let port = Serve.Daemon.port d in
  let params = Serve.Daemon.params_of_n test_config.Serve.Daemon.n in
  let bound_sq = F.Sign.norm_bound_sq params in
  let per_tenant = 6 in
  let tenants = [| "alice"; "bob" |] in
  (* Concurrent tenants over live HTTP; every signature verified and its
     lane recorded for the bit-identity replay below. *)
  let results =
    Array.map
      (fun tenant ->
        Domain.spawn (fun () ->
            let c = Client.connect ~port () in
            let out =
              Array.init per_tenant (fun i ->
                  let msg = Printf.sprintf "%s message %d" tenant i in
                  let r =
                    Client.request c ~meth:"POST"
                      ~path:("/v1/sign?tenant=" ^ tenant)
                      ~body:msg ()
                  in
                  Alcotest.(check int) "sign 200" 200 r.Client.status;
                  let salt, s2, lane, batch, sig_bytes =
                    decode_sign_response ~params r.Client.body
                  in
                  let kp = Serve.Keyring.lookup (Serve.Daemon.keyring d) ~tenant in
                  Alcotest.(check bool) "signature verifies" true
                    (F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq
                       ~msg:(Bytes.of_string msg) ~salt ~s2);
                  ignore (batch : int);
                  (msg, lane, sig_bytes))
            in
            Client.close c;
            (tenant, out)))
      tenants
    |> Array.map Domain.join
  in
  (* Scrape /metrics over the wire: Promtext round-trip plus per-tenant
     counters and latency histograms. *)
  let metrics = Client.one_shot ~port ~meth:"GET" ~path:"/metrics" () in
  Alcotest.(check int) "/metrics 200" 200 metrics.Client.status;
  (match Promtext.parse metrics.Client.body with
  | Error e -> Alcotest.failf "metrics not parseable: %s" e
  | Ok items ->
    Alcotest.(check string) "promtext render inverts parse"
      metrics.Client.body (Promtext.render items);
    Array.iter
      (fun tenant ->
        Alcotest.(check (option (float 0.0)))
          (tenant ^ " request counter")
          (Some (float_of_int per_tenant))
          (Promtext.value items ~name:"serve_requests_total"
             ~labels:[ ("tenant", tenant) ]);
        Alcotest.(check bool)
          (tenant ^ " latency histogram exposed")
          true
          (Promtext.value items ~name:"serve_request_latency_ns_p50"
             ~labels:[ ("tenant", tenant) ]
           <> None))
      tenants;
    Alcotest.(check bool) "batch histogram exposed" true
      (Promtext.value items ~name:"serve_batch_size_count" ~labels:[] <> None));
  let health = Client.one_shot ~port ~meth:"GET" ~path:"/healthz" () in
  Alcotest.(check int) "healthz 200 on clean traffic" 200 health.Client.status;
  let tl = Client.one_shot ~port ~meth:"GET" ~path:"/v1/tenants" () in
  Alcotest.(check bool) "both tenants listed" true
    (match Jsonx.parse tl.Client.body with
    | Ok j ->
      (match Jsonx.member "tenants" j with
      | Some (Jsonx.List l) -> List.length l = 2
      | _ -> false)
    | Error _ -> false);
  Alcotest.(check bool) "live drift samples observed" true
    (Ctg_assure.Drift.samples
       (Ctg_assure.Monitor.drift (Serve.Daemon.monitor d))
     > 0);
  Serve.Daemon.stop d;
  Serve.Daemon.stop d (* idempotent *);
  (* Bit-identity: replay every (msg, lane) through a direct sign_many on
     the same master sampler and key — batched daemon output must match
     byte for byte, whatever batches the scheduler formed. *)
  let master =
    Ctg_engine.Registry.lookup Ctg_engine.Registry.global
      ~sigma:test_config.Serve.Daemon.sigma
      ~precision:test_config.Serve.Daemon.precision
      ~tail_cut:test_config.Serve.Daemon.tail_cut ()
  in
  let make_base () =
    F.Base_sampler.of_instance (Sig.of_bitsliced (Ctgauss.Sampler.clone master))
  in
  let kr =
    Serve.Keyring.create
      ~registry:(Registry.create ())
      ~seed_prefix:test_config.Serve.Daemon.key_seed ~params ()
  in
  Array.iter
    (fun (tenant, out) ->
      let kp = Serve.Keyring.lookup kr ~tenant in
      Array.iter
        (fun (msg, lane, sig_bytes) ->
          let sigs =
            F.Sign.sign_many ~lanes:[| lane |] ~check:false kp ~make_base
              ~seed:test_config.Serve.Daemon.seed
              ~msgs:[| Bytes.of_string msg |]
          in
          let replay =
            F.Codec.encode_signature ~salt:sigs.(0).F.Sign.salt
              ~s2:sigs.(0).F.Sign.s2
          in
          Alcotest.(check bool)
            "batched signature = sequential replay" true (replay = sig_bytes))
        out)
    results

let test_daemon_healthz_flips_on_alarm () =
  let config = { test_config with drift_window = 512 } in
  let d = Serve.Daemon.create ~listen:false config in
  let handler = Serve.Daemon.handler d in
  let get path =
    handler
      { Http.meth = "GET"; path; query = []; headers = []; body = "" }
  in
  Alcotest.(check int) "healthz 200 before" 200 (get "/healthz").Http.status;
  (* Inject a grossly biased window into the daemon's own drift monitor —
     the wiring under test is alarm -> verdict -> 503. *)
  let drift = Ctg_assure.Monitor.drift (Serve.Daemon.monitor d) in
  Ctg_assure.Drift.observe drift (Array.make 512 3);
  Alcotest.(check bool) "alarm recorded" true (Ctg_assure.Drift.alarms drift > 0);
  Alcotest.(check int) "healthz 503 after alarm" 503 (get "/healthz").Http.status;
  Alcotest.(check bool) "daemon reports unhealthy" false (Serve.Daemon.healthy d);
  Serve.Daemon.stop d

let test_daemon_rejects_bad_tenants () =
  let d = Serve.Daemon.create ~listen:false test_config in
  let handler = Serve.Daemon.handler d in
  let post path body =
    handler { Http.meth = "POST"; path; query = []; headers = []; body }
  in
  Alcotest.(check int) "missing tenant 400" 400
    (post "/v1/sign" "hi").Http.status;
  let bad =
    handler
      {
        Http.meth = "POST";
        path = "/v1/sign";
        query = [ ("tenant", "../etc") ];
        headers = [];
        body = "hi";
      }
  in
  Alcotest.(check int) "invalid tenant 400" 400 bad.Http.status;
  Alcotest.(check int) "unknown path 404" 404
    (post "/v1/nope" "").Http.status;
  Serve.Daemon.stop d;
  let after =
    handler
      {
        Http.meth = "POST";
        path = "/v1/sign";
        query = [ ("tenant", "alice") ];
        headers = [];
        body = "hi";
      }
  in
  Alcotest.(check int) "draining daemon answers 503" 503 after.Http.status

(* ------------------------------------------------------------------ *)
(* request ids, latency split, causal trace                            *)
(* ------------------------------------------------------------------ *)

let rid_of (r : Client.response) =
  match List.assoc_opt "x-request-id" r.Client.headers with
  | Some v -> v
  | None -> Alcotest.fail "response without X-Request-Id"

let test_request_id_roundtrip () =
  let srv =
    Http.start_handler ~port:0 ~workers:2 ~max_body:1000 echo_handler
  in
  let port = Http.port srv in
  let c = Client.connect ~port () in
  let r1 =
    Client.request c ~meth:"POST" ~path:"/echo"
      ~headers:[ ("X-Request-Id", "test-rid-42") ]
      ~body:"x" ()
  in
  Alcotest.(check string) "client id adopted and echoed" "test-rid-42"
    (rid_of r1);
  let r2 = Client.request c ~meth:"GET" ~path:"/greet" () in
  Alcotest.(check bool) "generated id when absent" true
    (Http.valid_request_id (rid_of r2));
  let r3 =
    Client.request c ~meth:"GET" ~path:"/missing"
      ~headers:[ ("x-request-id", "err-rid-404") ]
      ()
  in
  Alcotest.(check int) "404 status" 404 r3.Client.status;
  Alcotest.(check string) "echoed on 404" "err-rid-404" (rid_of r3);
  let r4 =
    Client.request c ~meth:"GET" ~path:"/greet"
      ~headers:[ ("X-Request-Id", "bad!id") ]
      ()
  in
  Alcotest.(check bool) "malformed id replaced, not echoed" true
    (rid_of r4 <> "bad!id" && Http.valid_request_id (rid_of r4));
  Client.close c;
  (* The 413 error path still carries the id: the head parsed far enough
     to recover it before the body was refused. *)
  let r5 =
    Client.one_shot ~port ~meth:"POST" ~path:"/echo"
      ~headers:[ ("X-Request-Id", "big-rid") ]
      ~body:(String.make 2000 'x') ()
  in
  Alcotest.(check int) "413 over max_body" 413 r5.Client.status;
  Alcotest.(check string) "echoed on 413" "big-rid" (rid_of r5);
  Http.stop srv

let test_batcher_latency_split () =
  let registry = Registry.create () in
  let b =
    Serve.Batcher.create ~registry ~linger:0.001 ~capacity:64 ~max_batch:8
      ~run:(fun reqs ->
        Unix.sleepf 0.002;
        Array.map (fun x -> x + 1) reqs)
      ()
  in
  let workers =
    Array.init 12 (fun i -> Domain.spawn (fun () -> Serve.Batcher.submit b i))
  in
  Array.iter
    (fun d ->
      match Domain.join d with
      | Serve.Batcher.Done _ -> ()
      | _ -> Alcotest.fail "unexpected non-Done")
    workers;
  let batches = Serve.Batcher.batches b in
  Serve.Batcher.shutdown b;
  let summary name =
    Registry.histo_summary (Registry.histo registry name)
  in
  let qw = summary "serve_queue_wait_ns" in
  let sv = summary "serve_service_ns" in
  Alcotest.(check int) "queue wait observed once per request" 12
    qw.Histo.count;
  Alcotest.(check int) "service observed once per batch" batches
    sv.Histo.count;
  Alcotest.(check bool) "service time covers the run" true
    (sv.Histo.max >= 2_000_000);
  Alcotest.(check bool) "some coalescing happened" true (batches < 12)

let test_daemon_trace_slice_e2e () =
  let d = Serve.Daemon.create { test_config with trace = true } in
  Fun.protect
    ~finally:(fun () -> Obs.Trace.disable ())
    (fun () ->
      let port = Serve.Daemon.port d in
      let rid = "e2e-trace-rid-1" in
      let r =
        Client.one_shot ~port ~meth:"POST" ~path:"/v1/sign?tenant=alice"
          ~headers:[ ("X-Request-Id", rid) ]
          ~body:"traced message" ()
      in
      Alcotest.(check int) "sign 200" 200 r.Client.status;
      Alcotest.(check string) "rid echoed on success" rid (rid_of r);
      (* Daemon-level error path: 400 still echoes the id. *)
      let bad =
        Client.one_shot ~port ~meth:"POST" ~path:"/v1/sign"
          ~headers:[ ("X-Request-Id", "err-rid-400") ]
          ~body:"x" ()
      in
      Alcotest.(check int) "missing tenant 400" 400 bad.Client.status;
      Alcotest.(check string) "rid echoed on 400" "err-rid-400" (rid_of bad);
      (* The per-request slice: request -> batch -> sign, one flow id. *)
      let tr =
        Client.one_shot ~port ~meth:"GET"
          ~path:("/v1/trace?request_id=" ^ rid)
          ()
      in
      Alcotest.(check int) "trace slice 200" 200 tr.Client.status;
      (match Jsonx.parse tr.Client.body with
      | Error e -> Alcotest.failf "trace slice JSON: %s" e
      | Ok j ->
        let evs =
          match Option.bind (Jsonx.member "traceEvents" j) Jsonx.to_list with
          | Some l -> l
          | None -> Alcotest.fail "slice without traceEvents"
        in
        let strs key =
          List.filter_map
            (fun e -> Option.bind (Jsonx.member key e) Jsonx.to_str)
            evs
        in
        List.iter
          (fun n ->
            Alcotest.(check bool) (n ^ " span in slice") true
              (List.mem n (strs "name")))
          [ "request"; "batch"; "sign" ];
        List.iter
          (fun p ->
            Alcotest.(check bool) ("flow ph " ^ p) true
              (List.mem p (strs "ph")))
          [ "s"; "t"; "f" ];
        match
          List.filter_map
            (fun e ->
              match Jsonx.member "ph" e with
              | Some (Jsonx.Str ("s" | "t" | "f")) ->
                Option.bind (Jsonx.member "id" e) Jsonx.to_int
              | _ -> None)
            evs
        with
        | [] -> Alcotest.fail "slice has no flow ids"
        | x :: tl ->
          List.iter
            (fun y -> Alcotest.(check int) "one flow id per request" x y)
            tl);
      let missing =
        Client.one_shot ~port ~meth:"GET" ~path:"/v1/trace?request_id=nope" ()
      in
      Alcotest.(check int) "unknown rid 404" 404 missing.Client.status;
      let full = Client.one_shot ~port ~meth:"GET" ~path:"/v1/trace" () in
      Alcotest.(check int) "full export 200" 200 full.Client.status;
      (* The latency histogram kept the request id as an exemplar. *)
      let h =
        Registry.histo (Serve.Daemon.registry d)
          ~labels:[ ("tenant", "alice") ]
          "serve_request_latency_ns"
      in
      Alcotest.(check bool) "exemplar links rid to its slice" true
        (List.exists (fun (_, id) -> id = rid) (Registry.exemplars h));
      Serve.Daemon.stop d)

let test_daemon_trace_off_404 () =
  let d = Serve.Daemon.create ~listen:false test_config in
  let handler = Serve.Daemon.handler d in
  let r =
    handler
      { Http.meth = "GET"; path = "/v1/trace"; query = []; headers = [];
        body = "" }
  in
  Alcotest.(check int) "tracing off: /v1/trace 404" 404 r.Http.status;
  Serve.Daemon.stop d

(* ------------------------------------------------------------------ *)
(* runtime telemetry (rtev)                                            *)
(* ------------------------------------------------------------------ *)

module Rtev = Ctg_rtev.Rtev

let test_daemon_rtev_e2e () =
  let d = Serve.Daemon.create { test_config with rtev = true; trace = true } in
  Fun.protect
    ~finally:(fun () -> Obs.Trace.disable ())
    (fun () ->
      Alcotest.(check bool) "runtime ring started" true
        (Serve.Daemon.rtev_active d);
      let port = Serve.Daemon.port d in
      let rid = "rtev-rid-1" in
      let r =
        Client.one_shot ~port ~meth:"POST" ~path:"/v1/sign?tenant=alice"
          ~headers:[ ("X-Request-Id", rid) ]
          ~body:"rtev message" ()
      in
      Alcotest.(check int) "sign 200" 200 r.Client.status;
      (* Force a stop-the-world pause while the daemon is live, then one
         explicit consumer poll (the background poller is asynchronous). *)
      Gc.compact ();
      ignore (Rtev.poll ());
      Alcotest.(check bool) "pauses decoded while serving" true
        (Rtev.pause_count () > 0);
      let metrics = Client.one_shot ~port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check int) "/metrics 200" 200 metrics.Client.status;
      (match Promtext.parse metrics.Client.body with
      | Error e -> Alcotest.failf "metrics not parseable: %s" e
      | Ok items ->
        Alcotest.(check bool) "serve_gc_pause_ns exposed" true
          (Promtext.value items ~name:"serve_gc_pause_ns_count" ~labels:[]
           <> None);
        Alcotest.(check bool) "aggregate gc_pause_ns exposed" true
          (Promtext.value items ~name:"gc_pause_ns_count" ~labels:[]
           <> None));
      (* The batch run carried its first request id into the pause-split
         histogram as an exemplar — a pause outlier links to a request. *)
      let h = Registry.histo (Serve.Daemon.registry d) "serve_gc_pause_ns" in
      Alcotest.(check bool) "pause split keeps the rid exemplar" true
        (List.exists (fun (_, id) -> id = rid) (Registry.exemplars h));
      (* With tracing on, the request's slice can carry GC pause spans on
         the synthetic per-domain tracks; the full export must have them
         after a forced compaction. *)
      let full = Client.one_shot ~port ~meth:"GET" ~path:"/v1/trace" () in
      Alcotest.(check int) "full trace 200" 200 full.Client.status;
      (match Jsonx.parse full.Client.body with
      | Error e -> Alcotest.failf "trace JSON: %s" e
      | Ok j ->
        let evs =
          match Option.bind (Jsonx.member "traceEvents" j) Jsonx.to_list with
          | Some l -> l
          | None -> Alcotest.fail "trace without traceEvents"
        in
        Alcotest.(check bool) "GC pause spans in the live trace" true
          (List.exists
             (fun e ->
               match Jsonx.member "cat" e with
               | Some (Jsonx.Str "gc") -> true
               | _ -> false)
             evs));
      Serve.Daemon.stop d)

let test_daemon_pause_budget_flips_healthz () =
  (* A 1 ns budget: the first real pause breaches it, the monitor check
     fails and /healthz flips 503. *)
  let d =
    Serve.Daemon.create
      { test_config with rtev = true; pause_budget_ms = 1e-6 }
  in
  Alcotest.(check bool) "runtime ring started" true
    (Serve.Daemon.rtev_active d);
  let port = Serve.Daemon.port d in
  let r =
    Client.one_shot ~port ~meth:"POST" ~path:"/v1/sign?tenant=alice"
      ~body:"budget message" ()
  in
  Alcotest.(check int) "sign 200" 200 r.Client.status;
  Gc.compact ();
  ignore (Rtev.poll ());
  Alcotest.(check bool) "budget breaches recorded" true
    (Rtev.budget_breaches () > 0);
  Alcotest.(check bool) "breach counter in the daemon registry" true
    (Registry.value
       (Registry.counter (Serve.Daemon.registry d)
          "gc_pause_budget_breaches_total")
     > 0);
  Alcotest.(check bool) "gc_pause_budget check failing" true
    (List.mem "gc_pause_budget"
       (Ctg_assure.Monitor.failing_monitors (Serve.Daemon.monitor d)));
  let health = Client.one_shot ~port ~meth:"GET" ~path:"/healthz" () in
  Alcotest.(check int) "healthz 503 on budget breach" 503 health.Client.status;
  Serve.Daemon.stop d

let test_trace_slice_includes_gc_spans () =
  (* Pure unit test of the slice filter: the request/batch events are
     kept by arg matching, and exactly the GC pause spans overlapping the
     slice's wall-clock window ride along. *)
  let ev ?(args = []) ?(cat = "serve") ?(dur = 10) ~ts name =
    {
      Obs.Trace.name;
      cat;
      ph = Obs.Trace.Complete;
      ts_ns = ts;
      dur_ns = dur;
      tid = 1;
      id = -1;
      args;
    }
  in
  let evs =
    [
      ev ~ts:1_000 ~dur:100
        ~args:[ ("request_id", "r1"); ("lane", "7") ]
        "request";
      ev ~ts:1_020 ~dur:50 ~args:[ ("lanes", "7,9") ] "batch";
      (* Overlaps the [1000, 1100] window. *)
      ev ~ts:1_050 ~dur:20 ~cat:"gc" "gc:stw_leader";
      (* Straddles the window start. *)
      ev ~ts:990 ~dur:15 ~cat:"gc" "gc:minor";
      (* Far outside the window: must not ride along. *)
      ev ~ts:5_000 ~dur:20 ~cat:"gc" "gc:stw_leader";
      ev ~ts:2_000 ~dur:5
        ~args:[ ("request_id", "r2"); ("lane", "8") ]
        "request";
    ]
  in
  (match Serve.Daemon.trace_slice_events ~rid:"r1" evs with
  | None -> Alcotest.fail "slice missing"
  | Some kept ->
    let names = List.map (fun e -> e.Obs.Trace.name) kept in
    Alcotest.(check bool) "request kept" true (List.mem "request" names);
    Alcotest.(check bool) "batch kept via lanes arg" true
      (List.mem "batch" names);
    Alcotest.(check bool) "other request excluded" true
      (not
         (List.exists
            (fun e ->
              List.assoc_opt "request_id" e.Obs.Trace.args = Some "r2")
            kept));
    let gcs = List.filter (fun e -> e.Obs.Trace.cat = "gc") kept in
    Alcotest.(check int) "exactly the overlapping gc spans" 2
      (List.length gcs));
  Alcotest.(check bool) "unknown rid is None" true
    (Serve.Daemon.trace_slice_events ~rid:"zzz" evs = None)

(* ------------------------------------------------------------------ *)
(* client retry policy                                                 *)
(* ------------------------------------------------------------------ *)

(* A port that refuses connections: bind, read the port, close. *)
let dead_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

(* Pin both seams: jitter returns the cap itself, sleep records. *)
let pinned_policy ?(max_attempts = 3) ?deadline () =
  let slept = ref [] in
  ( {
      Client.default_policy with
      max_attempts;
      base_delay = 0.05;
      max_delay = 0.15;
      deadline;
      jitter = (fun ~attempt:_ ~cap -> cap);
      sleep = (fun d -> slept := d :: !slept);
    },
    slept )

let test_retry_backoff_schedule () =
  let policy, slept = pinned_policy ~max_attempts:4 () in
  let port = dead_port () in
  (try ignore (Client.get_retry ~policy ~port "/x" : Client.response);
       Alcotest.fail "dead port should not answer"
   with Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  (* Three retries slept the doubling-then-capped schedule (reversed). *)
  Alcotest.(check (list (float 1e-9)))
    "bounded exponential backoff" [ 0.15; 0.1; 0.05 ] !slept

let test_retry_post_not_retried () =
  let policy, slept = pinned_policy () in
  let port = dead_port () in
  (try
     ignore
       (Client.one_shot_retry ~policy ~port ~meth:"POST" ~path:"/x" ()
         : Client.response);
     Alcotest.fail "dead port should not answer"
   with Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  Alcotest.(check (list (float 1e-9))) "no retry for POST" [] !slept;
  (* Opting in retries POSTs too. *)
  let policy, slept = pinned_policy () in
  let policy = { policy with Client.retry_non_idempotent = true } in
  (try
     ignore
       (Client.one_shot_retry ~policy ~port ~meth:"POST" ~path:"/x" ()
         : Client.response);
     Alcotest.fail "dead port should not answer"
   with Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  Alcotest.(check int) "opted-in POST retried" 2 (List.length !slept)

let test_retry_deadline () =
  (* An already-expired deadline fails before any socket work. *)
  let policy, slept = pinned_policy ~deadline:(-1.0) () in
  (try
     ignore (Client.get_retry ~policy ~port:1 "/x" : Client.response);
     Alcotest.fail "expired deadline must not attempt"
   with Failure msg ->
     Alcotest.(check string) "deadline error" "Client: request deadline exceeded"
       msg);
  Alcotest.(check (list (float 1e-9))) "no sleeps" [] !slept

let test_retry_succeeds_against_live_server () =
  let srv = Http.start_handler ~port:0 ~workers:1 echo_handler in
  let port = Http.port srv in
  let policy, slept = pinned_policy ~deadline:5.0 () in
  let r = Client.get_retry ~policy ~port "/greet?who=retry" in
  Alcotest.(check int) "200 first try" 200 r.Client.status;
  Alcotest.(check string) "body" "hello retry" r.Client.body;
  Alcotest.(check (list (float 1e-9))) "no retries needed" [] !slept;
  (* A 503-class answer is a response, not a transport failure: the
     policy must hand it back untouched rather than burn retries. *)
  let r = Client.get_retry ~policy ~port "/missing" in
  Alcotest.(check int) "404 returned as-is" 404 r.Client.status;
  Alcotest.(check (list (float 1e-9))) "HTTP errors never retried" [] !slept;
  Http.stop srv

let test_retry_classification () =
  Alcotest.(check bool) "ECONNREFUSED transient" true
    (Client.transient (Unix.Unix_error (Unix.ECONNREFUSED, "connect", "")));
  Alcotest.(check bool) "protocol failure transient" true
    (Client.transient (Failure "Client: truncated headers"));
  Alcotest.(check bool) "other failures not transient" false
    (Client.transient (Failure "something else"));
  Alcotest.(check bool) "EBADF not transient" false
    (Client.transient (Unix.Unix_error (Unix.EBADF, "read", "")));
  Alcotest.(check (float 1e-9)) "cap doubles" 0.2
    (Client.backoff_cap { Client.default_policy with base_delay = 0.05 } 3);
  Alcotest.(check (float 1e-9)) "cap clamps" 1.0
    (Client.backoff_cap Client.default_policy 12)

let () =
  Alcotest.run "serve"
    [
      ( "client-retry",
        [
          Alcotest.test_case "backoff schedule on refused connects" `Quick
            test_retry_backoff_schedule;
          Alcotest.test_case "POST not retried unless opted in" `Quick
            test_retry_post_not_retried;
          Alcotest.test_case "deadline bounds the whole request" `Quick
            test_retry_deadline;
          Alcotest.test_case "responses (any status) end the retry loop"
            `Quick test_retry_succeeds_against_live_server;
          Alcotest.test_case "transient classification and caps" `Quick
            test_retry_classification;
        ] );
      ( "net",
        [
          Alcotest.test_case "keep-alive, bodies, errors" `Quick
            test_keepalive_and_bodies;
          Alcotest.test_case "chunked request body" `Quick test_chunked_body;
          Alcotest.test_case "oversized body rejected" `Quick
            test_oversized_body_rejected;
          Alcotest.test_case "stop is clean and idempotent" `Quick
            test_stop_is_clean;
          Alcotest.test_case "request id round-trips, also on errors" `Quick
            test_request_id_roundtrip;
        ] );
      ( "keyring",
        [
          Alcotest.test_case "single-flight keygen" `Quick
            test_keyring_single_flight;
          Alcotest.test_case "deterministic derivation" `Quick
            test_keyring_deterministic;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "backpressure bound and shed" `Quick
            test_batcher_backpressure_and_shed;
          Alcotest.test_case "results match requests" `Quick
            test_batcher_results_match_requests;
          Alcotest.test_case "run errors propagate" `Quick
            test_batcher_run_errors_propagate;
          Alcotest.test_case "queue-wait vs service latency split" `Quick
            test_batcher_latency_split;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "live e2e: sign, verify, scrape" `Quick
            test_daemon_live_e2e;
          Alcotest.test_case "healthz flips on drift alarm" `Quick
            test_daemon_healthz_flips_on_alarm;
          Alcotest.test_case "request validation" `Quick
            test_daemon_rejects_bad_tenants;
          Alcotest.test_case "causal trace slice + exemplars" `Quick
            test_daemon_trace_slice_e2e;
          Alcotest.test_case "/v1/trace 404 when tracing off" `Quick
            test_daemon_trace_off_404;
        ] );
      ( "rtev",
        [
          Alcotest.test_case "live e2e: pause split, exemplar, gc spans"
            `Quick test_daemon_rtev_e2e;
          Alcotest.test_case "pause budget flips healthz" `Quick
            test_daemon_pause_budget_flips_healthz;
          Alcotest.test_case "trace slice carries overlapping gc spans"
            `Quick test_trace_slice_includes_gc_spans;
        ] );
    ]
