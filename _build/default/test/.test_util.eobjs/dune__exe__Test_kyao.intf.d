test/test_kyao.mli:
