lib/kyao/gap.ml: Array Ctg_bigint Matrix
