lib/boolmin/sop.ml: Ctg_util Cube Greedy_cover List Petrick Quine_mccluskey String Truth_table
