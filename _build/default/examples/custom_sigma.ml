(* Instantiate the paper's pipeline (Fig. 4) for an arbitrary standard
   deviation and precision, inspect every stage, and emit portable C —
   this is the "tool" usage the paper promises.

     dune exec examples/custom_sigma.exe -- 3.2 64
*)

let () =
  let sigma = if Array.length Sys.argv > 1 then Sys.argv.(1) else "3.2" in
  let precision =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 64
  in
  Format.printf "== pipeline for sigma=%s, n=%d, tau=13 ==@.@." sigma precision;
  let p = Ctgauss.Pipeline.run ~sigma ~precision ~tail_cut:13 () in
  Format.printf "%a@." Ctgauss.Pipeline.pp p;

  let enum = p.Ctgauss.Pipeline.enum in
  Format.printf "head of the sorted list L (paper Fig. 3; b_0 rightmost):@.";
  Format.printf "%a@."
    (Ctg_kyao.Leaf_enum.pp_list ~max_rows:12)
    enum;

  (* Per-sublist minimization report. *)
  Format.printf "per-sublist minimized sizes (kappa, terms, literals):@.  ";
  let report = Ctgauss.Compile.sop_report p.Ctgauss.Pipeline.sublists in
  Array.iteri
    (fun i (k, t, l) ->
      if t > 0 then Format.printf "l_%d:(%d,%d) " k t l;
      if (i + 1) mod 10 = 0 then Format.printf "@.  ")
    report;
  Format.printf "@.@.";

  (* Compare against the prior-work baseline on the same leaf list. *)
  let ours = Ctgauss.Gate.gate_count p.Ctgauss.Pipeline.program in
  let simple = Ctgauss.Gate.gate_count p.Ctgauss.Pipeline.simple_program in
  Format.printf "gate counts: this work %d vs simple minimization %d (%+.1f%%)@.@."
    ours simple
    (100.0 *. (1.0 -. (float_of_int ours /. float_of_int simple)));

  (* Emit the generated C sampler. *)
  let file = Printf.sprintf "ct_gauss_sigma%s_n%d.c" sigma precision in
  let c_code =
    Ctgauss.Codegen.to_c ~name:"ct_gauss_sample" p.Ctgauss.Pipeline.program
  in
  Out_channel.with_open_text file (fun oc -> output_string oc c_code);
  Format.printf "wrote %s (%d bytes of C)@.@." file (String.length c_code);

  (* And sample from it right here. *)
  let s = Ctgauss.Sampler.of_enum enum in
  let rng = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "custom") in
  let samples = Array.init (63 * 500) (fun _ -> Ctgauss.Sampler.sample s rng) in
  let hist = Ctg_stats.Histogram.of_samples samples in
  Format.printf "drawn %d samples: mean=%+.3f std=%.3f@."
    (Array.length samples)
    (Ctg_stats.Histogram.mean hist)
    (Ctg_stats.Histogram.std_dev hist)
