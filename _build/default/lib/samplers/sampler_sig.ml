module Bs = Ctg_prng.Bitstream

type instance = {
  name : string;
  constant_time : bool;
  sample_magnitude : Bs.t -> int;
  sample_traced : Bs.t -> int * int;
}

let sample_signed inst rng =
  let m = inst.sample_magnitude rng in
  if Bs.next_bit rng = 1 then -m else m

let of_bitsliced s =
  let amortized =
    (Ctgauss.Sampler.gate_count s + Ctgauss.Bitslice.lanes - 1)
    / Ctgauss.Bitslice.lanes
  in
  {
    name = "bitsliced(" ^ Ctgauss.Sampler.sigma s ^ ")";
    constant_time = true;
    sample_magnitude = (fun rng -> Ctgauss.Sampler.sample_magnitude s rng);
    sample_traced =
      (fun rng -> (Ctgauss.Sampler.sample_magnitude s rng, amortized));
  }

let knuth_yao_reference m =
  {
    name = "knuth-yao-ref";
    constant_time = false;
    sample_magnitude = (fun rng -> Ctg_kyao.Column_sampler.sample_magnitude m rng);
    sample_traced =
      (fun rng ->
        let before = Bs.bits_consumed rng in
        let v = Ctg_kyao.Column_sampler.sample_magnitude m rng in
        (v, Bs.bits_consumed rng - before));
  }
