(* Gated GC-pause baselines + rtev-consumer overhead benchmark.

   Per (sigma, precision) the committed numbers are real pause-duration
   quantiles for the single-domain fill workload: the fill loop repeats
   (fresh fork lane each rep) until at least [min_pauses] pauses landed
   in the window, then one [Gc.compact] guarantees a deterministic
   stop-the-world pause even for allocation-light σ.  Quantiles come
   from a local histogram fed by [Rtev.set_pause_observer] so each σ
   window is independent of the registry's cumulative series.

   The acceptance gate reuses the paired-pass median-of-ratios estimator
   ([Ctg_engine.Obs_bench.paired_ns]): one arm runs the fill with ring
   collection suspended ([Runtime_events.pause]), the other with the
   ring live plus a consumer poll per pass — the always-on cost of rtev
   telemetry must stay under [threshold_pct]. *)

module Obs = Ctg_obs
module Rtev = Ctg_rtev.Rtev
module Jsonx = Obs.Jsonx
module Engine = Ctg_engine

type entry = {
  sigma : string;
  precision : int;
  samples : int;  (** Samples per fill rep. *)
  reps : int;  (** Fill reps run to accumulate the pause window. *)
  pauses : int;
  minor_pauses : int;
  pause_p50_ns : int;
  pause_p99_ns : int;
  pause_max : int;  (** Deliberately not [_ns]-suffixed: a single
      compaction dominates it, too noisy to gate. *)
  total_pause : int;
  pause_pct : float;  (** Share of window wall time spent paused. *)
  plain_ns : float;  (** Fill ns/sample, ring collection suspended. *)
  rtev_ns : float;  (** Fill ns/sample, ring live + poll per pass. *)
  rtev_overhead_pct : float;
}

let threshold_pct = 3.0

let default_set = [ ("1", 128); ("2", 128); ("6.15543", 128); ("215", 16) ]

let run_fill sampler out rng =
  let n = Array.length out in
  let filled = ref 0 in
  while !filled < n do
    let batch = Ctgauss.Sampler.batch_signed sampler rng in
    let take = min (Array.length batch) (n - !filled) in
    Array.blit batch 0 out !filled take;
    filled := !filled + take
  done

let measure ?(samples = 63 * 1000) ?(min_pauses = 30) ?(max_reps = 60)
    ?(rounds = 3) ?(min_time = 0.3) ~sigma ~precision ~tail_cut () =
  let master =
    Engine.Registry.lookup Engine.Registry.global ~sigma ~precision ~tail_cut ()
  in
  let sampler = Ctgauss.Sampler.clone master in
  let out = Array.make samples 0 in
  let seed = "pause-bench-" ^ sigma in
  let lane_rng lane = Engine.Stream_fork.bitstream ~health:false ~seed ~lane () in
  let fill lane = run_fill sampler out (lane_rng lane) in
  fill 1000;
  (* Pause-statistics window. *)
  let h = Obs.Histo.create () in
  let pauses = ref 0
  and minors = ref 0
  and total = ref 0
  and maxp = ref 0 in
  Rtev.resume_collection ();
  ignore (Rtev.poll ());
  (* Drained: from here the observer sees only this window's pauses. *)
  Rtev.set_pause_observer
    (Some
       (fun (p : Rtev.Decode.pause) ->
         incr pauses;
         if p.minor then incr minors;
         total := !total + p.dur_ns;
         if p.dur_ns > !maxp then maxp := p.dur_ns;
         Obs.Histo.add h p.dur_ns));
  let t0 = Obs.Clock.now_ns () in
  let reps = ref 0 in
  while !pauses < min_pauses && !reps < max_reps do
    fill !reps;
    ignore (Rtev.poll ());
    incr reps
  done;
  Gc.compact ();
  ignore (Rtev.poll ());
  let wall = max 1 (Obs.Clock.now_ns () - t0) in
  Rtev.set_pause_observer None;
  (* Overhead gate: fill with the ring suspended vs live-with-poll. *)
  let one scale =
    Engine.Obs_bench.paired_ns ~rounds
      ~min_time:(min_time *. float_of_int scale)
      ~samples
      [|
        ( false,
          fun ~lane ->
            Rtev.suspend_collection ();
            fill lane );
        ( false,
          fun ~lane ->
            Rtev.resume_collection ();
            fill lane;
            ignore (Rtev.poll ()) );
      |]
  in
  let overhead_of (t : float array) = 100.0 *. (t.(1) -. t.(0)) /. t.(0) in
  let rec go attempt best =
    if overhead_of best < 0.75 *. threshold_pct || attempt > 4 then best
    else begin
      let cur = one attempt in
      go (attempt + 1) (if overhead_of cur <= overhead_of best then cur else best)
    end
  in
  let timings = go 2 (one 1) in
  Rtev.resume_collection ();
  let plain = timings.(0) and rtev = timings.(1) in
  {
    sigma;
    precision;
    samples;
    reps = !reps;
    pauses = !pauses;
    minor_pauses = !minors;
    pause_p50_ns = Obs.Histo.quantile h 0.5;
    pause_p99_ns = Obs.Histo.quantile h 0.99;
    pause_max = !maxp;
    total_pause = !total;
    pause_pct = 100.0 *. float_of_int !total /. float_of_int wall;
    plain_ns = plain;
    rtev_ns = rtev;
    rtev_overhead_pct = overhead_of timings;
  }

let run ?samples ?min_pauses ?max_reps ?rounds ?min_time ?(set = default_set)
    () =
  if not (Rtev.start ()) then None
  else
    Some
      (List.map
         (fun (sigma, precision) ->
           measure ?samples ?min_pauses ?max_reps ?rounds ?min_time ~sigma
             ~precision ~tail_cut:13 ())
         set)

let ok entries =
  List.for_all
    (fun e -> e.rtev_overhead_pct < threshold_pct && e.pauses > 0)
    entries

let entry_to_json e =
  Jsonx.Obj
    [
      ("sigma", Jsonx.Str e.sigma);
      ("precision", Jsonx.Num (float_of_int e.precision));
      ("samples", Jsonx.Num (float_of_int e.samples));
      ("reps", Jsonx.Num (float_of_int e.reps));
      ("pauses", Jsonx.Num (float_of_int e.pauses));
      ("minor_pauses", Jsonx.Num (float_of_int e.minor_pauses));
      ("pause_p50_ns", Jsonx.Num (float_of_int e.pause_p50_ns));
      ("pause_p99_ns", Jsonx.Num (float_of_int e.pause_p99_ns));
      ("pause_max", Jsonx.Num (float_of_int e.pause_max));
      ("total_pause", Jsonx.Num (float_of_int e.total_pause));
      ("pause_pct", Jsonx.Num e.pause_pct);
      ("plain_ns_per_sample", Jsonx.Num e.plain_ns);
      ("rtev_ns_per_sample", Jsonx.Num e.rtev_ns);
      ("rtev_overhead_pct", Jsonx.Num e.rtev_overhead_pct);
    ]

let to_json ?daemon entries =
  Jsonx.Obj
    ([
       ("benchmark", Jsonx.Str "gc-pauses");
       ("threshold_pct", Jsonx.Num threshold_pct);
       ("ok", Jsonx.Bool (ok entries));
       ("entries", Jsonx.List (List.map entry_to_json entries));
     ]
    @ match daemon with None -> [] | Some j -> [ ("daemon", j) ])

let save ?daemon path entries =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Jsonx.pretty (to_json ?daemon entries));
      output_char oc '\n')

let pp_entry fmt e =
  Format.fprintf fmt
    "sigma %-8s n=%-3d %3d reps: %4d pauses (%d minor) p50 %7d p99 %8d max \
     %9d ns, %4.2f%% of wall; plain %6.1f rtev %6.1f ns/sample (+%.2f%%)"
    e.sigma e.precision e.reps e.pauses e.minor_pauses e.pause_p50_ns
    e.pause_p99_ns e.pause_max e.pause_pct e.plain_ns e.rtev_ns
    e.rtev_overhead_pct
