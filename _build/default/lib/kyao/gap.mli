(** The paper's Eqn. 1:
    [GAP^i = Σ_j b_j·2^(i-j) − Σ_j h_j·2^(i-j)] for [j in 0..i].
    A sample is found at column [i] iff [GAP^i < 0] and [GAP^i' >= 0] for
    all earlier [i'].  Exposed for tests and teaching; exact over {!Zint}
    because the partial sums exceed 2^precision. *)

val gap : Matrix.t -> bool array -> int -> Ctg_bigint.Zint.t
(** [gap m bits i] — requires [i < Array.length bits]. *)

val first_negative : Matrix.t -> bool array -> int option
(** Smallest [i] with [GAP^i < 0], if any — must equal the hit level of
    {!Column_sampler.walk_bits} (verified by the test suite). *)
