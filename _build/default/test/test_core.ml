(* The paper's core: gate IR, both compilers, bitsliced evaluation, and
   the central equivalence property — the compiled constant-time program
   agrees with Algorithm 1 on every input bit string. *)

module Gate = Ctgauss.Gate
module Bitslice = Ctgauss.Bitslice
module Sublist = Ctgauss.Sublist
module Compile = Ctgauss.Compile
module Compile_simple = Ctgauss.Compile_simple
module Sampler = Ctgauss.Sampler
module Codegen = Ctgauss.Codegen
module Pipeline = Ctgauss.Pipeline
module Matrix = Ctg_kyao.Matrix
module Le = Ctg_kyao.Leaf_enum
module Cs = Ctg_kyao.Column_sampler
module Bs = Ctg_prng.Bitstream

let enum_of sigma precision =
  Le.enumerate (Matrix.create ~sigma ~precision ~tail_cut:13)

let enum_mid = enum_of "2" 24
let enum_wide = enum_of "3.33" 20

let random_bits rng n =
  Array.init n (fun _ -> Ctg_prng.Splitmix64.next_int rng 2 = 1)

let gate_tests =
  [
    Alcotest.test_case "builder CSE shares identical gates" `Quick (fun () ->
        let b = Gate.builder ~num_vars:4 () in
        let x = Gate.var b 0 and y = Gate.var b 1 in
        let a1 = Gate.band b x y in
        let a2 = Gate.band b y x in
        Alcotest.(check int) "commutative sharing" a1 a2;
        let p = Gate.finish b ~outputs:[| a1 |] ~valid:None in
        Alcotest.(check int) "one gate" 1 (Gate.gate_count p));
    Alcotest.test_case "constant folding" `Quick (fun () ->
        let b = Gate.builder ~num_vars:2 () in
        let x = Gate.var b 0 in
        let t = Gate.const b true and f = Gate.const b false in
        Alcotest.(check int) "x & 1 = x" x (Gate.band b x t);
        Alcotest.(check int) "x | 0 = x" x (Gate.bor b x f);
        Alcotest.(check int) "x & 0 = 0" f (Gate.band b x f);
        Alcotest.(check int) "x ^ x = 0" f (Gate.bxor b x x);
        Alcotest.(check int) "x & x = x" x (Gate.band b x x));
    Alcotest.test_case "mux truth table" `Quick (fun () ->
        let b = Gate.builder ~num_vars:3 () in
        let out =
          Gate.mux b ~sel:(Gate.var b 0) ~if_one:(Gate.var b 1)
            ~if_zero:(Gate.var b 2)
        in
        let p = Gate.finish b ~outputs:[| out |] ~valid:None in
        List.iter
          (fun (s, a, z, want) ->
            let v, _ = Bitslice.eval_single p [| s; a; z |] in
            Alcotest.(check int)
              (Printf.sprintf "mux %b %b %b" s a z)
              want v)
          [
            (true, true, false, 1);
            (true, false, true, 0);
            (false, true, false, 0);
            (false, false, true, 1);
          ]);
    Alcotest.test_case "depth of a chain" `Quick (fun () ->
        let b = Gate.builder ~num_vars:4 () in
        let acc =
          List.fold_left (fun acc i -> Gate.band b acc (Gate.var b i))
            (Gate.var b 0) [ 1; 2; 3 ]
        in
        let p = Gate.finish b ~outputs:[| acc |] ~valid:None in
        Alcotest.(check int) "3 gates deep" 3 (Gate.depth p));
    Alcotest.test_case "bitslice lanes are independent" `Quick (fun () ->
        let b = Gate.builder ~num_vars:2 () in
        let out = Gate.bxor b (Gate.var b 0) (Gate.var b 1) in
        let p = Gate.finish b ~outputs:[| out |] ~valid:None in
        let scratch = Bitslice.scratch p in
        (* Lane 0: 1^0, lane 1: 1^1, lane 2: 0^1. *)
        Bitslice.eval p scratch ~inputs:[| 0b011; 0b110 |];
        let w = Bitslice.output p scratch 0 in
        Alcotest.(check int) "lane0" 1 (w land 1);
        Alcotest.(check int) "lane1" 0 ((w lsr 1) land 1);
        Alcotest.(check int) "lane2" 1 ((w lsr 2) land 1));
  ]

let equivalence_one enum sampler trials seed =
  let m = enum.Le.matrix in
  let rng = Ctg_prng.Splitmix64.create seed in
  let ok = ref true in
  for _ = 1 to trials do
    let bits = random_bits rng m.Matrix.precision in
    let v, valid = Sampler.eval_bits sampler bits in
    (match Cs.walk_bits m bits with
    | Cs.Hit { value; _ } -> if not (valid && v = value) then ok := false
    | Cs.Exhausted -> if valid then ok := false)
  done;
  !ok

let compiler_tests =
  [
    Alcotest.test_case "split compiler = Alg.1 (sigma 2)" `Quick (fun () ->
        let s = Sampler.of_enum ~method_:Split_minimized enum_mid in
        Alcotest.(check bool) "equivalent" true (equivalence_one enum_mid s 4000 1L));
    Alcotest.test_case "simple compiler = Alg.1 (sigma 2)" `Quick (fun () ->
        let s = Sampler.of_enum ~method_:Simple enum_mid in
        Alcotest.(check bool) "equivalent" true (equivalence_one enum_mid s 4000 2L));
    Alcotest.test_case "split compiler = Alg.1 (sigma 3.33)" `Quick (fun () ->
        let s = Sampler.of_enum ~method_:Split_minimized enum_wide in
        Alcotest.(check bool) "equivalent" true (equivalence_one enum_wide s 4000 3L));
    Alcotest.test_case "exhaustive equivalence at n=10" `Quick (fun () ->
        (* Every one of the 1024 input strings, not just samples. *)
        let enum = enum_of "1.2" 10 in
        let s = Sampler.of_enum enum in
        let m = enum.Le.matrix in
        for x = 0 to 1023 do
          let bits = Array.init 10 (fun i -> (x lsr i) land 1 = 1) in
          let v, valid = Sampler.eval_bits s bits in
          match Cs.walk_bits m bits with
          | Cs.Hit { value; _ } ->
            Alcotest.(check bool) "hit agrees" true (valid && v = value)
          | Cs.Exhausted -> Alcotest.(check bool) "miss agrees" false valid
        done);
    Alcotest.test_case "ablation: unshared selectors same function" `Quick
      (fun () ->
        let options = { Compile.default_options with share_selectors = false } in
        let s = Sampler.of_enum ~options enum_mid in
        Alcotest.(check bool) "equivalent" true (equivalence_one enum_mid s 2000 4L);
        let shared = Sampler.of_enum enum_mid in
        Alcotest.(check bool) "sharing saves gates" true
          (Sampler.gate_count shared < Sampler.gate_count s));
    Alcotest.test_case "ablation: greedy minimize same function" `Quick
      (fun () ->
        let options = { Compile.default_options with exact_minimize = false } in
        let s = Sampler.of_enum ~options enum_mid in
        Alcotest.(check bool) "equivalent" true (equivalence_one enum_mid s 2000 5L));
    Alcotest.test_case "all compiler option combinations are equivalent" `Slow
      (fun () ->
        (* 2^3 option matrix for the split compiler, plus the merged and
           unmerged baselines: all must agree with Alg. 1. *)
        let combos = ref [] in
        List.iter
          (fun flatten ->
            List.iter
              (fun share ->
                List.iter
                  (fun exact ->
                    combos :=
                      {
                        Compile.with_valid = true;
                        share_selectors = share;
                        exact_minimize = exact;
                        flatten_onehot = flatten;
                      }
                      :: !combos)
                  [ true; false ])
              [ true; false ])
          [ true; false ];
        List.iteri
          (fun i options ->
            let s = Sampler.of_enum ~options enum_mid in
            Alcotest.(check bool)
              (Printf.sprintf "combo %d" i)
              true
              (equivalence_one enum_mid s 800 (Int64.of_int (100 + i))))
          !combos;
        let unmerged =
          Compile_simple.compile ~merge_adjacent:false enum_mid
        in
        let merged = Compile_simple.compile ~merge_adjacent:true enum_mid in
        let m = enum_mid.Le.matrix in
        let rng = Ctg_prng.Splitmix64.create 314L in
        for _ = 1 to 2000 do
          let bits = random_bits rng m.Matrix.precision in
          Alcotest.(check bool) "merge-invariant" true
            (Ctgauss.Bitslice.eval_single unmerged bits
            = Ctgauss.Bitslice.eval_single merged bits)
        done);
    Alcotest.test_case "no-valid program drops the flag" `Quick (fun () ->
        let options = { Compile.default_options with with_valid = false } in
        let s = Sampler.of_enum ~options enum_mid in
        Alcotest.(check bool) "no valid reg" true
          ((Sampler.program s).Gate.valid = None));
    Alcotest.test_case "split beats simple at n=128 (Table 2 shape)" `Slow
      (fun () ->
        let enum = enum_of "2" 128 in
        let ours = Compile.compile (Sublist.build enum) in
        let simple = Compile_simple.compile enum in
        let go = Gate.gate_count ours and gs = Gate.gate_count simple in
        Alcotest.(check bool)
          (Printf.sprintf "ours=%d < simple=%d" go gs)
          true (go < gs));
    Alcotest.test_case "sop_report covers all sublists" `Quick (fun () ->
        let s = Sublist.build enum_mid in
        let report = Compile.sop_report s in
        Alcotest.(check int) "entries" (Array.length s.Sublist.entries)
          (Array.length report));
  ]

let sampler_tests =
  [
    Alcotest.test_case "batch returns 63 values in range" `Quick (fun () ->
        let s = Sampler.of_enum enum_mid in
        let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "batch") in
        let batch = Sampler.batch_signed s bs in
        Alcotest.(check int) "lanes" 63 (Array.length batch);
        Array.iter
          (fun v ->
            Alcotest.(check bool) "in range" true
              (abs v <= enum_mid.Le.matrix.Matrix.support))
          batch);
    Alcotest.test_case "sample buffer refills" `Quick (fun () ->
        let s = Sampler.of_enum enum_mid in
        let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "buffer") in
        for _ = 1 to 200 do
          ignore (Sampler.sample s bs)
        done;
        Alcotest.(check pass) "no exception" () ());
    Alcotest.test_case "distribution matches exact probabilities" `Slow
      (fun () ->
        let s = Sampler.of_enum enum_mid in
        let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "distribution") in
        let trials = 63 * 1500 in
        let samples = Array.init trials (fun _ -> Sampler.sample s bs) in
        let emp =
          Ctg_stats.Distance.empirical samples
            ~support:enum_mid.Le.matrix.Matrix.support
        in
        let exact = Ctg_stats.Distance.exact_probabilities enum_mid.Le.matrix in
        let sd = Ctg_stats.Distance.statistical emp exact in
        Alcotest.(check bool)
          (Printf.sprintf "statistical distance %.4f" sd)
          true (sd < 0.02));
    Alcotest.test_case "create runs the full pipeline" `Quick (fun () ->
        let s = Sampler.create ~sigma:"1.7" ~precision:16 ~tail_cut:13 () in
        Alcotest.(check string) "sigma" "1.7" (Sampler.sigma s);
        Alcotest.(check bool) "has gates" true (Sampler.gate_count s > 0));
  ]

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let codegen_tests =
  [
    Alcotest.test_case "C output contains the interface" `Quick (fun () ->
        let s = Sampler.of_enum enum_mid in
        let c = Codegen.to_c ~name:"sampler_sigma2" (Sampler.program s) in
        Alcotest.(check bool) "function" true
          (contains ~affix:"void sampler_sigma2(const uint64_t *b, uint64_t *out)" c);
        Alcotest.(check bool) "stdint" true
          (contains ~affix:"#include <stdint.h>" c));
    Alcotest.test_case "OCaml output parses visually" `Quick (fun () ->
        let s = Sampler.of_enum enum_mid in
        let ml = Codegen.to_ocaml (Sampler.program s) in
        Alcotest.(check bool) "let binding" true
          (contains ~affix:"let ct_gauss_sample (b : int array)" ml));
    Alcotest.test_case "dot output is a digraph" `Quick (fun () ->
        let enum = enum_of "1.2" 8 in
        let s = Sampler.of_enum enum in
        let dot = Codegen.to_dot (Sampler.program s) in
        Alcotest.(check bool) "digraph" true
          (contains ~affix:"digraph" (String.sub dot 0 7)));
  ]

let pipeline_tests =
  [
    Alcotest.test_case "pipeline reports five stages" `Quick (fun () ->
        let p = Pipeline.run ~sigma:"2" ~precision:16 ~tail_cut:13 () in
        Alcotest.(check int) "stages" 5 (List.length p.Pipeline.reports));
    Alcotest.test_case "pipeline program is the compiled one" `Quick (fun () ->
        let p = Pipeline.run ~sigma:"2" ~precision:16 ~tail_cut:13 () in
        Alcotest.(check bool) "gates > 0" true (Gate.gate_count p.Pipeline.program > 0);
        Alcotest.(check bool) "baseline too" true
          (Gate.gate_count p.Pipeline.simple_program > 0));
  ]

let prop_tests =
  let open QCheck in
  let split_sampler = Sampler.of_enum enum_mid in
  let simple_sampler = Sampler.of_enum ~method_:Simple enum_mid in
  List.map QCheck_alcotest.to_alcotest
    [
      Test.make ~name:"both compilers agree with each other" ~count:400
        small_nat
        (fun seed ->
          let rng = Ctg_prng.Splitmix64.create (Int64.of_int (seed * 131)) in
          let bits = random_bits rng 24 in
          Sampler.eval_bits split_sampler bits
          = Sampler.eval_bits simple_sampler bits);
      Test.make ~name:"bitsliced batch = 63 single evaluations" ~count:20
        small_nat
        (fun seed ->
          (* Drive the program with one word per variable and check every
             lane against eval_single on the same per-lane bits. *)
          let p = Sampler.program split_sampler in
          let rng = Ctg_prng.Splitmix64.create (Int64.of_int (seed + 555)) in
          let nv = p.Gate.num_vars in
          let inputs =
            Array.init nv (fun _ ->
                Int64.to_int (Ctg_prng.Splitmix64.next rng) land max_int)
          in
          let scratch = Bitslice.scratch p in
          Bitslice.eval p scratch ~inputs;
          let mags = Bitslice.magnitudes p scratch in
          let valid = Bitslice.valid_word p scratch in
          let ok = ref true in
          for lane = 0 to 40 do
            let bits = Array.init nv (fun v -> (inputs.(v) lsr lane) land 1 = 1) in
            let v, ok1 = Ctgauss.Bitslice.eval_single p bits in
            if ok1 <> ((valid lsr lane) land 1 = 1) then ok := false;
            if ok1 && v <> mags.(lane) then ok := false
          done;
          !ok);
    ]

let () =
  Alcotest.run "core"
    [
      ("gate", gate_tests);
      ("compilers", compiler_tests);
      ("sampler", sampler_tests);
      ("codegen", codegen_tests);
      ("pipeline", pipeline_tests);
      ("properties", prop_tests);
    ]
