(** Online distribution-drift monitor for one sampler.

    Signed samples stream in (typically per engine chunk, via
    {!Ctg_engine.Pool.add_chunk_observer}); magnitudes accumulate in two
    {!Sketch}es — the current {e window} and the lifetime {e cumulative}
    sketch.  Each time the window fills, the monitor runs a Pearson
    chi-square of the window counts against the exact folded distribution
    {!Ctg_stats.Distance.exact_probabilities} of the sampler's matrix,
    conditioned on termination — the walk restarts on the residual path,
    so the sampler's true law is [p_v / (1 - residual)] and the overflow
    bin carries zero expected mass — plus max-log and Rényi drift over
    the observed support, and
    publishes everything as gauges/counters on a {!Ctg_obs.Registry}.

    {b Alpha spending.}  A fixed per-window threshold would alarm
    eventually on any infinite stream of true-null windows.  Window [k]
    instead tests at [alpha_k = alpha / (k (k+1))]; since
    [sum 1/(k(k+1)) = 1], the whole (unbounded) soak's false-alarm
    probability is below [alpha] — so a clean week-long run stays quiet by
    construction, while a real bias fault still trips the very first
    window it corrupts (its p-value collapses far below any [alpha_k]).

    {b Thread safety.}  [observe] and every reader lock an internal
    mutex; the monitor may be fed concurrently from all worker domains.
    Metric gauges reflect the most recently {e completed} window. *)

type config = {
  window : int;  (** Samples per test window; default 100_000. *)
  alpha : float;  (** Total false-alarm budget over all windows; 0.01. *)
  renyi_alpha : float;  (** Order of the Rényi drift gauge; 2.0. *)
  keep_results : int;  (** Window results retained for [/drift.json]; 32. *)
}

val default_config : config

type window_result = {
  index : int;  (** 1-based window number. *)
  n : int;
  overflow : int;  (** Samples beyond the matrix support in this window. *)
  statistic : float;
  dof : int;
  p_value : float;
  alpha_k : float;
  alarm : bool;  (** [p_value < alpha_k]. *)
  max_log : float;  (** Max-log drift over magnitudes observed in window. *)
  renyi : float;  (** Rényi divergence (empirical ‖ exact), same support. *)
}

type t

val create :
  ?config:config ->
  ?registry:Ctg_obs.Registry.t ->
  ?labels:Ctg_obs.Registry.labels ->
  matrix:Ctg_kyao.Matrix.t ->
  unit ->
  t
(** Monitor for the distribution encoded by [matrix].  Metrics are
    registered under [labels] (convention: [sigma]):
    [assure_drift_chi2], [assure_drift_p_value], [assure_drift_max_log],
    [assure_drift_renyi] gauges and [assure_drift_windows_total],
    [assure_drift_alarms_total], [assure_drift_samples_total] counters. *)

val observe : t -> int array -> unit
(** Fold a batch of signed samples; runs any window evaluations it
    completes.  Thread-safe; must not be handed arrays it may not read. *)

val observe_sub : t -> int array -> pos:int -> len:int -> unit
(** [observe] over a slice without copying it out — the allocation-free
    feed for callers that fill one large output array chunk by chunk
    (the overhead bench's monitored arm). *)

val flush : t -> window_result option
(** Force-evaluate the current partial window (None when it is empty) —
    the end-of-soak closing step, spending the next alpha_k. *)

val windows : t -> int
val alarms : t -> int

val samples : t -> int
(** Total samples folded over the monitor's lifetime. *)

val cumulative : t -> Sketch.t
(** Copy of the lifetime sketch. *)

val last : t -> window_result option

val first_alarm : t -> window_result option
(** The earliest window that alarmed over the monitor's lifetime (kept
    even after it ages out of [results]) — what [/healthz] reports as the
    first-alarm window so operators can triage without scraping
    [/drift.json]. *)

val results : t -> window_result list
(** Retained window results, oldest first (at most [keep_results]). *)

val exact : t -> float array

val alpha_at : alpha:float -> int -> float
(** The spending schedule, exposed for tests: [alpha_at ~alpha k] is
    window [k]'s threshold. *)

val expected_model : matrix:Ctg_kyao.Matrix.t -> float array * float
(** [(conditional, residual)]: the termination-conditioned per-magnitude
    law the monitor tests against — [conditional.(v) = p_v / (1-residual)]
    for [v <= support] plus a trailing zero-mass overflow bin — and the
    tail+rounding mass beyond the support.  Exposed so the offline
    acceptance battery ({!Ctg_saga.Battery}) tests against exactly the
    model the online monitor uses. *)

val result_json : window_result -> Ctg_obs.Jsonx.t
val pp_result : Format.formatter -> window_result -> unit
