lib/core/pipeline.mli: Compile Ctg_kyao Format Gate Sublist
