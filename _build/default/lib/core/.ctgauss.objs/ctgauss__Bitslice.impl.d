lib/core/bitslice.ml: Array Gate
