(* Minimal HTTP/1.1 client over one keep-alive connection: what the smoke
   clients, the serve bench and the tests use to talk to the daemon without
   shelling out to curl. *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type t = { fd : Unix.file_descr; host : string; mutable pending : string }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; host; pending = "" }

let close t = try Unix.close t.fd with _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | 0 -> failwith "Client: short write"
    | written -> pos := !pos + written
  done

let refill t =
  let chunk = Bytes.create 4096 in
  match Unix.read t.fd chunk 0 (Bytes.length chunk) with
  | 0 -> false
  | n ->
    t.pending <- t.pending ^ Bytes.sub_string chunk 0 n;
    true

let take t n =
  let s = String.sub t.pending 0 n in
  t.pending <- String.sub t.pending n (String.length t.pending - n);
  s

let read_until t pat =
  let find () =
    let p = t.pending and n = String.length t.pending in
    let m = String.length pat in
    let rec go i =
      if i + m > n then None
      else if String.sub p i m = pat then Some i
      else go (i + 1)
    in
    go 0
  in
  let rec loop () =
    match find () with
    | Some i -> Some i
    | None -> if refill t then loop () else None
  in
  loop ()

let read_exactly t n =
  let rec loop () =
    if String.length t.pending >= n then take t n
    else if refill t then loop ()
    else failwith "Client: connection closed mid-body"
  in
  loop ()

let parse_headers block =
  String.split_on_char '\n' block
  |> List.filter_map (fun l ->
         let l =
           let n = String.length l in
           if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
         in
         match String.index_opt l ':' with
         | None -> None
         | Some i ->
           Some
             ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
               String.trim (String.sub l (i + 1) (String.length l - i - 1)) ))

let request t ?(headers = []) ?body ~meth ~path () =
  let body = Option.value body ~default:"" in
  let extra =
    List.fold_left
      (fun acc (k, v) -> acc ^ Printf.sprintf "%s: %s\r\n" k v)
      "" headers
  in
  let content =
    if body = "" && meth = "GET" then ""
    else Printf.sprintf "Content-Length: %d\r\n" (String.length body)
  in
  write_all t.fd
    (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s\r\n%s%s\r\n%s" meth path t.host
       extra content body);
  (* Status line. *)
  let status =
    match read_until t "\r\n" with
    | None -> failwith "Client: no status line"
    | Some i -> (
      let line = take t (i + 2) in
      match String.split_on_char ' ' line with
      | _http :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> failwith ("Client: bad status line " ^ line))
      | _ -> failwith ("Client: bad status line " ^ line))
  in
  (* Header block. *)
  let hdrs =
    match read_until t "\r\n\r\n" with
    | None -> failwith "Client: truncated headers"
    | Some i ->
      let block = take t (i + 4) in
      parse_headers (String.sub block 0 i)
  in
  let body =
    match List.assoc_opt "content-length" hdrs with
    | Some v -> read_exactly t (int_of_string (String.trim v))
    | None ->
      (* No length: the server will close the connection after the body. *)
      let rec drain () = if refill t then drain () in
      drain ();
      take t (String.length t.pending)
  in
  { status; headers = hdrs; body }

let one_shot ?host ~port ?headers ?body ~meth ~path () =
  let t = connect ?host ~port () in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () -> request t ?headers ?body ~meth ~path ())

let get ?host ~port path = one_shot ?host ~port ~meth:"GET" ~path ()

let post ?host ~port ?body path =
  one_shot ?host ~port ?body ~meth:"POST" ~path ()
