(* Minimal HTTP/1.1 client over one keep-alive connection: what the smoke
   clients, the serve bench and the tests use to talk to the daemon without
   shelling out to curl. *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type t = { fd : Unix.file_descr; host : string; mutable pending : string }

let connect ?(host = "127.0.0.1") ?timeout ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     (match timeout with
     | Some s when s > 0.0 ->
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
     | Some _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
     | None -> ());
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; host; pending = "" }

let close t = try Unix.close t.fd with _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | 0 -> failwith "Client: short write"
    | written -> pos := !pos + written
  done

let refill t =
  let chunk = Bytes.create 4096 in
  match Unix.read t.fd chunk 0 (Bytes.length chunk) with
  | 0 -> false
  | n ->
    t.pending <- t.pending ^ Bytes.sub_string chunk 0 n;
    true

let take t n =
  let s = String.sub t.pending 0 n in
  t.pending <- String.sub t.pending n (String.length t.pending - n);
  s

let read_until t pat =
  let find () =
    let p = t.pending and n = String.length t.pending in
    let m = String.length pat in
    let rec go i =
      if i + m > n then None
      else if String.sub p i m = pat then Some i
      else go (i + 1)
    in
    go 0
  in
  let rec loop () =
    match find () with
    | Some i -> Some i
    | None -> if refill t then loop () else None
  in
  loop ()

let read_exactly t n =
  let rec loop () =
    if String.length t.pending >= n then take t n
    else if refill t then loop ()
    else failwith "Client: connection closed mid-body"
  in
  loop ()

let parse_headers block =
  String.split_on_char '\n' block
  |> List.filter_map (fun l ->
         let l =
           let n = String.length l in
           if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
         in
         match String.index_opt l ':' with
         | None -> None
         | Some i ->
           Some
             ( String.lowercase_ascii (String.trim (String.sub l 0 i)),
               String.trim (String.sub l (i + 1) (String.length l - i - 1)) ))

let request t ?(headers = []) ?body ~meth ~path () =
  let body = Option.value body ~default:"" in
  let extra =
    List.fold_left
      (fun acc (k, v) -> acc ^ Printf.sprintf "%s: %s\r\n" k v)
      "" headers
  in
  let content =
    if body = "" && meth = "GET" then ""
    else Printf.sprintf "Content-Length: %d\r\n" (String.length body)
  in
  write_all t.fd
    (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s\r\n%s%s\r\n%s" meth path t.host
       extra content body);
  (* Status line. *)
  let status =
    match read_until t "\r\n" with
    | None -> failwith "Client: no status line"
    | Some i -> (
      let line = take t (i + 2) in
      match String.split_on_char ' ' line with
      | _http :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> failwith ("Client: bad status line " ^ line))
      | _ -> failwith ("Client: bad status line " ^ line))
  in
  (* Header block. *)
  let hdrs =
    match read_until t "\r\n\r\n" with
    | None -> failwith "Client: truncated headers"
    | Some i ->
      let block = take t (i + 4) in
      parse_headers (String.sub block 0 i)
  in
  let body =
    match List.assoc_opt "content-length" hdrs with
    | Some v -> read_exactly t (int_of_string (String.trim v))
    | None ->
      (* No length: the server will close the connection after the body. *)
      let rec drain () = if refill t then drain () in
      drain ();
      take t (String.length t.pending)
  in
  { status; headers = hdrs; body }

let one_shot ?host ~port ?headers ?body ~meth ~path () =
  let t = connect ?host ~port () in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () -> request t ?headers ?body ~meth ~path ())

let get ?host ~port path = one_shot ?host ~port ~meth:"GET" ~path ()

let post ?host ~port ?body path =
  one_shot ?host ~port ?body ~meth:"POST" ~path ()

(* ------------------------------------------------------------------ *)
(* Retry layer: bounded exponential backoff with jitter, per-request
   deadline, idempotent-only by default.                               *)
(* ------------------------------------------------------------------ *)

type retry_policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  deadline : float option;
  retry_non_idempotent : bool;
  jitter : attempt:int -> cap:float -> float;
  sleep : float -> unit;
}

(* Equal jitter: half the backoff step is guaranteed, half randomized so
   concurrent clients retrying after one daemon hiccup desynchronize.
   Deliberately unseeded — retry timing is operational, never part of a
   reproducible verdict — and stateless, so concurrent domains race on
   nothing.  Tests pin the seam instead. *)
let default_jitter ~attempt ~cap =
  let frac =
    float_of_int (Hashtbl.hash (attempt, Unix.gettimeofday ()) land 0xffff)
    /. 65536.0
  in
  (cap /. 2.0) +. (cap /. 2.0 *. frac)

let default_policy =
  {
    max_attempts = 3;
    base_delay = 0.05;
    max_delay = 1.0;
    deadline = Some 5.0;
    retry_non_idempotent = false;
    jitter = default_jitter;
    sleep = Unix.sleepf;
  }

(* Transport and protocol failures are worth retrying: the daemon may be
   mid-restart, shedding, or have closed a keep-alive socket under us.
   Anything else (bad arguments, out of descriptors) is not transient.
   A received HTTP response — any status, including 503 — is never
   retried here: a 503 from /healthz is the answer, not a failure. *)
let transient = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE
        | Unix.ETIMEDOUT | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
        | Unix.ENETUNREACH | Unix.EHOSTUNREACH ),
        _,
        _ ) ->
    true
  | Failure msg -> String.length msg >= 7 && String.sub msg 0 7 = "Client:"
  | _ -> false

let backoff_cap p attempt =
  Float.min p.max_delay (p.base_delay *. (2.0 ** float_of_int (attempt - 1)))

(* Run [f ~timeout] up to [max_attempts] times.  [timeout] is the time
   left on the request deadline, applied as socket send/receive timeouts
   by [connect]; the deadline also bounds the backoff sleeps, so a
   request never outlives [deadline] by more than one socket timeout. *)
let with_retry (p : retry_policy) ~meth f =
  let idempotent = meth = "GET" || meth = "HEAD" in
  let allow_retry = idempotent || p.retry_non_idempotent in
  let deadline_at =
    Option.map (fun d -> Unix.gettimeofday () +. d) p.deadline
  in
  let remaining () =
    Option.map (fun d -> d -. Unix.gettimeofday ()) deadline_at
  in
  if p.max_attempts < 1 then invalid_arg "Client: max_attempts < 1";
  let rec attempt n =
    (match remaining () with
    | Some r when r <= 0.0 -> failwith "Client: request deadline exceeded"
    | _ -> ());
    try f ~timeout:(remaining ())
    with e when allow_retry && n < p.max_attempts && transient e ->
      let d = p.jitter ~attempt:n ~cap:(backoff_cap p n) in
      let d =
        match remaining () with
        | Some r -> Float.min d (Float.max 0.0 r)
        | None -> d
      in
      p.sleep d;
      attempt (n + 1)
  in
  attempt 1

let connect_retry ?(policy = default_policy) ?host ~port () =
  with_retry policy ~meth:"GET" (fun ~timeout -> connect ?host ?timeout ~port ())

let one_shot_retry ?(policy = default_policy) ?host ~port ?headers ?body ~meth
    ~path () =
  with_retry policy ~meth (fun ~timeout ->
      let t = connect ?host ?timeout ~port () in
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () -> request t ?headers ?body ~meth ~path ()))

let get_retry ?policy ?host ~port path =
  one_shot_retry ?policy ?host ~port ~meth:"GET" ~path ()
