open Ctg_sync.Shim
module Bs = Ctg_prng.Bitstream
module Clock = Ctg_obs.Clock
module Trace = Ctg_obs.Trace
module Ctmon = Ctg_obs.Ctmon

exception Kill_worker

exception Chunk_failed of { chunk : int; attempts : int; error : exn }

exception Stalled of { waited_ns : int }

(* A bounded chunk queue for the streaming consumer.  Workers push
   completed chunks and block when [capacity] are in flight; the consumer
   pops, reorders to chunk-index order and hands them to the callback.
   The reorder buffer stays small by construction: chunks are claimed in
   increasing order, so at most [domains] chunks can be finished out of
   order at any moment.  Both waits are abortable: a failed job must not
   leave a producer blocked on a full queue or the consumer blocked on an
   empty one, so the loops re-check [should_abort] on every wakeup and the
   aborting thread (plus the watchdog, when one runs) broadcasts [q_cond].

   A standalone module (not inlined in the pool) so the ctg_race model
   checker can drive exactly this code in a bounded harness. *)
module Chunkq = struct
  type 'a t = {
    q_mutex : Mutex.t;
    q_cond : Condition.t;
    items : 'a Queue.t;
    capacity : int;
  }

  let create ~capacity =
    {
      q_mutex = Mutex.create ();
      q_cond = Condition.create ();
      items = Queue.create ();
      capacity;
    }

  let push q ~should_abort item =
    Mutex.lock q.q_mutex;
    while Queue.length q.items >= q.capacity && not (should_abort ()) do
      Condition.wait q.q_cond q.q_mutex
    done;
    if not (should_abort ()) then Queue.add item q.items;
    Condition.broadcast q.q_cond;
    Mutex.unlock q.q_mutex

  let pop q ~should_abort =
    Mutex.lock q.q_mutex;
    while Queue.is_empty q.items && not (should_abort ()) do
      Condition.wait q.q_cond q.q_mutex
    done;
    let item =
      if Queue.is_empty q.items then None else Some (Queue.take q.items)
    in
    Condition.broadcast q.q_cond;
    Mutex.unlock q.q_mutex;
    item

  let wake q =
    Mutex.lock q.q_mutex;
    Condition.broadcast q.q_cond;
    Mutex.unlock q.q_mutex
end

(* The per-job work-accounting core, extracted so the model checker can
   verify the exactly-once protocol (cursor + orphan re-queue + first
   failure wins + completion wakeup) in isolation from RNG and sampler
   machinery.  The pool's lock hierarchy is [t.mutex] -> [wq mutex]:
   Workq operations never take a pool lock. *)
module Workq = struct
  type t = {
    total : int;
    cursor : int Atomic.t;  (* next unclaimed chunk *)
    done_ : int Atomic.t;  (* chunks completed *)
    aborted : bool Atomic.t;
    last_progress : int Atomic.t;  (* caller-supplied stamp *)
    mutex : Mutex.t;  (* guards orphans + failure + the wait below *)
    cond : Condition.t;  (* the submitting caller waits for done/failed *)
    orphans : int Queue.t;  (* chunks claimed by crashed workers *)
    mutable failure : exn option;  (* first permanent error *)
  }

  let create ~total ~stamp =
    {
      total;
      cursor = Atomic.make 0;
      done_ = Atomic.make 0;
      aborted = Atomic.make false;
      last_progress = Atomic.make stamp;
      mutex = Mutex.create ();
      cond = Condition.create ();
      orphans = Queue.create ();
      failure = None;
    }

  let total q = q.total
  let aborted q = Atomic.get q.aborted
  let done_count q = Atomic.get q.done_
  let last_progress q = Atomic.get q.last_progress

  (* Orphans are served before the cursor so a crashed worker's chunk is
     re-run promptly (by the respawned or any other domain). *)
  let claim q =
    Mutex.lock q.mutex;
    let orphan =
      if Queue.is_empty q.orphans then None else Some (Queue.take q.orphans)
    in
    Mutex.unlock q.mutex;
    match orphan with
    | Some _ as c -> c
    | None ->
      if Atomic.get q.aborted then None
      else
        let c = Atomic.fetch_and_add q.cursor 1 in
        if c >= q.total then None else Some c

  (* The finisher of the last chunk wakes the submitting caller. *)
  let complete q ~stamp =
    Atomic.set q.last_progress stamp;
    if Atomic.fetch_and_add q.done_ 1 + 1 = q.total then begin
      Mutex.lock q.mutex;
      Condition.broadcast q.cond;
      Mutex.unlock q.mutex
    end

  let orphan q c =
    Mutex.lock q.mutex;
    Queue.add c q.orphans;
    Mutex.unlock q.mutex

  (* Record the first permanent error and wake the waiting caller. *)
  let fail q e =
    Mutex.lock q.mutex;
    if q.failure = None then q.failure <- Some e;
    Atomic.set q.aborted true;
    Condition.broadcast q.cond;
    Mutex.unlock q.mutex

  let failure q =
    Mutex.lock q.mutex;
    let f = q.failure in
    Mutex.unlock q.mutex;
    f

  (* Watchdog seam: wake the waiter so its stall predicate re-runs. *)
  let wake q =
    Mutex.lock q.mutex;
    Condition.broadcast q.cond;
    Mutex.unlock q.mutex

  (* Block until every chunk completed or the job failed.  [stall] is
     re-checked on each wakeup; returning [Some e] fails the job with
     [e].  Returns the failure, if any. *)
  let wait q ~stall =
    Mutex.lock q.mutex;
    let rec go () =
      if q.failure <> None then ()
      else if Atomic.get q.done_ >= q.total then ()
      else
        match stall () with
        | Some e ->
          q.failure <- Some e;
          Atomic.set q.aborted true
        | None ->
          Condition.wait q.cond q.mutex;
          go ()
    in
    go ();
    let f = q.failure in
    Mutex.unlock q.mutex;
    f
end

type sink = Array_sink of int array | Queue_sink of (int * int array) Chunkq.t

type job = {
  epoch : int;
  n : int;  (* total samples requested *)
  lane_base : int;  (* chunk c draws from Stream_fork lane lane_base + c *)
  wq : Workq.t;  (* cursor, orphans, completion and failure accounting *)
  sink : sink;
  flow : int option;  (* trace flow id: each chunk span emits a flow step *)
}

(* Degraded pools serve from the constant-time linear-search CDT instead of
   the compiled bitsliced program — the graceful-degradation path taken
   when the sampler fails its load-time KAT. *)
type mode = Bitsliced | Degraded of Ctg_samplers.Sampler_sig.instance

type fault_hook = chunk:int -> lane:int -> attempt:int -> unit

type chunk_observer = chunk:int -> lane:int -> int array -> unit

type t = {
  sampler : Ctgauss.Sampler.t;  (* master; workers use private clones *)
  mode : mode;
  gate_count : int;
  rng_of_lane : int -> Bs.t;
  chunk_samples : int;
  queue_capacity : int;
  ndomains : int;
  max_chunk_retries : int;
  max_respawns : int;
  stall_timeout_ns : int option;
  metrics : Metrics.t;
  ctmon : Ctmon.t;
  mutex : Mutex.t;
  cond : Condition.t;  (* workers wait for jobs; callers wait for done *)
  mutable fault_hook : fault_hook option;
  mutable chunk_observers : chunk_observer list;
  mutable job : job option;
  mutable epoch : int;
  mutable next_lane : int;
  mutable respawns : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  mutable watchdog : unit Domain.t option;
}

let domains t = t.ndomains
let metrics t = t.metrics
let ctmon t = t.ctmon
let chunk_samples t = t.chunk_samples
let degraded t = match t.mode with Degraded _ -> true | Bitsliced -> false
let set_fault_hook t hook = t.fault_hook <- hook

let add_chunk_observer t f = t.chunk_observers <- t.chunk_observers @ [ f ]

let stalled t (j : job) =
  match t.stall_timeout_ns with
  | None -> false
  | Some limit -> Clock.now_ns () - Workq.last_progress j.wq > limit

(* Record the first permanent error and wake everyone: the caller (waiting
   on the workq cond) and any producer/consumer blocked on the chunk
   queue. *)
let abort_job (j : job) err =
  Workq.fail j.wq err;
  match j.sink with Queue_sink q -> Chunkq.wake q | Array_sink _ -> ()

(* Fill [count] samples of chunk [c] from the chunk's own forked lane.
   Everything here depends only on (seed, lane, sampler program, count):
   no worker or domain-count input, which is the determinism guarantee —
   and which is also why a retried or reassigned chunk reproduces its
   output exactly. *)
let run_chunk t ~worker ~clone (j : job) c =
  let lane = j.lane_base + c in
  let rng = t.rng_of_lane lane in
  let offset = c * t.chunk_samples in
  let count = min t.chunk_samples (j.n - offset) in
  let out, out_pos =
    match j.sink with
    | Array_sink a -> (a, offset)
    | Queue_sink _ -> (Array.make count 0, 0)
  in
  let t_fill = Clock.now_ns () in
  (match t.mode with
  | Degraded inst ->
    (* One scalar CT-CDT draw per sample.  Every "batch" is one declared
       fallback, so the monitor accounts the whole chunk on the fallback
       side and its learned bitsliced expectation is never consulted or
       taught. *)
    Trace.with_span "chunk" ~cat:"engine"
      ~args:(fun () ->
        [
          ("chunk", string_of_int c);
          ("lane", string_of_int lane);
          ("samples", string_of_int count);
          ("mode", "degraded-cdt");
        ])
      (fun () ->
        (match j.flow with
        | Some id -> Trace.flow_step ~id "job"
        | None -> ());
        for i = 0 to count - 1 do
          out.(out_pos + i) <- Ctg_samplers.Sampler_sig.sample_signed inst rng
        done);
    Metrics.observe_chunk_service t.metrics (Clock.now_ns () - t_fill);
    Metrics.record t.metrics ~domain:worker ~samples:count ~batches:count
      ~bits:(Bs.bits_consumed rng) ~work:(Bs.prng_work rng) ~gates:0;
    Ctmon.record_chunk t.ctmon ~batches:count ~bits:(Bs.bits_consumed rng)
      ~samples:count ~deviations:0 ~fallbacks:count
  | Bitsliced ->
    let clone = Lazy.force clone in
    let filled = ref 0 in
    let batches = ref 0 in
    (* CT check: every batch of a constant-time program draws the same
       number of bits.  Deviations are classified per batch (fallback lanes
       are the declared escape) with plain field reads; the registry is
       touched once per chunk, not per batch. *)
    let deviations = ref 0 and fallbacks = ref 0 in
    let resamples0 = Ctgauss.Sampler.resamples clone in
    Trace.with_span "chunk" ~cat:"engine"
      ~args:(fun () ->
        [
          ("chunk", string_of_int c);
          ("lane", string_of_int lane);
          ("samples", string_of_int count);
          ("batches", string_of_int !batches);
        ])
      (fun () ->
        (match j.flow with
        | Some id -> Trace.flow_step ~id "job"
        | None -> ());
        while !filled < count do
          let bits0 = Bs.bits_consumed rng in
          let res0 = Ctgauss.Sampler.resamples clone in
          let batch = Ctgauss.Sampler.batch_signed clone rng in
          let dbits = Bs.bits_consumed rng - bits0 in
          (* Fallback batches never teach the monitor: at low precision the
             first batch can take the fallback path, and learning its
             data-dependent bit count would flag every normal batch. *)
          if Ctgauss.Sampler.resamples clone > res0 then incr fallbacks
          else if dbits <> Ctmon.learn t.ctmon dbits then incr deviations;
          incr batches;
          let take = min (Array.length batch) (count - !filled) in
          Array.blit batch 0 out (out_pos + !filled) take;
          filled := !filled + take
        done);
    Metrics.observe_chunk_service t.metrics (Clock.now_ns () - t_fill);
    Metrics.record t.metrics ~domain:worker ~samples:count ~batches:!batches
      ~bits:(Bs.bits_consumed rng) ~work:(Bs.prng_work rng)
      ~gates:(!batches * t.gate_count);
    Metrics.add_fallback t.metrics
      (Ctgauss.Sampler.resamples clone - resamples0);
    Ctmon.record_chunk t.ctmon ~batches:!batches ~bits:(Bs.bits_consumed rng)
      ~samples:count ~deviations:!deviations ~fallbacks:!fallbacks);
  (* Observers see each completed chunk exactly once (a retried chunk only
     reaches this point on its successful attempt), on the worker domain
     that filled it. *)
  (match t.chunk_observers with
  | [] -> ()
  | observers ->
    let view =
      match j.sink with
      | Array_sink a -> Array.sub a offset count
      | Queue_sink _ -> out
    in
    List.iter (fun f -> f ~chunk:c ~lane view) observers);
  match j.sink with
  | Array_sink _ -> ()
  | Queue_sink q ->
    let t_q = Clock.now_ns () in
    Chunkq.push q ~should_abort:(fun () -> Workq.aborted j.wq) (c, out);
    Metrics.observe_queue_wait t.metrics (Clock.now_ns () - t_q)

(* Bounded in-place retry with exponential backoff.  A transient chunk
   failure (entropy health trip, injected fault) is retried on the same
   worker — the chunk's lane and offset are functions of its index, so the
   retry recomputes the identical output.  [Kill_worker] is not a chunk
   error: it escapes to the worker loop, which orphans the chunk for
   another domain.  Exhausted retries abort the whole job so the error
   surfaces on the caller instead of hanging it. *)
let rec attempt_chunk t ~worker ~clone (j : job) c attempt =
  match
    (match t.fault_hook with
    | Some hook -> hook ~chunk:c ~lane:(j.lane_base + c) ~attempt
    | None -> ());
    run_chunk t ~worker ~clone j c
  with
  | () -> Workq.complete j.wq ~stamp:(Clock.now_ns ())
  | exception Kill_worker -> raise Kill_worker
  | exception e ->
    (match e with
    | Ctg_prng.Health.Entropy_failure _ -> Metrics.add_health_failure t.metrics
    | _ -> ());
    if attempt < t.max_chunk_retries && not (Workq.aborted j.wq) then begin
      Metrics.add_chunk_retry t.metrics;
      Unix.sleepf (0.001 *. float_of_int (1 lsl attempt));
      attempt_chunk t ~worker ~clone j c (attempt + 1)
    end
    else
      abort_job j (Chunk_failed { chunk = c; attempts = attempt + 1; error = e })

let rec worker_loop t worker =
  (* Clones are only needed by the bitsliced path; a degraded pool never
     touches the (failed) compiled program again. *)
  let clone = lazy (Ctgauss.Sampler.clone t.sampler) in
  let last_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while
      (not t.stopped)
      && (match t.job with None -> true | Some j -> j.epoch = !last_epoch)
    do
      Condition.wait t.cond t.mutex
    done;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      let j = Option.get t.job in
      last_epoch := j.epoch;
      Mutex.unlock t.mutex;
      let continue = ref true in
      while !continue do
        match Workq.claim j.wq with
        | None -> continue := false
        | Some c -> (
          try attempt_chunk t ~worker ~clone j c 0
          with Kill_worker ->
            handle_kill t ~worker j c;
            continue := false;
            running := false)
      done
    end
  done

(* A worker domain died mid-chunk.  Its claimed chunk goes on the orphan
   queue (served before the cursor, so it is re-run — by the replacement
   or any other domain — with identical output), and a replacement domain
   is spawned under the same worker index while the respawn budget lasts.
   Past the budget the job is failed rather than silently under-manned. *)
and handle_kill t ~worker (j : job) c =
  Mutex.lock t.mutex;
  (* Lock order is t.mutex -> wq.mutex, everywhere. *)
  Workq.orphan j.wq c;
  let respawn = (not t.stopped) && t.respawns < t.max_respawns in
  if respawn then begin
    t.respawns <- t.respawns + 1;
    t.workers <- Domain.spawn (fun () -> worker_loop t worker) :: t.workers
  end;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if respawn then Metrics.add_worker_respawn t.metrics
  else
    abort_job j (Chunk_failed { chunk = c; attempts = 0; error = Kill_worker })

(* The watchdog exists because OCaml's [Condition] has no timed wait: it
   periodically wakes anyone sleeping on the pool or queue conditions so
   their predicates can notice a stall deadline.  Spawned only when
   [stall_timeout] is set — an un-timed pool pays nothing. *)
let watchdog_loop t interval =
  let continue = ref true in
  while !continue do
    Unix.sleepf interval;
    Mutex.lock t.mutex;
    if t.stopped then continue := false
    else begin
      Condition.broadcast t.cond;
      match t.job with
      | Some j -> (
        Workq.wake j.wq;
        match j.sink with Queue_sink q -> Chunkq.wake q | Array_sink _ -> ())
      | None -> ()
    end;
    Mutex.unlock t.mutex
  done

let create ?domains ?(backend = Stream_fork.Chacha) ?(chunk_batches = 16)
    ?queue_capacity ?rng_of_lane ?(self_test = true) ?stall_timeout
    ?(max_chunk_retries = 2) ?max_respawns ~seed sampler =
  let ndomains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Pool.create: domains must be >= 1";
      d
    | None -> Domain.recommended_domain_count ()
  in
  if chunk_batches < 1 then
    invalid_arg "Pool.create: chunk_batches must be >= 1";
  if max_chunk_retries < 0 then
    invalid_arg "Pool.create: max_chunk_retries must be >= 0";
  let max_respawns =
    match max_respawns with
    | Some r ->
      if r < 0 then invalid_arg "Pool.create: max_respawns must be >= 0";
      r
    | None -> max 4 ndomains
  in
  let stall_timeout_ns =
    match stall_timeout with
    | None -> None
    | Some s ->
      if s <= 0. then invalid_arg "Pool.create: stall_timeout must be > 0";
      Some (int_of_float (s *. 1e9))
  in
  let queue_capacity =
    match queue_capacity with
    | Some c ->
      if c < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
      c
    | None -> 2 * ndomains
  in
  let mode =
    if not self_test then Bitsliced
    else
      match Selftest.run sampler with
      | Ok () -> Bitsliced
      | Error _ ->
        (* The compiled program disagrees with the reference walk — a
           corrupted gate table.  Keep serving, but from the CT
           linear-search CDT built from the (still trusted) probability
           matrix.  Slower, still constant-time, still correct. *)
        Degraded
          (Ctg_samplers.Cdt_samplers.linear_ct
             (Ctg_samplers.Cdt_table.of_matrix (Ctgauss.Sampler.matrix sampler)))
  in
  let labels =
    [
      ("sigma", Ctgauss.Sampler.sigma sampler);
      ( "sampler",
        match mode with
        | Bitsliced -> "bitsliced"
        | Degraded _ -> "cdt-linear-ct-degraded" );
    ]
  in
  let metrics = Metrics.create ~domains:ndomains ~labels () in
  (match mode with
  | Degraded _ -> Metrics.set_degraded metrics true
  | Bitsliced -> ());
  let rng_of_lane =
    match rng_of_lane with
    | Some f -> f
    | None -> fun lane -> Stream_fork.bitstream ~backend ~seed ~lane ()
  in
  let t =
    {
      sampler;
      mode;
      gate_count = Ctgauss.Sampler.gate_count sampler;
      rng_of_lane;
      chunk_samples = chunk_batches * Ctgauss.Bitslice.lanes;
      queue_capacity;
      ndomains;
      max_chunk_retries;
      max_respawns;
      stall_timeout_ns;
      metrics;
      ctmon = Ctmon.create ~registry:(Metrics.registry metrics) ~labels ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      fault_hook = None;
      chunk_observers = [];
      job = None;
      epoch = 0;
      next_lane = 0;
      respawns = 0;
      stopped = false;
      workers = [];
      watchdog = None;
    }
  in
  t.workers <-
    List.init ndomains (fun w -> Domain.spawn (fun () -> worker_loop t w));
  (match stall_timeout_ns with
  | Some ns ->
    let interval = Float.min 0.05 (float_of_int ns /. 4e9) in
    t.watchdog <- Some (Domain.spawn (fun () -> watchdog_loop t interval))
  | None -> ());
  t

(* Publish a job to the workers; returns it with the lane range claimed. *)
let submit ?flow t ~n ~make_sink =
  if n < 0 then invalid_arg "Pool: n must be >= 0";
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: shut down"
  end;
  if t.job <> None then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: a job is already running (pools are single-consumer)"
  end;
  let total_chunks = (n + t.chunk_samples - 1) / t.chunk_samples in
  t.epoch <- t.epoch + 1;
  let j =
    {
      epoch = t.epoch;
      n;
      lane_base = t.next_lane;
      wq = Workq.create ~total:total_chunks ~stamp:(Clock.now_ns ());
      sink = make_sink ~total_chunks;
      flow;
    }
  in
  (* Lanes are consumed per call, so successive jobs draw fresh
     randomness while staying reproducible as a sequence. *)
  t.next_lane <- t.next_lane + total_chunks;
  t.job <- Some j;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  j

let finish_job t (j : job) =
  let failure =
    Workq.wait j.wq ~stall:(fun () ->
        if stalled t j then
          Some
            (Stalled
               { waited_ns = Clock.now_ns () - Workq.last_progress j.wq })
        else None)
  in
  Mutex.lock t.mutex;
  t.job <- None;
  Mutex.unlock t.mutex;
  (match (j.sink, failure) with
  | Queue_sink q, Some _ -> Chunkq.wake q
  | _ -> ());
  match failure with Some e -> raise e | None -> ()

let batch_parallel ?flow t ~n =
  let out = ref [||] in
  let j =
    submit ?flow t ~n ~make_sink:(fun ~total_chunks:_ ->
        let a = Array.make n 0 in
        out := a;
        Array_sink a)
  in
  finish_job t j;
  !out

let iter_batches ?flow t ~n f =
  let queue = ref None in
  let j =
    submit ?flow t ~n ~make_sink:(fun ~total_chunks:_ ->
        let q = Chunkq.create ~capacity:t.queue_capacity in
        queue := Some q;
        Queue_sink q)
  in
  (try
     match !queue with
     | None -> assert false
     | Some q ->
       (* Deliver in chunk order so the consumed stream equals the
          batch_parallel array; the pending table holds early finishers.
          The pop is abortable: a failed or stalled job unblocks the
          consumer here, and [finish_job] below re-raises its error. *)
       let should_abort () = Workq.aborted j.wq || stalled t j in
       let pending = Hashtbl.create 16 in
       let next = ref 0 in
       (try
          while !next < Workq.total j.wq do
            match Hashtbl.find_opt pending !next with
            | Some chunk ->
              Hashtbl.remove pending !next;
              incr next;
              f chunk
            | None -> (
              match Chunkq.pop q ~should_abort with
              | None ->
                if (not (Workq.aborted j.wq)) && stalled t j then
                  abort_job j
                    (Stalled
                       {
                         waited_ns =
                           Clock.now_ns () - Workq.last_progress j.wq;
                       });
                raise Exit
              | Some (c, chunk) ->
                if c = !next then begin
                  incr next;
                  f chunk
                end
                else Hashtbl.replace pending c chunk)
          done
        with Exit -> ())
   with e ->
     (* The consumer callback itself raised: fail the job so workers
        unblock, then fall through to finish_job, which re-raises. *)
     abort_job j e);
  finish_job t j

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopped then begin
    t.stopped <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- [];
    Option.iter Domain.join t.watchdog;
    t.watchdog <- None
  end
  else Mutex.unlock t.mutex

let parallel_for ?domains ~n f =
  let d =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Pool.parallel_for: domains must be >= 1";
      d
    | None -> Domain.recommended_domain_count ()
  in
  if n < 0 then invalid_arg "Pool.parallel_for: n must be >= 0";
  let cursor = Atomic.make 0 in
  (* First error wins; every domain stops claiming once one is recorded,
     and the caller re-raises only after joining the helpers — no leaked
     domains, no lost exception. *)
  let error = Atomic.make None in
  let run () =
    let continue = ref true in
    while !continue do
      if Atomic.get error <> None then continue := false
      else begin
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n then continue := false
        else
          try f i
          with e ->
            ignore (Atomic.compare_and_set error None (Some e));
            continue := false
      end
    done
  in
  let helpers = List.init (min d n - 1 |> max 0) (fun _ -> Domain.spawn run) in
  run ();
  List.iter Domain.join helpers;
  match Atomic.get error with Some e -> raise e | None -> ()
