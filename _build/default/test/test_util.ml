(* Bit and hex helpers — small, but everything above them trusts these. *)

module Bits = Ctg_util.Bits
module Hex = Ctg_util.Hex

let bits_tests =
  [
    Alcotest.test_case "popcount" `Quick (fun () ->
        Alcotest.(check int) "0" 0 (Bits.popcount 0);
        Alcotest.(check int) "0xff" 8 (Bits.popcount 0xff);
        Alcotest.(check int) "max_int" 62 (Bits.popcount max_int);
        Alcotest.(check int) "single high bit" 1 (Bits.popcount (1 lsl 61)));
    Alcotest.test_case "popcount64" `Quick (fun () ->
        Alcotest.(check int) "0" 0 (Bits.popcount64 0L);
        Alcotest.(check int) "-1" 64 (Bits.popcount64 (-1L));
        Alcotest.(check int) "pattern" 32 (Bits.popcount64 0x5555_5555_5555_5555L));
    Alcotest.test_case "bits_needed" `Quick (fun () ->
        Alcotest.(check int) "0" 0 (Bits.bits_needed 0);
        Alcotest.(check int) "1" 1 (Bits.bits_needed 1);
        Alcotest.(check int) "255" 8 (Bits.bits_needed 255);
        Alcotest.(check int) "256" 9 (Bits.bits_needed 256));
    Alcotest.test_case "get/set bit roundtrip" `Quick (fun () ->
        let buf = Bytes.make 4 '\000' in
        Bits.set_bit buf 0 1;
        Bits.set_bit buf 7 1;
        Bits.set_bit buf 17 1;
        Alcotest.(check int) "bit 0" 1 (Bits.get_bit buf 0);
        Alcotest.(check int) "bit 7" 1 (Bits.get_bit buf 7);
        Alcotest.(check int) "bit 8" 0 (Bits.get_bit buf 8);
        Alcotest.(check int) "bit 17" 1 (Bits.get_bit buf 17);
        Bits.set_bit buf 7 0;
        Alcotest.(check int) "cleared" 0 (Bits.get_bit buf 7);
        Alcotest.(check int) "neighbour intact" 1 (Bits.get_bit buf 0));
    Alcotest.test_case "leading_ones" `Quick (fun () ->
        Alcotest.(check int) "empty" 0 (Bits.leading_ones [||]);
        Alcotest.(check int) "no ones" 0 (Bits.leading_ones [| false; true |]);
        Alcotest.(check int) "two" 2 (Bits.leading_ones [| true; true; false; true |]);
        Alcotest.(check int) "all" 3 (Bits.leading_ones [| true; true; true |]));
    Alcotest.test_case "string round trips" `Quick (fun () ->
        let bits = [| true; false; false; true; true |] in
        Alcotest.(check string) "render" "10011" (Bits.string_of_bits bits);
        Alcotest.(check bool) "parse" true
          (Bits.bits_of_string "10011" = bits);
        Alcotest.(check bool) "x parses as 0" true
          (Bits.bits_of_string "1x" = [| true; false |]));
    Alcotest.test_case "int_of_bits_be" `Quick (fun () ->
        (* The paper's reversed evaluation: index 0 is the MSB. *)
        Alcotest.(check int) "101" 0b101 (Bits.int_of_bits_be [| true; false; true |]);
        Alcotest.(check int) "empty" 0 (Bits.int_of_bits_be [||]));
  ]

let hex_tests =
  [
    Alcotest.test_case "encode" `Quick (fun () ->
        Alcotest.(check string) "deadbeef" "deadbeef"
          (Hex.encode (Bytes.of_string "\xde\xad\xbe\xef"));
        Alcotest.(check string) "empty" "" (Hex.encode Bytes.empty));
    Alcotest.test_case "decode" `Quick (fun () ->
        Alcotest.(check bytes) "roundtrip" (Bytes.of_string "\x00\xff\x10")
          (Hex.decode "00ff10");
        Alcotest.(check bytes) "uppercase" (Bytes.of_string "\xab") (Hex.decode "AB");
        Alcotest.(check bytes) "whitespace ignored" (Bytes.of_string "\x12\x34")
          (Hex.decode "12 34\n"));
    Alcotest.test_case "decode rejects bad input" `Quick (fun () ->
        Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd digit count")
          (fun () -> ignore (Hex.decode "abc"));
        Alcotest.check_raises "non-hex" (Invalid_argument "Hex.decode: g")
          (fun () -> ignore (Hex.decode "ag")));
  ]

let prop_tests =
  let open QCheck in
  List.map QCheck_alcotest.to_alcotest
    [
      Test.make ~name:"hex roundtrip" ~count:200 (string_of_size (Gen.int_bound 64))
        (fun s ->
          let b = Bytes.of_string s in
          Bytes.equal b (Hex.decode (Hex.encode b)));
      Test.make ~name:"bits string roundtrip" ~count:200
        (list_of_size (Gen.int_bound 64) bool)
        (fun l ->
          let bits = Array.of_list l in
          Bits.bits_of_string (Bits.string_of_bits bits) = bits);
      Test.make ~name:"popcount via string" ~count:200 (int_bound max_int)
        (fun v ->
          let rec count acc v = if v = 0 then acc else count (acc + (v land 1)) (v lsr 1) in
          Bits.popcount v = count 0 v);
    ]

let () =
  Alcotest.run "util"
    [ ("bits", bits_tests); ("hex", hex_tests); ("properties", prop_tests) ]
