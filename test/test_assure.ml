(* Tests for the ctg_assure statistical-assurance layer: sketch merge
   algebra and its domain-count invariance under the engine pool hook,
   the alpha-spending drift monitor (quiet on clean streams, loud on
   biased ones), the background leak assessor with its positive and
   negative controls, monitor verdicts and endpoint routing, the live
   HTTP scrape, and perf-trajectory records. *)

module Sketch = Ctg_assure.Sketch
module Drift = Ctg_assure.Drift
module Leak = Ctg_assure.Leak
module Monitor = Ctg_assure.Monitor
module Trend = Ctg_assure.Trend
module Soak = Ctg_assure.Soak
module Jsonx = Ctg_obs.Jsonx
module Http = Ctg_obs.Http
module Promtext = Ctg_obs.Promtext
module Registry = Ctg_obs.Registry
module E = Ctg_engine

(* One cheap shared compile: sigma 2 at 16 bits, the same table the
   engine tests use. *)
let matrix_16 =
  lazy (Ctg_kyao.Matrix.create ~sigma:"2" ~precision:16 ~tail_cut:13)

let sampler_16 =
  lazy (Ctgauss.Sampler.create ~sigma:"2" ~precision:16 ~tail_cut:13 ())

let fresh_stream seed = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed seed)

(* --------------------------------------------------------------------- *)
(* Sketch *)

let samples_gen = QCheck.(list_of_size Gen.(0 -- 200) (int_range (-30) 30))

let sketch_of xs =
  let s = Sketch.create ~support:20 in
  List.iter (Sketch.add s) xs;
  s

let test_sketch_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"Sketch.merge commutative"
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = sketch_of xs and b = sketch_of ys in
      Sketch.equal (Sketch.merge a b) (Sketch.merge b a))

let test_sketch_merge_associative =
  QCheck.Test.make ~count:200 ~name:"Sketch.merge associative"
    QCheck.(triple samples_gen samples_gen samples_gen)
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      Sketch.equal
        (Sketch.merge (Sketch.merge a b) c)
        (Sketch.merge a (Sketch.merge b c)))

let test_sketch_merge_equals_concat =
  QCheck.Test.make ~count:200 ~name:"Sketch.merge = sketch of concatenation"
    QCheck.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let m = Sketch.merge (sketch_of xs) (sketch_of ys) in
      Sketch.equal m (sketch_of (xs @ ys))
      && Sketch.total m = List.length xs + List.length ys)

let test_sketch_accounting () =
  let s = Sketch.create ~support:4 in
  Sketch.add_all s [| 0; -3; 3; 4; -25; 25 |];
  Alcotest.(check int) "total" 6 (Sketch.total s);
  Alcotest.(check int) "overflow" 2 (Sketch.overflow s);
  Alcotest.(check int) "signs fold" 2 (Sketch.count s 3);
  let obs = Sketch.observed s in
  Alcotest.(check int) "observed length = support + 2" 6 (Array.length obs);
  Alcotest.(check int) "observed conserves total" (Sketch.total s)
    (Array.fold_left ( + ) 0 obs);
  let emp = Sketch.empirical s in
  Alcotest.(check (float 1e-12)) "empirical excludes overflow"
    (4.0 /. 6.0)
    (Array.fold_left ( +. ) 0.0 emp);
  Alcotest.check_raises "support mismatch"
    (Invalid_argument "Sketch.merge: support mismatch") (fun () ->
      ignore (Sketch.merge s (Sketch.create ~support:7)));
  Sketch.reset s;
  Alcotest.(check int) "reset clears" 0 (Sketch.total s);
  Alcotest.(check bool) "reset equals fresh" true
    (Sketch.equal s (Sketch.create ~support:4))

(* The property the engine hook leans on: per-chunk sketches merged in
   whatever order the worker domains finish equal the single-domain
   sketch of the same deterministic stream. *)
let test_sketch_pool_domain_invariance () =
  let support = (Lazy.force matrix_16).Ctg_kyao.Matrix.support in
  let sketch_from_pool ~domains =
    let pool =
      E.Pool.create ~domains ~chunk_batches:4 ~seed:"assure-merge"
        (Ctgauss.Sampler.clone (Lazy.force sampler_16))
    in
    Fun.protect
      ~finally:(fun () -> E.Pool.shutdown pool)
      (fun () ->
        let m = Mutex.create () in
        let per_chunk = ref [] in
        E.Pool.add_chunk_observer pool (fun ~chunk:_ ~lane:_ samples ->
            let s = Sketch.create ~support in
            Sketch.add_all s samples;
            Mutex.lock m;
            per_chunk := s :: !per_chunk;
            Mutex.unlock m);
        ignore (E.Pool.batch_parallel pool ~n:5_000);
        List.fold_left Sketch.merge (Sketch.create ~support) !per_chunk)
  in
  let s1 = sketch_from_pool ~domains:1 in
  let s3 = sketch_from_pool ~domains:3 in
  Alcotest.(check int) "every sample observed once" 5_000 (Sketch.total s1);
  Alcotest.(check bool) "1-domain and 3-domain sketches identical" true
    (Sketch.equal s1 s3)

(* --------------------------------------------------------------------- *)
(* Drift *)

let test_alpha_spending () =
  let alpha = 0.01 in
  let sum = ref 0.0 in
  for k = 1 to 10_000 do
    sum := !sum +. Drift.alpha_at ~alpha k
  done;
  Alcotest.(check bool) "schedule spends below alpha" true (!sum < alpha);
  Alcotest.(check bool) "close to the full budget" true (!sum > 0.99 *. alpha);
  Alcotest.(check (float 1e-15)) "window 1 gets alpha/2" (alpha /. 2.0)
    (Drift.alpha_at ~alpha 1);
  for k = 1 to 99 do
    Alcotest.(check bool) "strictly decreasing" true
      (Drift.alpha_at ~alpha k > Drift.alpha_at ~alpha (k + 1))
  done

let drift_config window = { Drift.default_config with Drift.window }

let test_drift_quiet_on_clean_stream () =
  let registry = Registry.create () in
  let d =
    Drift.create ~config:(drift_config 2_000) ~registry
      ~labels:[ ("sigma", "2") ]
      ~matrix:(Lazy.force matrix_16) ()
  in
  let s = Ctgauss.Sampler.clone (Lazy.force sampler_16) in
  let bs = fresh_stream "assure-clean-drift" in
  (* 160 batches of 63 = 10_080 samples = 5 full windows. *)
  for _ = 1 to 160 do
    Drift.observe d (Ctgauss.Sampler.batch_signed s bs)
  done;
  Alcotest.(check int) "five windows evaluated" 5 (Drift.windows d);
  Alcotest.(check int) "no false alarm" 0 (Drift.alarms d);
  Alcotest.(check int) "all samples counted" 10_080 (Drift.samples d);
  (match Drift.last d with
  | None -> Alcotest.fail "no window result retained"
  | Some r ->
    Alcotest.(check bool) "p-value above threshold" true
      (r.Drift.p_value >= r.Drift.alpha_k);
    Alcotest.(check bool) "max-log finite" true (Float.is_finite r.Drift.max_log);
    Alcotest.(check bool) "renyi finite" true (Float.is_finite r.Drift.renyi));
  Alcotest.(check int) "results retained oldest-first" 5
    (List.length (Drift.results d));
  (* The gauges landed on the registry under the sigma label. *)
  (match Promtext.parse (Registry.expose_text registry) with
  | Error e -> Alcotest.failf "metrics text unparseable: %s" e
  | Ok items ->
    Alcotest.(check (option (float 1e-9))) "windows counter" (Some 5.0)
      (Promtext.value items ~name:"assure_drift_windows_total"
         ~labels:[ ("sigma", "2") ]);
    Alcotest.(check (option (float 1e-9))) "alarms counter" (Some 0.0)
      (Promtext.value items ~name:"assure_drift_alarms_total"
         ~labels:[ ("sigma", "2") ]));
  (* Cumulative sketch survives window resets. *)
  Alcotest.(check int) "cumulative keeps everything" 10_080
    (Sketch.total (Drift.cumulative d))

let test_drift_alarms_on_biased_stream () =
  let d =
    Drift.create ~config:(drift_config 1_000)
      ~matrix:(Lazy.force matrix_16) ()
  in
  (* A stuck-at-zero sampler: every draw has magnitude 0.  The very first
     window must trip even the k=1 spending threshold. *)
  Drift.observe d (Array.make 1_000 0);
  Alcotest.(check int) "one window" 1 (Drift.windows d);
  Alcotest.(check int) "alarmed immediately" 1 (Drift.alarms d);
  match Drift.last d with
  | None -> Alcotest.fail "no result"
  | Some r ->
    Alcotest.(check bool) "alarm flag" true r.Drift.alarm;
    Alcotest.(check bool) "p-value collapsed" true
      (r.Drift.p_value < r.Drift.alpha_k);
    Alcotest.(check bool) "json serializes" true
      (String.length (Jsonx.to_string (Drift.result_json r)) > 0)

let test_drift_flush_partial_window () =
  let d =
    Drift.create ~config:(drift_config 10_000)
      ~matrix:(Lazy.force matrix_16) ()
  in
  Alcotest.(check bool) "empty flush is None" true (Drift.flush d = None);
  let s = Ctgauss.Sampler.clone (Lazy.force sampler_16) in
  let bs = fresh_stream "assure-flush" in
  for _ = 1 to 10 do
    Drift.observe d (Ctgauss.Sampler.batch_signed s bs)
  done;
  Alcotest.(check int) "window not yet full" 0 (Drift.windows d);
  (match Drift.flush d with
  | None -> Alcotest.fail "flush dropped the partial window"
  | Some r -> Alcotest.(check int) "partial size" 630 r.Drift.n);
  Alcotest.(check int) "flush spent a window" 1 (Drift.windows d)

(* --------------------------------------------------------------------- *)
(* Leak *)

let test_leak_positive_control () =
  (* The Knuth-Yao reference walk consumes input-dependent bit counts —
     the assessor must flag it. *)
  let inst =
    Ctg_samplers.Sampler_sig.knuth_yao_reference (Lazy.force matrix_16)
  in
  let l = Leak.create ~probe:(Leak.ops_probe inst) () in
  Leak.step ~n:4_000 l;
  let r = Leak.report l in
  Alcotest.(check bool) "reference walk is flagged" true
    r.Ctg_ctcheck.Dudect.leaky;
  Alcotest.(check int) "count advances" 4_000 (Leak.count l)

let test_leak_negative_control () =
  (* The bitsliced batch consumes a fixed bit budget regardless of input:
     the probe measure is constant, |t| stays under threshold. *)
  let registry = Registry.create () in
  let l =
    Leak.create ~registry
      ~labels:[ ("sigma", "2") ]
      ~probe:(Soak.batch_bits_probe (Ctgauss.Sampler.clone (Lazy.force sampler_16)))
      ()
  in
  Leak.step ~n:2_000 l;
  let r = Leak.report l in
  Alcotest.(check bool) "CT sampler is clean" false r.Ctg_ctcheck.Dudect.leaky;
  Alcotest.(check bool) "|t| under threshold" true
    (abs_float r.Ctg_ctcheck.Dudect.t_statistic <= 4.5);
  match Promtext.parse (Registry.expose_text registry) with
  | Error e -> Alcotest.failf "metrics text unparseable: %s" e
  | Ok items ->
    Alcotest.(check bool) "assure_leak_t gauge published" true
      (Promtext.value items ~name:"assure_leak_t" ~labels:[ ("sigma", "2") ]
      <> None)

(* --------------------------------------------------------------------- *)
(* Monitor + routes *)

let test_monitor_verdict_and_routes () =
  let registry = Registry.create () in
  let mon =
    Monitor.create ~config:(drift_config 1_000) ~registry
      ~matrix:(Lazy.force matrix_16) ()
  in
  Alcotest.(check bool) "healthy at rest" true (Monitor.healthy mon);
  (match Jsonx.parse (Jsonx.to_string (Monitor.healthz_json mon)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "healthz json: %s" e);
  let routes = Monitor.routes mon ~registry in
  let metrics = Http.handle ~routes "/metrics" in
  Alcotest.(check int) "metrics 200" 200 metrics.Http.status;
  (match Promtext.parse metrics.Http.body with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "/metrics body: %s" e);
  let healthz = Http.handle ~routes "/healthz" in
  Alcotest.(check int) "healthz 200 while healthy" 200 healthz.Http.status;
  Alcotest.(check int) "unknown path 404" 404
    (Http.handle ~routes "/nope").Http.status;
  Alcotest.(check int) "query string stripped" 200
    (Http.handle ~routes "/metrics?x=1").Http.status;
  Alcotest.(check int) "POST rejected" 405
    (Http.handle_request ~routes "POST /metrics HTTP/1.1\r\n\r\n").Http.status;
  Alcotest.(check int) "garbage rejected" 400
    (Http.handle_request ~routes "no-request-line").Http.status;
  (* Trip the drift monitor; the verdict and /healthz must flip. *)
  Drift.observe (Monitor.drift mon) (Array.make 1_000 0);
  Alcotest.(check bool) "failing after alarm" false (Monitor.healthy mon);
  (match Monitor.verdict mon with
  | Monitor.Healthy -> Alcotest.fail "verdict still healthy"
  | Monitor.Failing reasons ->
    Alcotest.(check bool) "reason recorded" true (List.length reasons > 0));
  Alcotest.(check int) "healthz 503 when failing" 503
    (Http.handle ~routes "/healthz").Http.status;
  match Jsonx.parse (Jsonx.to_string (Monitor.drift_json mon)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "drift json: %s" e

let test_http_live_scrape () =
  let registry = Registry.create () in
  Registry.add (Registry.counter registry "assure_scrape_total") 7;
  let routes =
    [ ("/metrics", fun () -> Http.response (Registry.expose_text registry)) ]
  in
  let srv = Http.start ~port:0 ~routes () in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect sock
            (Unix.ADDR_INET (Unix.inet_addr_loopback, Http.port srv));
          let req =
            "GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
          in
          ignore (Unix.write_substring sock req 0 (String.length req));
          let buf = Buffer.create 1024 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            let n = Unix.read sock chunk 0 (Bytes.length chunk) in
            if n > 0 then begin
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
            end
          in
          drain ();
          let raw = Buffer.contents buf in
          Alcotest.(check bool) "status 200" true
            (String.starts_with ~prefix:"HTTP/1.1 200" raw);
          let body =
            (* split at the header/body blank line *)
            let rec find i =
              if i + 4 > String.length raw then
                Alcotest.fail "no header terminator in response"
              else if String.sub raw i 4 = "\r\n\r\n" then
                String.sub raw (i + 4) (String.length raw - i - 4)
              else find (i + 1)
            in
            find 0
          in
          match Promtext.parse body with
          | Error e -> Alcotest.failf "scraped body unparseable: %s" e
          | Ok items ->
            Alcotest.(check (option (float 1e-9))) "counter scraped" (Some 7.0)
              (Promtext.value items ~name:"assure_scrape_total" ~labels:[])))

(* A short end-to-end soak at tiny batch size: engine pool feeding the
   drift monitor through the chunk hook, leak probes interleaved. *)
let test_soak_smoke () =
  let soak =
    Soak.create
      ~drift_config:(drift_config 2_000)
      ~domains:2 ~batch:(63 * 32) ~leak_steps:32 ~sigma:"2" ~precision:16
      ~tail_cut:13 ()
  in
  Fun.protect
    ~finally:(fun () -> Soak.shutdown soak)
    (fun () ->
      for _ = 1 to 2 do
        Soak.tick soak
      done;
      Alcotest.(check int) "two ticks" 2 (Soak.ticks soak);
      Alcotest.(check int) "samples accounted" (2 * 63 * 32) (Soak.samples soak);
      Alcotest.(check int) "drift fed through the pool hook" (2 * 63 * 32)
        (Drift.samples (Monitor.drift (Soak.monitor soak)));
      Alcotest.(check bool) "windows evaluated" true
        (Drift.windows (Monitor.drift (Soak.monitor soak)) >= 1);
      Alcotest.(check bool) "healthy" true (Monitor.healthy (Soak.monitor soak));
      let metrics = Http.handle ~routes:(Soak.routes soak) "/metrics" in
      Alcotest.(check int) "soak /metrics" 200 metrics.Http.status)

(* --------------------------------------------------------------------- *)
(* Trend *)

let fp = { Trend.host = "ci-1"; ocaml_version = "5.2.0"; word_size = 64; domains = 8 }

let base_record =
  {
    Trend.time = "2026-08-06T00:00:00Z";
    fp;
    metrics =
      [
        ("BENCH_x.json.entries[sigma=2].plain_ns", 100.0);
        ("BENCH_x.json.entries[sigma=2].accuracy", 0.5);
      ];
  }

let current_record =
  {
    base_record with
    Trend.time = "2026-08-06T01:00:00Z";
    metrics =
      [
        ("BENCH_x.json.entries[sigma=2].plain_ns", 140.0);
        ("BENCH_x.json.entries[sigma=2].accuracy", 0.9);
      ];
  }

let test_trend_json_roundtrip () =
  match Trend.of_json (Trend.to_json base_record) with
  | Some r -> Alcotest.(check bool) "roundtrip" true (r = base_record)
  | None -> Alcotest.fail "of_json rejected to_json output"

let test_trend_baseline_matching () =
  let other_host = { base_record with Trend.fp = { fp with Trend.host = "laptop" } } in
  Alcotest.(check bool) "same fingerprint wins" true
    (Trend.baseline_for fp [ other_host; base_record ] = Some base_record);
  Alcotest.(check bool) "most recent wins" true
    (Trend.baseline_for fp [ base_record; current_record ] = Some current_record);
  Alcotest.(check bool) "no match -> None" true
    (Trend.baseline_for { fp with Trend.domains = 4 } [ base_record ] = None)

let test_trend_regression_gate () =
  let ds = Trend.deltas ~baseline:base_record current_record in
  Alcotest.(check int) "both metrics compared" 2 (List.length ds);
  Alcotest.(check bool) "latency key classifier" true
    (Trend.is_latency_key "a.plain_ns"
    && Trend.is_latency_key "b.metered_ns_per_sample"
    && not (Trend.is_latency_key "a.accuracy"));
  (* plain_ns grew 40%: gates at 25% tolerance; accuracy grew 80% but is
     not a latency key and must not gate. *)
  (match Trend.regressions ~tolerance_pct:25.0 ~baseline:base_record current_record with
  | [ d ] ->
    Alcotest.(check string) "the ns key gates"
      "BENCH_x.json.entries[sigma=2].plain_ns" d.Trend.key;
    Alcotest.(check (float 1e-9)) "pct" 40.0 d.Trend.pct
  | l -> Alcotest.failf "expected one regression, got %d" (List.length l));
  Alcotest.(check int) "looser tolerance passes" 0
    (List.length
       (Trend.regressions ~tolerance_pct:50.0 ~baseline:base_record
          current_record))

let test_trend_append_load () =
  let path = Filename.temp_file "assure_history" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      Alcotest.(check int) "absent file loads empty" 0
        (List.length (Trend.load ~path));
      Trend.append ~path base_record;
      Trend.append ~path current_record;
      let records = Trend.load ~path in
      Alcotest.(check bool) "file order, oldest first" true
        (records = [ base_record; current_record ]);
      Alcotest.(check bool) "baseline over the file" true
        (Trend.baseline_for fp records = Some current_record);
      (* A malformed line is skipped, not fatal. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "not json\n";
      close_out oc;
      Trend.append ~path base_record;
      Alcotest.(check int) "malformed lines skipped" 3
        (List.length (Trend.load ~path)))

let test_trend_collect_live () =
  (* Collect over the repo baselines: must produce a sane fingerprint and
     only finite metric values. *)
  let r = Trend.collect ~dir:"." () in
  let live = Trend.fingerprint () in
  Alcotest.(check bool) "fingerprint is current" true (r.Trend.fp = live);
  Alcotest.(check bool) "word size sane" true
    (live.Trend.word_size = 64 || live.Trend.word_size = 32);
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) (k ^ " finite") true (Float.is_finite v))
    r.Trend.metrics

(* --------------------------------------------------------------------- *)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "assure"
    [
      ( "sketch",
        qcheck
          [
            test_sketch_merge_commutative;
            test_sketch_merge_associative;
            test_sketch_merge_equals_concat;
          ]
        @ [
            Alcotest.test_case "accounting and edges" `Quick
              test_sketch_accounting;
            Alcotest.test_case "pool-fed merge is domain-invariant" `Quick
              test_sketch_pool_domain_invariance;
          ] );
      ( "drift",
        [
          Alcotest.test_case "alpha-spending schedule" `Quick
            test_alpha_spending;
          Alcotest.test_case "quiet on a clean stream" `Quick
            test_drift_quiet_on_clean_stream;
          Alcotest.test_case "alarms on a biased stream" `Quick
            test_drift_alarms_on_biased_stream;
          Alcotest.test_case "flush evaluates the partial window" `Quick
            test_drift_flush_partial_window;
        ] );
      ( "leak",
        [
          Alcotest.test_case "positive control: reference walk" `Quick
            test_leak_positive_control;
          Alcotest.test_case "negative control: bitsliced batch" `Quick
            test_leak_negative_control;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "verdict and endpoint routes" `Quick
            test_monitor_verdict_and_routes;
          Alcotest.test_case "live HTTP scrape" `Quick test_http_live_scrape;
          Alcotest.test_case "soak smoke" `Quick test_soak_smoke;
        ] );
      ( "trend",
        [
          Alcotest.test_case "record JSON roundtrip" `Quick
            test_trend_json_roundtrip;
          Alcotest.test_case "baseline fingerprint matching" `Quick
            test_trend_baseline_matching;
          Alcotest.test_case "regression gate" `Quick
            test_trend_regression_gate;
          Alcotest.test_case "append and load history" `Quick
            test_trend_append_load;
          Alcotest.test_case "collect over repo baselines" `Quick
            test_trend_collect_live;
        ] );
    ]
