(** Exact minimum cover selection: essential primes first, then Petrick's
    method (product-of-sums expansion with absorption) on the cyclic core.
    This plays the role of Espresso's [-Dso -S1] exact mode in the paper's
    flow.  Falls back to {!Greedy_cover} when the core is too large. *)

val cover : ones:int list -> primes:Cube.t list -> Cube.t list
(** Minimum-cardinality cover of [ones] (ties broken by literal count).
    Assumes every minterm of [ones] is covered by some prime. *)

val max_products : int ref
(** Expansion budget before falling back to the greedy cover (default
    4_000 partial products, checked before the quadratic absorption pass). *)
