(** Span tracing with per-domain lock-free ring buffers and Chrome
    [trace_event] JSON export.

    A process holds one global recorder, off by default: when disabled,
    {!with_span} costs one atomic load and a closure call, which is why the
    hot paths can stay instrumented unconditionally.  When enabled, each
    domain records into its own fixed-capacity ring (registered once, on
    the domain's first event, under a mutex; every subsequent record is a
    plain single-writer store plus one atomic publish).  Rings overwrite
    their oldest events when full and count the drops — tracing never
    blocks or allocates unboundedly in a worker.

    Exported files load in [chrome://tracing] / Perfetto: spans become
    complete ("ph":"X") events with microsecond [ts]/[dur], the recording
    domain as [tid]; instants become "ph":"i". *)

type event = {
  name : string;
  cat : string;
  ts_ns : int;
  dur_ns : int;  (** [-1] for an instant event. *)
  tid : int;  (** Recording domain id. *)
  args : (string * string) list;
}

(** The single-writer ring protocol, exposed so the ctg_race model
    checker can drive it directly (harness [trace_ring]).

    Two counters close the historical torn-read window on wrap:
    [reserved] is bumped past index [i] {e before} slot [i mod cap] is
    rewritten, [head] after.  A reader gathers \[[head - cap], [head])
    and then loads [reserved]: any gathered index below
    [reserved - cap] may have been overwritten mid-read and is
    discarded as a drop — never misattributed. *)
module Ring : sig
  type 'a t

  val create : int -> 'a t
  (** [create capacity]; capacity must be >= 1. *)

  val capacity : 'a t -> int

  val head : 'a t -> int
  (** Events ever pushed. *)

  val push : 'a t -> 'a -> unit
  (** Owner domain only. *)

  val read : 'a t -> (int * 'a) list * int
  (** Any domain: (oldest-first [(index, value)] list whose attribution
      is certain, dropped-event count). *)

  val reset : 'a t -> unit
end

val enable : ?capacity:int -> unit -> unit
(** Start recording.  [capacity] (default 16384) sizes rings created from
    now on; existing rings keep their size. *)

val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events and drop counts; rings stay registered. *)

val with_span : ?cat:string -> ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** Time [f] and record one complete event (also on exception).  [args] is
    evaluated only when tracing is enabled, after [f] returns — so it can
    report results. *)

val instant : ?cat:string -> ?args:(unit -> (string * string) list) -> string -> unit

val events : unit -> event list
(** Everything currently buffered, sorted by [(ts_ns, tid, name)]. *)

val dropped : unit -> int
(** Events lost to ring overwrite since the last {!reset}. *)

val export : unit -> Jsonx.t
(** The Chrome trace object:
    [{"traceEvents": [...], "displayTimeUnit": "ms", "ctg_dropped_events": n}]. *)

val write : string -> unit
(** [write path] saves {!export} (compact JSON) to [path]. *)
