test/test_bigint.ml: Alcotest Ctg_bigint Ctg_prng Int64 List QCheck QCheck_alcotest Test
