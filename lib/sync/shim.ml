(* One-line migration surface: `open Ctg_sync.Shim` at the top of a
   module shadows Atomic/Mutex/Condition/Domain with the checked
   wrappers.  Kept separate from Sync so call sites don't accidentally
   shadow Internal. *)

module Atomic = Sync.Atomic
module Mutex = Sync.Mutex
module Condition = Sync.Condition
module Domain = Sync.Domain
