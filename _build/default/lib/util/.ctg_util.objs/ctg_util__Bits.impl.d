lib/util/bits.ml: Array Bytes Char Int64 Printf String
