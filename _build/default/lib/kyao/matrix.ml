module Gt = Ctg_fixed.Gaussian_table

type t = {
  sigma : string;
  precision : int;
  support : int;
  bits : bool array array;
  col_weight : int array;
}

let of_table (gt : Gt.t) =
  let precision = gt.Gt.precision and support = gt.Gt.support in
  let bits =
    Array.init (support + 1) (fun row ->
        Array.init precision (fun col -> Gt.row_bit gt ~row ~col = 1))
  in
  let col_weight =
    Array.init precision (fun col ->
        let acc = ref 0 in
        for row = 0 to support do
          if bits.(row).(col) then incr acc
        done;
        !acc)
  in
  { sigma = gt.Gt.sigma; precision; support; bits; col_weight }

let create ~sigma ~precision ~tail_cut =
  of_table (Gt.create ~sigma ~precision ~tail_cut)

let row_for t ~col ~rank =
  assert (rank >= 0 && rank < t.col_weight.(col));
  let rec go row remaining =
    if t.bits.(row).(col) then
      if remaining = 0 then row else go (row - 1) (remaining - 1)
    else go (row - 1) remaining
  in
  go t.support rank

let leaves_total t = Array.fold_left ( + ) 0 t.col_weight
