lib/core/pipeline.ml: Array Compile Compile_simple Ctg_kyao Format Gate List Printf Sublist
