type t = Cube.t list

let eval sop m = List.exists (fun c -> Cube.covers c m) sop

let minimize ?(exact_vars_limit = 12) tt =
  let module Trace = Ctg_obs.Trace in
  let vars_arg () = [ ("vars", string_of_int (Truth_table.vars tt)) ] in
  let ones = Truth_table.ones tt in
  if ones = [] then []
  else begin
    let primes =
      Trace.with_span "qm_primes" ~cat:"boolmin" ~args:vars_arg (fun () ->
          Quine_mccluskey.primes tt)
    in
    let sop =
      if Truth_table.vars tt <= exact_vars_limit then
        Trace.with_span "petrick_cover" ~cat:"boolmin" ~args:vars_arg (fun () ->
            Petrick.cover ~ones ~primes)
      else
        Trace.with_span "greedy_cover" ~cat:"boolmin" ~args:vars_arg (fun () ->
            Greedy_cover.cover ~ones ~primes)
    in
    assert (Truth_table.implements tt (fun m -> eval sop m));
    sop
  end

let num_terms = List.length

let num_literals sop =
  List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 sop

let gate_cost sop =
  let term_gates =
    List.fold_left
      (fun acc c ->
        let l = Cube.num_literals c in
        let nots = Ctg_util.Bits.popcount (c.Cube.mask land lnot c.Cube.value) in
        acc + max 0 (l - 1) + nots)
      0 sop
  in
  term_gates + max 0 (List.length sop - 1)

let to_string ~vars sop =
  match sop with
  | [] -> "0"
  | _ -> String.concat " | " (List.map (Cube.to_string ~vars) sop)
