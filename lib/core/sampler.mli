(** Public API: constant-time discrete Gaussian samplers compiled to
    bitsliced Boolean programs.

    {[
      let s = Sampler.create ~sigma:"2" ~precision:128 ~tail_cut:13 () in
      let rng = Ctg_prng.(Bitstream.of_chacha (Chacha20.of_seed "demo")) in
      let z = Sampler.sample s rng        (* one signed sample *)
      let zs = Sampler.batch_signed s rng (* 63 samples per program run *)
    ]} *)

type method_ =
  | Split_minimized  (** This paper: sublist split + exact minimization. *)
  | Simple  (** The prior-work baseline of Table 2. *)

type t

val create :
  ?method_:method_ ->
  ?options:Compile.options ->
  sigma:string ->
  precision:int ->
  tail_cut:int ->
  unit ->
  t
(** Runs the full pipeline of the paper's Fig. 4: probability matrix →
    list L → sublists → minimized Boolean functions → combined constant-
    time program.  [Split_minimized] with default options is the paper's
    construction. *)

val of_enum : ?method_:method_ -> ?options:Compile.options -> Ctg_kyao.Leaf_enum.t -> t
(** Reuse an existing leaf enumeration (saves the table rebuild when
    comparing compilers on the same σ). *)

val clone : t -> t
(** A cheap copy sharing the compiled program, matrix and enumeration but
    with private scratch registers and sample buffers.  The mutable state
    of [t] is per-instance, so each domain of a parallel engine clones the
    registry's master sampler instead of re-running the compile pipeline;
    clones of the same master produce identical output on identical bit
    streams. *)

val batch_magnitude : t -> Ctg_prng.Bitstream.t -> int array
(** 63 magnitudes from one bitsliced program evaluation.  Lanes whose walk
    did not terminate within the precision (probability < 2^-117 at Falcon
    parameters) are resampled with the reference walk. *)

val batch_signed : t -> Ctg_prng.Bitstream.t -> int array
(** Magnitudes combined with one word of sign bits. *)

val sample : t -> Ctg_prng.Bitstream.t -> int
(** Single signed sample from an internal buffer refilled per batch. *)

val sample_magnitude : t -> Ctg_prng.Bitstream.t -> int

val program : t -> Gate.t
val gate_count : t -> int
val sample_bits : t -> int
val matrix : t -> Ctg_kyao.Matrix.t
val enum : t -> Ctg_kyao.Leaf_enum.t
val sigma : t -> string

val resamples : t -> int
(** Lanes this instance has rescued with the scalar fallback walk — the
    sampler's one declared non-constant-time escape.  Monitors read the
    delta per batch to tell declared fallbacks apart from genuine
    constant-time violations.  Per-instance (clones start at 0). *)

val digest : t -> int64
(** {!Gate.digest} of the program, recorded at creation.  Clones share
    the program and therefore the digest. *)

val integrity_ok : t -> bool
(** Recompute the program digest and compare with the one recorded at
    creation: [false] means the gate table was corrupted in memory after
    compilation.  O(gates); {!Ctg_engine.Selftest} runs it before the
    known-answer vectors. *)

val eval_bits : t -> bool array -> int * bool
(** Run the compiled program on an explicit bit string (equivalence
    testing against {!Ctg_kyao.Column_sampler.walk_bits}). *)
