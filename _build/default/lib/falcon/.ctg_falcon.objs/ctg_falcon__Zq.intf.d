lib/falcon/zq.mli:
