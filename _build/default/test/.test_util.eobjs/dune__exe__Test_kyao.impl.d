test/test_kyao.ml: Alcotest Array Ctg_bigint Ctg_fixed Ctg_kyao Ctg_prng Ctg_stats Int64 List Printf QCheck QCheck_alcotest Test
