type t = { min_value : int; counts : int array; total : int }

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Histogram.of_samples: empty";
  let lo = Array.fold_left min max_int samples in
  let hi = Array.fold_left max min_int samples in
  let counts = Array.make (hi - lo + 1) 0 in
  Array.iter (fun s -> counts.(s - lo) <- counts.(s - lo) + 1) samples;
  { min_value = lo; counts; total = Array.length samples }

let count t v =
  let i = v - t.min_value in
  if i < 0 || i >= Array.length t.counts then 0 else t.counts.(i)

let frequency t v = float_of_int (count t v) /. float_of_int t.total
let range t = (t.min_value, t.min_value + Array.length t.counts - 1)

let mean t =
  let acc = ref 0.0 in
  Array.iteri
    (fun i c ->
      acc := !acc +. (float_of_int (t.min_value + i) *. float_of_int c))
    t.counts;
  !acc /. float_of_int t.total

let std_dev t =
  let mu = mean t in
  let acc = ref 0.0 in
  Array.iteri
    (fun i c ->
      let d = float_of_int (t.min_value + i) -. mu in
      acc := !acc +. (d *. d *. float_of_int c))
    t.counts;
  sqrt (!acc /. float_of_int t.total)

let pp_bars ?(width = 60) fmt t =
  let peak = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      let bar = c * width / peak in
      Format.fprintf fmt "%5d | %-*s %d@." (t.min_value + i) width
        (String.make bar '#') c)
    t.counts
