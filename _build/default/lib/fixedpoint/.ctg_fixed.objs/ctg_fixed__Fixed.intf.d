lib/fixedpoint/fixed.mli: Ctg_bigint Format
