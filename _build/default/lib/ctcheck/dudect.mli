(** dudect-style leakage assessment (Reparaz, Balasch, Verbauwhede, DATE
    2017) — "dude, is my code constant time?", the tool the paper uses in
    Sec. 5.2 to validate its sampler.

    Two input classes (fix vs. random) are interleaved randomly and a
    Welch t-test compares their measurement distributions.  Because OCaml's
    GC makes wall-clock noisy, measurements can be either [`Time] (cycles
    via [Unix.gettimeofday], with the usual percentile cropping) or
    [`Ops] (the deterministic work counters every sampler exposes), the
    latter giving an exact witness; see DESIGN.md. *)

type clazz = Fix | Random

type config = {
  measurements : int;  (** per class, default 50_000 *)
  threshold : float;  (** |t| above this flags a leak; dudect uses 4.5 *)
  crop_percentile : float;
      (** Discard measurements above this sample percentile before the
          test (time mode only, tames GC/interrupt outliers); 0.95. *)
}

val default_config : config

type report = {
  t_statistic : float;
  leaky : bool;
  samples_per_class : int;
  mean_fix : float;
  mean_random : float;
}

val test_ops : ?config:config -> (clazz -> int) -> report
(** [test_ops f]: [f clazz] performs one operation of the given input class
    and returns its deterministic work count. *)

val test_time : ?config:config -> (clazz -> unit) -> report
(** Wall-clock variant; measures [f clazz] in nanoseconds. *)

val pp_report : Format.formatter -> report -> unit
