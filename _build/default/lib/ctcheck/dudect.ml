type clazz = Fix | Random

type config = {
  measurements : int;
  threshold : float;
  crop_percentile : float;
}

let default_config =
  { measurements = 50_000; threshold = 4.5; crop_percentile = 0.95 }

type report = {
  t_statistic : float;
  leaky : bool;
  samples_per_class : int;
  mean_fix : float;
  mean_random : float;
}

let run_classes ~config ~measure =
  let rng = Ctg_prng.Splitmix64.create 0x0DDC0FFEEL in
  let fix = ref [] and rnd = ref [] in
  for _ = 1 to 2 * config.measurements do
    let clazz = if Ctg_prng.Splitmix64.next_int rng 2 = 0 then Fix else Random in
    let v = measure clazz in
    match clazz with
    | Fix -> fix := v :: !fix
    | Random -> rnd := v :: !rnd
  done;
  (Array.of_list !fix, Array.of_list !rnd)

let percentile arr p =
  let sorted = Array.copy arr in
  Array.sort Stdlib.compare sorted;
  let idx =
    min (Array.length sorted - 1)
      (int_of_float (p *. float_of_int (Array.length sorted)))
  in
  sorted.(idx)

let report_of ~config ~crop fix rnd =
  let fix, rnd =
    if crop then begin
      let all = Array.append fix rnd in
      let cut = percentile all config.crop_percentile in
      let keep a = Array.of_list (List.filter (fun x -> x <= cut) (Array.to_list a)) in
      (keep fix, keep rnd)
    end
    else (fix, rnd)
  in
  let mf = Ctg_stats.Moments.of_array fix in
  let mr = Ctg_stats.Moments.of_array rnd in
  let t = Ctg_stats.Welch.t_statistic mf mr in
  {
    t_statistic = t;
    leaky = abs_float t > config.threshold;
    samples_per_class = min (Array.length fix) (Array.length rnd);
    mean_fix = Ctg_stats.Moments.mean mf;
    mean_random = Ctg_stats.Moments.mean mr;
  }

let test_ops ?(config = default_config) f =
  let fix, rnd = run_classes ~config ~measure:(fun c -> float_of_int (f c)) in
  report_of ~config ~crop:false fix rnd

let test_time ?(config = default_config) f =
  let measure c =
    let t0 = Unix.gettimeofday () in
    f c;
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let fix, rnd = run_classes ~config ~measure in
  report_of ~config ~crop:true fix rnd

let pp_report fmt r =
  Format.fprintf fmt "t=%+.2f %s (n=%d/class, mean fix=%.2f random=%.2f)"
    r.t_statistic
    (if r.leaky then "LEAKY" else "no leakage detected")
    r.samples_per_class r.mean_fix r.mean_random
