lib/boolmin/truth_table.mli: Cube
