type stage_report = { stage : string; detail : string }

type t = {
  matrix : Ctg_kyao.Matrix.t;
  enum : Ctg_kyao.Leaf_enum.t;
  sublists : Sublist.t;
  program : Gate.t;
  simple_program : Gate.t;
  reports : stage_report list;
}

let run ?options ~sigma ~precision ~tail_cut () =
  let matrix = Ctg_kyao.Matrix.create ~sigma ~precision ~tail_cut in
  let enum = Ctg_kyao.Leaf_enum.enumerate matrix in
  let sublists = Sublist.build enum in
  let program = Compile.compile ?options sublists in
  let simple_program = Compile_simple.compile enum in
  let non_empty =
    Array.fold_left
      (fun acc (e : Sublist.entry) -> if e.Sublist.leaves = [] then acc else acc + 1)
      0 sublists.Sublist.entries
  in
  let reports =
    [
      {
        stage = "probability matrix";
        detail =
          Printf.sprintf "sigma=%s n=%d rows=%d" sigma precision
            (matrix.Ctg_kyao.Matrix.support + 1);
      };
      {
        stage = "list L (leaf enumeration)";
        detail =
          Printf.sprintf "%d strings, Theorem 1 holds=%b, unresolved=%d"
            (Array.length enum.Ctg_kyao.Leaf_enum.leaves)
            (Ctg_kyao.Leaf_enum.check_theorem1 enum)
            enum.Ctg_kyao.Leaf_enum.unresolved;
      };
      {
        stage = "sort + split into sublists l_k";
        detail =
          Printf.sprintf "delta=%d, n'=%d, %d non-empty sublists"
            enum.Ctg_kyao.Leaf_enum.delta enum.Ctg_kyao.Leaf_enum.max_ones
            non_empty;
      };
      {
        stage = "minimize per-sublist functions f^{i,k}_delta";
        detail =
          (let reports = Compile.sop_report ?options sublists in
           let terms = Array.fold_left (fun a (_, t, _) -> a + t) 0 reports in
           let lits = Array.fold_left (fun a (_, _, l) -> a + l) 0 reports in
           Printf.sprintf "%d terms, %d literals after exact minimization"
             terms lits);
      };
      {
        stage = "combine with constant-time selector chain (Eqn. 2)";
        detail =
          Printf.sprintf "%d gates, depth %d (simple baseline: %d gates)"
            (Gate.gate_count program) (Gate.depth program)
            (Gate.gate_count simple_program);
      };
    ]
  in
  { matrix; enum; sublists; program; simple_program; reports }

let pp fmt t =
  List.iteri
    (fun i r ->
      if i > 0 then Format.fprintf fmt "        |@.        v@.";
      Format.fprintf fmt "[%d] %s@.    %s@." (i + 1) r.stage r.detail)
    t.reports
