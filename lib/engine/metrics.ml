module Registry = Ctg_obs.Registry
module Histo = Ctg_obs.Histo

type t = {
  registry : Registry.t;
  samples : Registry.counter;
  batches : Registry.counter;
  bits_consumed : Registry.counter;
  prng_work : Registry.counter;
  gate_evals : Registry.counter;
  fallback : Registry.counter;
  per_domain : Registry.counter array;
  chunk_service : Registry.histo;
  queue_wait : Registry.histo;
  chunk_retries : Registry.counter;
  worker_respawns : Registry.counter;
  health_failures : Registry.counter;
  degraded : Registry.gauge;
}

type snapshot = {
  samples : int;
  batches : int;
  bits_consumed : int;
  prng_work : int;
  gate_evals : int;
  per_domain_samples : int array;
  fallback_resamples : int;
  chunk_service : Histo.summary;
  queue_wait : Histo.summary;
  chunk_retries : int;
  worker_respawns : int;
  health_failures : int;
  degraded : bool;
}

let create ~domains ?(labels = []) () =
  if domains < 1 then invalid_arg "Metrics.create: domains must be >= 1";
  let registry = Registry.create () in
  {
    registry;
    samples = Registry.counter registry ~labels "engine_samples_total";
    batches = Registry.counter registry ~labels "engine_batches_total";
    bits_consumed = Registry.counter registry ~labels "engine_bits_consumed_total";
    prng_work = Registry.counter registry ~labels "engine_prng_work_total";
    gate_evals = Registry.counter registry ~labels "engine_gate_evals_total";
    fallback = Registry.counter registry ~labels "engine_fallback_resamples_total";
    per_domain =
      Array.init domains (fun i ->
          Registry.counter registry
            ~labels:(("domain", string_of_int i) :: labels)
            "engine_domain_samples_total");
    chunk_service = Registry.histo registry ~labels "engine_chunk_service_ns";
    queue_wait = Registry.histo registry ~labels "engine_queue_wait_ns";
    chunk_retries = Registry.counter registry ~labels "engine_chunk_retries_total";
    worker_respawns =
      Registry.counter registry ~labels "engine_worker_respawns_total";
    health_failures =
      Registry.counter registry ~labels "engine_entropy_health_failures_total";
    degraded = Registry.gauge registry ~labels "engine_degraded";
  }

let registry t = t.registry

let record (t : t) ~domain ~samples ~batches ~bits ~work ~gates =
  Registry.add t.samples samples;
  Registry.add t.batches batches;
  Registry.add t.bits_consumed bits;
  Registry.add t.prng_work work;
  Registry.add t.gate_evals gates;
  Registry.add t.per_domain.(domain) samples

let add_fallback (t : t) n = if n > 0 then Registry.add t.fallback n
let observe_chunk_service (t : t) ns = Registry.observe t.chunk_service ns
let observe_queue_wait (t : t) ns = Registry.observe t.queue_wait ns
let add_chunk_retry (t : t) = Registry.incr t.chunk_retries
let add_worker_respawn (t : t) = Registry.incr t.worker_respawns
let add_health_failure (t : t) = Registry.incr t.health_failures
let set_degraded (t : t) on = Registry.set_gauge t.degraded (if on then 1.0 else 0.0)

let snapshot (t : t) =
  Registry.read_consistent t.registry (fun () ->
      {
        samples = Registry.value t.samples;
        batches = Registry.value t.batches;
        bits_consumed = Registry.value t.bits_consumed;
        prng_work = Registry.value t.prng_work;
        gate_evals = Registry.value t.gate_evals;
        per_domain_samples = Array.map Registry.value t.per_domain;
        fallback_resamples = Registry.value t.fallback;
        chunk_service = Registry.histo_summary t.chunk_service;
        queue_wait = Registry.histo_summary t.queue_wait;
        chunk_retries = Registry.value t.chunk_retries;
        worker_respawns = Registry.value t.worker_respawns;
        health_failures = Registry.value t.health_failures;
        degraded = Registry.gauge_value t.degraded > 0.5;
      })

let reset (t : t) = Registry.reset t.registry

let pp fmt (s : snapshot) =
  Format.fprintf fmt "samples        %d@." s.samples;
  Format.fprintf fmt "batches        %d@." s.batches;
  Format.fprintf fmt "bits consumed  %d" s.bits_consumed;
  if s.samples > 0 then
    Format.fprintf fmt "  (%.1f bits/sample)"
      (float_of_int s.bits_consumed /. float_of_int s.samples);
  Format.fprintf fmt "@.";
  Format.fprintf fmt "prng work      %d@." s.prng_work;
  Format.fprintf fmt "gate evals     %d" s.gate_evals;
  if s.samples > 0 then
    Format.fprintf fmt "  (%.0f gates/sample)"
      (float_of_int s.gate_evals /. float_of_int s.samples);
  Format.fprintf fmt "@.";
  if s.fallback_resamples > 0 then
    Format.fprintf fmt "fallbacks      %d@." s.fallback_resamples;
  if s.chunk_retries > 0 then
    Format.fprintf fmt "chunk retries  %d@." s.chunk_retries;
  if s.worker_respawns > 0 then
    Format.fprintf fmt "respawns       %d@." s.worker_respawns;
  if s.health_failures > 0 then
    Format.fprintf fmt "health fails   %d@." s.health_failures;
  if s.degraded then Format.fprintf fmt "DEGRADED       (CT-CDT fallback)@.";
  if s.chunk_service.Histo.count > 0 then
    Format.fprintf fmt "chunk service  %a@." Histo.pp_summary s.chunk_service;
  if s.queue_wait.Histo.count > 0 then
    Format.fprintf fmt "queue wait     %a@." Histo.pp_summary s.queue_wait;
  Format.fprintf fmt "per-domain     ";
  Array.iteri
    (fun i n -> Format.fprintf fmt "%s%d:%d" (if i = 0 then "" else " ") i n)
    s.per_domain_samples;
  Format.fprintf fmt "@."
