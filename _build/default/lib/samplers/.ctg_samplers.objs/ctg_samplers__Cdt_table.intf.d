lib/samplers/cdt_table.mli: Ctg_kyao Ctg_prng
