(* falcon_cli: keygen / sign / verify from the command line, with the base
   Gaussian sampler selectable — the paper's experiment as a tool.

     falcon_cli keygen -n 256 --out demo.key
     falcon_cli sign --key demo.key --message msg.txt --out msg.sig
     falcon_cli verify --key demo.key --message msg.txt --signature msg.sig
*)

open Cmdliner
module F = Ctg_falcon

(* Binary key files via the library codec (FKR1 format). *)
let write_key file (kp : F.Keygen.keypair) =
  Out_channel.with_open_bin file (fun oc ->
      output_bytes oc (F.Codec.encode_keypair kp))

let params_of_n n =
  match n with
  | 256 -> F.Params.level1
  | 512 -> F.Params.level2
  | 1024 -> F.Params.level3
  | _ -> F.Params.custom ~n

let read_key file =
  let data = In_channel.with_open_bin file In_channel.input_all in
  match F.Codec.decode_keypair (Bytes.of_string data) with
  | Some kp -> kp
  | None -> failwith (Printf.sprintf "%s: not a valid FKR1 key file" file)

let make_base sampler =
  match sampler with
  | "bitsliced" ->
    let s = Ctgauss.Sampler.create ~sigma:"2" ~precision:128 ~tail_cut:13 () in
    F.Base_sampler.of_instance (Ctg_samplers.Sampler_sig.of_bitsliced s)
  | "byte-scan" | "cdt" | "linear-ct" ->
    let m = Ctg_kyao.Matrix.create ~sigma:"2" ~precision:128 ~tail_cut:13 in
    let table = Ctg_samplers.Cdt_table.of_matrix m in
    let inst =
      match sampler with
      | "byte-scan" -> Ctg_samplers.Cdt_samplers.byte_scan table
      | "cdt" -> Ctg_samplers.Cdt_samplers.binary_search table
      | _ -> Ctg_samplers.Cdt_samplers.linear_ct table
    in
    F.Base_sampler.of_instance inst
  | "ideal" -> F.Base_sampler.ideal ()
  | other -> failwith (Printf.sprintf "unknown sampler %S" other)

let rng_of_seed = function
  | Some seed -> Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed seed)
  | None ->
    let now = Printf.sprintf "%f.%d" (Unix.gettimeofday ()) (Unix.getpid ()) in
    Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed now)

(* ------------------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 256 & info [ "n" ] ~docv:"N" ~doc:"Ring degree (256/512/1024).")

let seed_arg =
  Arg.(value & opt (some string) None & info [ "seed" ] ~docv:"SEED"
         ~doc:"Deterministic seed (time-based when omitted).")

let key_arg =
  Arg.(required & opt (some string) None & info [ "key"; "k" ] ~docv:"FILE"
         ~doc:"Key file produced by keygen.")

let message_arg =
  Arg.(required & opt (some string) None & info [ "message"; "m" ] ~docv:"FILE"
         ~doc:"Message file.")

let sampler_arg =
  Arg.(value & opt string "bitsliced" & info [ "sampler" ] ~docv:"S"
         ~doc:"Base sampler: bitsliced, byte-scan, cdt, linear-ct or ideal.")

let keygen n out seed =
  let params = params_of_n n in
  let rng = rng_of_seed seed in
  let t0 = Unix.gettimeofday () in
  let kp = F.Keygen.generate params rng in
  Printf.printf "generated %s in %.2fs (%d draws); NTRU eq: %b\n"
    (F.Params.name params)
    (Unix.gettimeofday () -. t0)
    kp.F.Keygen.attempts
    (F.Keygen.check_ntru_equation kp);
  write_key out kp;
  Printf.printf "wrote %s (public key: %d bytes packed)\n" out
    (F.Codec.public_key_bytes kp.F.Keygen.h)

let keygen_cmd =
  let out =
    Arg.(value & opt string "falcon.key" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output key file.")
  in
  Cmd.v
    (Cmd.info "keygen" ~doc:"Generate a Falcon key pair (exact NTRUSolve).")
    Term.(const keygen $ n_arg $ out $ seed_arg)

let sign key message out sampler seed trace =
  (match trace with None -> () | Some _ -> Ctg_obs.Trace.enable ());
  let kp = read_key key in
  let msg = In_channel.with_open_bin message In_channel.input_all in
  let base = make_base sampler in
  let rng = rng_of_seed seed in
  let t0 = Unix.gettimeofday () in
  let s = F.Sign.sign kp base rng ~msg:(Bytes.of_string msg) in
  let blob = F.Codec.encode_signature ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2 in
  Out_channel.with_open_bin out (fun oc -> output_bytes oc blob);
  Printf.printf
    "signed with %s in %.1f ms: |s|=%.0f, %d attempt(s), %d bytes -> %s\n"
    (F.Base_sampler.name base)
    ((Unix.gettimeofday () -. t0) *. 1e3)
    (sqrt s.F.Sign.norm_sq) s.F.Sign.attempts (Bytes.length blob) out;
  match trace with
  | None -> ()
  | Some path ->
    Ctg_obs.Trace.disable ();
    Ctg_obs.Trace.write path;
    Printf.printf "wrote trace to %s\n" path

let sign_cmd =
  let out =
    Arg.(value & opt string "message.sig" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output signature file.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record the sign stages (hash-to-point, ffSampling, NTT, \
                 encode) as a Chrome trace_event JSON file.")
  in
  Cmd.v
    (Cmd.info "sign" ~doc:"Sign a message file.")
    Term.(const sign $ key_arg $ message_arg $ out $ sampler_arg $ seed_arg $ trace)

let verify key message signature =
  let kp = read_key key in
  let msg = In_channel.with_open_bin message In_channel.input_all in
  let blob = In_channel.with_open_bin signature In_channel.input_all in
  let bound = F.Sign.norm_bound_sq kp.F.Keygen.params in
  match F.Codec.decode_signature ~params:kp.F.Keygen.params (Bytes.of_string blob) with
  | None ->
    Printf.printf "malformed signature\n";
    exit 1
  | Some (salt, s2) ->
    let ok =
      F.Verify.verify ~params:kp.F.Keygen.params ~h:kp.F.Keygen.h ~bound_sq:bound
        ~msg:(Bytes.of_string msg) ~salt ~s2
    in
    Printf.printf "%s\n" (if ok then "VALID" else "INVALID");
    exit (if ok then 0 else 1)

let verify_cmd =
  let signature =
    Arg.(required & opt (some string) None & info [ "signature"; "s" ] ~docv:"FILE"
           ~doc:"Signature file.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a signature file.")
    Term.(const verify $ key_arg $ message_arg $ signature)

let () =
  let doc = "Falcon-like signatures with pluggable Gaussian samplers" in
  let info = Cmd.info "falcon_cli" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ keygen_cmd; sign_cmd; verify_cmd ]))
