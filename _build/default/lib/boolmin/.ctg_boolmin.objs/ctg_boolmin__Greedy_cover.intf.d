lib/boolmin/greedy_cover.mli: Cube
