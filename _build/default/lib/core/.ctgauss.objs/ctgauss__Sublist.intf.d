lib/core/sublist.mli: Ctg_boolmin Ctg_kyao
