module Bs = Ctg_prng.Bitstream

type kind =
  | Paper of Ctg_samplers.Sampler_sig.instance
  | Ideal

type t = {
  kind : kind;
  observe : (int -> unit) option;
  bias : (int -> int) option;
  mutable calls : int;
}

let of_instance ?observe ?bias inst =
  { kind = Paper inst; observe; bias; calls = 0 }

let ideal () = { kind = Ideal; observe = None; bias = None; calls = 0 }

let name t =
  match t.kind with
  | Paper inst -> inst.Ctg_samplers.Sampler_sig.name
  | Ideal -> "ideal-float"

let uniform01 rng =
  (* 53 random bits into (0, 1]. *)
  let hi = Bs.next_bits rng 26 and lo = Bs.next_bits rng 27 in
  (float_of_int ((hi lsl 27) lor lo) +. 1.0) /. 9007199254740992.0

let sample_around t rng ~center ~sigma' =
  t.calls <- t.calls + 1;
  match t.kind with
  | Paper inst ->
    let base = Ctg_samplers.Sampler_sig.sample_signed inst rng in
    (* The bias seam models a faulty sampler, so the monitor tap sees the
       faulted draw — exactly what a biased implementation would emit. *)
    let base = match t.bias with Some f -> f base | None -> base in
    (match t.observe with Some f -> f base | None -> ());
    Float.to_int (Float.round center) + base
  | Ideal ->
    (* Box-Muller, then round: a continuous-Gaussian stand-in for the
       exact SamplerZ, good enough to benchmark signature quality. *)
    let u1 = uniform01 rng and u2 = uniform01 rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    Float.to_int (Float.round (center +. (sigma' *. z)))

let calls t = t.calls
let reset_calls t = t.calls <- 0

let error_variance t =
  match t.kind with
  | Paper _ -> (2.0 *. 2.0) +. (1.0 /. 12.0)
  | Ideal -> 1.0 (* scaled by σ'² at the use site *)
