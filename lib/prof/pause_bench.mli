(** GC-pause baselines per σ workload and the rtev always-on overhead
    gate — the numbers committed as [BENCH_pauses.json] and watched by
    the {!Ctg_assure.Trend} 25% gate (the [_ns]-suffixed quantiles and
    per-sample timings gate; [pause_max]/[total_pause] are advisory, a
    single compaction dominates them).

    Each σ window repeats the single-domain fill loop until at least
    [min_pauses] real pauses were decoded (fresh fork lane per rep),
    then forces one [Gc.compact] so even allocation-light σ report a
    deterministic stop-the-world pause.  The overhead gate pairs the
    fill with ring collection suspended against ring-live-plus-poll
    using {!Ctg_engine.Obs_bench.paired_ns}; the delta must stay under
    {!threshold_pct}. *)

type entry = {
  sigma : string;
  precision : int;
  samples : int;
  reps : int;
  pauses : int;
  minor_pauses : int;
  pause_p50_ns : int;
  pause_p99_ns : int;
  pause_max : int;
  total_pause : int;
  pause_pct : float;
  plain_ns : float;
  rtev_ns : float;
  rtev_overhead_pct : float;
}

val threshold_pct : float
(** 3.0 — same budget as the profiling-overhead gate. *)

val default_set : (string * int) list

val measure :
  ?samples:int ->
  ?min_pauses:int ->
  ?max_reps:int ->
  ?rounds:int ->
  ?min_time:float ->
  sigma:string ->
  precision:int ->
  tail_cut:int ->
  unit ->
  entry
(** Requires an active {!Ctg_rtev.Rtev} consumer (see {!run}). *)

val run :
  ?samples:int ->
  ?min_pauses:int ->
  ?max_reps:int ->
  ?rounds:int ->
  ?min_time:float ->
  ?set:(string * int) list ->
  unit ->
  entry list option
(** Starts the rtev consumer and measures the set; [None] when the
    Runtime_events ring cannot be started in this environment. *)

val ok : entry list -> bool
(** Every entry saw at least one pause and passed the overhead gate. *)

val to_json : ?daemon:Ctg_obs.Jsonx.t -> entry list -> Ctg_obs.Jsonx.t
(** [daemon] is the daemon-under-load pause row assembled by [bench]
    (it needs the serving stack, which this library cannot depend on). *)

val save : ?daemon:Ctg_obs.Jsonx.t -> string -> entry list -> unit
val pp_entry : Format.formatter -> entry -> unit
