module Sig = Ctg_samplers.Sampler_sig
module Bs = Ctg_prng.Bitstream
module Jsonx = Ctg_obs.Jsonx
module Chi_square = Ctg_stats.Chi_square

type config = {
  samples : int;
  z_crit : float;
  chi_alpha : float;
  tail_target : float;
  lags : int list;
}

let default_config =
  {
    samples = 200_000;
    z_crit = 3.5;
    chi_alpha = 1e-3;
    tail_target = 0.02;
    lags = [ 1; 2; 3; 4; 8; 63 ];
  }

type check = {
  family : string;
  name : string;
  value : float;
  bound : float;
  pass : bool;
  detail : string;
}

type verdict = {
  backend : string;
  sigma : string;
  precision : int;
  n_samples : int;
  checks : check list;
  pass : bool;
}

let families = [ "moments"; "chi-square"; "tails"; "autocorrelation" ]

(* The target law and its signed moments, computed once per matrix.  The
   law is the termination-conditioned model shared with the online
   monitor (Ctg_assure.Drift.expected_model): magnitudes follow
   p_v / (1 - residual) with a zero-mass overflow bin; the signed law is
   its symmetric unfolding, so odd moments vanish and even moment 2k is
   sum_v q_v v^2k. *)
type model = {
  matrix : Ctg_kyao.Matrix.t;
  conditional : float array;  (* support+2 bins, trailing overflow zero *)
  residual : float;
  m2 : float;
  m4 : float;
  m6 : float;
  m8 : float;
}

let model matrix =
  let conditional, residual = Ctg_assure.Drift.expected_model ~matrix in
  let support = matrix.Ctg_kyao.Matrix.support in
  let moment k =
    let acc = ref 0.0 in
    for v = 0 to support do
      acc := !acc +. (conditional.(v) *. (float_of_int v ** float_of_int k))
    done;
    !acc
  in
  {
    matrix;
    conditional;
    residual;
    m2 = moment 2;
    m4 = moment 4;
    m6 = moment 6;
    m8 = moment 8;
  }

let matrix m = m.matrix

(* Smallest magnitude whose exact two-sided tail mass is at or below the
   target (the binomial tail-mass checkpoint).  Magnitude 0 is excluded:
   a cutoff of 0 would make the check vacuous. *)
let tail_cutoff m ~target =
  let support = m.matrix.Ctg_kyao.Matrix.support in
  let cutoff = ref (support + 1) and tail = ref 0.0 in
  (let running = ref 0.0 in
   for v = support downto 1 do
     running := !running +. m.conditional.(v);
     if !running <= target then begin
       cutoff := v;
       tail := !running
     end
   done);
  (!cutoff, !tail)

let check ~family ~name ~value ~bound ~pass detail =
  { family; name; value; bound; pass; detail }

(* A two-sided z check: |value - target| against z_crit standard errors. *)
let z_check ~family ~name ~z_crit ~target ~se value =
  let z = if se > 0.0 then abs_float (value -. target) /. se else 0.0 in
  check ~family ~name ~value:z ~bound:z_crit ~pass:(z <= z_crit)
    (Printf.sprintf "observed %.6g vs exact %.6g (se %.3g)" value target se)

let evaluate ?(config = default_config) m ~backend ~samples ~len =
  if len < 1000 then invalid_arg "Battery.evaluate: need >= 1000 samples";
  let support = m.matrix.Ctg_kyao.Matrix.support in
  let sigma = m.matrix.Ctg_kyao.Matrix.sigma in
  let precision = m.matrix.Ctg_kyao.Matrix.precision in
  let counts = Array.make (support + 1) 0 in
  let overflow = ref 0 in
  let s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 and s4 = ref 0.0 in
  for i = 0 to len - 1 do
    let x = float_of_int samples.(i) in
    let x2 = x *. x in
    s1 := !s1 +. x;
    s2 := !s2 +. x2;
    s3 := !s3 +. (x2 *. x);
    s4 := !s4 +. (x2 *. x2);
    let v = abs samples.(i) in
    if v > support then incr overflow else counts.(v) <- counts.(v) + 1
  done;
  let fn = float_of_int len in
  let mean = !s1 /. fn in
  (* Central moments of the sample. *)
  let mc2 = (!s2 /. fn) -. (mean *. mean) in
  let mc3 =
    (!s3 /. fn) -. (3.0 *. mean *. (!s2 /. fn)) +. (2.0 *. (mean ** 3.0))
  in
  let mc4 =
    (!s4 /. fn)
    -. (4.0 *. mean *. (!s3 /. fn))
    +. (6.0 *. mean *. mean *. (!s2 /. fn))
    -. (3.0 *. (mean ** 4.0))
  in
  let zc = config.z_crit in
  (* Moment checks against the exact law, with standard errors from the
     exact higher moments (not the normal approximation: at sigma 1 the
     law is far from normal and sqrt(6/n)-style bounds would be
     miscalibrated).  For a symmetric law:
       var(mean)      = m2 / n
       var(variance)  = (m4 - m2^2) / n
       var(skewness)  = (m6 - 6 m2 m4 + 9 m2^3) / (n m2^3)
       var(kurtosis)  = (m8 - m4^2 + 4 k^2 (m4 - m2^2)
                         - 4 k (m6 - m2 m4)) / (n m2^4),  k = m4 / m2^2
     which recover the classic sqrt(6/n) and sqrt(24/n) when the law is
     normal. *)
  let c_mean =
    z_check ~family:"moments" ~name:"mean" ~z_crit:zc ~target:0.0
      ~se:(sqrt (m.m2 /. fn))
      mean
  in
  let c_var =
    z_check ~family:"moments" ~name:"variance" ~z_crit:zc ~target:m.m2
      ~se:(sqrt ((m.m4 -. (m.m2 *. m.m2)) /. fn))
      mc2
  in
  let g1 = mc3 /. (mc2 ** 1.5) in
  let se_g1 =
    sqrt
      (Float.max 0.0
         ((m.m6 -. (6.0 *. m.m2 *. m.m4) +. (9.0 *. (m.m2 ** 3.0)))
         /. (fn *. (m.m2 ** 3.0))))
  in
  let c_skew =
    z_check ~family:"moments" ~name:"skewness" ~z_crit:zc ~target:0.0 ~se:se_g1
      g1
  in
  let g2 = (mc4 /. (mc2 *. mc2)) -. 3.0 in
  let gamma2 = (m.m4 /. (m.m2 *. m.m2)) -. 3.0 in
  let k = m.m4 /. (m.m2 *. m.m2) in
  let se_g2 =
    sqrt
      (Float.max 0.0
         ((m.m8 -. (m.m4 *. m.m4)
          +. (4.0 *. k *. k *. (m.m4 -. (m.m2 *. m.m2)))
          -. (4.0 *. k *. (m.m6 -. (m.m2 *. m.m4))))
         /. (fn *. (m.m2 ** 4.0))))
  in
  let c_kurt =
    z_check ~family:"moments" ~name:"excess-kurtosis" ~z_crit:zc ~target:gamma2
      ~se:se_g2 g2
  in
  (* Chi-square GOF against the conditioned law, overflow bin included
     with zero expected mass — same statistic as one Drift window. *)
  let observed = Array.append counts [| !overflow |] in
  let expected = Array.map (fun p -> p *. fn) m.conditional in
  let r = Chi_square.test ~observed ~expected in
  let c_chi =
    check ~family:"chi-square" ~name:"gof" ~value:r.Chi_square.p_value
      ~bound:config.chi_alpha
      ~pass:(r.Chi_square.p_value >= config.chi_alpha)
      (Printf.sprintf "chi2=%.2f dof=%d" r.Chi_square.statistic
         r.Chi_square.dof)
  in
  (* Tails: the conditioned law has zero mass beyond the support, so any
     overflow is a hard failure; inside the support, the mass at or above
     the exact-quantile cutoff is a binomial proportion check. *)
  let c_support =
    check ~family:"tails" ~name:"support" ~value:(float_of_int !overflow)
      ~bound:0.0 ~pass:(!overflow = 0)
      (Printf.sprintf "%d sample(s) beyond support %d" !overflow support)
  in
  let cutoff, p_tail = tail_cutoff m ~target:config.tail_target in
  let tail_obs = ref !overflow in
  for v = cutoff to support do
    tail_obs := !tail_obs + counts.(v)
  done;
  let c_tail =
    if p_tail <= 0.0 then
      check ~family:"tails" ~name:"tail-mass" ~value:0.0 ~bound:zc ~pass:true
        "no nonzero-mass tail cutoff below the support"
    else
      z_check ~family:"tails" ~name:"tail-mass" ~z_crit:zc ~target:p_tail
        ~se:(sqrt (p_tail *. (1.0 -. p_tail) /. fn))
        (float_of_int !tail_obs /. fn)
  in
  (* Independence: lag autocorrelation of the signed sequence.  Under
     i.i.d. sampling each r_k is asymptotically N(0, 1/n); lag 63 covers
     the bitsliced batch width.  Reported as the worst lag. *)
  let worst_lag = ref 0 and worst_z = ref 0.0 in
  List.iter
    (fun lag ->
      if lag >= 1 && lag < len / 2 then begin
        let acc = ref 0.0 in
        for i = 0 to len - 1 - lag do
          acc := !acc +. (float_of_int samples.(i) *. float_of_int samples.(i + lag))
        done;
        let nl = float_of_int (len - lag) in
        let r_k = ((!acc /. nl) -. (mean *. mean)) /. mc2 in
        let z = abs_float r_k *. sqrt nl in
        if z > !worst_z then begin
          worst_z := z;
          worst_lag := lag
        end
      end)
    config.lags;
  let c_auto =
    check ~family:"autocorrelation" ~name:"max-lag" ~value:!worst_z ~bound:zc
      ~pass:(!worst_z <= zc)
      (Printf.sprintf "worst lag %d of %s" !worst_lag
         (String.concat "," (List.map string_of_int config.lags)))
  in
  let checks =
    [ c_mean; c_var; c_skew; c_kurt; c_chi; c_support; c_tail; c_auto ]
  in
  {
    backend;
    sigma;
    precision;
    n_samples = len;
    checks;
    pass = List.for_all (fun (c : check) -> c.pass) checks;
  }

let run ?(config = default_config) ?bias ~seed m inst =
  let sigma = m.matrix.Ctg_kyao.Matrix.sigma in
  let rng =
    Bs.of_chacha
      (Ctg_prng.Chacha20.of_seed
         (Printf.sprintf "saga-%Lx-%s-%s" seed sigma inst.Sig.name))
  in
  let corrupt = match bias with Some f -> f | None -> Fun.id in
  let samples =
    Array.init config.samples (fun _ -> corrupt (Sig.sample_signed inst rng))
  in
  evaluate ~config m ~backend:inst.Sig.name ~samples ~len:config.samples

let failed_families v =
  List.sort_uniq compare
    (List.filter_map
       (fun (c : check) -> if c.pass then None else Some c.family)
       v.checks)

let check_json c =
  Jsonx.Obj
    [
      ("family", Str c.family);
      ("name", Str c.name);
      ("value", Num c.value);
      ("bound", Num c.bound);
      ("pass", Bool c.pass);
      ("detail", Str c.detail);
    ]

let verdict_json v =
  Jsonx.Obj
    [
      ("backend", Str v.backend);
      ("sigma", Str v.sigma);
      ("precision", Num (float_of_int v.precision));
      ("samples", Num (float_of_int v.n_samples));
      ("pass", Bool v.pass);
      ("checks", List (List.map check_json v.checks));
    ]

let pp_verdict fmt v =
  Format.fprintf fmt "%-14s sigma=%-8s prec=%-3d n=%-7d %s" v.backend v.sigma
    v.precision v.n_samples
    (if v.pass then "PASS"
     else
       Printf.sprintf "FAIL [%s]" (String.concat "," (failed_families v)))
