(** Performance-trajectory tracking over the committed BENCH baselines.

    [bench history] flattens every [BENCH_*.json] in the repo root into
    [(path, value)] metrics (list entries keyed by their [sigma] field
    plus the [precision]/[domains] discriminators benches sweep, so
    reordering does not shuffle keys and no two entries collide), stamps
    the record with an
    environment fingerprint, and appends one JSON line to
    [BENCH_history.jsonl].  Deltas are only meaningful against a record
    with the {e same} fingerprint — a different host or core count is a
    different machine, not a regression — and only the latency-like
    ["_ns"]-suffixed series gate CI, with a deliberately loose default
    tolerance (25%) because shared CI hosts swing hard; the committed
    per-bench thresholds remain the precise gates. *)

type fingerprint = {
  host : string;
  ocaml_version : string;
  word_size : int;
  domains : int;  (** [Domain.recommended_domain_count ()]. *)
}

val fingerprint : unit -> fingerprint

type record = {
  time : string;  (** ISO-8601 UTC. *)
  fp : fingerprint;
  metrics : (string * float) list;
      (** Keys like
          ["BENCH_engine.json.results[sigma=2,domains=4].ns_per_sample"]. *)
}

val default_files : string list
(** The BENCH baselines scanned, in scan order. *)

val collect : ?files:string list -> dir:string -> unit -> record
(** Read and flatten the baselines present under [dir] (missing or
    unparseable files are skipped), stamped with the current time and
    fingerprint. *)

val to_json : record -> Ctg_obs.Jsonx.t
val of_json : Ctg_obs.Jsonx.t -> record option

val append : path:string -> record -> unit
(** Append one line to the history file (created if absent). *)

val load : path:string -> record list
(** All parseable records, file order (oldest first); [] when absent. *)

val baseline_for : fingerprint -> record list -> record option
(** Most recent record with the given fingerprint. *)

type delta = { key : string; base : float; current : float; pct : float }

val deltas : baseline:record -> record -> delta list
(** Per-metric change for keys present in both records. *)

val is_latency_key : string -> bool
(** True for the ["_ns"]-suffixed metric paths that are allowed to gate. *)

val regressions : ?tolerance_pct:float -> baseline:record -> record -> delta list
(** The gating subset of {!deltas}: ["_ns"]-suffixed keys that grew by
    more than [tolerance_pct] (default 25). *)

val pp_delta : Format.formatter -> delta -> unit
val pp_fingerprint : Format.formatter -> fingerprint -> unit
