(** Domain-parallel batch sampling over one compiled sampler.

    The software analogue of a hardware design's parallel SamplerZ array:
    [P] persistent worker domains share the registry's compiled program
    (each holds a private {!Ctgauss.Sampler.clone}) and race for fixed-size
    {e chunks} of a batch job through an atomic cursor.

    {b Determinism.}  Chunk [c] of the [j]-th job always draws its
    randomness from {!Stream_fork} lane [lane_base_j + c] and lands at
    offset [c × chunk size] of the output, so the result is a pure function
    of [(seed, sampler, call sequence)] — the same [int array] for 1, 2 or
    8 domains.  Scheduling decides only {e who} computes a chunk, never
    {e what} it contains.

    {b Backpressure.}  {!iter_batches} streams chunks through a bounded
    queue: workers block once [queue_capacity] chunks are finished but not
    yet consumed, so a slow consumer caps the engine's memory at
    [(capacity + domains) × chunk] samples instead of buffering the whole
    job. *)

type t

val create :
  ?domains:int ->
  ?backend:Stream_fork.backend ->
  ?chunk_batches:int ->
  ?queue_capacity:int ->
  seed:string ->
  Ctgauss.Sampler.t ->
  t
(** Spawn the worker domains.  [domains] defaults to
    [Domain.recommended_domain_count ()]; [chunk_batches] is the number of
    63-sample program runs per chunk (default 16, i.e. 1008 samples — big
    enough to amortize queue traffic, small enough to balance load);
    [queue_capacity] bounds the {!iter_batches} in-flight chunks (default
    [2 × domains]).  The caller keeps ownership of the sampler; workers
    only ever touch private clones. *)

val domains : t -> int
val metrics : t -> Metrics.t

val ctmon : t -> Ctg_obs.Ctmon.t
(** The pool's constant-time monitor: workers verify per batch that the
    bit draw matches the learned per-batch count (fallback resamples are
    attributed separately), folding results into the metrics registry once
    per chunk.  [Ctmon.violations] must stay 0 for CT samplers. *)

val chunk_samples : t -> int
(** Samples per full chunk ([chunk_batches × 63]). *)

val batch_parallel : t -> n:int -> int array
(** [n] signed samples, produced in parallel, deterministic in the master
    seed and the sequence of calls (each call consumes fresh lanes).
    @raise Invalid_argument when [n < 0] or the pool is shut down. *)

val iter_batches : t -> n:int -> (int array -> unit) -> unit
(** Stream the same deterministic output as {!batch_parallel} to [f] chunk
    by chunk, in order, while workers keep producing ahead under the
    bounded-queue backpressure.  [f] runs in the calling domain. *)

val shutdown : t -> unit
(** Join the workers.  Idempotent; subsequent jobs raise. *)

val parallel_for : ?domains:int -> n:int -> (int -> unit) -> unit
(** Standalone work-stealing fan-out (an atomic cursor over [0..n-1]): run
    [f i] for every [i < n] across [domains] domains, caller participating;
    [domains = 1] is purely sequential.  [f] must be safe to run
    concurrently for distinct [i].  Used by [Ctg_falcon.Sign.sign_many] to
    spread independent signatures over cores. *)
