(** Arithmetic modulo q = 12289 (Falcon's modulus, q ≡ 1 mod 2048, so the
    negacyclic NTT exists for every ring degree used here). *)

val q : int
val reduce : int -> int
(** Canonical representative in [[0, q)] of any int. *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val pow : int -> int -> int
val inv : int -> int
(** @raise Division_by_zero on 0. *)

val centered : int -> int
(** Representative in [(-q/2, q/2]]. *)

val primitive_root_2n : int -> int
(** [primitive_root_2n n] is an element of order exactly [2n]. *)
