lib/core/codegen.ml: Array Buffer Gate List Printf String
