(** DPOR-style stateless model checker for code using the [Ctg_sync]
    shim.  Runs a [unit -> unit] harness as cooperative fibers on one
    domain and exhaustively explores interleavings at shared-memory
    granularity, pruned by vector-clock happens-before (dscheck-like,
    Flanagan–Godefroid backtrack sets).

    Harnesses must be deterministic (no time, randomness, or I/O in
    control flow) and must join every fiber they spawn. *)

type vkind =
  | Assertion of string  (** a fiber died with an uncaught exception *)
  | Deadlock  (** nobody runnable: missed wakeup or lock cycle *)
  | Livelock  (** all runnable fibers stuck in a read spin *)
  | Lock_misuse of string  (** unlock/wait without holding the mutex *)
  | Too_long  (** one execution exceeded [max_steps] *)

val vkind_to_string : vkind -> string

type stats = {
  execs : int;  (** distinct interleavings fully executed *)
  steps : int;  (** total shim operations across all executions *)
  max_depth : int;  (** longest single execution, in operations *)
}

type violation = {
  v_kind : vkind;
  v_schedule : int list;
      (** the replay seed: fiber id chosen at each step *)
  v_trace : string list;  (** human-readable step-by-step trace *)
  v_execs : int;  (** executions run before the violation surfaced *)
}

type outcome = Passed of stats | Budget_exceeded of stats | Flagged of violation

val check :
  ?max_execs:int -> ?max_steps:int -> ?spin_limit:int -> (unit -> unit) -> outcome
(** Explore all interleavings of [fn].  Stops at the first violation,
    returning its schedule and trace. *)

val replay :
  ?max_steps:int ->
  ?spin_limit:int ->
  (unit -> unit) ->
  int list ->
  vkind option * string list
(** Re-run [fn] forcing the given schedule prefix (default policy after
    it runs out); returns the violation, if any, and the full trace. *)

val schedule_to_string : int list -> string
val schedule_of_string : string -> int list
