lib/boolmin/petrick.ml: Array Cube Greedy_cover Hashtbl List Stdlib
