let exact_probabilities (m : Ctg_kyao.Matrix.t) =
  let n = m.Ctg_kyao.Matrix.precision in
  Array.init
    (m.Ctg_kyao.Matrix.support + 1)
    (fun v ->
      let acc = ref 0.0 in
      for col = 0 to n - 1 do
        if m.Ctg_kyao.Matrix.bits.(v).(col) then
          acc := !acc +. ldexp 1.0 (-(col + 1))
      done;
      !acc)

let pad a b =
  let n = max (Array.length a) (Array.length b) in
  let get x i = if i < Array.length x then x.(i) else 0.0 in
  (Array.init n (get a), Array.init n (get b))

let statistical p q =
  let p, q = pad p q in
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  0.5 *. !acc

let renyi ~alpha p q =
  if alpha <= 1.0 then invalid_arg "Distance.renyi: alpha must exceed 1";
  let p, q = pad p q in
  let acc = ref 0.0 in
  let infinite = ref false in
  Array.iteri
    (fun i pi ->
      if pi > 0.0 then begin
        if q.(i) <= 0.0 then infinite := true
        else acc := !acc +. (pi ** alpha /. (q.(i) ** (alpha -. 1.0)))
      end)
    p;
  if !infinite then infinity else log !acc /. (alpha -. 1.0)

let max_log p q =
  let p, q = pad p q in
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi ->
      let qi = q.(i) in
      if pi > 0.0 || qi > 0.0 then
        if pi <= 0.0 || qi <= 0.0 then acc := infinity
        else acc := max !acc (abs_float (log pi -. log qi)))
    p;
  !acc

let empirical samples ~support =
  let counts = Array.make (support + 1) 0 in
  let total = Array.length samples in
  Array.iter
    (fun s ->
      let v = abs s in
      if v <= support then counts.(v) <- counts.(v) + 1)
    samples;
  Array.map (fun c -> float_of_int c /. float_of_int total) counts
