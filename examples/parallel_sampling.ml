(* The parallel engine end to end: compile once through the registry, fan
   batched sampling out across domains, stream results under backpressure,
   and read the throughput metrics.

     dune exec examples/parallel_sampling.exe
*)

let () =
  (* 1. The registry caches the expensive compile (Knuth-Yao table ->
        minimized Boolean program); a second lookup is free and returns
        the physically same sampler. *)
  let sampler =
    Ctg_engine.Registry.lookup Ctg_engine.Registry.global ~sigma:"2"
      ~precision:128 ~tail_cut:13 ()
  in
  Format.printf "compiled: %d gates, %d cached parameter set(s)@."
    (Ctgauss.Sampler.gate_count sampler)
    (Ctg_engine.Registry.size Ctg_engine.Registry.global);

  (* 2. A pool of worker domains, each holding a private clone of the
        compiled program.  The master seed forks deterministically per
        work chunk, so this array is the same for ANY domain count. *)
  let pool = Ctg_engine.Pool.create ~domains:2 ~seed:"demo" sampler in
  let samples = Ctg_engine.Pool.batch_parallel pool ~n:100_000 in
  let mean =
    Array.fold_left (fun a v -> a +. float_of_int v) 0.0 samples
    /. float_of_int (Array.length samples)
  in
  Format.printf "batch_parallel: %d samples, mean %+.4f@."
    (Array.length samples) mean;

  (* 3. Streaming consumption: chunks arrive in order through a bounded
        queue, so a slow consumer throttles the producers instead of
        buffering the whole job. *)
  let chunks = ref 0 in
  Ctg_engine.Pool.iter_batches pool ~n:50_000 (fun chunk ->
      chunks := !chunks + 1;
      ignore chunk);
  Format.printf "iter_batches: %d chunks of <= %d samples@." !chunks
    (Ctg_engine.Pool.chunk_samples pool);

  (* 4. Atomic throughput counters, updated once per chunk. *)
  let m = Ctg_engine.Metrics.snapshot (Ctg_engine.Pool.metrics pool) in
  Format.printf "metrics:@.%a" Ctg_engine.Metrics.pp m;
  Ctg_engine.Pool.shutdown pool
