type t = {
  samples : int Atomic.t;
  batches : int Atomic.t;
  bits_consumed : int Atomic.t;
  prng_work : int Atomic.t;
  gate_evals : int Atomic.t;
  per_domain : int Atomic.t array;
}

type snapshot = {
  samples : int;
  batches : int;
  bits_consumed : int;
  prng_work : int;
  gate_evals : int;
  per_domain_samples : int array;
}

let create ~domains =
  if domains < 1 then invalid_arg "Metrics.create: domains must be >= 1";
  {
    samples = Atomic.make 0;
    batches = Atomic.make 0;
    bits_consumed = Atomic.make 0;
    prng_work = Atomic.make 0;
    gate_evals = Atomic.make 0;
    per_domain = Array.init domains (fun _ -> Atomic.make 0);
  }

let add c n = ignore (Atomic.fetch_and_add c n)

let record (t : t) ~domain ~samples ~batches ~bits ~work ~gates =
  add t.samples samples;
  add t.batches batches;
  add t.bits_consumed bits;
  add t.prng_work work;
  add t.gate_evals gates;
  add t.per_domain.(domain) samples

let snapshot (t : t) =
  {
    samples = Atomic.get t.samples;
    batches = Atomic.get t.batches;
    bits_consumed = Atomic.get t.bits_consumed;
    prng_work = Atomic.get t.prng_work;
    gate_evals = Atomic.get t.gate_evals;
    per_domain_samples = Array.map Atomic.get t.per_domain;
  }

let reset (t : t) =
  Atomic.set t.samples 0;
  Atomic.set t.batches 0;
  Atomic.set t.bits_consumed 0;
  Atomic.set t.prng_work 0;
  Atomic.set t.gate_evals 0;
  Array.iter (fun c -> Atomic.set c 0) t.per_domain

let pp fmt s =
  Format.fprintf fmt "samples        %d@." s.samples;
  Format.fprintf fmt "batches        %d@." s.batches;
  Format.fprintf fmt "bits consumed  %d" s.bits_consumed;
  if s.samples > 0 then
    Format.fprintf fmt "  (%.1f bits/sample)"
      (float_of_int s.bits_consumed /. float_of_int s.samples);
  Format.fprintf fmt "@.";
  Format.fprintf fmt "prng work      %d@." s.prng_work;
  Format.fprintf fmt "gate evals     %d" s.gate_evals;
  if s.samples > 0 then
    Format.fprintf fmt "  (%.0f gates/sample)"
      (float_of_int s.gate_evals /. float_of_int s.samples);
  Format.fprintf fmt "@.";
  Format.fprintf fmt "per-domain     ";
  Array.iteri
    (fun i n -> Format.fprintf fmt "%s%d:%d" (if i = 0 then "" else " ") i n)
    s.per_domain_samples;
  Format.fprintf fmt "@."
