test/test_fixed.mli:
