lib/samplers/convolution.ml: Ctg_prng Ctgauss Printf Sampler_sig
