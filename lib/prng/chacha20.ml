(* RFC 7539 ChaCha20 block function on native ints masked to 32 bits. *)

let mask32 = 0xFFFF_FFFF

type t = {
  state : int array; (* 16 words: constants, key, counter, nonce *)
  mutable counter : int;
  mutable buf : bytes;
  mutable buf_pos : int;
  mutable blocks : int;
}

let word_of_le buf off =
  Char.code (Bytes.get buf off)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 3)) lsl 24)

let le_of_word buf off w =
  Bytes.set buf off (Char.chr (w land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((w lsr 8) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((w lsr 16) land 0xff));
  Bytes.set buf (off + 3) (Char.chr ((w lsr 24) land 0xff))

let create ~key ~nonce =
  if Bytes.length key <> 32 then invalid_arg "Chacha20.create: key must be 32 bytes";
  if Bytes.length nonce <> 12 then invalid_arg "Chacha20.create: nonce must be 12 bytes";
  let state = Array.make 16 0 in
  state.(0) <- 0x61707865;
  state.(1) <- 0x3320646e;
  state.(2) <- 0x79622d32;
  state.(3) <- 0x6b206574;
  for i = 0 to 7 do
    state.(4 + i) <- word_of_le key (4 * i)
  done;
  (* state.(12) is the counter, patched per block. *)
  for i = 0 to 2 do
    state.(13 + i) <- word_of_le nonce (4 * i)
  done;
  { state; counter = 0; buf = Bytes.create 0; buf_pos = 0; blocks = 0 }

(* Simple deterministic expansion of an arbitrary string into key||nonce;
   not a KDF, only for reproducible tests and benchmarks. *)
let material_of_seed seed =
  let material = Bytes.create 44 in
  let h = ref 0x1E3779B97F4A7C15 in
  for i = 0 to 43 do
    let c =
      if String.length seed = 0 then 0
      else Char.code seed.[i mod String.length seed]
    in
    h := (!h lxor c) * 0x100000001B3 land max_int;
    h := !h lxor (!h lsr 29);
    Bytes.set material i (Char.chr ((!h lsr 13) land 0xff))
  done;
  material

let of_seed seed =
  let material = material_of_seed seed in
  create ~key:(Bytes.sub material 0 32) ~nonce:(Bytes.sub material 32 12)

let key_of_seed seed = Bytes.sub (material_of_seed seed) 0 32

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let block t counter =
  let init = Array.copy t.state in
  init.(12) <- counter land mask32;
  let st = Array.copy init in
  for _ = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    le_of_word out (4 * i) ((st.(i) + init.(i)) land mask32)
  done;
  t.blocks <- t.blocks + 1;
  out

let next_bytes t n =
  let out = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    if t.buf_pos >= Bytes.length t.buf then begin
      t.buf <- block t t.counter;
      t.counter <- t.counter + 1;
      t.buf_pos <- 0
    end;
    let take = min (n - !pos) (Bytes.length t.buf - t.buf_pos) in
    Bytes.blit t.buf t.buf_pos out !pos take;
    t.buf_pos <- t.buf_pos + take;
    pos := !pos + take
  done;
  out

let blocks_generated t = t.blocks
