module Nat = Ctg_bigint.Nat

(* Per-row thresholds scaled so the most likely row has acceptance close
   to 1: accept candidate v iff an n-bit uniform r < K_v << s, where s
   makes max_v (K_v << s) fit just under 2^n. *)
let thresholds (m : Ctg_kyao.Matrix.t) =
  let n = m.Ctg_kyao.Matrix.precision in
  let row_k v =
    let acc = ref Nat.zero in
    for col = 0 to n - 1 do
      if m.Ctg_kyao.Matrix.bits.(v).(col) then
        acc := Nat.add !acc (Nat.shift_left Nat.one (n - 1 - col))
    done;
    !acc
  in
  let ks = Array.init (m.Ctg_kyao.Matrix.support + 1) row_k in
  let max_bits = Array.fold_left (fun a k -> max a (Nat.num_bits k)) 1 ks in
  let shift = n - max_bits in
  (Array.map (fun k -> Nat.shift_left k shift) ks, n)

let acceptance_rate (m : Ctg_kyao.Matrix.t) =
  let ks, n = thresholds m in
  let total = Array.fold_left Nat.add Nat.zero ks in
  let mt, et = Nat.to_float_exp total in
  ldexp mt (et - n) /. float_of_int (Array.length ks)

let create (m : Ctg_kyao.Matrix.t) =
  let ks, n = thresholds m in
  let count = Array.length ks in
  let width = (n + 7) / 8 in
  let enc =
    Array.map
      (fun k ->
        let b = Bytes.make width '\000' in
        let rec go v pos =
          if pos >= 0 && not (Nat.is_zero v) then begin
            Bytes.set b pos (Char.chr (Nat.to_int (Nat.rem v (Nat.of_int 256))));
            go (Nat.shift_right v 8) (pos - 1)
          end
        in
        go (Nat.shift_left k ((8 * width) - n)) (width - 1);
        b)
      ks
  in
  let buf = Bytes.create width in
  let rec sample rng iters =
    (* Uniform candidate by rejection on a power-of-two range. *)
    let bits = Ctg_util.Bits.bits_needed (count - 1) in
    let rec candidate () =
      let c = Ctg_prng.Bitstream.next_bits rng bits in
      if c < count then c else candidate ()
    in
    let v = candidate () in
    Ctg_prng.Bitstream.next_bytes_into rng buf;
    let accept, _ = Cdt_table.lt_early_exit buf enc.(v) in
    if accept then (v, iters) else sample rng (iters + 1)
  in
  {
    Sampler_sig.name = "rejection";
    constant_time = false;
    sample_magnitude = (fun rng -> fst (sample rng 1));
    sample_traced = (fun rng -> sample rng 1);
  }
