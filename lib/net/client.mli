(** Minimal HTTP/1.1 client over one keep-alive connection (blocking,
    stdlib-[Unix]) — for the smoke clients, the serve bench and tests.
    Not a general client: responses must be [Content-Length]-framed or
    close-delimited, which is all {!Http} emits. *)

type response = {
  status : int;
  headers : (string * string) list;  (** Names lowercased. *)
  body : string;
}

type t

val connect : ?host:string -> ?timeout:float -> port:int -> unit -> t
(** TCP connect (default host 127.0.0.1).  [timeout] (seconds) is set as
    the socket's send and receive timeout, so every later [request] on
    the connection fails with [Unix.Unix_error (EAGAIN, _, _)] rather
    than blocking forever; a non-positive [timeout] fails immediately
    with [ETIMEDOUT].  Raises [Unix.Unix_error] on failure. *)

val close : t -> unit

val request :
  t ->
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  path:string ->
  unit ->
  response
(** One request/response on the connection; reusable while the server
    keeps the connection alive.  [Content-Length] is added automatically
    for non-empty bodies and every non-GET request.  Raises [Failure] on
    protocol errors and [Unix.Unix_error] on transport errors. *)

val one_shot :
  ?host:string ->
  port:int ->
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  path:string ->
  unit ->
  response
(** Connect, send one request, read the response, close. *)

val get : ?host:string -> port:int -> string -> response
val post : ?host:string -> port:int -> ?body:string -> string -> response

(** {1 Retries}

    Bounded exponential backoff with jitter around the one-shot
    entrypoints.  Only transport and protocol failures are retried — a
    received HTTP response of any status is the answer (a 503 from
    [/healthz] reports failing monitors; retrying it would mask the
    signal).  Non-idempotent methods are never retried unless the policy
    explicitly opts in, because a lost response does not mean the daemon
    did not sign. *)

type retry_policy = {
  max_attempts : int;  (** Total attempts including the first; >= 1. *)
  base_delay : float;  (** First backoff step, seconds. *)
  max_delay : float;  (** Backoff cap, seconds. *)
  deadline : float option;
      (** Wall-clock budget for the whole request across all attempts,
          also applied as per-attempt socket timeouts. *)
  retry_non_idempotent : bool;  (** Retry POST too (default no). *)
  jitter : attempt:int -> cap:float -> float;
      (** Sleep for this attempt given the backoff cap.  The default is
          equal jitter: [cap/2 + uniform(0, cap/2)].  Seam for tests. *)
  sleep : float -> unit;  (** [Unix.sleepf]; seam for tests. *)
}

val default_policy : retry_policy
(** 3 attempts, 50 ms doubling to a 1 s cap, 5 s deadline, GET/HEAD
    only. *)

val transient : exn -> bool
(** Would the policy retry this exception? *)

val backoff_cap : retry_policy -> int -> float
(** Backoff cap for the given 1-based attempt (before jitter). *)

val connect_retry : ?policy:retry_policy -> ?host:string -> port:int -> unit -> t
(** [connect] under the policy — retries refused/reset connects while a
    daemon boots.  The deadline becomes the connection's socket timeout. *)

val one_shot_retry :
  ?policy:retry_policy ->
  ?host:string ->
  port:int ->
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  path:string ->
  unit ->
  response
(** [one_shot] under the policy.  Each attempt uses a fresh connection
    whose socket timeout is the time left on the deadline. *)

val get_retry : ?policy:retry_policy -> ?host:string -> port:int -> string -> response
