(* Source-level concurrency lint: the static half of ctg_race.

   The model checker (Model/Harness) can only vouch for code routed
   through the Ctg_sync.Shim — a naked [Stdlib.Atomic] escapes it
   silently.  This lint closes that hole by parsing the concurrent
   subsystems (lib/engine, lib/net, lib/serve, lib/obs) with
   compiler-libs and enforcing:

   R1 shim-coverage   — any use of [Atomic]/[Mutex]/[Condition], or the
                        shimmed [Domain] operations (spawn, join,
                        cpu_relax), requires [open Ctg_sync.Shim] in the
                        file; [Stdlib.]-qualified uses are flagged
                        unconditionally (they bypass an open on purpose).
   R2 predicate-loop  — every [Condition.wait] must sit inside a
                        [while] loop or a [let rec] body, the two shapes
                        of a predicate re-check; a straight-line wait is
                        the missed-wakeup bug the checker catches
                        dynamically (harness [wait_no_predicate]).
   R3 guarded-global  — module-level mutable state (a top-level [ref],
                        [Queue.create], [Hashtbl.create], [Buffer.create],
                        [Bytes.create], [Array.make]) must carry a
                        [@@race.guarded "lock-name"] attribute naming the
                        mutex that guards it.
   R4 no-global-lazy  — module-level [lazy] is flagged: [Lazy.force] is
                        not domain-safe in OCaml 5 (concurrent forcing
                        can raise [Undefined]); make it eager or guard it.

   [Domain.self], [self_index], [is_main_domain],
   [recommended_domain_count] and [Domain.DLS] are allowlisted: they are
   scheduling-neutral and pass through the shim unchanged. *)

module Jsonx = Ctg_obs.Jsonx

type rule = Shim_coverage | Predicate_loop | Guarded_global | Global_lazy

let rule_id = function
  | Shim_coverage -> "R1-shim-coverage"
  | Predicate_loop -> "R2-predicate-loop"
  | Guarded_global -> "R3-guarded-global"
  | Global_lazy -> "R4-no-global-lazy"

type finding = { f_file : string; f_line : int; f_rule : rule; f_msg : string }

let finding_to_json f =
  Jsonx.Obj
    [
      ("file", Jsonx.Str f.f_file);
      ("line", Jsonx.Num (float_of_int f.f_line));
      ("rule", Jsonx.Str (rule_id f.f_rule));
      ("message", Jsonx.Str f.f_msg);
    ]

let shimmed_domain_ops = [ "spawn"; "join"; "cpu_relax" ]

(* Longident shapes we police.  Returns a display name when the ident is
   a shimmable primitive operation. *)
let prim_of_longident lid =
  match lid with
  | Longident.Ldot (Lident (("Atomic" | "Mutex" | "Condition") as m), op) ->
    Some (false, m ^ "." ^ op)
  | Ldot (Lident "Domain", op) when List.mem op shimmed_domain_ops ->
    Some (false, "Domain." ^ op)
  | Ldot (Ldot (Lident "Stdlib", (("Atomic" | "Mutex" | "Condition") as m)), op)
    ->
    Some (true, "Stdlib." ^ m ^ "." ^ op)
  | Ldot (Ldot (Lident "Stdlib", "Domain"), op)
    when List.mem op shimmed_domain_ops ->
    Some (true, "Stdlib.Domain." ^ op)
  | _ -> None

let is_condition_wait lid =
  match lid with
  | Longident.Ldot (Lident "Condition", "wait")
  | Ldot (Ldot (Lident "Stdlib", "Condition"), "wait") ->
    true
  | _ -> false

let is_shim_open lid =
  match lid with
  | Longident.Ldot (Lident "Ctg_sync", "Shim") -> true
  | Lident "Shim" -> true  (* after [module Shim = Ctg_sync.Shim] etc. *)
  | _ -> false

(* Does this binding directly construct mutable state (not a function
   that constructs some when called)? *)
let rec mutable_ctor (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match txt with
    | Lident "ref" | Ldot (Lident "Stdlib", "ref") -> Some "ref"
    | Ldot (Lident (("Queue" | "Hashtbl" | "Buffer") as m), "create") ->
      Some (m ^ ".create")
    | Ldot (Lident (("Bytes" | "Array") as m), (("create" | "make") as f)) ->
      Some (m ^ "." ^ f)
    | _ -> None)
  | Pexp_constraint (e, _) -> mutable_ctor e
  | _ -> None

let has_guard_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = "race.guarded")
    attrs

let scan_structure ~file (str : Parsetree.structure) =
  let findings = ref [] in
  let add loc rule msg =
    findings :=
      {
        f_file = file;
        f_line = loc.Location.loc_start.Lexing.pos_lnum;
        f_rule = rule;
        f_msg = msg;
      }
      :: !findings
  in
  let has_shim_open =
    List.exists
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
          ->
          is_shim_open txt
        | _ -> false)
      str
  in
  (* Expression walk with a predicate-loop depth: inside a [while] body
     or a [let rec] right-hand side, a Condition.wait is re-checked. *)
  let loop_depth = ref 0 in
  let naked = Hashtbl.create 8 in  (* dedup: one finding per primitive *)
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
            match prim_of_longident txt with
            | Some (stdlib_qualified, name) ->
              if stdlib_qualified || not has_shim_open then
                if not (Hashtbl.mem naked name) then begin
                  Hashtbl.add naked name ();
                  add loc Shim_coverage
                    (Printf.sprintf
                       "%s used %s - route it through Ctg_sync.Shim" name
                       (if stdlib_qualified then
                          "with an explicit Stdlib path (bypasses the shim)"
                        else "without `open Ctg_sync.Shim`"))
                end
            | None -> ())
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
            when is_condition_wait txt ->
            if !loop_depth = 0 then
              add loc Predicate_loop
                "Condition.wait outside a while loop or let-rec body: the \
                 predicate is not re-checked, so a wakeup racing the park \
                 is lost"
          | _ -> ());
          match e.pexp_desc with
          | Pexp_while (cond, body) ->
            it.expr it cond;
            incr loop_depth;
            it.expr it body;
            decr loop_depth
          | Pexp_let (Recursive, vbs, rest) ->
            incr loop_depth;
            List.iter (fun vb -> it.value_binding it vb) vbs;
            decr loop_depth;
            it.expr it rest
          | _ -> default_iterator.expr it e);
    }
  in
  (* Module-level bindings: R3/R4, then descend for R1/R2. *)
  List.iter
    (fun (si : Parsetree.structure_item) ->
      (match si.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            if not (has_guard_attr vb.pvb_attributes) then begin
              (match mutable_ctor vb.pvb_expr with
              | Some ctor ->
                add vb.pvb_loc Guarded_global
                  (Printf.sprintf
                     "module-level mutable state (%s) without [@@race.guarded \
                      \"lock-name\"]"
                     ctor)
              | None -> ());
              match vb.pvb_expr.pexp_desc with
              | Pexp_lazy _ ->
                add vb.pvb_loc Global_lazy
                  "module-level lazy: Lazy.force is not domain-safe in OCaml \
                   5 - make it eager or guard the force"
              | _ -> ()
            end)
          vbs
      | _ -> ());
      iter.structure_item iter si)
    str;
  List.rev !findings

let scan_string ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | str -> Ok (scan_structure ~file:filename str)
  | exception e ->
    Error (Printf.sprintf "%s: parse error: %s" filename (Printexc.to_string e))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The concurrent subsystems this lint gates.  lib/sync itself is
   excluded by construction: it is the one place allowed to touch the
   raw primitives. *)
let default_dirs = [ "lib/engine"; "lib/net"; "lib/serve"; "lib/obs" ]

let scan_dirs ?(dirs = default_dirs) ?(root = ".") () =
  let files =
    List.concat_map
      (fun dir ->
        let abs = Filename.concat root dir in
        if Sys.file_exists abs && Sys.is_directory abs then
          Sys.readdir abs |> Array.to_list |> List.sort compare
          |> List.filter (fun f -> Filename.check_suffix f ".ml")
          |> List.map (fun f -> (Filename.concat dir f, Filename.concat abs f))
        else [])
      dirs
  in
  let errors = ref [] in
  let findings =
    List.concat_map
      (fun (rel, abs) ->
        match scan_string ~filename:rel (read_file abs) with
        | Ok fs -> fs
        | Error e ->
          errors := e :: !errors;
          [])
      files
  in
  (findings, List.rev !errors, List.length files)

let report_to_json ~files ~errors findings =
  Jsonx.Obj
    [
      ("tool", Jsonx.Str "ctg_lint race");
      ("files_scanned", Jsonx.Num (float_of_int files));
      ("ok", Jsonx.Bool (findings = [] && errors = []));
      ("findings", Jsonx.List (List.map finding_to_json findings));
      ("errors", Jsonx.List (List.map (fun e -> Jsonx.Str e) errors));
    ]

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.f_file f.f_line (rule_id f.f_rule)
    f.f_msg
