(** Secret-taint / dataflow verification over {!Ctgauss.Gate} programs.

    In this IR every input bit is secret (the random bits that decide the
    sample), so the property to verify is structural: the program must be
    a well-formed straight line of AND/OR/XOR/NOT/const gates — no other
    instruction kind exists, and {!Ctgauss.Gate.validate} rejects register
    abuse — which makes evaluation branch-free and memory-access-oblivious
    for {e every} input, the paper's constant-time-by-construction
    argument made checkable instead of asserted.

    On top of the verdict, the pass computes the dataflow facts the lint
    rules and reports consume: per-instruction liveness (does the result
    reach an output or the valid flag), the input-support cone of every
    output, and a census of gate kinds. *)

type census = {
  ands : int;
  ors : int;
  xors : int;
  nots : int;
  consts : int;
}

type t

val analyze : Ctgauss.Gate.t -> t

val verified : t -> (unit, string) result
(** [Ok ()] iff the program validates: the branch-free fragment proof.
    All other accessors are still meaningful on [Error] programs as long
    as indices are in range. *)

val census : t -> census
val live : t -> bool array
(** Per-instruction: result can reach an output or the valid flag. *)

val dead_instrs : t -> int list
val unused_inputs : t -> int list
(** Input variables no live instruction or output reads.  Expected at
    full precision — strings longer than the deepest leaf never decide
    anything — so this is reporting, not an error. *)

val output_support : t -> int -> int list
(** Input variables in the structural cone of output bit [i]. *)

val valid_support : t -> int list
(** Support of the valid flag ([[]] when the program has none). *)

val max_cone : t -> int
(** Largest support cardinality over outputs + valid. *)
