lib/kyao/column_sampler.ml: Array Ctg_prng Matrix
