open Ctg_sync.Shim
module Obs = Ctg_obs

type key = {
  sigma : string;
  precision : int;
  tail_cut : int;
  method_ : Ctgauss.Sampler.method_;
}

(* Cache traffic and compile latency go to the process-wide registry:
   the compile cache is effectively a singleton ([global]), and exposing
   its counters there lets [ctg_stats expose] show them without a handle
   on the engine.  Eager, not lazy: [Lazy.force] is not domain-safe in
   OCaml 5 (two domains forcing concurrently can raise [Undefined]), and
   these were forced from worker domains on the first cache access. *)
let hits_counter = Obs.Registry.counter Obs.Registry.default "registry_cache_hits_total"

let misses_counter =
  Obs.Registry.counter Obs.Registry.default "registry_cache_misses_total"

let evictions_counter =
  Obs.Registry.counter Obs.Registry.default
    "registry_selftest_evictions_total"

let selftest_failures_counter =
  Obs.Registry.counter Obs.Registry.default
    "registry_selftest_failures_total"

let compile_histo sigma =
  Obs.Registry.histo Obs.Registry.default
    ~labels:[ ("sigma", sigma) ]
    "registry_compile_ns"

(* [Building] marks an in-flight compile: the key is claimed but the
   sampler is not ready.  Waiters sleep on [cond] and re-check. *)
type entry = Ready of Ctgauss.Sampler.t | Building

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  table : (key, entry) Hashtbl.t;
  mutable compiles : int;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 8;
    compiles = 0;
  }

let global = create ()

let lookup t ?(method_ = Ctgauss.Sampler.Split_minimized) ?(self_test = true)
    ~sigma ~precision ~tail_cut () =
  let key = { sigma; precision; tail_cut; method_ } in
  Mutex.lock t.mutex;
  let rec claim () =
    match Hashtbl.find_opt t.table key with
    | Some (Ready s) ->
      Mutex.unlock t.mutex;
      `Done s
    | Some Building ->
      Condition.wait t.cond t.mutex;
      claim ()
    | None ->
      Hashtbl.replace t.table key Building;
      Mutex.unlock t.mutex;
      `Compile
  in
  match claim () with
  | `Done s ->
    Obs.Registry.incr hits_counter;
    s
  | `Compile -> (
    Obs.Registry.incr misses_counter;
    let t_compile = Obs.Clock.now_ns () in
    (* Compile outside the lock so unrelated keys stay responsive. *)
    match
      Obs.Trace.with_span "registry_compile" ~cat:"engine"
        ~args:(fun () -> [ ("sigma", sigma); ("precision", string_of_int precision) ])
        (fun () -> Ctgauss.Sampler.create ~method_ ~sigma ~precision ~tail_cut ())
    with
    | s -> (
      Obs.Registry.observe (compile_histo sigma) (Obs.Clock.now_ns () - t_compile);
      (* Gate the cache on the KAT: a sampler that disagrees with the
         reference walk must never become the shared master.  Run outside
         the lock (it costs ~a compile's epsilon but is not free). *)
      match if self_test then Selftest.check s with
      | () ->
        Mutex.lock t.mutex;
        t.compiles <- t.compiles + 1;
        Hashtbl.replace t.table key (Ready s);
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        s
      | exception e ->
        Obs.Registry.incr selftest_failures_counter;
        Mutex.lock t.mutex;
        Hashtbl.remove t.table key;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        raise e)
    | exception e ->
      (* Release the claim so a later lookup can retry. *)
      Mutex.lock t.mutex;
      Hashtbl.remove t.table key;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      raise e)

let revalidate ?strings t =
  (* Snapshot the Ready entries under the lock, KAT them outside it (the
     walk over 512 vectors is too slow to hold every lookup for), then
     evict failures under the lock.  The eviction re-checks physical
     equality so a concurrent recompile that already replaced the entry is
     left alone, and it reuses the single-flight protocol: after removal
     the next lookup claims [Building], so however many callers race the
     eviction, exactly one recompile runs. *)
  Mutex.lock t.mutex;
  let ready =
    Hashtbl.fold
      (fun key entry acc ->
        match entry with Ready s -> (key, s) :: acc | Building -> acc)
      t.table []
  in
  Mutex.unlock t.mutex;
  let failed =
    List.filter_map
      (fun (key, s) ->
        match Selftest.run ?strings s with
        | Ok () -> None
        | Error f -> Some (key, s, f))
      ready
  in
  List.filter_map
    (fun (key, s, f) ->
      Mutex.lock t.mutex;
      let evicted =
        match Hashtbl.find_opt t.table key with
        | Some (Ready s') when s' == s ->
          Hashtbl.remove t.table key;
          Condition.broadcast t.cond;
          true
        | _ -> false
      in
      Mutex.unlock t.mutex;
      if evicted then begin
        Obs.Registry.incr evictions_counter;
        Some (key, f)
      end
      else None)
    failed

let size t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ entry acc -> match entry with Ready _ -> acc + 1 | Building -> acc)
      t.table 0
  in
  Mutex.unlock t.mutex;
  n

let compiles t =
  Mutex.lock t.mutex;
  let n = t.compiles in
  Mutex.unlock t.mutex;
  n
