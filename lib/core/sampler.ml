module Bs = Ctg_prng.Bitstream
module Trace = Ctg_obs.Trace

type method_ = Split_minimized | Simple

type t = {
  matrix : Ctg_kyao.Matrix.t;
  enum : Ctg_kyao.Leaf_enum.t;
  program : Gate.t;
  scratch : Bitslice.scratch;
  inputs : int array;
  sample_bits : int;
  gates : int;
      (* cached [Gate.gate_count program]: the fold is O(gates) and the
         engine charges gate evals to its metrics once per chunk *)
  digest : int64;
      (* [Gate.digest program] taken at compile time; integrity monitors
         recompute and compare to catch later gate-table corruption *)
  mutable buffer : int array; (* signed samples ready to hand out *)
  mutable buffer_pos : int;
  mutable buffer_mag : int array;
  mutable buffer_mag_pos : int;
  mutable resamples : int; (* lanes rescued by the scalar fallback walk *)
}

let of_enum ?(method_ = Split_minimized) ?options (enum : Ctg_kyao.Leaf_enum.t) =
  let sigma = enum.Ctg_kyao.Leaf_enum.matrix.Ctg_kyao.Matrix.sigma in
  let program =
    Trace.with_span "compile_program" ~cat:"compile"
      ~args:(fun () -> [ ("sigma", sigma) ])
      (fun () ->
        match method_ with
        | Split_minimized -> Compile.compile ?options (Sublist.build enum)
        | Simple ->
          let with_valid =
            match options with None -> true | Some o -> o.Compile.with_valid
          in
          Compile_simple.compile ~with_valid enum)
  in
  let support = enum.Ctg_kyao.Leaf_enum.matrix.Ctg_kyao.Matrix.support in
  {
    matrix = enum.Ctg_kyao.Leaf_enum.matrix;
    enum;
    program;
    scratch = Bitslice.scratch program;
    inputs = Array.make program.Gate.num_vars 0;
    sample_bits = max 1 (Ctg_util.Bits.bits_needed support);
    gates = Gate.gate_count program;
    digest = Gate.digest program;
    buffer = [||];
    buffer_pos = 0;
    buffer_mag = [||];
    buffer_mag_pos = 0;
    resamples = 0;
  }

let clone t =
  {
    t with
    scratch = Bitslice.scratch t.program;
    inputs = Array.make t.program.Gate.num_vars 0;
    buffer = [||];
    buffer_pos = 0;
    buffer_mag = [||];
    buffer_mag_pos = 0;
    resamples = 0;
  }

let create ?method_ ?options ~sigma ~precision ~tail_cut () =
  let matrix =
    Trace.with_span "build_matrix" ~cat:"compile"
      ~args:(fun () -> [ ("sigma", sigma); ("precision", string_of_int precision) ])
      (fun () -> Ctg_kyao.Matrix.create ~sigma ~precision ~tail_cut)
  in
  let enum =
    Trace.with_span "enumerate_leaves" ~cat:"compile"
      ~args:(fun () -> [ ("sigma", sigma) ])
      (fun () -> Ctg_kyao.Leaf_enum.enumerate matrix)
  in
  of_enum ?method_ ?options enum

let batch_magnitude t rng =
  for i = 0 to Array.length t.inputs - 1 do
    t.inputs.(i) <- Bs.next_word rng
  done;
  Bitslice.eval t.program t.scratch ~inputs:t.inputs;
  let mags = Bitslice.magnitudes t.program t.scratch in
  let valid = Bitslice.valid_word t.program t.scratch in
  if valid <> Bitslice.all_ones then
    for lane = 0 to Bitslice.lanes - 1 do
      if (valid lsr lane) land 1 = 0 then begin
        mags.(lane) <- Ctg_kyao.Column_sampler.sample_magnitude t.matrix rng;
        t.resamples <- t.resamples + 1
      end
    done;
  mags

let batch_signed t rng =
  let mags = batch_magnitude t rng in
  let signs = Bs.next_word rng in
  Array.mapi
    (fun lane m -> if (signs lsr lane) land 1 = 1 then -m else m)
    mags

let sample t rng =
  if t.buffer_pos >= Array.length t.buffer then begin
    t.buffer <- batch_signed t rng;
    t.buffer_pos <- 0
  end;
  let s = t.buffer.(t.buffer_pos) in
  t.buffer_pos <- t.buffer_pos + 1;
  s

let sample_magnitude t rng =
  if t.buffer_mag_pos >= Array.length t.buffer_mag then begin
    t.buffer_mag <- batch_magnitude t rng;
    t.buffer_mag_pos <- 0
  end;
  let s = t.buffer_mag.(t.buffer_mag_pos) in
  t.buffer_mag_pos <- t.buffer_mag_pos + 1;
  s

let program t = t.program
let gate_count t = t.gates
let sample_bits t = t.sample_bits
let matrix t = t.matrix
let enum t = t.enum
let sigma t = t.matrix.Ctg_kyao.Matrix.sigma
let resamples t = t.resamples
let digest t = t.digest
let integrity_ok t = Gate.digest t.program = t.digest
let eval_bits t bits = Bitslice.eval_single t.program bits
