type plan = {
  n : int;
  psi_pow : int array; (* ψ^i, i < n: twist to make cyclic NTT negacyclic *)
  psi_inv_pow : int array;
  w_pow : int array; (* ω^i = ψ^2i, i < n *)
  w_inv_pow : int array;
  n_inv : int;
}

let plan n =
  if n < 2 || n land (n - 1) <> 0 then invalid_arg "Ntt.plan: n";
  let psi = Zq.primitive_root_2n n in
  let psi_inv = Zq.inv psi in
  let powers b = Array.init n (fun i -> Zq.pow b i) in
  {
    n;
    psi_pow = powers psi;
    psi_inv_pow = powers psi_inv;
    w_pow = powers (Zq.mul psi psi);
    w_inv_pow = powers (Zq.inv (Zq.mul psi psi));
    n_inv = Zq.inv n;
  }

let bit_reverse a =
  let n = Array.length a in
  let bits =
    let rec go b v = if v = 1 then b else go (b + 1) (v lsr 1) in
    go 0 n
  in
  for i = 0 to n - 1 do
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    if i < !r then begin
      let t = a.(i) in
      a.(i) <- a.(!r);
      a.(!r) <- t
    end
  done

(* In-place iterative radix-2 cyclic NTT with twiddles w_pow (forward) or
   w_inv_pow (inverse). *)
let cyclic p a ~inverse =
  let n = p.n in
  let w = if inverse then p.w_inv_pow else p.w_pow in
  bit_reverse a;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let step = n / !len in
    let i = ref 0 in
    while !i < n do
      for j = 0 to half - 1 do
        let u = a.(!i + j) in
        let v = Zq.mul a.(!i + j + half) w.(j * step) in
        a.(!i + j) <- Zq.add u v;
        a.(!i + j + half) <- Zq.sub u v
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let forward p coeffs =
  let a = Array.mapi (fun i c -> Zq.mul (Zq.reduce c) p.psi_pow.(i)) coeffs in
  cyclic p a ~inverse:false;
  a

let inverse p evals =
  let a = Array.copy evals in
  cyclic p a ~inverse:true;
  Array.mapi (fun i c -> Zq.mul (Zq.mul c p.n_inv) p.psi_inv_pow.(i)) a

let negacyclic_mul p a b =
  let fa = forward p a and fb = forward p b in
  let prod = Array.init p.n (fun i -> Zq.mul fa.(i) fb.(i)) in
  inverse p prod

let invertible p a = Array.for_all (fun e -> e <> 0) (forward p a)

let ring_inv p a =
  let fa = forward p a in
  inverse p (Array.map Zq.inv fa)
