module Gate = Ctgauss.Gate

type verdict = {
  valid_equal : bool;
  outputs_equal_on_valid : bool;
  outputs_equal_everywhere : bool;
  counterexample : bool array option;
  detail : string;
}

let program_bdds man (p : Gate.t) =
  let nv = p.Gate.num_vars in
  if nv > Bdd.num_vars man then
    invalid_arg
      (Printf.sprintf "Equiv.program_bdds: program has %d vars, manager %d" nv
         (Bdd.num_vars man));
  let n = Array.length p.Gate.instrs in
  let regs = Array.make (nv + n) Bdd.zero in
  for v = 0 to nv - 1 do
    regs.(v) <- Bdd.var man v
  done;
  Array.iteri
    (fun i instr ->
      regs.(nv + i) <-
        (match instr with
        | Gate.And (x, y) -> Bdd.band man regs.(x) regs.(y)
        | Gate.Or (x, y) -> Bdd.bor man regs.(x) regs.(y)
        | Gate.Xor (x, y) -> Bdd.bxor man regs.(x) regs.(y)
        | Gate.Not x -> Bdd.bnot man regs.(x)
        | Gate.Const true -> Bdd.one
        | Gate.Const false -> Bdd.zero))
    p.Gate.instrs;
  let outputs = Array.map (fun r -> regs.(r)) p.Gate.outputs in
  let valid = Option.map (fun r -> regs.(r)) p.Gate.valid in
  (outputs, valid)

let string_of_assignment bits =
  String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

let equivalent man (a : Gate.t) (b : Gate.t) =
  if Array.length a.Gate.outputs <> Array.length b.Gate.outputs then
    {
      valid_equal = false;
      outputs_equal_on_valid = false;
      outputs_equal_everywhere = false;
      counterexample = None;
      detail =
        Printf.sprintf "output arity mismatch: %d vs %d"
          (Array.length a.Gate.outputs)
          (Array.length b.Gate.outputs);
    }
  else begin
    let outs_a, valid_a = program_bdds man a in
    let outs_b, valid_b = program_bdds man b in
    let v_a = Option.value valid_a ~default:Bdd.one in
    let v_b = Option.value valid_b ~default:Bdd.one in
    let valid_diff = Bdd.bxor man v_a v_b in
    (* One BDD accumulating every way the programs can disagree where it
       matters: valid flags differing, or an output bit differing under
       valid. *)
    let disagree = ref valid_diff in
    let everywhere = ref Bdd.zero in
    Array.iteri
      (fun i oa ->
        let d = Bdd.bxor man oa outs_b.(i) in
        everywhere := Bdd.bor man !everywhere d;
        disagree := Bdd.bor man !disagree (Bdd.band man v_a d))
      outs_a;
    let counterexample = Bdd.any_sat man !disagree in
    {
      valid_equal = Bdd.is_zero valid_diff;
      outputs_equal_on_valid = Bdd.is_zero (Bdd.band man v_a !everywhere);
      outputs_equal_everywhere = Bdd.is_zero !everywhere;
      counterexample;
      detail =
        (match counterexample with
        | None ->
          Printf.sprintf
            "all %g terminating strings agree on %d output bits (2^%d inputs checked symbolically)"
            (Bdd.sat_count man v_a)
            (Array.length a.Gate.outputs)
            (Bdd.num_vars man)
        | Some bits ->
          Printf.sprintf "programs disagree on input %s (b_0 first)"
            (string_of_assignment bits));
    }
  end

type selector_verdict = {
  one_hot : bool;
  exhaustive_on_valid : bool;
  sel_detail : string;
}

let selectors_one_hot man ~num_entries ~valid =
  (* c_k = b_0 & ... & b_{k-1} & ~b_k, rebuilt from the definition. *)
  let selectors = Array.make num_entries Bdd.zero in
  let prefix = ref Bdd.one in
  for k = 0 to num_entries - 1 do
    selectors.(k) <- Bdd.band man !prefix (Bdd.bnot man (Bdd.var man k));
    prefix := Bdd.band man !prefix (Bdd.var man k)
  done;
  let one_hot = ref true in
  for i = 0 to num_entries - 1 do
    for j = i + 1 to num_entries - 1 do
      if not (Bdd.is_zero (Bdd.band man selectors.(i) selectors.(j))) then
        one_hot := false
    done
  done;
  let any = Array.fold_left (Bdd.bor man) Bdd.zero selectors in
  let uncovered = Bdd.band man valid (Bdd.bnot man any) in
  {
    one_hot = !one_hot;
    exhaustive_on_valid = Bdd.is_zero uncovered;
    sel_detail =
      (if (not !one_hot) || not (Bdd.is_zero uncovered) then
         match Bdd.any_sat man uncovered with
         | Some bits ->
           Printf.sprintf "terminating string %s claimed by no selector"
             (string_of_assignment bits)
         | None -> "selector pair overlaps"
       else
         Printf.sprintf
           "%d selectors pairwise disjoint; every terminating string claimed"
           num_entries);
  }
