bin/falcon_cli.ml: Arg Bytes Cmd Cmdliner Ctg_falcon Ctg_kyao Ctg_prng Ctg_samplers Ctgauss In_channel Out_channel Printf Term Unix
