lib/falcon/sign.ml: Array Bytes Char Ctg_prng Ff_sampling Fftc Float Hash_point Keygen Params
