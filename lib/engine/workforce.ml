(* A persistent team of helper domains for successive parallel-for jobs.

   [Pool.parallel_for] spawns and joins fresh domains on every call, which
   is fine for one big CLI batch but not for a daemon dispatching a
   sign_many batch every few milliseconds: domain spawn/join costs dwarf
   small batches.  The workforce parks its helpers on a condition variable
   between jobs, so submitting a job costs one broadcast instead of
   [domains - 1] spawns.

   Scheduling model is identical to [Pool.parallel_for]: an atomic cursor
   over [0 .. n-1], the caller participates, first error wins and cancels
   the remaining iterations.  Only one job runs at a time; concurrent
   [run] calls serialize on an internal job mutex. *)

open Ctg_sync.Shim

type job = {
  n : int;
  f : int -> unit;
  cursor : int Atomic.t;
  error : exn option Atomic.t;
  mutable active : int;  (* helpers still inside this job *)
}

type t = {
  domains : int;
  mu : Mutex.t;
  cond : Condition.t;  (* helpers: new job or shutdown *)
  done_cond : Condition.t;  (* submitter: all helpers left the job *)
  mutable current : job option;
  mutable generation : int;  (* bumped per job; helpers wait for a change *)
  mutable stopping : bool;
  mutable helpers : unit Domain.t list;
  job_mu : Mutex.t;  (* serializes [run] callers *)
}

let work job =
  let continue = ref true in
  while !continue do
    if Atomic.get job.error <> None then continue := false
    else begin
      let i = Atomic.fetch_and_add job.cursor 1 in
      if i >= job.n then continue := false
      else
        try job.f i
        with e ->
          ignore (Atomic.compare_and_set job.error None (Some e));
          continue := false
    end
  done

let helper_loop t =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mu;
    while (not t.stopping) && (t.generation = !seen || t.current = None) do
      Condition.wait t.cond t.mu
    done;
    if t.stopping then begin
      Mutex.unlock t.mu;
      continue := false
    end
    else begin
      let job = Option.get t.current in
      seen := t.generation;
      job.active <- job.active + 1;
      Mutex.unlock t.mu;
      (try work job with _ -> ());
      Mutex.lock t.mu;
      job.active <- job.active - 1;
      if job.active = 0 then Condition.broadcast t.done_cond;
      Mutex.unlock t.mu
    end
  done

let create ?domains () =
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Workforce.create: domains must be >= 1";
      d
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      domains;
      mu = Mutex.create ();
      cond = Condition.create ();
      done_cond = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      helpers = [];
      job_mu = Mutex.create ();
    }
  in
  t.helpers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> helper_loop t));
  t

let domains t = t.domains

let run t ~n f =
  if n < 0 then invalid_arg "Workforce.run: n must be >= 0";
  if n = 0 then ()
  else begin
    Mutex.lock t.job_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.job_mu)
      (fun () ->
        Mutex.lock t.mu;
        if t.stopping then begin
          Mutex.unlock t.mu;
          invalid_arg "Workforce.run: workforce is shut down"
        end;
        let job =
          { n; f; cursor = Atomic.make 0; error = Atomic.make None; active = 0 }
        in
        t.current <- Some job;
        t.generation <- t.generation + 1;
        Condition.broadcast t.cond;
        Mutex.unlock t.mu;
        (* The caller is one of the workers. *)
        work job;
        (* Wait until every helper that entered this job has left it; late
           helpers that only wake after [current] is cleared never enter. *)
        Mutex.lock t.mu;
        while job.active > 0 do
          Condition.wait t.done_cond t.mu
        done;
        t.current <- None;
        Mutex.unlock t.mu;
        match Atomic.get job.error with Some e -> raise e | None -> ())
  end

let shutdown t =
  Mutex.lock t.mu;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    List.iter Domain.join t.helpers;
    t.helpers <- []
  end
  else Mutex.unlock t.mu
