lib/boolmin/sop.mli: Cube Truth_table
