test/test_falcon.mli:
