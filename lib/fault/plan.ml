module Bs = Ctg_prng.Bitstream
module Sm = Ctg_prng.Splitmix64
module Gate = Ctgauss.Gate

(* ------------------------------------------------------------------ *)
(* Randomness faults                                                   *)
(* ------------------------------------------------------------------ *)

type rng_fault =
  | Stuck_bits of { and_mask : int; or_mask : int }
  | Bias of { p_one : float }
  | Repeat of { period : int }
  | Exhausted

type window = { from_byte : int; until_byte : int option }

let always = { from_byte = 0; until_byte = None }

let from_byte n = { from_byte = n; until_byte = None }

type rng_plan = {
  fault : rng_fault;
  window : window;
  lanes : int list option;
  seed : int64;
}

let rng_plan ?(window = always) ?lanes ~seed fault =
  (match fault with
  | Stuck_bits { and_mask; or_mask } ->
    if and_mask < 0 || and_mask > 0xff || or_mask < 0 || or_mask > 0xff then
      invalid_arg "Plan.rng_plan: masks must be bytes"
  | Bias { p_one } ->
    if not (p_one >= 0. && p_one <= 1.) then
      invalid_arg "Plan.rng_plan: p_one must be in [0,1]"
  | Repeat { period } ->
    if period < 1 then invalid_arg "Plan.rng_plan: period must be >= 1"
  | Exhausted -> ());
  if window.from_byte < 0 then invalid_arg "Plan.rng_plan: window.from_byte";
  (match window.until_byte with
  | Some u when u < window.from_byte ->
    invalid_arg "Plan.rng_plan: empty window"
  | _ -> ());
  { fault; window; lanes; seed }

let applies plan ~lane =
  match plan.lanes with None -> true | Some ls -> List.mem lane ls

let rng_fault_name = function
  | Stuck_bits _ -> "stuck-bits"
  | Bias _ -> "bias"
  | Repeat _ -> "repetition"
  | Exhausted -> "exhaustion"

(* The wrapper is itself a Bitstream (byte-function backend), so anything
   downstream — samplers, health tests, bit accounting — sees the faulty
   flow exactly as it would see a faulty hardware TRNG.  The inner stream
   is always advanced one byte per output byte, so a wrapped lane stays
   aligned with its clean twin outside the fault window. *)
let wrap plan ~lane inner =
  if not (applies plan ~lane) then inner
  else begin
    let pos = ref 0 in
    let sm = Sm.create (Int64.logxor plan.seed (Int64.of_int (0x9e3779b9 * (lane + 1)))) in
    let ring =
      match plan.fault with
      | Repeat { period } -> Array.make period 0
      | _ -> [||]
    in
    let in_window p =
      p >= plan.window.from_byte
      &&
      match plan.window.until_byte with None -> true | Some u -> p < u
    in
    Bs.of_byte_fn (fun () ->
        let b = Bs.next_byte inner in
        let p = !pos in
        incr pos;
        if not (in_window p) then b
        else
          match plan.fault with
          | Stuck_bits { and_mask; or_mask } -> b land and_mask lor or_mask
          | Bias { p_one } ->
            let byte = ref 0 in
            for bit = 0 to 7 do
              if Sm.next_float sm < p_one then byte := !byte lor (1 lsl bit)
            done;
            !byte
          | Repeat { period } ->
            let off = p - plan.window.from_byte in
            if off < period then begin
              ring.(off) <- b;
              b
            end
            else ring.(off mod period)
          | Exhausted -> 0)
  end

let lane_factory ?(backend = Ctg_engine.Stream_fork.Chacha) ?(health = true)
    plan ~seed lane =
  (* Health must ride on the *wrapper*: attached to the inner stream it
     would test the clean bytes and defend nothing. *)
  let inner =
    Ctg_engine.Stream_fork.bitstream ~backend ~health:false ~seed ~lane ()
  in
  let bs = wrap plan ~lane inner in
  if health then
    Bs.attach_health bs
      (Ctg_prng.Health.create ~label:(Printf.sprintf "lane %d" lane) ());
  bs

(* ------------------------------------------------------------------ *)
(* Value faults: biased sampler outputs                                 *)
(* ------------------------------------------------------------------ *)

type value_fault =
  | Center_shift of { delta : float }
  | Variance_deflate of { p : float }
  | Outlier of { p : float; magnitude : int }
  | Sticky of { p : float }

type value_plan = { vfault : value_fault; vseed : int64 }

let value_plan ~seed fault =
  (match fault with
  | Center_shift { delta } ->
    if not (abs_float delta <= 1.0) then
      invalid_arg "Plan.value_plan: |delta| must be <= 1"
  | Variance_deflate { p } | Sticky { p } ->
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Plan.value_plan: p must be in [0,1]"
  | Outlier { p; magnitude } ->
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Plan.value_plan: p must be in [0,1]";
    if magnitude < 1 then invalid_arg "Plan.value_plan: magnitude must be >= 1");
  { vfault = fault; vseed = seed }

let value_fault_name = function
  | Center_shift _ -> "center-shift"
  | Variance_deflate _ -> "variance-deflate"
  | Outlier _ -> "outlier"
  | Sticky _ -> "sticky"

(* A stateful signed-draw corruptor, pure in the plan seed.  Each fault
   realizes a textbook deviation from the symmetric law:
   - Center_shift: add sign(delta) with probability |delta|, so the mean
     moves by exactly delta per draw (the Ratio-attack bias model);
   - Variance_deflate: with probability p, pull a nonzero draw one step
     toward 0 — mean stays 0 by symmetry, the second moment shrinks;
   - Outlier: with probability p, replace the draw with a +-magnitude
     spike (tail-mass / support violation);
   - Sticky: with probability p, replay the previous output (lag-1
     autocorrelation of about p, independence violation). *)
let value_transform plan =
  let sm = Sm.create plan.vseed in
  let prev = ref 0 in
  fun x ->
    match plan.vfault with
    | Center_shift { delta } ->
      if Sm.next_float sm < abs_float delta then
        x + (if delta >= 0.0 then 1 else -1)
      else x
    | Variance_deflate { p } ->
      if x <> 0 && Sm.next_float sm < p then
        if x > 0 then x - 1 else x + 1
      else x
    | Outlier { p; magnitude } ->
      if Sm.next_float sm < p then
        (if Sm.next_float sm < 0.5 then magnitude else -magnitude)
      else x
    | Sticky { p } ->
      if Sm.next_float sm < p then !prev
      else begin
        prev := x;
        x
      end

(* ------------------------------------------------------------------ *)
(* Gate-table corruption                                               *)
(* ------------------------------------------------------------------ *)

type gate_corruption = {
  index : int;
  before : Gate.instr;
  after : Gate.instr;
}

(* Structure-preserving opcode flips: every mutated instruction still
   references only already-defined registers, so {!Gate.validate} stays
   satisfied and only a *semantic* defense (the KAT, BDD equivalence) can
   tell.  This mirrors the single-event-upset model: one control bit of
   one gate decodes as a different operation. *)
let flip_instr = function
  | Gate.And (a, b) -> Gate.Or (a, b)
  | Gate.Or (a, b) -> Gate.Xor (a, b)
  | Gate.Xor (a, b) -> Gate.And (a, b)
  | Gate.Not r -> Gate.Xor (r, r)
  | Gate.Const b -> Gate.Const (not b)

let corrupt_program ~seed ~flips (p : Gate.t) =
  if flips < 1 then invalid_arg "Plan.corrupt_program: flips must be >= 1";
  let n = Array.length p.Gate.instrs in
  if n = 0 then invalid_arg "Plan.corrupt_program: empty program";
  let sm = Sm.create seed in
  let rec pick acc k =
    if k = 0 then acc
    else
      let i = Sm.next_int sm n in
      if List.exists (fun c -> c.index = i) acc then pick acc k
      else
        let before = p.Gate.instrs.(i) in
        let after = flip_instr before in
        pick ({ index = i; before; after } :: acc) (k - 1)
  in
  let corruptions = pick [] (min flips n) in
  List.iter (fun c -> p.Gate.instrs.(c.index) <- c.after) corruptions;
  corruptions

let restore_program (p : Gate.t) corruptions =
  List.iter (fun c -> p.Gate.instrs.(c.index) <- c.before) corruptions

(* ------------------------------------------------------------------ *)
(* Worker faults                                                       *)
(* ------------------------------------------------------------------ *)

type worker_fault =
  | Kill of { chunk : int }
  | Hang of { chunk : int; seconds : float }
  | Fail of { chunk : int; error : exn }

(* Each fault fires exactly once over the hook's lifetime.  One-shot
   matters for [Kill]: the orphaned chunk is re-claimed with [attempt = 0]
   by another domain, and a level-triggered hook would kill that domain
   too, every respawn after it, and finally the whole job. *)
let pool_hook faults =
  let armed = Array.map (fun f -> (f, Atomic.make true)) (Array.of_list faults) in
  fun ~chunk ~lane:_ ~attempt:_ ->
    Array.iter
      (fun (f, live) ->
        let matches =
          match f with
          | Kill { chunk = c } | Hang { chunk = c; _ } | Fail { chunk = c; _ }
            -> c = chunk
        in
        if matches && Atomic.compare_and_set live true false then
          match f with
          | Kill _ -> raise Ctg_engine.Pool.Kill_worker
          | Hang { seconds; _ } -> Unix.sleepf seconds
          | Fail { error; _ } -> raise error)
      armed

(* ------------------------------------------------------------------ *)
(* Signing faults                                                      *)
(* ------------------------------------------------------------------ *)

(* Flip [bits] low-order coefficient bits of s2 on the first attempt only:
   the retry (fresh salt) then computes clean, so a correct
   verify-after-sign loop both *detects* the corruption and still
   *delivers* a valid signature. *)
let sign_hook ~seed ~bits =
  if bits < 1 then invalid_arg "Plan.sign_hook: bits must be >= 1";
  let fired = Atomic.make false in
  fun ~attempt:_ ~s1 ~s2 ->
    if Atomic.compare_and_set fired false true then begin
      let sm = Sm.create seed in
      let s2 = Array.copy s2 in
      for _ = 1 to bits do
        let i = Sm.next_int sm (Array.length s2) in
        s2.(i) <- s2.(i) lxor (1 lsl Sm.next_int sm 4)
      done;
      (s1, s2)
    end
    else (s1, s2)
