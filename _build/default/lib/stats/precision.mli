(** Precision-requirement analysis — the research direction the paper's
    Sec. 7 calls out: use Rényi-divergence / max-log arguments (Prest;
    Micciancio-Walter) instead of statistical distance to justify fewer
    probability bits, and hence fewer random bits per sample.

    All distances are computed exactly on the bignum probability tables
    and reported as log2 (a float like [-131.2]); doubles would underflow
    long before the interesting range. *)

type report = {
  precision : int;  (** n of the reduced table. *)
  log2_sd : float;
      (** log2 of the statistical distance to the reference table,
          including the never-terminating residual mass difference. *)
  log2_max_log : float;
      (** log2 of the max-log distance max_v |ln p_n(v) − ln p_ref(v)|,
          over the rows the n-bit sampler can actually output; rows
          rounded to zero at n bits show up in [log2_sd] instead. *)
  bits_per_sample : int;  (** Random bits per sample: n + sign. *)
}

val compare_tables :
  sigma:string -> tail_cut:int -> reference:int -> int -> report
(** [compare_tables ~sigma ~tail_cut ~reference n] measures the n-bit
    table against the [reference]-bit one (reference > n). *)

val sweep :
  sigma:string -> tail_cut:int -> reference:int -> int list -> report list

val sd_target : lambda:int -> log2_total_samples:int -> float
(** Classic statistical-distance argument: [2^log2_total_samples] samples
    ever drawn, distinguishing advantage below [2^-lambda], needs per-
    sample SD below the returned log2 value:
    [-(lambda + log2_total_samples)]. *)

val max_log_target : lambda:int -> log2_total_samples:int -> float
(** Max-log / Rényi argument (Prest, ASIACRYPT 2017, simplified): a
    max-log distance δ over Q samples costs ≈ Q·δ² of advantage, so
    [log2 δ = -(lambda + log2_total_samples) / 2] suffices — half the
    bits of the SD argument. *)

val minimal_precision : report list -> target_log2:float -> which:[ `Sd | `Max_log ] -> int option
(** Smallest swept precision whose measured distance is at or below the
    target. *)

val pp_report : Format.formatter -> report -> unit
