module Obs = Ctg_obs
module Jsonx = Ctg_obs.Jsonx
module Pool = Ctg_engine.Pool

type t = {
  drift : Drift.t;
  leak : Leak.t option;
  mutable pools : Pool.t list;  (* for CT-monitor and degradation verdicts *)
  mutable checks : (string * (unit -> string option)) list;
      (* custom named probes (e.g. the daemon's GC pause budget) *)
}

let create ?config ?registry ?labels ?leak ~matrix () =
  {
    drift = Drift.create ?config ?registry ?labels ~matrix ();
    leak;
    pools = [];
    checks = [];
  }

let add_check t ~name probe = t.checks <- t.checks @ [ (name, probe) ]

let failing_checks t =
  List.filter_map
    (fun (name, probe) ->
      match (try probe () with _ -> Some "check raised") with
      | Some reason -> Some (name, reason)
      | None -> None)
    t.checks

let drift t = t.drift
let leak t = t.leak

let attach_pool t pool =
  t.pools <- pool :: t.pools;
  Pool.add_chunk_observer pool (fun ~chunk:_ ~lane:_ samples ->
      Drift.observe t.drift samples)

type verdict = Healthy | Failing of string list

let verdict t =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let alarms = Drift.alarms t.drift in
  if alarms > 0 then fail "drift: %d window alarm(s)" alarms;
  (match t.leak with
  | None -> ()
  | Some l ->
    let r = Leak.report l in
    if r.Ctg_ctcheck.Dudect.leaky then
      fail "leak: |t|=%.2f over threshold" (abs_float r.Ctg_ctcheck.Dudect.t_statistic));
  List.iteri
    (fun i pool ->
      let v = Obs.Ctmon.violations (Pool.ctmon pool) in
      if v > 0 then fail "ct: pool %d has %d violation(s)" i v;
      if Pool.degraded pool then fail "degraded: pool %d serves the CDT fallback" i)
    (List.rev t.pools);
  List.iter (fun (name, reason) -> fail "%s: %s" name reason) (failing_checks t);
  match List.rev !failures with [] -> Healthy | fs -> Failing fs

let healthy t = match verdict t with Healthy -> true | Failing _ -> false

(* Short monitor names for the /healthz body: which monitor is failing,
   without parsing the human-readable failure strings. *)
let failing_monitors t =
  let names = ref [] in
  let add n = if not (List.mem n !names) then names := n :: !names in
  if Drift.alarms t.drift > 0 then add "drift";
  (match t.leak with
  | Some l when (Leak.report l).Ctg_ctcheck.Dudect.leaky -> add "leak"
  | _ -> ());
  List.iter
    (fun pool ->
      if Obs.Ctmon.violations (Pool.ctmon pool) > 0 then add "ct";
      if Pool.degraded pool then add "degraded")
    t.pools;
  List.iter (fun (name, _) -> add name) (failing_checks t);
  List.rev !names

let healthz_json t =
  let v = verdict t in
  let leak_json =
    match t.leak with
    | None -> Jsonx.Null
    | Some l ->
      let r = Leak.report l in
      Jsonx.Obj
        [
          ("t", Num r.Ctg_ctcheck.Dudect.t_statistic);
          ("leaky", Bool r.Ctg_ctcheck.Dudect.leaky);
          ("measurements", Num (float_of_int (Leak.count l)));
        ]
  in
  let pools_json =
    Jsonx.List
      (List.rev_map
         (fun pool ->
           Jsonx.Obj
             [
               ("ct_violations",
                Num (float_of_int (Obs.Ctmon.violations (Pool.ctmon pool))));
               ("fallback_batches",
                Num (float_of_int (Obs.Ctmon.fallback_batches (Pool.ctmon pool))));
               ("degraded", Bool (Pool.degraded pool));
             ])
         t.pools)
  in
  Jsonx.Obj
    [
      ("status", Str (match v with Healthy -> "ok" | Failing _ -> "failing"));
      ( "failures",
        List (match v with Healthy -> [] | Failing fs -> List.map (fun f -> Jsonx.Str f) fs) );
      ( "failing_monitors",
        List (List.map (fun n -> Jsonx.Str n) (failing_monitors t)) );
      ( "first_alarm_window",
        match Drift.first_alarm t.drift with
        | None -> Jsonx.Null
        | Some r -> Drift.result_json r );
      ( "drift",
        Obj
          [
            ("samples", Num (float_of_int (Drift.samples t.drift)));
            ("windows", Num (float_of_int (Drift.windows t.drift)));
            ("alarms", Num (float_of_int (Drift.alarms t.drift)));
            ( "last",
              match Drift.last t.drift with
              | None -> Jsonx.Null
              | Some r -> Drift.result_json r );
          ] );
      ("leak", leak_json);
      ("pools", pools_json);
    ]

let drift_json t =
  Jsonx.Obj
    [
      ("samples", Num (float_of_int (Drift.samples t.drift)));
      ("windows", Num (float_of_int (Drift.windows t.drift)));
      ("alarms", Num (float_of_int (Drift.alarms t.drift)));
      ("results", List (List.map Drift.result_json (Drift.results t.drift)));
    ]

let routes t ~registry =
  [
    ( "/metrics",
      fun () ->
        Obs.Http.response
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (Obs.Registry.expose_text registry) );
    ( "/healthz",
      fun () ->
        Obs.Http.response
          ~status:(if healthy t then 200 else 503)
          ~content_type:"application/json"
          (Jsonx.pretty (healthz_json t) ^ "\n") );
    ( "/drift.json",
      fun () ->
        Obs.Http.response ~content_type:"application/json"
          (Jsonx.pretty (drift_json t) ^ "\n") );
  ]
