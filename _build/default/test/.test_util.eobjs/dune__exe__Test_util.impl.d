test/test_util.ml: Alcotest Array Bytes Ctg_util Gen List QCheck QCheck_alcotest Test
