(** High-precision [e^-x] for the Gaussian weight ρ_σ(v) = e^(-v²/2σ²).

    The computation uses argument reduction (halve [x] until it is below 1),
    an alternating Taylor series evaluated in fixed point, and repeated
    squaring to undo the reduction.  With [g] guard bits the result is
    accurate to within a few units in the last place of the target
    precision; callers should allocate ~96 guard bits (see DESIGN.md). *)

val exp_neg : Fixed.t -> Fixed.t
(** [exp_neg x] is [e^-x] at the precision of [x], for [x >= 0]. *)

val taylor_terms : int ref
(** Diagnostic: number of Taylor terms used by the last call. *)
