(* Tests for the ctg_rtev Runtime_events consumer: the pure pause decoder
   (driven by a synthetic feed — runtime timestamps cannot be fabricated),
   live forced-GC capture from the process's own ring, per-domain
   attribution, trace injection on the synthetic per-domain tracks,
   custom span round-trips and the pause budget. *)

module Obs = Ctg_obs
module Registry = Ctg_obs.Registry
module Trace = Ctg_obs.Trace
module Rtev = Ctg_rtev.Rtev
module Decode = Ctg_rtev.Rtev.Decode

(* --------------------------------------------------------------------- *)
(* Decode: synthetic event feeds *)

let begin_gc d ~ring ~ts phase =
  Decode.on_begin d ~ring ~ts_ns:ts ~phase ~cls:Decode.Gc

let begin_minor d ~ring ~ts phase =
  Decode.on_begin d ~ring ~ts_ns:ts ~phase ~cls:Decode.Minor

let test_decode_flat_pause () =
  let d = Decode.create () in
  begin_gc d ~ring:0 ~ts:100 "stw_leader";
  match Decode.on_end d ~ring:0 ~ts_ns:350 with
  | None -> Alcotest.fail "expected a pause"
  | Some p ->
    Alcotest.(check int) "ring" 0 p.Decode.ring;
    Alcotest.(check int) "start" 100 p.Decode.start_ns;
    Alcotest.(check int) "duration" 250 p.Decode.dur_ns;
    Alcotest.(check bool) "not minor" false p.Decode.minor;
    Alcotest.(check string) "phase" "stw_leader" p.Decode.phase

let test_decode_nesting () =
  (* Only the depth-0 end yields a pause; the whole nest is one pause and
     a minor phase anywhere inside marks it minor. *)
  let d = Decode.create () in
  begin_gc d ~ring:0 ~ts:1_000 "stw_leader";
  begin_minor d ~ring:0 ~ts:1_100 "minor";
  begin_gc d ~ring:0 ~ts:1_200 "minor_local_roots";
  Alcotest.(check (option reject)) "inner end is silent" None
    (Option.map ignore (Decode.on_end d ~ring:0 ~ts_ns:1_300));
  Alcotest.(check (option reject)) "second inner end is silent" None
    (Option.map ignore (Decode.on_end d ~ring:0 ~ts_ns:1_400));
  match Decode.on_end d ~ring:0 ~ts_ns:2_000 with
  | None -> Alcotest.fail "expected the top-level pause"
  | Some p ->
    Alcotest.(check int) "spans the whole nest" 1_000 p.Decode.dur_ns;
    Alcotest.(check bool) "minor seen inside" true p.Decode.minor;
    Alcotest.(check string) "top-level phase name" "stw_leader" p.Decode.phase

let test_decode_excluded () =
  (* A condition wait is a top-level runtime phase but not a pause. *)
  let d = Decode.create () in
  Decode.on_begin d ~ring:0 ~ts_ns:10 ~phase:"condition_wait"
    ~cls:Decode.Excluded;
  Alcotest.(check (option reject)) "excluded span dropped" None
    (Option.map ignore (Decode.on_end d ~ring:0 ~ts_ns:500_000));
  (* The next top-level span decodes normally. *)
  begin_gc d ~ring:0 ~ts:600 "stw_leader";
  match Decode.on_end d ~ring:0 ~ts_ns:700 with
  | None -> Alcotest.fail "pause after excluded span lost"
  | Some p -> Alcotest.(check int) "duration" 100 p.Decode.dur_ns

let test_decode_classify () =
  let open Runtime_events in
  Alcotest.(check bool) "EV_MINOR is minor" true
    (Decode.classify EV_MINOR = Decode.Minor);
  Alcotest.(check bool) "EV_EXPLICIT_GC_MINOR is minor" true
    (Decode.classify EV_EXPLICIT_GC_MINOR = Decode.Minor);
  Alcotest.(check bool) "condition wait excluded" true
    (Decode.classify EV_DOMAIN_CONDITION_WAIT = Decode.Excluded);
  Alcotest.(check bool) "Gc.set excluded" true
    (Decode.classify EV_EXPLICIT_GC_SET = Decode.Excluded);
  Alcotest.(check bool) "major slice counts as gc" true
    (Decode.classify EV_MAJOR = Decode.Gc)

let test_decode_multi_ring () =
  (* Interleaved rings decode independently: ring 1's span nests inside
     ring 0's timeline but they are separate pauses. *)
  let d = Decode.create () in
  begin_gc d ~ring:0 ~ts:100 "stw_leader";
  begin_minor d ~ring:1 ~ts:150 "minor";
  let p1 =
    match Decode.on_end d ~ring:1 ~ts_ns:250 with
    | Some p -> p
    | None -> Alcotest.fail "ring 1 pause missing"
  in
  let p0 =
    match Decode.on_end d ~ring:0 ~ts_ns:400 with
    | Some p -> p
    | None -> Alcotest.fail "ring 0 pause missing"
  in
  Alcotest.(check int) "ring 1 attribution" 1 p1.Decode.ring;
  Alcotest.(check int) "ring 1 duration" 100 p1.Decode.dur_ns;
  Alcotest.(check bool) "ring 1 minor" true p1.Decode.minor;
  Alcotest.(check int) "ring 0 attribution" 0 p0.Decode.ring;
  Alcotest.(check int) "ring 0 duration" 300 p0.Decode.dur_ns;
  Alcotest.(check bool) "ring 0 not minor" false p0.Decode.minor

let test_decode_lost_events () =
  (* A lost-events notification mid-span drops the half-observed pause
     (its duration can no longer be trusted) and the orphaned end. *)
  let d = Decode.create () in
  begin_gc d ~ring:0 ~ts:100 "stw_leader";
  Decode.on_lost d ~ring:0;
  Alcotest.(check (option reject)) "orphaned end dropped" None
    (Option.map ignore (Decode.on_end d ~ring:0 ~ts_ns:900));
  (* Ring 1 is untouched by ring 0's overflow. *)
  begin_gc d ~ring:1 ~ts:100 "stw_leader";
  (match Decode.on_end d ~ring:1 ~ts_ns:300 with
  | Some p -> Alcotest.(check int) "other ring unaffected" 200 p.Decode.dur_ns
  | None -> Alcotest.fail "ring 1 pause lost");
  (* And ring 0 recovers on the next complete span. *)
  begin_gc d ~ring:0 ~ts:1_000 "stw_leader";
  match Decode.on_end d ~ring:0 ~ts_ns:1_500 with
  | Some p -> Alcotest.(check int) "recovered" 500 p.Decode.dur_ns
  | None -> Alcotest.fail "ring 0 did not recover"

let test_decode_unmatched_end () =
  (* An end whose begin predates the cursor cannot be timed. *)
  let d = Decode.create () in
  Alcotest.(check (option reject)) "cold end dropped" None
    (Option.map ignore (Decode.on_end d ~ring:3 ~ts_ns:500));
  (* Zero- and negative-duration spans are dropped too. *)
  begin_gc d ~ring:3 ~ts:500 "stw_leader";
  Alcotest.(check (option reject)) "zero duration dropped" None
    (Option.map ignore (Decode.on_end d ~ring:3 ~ts_ns:500))

(* --------------------------------------------------------------------- *)
(* Live capture from the process's own ring *)

let churn () =
  (* Allocation pressure (minor collections) plus one compaction (a
     guaranteed stop-the-world major pause). *)
  let keep = ref [] in
  for i = 0 to 300 do
    keep := Array.make 1024 i :: !keep;
    if i mod 50 = 0 then keep := []
  done;
  ignore (Sys.opaque_identity !keep);
  Gc.compact ()

let test_live_forced_gc_capture () =
  let registry = Registry.create () in
  Alcotest.(check bool) "consumer starts" true
    (Rtev.start ~registry ());
  Rtev.reset_stats ();
  churn ();
  ignore (Rtev.poll ());
  Alcotest.(check bool) "decoded at least one pause" true
    (Rtev.pause_count () > 0);
  Alcotest.(check bool) "pause durations are nonzero" true
    (Rtev.total_pause_ns () > 0);
  Alcotest.(check bool) "max <= total" true
    (Rtev.max_pause_ns () <= Rtev.total_pause_ns ());
  Alcotest.(check bool) "max is nonzero" true (Rtev.max_pause_ns () > 0);
  (* The registry mirrors the counters: aggregate histogram count matches
     since reset_stats zeroed counters right after binding. *)
  let agg = Registry.histo_summary (Registry.histo registry "gc_pause_ns") in
  Alcotest.(check bool) "registry histogram fed" true
    (agg.Obs.Histo.count > 0);
  Alcotest.(check bool) "registry max nonzero" true (agg.Obs.Histo.max > 0);
  (* Per-ring attribution adds up to the aggregate. *)
  let stats = Rtev.domain_stats () in
  Alcotest.(check bool) "per-ring stats exist" true (stats <> []);
  let sum = List.fold_left (fun a d -> a + d.Rtev.pauses) 0 stats in
  Alcotest.(check int) "ring pauses sum to total" (Rtev.pause_count ()) sum;
  let total = List.fold_left (fun a d -> a + d.Rtev.total_ns) 0 stats in
  Alcotest.(check int) "ring ns sum to total" (Rtev.total_pause_ns ()) total

let test_live_multi_domain_attribution () =
  let registry = Registry.create () in
  Alcotest.(check bool) "consumer starts" true (Rtev.start ~registry ());
  Rtev.reset_stats ();
  (* Two extra domains churn concurrently with the main one: their minor
     collections land on their own rings. *)
  let workers =
    Array.init 2 (fun _ -> Domain.spawn (fun () -> churn ()))
  in
  churn ();
  Array.iter Domain.join workers;
  ignore (Rtev.poll ());
  let stats = Rtev.domain_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "pauses attributed to >= 2 rings (saw %d)"
       (List.length stats))
    true
    (List.length stats >= 2);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "ring %d total covers its max" d.Rtev.ring)
        true
        (d.Rtev.total_ns >= d.Rtev.max_ns && d.Rtev.max_ns > 0))
    stats

let test_live_trace_injection () =
  let registry = Registry.create () in
  Trace.reset ();
  Trace.enable ();
  Alcotest.(check bool) "consumer starts with trace" true
    (Rtev.start ~registry ~trace:true ());
  Rtev.reset_stats ();
  churn ();
  ignore (Rtev.poll ());
  (* One more poll: injection may have waited on the clock-sync offset. *)
  ignore (Rtev.poll ());
  Trace.disable ();
  let gc_spans =
    List.filter
      (fun e -> e.Trace.cat = "gc" && e.Trace.ph = Trace.Complete)
      (Trace.events ())
  in
  Alcotest.(check bool) "GC pause spans injected" true (gc_spans <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "synthetic per-domain track" true (e.Trace.tid >= 1000);
      Alcotest.(check bool) "positive duration" true (e.Trace.dur_ns > 0);
      Alcotest.(check bool) "gc: name prefix" true
        (String.length e.Trace.name > 3 && String.sub e.Trace.name 0 3 = "gc:"))
    gc_spans;
  (* The wall-clock offset mapped runtime timestamps into the Obs clock:
     spans must land within the last few minutes, not at monotonic 0. *)
  let now = Obs.Clock.now_ns () in
  List.iter
    (fun e ->
      Alcotest.(check bool) "timestamp on the Obs clock" true
        (abs (now - e.Trace.ts_ns) < 600 * 1_000_000_000))
    gc_spans

let test_live_custom_span_roundtrip () =
  let registry = Registry.create () in
  Trace.reset ();
  Trace.enable ();
  Alcotest.(check bool) "consumer starts" true (Rtev.start ~registry ());
  Rtev.enable_custom_spans ();
  Trace.with_span "rtev_probe" (fun () ->
      Trace.with_span "rtev_inner" (fun () -> ()));
  ignore (Rtev.poll ());
  Rtev.disable_custom_spans ();
  Trace.disable ();
  let counts = Rtev.custom_span_counts () in
  let count name =
    match List.assoc_opt name counts with Some n -> n | None -> 0
  in
  (* Begin + end for each span; both came back through the ring. *)
  Alcotest.(check int) "outer span round-trips" 2 (count "ctg.rtev_probe");
  Alcotest.(check int) "inner span round-trips" 2 (count "ctg.rtev_inner")

let test_live_pause_budget () =
  let registry = Registry.create () in
  Alcotest.(check bool) "consumer starts" true (Rtev.start ~registry ());
  Rtev.reset_stats ();
  (* A 1 ns budget: any real pause breaches it. *)
  Rtev.set_pause_budget_ns (Some 1);
  churn ();
  ignore (Rtev.poll ());
  Rtev.set_pause_budget_ns None;
  Alcotest.(check bool) "breaches recorded" true (Rtev.budget_breaches () > 0);
  Alcotest.(check bool) "breach counter in registry" true
    (Registry.value
       (Registry.counter registry "gc_pause_budget_breaches_total")
     > 0);
  (* reset_stats clears the glue counters. *)
  Rtev.reset_stats ();
  Alcotest.(check int) "breaches reset" 0 (Rtev.budget_breaches ());
  Alcotest.(check int) "pauses reset" 0 (Rtev.pause_count ());
  Alcotest.(check (list reject)) "rings reset" [] (Rtev.domain_stats ())

let test_pause_source_counts_up () =
  let registry = Registry.create () in
  Alcotest.(check bool) "consumer starts" true (Rtev.start ~registry ());
  Rtev.reset_stats ();
  let before = Rtev.pause_source_value () in
  churn ();
  let after = Rtev.pause_source_value () in
  (* pause_source_value polls opportunistically, so the compaction in
     [churn] must be visible without an explicit poll. *)
  Alcotest.(check bool) "pause time advanced across a compaction" true
    (after > before)

(* --------------------------------------------------------------------- *)

let () =
  let live name f = Alcotest.test_case name `Quick f in
  Alcotest.run "rtev"
    [
      ( "decode",
        [
          Alcotest.test_case "flat pause" `Quick test_decode_flat_pause;
          Alcotest.test_case "nesting" `Quick test_decode_nesting;
          Alcotest.test_case "excluded phases" `Quick test_decode_excluded;
          Alcotest.test_case "phase classification" `Quick test_decode_classify;
          Alcotest.test_case "multi-ring interleave" `Quick
            test_decode_multi_ring;
          Alcotest.test_case "lost events reset" `Quick
            test_decode_lost_events;
          Alcotest.test_case "unmatched end" `Quick test_decode_unmatched_end;
        ] );
      ( "live",
        [
          live "forced-GC capture" test_live_forced_gc_capture;
          live "multi-domain attribution" test_live_multi_domain_attribution;
          live "trace injection" test_live_trace_injection;
          live "custom span round-trip" test_live_custom_span_roundtrip;
          live "pause budget" test_live_pause_budget;
          live "opportunistic pause source" test_pause_source_counts_up;
        ] );
    ]
