type leaf = {
  value : int;
  level : int;
  bits : bool array;
  ones : int;
  payload : int;
}

type t = {
  matrix : Matrix.t;
  leaves : leaf array;
  delta : int;
  max_ones : int;
  unresolved : int;
}

(* Walk all paths level by level.  The number of simultaneously internal
   nodes is bounded by support + 2 (the unresolved probability mass at
   level i is below (support+2)·2^-(i+1)), so this is linear in
   precision · support despite the tree's exponential node count. *)
let enumerate (m : Matrix.t) =
  let leaves = ref [] in
  let internal = ref [| [||] |] (* paths of internal nodes, root only *) in
  for col = 0 to m.Matrix.precision - 1 do
    let h = m.Matrix.col_weight.(col) in
    let next = ref [] in
    let parents = !internal in
    (* Child d = 2m + b of parent m; leaf iff d < h. *)
    for p = Array.length parents - 1 downto 0 do
      for b = 1 downto 0 do
        let d = (2 * p) + b in
        let path = Array.append parents.(p) [| b = 1 |] in
        if d < h then begin
          let value = Matrix.row_for m ~col ~rank:d in
          (* Theorem 1: [ones <= col] always (an all-ones leaf string is
             impossible); check_theorem1 verifies rather than clamps. *)
          let ones = Ctg_util.Bits.leading_ones path in
          leaves :=
            { value; level = col; bits = path; ones; payload = col - ones }
            :: !leaves
        end
        else next := (d - h, path) :: !next
      done
    done;
    let next = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) !next in
    internal := Array.of_list (List.map snd next)
  done;
  let unresolved = Array.length !internal in
  let leaf_list =
    List.sort
      (fun a b ->
        if a.ones <> b.ones then Stdlib.compare a.ones b.ones
        else if a.level <> b.level then Stdlib.compare a.level b.level
        else Stdlib.compare a.bits b.bits)
      !leaves
  in
  let leaves = Array.of_list leaf_list in
  let delta = Array.fold_left (fun acc l -> max acc l.payload) 0 leaves in
  let max_ones = Array.fold_left (fun acc l -> max acc l.ones) 0 leaves in
  { matrix = m; leaves; delta; max_ones; unresolved }

let check_theorem1 t =
  Array.for_all
    (fun l -> Array.exists (fun b -> not b) l.bits)
    t.leaves

let sample_bit leaf i = (leaf.value lsr i) land 1 = 1

let pp_list ?max_rows fmt t =
  let n = t.matrix.Matrix.precision in
  let rows =
    match max_rows with
    | None -> Array.length t.leaves
    | Some r -> min r (Array.length t.leaves)
  in
  let value_bits =
    max 1 (Ctg_util.Bits.bits_needed t.matrix.Matrix.support)
  in
  for i = 0 to rows - 1 do
    let l = t.leaves.(i) in
    (* Paper order: b_0 is the rightmost character ("LSB"). *)
    let buf = Buffer.create n in
    for pos = n - 1 downto 0 do
      if pos > l.level then Buffer.add_char buf 'x'
      else Buffer.add_char buf (if l.bits.(pos) then '1' else '0')
    done;
    let vbuf = Buffer.create value_bits in
    for pos = value_bits - 1 downto 0 do
      Buffer.add_char vbuf (if sample_bit l pos then '1' else '0')
    done;
    Format.fprintf fmt "%s -> %s (v=%d, k=%d, j=%d)@." (Buffer.contents buf)
      (Buffer.contents vbuf) l.value l.ones l.payload
  done;
  if rows < Array.length t.leaves then
    Format.fprintf fmt "... (%d more)@." (Array.length t.leaves - rows)
