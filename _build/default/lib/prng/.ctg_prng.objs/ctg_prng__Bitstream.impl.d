lib/prng/bitstream.ml: Array Bytes Chacha20 Char Int64 Keccak Splitmix64
