(** Bit-level helpers shared across the code base.

    Bit-string convention (follows the paper, Sec. 3): a random bit string is
    stored as a [bool array] where index 0 holds [b_0], the {e first} bit
    consumed by the Knuth-Yao random walk.  "Trailing ones from the LSB" in
    the paper therefore means a prefix of ones at the low indices here. *)

val popcount : int -> int
(** Number of set bits in a native integer (all 63 value bits). *)

val popcount64 : int64 -> int
(** Number of set bits in an [int64]. *)

val bits_needed : int -> int
(** [bits_needed v] is the minimal number of bits that can represent
    [v >= 0]; [bits_needed 0 = 0]. *)

val get_bit : bytes -> int -> int
(** [get_bit buf i] extracts bit [i] of a byte buffer, bit 0 being the least
    significant bit of byte 0. *)

val set_bit : bytes -> int -> int -> unit
(** [set_bit buf i v] sets bit [i] of [buf] to [v land 1]. *)

val leading_ones : bool array -> int
(** Length of the prefix of [true] values (the paper's [k], counted in
    consumption order). *)

val string_of_bits : bool array -> string
(** Render as ['0'/'1'] characters, index 0 first. *)

val bits_of_string : string -> bool array
(** Inverse of {!string_of_bits}; accepts only ['0'], ['1'] and ['x'] (the
    latter parsed as [false]). *)

val int_of_bits_be : bool array -> int
(** Paper's reversed evaluation: index 0 is the most significant bit. *)
