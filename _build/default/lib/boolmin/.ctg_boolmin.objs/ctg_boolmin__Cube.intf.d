lib/boolmin/cube.mli:
