(** Instrumentation-overhead benchmark: what does the observability layer
    cost on the batch-sampling hot path?

    Three single-domain fill loops over the same compiled sampler:

    - {e plain} — the uninstrumented loop (what [Pool.run_chunk] did
      before the obs layer existed: draw, blit, repeat);
    - {e metered} — the production loop: per-batch CT bit-checks with
      plain field reads, metrics/ctmon folded into the registry once per
      chunk, tracing compiled in but disabled;
    - {e traced} — the metered loop with span recording enabled.

    The loops run as paired passes — every pass index runs all three
    back-to-back on the same fork lane, with a [Gc.full_major] before
    each timed pass — and each loop reports its {e median} pass time, so
    host-speed noise, stream-dependent fallback work and inherited GC
    debt cancel instead of masquerading as overhead.  The acceptance
    budget is [metered <= plain × (1 + threshold_pct/100)]. *)

type entry = {
  sigma : string;
  precision : int;
  gates : int;
  samples : int;  (** Samples per timing window. *)
  plain_ns : float;  (** ns per sample, uninstrumented loop. *)
  metered_ns : float;  (** ns per sample, metrics + CT monitor. *)
  traced_ns : float;  (** ns per sample, with span recording on. *)
  overhead_pct : float;  (** [(metered - plain) / plain × 100]. *)
  traced_overhead_pct : float;
  ct_violations : int;  (** Must be 0 for the bitsliced samplers. *)
  fallback_batches : int;
  entropy_bits_per_sample : float;
}

val threshold_pct : float
(** Acceptance budget for [overhead_pct]: 2.0. *)

val default_set : (string * int) list
(** The Table-2 σ set as [(sigma, precision)]: σ ∈ {1, 2, 6.15543} at the
    Falcon precision 128 and σ = 215 at precision 16 (its 128-bit
    enumeration has ~112k leaves — the compile, not the measurement, is
    infeasible in a smoke run; 16 bits already gives a 5k-gate program). *)

val measure :
  ?samples:int -> ?rounds:int -> ?min_time:float -> sigma:string ->
  precision:int -> tail_cut:int -> unit -> entry
(** [samples] sizes one fill-loop pass (default 63 × 1000); paired
    passes repeat until at least 5 groups have run and [rounds] ×
    [min_time] seconds (defaults 5 × 0.25) have elapsed; each loop
    reports its median pass. *)

val run :
  ?samples:int -> ?rounds:int -> ?min_time:float -> ?set:(string * int) list ->
  unit -> entry list
(** [measure] over [set] (default {!default_set}) at tail cut 13. *)

val ok : entry list -> bool
(** Every entry within {!threshold_pct} and zero CT violations. *)

val paired_ns :
  rounds:int ->
  min_time:float ->
  samples:int ->
  (bool * (lane:int -> unit)) array ->
  float array
(** The paired-pass median-of-ratios estimator, exposed for other
    overhead gates (the fault-defense bench reuses it verbatim).  Each
    group runs every loop back-to-back with a [Gc.full_major] before each
    timed pass, handing loops the group's {!Stream_fork} lane index so
    all arms consume the same underlying randomness; loop [i]'s result is
    loop 0's median ns/sample scaled by the median of the within-group
    ratios [t_i / t_0].  The [bool] enables span tracing for that loop. *)

val to_json : entry list -> Ctg_obs.Jsonx.t
val save : string -> entry list -> unit
val pp_entry : Format.formatter -> entry -> unit
