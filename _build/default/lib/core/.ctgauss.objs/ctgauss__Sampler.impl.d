lib/core/sampler.ml: Array Bitslice Compile Compile_simple Ctg_kyao Ctg_prng Ctg_util Gate Sublist
