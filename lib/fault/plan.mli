(** Fault-injection plans: seeded, reproducible models of the faults the
    hardened pipeline claims to survive.

    Four fault surfaces, mirroring the threat table in DESIGN.md §9:

    - {e randomness}: a wrapped {!Ctg_prng.Bitstream} whose byte flow is
      corrupted inside an activation window — stuck bits, bias, a
      repeating source, total exhaustion.  The SP 800-90B health tests
      ({!Ctg_prng.Health}) are the matching defense.
    - {e gate tables}: in-place, structure-preserving opcode flips in a
      compiled {!Ctgauss.Gate} program (the single-event-upset model).
      The {!Ctg_engine.Selftest} KAT and {!Ctg_analysis.Equiv} BDD proofs
      are the defenses.
    - {e workers}: killing, hanging or failing a {!Ctg_engine.Pool} domain
      at a chunk boundary, through the pool's fault hook.  Supervision
      (retry, respawn, stall watchdog) is the defense.
    - {e signing}: corrupting signature coefficients between computation
      and output checks.  Verify-after-sign is the defense.

    Every plan is a pure function of its [seed], so a chaos run's printed
    seed reproduces the exact fault sequence. *)

(** {1 Randomness faults} *)

type rng_fault =
  | Stuck_bits of { and_mask : int; or_mask : int }
      (** [byte land and_mask lor or_mask] — e.g. [{and_mask = 0;
          or_mask = 0xff}] is a line stuck at one. *)
  | Bias of { p_one : float }
      (** Each bit independently one with probability [p_one] (drawn from
          the plan's own Splitmix stream — still reproducible). *)
  | Repeat of { period : int }
      (** The first [period] in-window bytes replay forever. *)
  | Exhausted  (** The source dies: zeros from the window start. *)

type window = { from_byte : int; until_byte : int option }
(** Byte positions (per lane) where the fault is active. *)

val always : window

val from_byte : int -> window
(** Active from byte [n] on — "mid-batch" onset. *)

type rng_plan

val rng_plan : ?window:window -> ?lanes:int list -> seed:int64 -> rng_fault -> rng_plan
(** [lanes] restricts the fault to those {!Ctg_engine.Stream_fork} lane
    indices (default: all lanes).  @raise Invalid_argument on malformed
    masks, probabilities, periods or windows. *)

val rng_fault_name : rng_fault -> string

val applies : rng_plan -> lane:int -> bool

val wrap : rng_plan -> lane:int -> Ctg_prng.Bitstream.t -> Ctg_prng.Bitstream.t
(** The faulty view of [inner] for [lane] ([inner] itself when the plan
    does not target the lane).  The inner stream advances one byte per
    byte served, keeping wrapped and clean lanes aligned outside the
    window. *)

val lane_factory :
  ?backend:Ctg_engine.Stream_fork.backend ->
  ?health:bool ->
  rng_plan ->
  seed:string ->
  int ->
  Ctg_prng.Bitstream.t
(** A drop-in [rng_of_lane] for {!Ctg_engine.Pool.create}: genuine
    {!Ctg_engine.Stream_fork} lane, fault wrapper on top, and — the part
    that matters — the health tests ([health] defaults [true]) attached to
    the {e wrapper}, where they see the bytes the sampler will consume. *)

(** {1 Value faults}

    Biased sampler {e outputs} rather than biased input randomness: the
    model of a subtly wrong sampler implementation (bad table constant,
    truncated tail, broken rejection step) that the statistical layer —
    online {!Ctg_assure.Drift} and the offline acceptance battery — must
    catch.  A corruptor maps each signed base draw to a faulted draw;
    it slots into {!Ctg_falcon.Base_sampler.of_instance}'s [bias] seam
    for end-to-end signing runs ({!Ctg_saga.Ratio}). *)

type value_fault =
  | Center_shift of { delta : float }
      (** Mean moves by exactly [delta] per draw: add [sign delta] with
          probability [|delta|].  [|delta| <= 1]. *)
  | Variance_deflate of { p : float }
      (** With probability [p], pull a nonzero draw one step toward 0 —
          symmetric, so the mean stays put while the variance shrinks. *)
  | Outlier of { p : float; magnitude : int }
      (** With probability [p], replace the draw with [+-magnitude] — a
          tail-mass / support violation. *)
  | Sticky of { p : float }
      (** With probability [p], replay the previous output — lag-1
          autocorrelation of about [p]. *)

type value_plan

val value_plan : seed:int64 -> value_fault -> value_plan
(** @raise Invalid_argument on out-of-range parameters. *)

val value_fault_name : value_fault -> string

val value_transform : value_plan -> int -> int
(** A fresh stateful corruptor over signed draws; its randomness is a
    pure function of the plan seed, so every faulted sequence is
    reproducible.  Partial application matters: [value_transform plan]
    creates the state once, then maps draw after draw. *)

(** {1 Gate-table corruption} *)

type gate_corruption = {
  index : int;  (** Instruction index. *)
  before : Ctgauss.Gate.instr;
  after : Ctgauss.Gate.instr;
}

val corrupt_program :
  seed:int64 -> flips:int -> Ctgauss.Gate.t -> gate_corruption list
(** Mutate [flips] distinct instructions of the (shared, mutable) program
    {e in place} with structure-preserving opcode flips — the program
    still passes {!Ctgauss.Gate.validate}, so only semantic defenses can
    tell.  Affects every {!Ctgauss.Sampler.clone} sharing the program.
    Returns the undo list for {!restore_program}. *)

val restore_program : Ctgauss.Gate.t -> gate_corruption list -> unit

(** {1 Worker faults} *)

type worker_fault =
  | Kill of { chunk : int }  (** Raise {!Ctg_engine.Pool.Kill_worker}. *)
  | Hang of { chunk : int; seconds : float }
  | Fail of { chunk : int; error : exn }

val pool_hook : worker_fault list -> Ctg_engine.Pool.fault_hook
(** Each listed fault fires exactly {e once} (atomically disarmed), so a
    killed chunk's re-run on another domain proceeds — level-triggered
    kills would chase the chunk through every respawn. *)

(** {1 Signing faults} *)

val sign_hook : seed:int64 -> bits:int -> Ctg_falcon.Sign.fault_hook
(** Flip [bits] random low-order coefficient bits of [s2] on the first
    invocation only; later attempts pass through clean, so a working
    verify-after-sign both detects the fault and still delivers. *)
