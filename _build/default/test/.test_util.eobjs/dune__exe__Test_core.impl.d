test/test_core.ml: Alcotest Array Ctg_kyao Ctg_prng Ctg_stats Ctgauss Int64 List Printf QCheck QCheck_alcotest String Test
