(* Tests for the ctg_race model checker itself (the DPOR scheduler must
   be trustworthy before its verdicts on the engine mean anything), the
   bundled harnesses, and the shared-state lint. *)

module Model = Ctg_race.Model
module Harness = Ctg_race.Harness
module Lint = Ctg_race.Lint_race
open Ctg_sync.Shim

(* ---------------------------------------------------------------- *)
(* Micro-programs for the scheduler tests.                           *)

(* Known-racy two-line counter: read-then-write increment. *)
let racy_counter () =
  let c = Atomic.make 0 in
  let incr_racy () =
    let v = Atomic.get c in
    Atomic.set c (v + 1)
  in
  let d1 = Domain.spawn incr_racy in
  let d2 = Domain.spawn incr_racy in
  Domain.join d1;
  Domain.join d2;
  assert (Atomic.get c = 2)

(* Same shape, atomic increment: safe. *)
let safe_counter () =
  let c = Atomic.make 0 in
  let d1 = Domain.spawn (fun () -> Atomic.incr c) in
  let d2 = Domain.spawn (fun () -> Atomic.incr c) in
  Domain.join d1;
  Domain.join d2;
  assert (Atomic.get c = 2)

(* Known-safe miniature seqlock: writer bumps an even/odd generation
   around a two-word update; reader retries until stable-and-even. *)
let mini_seqlock ~bump_gen () =
  let gen = Atomic.make 0 in
  let x = Atomic.make 0 and y = Atomic.make 0 in
  let writer () =
    if bump_gen then Atomic.incr gen;
    Atomic.set x 1;
    Atomic.set y 1;
    if bump_gen then Atomic.incr gen
  in
  let reader () =
    let rec snap () =
      let g1 = Atomic.get gen in
      let a = Atomic.get x in
      let b = Atomic.get y in
      let g2 = Atomic.get gen in
      if g1 = g2 && g1 land 1 = 0 then (a, b) else snap ()
    in
    let a, b = snap () in
    (* A torn snapshot is (1, 0): x written, y not yet. *)
    assert ((a, b) = (0, 0) || (a, b) = (1, 1))
  in
  let w = Domain.spawn writer in
  let r = Domain.spawn reader in
  Domain.join w;
  Domain.join r

(* Condition.wait without checking the predicate: if the signaller runs
   before the waiter even acquires the mutex, the signal hits an empty
   wait queue and is lost — the waiter then parks forever. *)
let wait_no_predicate () =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref false in
  let waiter () =
    Mutex.lock mu;
    Condition.wait cond mu;
    assert !ready;
    Mutex.unlock mu
  in
  let signaller () =
    Mutex.lock mu;
    ready := true;
    Condition.signal cond;
    Mutex.unlock mu
  in
  let w = Domain.spawn waiter in
  let s = Domain.spawn signaller in
  Domain.join w;
  Domain.join s

(* Correct version: predicate re-checked in a loop. *)
let wait_with_predicate () =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref false in
  let waiter () =
    Mutex.lock mu;
    while not !ready do
      Condition.wait cond mu
    done;
    assert !ready;
    Mutex.unlock mu
  in
  let signaller () =
    Mutex.lock mu;
    ready := true;
    Condition.signal cond;
    Mutex.unlock mu
  in
  let w = Domain.spawn waiter in
  let s = Domain.spawn signaller in
  Domain.join w;
  Domain.join s

(* ---------------------------------------------------------------- *)
(* Scheduler tests.                                                  *)

let test_racy_counter_caught () =
  match Model.check racy_counter with
  | Model.Flagged v ->
    (match v.Model.v_kind with
    | Model.Assertion _ -> ()
    | k -> Alcotest.failf "wrong violation kind: %s" (Model.vkind_to_string k))
  | Model.Passed s ->
    Alcotest.failf "racy counter passed after %d execs" s.Model.execs
  | Model.Budget_exceeded _ -> Alcotest.fail "budget exceeded"

let test_safe_counter_passes () =
  match Model.check safe_counter with
  | Model.Passed s -> Alcotest.(check bool) "explored" true (s.Model.execs >= 1)
  | Model.Flagged v ->
    Alcotest.failf "safe counter flagged: %s"
      (Model.vkind_to_string v.Model.v_kind)
  | Model.Budget_exceeded _ -> Alcotest.fail "budget exceeded"

let test_seqlock_safe () =
  match Model.check (mini_seqlock ~bump_gen:true) with
  | Model.Passed _ -> ()
  | Model.Flagged v ->
    Alcotest.failf "seqlock flagged: %s\n%s"
      (Model.vkind_to_string v.Model.v_kind)
      (String.concat "\n" v.Model.v_trace)
  | Model.Budget_exceeded _ -> Alcotest.fail "budget exceeded"

let test_seqlock_mutant_caught () =
  match Model.check (mini_seqlock ~bump_gen:false) with
  | Model.Flagged v ->
    (match v.Model.v_kind with
    | Model.Assertion _ -> ()
    | k -> Alcotest.failf "wrong violation kind: %s" (Model.vkind_to_string k))
  | Model.Passed _ -> Alcotest.fail "generation-free seqlock not caught"
  | Model.Budget_exceeded _ -> Alcotest.fail "budget exceeded"

let test_missed_wakeup_deadlock () =
  match Model.check wait_no_predicate with
  | Model.Flagged v ->
    (match v.Model.v_kind with
    | Model.Deadlock -> ()
    | k -> Alcotest.failf "wrong violation kind: %s" (Model.vkind_to_string k))
  | Model.Passed _ -> Alcotest.fail "missed wakeup not caught"
  | Model.Budget_exceeded _ -> Alcotest.fail "budget exceeded"

let test_predicate_loop_passes () =
  match Model.check wait_with_predicate with
  | Model.Passed _ -> ()
  | Model.Flagged v ->
    Alcotest.failf "predicate-looped wait flagged: %s\n%s"
      (Model.vkind_to_string v.Model.v_kind)
      (String.concat "\n" v.Model.v_trace)
  | Model.Budget_exceeded _ -> Alcotest.fail "budget exceeded"

(* Replay from the printed schedule must reproduce the violation and
   the exact same step-by-step trace, twice in a row. *)
let test_replay_deterministic () =
  match Model.check racy_counter with
  | Model.Flagged v ->
    let k1, t1 = Model.replay racy_counter v.Model.v_schedule in
    let k2, t2 = Model.replay racy_counter v.Model.v_schedule in
    Alcotest.(check bool) "violation reproduced" true (k1 <> None);
    Alcotest.(check bool) "reproduced again" true (k2 <> None);
    Alcotest.(check (list string)) "same trace" t1 t2;
    Alcotest.(check (list string)) "matches original" v.Model.v_trace t1
  | _ -> Alcotest.fail "racy counter should be flagged"

(* DPOR reduction sanity: two fibers touching different atomics are
   independent — one interleaving suffices.  Same atomic with a write:
   at least two. *)
let test_dpor_reduction () =
  let disjoint () =
    let a = Atomic.make 0 and b = Atomic.make 0 in
    let d1 = Domain.spawn (fun () -> Atomic.incr a) in
    let d2 = Domain.spawn (fun () -> Atomic.incr b) in
    Domain.join d1;
    Domain.join d2
  in
  let conflicting () =
    let a = Atomic.make 0 in
    let d1 = Domain.spawn (fun () -> Atomic.incr a) in
    let d2 = Domain.spawn (fun () -> Atomic.incr a) in
    Domain.join d1;
    Domain.join d2
  in
  (match Model.check disjoint with
  | Model.Passed s ->
    Alcotest.(check int) "disjoint ops need one execution" 1 s.Model.execs
  | _ -> Alcotest.fail "disjoint harness flagged");
  match Model.check conflicting with
  | Model.Passed s ->
    Alcotest.(check bool) "conflicting ops explored" true (s.Model.execs >= 2)
  | _ -> Alcotest.fail "conflicting harness flagged"

let test_schedule_roundtrip () =
  let s = [ 0; 1; 1; 0; 2 ] in
  Alcotest.(check (list int))
    "roundtrip" s
    (Model.schedule_of_string (Model.schedule_to_string s))

(* ---------------------------------------------------------------- *)
(* Bundled harnesses: a fast subset runs in the unit suite (the full  *)
(* catalogue is the `ctg_race check` CI gate).                        *)

let run_harness_test name () =
  match Harness.find name with
  | None -> Alcotest.failf "harness %s not bundled" name
  | Some h -> (
    match
      Model.check ~max_execs:h.Harness.h_max_execs
        ~spin_limit:h.Harness.h_spin_limit h.Harness.h_fn
    with
    | Model.Passed s ->
      if h.Harness.h_expect_violation then
        Alcotest.failf "mutant %s not caught (%d execs)" name s.Model.execs
    | Model.Flagged v ->
      if not h.Harness.h_expect_violation then
        Alcotest.failf "harness %s flagged: %s\n%s" name
          (Model.vkind_to_string v.Model.v_kind)
          (String.concat "\n" v.Model.v_trace)
    | Model.Budget_exceeded s ->
      Alcotest.failf "harness %s exceeded budget (%d execs)" name s.Model.execs
    )

let harness_cases =
  List.map
    (fun name -> Alcotest.test_case name `Quick (run_harness_test name))
    [
      "seqlock";
      "pool_chunkq";
      "pool_chunkq_abort";
      "pool_cursor_fail";
      "batcher_stop";
      "keyring";
      "trace_ring";
      "racy_counter";
      "seqlock_nogen";
      "trace_ring_mutant";
    ]

(* ---------------------------------------------------------------- *)
(* Static lint: scan_string over focused snippets.                    *)

let scan src =
  match Lint.scan_string ~filename:"snippet.ml" src with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "parse error: %s" e

let rules fs = List.map (fun f -> Lint.rule_id f.Lint.f_rule) fs

let test_lint_naked_atomic () =
  let fs = scan "let f c = Atomic.incr c\n" in
  Alcotest.(check (list string)) "flagged" [ "R1-shim-coverage" ] (rules fs)

let test_lint_shim_open_clean () =
  let fs = scan "open Ctg_sync.Shim\nlet f c = Atomic.incr c\n" in
  Alcotest.(check (list string)) "clean" [] (rules fs)

let test_lint_stdlib_bypass () =
  let fs =
    scan "open Ctg_sync.Shim\nlet f c = Stdlib.Atomic.incr c\n"
  in
  Alcotest.(check (list string)) "flagged" [ "R1-shim-coverage" ] (rules fs)

let test_lint_wait_no_loop () =
  let fs =
    scan
      "open Ctg_sync.Shim\nlet f c m = Mutex.lock m; Condition.wait c m\n"
  in
  Alcotest.(check (list string)) "flagged" [ "R2-predicate-loop" ] (rules fs)

let test_lint_wait_in_while () =
  let fs =
    scan
      "open Ctg_sync.Shim\n\
       let f c m p = Mutex.lock m; while not !p do Condition.wait c m done\n"
  in
  Alcotest.(check (list string)) "clean" [] (rules fs)

let test_lint_wait_in_let_rec () =
  let fs =
    scan
      "open Ctg_sync.Shim\n\
       let f c m p =\n\
      \  Mutex.lock m;\n\
      \  let rec go () = if not !p then (Condition.wait c m; go ()) in\n\
      \  go ()\n"
  in
  Alcotest.(check (list string)) "clean" [] (rules fs)

let test_lint_module_ref () =
  let fs = scan "let registry = ref []\n" in
  Alcotest.(check (list string)) "flagged" [ "R3-guarded-global" ] (rules fs)

let test_lint_guarded_ref () =
  let fs = scan "let registry = ref [] [@@race.guarded \"reg_mutex\"]\n" in
  Alcotest.(check (list string)) "clean" [] (rules fs)

let test_lint_local_ref_ok () =
  let fs = scan "let f () = let c = ref 0 in incr c; !c\n" in
  Alcotest.(check (list string)) "clean" [] (rules fs)

let test_lint_module_lazy () =
  let fs = scan "let table = lazy (build ())\n" in
  Alcotest.(check (list string)) "flagged" [ "R4-no-global-lazy" ] (rules fs)

let test_lint_tree_clean () =
  (* The migrated tree itself must be lint-clean — this is the same scan
     CI runs via `ctg_lint race`. *)
  let root = "../../.." in
  if Sys.file_exists (Filename.concat root "lib/engine") then begin
    let findings, errors, files = Lint.scan_dirs ~root () in
    Alcotest.(check (list string)) "no parse errors" [] errors;
    Alcotest.(check bool) "scanned files" true (files > 0);
    List.iter
      (fun f -> Format.printf "%a@." Lint.pp_finding f)
      findings;
    Alcotest.(check int) "no findings" 0 (List.length findings)
  end

let () =
  Alcotest.run "race"
    [
      ( "model",
        [
          Alcotest.test_case "racy counter caught" `Quick
            test_racy_counter_caught;
          Alcotest.test_case "safe counter passes" `Quick
            test_safe_counter_passes;
          Alcotest.test_case "mini seqlock safe" `Quick test_seqlock_safe;
          Alcotest.test_case "seqlock mutant caught" `Quick
            test_seqlock_mutant_caught;
          Alcotest.test_case "missed wakeup = deadlock" `Quick
            test_missed_wakeup_deadlock;
          Alcotest.test_case "predicate loop passes" `Quick
            test_predicate_loop_passes;
          Alcotest.test_case "replay deterministic" `Quick
            test_replay_deterministic;
          Alcotest.test_case "dpor reduction" `Quick test_dpor_reduction;
          Alcotest.test_case "schedule roundtrip" `Quick
            test_schedule_roundtrip;
        ] );
      ("harness", harness_cases);
      ( "lint",
        [
          Alcotest.test_case "naked atomic flagged" `Quick
            test_lint_naked_atomic;
          Alcotest.test_case "shim open clean" `Quick test_lint_shim_open_clean;
          Alcotest.test_case "stdlib bypass flagged" `Quick
            test_lint_stdlib_bypass;
          Alcotest.test_case "wait without loop flagged" `Quick
            test_lint_wait_no_loop;
          Alcotest.test_case "wait in while clean" `Quick
            test_lint_wait_in_while;
          Alcotest.test_case "wait in let rec clean" `Quick
            test_lint_wait_in_let_rec;
          Alcotest.test_case "module-level ref flagged" `Quick
            test_lint_module_ref;
          Alcotest.test_case "guarded ref clean" `Quick test_lint_guarded_ref;
          Alcotest.test_case "local ref clean" `Quick test_lint_local_ref_ok;
          Alcotest.test_case "module-level lazy flagged" `Quick
            test_lint_module_lazy;
          Alcotest.test_case "migrated tree clean" `Quick test_lint_tree_clean;
        ] );
    ]
