(** Explicit DDG tree (discrete distribution generating tree), as drawn in
    the paper's Fig. 1.  Only sensible for small precision; the samplers
    never materialize it. *)

type node =
  | Leaf of int  (** Sample value. *)
  | Internal of node * node  (** (child on bit 0, child on bit 1). *)
  | Dead  (** Unresolved beyond the last column (residual mass). *)

val build : Matrix.t -> node
(** Root of the tree. *)

val leaf_count_per_level : Matrix.t -> int array
(** Must equal the column weights [h_i] — the defining DDG property. *)

val walk_tree : node -> Ctg_prng.Bitstream.t -> int option
(** Follow random bits down the tree; [None] on a [Dead] end. *)

val pp : Format.formatter -> node -> unit
(** ASCII rendering, root at the left, like the paper's figure. *)
