test/test_ctcheck.mli:
