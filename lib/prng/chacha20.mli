(** ChaCha20 stream cipher (RFC 7539 block function), used as the
    pseudorandom generator for sampling — the same choice as the Falcon
    reference implementation and the paper's Sec. 7 discussion. *)

type t

val create : key:bytes -> nonce:bytes -> t
(** [key] is 32 bytes, [nonce] is 12 bytes; the block counter starts at 0.
    @raise Invalid_argument on wrong lengths. *)

val of_seed : string -> t
(** Deterministic instance for tests and benchmarks: the seed string is
    hashed into key and nonce with a simple expansion. *)

val key_of_seed : string -> bytes
(** The 32-byte key [of_seed] would use, without the nonce.  Lets callers
    (the engine's stream forking) pair one master key with per-worker
    nonces so that parallel lanes draw disjoint keystreams. *)

val block : t -> int -> bytes
(** [block t counter] is the raw 64-byte keystream block. *)

val next_bytes : t -> int -> bytes
(** Stateful: return the next [n] keystream bytes. *)

val blocks_generated : t -> int
(** Number of 64-byte blocks produced so far (PRNG cost accounting). *)
