type t = int

(* Terminals are ids 0 and 1.  Internal node i (i >= 2) is
   (vars.(i), lo.(i), hi.(i)): lo is the co-factor with the variable
   false.  Reduction invariants: lo <> hi (no redundant tests) and the
   unique table guarantees one id per (var, lo, hi) — together they make
   handle equality functional equivalence. *)
type man = {
  mutable vars : int array;
  mutable lo : int array;
  mutable hi : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  cache : (int * int * int, int) Hashtbl.t;  (* (op, a, b) -> result *)
  num_vars : int;
}

let terminal_var = max_int

let create ~num_vars =
  let cap = 1024 in
  let vars = Array.make cap terminal_var in
  {
    vars;
    lo = Array.make cap 0;
    hi = Array.make cap 0;
    next = 2;
    unique = Hashtbl.create 4096;
    cache = Hashtbl.create 4096;
    num_vars;
  }

let num_vars m = m.num_vars
let zero = 0
let one = 1
let is_zero t = t = 0
let is_one t = t = 1
let equal (a : t) (b : t) = a = b

let grow m =
  let cap = Array.length m.vars in
  if m.next >= cap then begin
    let cap' = 2 * cap in
    let resize a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    m.vars <- resize m.vars terminal_var;
    m.lo <- resize m.lo 0;
    m.hi <- resize m.hi 0
  end

let mk m v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      grow m;
      let id = m.next in
      m.next <- id + 1;
      m.vars.(id) <- v;
      m.lo.(id) <- lo;
      m.hi.(id) <- hi;
      Hashtbl.add m.unique key id;
      id

let var m i =
  if i < 0 || i >= m.num_vars then
    invalid_arg (Printf.sprintf "Bdd.var: %d out of [0, %d)" i m.num_vars);
  mk m i 0 1

(* op tags for the shared apply cache *)
let op_and = 0
let op_or = 1
let op_xor = 2

let rec apply m op a b =
  (* Terminal / absorption shortcuts. *)
  let shortcut =
    if op = op_and then
      if a = 0 || b = 0 then Some 0
      else if a = 1 then Some b
      else if b = 1 then Some a
      else if a = b then Some a
      else None
    else if op = op_or then
      if a = 1 || b = 1 then Some 1
      else if a = 0 then Some b
      else if b = 0 then Some a
      else if a = b then Some a
      else None
    else if a = 0 then Some b
    else if b = 0 then Some a
    else if a = b then Some 0
    else None
  in
  match shortcut with
  | Some r -> r
  | None ->
    (* All three ops are commutative: normalize for cache hits. *)
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = (op, a, b) in
    (match Hashtbl.find_opt m.cache key with
    | Some r -> r
    | None ->
      let va = m.vars.(a) and vb = m.vars.(b) in
      let v = min va vb in
      let a0, a1 = if va = v then (m.lo.(a), m.hi.(a)) else (a, a) in
      let b0, b1 = if vb = v then (m.lo.(b), m.hi.(b)) else (b, b) in
      let r = mk m v (apply m op a0 b0) (apply m op a1 b1) in
      Hashtbl.add m.cache key r;
      r)

let band m a b = apply m op_and a b
let bor m a b = apply m op_or a b
let bxor m a b = apply m op_xor a b
let bnot m a = apply m op_xor a 1
let implies m a b = bor m (bnot m a) b

let eval m t assignment =
  let rec go t =
    if t < 2 then t = 1
    else
      let v = m.vars.(t) in
      let bit = v < Array.length assignment && assignment.(v) in
      go (if bit then m.hi.(t) else m.lo.(t))
  in
  go t

let any_sat m t =
  if t = 0 then None
  else begin
    let a = Array.make m.num_vars false in
    let rec go t =
      if t < 2 then ()
      else if m.hi.(t) <> 0 then begin
        a.(m.vars.(t)) <- true;
        go (m.hi.(t))
      end
      else go (m.lo.(t))
    in
    go t;
    Some a
  end

let sat_count m t =
  (* c(node) counts assignments of the variables strictly below var(node);
     terminals sit at depth num_vars. *)
  let memo = Hashtbl.create 256 in
  let level t = if t < 2 then m.num_vars else m.vars.(t) in
  let rec c t =
    if t = 0 then 0.0
    else if t = 1 then 1.0
    else
      match Hashtbl.find_opt memo t with
      | Some r -> r
      | None ->
        let l = level t in
        let branch s = c s *. (2.0 ** float_of_int (level s - l - 1)) in
        let r = branch m.lo.(t) +. branch m.hi.(t) in
        Hashtbl.add memo t r;
        r
  in
  c t *. (2.0 ** float_of_int (level t))

let size m t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if t >= 2 && not (Hashtbl.mem seen t) then begin
      Hashtbl.add seen t ();
      go m.lo.(t);
      go m.hi.(t)
    end
  in
  go t;
  Hashtbl.length seen

let node_count m = m.next - 2
