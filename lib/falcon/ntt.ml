(* Negative-wrapped-convolution NTT: the 2n-th root ψ is folded into the
   butterfly twiddles (stored in bit-reversed order), so the transform
   needs no separate twist pass and no explicit bit-reversal permutation
   — the forward (Cooley-Tukey) leaves its output in bit-reversed
   evaluation order, which the pointwise product and the inverse
   (Gentleman-Sande) consume directly.

   Arithmetic avoids hardware division entirely.  Every multiplication
   with an operand fixed by the plan uses a Shoup companion
   floor(w·2^32/q); the butterflies run *lazily* — values ride in
   [0, 23q) forward and [0, 4096q) inverse, far inside the 63-bit native
   int, so no per-butterfly conditional corrections are needed — and a
   single Barrett pass normalizes at the end.

   This matters beyond throughput: Sign verifies every signature it
   produces against the public key (fault hardening), so one negacyclic
   product rides on the latency of every signing call and has to fit the
   <3% defense-overhead budget of `bench fault`. *)

let q = Zq.q

type plan = {
  n : int;
  psi_rev : int array; (* ψ^brv(i): forward twiddles, bit-reversed order *)
  psi_rev_sh : int array;
  psi_inv_rev : int array; (* ψ^-brv(i): inverse twiddles *)
  psi_inv_rev_sh : int array;
  n_inv : int; (* final inverse scaling; the ψ^-i twist is in the GS pass *)
  n_inv_sh : int;
}

(* Shoup companion: with wsh = floor(w·2^32/q) and 0 <= a < 2^32,
   a·w − (a·wsh >> 32)·q lies in [0, q + a·q/2^32) ⊂ [0, 2q).  All
   intermediates fit the 63-bit native int: a·wsh < 2^27 · 2^32. *)
let shoup w = (w lsl 32) / q

let shoup_mul a w wsh =
  let r = (a * w) - ((a * wsh) lsr 32 * q) in
  if r >= q then r - q else r

let build n =
  if n < 2 || n > 2048 || n land (n - 1) <> 0 then invalid_arg "Ntt.plan: n";
  let psi = Zq.primitive_root_2n n in
  let psi_inv = Zq.inv psi in
  let bits =
    let rec go b v = if v = 1 then b else go (b + 1) (v lsr 1) in
    go 0 n
  in
  let brv i =
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    !r
  in
  let psi_rev = Array.init n (fun i -> Zq.pow psi (brv i)) in
  let psi_inv_rev = Array.init n (fun i -> Zq.pow psi_inv (brv i)) in
  let n_inv = Zq.inv n in
  {
    n;
    psi_rev;
    psi_rev_sh = Array.map shoup psi_rev;
    psi_inv_rev;
    psi_inv_rev_sh = Array.map shoup psi_inv_rev;
    n_inv;
    n_inv_sh = shoup n_inv;
  }

(* Plans are immutable once built (the transforms copy their inputs and
   only read the twiddle tables), so one plan per degree is shared
   process-wide.  Verify-after-sign needs a plan for every signature;
   rebuilding the power tables each time costs far more than the
   transform itself.  Lock-free: a losing racer just publishes a
   duplicate that gets dropped. *)
let cache : (int * plan) list Atomic.t = Atomic.make []

let plan n =
  match List.assq_opt n (Atomic.get cache) with
  | Some p -> p
  | None ->
    let p = build n in
    let rec publish () =
      let cur = Atomic.get cache in
      match List.assq_opt n cur with
      | Some p' -> p'
      | None ->
        if Atomic.compare_and_set cache cur ((n, p) :: cur) then p
        else publish ()
    in
    publish ()

(* Values are kept in [0, q) at transform boundaries, so the common case
   of a reduction is a no-op range check; small centered values (signature
   coefficients) lift with one add, and only wild values pay a division. *)
let reduce_fast x =
  if x >= 0 && x < q then x
  else if x < 0 && x >= -q then x + q
  else Zq.reduce x

(* Barrett estimate for r < 2^39: with m = floor(2^40 / q) the quotient
   guess floor(r·m / 2^40) is off by at most one step, leaving a single
   conditional subtract.  All intermediates stay under 2^62 (r·m <
   2^39+27). *)
let barrett_m = (1 lsl 40) / q

let mul_red a b =
  let r = a * b in
  let r = r - ((r * barrett_m) lsr 40 * q) in
  if r >= q then r - q else r

(* In-place Cooley-Tukey pass, input natural order, output bit-reversed.
   Lazy bounds: the Shoup product v is in [0, 2q) without correction, so
   each stage grows the value bound by 2q — after log2 n <= 11 stages
   everything sits below 23q < 2^19; callers normalize (or feed a
   product whose Barrett analysis absorbs the slack).  The index
   arithmetic walks disjoint in-range pairs, hence the unchecked
   accesses. *)
let ntt_ct p a =
  let n = p.n in
  let psi = p.psi_rev and psish = p.psi_rev_sh in
  let t = ref n and m = ref 1 in
  let half = n lsr 1 in
  while !m < half do
    let t' = !t lsr 1 in
    t := t';
    let m' = !m in
    for i = 0 to m' - 1 do
      let j1 = 2 * i * t' in
      let s = Array.unsafe_get psi (m' + i) in
      let ssh = Array.unsafe_get psish (m' + i) in
      for j = j1 to j1 + t' - 1 do
        let u = Array.unsafe_get a j in
        let c = Array.unsafe_get a (j + t') in
        let v = (c * s) - ((c * ssh) lsr 32 * q) in
        Array.unsafe_set a j (u + v);
        Array.unsafe_set a (j + t') (u - v + (2 * q))
      done
    done;
    m := m' * 2
  done;
  (* last stage (t' = 1) flattened: one butterfly per adjacent pair with
     sequential twiddles — the generic nest would pay its outer-loop
     scaffolding per single-iteration inner loop here *)
  for i = 0 to half - 1 do
    let j = 2 * i in
    let s = Array.unsafe_get psi (half + i) in
    let ssh = Array.unsafe_get psish (half + i) in
    let u = Array.unsafe_get a j in
    let c = Array.unsafe_get a (j + 1) in
    let v = (c * s) - ((c * ssh) lsr 32 * q) in
    Array.unsafe_set a j (u + v);
    Array.unsafe_set a (j + 1) (u - v + (2 * q))
  done

(* In-place Gentleman-Sande pass, input bit-reversed and reduced, output
   natural order; folded ψ^-twist via psi_inv_rev and a final n^-1
   scale.  Lazy bounds: the sum path doubles per stage (<= 2048q for
   n = 2048), the product path resets below 2q; the pad 4096q ≡ 0
   (mod q) keeps the multiply operand non-negative, and the closing
   Shoup scale lands in [0, q). *)
let intt_gs p a =
  let n = p.n in
  let psi = p.psi_inv_rev and psish = p.psi_inv_rev_sh in
  let pad = 4096 * q in
  (* first stage (t' = 1) flattened, mirroring ntt_ct's last stage *)
  let half = n lsr 1 in
  for i = 0 to half - 1 do
    let j = 2 * i in
    let s = Array.unsafe_get psi (half + i) in
    let ssh = Array.unsafe_get psish (half + i) in
    let u = Array.unsafe_get a j in
    let v = Array.unsafe_get a (j + 1) in
    Array.unsafe_set a j (u + v);
    let d = u - v + pad in
    Array.unsafe_set a (j + 1) ((d * s) - ((d * ssh) lsr 32 * q))
  done;
  let t = ref 2 and m = ref half in
  while !m > 1 do
    let h = !m lsr 1 in
    let t' = !t in
    let j1 = ref 0 in
    for i = 0 to h - 1 do
      let s = Array.unsafe_get psi (h + i) in
      let ssh = Array.unsafe_get psish (h + i) in
      for j = !j1 to !j1 + t' - 1 do
        let u = Array.unsafe_get a j in
        let v = Array.unsafe_get a (j + t') in
        Array.unsafe_set a j (u + v);
        let d = u - v + pad in
        Array.unsafe_set a (j + t') ((d * s) - ((d * ssh) lsr 32 * q))
      done;
      j1 := !j1 + (2 * t')
    done;
    t := t' * 2;
    m := h
  done;
  for i = 0 to n - 1 do
    Array.unsafe_set a i (shoup_mul (Array.unsafe_get a i) p.n_inv p.n_inv_sh)
  done

(* Copy passes are explicit loops rather than Array.init: a closure
   invocation per element costs as much as the arithmetic at n = 64. *)
let copy_reduced p src =
  let a = Array.make p.n 0 in
  for i = 0 to p.n - 1 do
    Array.unsafe_set a i (reduce_fast (Array.unsafe_get src i))
  done;
  a

let forward p coeffs =
  if Array.length coeffs <> p.n then invalid_arg "Ntt.forward: length";
  let a = copy_reduced p coeffs in
  ntt_ct p a;
  (* Barrett pass normalizes the lazily-reduced values to [0, q). *)
  for i = 0 to p.n - 1 do
    let r = Array.unsafe_get a i in
    let r = r - ((r * barrett_m) lsr 40 * q) in
    Array.unsafe_set a i (if r >= q then r - q else r)
  done;
  a

let inverse p evals =
  if Array.length evals <> p.n then invalid_arg "Ntt.inverse: length";
  let a = copy_reduced p evals in
  intt_gs p a;
  a

let pointwise p fa fb =
  if Array.length fa <> p.n || Array.length fb <> p.n then
    invalid_arg "Ntt.pointwise: length";
  let out = Array.make p.n 0 in
  for i = 0 to p.n - 1 do
    Array.unsafe_set out i
      (mul_red
         (reduce_fast (Array.unsafe_get fa i))
         (reduce_fast (Array.unsafe_get fb i)))
  done;
  out

(* The verify-after-sign hot path: one negacyclic product against a
   fixed, already-transformed operand, in a single allocation.  The
   forward pass stays lazy (no normalize): its output is below 23q <
   2^19, [fb] is reduced, so the Barrett product sees r < 2^33 — well
   inside the 2^39 analysis — and reduces to [0, q) for the inverse
   pass. *)
let mul_with_forward p a fb =
  if Array.length a <> p.n || Array.length fb <> p.n then
    invalid_arg "Ntt.mul_with_forward: length";
  let w = copy_reduced p a in
  ntt_ct p w;
  for i = 0 to p.n - 1 do
    Array.unsafe_set w i
      (mul_red (Array.unsafe_get w i) (reduce_fast (Array.unsafe_get fb i)))
  done;
  intt_gs p w;
  w

let negacyclic_mul p a b = mul_with_forward p a (forward p b)

let invertible p a = Array.for_all (fun e -> e <> 0) (forward p a)

let ring_inv p a =
  let fa = forward p a in
  inverse p (Array.map Zq.inv fa)
