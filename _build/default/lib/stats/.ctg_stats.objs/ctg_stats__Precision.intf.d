lib/stats/precision.mli: Format
