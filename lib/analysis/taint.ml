module Gate = Ctgauss.Gate

type census = {
  ands : int;
  ors : int;
  xors : int;
  nots : int;
  consts : int;
}

type t = {
  program : Gate.t;
  verdict : (unit, string) result;
  census : census;
  live : bool array;
  support : Bytes.t array;  (* per register, bitset over input variables *)
}

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let byte = i lsr 3 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (i land 7))))

let union dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lor (Char.code (Bytes.get src i))))
  done

let analyze (p : Gate.t) =
  let nv = p.Gate.num_vars in
  let n = Array.length p.Gate.instrs in
  let verdict = Gate.validate p in
  let census =
    Array.fold_left
      (fun c instr ->
        match instr with
        | Gate.And _ -> { c with ands = c.ands + 1 }
        | Gate.Or _ -> { c with ors = c.ors + 1 }
        | Gate.Xor _ -> { c with xors = c.xors + 1 }
        | Gate.Not _ -> { c with nots = c.nots + 1 }
        | Gate.Const _ -> { c with consts = c.consts + 1 })
      { ands = 0; ors = 0; xors = 0; nots = 0; consts = 0 }
      p.Gate.instrs
  in
  (* Forward pass: structural input support of every register. *)
  let set_bytes = (nv + 7) / 8 in
  let support = Array.init (nv + n) (fun _ -> Bytes.make (max 1 set_bytes) '\000') in
  for v = 0 to nv - 1 do
    bit_set support.(v) v
  done;
  Array.iteri
    (fun i instr ->
      let dst = support.(nv + i) in
      match instr with
      | Gate.And (x, y) | Gate.Or (x, y) | Gate.Xor (x, y) ->
        union dst support.(x);
        union dst support.(y)
      | Gate.Not x -> union dst support.(x)
      | Gate.Const _ -> ())
    p.Gate.instrs;
  (* Backward pass: liveness from outputs + valid. *)
  let live = Array.make n false in
  let stack = ref [] in
  let touch r =
    if r >= nv then begin
      let i = r - nv in
      if not live.(i) then begin
        live.(i) <- true;
        stack := i :: !stack
      end
    end
  in
  Array.iter touch p.Gate.outputs;
  (match p.Gate.valid with Some r -> touch r | None -> ());
  let rec drain () =
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      (match p.Gate.instrs.(i) with
      | Gate.And (x, y) | Gate.Or (x, y) | Gate.Xor (x, y) ->
        touch x;
        touch y
      | Gate.Not x -> touch x
      | Gate.Const _ -> ());
      drain ()
  in
  drain ();
  { program = p; verdict; census; live; support }

let verified t = t.verdict
let census t = t.census
let live t = t.live

let dead_instrs t =
  let acc = ref [] in
  for i = Array.length t.live - 1 downto 0 do
    if not t.live.(i) then acc := i :: !acc
  done;
  !acc

let support_list t r =
  let nv = t.program.Gate.num_vars in
  let acc = ref [] in
  for v = nv - 1 downto 0 do
    if bit_get t.support.(r) v then acc := v :: !acc
  done;
  !acc

let unused_inputs t =
  let p = t.program in
  let nv = p.Gate.num_vars in
  let used = Array.make nv false in
  let mark r = List.iter (fun v -> used.(v) <- true) (support_list t r) in
  Array.iter mark p.Gate.outputs;
  (match p.Gate.valid with Some r -> mark r | None -> ());
  let acc = ref [] in
  for v = nv - 1 downto 0 do
    if not used.(v) then acc := v :: !acc
  done;
  !acc

let output_support t i = support_list t t.program.Gate.outputs.(i)

let valid_support t =
  match t.program.Gate.valid with None -> [] | Some r -> support_list t r

let max_cone t =
  let card r = List.length (support_list t r) in
  let m =
    Array.fold_left (fun acc r -> max acc (card r)) 0 t.program.Gate.outputs
  in
  match t.program.Gate.valid with None -> m | Some r -> max m (card r)
