(* The allocation/GC profiling layer: glue between the tracer's per-span
   Gc.counters capture (Trace.set_gc_capture / set_gc_observer) and a
   human-usable report — span labels ranked by words allocated — plus a
   GC-alarm-driven major-cycle pulse fed into a registry histogram.

   All state is one process-global singleton under a mutex: the observer
   runs on whichever domain completes a span, and the report runs on the
   caller's. *)

open Ctg_sync.Shim
module Obs = Ctg_obs
module Rtev = Ctg_rtev.Rtev
module Jsonx = Obs.Jsonx

type row = {
  label : string;
  spans : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  total_ns : int;
  pause_ns : int;
}

type agg = {
  mutable a_spans : int;
  mutable a_minor : float;
  mutable a_promoted : float;
  mutable a_major : float;
  mutable a_ns : int;
  mutable a_pause : int;
}

type state = {
  mu : Mutex.t;
  table : (string, agg) Hashtbl.t;
  mutable alarm : Gc.alarm option;
  mutable last_cycle_ns : int;
  mutable cycle_histo : Obs.Registry.histo option;
  mutable cycle_counter : Obs.Registry.counter option;
  mutable active : bool;
}

let st =
  {
    mu = Mutex.create ();
    table = Hashtbl.create 16;
    alarm = None;
    last_cycle_ns = 0;
    cycle_histo = None;
    cycle_counter = None;
    active = false;
  }

let observer ~name ~minor ~promoted ~major ~pause_ns ~dur_ns =
  Mutex.lock st.mu;
  let a =
    match Hashtbl.find_opt st.table name with
    | Some a -> a
    | None ->
      let a =
        {
          a_spans = 0;
          a_minor = 0.0;
          a_promoted = 0.0;
          a_major = 0.0;
          a_ns = 0;
          a_pause = 0;
        }
      in
      Hashtbl.replace st.table name a;
      a
  in
  a.a_spans <- a.a_spans + 1;
  a.a_minor <- a.a_minor +. minor;
  a.a_promoted <- a.a_promoted +. promoted;
  a.a_major <- a.a_major +. major;
  a.a_ns <- a.a_ns + dur_ns;
  a.a_pause <- a.a_pause + pause_ns;
  Mutex.unlock st.mu

(* End-of-major-cycle pulse — the cadence *fallback*.  The histogram
   records the gap between consecutive major-cycle completions on the
   alarm's domain, kept for environments where the Runtime_events ring
   cannot start; with [enable ~rtev:true] the rtev consumer provides true
   pause durations and this signal is advisory only (DESIGN.md §15). *)
let alarm_cb () =
  let now = Obs.Clock.now_ns () in
  Mutex.lock st.mu;
  let gap = now - st.last_cycle_ns in
  st.last_cycle_ns <- now;
  let h = st.cycle_histo and c = st.cycle_counter in
  Mutex.unlock st.mu;
  (match c with Some c -> Obs.Registry.incr c | None -> ());
  (match h with Some h when gap >= 0 -> Obs.Registry.observe h gap | _ -> ());
  Obs.Trace.instant "gc_major_cycle" ~cat:"gc"

let enable ?registry ?(rtev = false) () =
  Mutex.lock st.mu;
  if st.active then Mutex.unlock st.mu
  else begin
    st.active <- true;
    (match registry with
    | Some r ->
      st.cycle_histo <- Some (Obs.Registry.histo r "gc_major_cycle_gap_ns");
      st.cycle_counter <- Some (Obs.Registry.counter r "gc_major_cycles_total")
    | None -> ());
    st.last_cycle_ns <- Obs.Clock.now_ns ();
    Mutex.unlock st.mu;
    Obs.Trace.enable ();
    Obs.Trace.set_gc_capture true;
    Obs.Trace.set_gc_observer (Some observer);
    if rtev && Rtev.start ?registry ~trace:true () then
      Rtev.install_trace_pause_source ();
    let alarm = Gc.create_alarm alarm_cb in
    Mutex.lock st.mu;
    st.alarm <- Some alarm;
    Mutex.unlock st.mu
  end

let disable () =
  Mutex.lock st.mu;
  if not st.active then Mutex.unlock st.mu
  else begin
    st.active <- false;
    let alarm = st.alarm in
    st.alarm <- None;
    st.cycle_histo <- None;
    st.cycle_counter <- None;
    Mutex.unlock st.mu;
    (match alarm with Some a -> Gc.delete_alarm a | None -> ());
    Obs.Trace.set_gc_capture false;
    Obs.Trace.set_gc_observer None;
    (* Unhook the per-span pause charging; the rtev consumer itself stays
       in whatever state its owner (daemon, CLI) put it. *)
    Obs.Trace.set_pause_source None
  end

let active () =
  Mutex.lock st.mu;
  let a = st.active in
  Mutex.unlock st.mu;
  a

let reset () =
  Mutex.lock st.mu;
  Hashtbl.reset st.table;
  st.last_cycle_ns <- Obs.Clock.now_ns ();
  Mutex.unlock st.mu

let report () =
  Mutex.lock st.mu;
  let rows =
    Hashtbl.fold
      (fun label a acc ->
        {
          label;
          spans = a.a_spans;
          minor_words = a.a_minor;
          promoted_words = a.a_promoted;
          major_words = a.a_major;
          total_ns = a.a_ns;
          pause_ns = a.a_pause;
        }
        :: acc)
      st.table []
  in
  Mutex.unlock st.mu;
  List.sort
    (fun a b ->
      match compare b.minor_words a.minor_words with
      | 0 -> compare a.label b.label
      | c -> c)
    rows

let row_to_json r =
  Jsonx.Obj
    [
      ("label", Jsonx.Str r.label);
      ("spans", Jsonx.Num (float_of_int r.spans));
      ("minor_words", Jsonx.Num r.minor_words);
      ("promoted_words", Jsonx.Num r.promoted_words);
      ("major_words", Jsonx.Num r.major_words);
      ("total_ns", Jsonx.Num (float_of_int r.total_ns));
      ("pause_ns", Jsonx.Num (float_of_int r.pause_ns));
      ("work_ns", Jsonx.Num (float_of_int (max 0 (r.total_ns - r.pause_ns))));
      ( "words_per_span",
        Jsonx.Num
          (if r.spans = 0 then 0.0
           else r.minor_words /. float_of_int r.spans) );
    ]

let report_json () =
  Jsonx.Obj
    [
      ("profile", Jsonx.Str "alloc-by-span");
      ("rows", Jsonx.List (List.map row_to_json (report ())));
    ]

let pp_row fmt r =
  Format.fprintf fmt
    "%-12s %6d spans  %12.0f minor  %10.0f promoted  %10.0f major words  \
     %8.0f words/span  %9d pause ns"
    r.label r.spans r.minor_words r.promoted_words r.major_words
    (if r.spans = 0 then 0.0 else r.minor_words /. float_of_int r.spans)
    r.pause_ns

let pp_report fmt () =
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_row r) (report ())

let set_alloc_baseline ?(labels = []) ~registry ~words_per_sample
    ~words_per_signature () =
  Obs.Registry.set_gauge
    (Obs.Registry.gauge registry ~labels "alloc_words_per_sample")
    words_per_sample;
  Obs.Registry.set_gauge
    (Obs.Registry.gauge registry ~labels "alloc_words_per_signature")
    words_per_signature
