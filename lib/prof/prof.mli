(** Allocation/GC profiling over the span tracer.

    {!enable} arms the whole chain: span tracing
    ({!Ctg_obs.Trace.enable}), per-span [Gc.counters] capture
    ({!Ctg_obs.Trace.set_gc_capture}), an observer that aggregates word
    deltas by span label, and a [Gc.create_alarm] pulse that feeds a
    major-cycle cadence histogram.  {!report} then ranks span labels by
    minor words allocated — "which stage of the pipeline allocates" with
    no external tooling.

    Cost model: when profiling is off (or tracing is disabled), the
    instrumented hot paths pay exactly what they paid before — one atomic
    load per {!Ctg_obs.Trace.with_span}.  When on, each span adds two
    [Gc.counters] calls and one mutex-guarded table update; the
    [Alloc_bench] gate bounds the measured end-to-end overhead at < 3%.

    GC pause accounting: with [enable ~rtev:true], the {!Ctg_rtev}
    consumer is started and installed as the tracer's pause source, so
    every span is charged the real GC pause nanoseconds that landed
    inside it ([pause_ns]; [total_ns - pause_ns] ≈ mutator work time).
    [gc_major_cycle_gap_ns] remains as a {e cadence (fallback)} signal
    for environments where the Runtime_events ring cannot start — it
    measures the gap between consecutive major-cycle completions, not
    pause duration. *)

type row = {
  label : string;  (** Span name ([with_span]'s first argument). *)
  spans : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  total_ns : int;
  pause_ns : int;
      (** GC pause time charged to the label's spans (0 without [rtev]). *)
}

val enable : ?registry:Ctg_obs.Registry.t -> ?rtev:bool -> unit -> unit
(** Idempotent.  With [registry], also registers
    [gc_major_cycle_gap_ns] (histogram, cadence fallback) and
    [gc_major_cycles_total] (counter) and feeds them from the GC alarm.
    With [rtev] (default false), starts the {!Ctg_rtev} consumer against
    the same registry and charges per-span pause time via
    {!Ctg_obs.Trace.set_pause_source}. *)

val disable : unit -> unit
(** Stop capturing (alarm deleted, observer unhooked).  Leaves span
    tracing in whatever state it is — profiling rides on tracing but
    does not own it. *)

val active : unit -> bool

val reset : unit -> unit
(** Drop all aggregated rows. *)

val report : unit -> row list
(** Rows ranked by [minor_words] descending (label as tie-break). *)

val report_json : unit -> Ctg_obs.Jsonx.t
val pp_row : Format.formatter -> row -> unit
val pp_report : Format.formatter -> unit -> unit

val set_alloc_baseline :
  ?labels:Ctg_obs.Registry.labels ->
  registry:Ctg_obs.Registry.t ->
  words_per_sample:float ->
  words_per_signature:float ->
  unit ->
  unit
(** Publish the measured allocation baselines ([alloc_words_per_sample],
    [alloc_words_per_signature] gauges) — what [/metrics] exposes and
    the trend gate tracks via [BENCH_alloc.json]. *)
