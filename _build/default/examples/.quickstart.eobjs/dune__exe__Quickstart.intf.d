examples/quickstart.mli:
