lib/core/codegen.mli: Gate
