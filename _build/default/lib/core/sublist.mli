(** The paper's Sec. 5.1: sort list L by the all-ones prefix length κ and
    split it into sublists l_κ.  Within sublist κ the first κ+1 bits are
    fixed (1^κ 0), so each output bit is a function of at most Δ payload
    bits — small enough to minimize exactly. *)

type entry = {
  kappa : int;  (** κ: this sublist's all-ones prefix length. *)
  window : int;
      (** Payload window width: [min Δ (n - 1 - κ)] variables, mapping
          payload variable [p] to input bit [b_{κ+1+p}]. *)
  leaves : Ctg_kyao.Leaf_enum.leaf list;
  bit_tables : Ctg_boolmin.Truth_table.t array;
      (** [bit_tables.(ι)]: table for sample bit ι over the window
          variables.  Uncovered payload patterns are don't-cares. *)
  hit_table : Ctg_boolmin.Truth_table.t;
      (** On where some leaf covers the pattern (walk terminates), off
          where none does; no don't-cares. *)
}

type t = {
  enum : Ctg_kyao.Leaf_enum.t;
  sample_bits : int;  (** m: bits needed for the largest magnitude. *)
  entries : entry array;  (** Index κ = 0 .. max κ; empty sublists included. *)
}

val build : Ctg_kyao.Leaf_enum.t -> t

val payload_of_leaf : window:int -> Ctg_kyao.Leaf_enum.leaf -> Ctg_boolmin.Cube.t
(** The cube over window variables fixed by a leaf's payload bits. *)
