type item =
  | Type of { name : string; kind : string }
  | Sample of { name : string; labels : (string * string) list; value : string }

type t = item list

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let err line what = Error (Printf.sprintf "line %d: %s" line what)

(* One label value, starting after the opening quote; returns (value,
   position after the closing quote). *)
let parse_quoted s pos =
  let buf = Buffer.create 16 in
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else
      match s.[i] with
      | '"' -> Some (Buffer.contents buf, i + 1)
      | '\\' ->
        if i + 1 >= n then None
        else begin
          (match s.[i + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | c -> Buffer.add_char buf c);
          go (i + 2)
        end
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go pos

let parse_labels s pos =
  let n = String.length s in
  let rec go acc i =
    if i >= n then None
    else if s.[i] = '}' then Some (List.rev acc, i + 1)
    else begin
      let j = ref i in
      while !j < n && is_name_char s.[!j] do
        incr j
      done;
      if !j = i || !j + 1 >= n || s.[!j] <> '=' || s.[!j + 1] <> '"' then None
      else
        let key = String.sub s i (!j - i) in
        match parse_quoted s (!j + 2) with
        | None -> None
        | Some (v, after) ->
          if after < n && s.[after] = ',' then go ((key, v) :: acc) (after + 1)
          else if after < n && s.[after] = '}' then
            Some (List.rev ((key, v) :: acc), after + 1)
          else None
    end
  in
  go [] pos

let parse_sample lineno line =
  let n = String.length line in
  let j = ref 0 in
  while !j < n && is_name_char line.[!j] do
    incr j
  done;
  if !j = 0 then err lineno "metric name expected"
  else
    let name = String.sub line 0 !j in
    let labels, after =
      if !j < n && line.[!j] = '{' then
        match parse_labels line (!j + 1) with
        | Some (ls, after) -> (Some ls, after)
        | None -> (None, !j)
      else (Some [], !j)
    in
    match labels with
    | None -> err lineno "malformed label set"
    | Some labels ->
      if after >= n || line.[after] <> ' ' then
        err lineno "space before value expected"
      else
        let value = String.sub line (after + 1) (n - after - 1) in
        if value = "" || float_of_string_opt value = None then
          err lineno (Printf.sprintf "unparseable value %S" value)
        else Ok (Sample { name; labels; value })

let parse_type lineno line =
  match String.split_on_char ' ' line with
  | [ "#"; "TYPE"; name; kind ]
    when name <> "" && String.for_all is_name_char name
         && List.mem kind [ "counter"; "gauge"; "histogram" ] ->
    Ok (Type { name; kind })
  | _ -> err lineno "malformed # TYPE comment"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | [ "" ] -> Ok (List.rev acc) (* trailing newline *)
    | "" :: rest -> go acc (lineno + 1) rest
    | line :: rest -> (
      let item =
        if String.length line > 0 && line.[0] = '#' then parse_type lineno line
        else parse_sample lineno line
      in
      match item with
      | Ok i -> go (i :: acc) (lineno + 1) rest
      | Error _ as e -> e)
  in
  go [] 1 lines

let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render items =
  let buf = Buffer.create 1024 in
  List.iter
    (fun item ->
      match item with
      | Type { name; kind } ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
      | Sample { name; labels; value } ->
        Buffer.add_string buf name;
        (match labels with
        | [] -> ()
        | ls ->
          Buffer.add_char buf '{';
          Buffer.add_string buf
            (String.concat ","
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
                  ls));
          Buffer.add_char buf '}');
        Buffer.add_char buf ' ';
        Buffer.add_string buf value;
        Buffer.add_char buf '\n')
    items;
  Buffer.contents buf

let value items ~name ~labels =
  List.find_map
    (function
      | Sample s when s.name = name && s.labels = labels ->
        float_of_string_opt s.value
      | _ -> None)
    items

let samples items =
  List.filter_map
    (function
      | Sample { name; labels; value } -> (
        match float_of_string_opt value with
        | Some v -> Some (name, labels, v)
        | None -> None)
      | Type _ -> None)
    items
