(** Always-on assurance driver: an engine pool with its full monitor
    stack, advanced one batch at a time.

    Each {!tick} pushes [batch] samples through the pool (feeding the
    drift monitor via the chunk observers) and runs [leak_steps]
    background dudect probes, so a long {!run} interleaves production-like
    sampling with continuous leakage assessment — the process behind both
    [ctg_stats watch] and the CI soak. *)

type t

val create :
  ?drift_config:Drift.config ->
  ?domains:int ->
  ?rng_of_lane:(int -> Ctg_prng.Bitstream.t) ->
  ?batch:int ->
  ?leak_steps:int ->
  ?seed:string ->
  sigma:string ->
  precision:int ->
  tail_cut:int ->
  unit ->
  t
(** Compile (or fetch from {!Ctg_engine.Registry.global}) the sampler and
    assemble pool + monitor + leak assessor on the pool's own metrics
    registry.  [rng_of_lane] is the fault-injection seam: wrap the genuine
    lanes in a {!Ctg_fault.Plan} bias model to exercise the alarm path
    (the assure CI control does exactly this).  [batch] defaults to
    [63 × 512] samples per tick; [leak_steps] to 64. *)

val tick : t -> unit
(** One batch plus one leak-probe round. *)

val run : t -> duration:float -> unit
(** Tick until [duration] seconds have elapsed. *)

val sigma : t -> string
val monitor : t -> Monitor.t
val pool : t -> Ctg_engine.Pool.t
val leak : t -> Leak.t
val ticks : t -> int
val samples : t -> int

val registry : t -> Ctg_obs.Registry.t
(** The pool's metrics registry — engine, ctmon and assure series
    together; what [/metrics] exposes. *)

val routes : t -> Ctg_obs.Http.route list
(** {!Monitor.routes} over {!registry}. *)

val shutdown : t -> unit

val batch_bits_probe :
  Ctgauss.Sampler.t -> Ctg_ctcheck.Dudect.clazz -> float
(** The soak's leak probe: consumed bits for one 63-sample batch, fix
    class on a per-call-rebuilt fixed stream, random class on a live one.
    Constant for a CT sampler by construction. *)
