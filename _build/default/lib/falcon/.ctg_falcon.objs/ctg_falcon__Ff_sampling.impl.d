lib/falcon/ff_sampling.ml: Array Base_sampler Fftc Hashtbl Ldl
