module Registry = Ctg_obs.Registry
module Distance = Ctg_stats.Distance
module Chi_square = Ctg_stats.Chi_square

type config = {
  window : int;
  alpha : float;
  renyi_alpha : float;
  keep_results : int;
}

let default_config =
  { window = 100_000; alpha = 0.01; renyi_alpha = 2.0; keep_results = 32 }

type window_result = {
  index : int;
  n : int;
  overflow : int;
  statistic : float;
  dof : int;
  p_value : float;
  alpha_k : float;
  alarm : bool;
  max_log : float;
  renyi : float;
}

(* The termination-conditioned sampler law, shared with the offline
   acceptance battery (Ctg_saga): the walk restarts on the residual path,
   so magnitudes follow p_v / (1 - residual) and the overflow bin carries
   zero expected mass. *)
let expected_model ~matrix =
  let exact = Distance.exact_probabilities matrix in
  let residual = Float.max 0.0 (1.0 -. Array.fold_left ( +. ) 0.0 exact) in
  let mass = 1.0 -. residual in
  let conditional =
    Array.append (Array.map (fun p -> p /. mass) exact) [| 0.0 |]
  in
  (conditional, residual)

type t = {
  config : config;
  exact : float array;  (* p_v over 0..support; sums to slightly < 1 *)
  expected_freq : float array;
      (* The sampler's actual per-magnitude law: the walk restarts on the
         residual path (Column_sampler.sample_magnitude, and the compiled
         circuit's invalid-lane resample), so magnitudes follow the
         conditional p_v / (1 - residual) and the overflow bin carries no
         mass at all.  Its entry here is 0; observed overflow then folds
         into the last chi-square group with zero expected mass, inflating
         the statistic — which is the alarm we want for impossible
         magnitudes. *)
  residual : float;  (* tail + rounding mass beyond the support *)
  mutex : Mutex.t;
  window : Sketch.t;
  cumulative : Sketch.t;
  mutable windows : int;
  mutable alarm_count : int;
  mutable first_alarm : window_result option;
  mutable results : window_result list;  (* newest first, bounded *)
  g_chi2 : Registry.gauge;
  g_p : Registry.gauge;
  g_max_log : Registry.gauge;
  g_renyi : Registry.gauge;
  c_windows : Registry.counter;
  c_alarms : Registry.counter;
  c_samples : Registry.counter;
}

let create ?(config = default_config) ?(registry = Registry.default)
    ?(labels = []) ~matrix () =
  if config.window < 100 then
    invalid_arg "Drift.create: window must be >= 100";
  if not (config.alpha > 0.0 && config.alpha < 1.0) then
    invalid_arg "Drift.create: alpha must be in (0,1)";
  if config.renyi_alpha <= 1.0 then
    invalid_arg "Drift.create: renyi_alpha must be > 1";
  let exact = Distance.exact_probabilities matrix in
  let support = matrix.Ctg_kyao.Matrix.support in
  let expected_freq, residual = expected_model ~matrix in
  {
    config;
    exact;
    expected_freq;
    residual;
    mutex = Mutex.create ();
    window = Sketch.create ~support;
    cumulative = Sketch.create ~support;
    windows = 0;
    alarm_count = 0;
    first_alarm = None;
    results = [];
    g_chi2 = Registry.gauge registry ~labels "assure_drift_chi2";
    g_p = Registry.gauge registry ~labels "assure_drift_p_value";
    g_max_log = Registry.gauge registry ~labels "assure_drift_max_log";
    g_renyi = Registry.gauge registry ~labels "assure_drift_renyi";
    c_windows = Registry.counter registry ~labels "assure_drift_windows_total";
    c_alarms = Registry.counter registry ~labels "assure_drift_alarms_total";
    c_samples = Registry.counter registry ~labels "assure_drift_samples_total";
  }

(* Spend alpha over the unbounded window sequence: window k gets
   alpha/(k(k+1)), and sum_{k>=1} 1/(k(k+1)) = 1, so the total false-alarm
   probability over an arbitrarily long soak stays below [alpha] — the
   "no false alarms in a week-long soak" requirement, by construction
   rather than by tuning. *)
let alpha_at ~alpha k = alpha /. (float_of_int k *. float_of_int (k + 1))

(* Max-log and Rényi drift on the window, restricted to the magnitudes
   observed in it: unseen tail magnitudes would contribute log 0 = -inf
   noise, while real extra mass (overflow or impossible magnitudes) is the
   chi-square's job via the zero-expectation overflow bin. *)
let divergences t ~emp =
  let mass = 1.0 -. t.residual in
  let max_log = ref 0.0 in
  let renyi_sum = ref 0.0 and renyi_mass = ref false in
  let a = t.config.renyi_alpha in
  Array.iteri
    (fun i e ->
      if e > 0.0 && t.exact.(i) > 0.0 then begin
        let q = t.exact.(i) /. mass in
        let d = abs_float (log e -. log q) in
        if d > !max_log then max_log := d;
        renyi_sum := !renyi_sum +. ((e ** a) *. (q ** (1.0 -. a)));
        renyi_mass := true
      end)
    emp;
  let renyi =
    if !renyi_mass then Float.max 0.0 (log !renyi_sum /. (a -. 1.0)) else 0.0
  in
  (!max_log, renyi)

(* Caller holds the mutex. *)
let evaluate_window t =
  let n = Sketch.total t.window in
  let observed = Sketch.observed t.window in
  let fn = float_of_int n in
  let expected = Array.map (fun p -> p *. fn) t.expected_freq in
  let r = Chi_square.test ~observed ~expected in
  t.windows <- t.windows + 1;
  let alpha_k = alpha_at ~alpha:t.config.alpha t.windows in
  let alarm = r.Chi_square.p_value < alpha_k in
  let max_log, renyi = divergences t ~emp:(Sketch.empirical t.window) in
  let result =
    {
      index = t.windows;
      n;
      overflow = Sketch.overflow t.window;
      statistic = r.Chi_square.statistic;
      dof = r.Chi_square.dof;
      p_value = r.Chi_square.p_value;
      alpha_k;
      alarm;
      max_log;
      renyi;
    }
  in
  if alarm then begin
    t.alarm_count <- t.alarm_count + 1;
    if t.first_alarm = None then t.first_alarm <- Some result;
    Registry.incr t.c_alarms
  end;
  Registry.incr t.c_windows;
  Registry.set_gauge t.g_chi2 result.statistic;
  Registry.set_gauge t.g_p result.p_value;
  Registry.set_gauge t.g_max_log result.max_log;
  Registry.set_gauge t.g_renyi result.renyi;
  t.results <-
    result
    :: (if List.length t.results >= t.config.keep_results then
          List.filteri (fun i _ -> i < t.config.keep_results - 1) t.results
        else t.results);
  Sketch.absorb t.cumulative t.window;
  Sketch.reset t.window;
  result

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The always-on path: one sketch fold per sample; the lifetime sketch is
   only touched at window boundaries (absorb-then-reset in
   [evaluate_window]), keeping the per-sample cost inside the <3% budget
   that BENCH_assure.json gates. *)
let observe_sub t samples ~pos ~len =
  locked t (fun () ->
      Sketch.add_sub t.window samples ~pos ~len;
      Registry.add t.c_samples len;
      while Sketch.total t.window >= t.config.window do
        ignore (evaluate_window t)
      done)

let observe t samples = observe_sub t samples ~pos:0 ~len:(Array.length samples)

let flush t =
  locked t (fun () ->
      if Sketch.total t.window = 0 then None else Some (evaluate_window t))

let windows t = locked t (fun () -> t.windows)
let alarms t = locked t (fun () -> t.alarm_count)
let samples t =
  locked t (fun () -> Sketch.total t.cumulative + Sketch.total t.window)

let cumulative t = locked t (fun () -> Sketch.merge t.cumulative t.window)
let last t = locked t (fun () -> match t.results with [] -> None | r :: _ -> Some r)
let first_alarm t = locked t (fun () -> t.first_alarm)
let results t = locked t (fun () -> List.rev t.results)
let exact t = Array.copy t.exact

let result_json (r : window_result) =
  Ctg_obs.Jsonx.Obj
    [
      ("window", Num (float_of_int r.index));
      ("n", Num (float_of_int r.n));
      ("overflow", Num (float_of_int r.overflow));
      ("chi2", Num r.statistic);
      ("dof", Num (float_of_int r.dof));
      ("p_value", Num r.p_value);
      ("alpha_k", Num r.alpha_k);
      ("alarm", Bool r.alarm);
      ("max_log", Num r.max_log);
      ("renyi", Num r.renyi);
    ]

let pp_result fmt (r : window_result) =
  Format.fprintf fmt
    "window %d: n=%d chi2=%.2f (dof %d) p=%.4g alpha_k=%.3g%s max_log=%.4f \
     renyi=%.5f"
    r.index r.n r.statistic r.dof r.p_value r.alpha_k
    (if r.alarm then " ALARM" else "")
    r.max_log r.renyi
