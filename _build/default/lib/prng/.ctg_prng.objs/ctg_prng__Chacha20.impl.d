lib/prng/chacha20.ml: Array Bytes Char String
