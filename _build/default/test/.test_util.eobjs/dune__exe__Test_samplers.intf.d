test/test_samplers.mli:
