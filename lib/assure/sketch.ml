type t = {
  counts : int array;  (* counts.(m) = occurrences of magnitude m *)
  mutable overflow : int;
  mutable total : int;
}

let create ~support =
  if support < 0 then invalid_arg "Sketch.create: support must be >= 0";
  { counts = Array.make (support + 1) 0; overflow = 0; total = 0 }

let support t = Array.length t.counts - 1

let add t v =
  let m = abs v in
  if m < Array.length t.counts then t.counts.(m) <- t.counts.(m) + 1
  else t.overflow <- t.overflow + 1;
  t.total <- t.total + 1

(* The always-on hot loop (every engine chunk flows through here): one
   bounds test and one increment per sample, totals folded in once at the
   end.  [pos/len] are validated up front and [m < support+1] guards the
   unsafe accesses. *)
let add_sub t a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Sketch.add_sub";
  let counts = t.counts in
  let bins = Array.length counts in
  let ov = ref 0 in
  for i = pos to pos + len - 1 do
    let m = abs (Array.unsafe_get a i) in
    if m < bins then
      Array.unsafe_set counts m (Array.unsafe_get counts m + 1)
    else incr ov
  done;
  t.overflow <- t.overflow + !ov;
  t.total <- t.total + len

let add_all t a = add_sub t a ~pos:0 ~len:(Array.length a)

let total t = t.total
let overflow t = t.overflow
let count t m = t.counts.(m)

let copy t =
  { counts = Array.copy t.counts; overflow = t.overflow; total = t.total }

let absorb dst src =
  if Array.length dst.counts <> Array.length src.counts then
    invalid_arg "Sketch.absorb: support mismatch";
  for i = 0 to Array.length dst.counts - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.overflow <- dst.overflow + src.overflow;
  dst.total <- dst.total + src.total

let merge a b =
  if Array.length a.counts <> Array.length b.counts then
    invalid_arg "Sketch.merge: support mismatch";
  {
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    overflow = a.overflow + b.overflow;
    total = a.total + b.total;
  }

let equal a b =
  a.counts = b.counts && a.overflow = b.overflow && a.total = b.total

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.overflow <- 0;
  t.total <- 0

(* Observed counts with the overflow tail as a final extra bin — the shape
   the chi-square evaluation consumes. *)
let observed t = Array.append t.counts [| t.overflow |]

let empirical t =
  if t.total = 0 then Array.make (Array.length t.counts) 0.0
  else
    let n = float_of_int t.total in
    Array.map (fun c -> float_of_int c /. n) t.counts

let pp fmt t =
  Format.fprintf fmt "sketch(n=%d, overflow=%d, support=%d)" t.total t.overflow
    (support t)
