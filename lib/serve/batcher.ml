(* The coalescing core of the signing daemon: concurrent submitters block
   on a bounded pending queue while one runner domain drains it in batches.

   Memory is bounded by construction: at most [capacity] queued requests
   plus [max_batch] in flight inside the runner; a submit that finds the
   queue full is *shed* (counted, never enqueued), which is what turns
   overload into 429 responses instead of unbounded growth.

   The runner lingers briefly after the first request of a cycle so that a
   burst of concurrent submitters lands in one batch — the batch-size
   histogram is the observable proof of coalescing. *)

open Ctg_sync.Shim

type 'res outcome = Done of 'res | Shed | Failed of exn

type ('req, 'res) cell = {
  req : 'req;
  t_enqueue : int;  (* Clock.now_ns at submit, for the queue-wait split *)
  mutable state : 'res state;
}

and 'res state = Pending | Fulfilled of 'res | Errored of exn

type ('req, 'res) t = {
  capacity : int;
  max_batch : int;
  linger : float;  (* seconds *)
  run : 'req array -> 'res array;
  mu : Mutex.t;
  work : Condition.t;  (* runner: queue became non-empty, or stopping *)
  done_ : Condition.t;  (* submitters: some cells were filled *)
  queue : ('req, 'res) cell Queue.t;
  mutable stopping : bool;
  mutable shed : int;
  mutable batches : int;
  mutable submitted : int;
  runner : unit Domain.t option ref;
  (* Metrics (optional): batch-size histogram, shed counter, depth gauge,
     and the end-to-end latency split — time a request sat queued (enqueue
     to batch formation) vs time its batch spent inside [run]. *)
  batch_histo : Ctg_obs.Registry.histo option;
  shed_counter : Ctg_obs.Registry.counter option;
  depth_gauge : Ctg_obs.Registry.gauge option;
  queue_wait_histo : Ctg_obs.Registry.histo option;
  service_histo : Ctg_obs.Registry.histo option;
}

let rec runner_loop t =
  Mutex.lock t.mu;
  (* Missed-wakeup audit (ctg_race): predicate re-checked under [t.mu]
     on each wakeup; submit signals [t.work] under the same mutex after
     enqueueing, shutdown broadcasts after setting [stopping]. *)
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work t.mu
  done;
  let draining = t.stopping in
  if Queue.is_empty t.queue && draining then Mutex.unlock t.mu
  else begin
    Mutex.unlock t.mu;
    (* Coalesce: give concurrent submitters a beat to pile in.  Skipped
       when draining — shutdown should not sleep per batch.  [draining]
       was captured under [t.mu] above: the old code re-read the plain
       [t.stopping] field here without the lock, a data race flagged by
       ctg_lint race. *)
    if t.linger > 0.0 && not draining then Unix.sleepf t.linger;
    Mutex.lock t.mu;
    let k = min t.max_batch (Queue.length t.queue) in
    let cells = Array.init k (fun _ -> Queue.pop t.queue) in
    (match t.depth_gauge with
    | Some g -> Ctg_obs.Registry.set_gauge g (float_of_int (Queue.length t.queue))
    | None -> ());
    Mutex.unlock t.mu;
    (* Queue wait is per request (the linger is charged here, which is the
       point: it makes the coalescing delay visible separately from the
       signing work). *)
    (match t.queue_wait_histo with
    | Some h ->
      let now = Ctg_obs.Clock.now_ns () in
      Array.iter
        (fun c -> Ctg_obs.Registry.observe h (max 0 (now - c.t_enqueue)))
        cells
    | None -> ());
    let t_run = Ctg_obs.Clock.now_ns () in
    let result =
      try Ok (t.run (Array.map (fun c -> c.req) cells)) with e -> Error e
    in
    (match t.service_histo with
    | Some h -> Ctg_obs.Registry.observe h (Ctg_obs.Clock.now_ns () - t_run)
    | None -> ());
    Mutex.lock t.mu;
    (match result with
    | Ok out when Array.length out = Array.length cells ->
      Array.iteri (fun i c -> c.state <- Fulfilled out.(i)) cells
    | Ok _ ->
      let e = Failure "Batcher: run returned a wrong-sized array" in
      Array.iter (fun c -> c.state <- Errored e) cells
    | Error e -> Array.iter (fun c -> c.state <- Errored e) cells);
    t.batches <- t.batches + 1;
    Condition.broadcast t.done_;
    Mutex.unlock t.mu;
    (match t.batch_histo with
    | Some h -> Ctg_obs.Registry.observe h k
    | None -> ());
    runner_loop t
  end

let create ?registry ?(labels = []) ?(linger = 0.002) ~capacity ~max_batch ~run
    () =
  if capacity < 1 then invalid_arg "Batcher.create: capacity must be >= 1";
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch must be >= 1";
  let histo name =
    Option.map (fun r -> Ctg_obs.Registry.histo r ~labels name) registry
  in
  let counter name =
    Option.map (fun r -> Ctg_obs.Registry.counter r ~labels name) registry
  in
  let gauge name =
    Option.map (fun r -> Ctg_obs.Registry.gauge r ~labels name) registry
  in
  let t =
    {
      capacity;
      max_batch;
      linger;
      run;
      mu = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      shed = 0;
      batches = 0;
      submitted = 0;
      runner = ref None;
      batch_histo = histo "serve_batch_size";
      shed_counter = counter "serve_shed_total";
      depth_gauge = gauge "serve_queue_depth";
      queue_wait_histo = histo "serve_queue_wait_ns";
      service_histo = histo "serve_service_ns";
    }
  in
  t.runner := Some (Domain.spawn (fun () -> runner_loop t));
  t

let submit t req =
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    Shed
  end
  else if Queue.length t.queue >= t.capacity then begin
    t.shed <- t.shed + 1;
    Mutex.unlock t.mu;
    (match t.shed_counter with
    | Some c -> Ctg_obs.Registry.incr c
    | None -> ());
    Shed
  end
  else begin
    let cell = { req; t_enqueue = Ctg_obs.Clock.now_ns (); state = Pending } in
    Queue.push cell t.queue;
    t.submitted <- t.submitted + 1;
    (match t.depth_gauge with
    | Some g -> Ctg_obs.Registry.set_gauge g (float_of_int (Queue.length t.queue))
    | None -> ());
    Condition.signal t.work;
    (* Missed-wakeup audit (ctg_race): [cell.state] only changes under
       [t.mu] (runner fills cells and broadcasts [done_] while holding
       it), and this loop re-checks it under the same mutex — a
       broadcast between the check and the wait is impossible. *)
    let rec wait () =
      match cell.state with
      | Pending ->
        Condition.wait t.done_ t.mu;
        wait ()
      | Fulfilled res ->
        Mutex.unlock t.mu;
        Done res
      | Errored e ->
        Mutex.unlock t.mu;
        Failed e
    in
    wait ()
  end

let queue_depth t =
  Mutex.lock t.mu;
  let d = Queue.length t.queue in
  Mutex.unlock t.mu;
  d

let shed_count t =
  Mutex.lock t.mu;
  let s = t.shed in
  Mutex.unlock t.mu;
  s

let batches t =
  Mutex.lock t.mu;
  let b = t.batches in
  Mutex.unlock t.mu;
  b

let submitted t =
  Mutex.lock t.mu;
  let s = t.submitted in
  Mutex.unlock t.mu;
  s

let stopping t =
  Mutex.lock t.mu;
  let s = t.stopping in
  Mutex.unlock t.mu;
  s

let shutdown t =
  Mutex.lock t.mu;
  if t.stopping then Mutex.unlock t.mu
  else begin
    t.stopping <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    match !(t.runner) with
    | Some d ->
      Domain.join d;
      t.runner := None
    | None -> ()
  end
