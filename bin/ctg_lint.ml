(* ctg_lint: static analyzer gate for the sampler compilers.

     ctg_lint                         # prove + lint the Table-2 sigmas
     ctg_lint --json                  # machine-readable findings list (CI)
     ctg_lint --sigma 2 --precision 20
     ctg_lint --baseline BENCH_gates.json
     ctg_lint --write-baseline        # refresh BENCH_gates.json

   Exit status is 0 iff every proof holds and no Warning/Error finding
   fired (gate-budget regressions are Error findings). *)

open Cmdliner
module A = Ctg_analysis.Analyze

let sigmas_arg =
  let doc =
    "Sigma to analyze (repeatable).  Default: the Table-2 set 1, 2, \
     6.15543, 215."
  in
  Arg.(value & opt_all string [] & info [ "sigma" ] ~docv:"SIGMA" ~doc)

let precision_arg =
  let doc = "Binary precision n for the analysis (test precision)." in
  Arg.(value & opt int 16 & info [ "precision"; "p" ] ~docv:"N" ~doc)

let tail_cut_arg =
  let doc = "Tail cut factor tau." in
  Arg.(value & opt int 13 & info [ "tail-cut" ] ~docv:"TAU" ~doc)

let json_arg =
  let doc = "Emit a JSON findings list instead of human output." in
  Arg.(value & flag & info [ "json" ] ~doc)

let baseline_arg =
  let doc = "Gate-budget baseline file to check against." in
  Arg.(value & opt string "BENCH_gates.json"
       & info [ "baseline" ] ~docv:"FILE" ~doc)

let no_baseline_arg =
  let doc = "Skip the gate-budget check even if the baseline file exists." in
  Arg.(value & flag & info [ "no-baseline" ] ~doc)

let write_baseline_arg =
  let doc =
    "Measure the targets and (re)write the baseline file instead of \
     checking against it."
  in
  Arg.(value & flag & info [ "write-baseline" ] ~doc)

let slack_arg =
  let doc = "Percent slack allowed over the gate/depth baseline." in
  Arg.(value & opt float 0.0 & info [ "slack" ] ~docv:"PCT" ~doc)

let targets sigmas precision tail_cut =
  match sigmas with
  | [] ->
    if precision = 16 && tail_cut = 13 then A.default_targets
    else
      List.map
        (fun (t : A.target) -> { t with A.precision; tail_cut })
        A.default_targets
  | ss -> List.map (fun sigma -> { A.sigma; precision; tail_cut }) ss

let run sigmas precision tail_cut json baseline_path no_baseline write_baseline
    slack =
  let targets = targets sigmas precision tail_cut in
  if write_baseline then begin
    let entries = List.map A.measure targets in
    Ctg_analysis.Budget.save baseline_path { Ctg_analysis.Budget.entries };
    Format.printf "wrote %s (%d entries)@." baseline_path
      (List.length entries);
    0
  end
  else begin
    let baseline =
      if no_baseline then None
      else if Sys.file_exists baseline_path then
        match Ctg_analysis.Budget.load baseline_path with
        | Ok b -> Some b
        | Error e ->
          Format.eprintf "ctg_lint: cannot read %s: %s@." baseline_path e;
          exit 2
      else None
    in
    let results = List.map (A.run ~slack_pct:slack ?baseline) targets in
    let all_ok = List.for_all A.ok results in
    if json then
      print_string
        (Ctg_analysis.Jsonx.pretty
           (Ctg_analysis.Jsonx.Obj
              [
                ("tool", Ctg_analysis.Jsonx.Str "ctg_lint");
                ( "baseline_checked",
                  Ctg_analysis.Jsonx.Bool (baseline <> None) );
                ("ok", Ctg_analysis.Jsonx.Bool all_ok);
                ( "targets",
                  Ctg_analysis.Jsonx.List (List.map A.to_json results) );
              ]))
    else begin
      List.iter (fun r -> Format.printf "%a@." A.pp r) results;
      (match baseline with
      | Some _ -> Format.printf "gate budgets checked against %s@." baseline_path
      | None ->
        Format.printf
          "no gate-budget baseline checked (missing %s or --no-baseline)@."
          baseline_path);
      Format.printf "%s@."
        (if all_ok then "OK: all proofs hold, no findings"
         else "FAILED: see refuted proofs / findings above")
    end;
    if all_ok then 0 else 1
  end

(* ---------------------------------------------------------------- *)
(* `ctg_lint race`: the shared-state lint (Ctg_race.Lint_race) over    *)
(* the concurrent subsystems.                                          *)
(* ---------------------------------------------------------------- *)

let root_arg =
  let doc = "Repository root to scan (contains lib/)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let race_run json root =
  let module L = Ctg_race.Lint_race in
  let findings, errors, files = L.scan_dirs ~root () in
  let ok = findings = [] && errors = [] in
  if json then
    print_string (Ctg_obs.Jsonx.pretty (L.report_to_json ~files ~errors findings))
  else begin
    List.iter (fun f -> Format.printf "%a@." L.pp_finding f) findings;
    List.iter (fun e -> Format.printf "%s@." e) errors;
    Format.printf "%s (%d files scanned)@."
      (if ok then "OK: no naked primitives, no unguarded shared state"
       else
         Printf.sprintf "FAILED: %d findings, %d errors" (List.length findings)
           (List.length errors))
      files
  end;
  if ok then 0 else 1

let race_cmd =
  let doc =
    "lint the concurrent subsystems for naked Atomic/Mutex/Condition \
     uses outside the Ctg_sync shim, Condition.wait without a predicate \
     loop, and unguarded module-level mutable state"
  in
  Cmd.v (Cmd.info "race" ~doc) Term.(const race_run $ json_arg $ root_arg)

let default_term =
  Term.(
    const run $ sigmas_arg $ precision_arg $ tail_cut_arg $ json_arg
    $ baseline_arg $ no_baseline_arg $ write_baseline_arg $ slack_arg)

let cmd =
  let doc =
    "statically verify the constant-time sampler compilers (taint, BDD \
     equivalence, selector one-hotness, gate budgets); `ctg_lint race` \
     checks the concurrency hygiene of the engine instead"
  in
  (* A group with a default term: the historical `ctg_lint --json` CLI
     (what CI invokes) keeps working unchanged. *)
  Cmd.group ~default:default_term
    (Cmd.info "ctg_lint" ~version:"1.0" ~doc)
    [ race_cmd ]

let () = exit (Cmd.eval' cmd)
