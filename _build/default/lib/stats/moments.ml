type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let std_dev t = sqrt (variance t)

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t
