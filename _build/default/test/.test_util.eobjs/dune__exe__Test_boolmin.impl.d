test/test_boolmin.ml: Alcotest Ctg_boolmin Ctg_prng Format Int64 List QCheck QCheck_alcotest Test
