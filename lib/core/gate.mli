(** Straight-line Boolean programs: the compilation target of both sampler
    compilers and the unit of the repo's cost model.

    Registers [0 .. num_vars-1] are the input variables (the random bits
    [b_0 .. b_{n-1}]); instruction [i] defines register [num_vars + i].
    Programs contain only AND/OR/XOR/NOT/constants, so evaluating one is
    branch-free and secret-independent by construction — the constant-time
    property the paper needs. *)

type reg = int

type instr =
  | And of reg * reg
  | Or of reg * reg
  | Xor of reg * reg
  | Not of reg
  | Const of bool

type t = private {
  num_vars : int;
  instrs : instr array;
  outputs : reg array;  (** [outputs.(i)] holds bit [i] of the sample. *)
  valid : reg option;  (** 1 iff the input string terminates the walk. *)
}

(** Builders accumulate instructions with common-subexpression elimination
    (structural hashing with commutative normalization), so shared selector
    prefixes of Eqn. 2 cost one gate each. *)
type builder

val builder : ?cse:bool -> num_vars:int -> unit -> builder
val var : builder -> int -> reg
val const : builder -> bool -> reg
val band : builder -> reg -> reg -> reg
val bor : builder -> reg -> reg -> reg
val bxor : builder -> reg -> reg -> reg
val bnot : builder -> reg -> reg

val mux : builder -> sel:reg -> if_one:reg -> if_zero:reg -> reg
(** Constant-time select: [(sel & if_one) | (~sel & if_zero)]. *)

val band_list : builder -> reg list -> reg
(** AND of a list ([const true] when empty). *)

val bor_list : builder -> reg list -> reg

val finish : builder -> outputs:reg array -> valid:reg option -> t
(** Also validates the assembled program (see {!validate}) and raises
    [Invalid_argument] on a structural error — builder output is correct
    by construction, so a failure here is a builder bug. *)

val validate : t -> (unit, string) result
(** Structural well-formedness: every operand of instruction [i] names a
    register defined before it (an input or instruction [< i] — no forward
    or self references), and outputs/valid are in range.  A program that
    passes is straight-line AND/OR/XOR/NOT over the input bits, hence
    branch-free and secret-independent to evaluate.  Intended for
    deserializers and any external program loader; [finish] calls it on
    every built program. *)

val make :
  num_vars:int ->
  instrs:instr array ->
  outputs:reg array ->
  valid:reg option ->
  (t, string) result
(** Assemble a program from raw parts, validating first — the entry point
    for loaders (and for tests that need deliberately mutated programs:
    mutate the parts, then [make] re-checks structure). *)

val prune : t -> t
(** Dead-code elimination: drop every instruction whose result cannot reach
    an output or the valid flag, renumbering the survivors.  Semantics are
    preserved register-for-register on outputs/valid. *)

val digest : t -> int64
(** FNV-1a fingerprint of the complete structure (variable count, every
    instruction with operands, outputs, valid register).  Computed once
    right after compilation — the trusted moment — and re-checked later
    by integrity monitors ({!Ctgauss.Sampler.integrity_ok}), it catches
    {e any} in-memory corruption of the gate table, including opcode
    flips too rare for sampled known-answer vectors to expose. *)

val gate_count : t -> int
(** Number of non-constant instructions (the paper's cost proxy). *)

val depth : t -> int
(** Longest dependency chain, counting non-constant gates. *)

val pp_stats : Format.formatter -> t -> unit
