(** Bounded request-coalescing queue: the batching core of [ctg_serve].

    Concurrent submitters block while one runner domain drains the queue
    in batches of at most [max_batch], lingering briefly after the first
    request of a cycle so a burst of concurrent clients lands in one
    batch.  Memory is bounded by construction — at most [capacity] queued
    plus [max_batch] in-flight requests; a submit that finds the queue
    full is {e shed} (counted on [serve_shed_total]), never enqueued.

    Registered metrics (when [registry] is given, under [labels]):
    [serve_batch_size] histogram — the observable proof of coalescing —
    plus [serve_shed_total] and the [serve_queue_depth] gauge, and the
    latency split: [serve_queue_wait_ns] (per request, enqueue to batch
    formation — the linger is charged here, making the coalescing delay
    visible) vs [serve_service_ns] (per batch, time inside [run]). *)

type 'res outcome =
  | Done of 'res
  | Shed  (** Queue full (counted), or the batcher is shutting down. *)
  | Failed of exn  (** The batch run raised; nothing was produced. *)

type ('req, 'res) t

val create :
  ?registry:Ctg_obs.Registry.t ->
  ?labels:Ctg_obs.Registry.labels ->
  ?linger:float ->
  capacity:int ->
  max_batch:int ->
  run:('req array -> 'res array) ->
  unit ->
  ('req, 'res) t
(** Spawn the runner domain.  [run] receives each batch in submission
    order and must return one result per request (same order); it runs on
    the runner domain and may itself fan out (the daemon runs
    [Sign.sign_many] on a {!Ctg_engine.Workforce}).  [linger] (default
    2 ms) is the coalescing wait between the first request of a cycle and
    the batch cut; it is skipped while draining. *)

val submit : ('req, 'res) t -> 'req -> 'res outcome
(** Enqueue and block until the batch containing this request completes.
    Thread-safe; called from HTTP worker domains. *)

val queue_depth : ('req, 'res) t -> int
val shed_count : ('req, 'res) t -> int
val batches : ('req, 'res) t -> int
val submitted : ('req, 'res) t -> int
val stopping : ('req, 'res) t -> bool

val shutdown : ('req, 'res) t -> unit
(** Graceful drain: stop accepting (subsequent submits are [Shed]), run
    every queued request to completion in final batches (without linger),
    then join the runner.  Idempotent. *)
