lib/fixedpoint/exp.mli: Fixed
