lib/samplers/convolution.mli: Ctg_prng Ctgauss Sampler_sig
