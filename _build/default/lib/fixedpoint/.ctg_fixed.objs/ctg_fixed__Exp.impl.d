lib/fixedpoint/exp.ml: Ctg_bigint Fixed
