lib/falcon/params.ml:
