(** The adversarial crossover experiment: does a monitor alarm before a
    Ratio-attack-style key-recovery estimator gets signal from a biased
    sampler?

    For each bias severity (center shift, variance deflation, stuck PRNG
    bits — built from the {!Ctg_fault.Plan} DSL), the harness runs the
    real Falcon signing pipeline with the faulted base sampler and races
    two observers over the same signature stream:

    - the {e defense}: the online {!Ctg_assure.Drift} monitor fed from
      the base-draw tap, the {!Battery} re-evaluated at every checkpoint
      on the accumulated draws, and a {!Ctg_assure.Leak} assessor (the
      timing channel — included for completeness; distributional faults
      have no timing signature, so it is expected to stay quiet);
    - the {e attack}: a first-moment estimator correlating the mean
      signature vector against the secret-key template the mean shift
      projects onto, plus a second-moment estimator correlating the
      cross-correlation [s1 * adj(s2)] (minus a clean-run baseline the
      attacker is granted) against the key Gram template.

    A severity's row records the first signature count at which each
    side fires; the experiment passes only if {e no} severity lets the
    attack reach signal at or before the earliest monitor alarm, the
    clean control stays quiet on both sides, and at least one severity
    gives the attack genuine signal (so the race is not vacuous).

    Everything — key, salts, fault draws, battery stream — derives from
    one master seed (same contract as [ctg_chaos]). *)

type fault = Value of Ctg_fault.Plan.value_fault | Rng of Ctg_fault.Plan.rng_fault

type severity = { label : string; fault : fault }

val default_severities : severity list
val smoke_severities : severity list

type config = {
  n : int;  (** Ring degree; 64. *)
  sigma : string;
  precision : int;
  tail_cut : int;
  budget : int;  (** Signatures per severity; 2048 (smoke 512). *)
  check_every : int;  (** Checkpoint stride in signatures; 16. *)
  drift_window : int;  (** Drift window in base draws; 2048. *)
  attack_z : float;  (** Key-correlation detection threshold; 4.0. *)
  battery : Battery.config;  (** Widened for sequential use. *)
  severities : severity list;
}

val default_config : config
val smoke_config : config

type row = {
  label : string;
  fault_name : string;
  attack_sigs : int option;
  attack_z_final : float;
  drift_sigs : int option;
  battery_sigs : int option;
  battery_families : string list;
  leak_sigs : int option;
  monitor_sigs : int option;
  winner : string;
  attack_wins_first : bool;
}

type report = {
  seed : int64;
  n : int;
  sigma : string;
  precision : int;
  budget : int;
  check_every : int;
  drift_window : int;
  attack_threshold : float;
  clean_attack_z : float;
  clean_drift_alarms : int;
  clean_battery_pass : bool;
  attack_signals : int;
  rows : row list;
  ok : bool;
}

val run : ?config:config -> seed:int64 -> unit -> report

val to_json : report -> Ctg_obs.Jsonx.t
val pp_row : Format.formatter -> row -> unit
val pp_report : Format.formatter -> report -> unit
