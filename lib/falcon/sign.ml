module Bs = Ctg_prng.Bitstream
module Obs = Ctg_obs

(* Per-stage latency goes to the process registry so the sign pipeline is
   visible in both views: spans (one per stage per attempt) and mergeable
   histograms keyed by stage. *)
(* Stage names are a handful of static strings and the registry lookup
   costs ~150ns per call, so handles are memoized behind a CAS list (a
   losing racer publishes a duplicate entry for the same registry-owned
   histogram, which is harmless). *)
let stage_histo_cache = Atomic.make []

let stage_histo stage =
  match List.assoc_opt stage (Atomic.get stage_histo_cache) with
  | Some h -> h
  | None ->
    let h =
      Obs.Registry.histo Obs.Registry.default
        ~labels:[ ("stage", stage) ]
        "falcon_sign_stage_ns"
    in
    let rec publish () =
      let cur = Atomic.get stage_histo_cache in
      match List.assoc_opt stage cur with
      | Some h' -> h'
      | None ->
        if Atomic.compare_and_set stage_histo_cache cur ((stage, h) :: cur)
        then h
        else publish ()
    in
    publish ()

let stage name f =
  let h = stage_histo name in
  let t0 = Obs.Clock.now_ns () in
  let v = Obs.Trace.with_span name ~cat:"falcon" f in
  Obs.Registry.observe h (Obs.Clock.now_ns () - t0);
  v

type signature = {
  salt : bytes;
  s1 : int array;
  s2 : int array;
  norm_sq : float;
  attempts : int;
}

type fault_hook = attempt:int -> s1:int array -> s2:int array -> int array * int array

(* Signatures rejected by the verify-after-sign countermeasure.  Nonzero
   means a computation fault was caught before anything left the signer. *)
let fault_rejects_counter =
  lazy
    (Obs.Registry.counter Obs.Registry.default
       "falcon_sign_fault_rejects_total")

let signature_norm_sq s1 s2 =
  let acc = ref 0.0 in
  let add s = Array.iter (fun c -> acc := !acc +. (float_of_int c *. float_of_int c)) s in
  add s1;
  add s2;
  !acc

let norm_bound_sq (params : Params.t) =
  (* Each of the 2N Gram-Schmidt coordinates carries error variance
     σ_b² + 1/12 ≈ 4.08 under the fixed σ_b = 2 base sampler, and
     Σ‖b̃_i‖² ≈ 2Nq for a balanced NTRU basis, so
     E‖s‖² ≈ 4.08 · 2Nq.  The 1.6 slack absorbs basis imbalance and the
     χ²-like spread; the ideal sampler's E‖s‖² = 2N·(1.17²q) sits far
     below the bound. *)
  let sigma_b = 2.0 in
  let per_coord = (sigma_b *. sigma_b) +. (1.0 /. 12.0) in
  let sum_gs = float_of_int (2 * params.Params.n * params.Params.q) in
  1.6 *. per_coord *. sum_gs

let round_to_int_array (f : Fftc.t) =
  Array.map (fun x -> Float.to_int (Float.round x)) (Fftc.to_real f)

(* Verify-after-sign, the classic fault countermeasure: before a signature
   leaves the signer, check it against the *public* key exactly as a
   verifier would — recover s1 from s2 via h and demand it matches the s1
   the FFT pipeline produced.  A glitch anywhere in ffSampling, the FFT
   arithmetic or the rounding makes (s1, s2) inconsistent with the
   verification equation s1 + s2·h = c and is caught here; only faults
   that forge a *different valid* signature slip through, and those need
   the lattice problem solved.  (Inlined rather than calling {!Verify} —
   that module depends on this one for the norm helper.) *)
(* The public key is fixed across the signatures of one keypair, so its
   forward transform is computed once and keyed on physical equality of
   the [h] array (stable for a keypair's lifetime).  One slot suffices —
   signing loops hammer a single key — and a race merely recomputes. *)
let h_fwd_cache : (int array * int array) option Atomic.t = Atomic.make None

let h_forward plan h =
  match Atomic.get h_fwd_cache with
  | Some (h', fh) when h' == h -> fh
  | _ ->
    let fh = Ntt.forward plan h in
    Atomic.set h_fwd_cache (Some (h, fh));
    fh

let consistent_with_public_key ~params ~h ~c ~s1 ~s2 =
  let n = params.Params.n in
  let plan = Ntt.plan n in
  if Array.length s1 <> n || Array.length s2 <> n || Array.length c <> n then
    false
  else begin
    (* s2's small centered coefficients lift inside the transform's copy
       pass; one allocation for the whole product. *)
    let s2h = Ntt.mul_with_forward plan s2 (h_forward plan h) in
    let ok = ref true in
    let q = Zq.q in
    for i = 0 to n - 1 do
      (* c and s2h are both in [0, q): centered difference without the
         divisions of the generic Zq helpers. *)
      let d = Array.unsafe_get c i - Array.unsafe_get s2h i in
      let d = if d < 0 then d + q else d in
      let d = if d > q / 2 then d - q else d in
      if d <> Array.unsafe_get s1 i then ok := false
    done;
    !ok
  end

let sign ?fault_hook ?(check = true) kp base rng ~msg =
  let params = kp.Keygen.params in
  let n = params.Params.n in
  let qf = float_of_int params.Params.q in
  let bound = norm_bound_sq params in
  let b10, b11 = kp.Keygen.b1_fft in
  let b20, b21 = kp.Keygen.b2_fft in
  let rec attempt k =
    if k > params.Params.max_sign_attempts then
      failwith "Sign.sign: norm bound never met (miscalibrated?)";
    let salt = Bytes.create params.Params.salt_bytes in
    for i = 0 to Bytes.length salt - 1 do
      Bytes.set salt i (Char.chr (Bs.next_byte rng))
    done;
    let c = stage "hash_to_point" (fun () -> Hash_point.hash ~n ~salt ~msg) in
    let c_fft = Fftc.of_int_poly c in
    (* t = (c, 0)·B⁻¹ = (−c·F/q, c·f/q) for B = [[g, −f], [G, −F]]. *)
    let t0 = Fftc.scale (Fftc.mul c_fft kp.Keygen.big_f_fft) (-1.0 /. qf) in
    let t1 = Fftc.scale (Fftc.mul c_fft kp.Keygen.f_fft) (1.0 /. qf) in
    let z0, z1 =
      stage "ff_sampling" (fun () ->
          Ff_sampling.sample kp.Keygen.tree base rng ~t0 ~t1)
    in
    (* s = (t − z)·B: s1 over the first column (g, G), s2 over (−f, −F). *)
    let s1, s2 =
      stage "ntt" (fun () ->
          let d0 = Fftc.sub t0 z0 and d1 = Fftc.sub t1 z1 in
          let s1 =
            round_to_int_array (Fftc.add (Fftc.mul d0 b10) (Fftc.mul d1 b20))
          in
          let s2 =
            round_to_int_array (Fftc.add (Fftc.mul d0 b11) (Fftc.mul d1 b21))
          in
          (s1, s2))
    in
    (* The injection seam sits where a computation glitch would: between
       producing (s1, s2) and the output checks. *)
    let s1, s2 =
      match fault_hook with
      | Some f -> f ~attempt:k ~s1 ~s2
      | None -> (s1, s2)
    in
    let norm_sq = signature_norm_sq s1 s2 in
    if norm_sq > bound then attempt (k + 1)
    else if
      check
      && not
           (stage "verify_after_sign" (fun () ->
                consistent_with_public_key ~params ~h:kp.Keygen.h
                  ~c ~s1 ~s2))
    then begin
      (* Faulted signature: count it, burn the salt, try again.  Nothing
         inconsistent is ever returned to the caller. *)
      Obs.Registry.incr (Lazy.force fault_rejects_counter);
      attempt (k + 1)
    end
    else { salt; s1; s2; norm_sq; attempts = k }
  in
  attempt 1

let sign_many ?domains ?backend ?workforce ?lanes ?fault_hook ?check kp
    ~make_base ~seed ~msgs =
  let n = Array.length msgs in
  (match lanes with
  | Some l when Array.length l <> n ->
    invalid_arg "Sign.sign_many: lanes length must match msgs"
  | _ -> ());
  let lane_of i = match lanes with Some l -> l.(i) | None -> i in
  let out = Array.make n None in
  (* One lane and one fresh base sampler per message: the signature of
     message i is independent of scheduling and of the domain count.  A
     serving batch passes explicit [lanes] (assigned at enqueue time), so
     the signature of a request is also independent of which batch it
     landed in. *)
  let body i =
    let lane = lane_of i in
    Obs.Trace.with_span "sign" ~cat:"falcon"
      ~args:(fun () -> [ ("lane", string_of_int lane) ])
      (fun () ->
        (* Terminates the request's causal flow: the serving path starts a
           flow with id = lane at enqueue time, so the arrow lands on this
           per-message slice on whichever domain signed it. *)
        Obs.Trace.flow_end ~id:lane "sig"
          ~args:(fun () -> [ ("lane", string_of_int lane) ]);
        let rng =
          Ctg_engine.Stream_fork.bitstream ?backend ~seed ~lane ()
        in
        let base = make_base () in
        out.(i) <- Some (sign ?fault_hook ?check kp base rng ~msg:msgs.(i)))
  in
  (match workforce with
  | Some w -> Ctg_engine.Workforce.run w ~n body
  | None -> Ctg_engine.Pool.parallel_for ?domains ~n body);
  Array.map
    (function Some s -> s | None -> failwith "Sign.sign_many: missing result")
    out
