module Le = Ctg_kyao.Leaf_enum
module Tt = Ctg_boolmin.Truth_table
module Cube = Ctg_boolmin.Cube

type entry = {
  kappa : int;
  window : int;
  leaves : Le.leaf list;
  bit_tables : Tt.t array;
  hit_table : Tt.t;
}

type t = { enum : Le.t; sample_bits : int; entries : entry array }

let payload_of_leaf ~window (leaf : Le.leaf) =
  let j = leaf.Le.payload in
  assert (j <= window);
  let mask = (1 lsl j) - 1 in
  let value = ref 0 in
  for p = 0 to j - 1 do
    (* Payload variable p is input bit b_{κ+1+p}. *)
    if leaf.Le.bits.(leaf.Le.ones + 1 + p) then value := !value lor (1 lsl p)
  done;
  Cube.make ~mask ~value:!value

let build_entry ~sample_bits ~precision ~delta kappa leaves =
  let window = min delta (max 0 (precision - 1 - kappa)) in
  let bit_tables =
    Array.init sample_bits (fun _ -> Tt.create ~vars:window ~default:Dc)
  in
  let hit_table = Tt.create ~vars:window ~default:Off in
  let mark (leaf : Le.leaf) =
    let cube = payload_of_leaf ~window leaf in
    let minterms = Cube.minterms ~vars:window cube in
    List.iter
      (fun m ->
        Tt.set hit_table m On;
        for bit = 0 to sample_bits - 1 do
          let v = if Le.sample_bit leaf bit then Tt.On else Tt.Off in
          Tt.set bit_tables.(bit) m v
        done)
      minterms
  in
  List.iter mark leaves;
  { kappa; window; leaves; bit_tables; hit_table }

let build (enum : Le.t) =
  let precision = enum.Le.matrix.Ctg_kyao.Matrix.precision in
  let support = enum.Le.matrix.Ctg_kyao.Matrix.support in
  let sample_bits = max 1 (Ctg_util.Bits.bits_needed support) in
  let by_kappa = Array.make (enum.Le.max_ones + 1) [] in
  Array.iter
    (fun (leaf : Le.leaf) ->
      by_kappa.(leaf.Le.ones) <- leaf :: by_kappa.(leaf.Le.ones))
    enum.Le.leaves;
  let entries =
    Array.mapi
      (fun kappa leaves ->
        build_entry ~sample_bits ~precision ~delta:enum.Le.delta kappa
          (List.rev leaves))
      by_kappa
  in
  { enum; sample_bits; entries }
