bin/gauss_gen.mli:
