(** Falcon key generation: draw small [f, g], require [f] invertible mod q,
    compute [h = g·f⁻¹ mod q], solve the NTRU equation for [F, G], and
    precompute everything signing needs (FFT basis, LDL tree, norm bound). *)

type secret = {
  f : int array;
  g : int array;
  big_f : int array;
  big_g : int array;
}

type keypair = {
  params : Params.t;
  secret : secret;
  h : int array;  (** Public key, coefficients in [[0, q)]. *)
  tree : Ldl.t;
  b1_fft : Fftc.t * Fftc.t;  (** (FFT g, FFT −f). *)
  b2_fft : Fftc.t * Fftc.t;  (** (FFT G, FFT −F). *)
  f_fft : Fftc.t;
  big_f_fft : Fftc.t;
  attempts : int;  (** (f, g) draws until NTRUSolve succeeded. *)
}

val generate : Params.t -> Ctg_prng.Bitstream.t -> keypair

val restore : Params.t -> secret:secret -> h:int array -> keypair
(** Rebuild the FFT basis and LDL tree from stored polynomials (the
    deserialization path; [attempts] is set to 0). *)

val check_ntru_equation : keypair -> bool
(** Exact check of [f·G − g·F = q] over Z[x]/(x^N+1). *)

val check_public_key : keypair -> bool
(** [f·h = g mod q]. *)
