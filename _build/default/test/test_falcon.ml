(* Falcon substrate: ring arithmetic, NTRUSolve, LDL/ffSampling geometry,
   sign/verify roundtrips with both base samplers, and the codec.
   Small ring degrees keep the suite fast; the benches run full sizes. *)

module F = Ctg_falcon
module Z = Ctg_bigint.Zint
module Bs = Ctg_prng.Bitstream

let rng () = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "falcon-tests")
let sm seed = Ctg_prng.Splitmix64.create seed

let random_zq_poly rng n = Array.init n (fun _ -> Ctg_prng.Splitmix64.next_int rng F.Zq.q)
let random_small_poly rng n = Array.init n (fun _ -> Ctg_prng.Splitmix64.next_int rng 9 - 4)

let zq_tests =
  [
    Alcotest.test_case "field basics" `Quick (fun () ->
        Alcotest.(check int) "reduce negative" (F.Zq.q - 1) (F.Zq.reduce (-1));
        Alcotest.(check int) "mul" (F.Zq.reduce (12288 * 12288)) (F.Zq.mul 12288 12288);
        Alcotest.(check int) "inv" 1 (F.Zq.mul 5 (F.Zq.inv 5));
        Alcotest.(check int) "centered q-1" (-1) (F.Zq.centered (F.Zq.q - 1));
        Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
            ignore (F.Zq.inv 0)));
    Alcotest.test_case "primitive root has exact order 2n" `Quick (fun () ->
        List.iter
          (fun n ->
            let w = F.Zq.primitive_root_2n n in
            Alcotest.(check int) "order divides" 1 (F.Zq.pow w (2 * n));
            Alcotest.(check bool) "exact order" true (F.Zq.pow w n <> 1))
          [ 16; 256; 1024 ]);
  ]

let ntt_tests =
  [
    Alcotest.test_case "roundtrip" `Quick (fun () ->
        let plan = F.Ntt.plan 64 in
        let a = random_zq_poly (sm 1L) 64 in
        Alcotest.(check (array int)) "inv(fwd(a)) = a" a
          (F.Ntt.inverse plan (F.Ntt.forward plan a)));
    Alcotest.test_case "negacyclic product vs schoolbook" `Quick (fun () ->
        let plan = F.Ntt.plan 32 in
        let r = sm 2L in
        for _ = 1 to 20 do
          let a = random_zq_poly r 32 and b = random_zq_poly r 32 in
          let via_ntt = F.Ntt.negacyclic_mul plan a b in
          let via_school =
            F.Polyz.reduce_mod_q
              (F.Polyz.mul (F.Polyz.of_int_array a) (F.Polyz.of_int_array b))
              ~q:F.Zq.q
          in
          Alcotest.(check (array int)) "equal" via_school via_ntt
        done);
    Alcotest.test_case "x^n = -1 in the ring" `Quick (fun () ->
        let n = 16 in
        let plan = F.Ntt.plan n in
        let x = Array.init n (fun i -> if i = 1 then 1 else 0) in
        (* x^(n) via repeated squaring-free n-1 multiplications. *)
        let acc = ref x in
        for _ = 2 to n do
          acc := F.Ntt.negacyclic_mul plan !acc x
        done;
        let minus_one = Array.init n (fun i -> if i = 0 then F.Zq.q - 1 else 0) in
        Alcotest.(check (array int)) "wraps" minus_one !acc);
    Alcotest.test_case "ring_inv" `Quick (fun () ->
        let plan = F.Ntt.plan 32 in
        let r = sm 3L in
        let rec find () =
          let a = random_zq_poly r 32 in
          if F.Ntt.invertible plan a then a else find ()
        in
        let a = find () in
        let one = Array.init 32 (fun i -> if i = 0 then 1 else 0) in
        Alcotest.(check (array int)) "a·a⁻¹" one
          (F.Ntt.negacyclic_mul plan a (F.Ntt.ring_inv plan a)));
  ]

let fft_tests =
  [
    Alcotest.test_case "roundtrip accuracy" `Quick (fun () ->
        let a = Array.map float_of_int (random_small_poly (sm 4L) 128) in
        let back = F.Fftc.to_real (F.Fftc.of_real a) in
        Array.iteri
          (fun i x ->
            Alcotest.(check (float 1e-9)) (Printf.sprintf "coeff %d" i) x back.(i))
          a);
    Alcotest.test_case "pointwise mul is ring mul" `Quick (fun () ->
        let a = random_small_poly (sm 5L) 32 and b = random_small_poly (sm 6L) 32 in
        let fm =
          F.Fftc.to_real (F.Fftc.mul (F.Fftc.of_int_poly a) (F.Fftc.of_int_poly b))
        in
        let exact =
          F.Polyz.mul (F.Polyz.of_int_array a) (F.Polyz.of_int_array b)
        in
        Array.iteri
          (fun i c ->
            Alcotest.(check (float 1e-6)) "coeff" (Z.to_float c) fm.(i))
          exact);
    Alcotest.test_case "split/merge semantics" `Quick (fun () ->
        let a = Array.map float_of_int (random_small_poly (sm 7L) 64) in
        let f = F.Fftc.of_real a in
        let f0, f1 = F.Fftc.split f in
        let c0 = F.Fftc.to_real f0 and c1 = F.Fftc.to_real f1 in
        for i = 0 to 31 do
          Alcotest.(check (float 1e-9)) "even" a.(2 * i) c0.(i);
          Alcotest.(check (float 1e-9)) "odd" a.((2 * i) + 1) c1.(i)
        done;
        let g = F.Fftc.merge f0 f1 in
        Array.iteri
          (fun i x -> Alcotest.(check (float 1e-9)) "merge" x g.F.Fftc.re.(i))
          f.F.Fftc.re);
    Alcotest.test_case "adjoint matches coefficient involution" `Quick
      (fun () ->
        let a = random_small_poly (sm 8L) 16 in
        let direct = F.Fftc.to_real (F.Fftc.adjoint (F.Fftc.of_int_poly a)) in
        let expected =
          Array.map Z.to_float (F.Polyz.adjoint (F.Polyz.of_int_array a))
        in
        Array.iteri
          (fun i x -> Alcotest.(check (float 1e-8)) "coeff" x direct.(i))
          expected);
    Alcotest.test_case "in-place split/merge = allocating versions" `Quick
      (fun () ->
        let a = Array.map float_of_int (random_small_poly (sm 9L) 32) in
        let f = F.Fftc.of_real a in
        let f0, f1 = F.Fftc.split f in
        let g0 = F.Fftc.create 16 and g1 = F.Fftc.create 16 in
        F.Fftc.split_into f (g0, g1);
        Alcotest.(check bool) "halves equal" true
          (f0.F.Fftc.re = g0.F.Fftc.re && f1.F.Fftc.re = g1.F.Fftc.re);
        let out = F.Fftc.create 32 in
        F.Fftc.merge_into (g0, g1) out;
        let reference = F.Fftc.merge f0 f1 in
        Alcotest.(check bool) "merged equal" true
          (out.F.Fftc.re = reference.F.Fftc.re && out.F.Fftc.im = reference.F.Fftc.im));
  ]

let polyz_tests =
  [
    Alcotest.test_case "field norm identity N(f)(x²) = f(x)·f(−x)" `Quick
      (fun () ->
        let r = sm 10L in
        for _ = 1 to 10 do
          let f = F.Polyz.of_int_array (random_small_poly r 32) in
          Alcotest.(check bool) "identity" true
            (F.Polyz.equal
               (F.Polyz.lift (F.Polyz.field_norm f))
               (F.Polyz.mul f (F.Polyz.galois f)))
        done);
    Alcotest.test_case "field norm is multiplicative" `Quick (fun () ->
        let r = sm 11L in
        let f = F.Polyz.of_int_array (random_small_poly r 16) in
        let g = F.Polyz.of_int_array (random_small_poly r 16) in
        Alcotest.(check bool) "N(fg) = N(f)N(g)" true
          (F.Polyz.equal
             (F.Polyz.field_norm (F.Polyz.mul f g))
             (F.Polyz.mul (F.Polyz.field_norm f) (F.Polyz.field_norm g))));
    Alcotest.test_case "adjoint is an involution" `Quick (fun () ->
        let f = F.Polyz.of_int_array (random_small_poly (sm 12L) 16) in
        Alcotest.(check bool) "f** = f" true
          (F.Polyz.equal f (F.Polyz.adjoint (F.Polyz.adjoint f))));
    Alcotest.test_case "negacyclic wraparound sign" `Quick (fun () ->
        (* (x^(n-1))·x = -1. *)
        let n = 8 in
        let xe i = Array.init n (fun j -> Z.of_int (if j = i then 1 else 0)) in
        let prod = F.Polyz.mul (xe (n - 1)) (xe 1) in
        Alcotest.(check bool) "equals -1" true
          (Z.equal prod.(0) Z.minus_one
          && Array.for_all Z.is_zero (Array.sub prod 1 (n - 1))));
  ]

let egcd_tests =
  [
    Alcotest.test_case "egcd identities" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            let az = Z.of_int a and bz = Z.of_int b in
            let d, u, v = F.Ntru_solve.egcd az bz in
            Alcotest.(check bool) "bezout" true
              (Z.equal d (Z.add (Z.mul u az) (Z.mul v bz)));
            Alcotest.(check bool) "non-negative" true (Z.sign d >= 0))
          [ (12, 18); (-12, 18); (17, 0); (0, 5); (12289, 256); (-7, -21) ]);
    Alcotest.test_case "egcd of coprime huge values" `Quick (fun () ->
        let a = Z.of_string "170141183460469231731687303715884105727" in
        let b = Z.of_string "340282366920938463463374607431768211297" in
        let d, u, v = F.Ntru_solve.egcd a b in
        Alcotest.(check bool) "bezout" true
          (Z.equal d (Z.add (Z.mul u a) (Z.mul v b))));
  ]

let keygen_tests =
  let params = F.Params.custom ~n:32 in
  let kp = F.Keygen.generate params (rng ()) in
  [
    Alcotest.test_case "NTRU equation holds exactly" `Quick (fun () ->
        Alcotest.(check bool) "fG - gF = q" true (F.Keygen.check_ntru_equation kp));
    Alcotest.test_case "public key consistent" `Quick (fun () ->
        Alcotest.(check bool) "f·h = g" true (F.Keygen.check_public_key kp));
    Alcotest.test_case "tree has 2N leaves" `Quick (fun () ->
        Alcotest.(check int) "leaves" 64 (F.Ldl.leaf_count kp.F.Keygen.tree));
    Alcotest.test_case "sum of GS norms approx 2Nq" `Quick (fun () ->
        let expected = float_of_int (2 * 32 * F.Zq.q) in
        let ratio = kp.F.Keygen.tree.F.Ldl.sum_d /. expected in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.3f" ratio)
          true
          (ratio > 0.9 && ratio < 1.3));
    Alcotest.test_case "solved F,G are size-reduced" `Quick (fun () ->
        let bits =
          F.Polyz.max_bits (F.Polyz.of_int_array kp.F.Keygen.secret.F.Keygen.big_f)
        in
        Alcotest.(check bool) (Printf.sprintf "%d bits" bits) true (bits < 24));
    Alcotest.test_case "ntru_solve rejects common factors" `Quick (fun () ->
        (* f = g = 2·(1 + x): every resultant is even, and gcd does not
           divide q = 12289 (odd prime). *)
        let n = 4 in
        let two = Array.init n (fun i -> Z.of_int (if i <= 1 then 2 else 0)) in
        Alcotest.(check bool) "None" true
          (F.Ntru_solve.solve ~q:F.Zq.q ~f:two ~g:two = None));
  ]

let signing_tests =
  let params = F.Params.custom ~n:64 in
  let kp = F.Keygen.generate params (rng ()) in
  let mk_paper_base () =
    let s = Ctgauss.Sampler.create ~sigma:"2" ~precision:64 ~tail_cut:13 () in
    F.Base_sampler.of_instance (Ctg_samplers.Sampler_sig.of_bitsliced s)
  in
  [
    Alcotest.test_case "sign/verify roundtrip (ideal base)" `Quick (fun () ->
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let bound = F.Sign.norm_bound_sq params in
        let msg = Bytes.of_string "attack at dawn" in
        let s = F.Sign.sign kp base r ~msg in
        Alcotest.(check bool) "verifies" true
          (F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound ~msg
             ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2));
    Alcotest.test_case "sign/verify roundtrip (paper sigma=2 base)" `Quick
      (fun () ->
        let base = mk_paper_base () in
        let r = rng () in
        let bound = F.Sign.norm_bound_sq params in
        let msg = Bytes.of_string "attack at dusk" in
        let s = F.Sign.sign kp base r ~msg in
        Alcotest.(check bool) "verifies" true
          (F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound ~msg
             ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2);
        Alcotest.(check int) "2N sampler calls per attempt" (128 * s.F.Sign.attempts)
          (F.Base_sampler.calls base));
    Alcotest.test_case "wrong message rejected" `Quick (fun () ->
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let bound = F.Sign.norm_bound_sq params in
        let s = F.Sign.sign kp base r ~msg:(Bytes.of_string "genuine") in
        Alcotest.(check bool) "forged" false
          (F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound
             ~msg:(Bytes.of_string "forged") ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2));
    Alcotest.test_case "tampered s2 rejected" `Quick (fun () ->
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let bound = F.Sign.norm_bound_sq params in
        let msg = Bytes.of_string "immutable" in
        let s = F.Sign.sign kp base r ~msg in
        let bad = Array.copy s.F.Sign.s2 in
        bad.(0) <- bad.(0) + 2000;
        Alcotest.(check bool) "rejected" false
          (F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound ~msg
             ~salt:s.F.Sign.salt ~s2:bad));
    Alcotest.test_case "signature satisfies the lattice congruence" `Quick
      (fun () ->
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let msg = Bytes.of_string "congruence" in
        let s = F.Sign.sign kp base r ~msg in
        let c = F.Hash_point.hash ~n:64 ~salt:s.F.Sign.salt ~msg in
        let s1' =
          F.Verify.recover_s1 ~params ~h:kp.F.Keygen.h ~c ~s2:s.F.Sign.s2
        in
        Alcotest.(check (array int)) "s1 = c - s2 h"
          (Array.map (fun x -> F.Zq.centered (F.Zq.reduce x)) s.F.Sign.s1)
          s1');
    Alcotest.test_case "hash_point is in range and salt-sensitive" `Quick
      (fun () ->
        let msg = Bytes.of_string "m" in
        let a = F.Hash_point.hash ~n:64 ~salt:(Bytes.make 40 'a') ~msg in
        let b = F.Hash_point.hash ~n:64 ~salt:(Bytes.make 40 'b') ~msg in
        Array.iter
          (fun c -> Alcotest.(check bool) "in range" true (c >= 0 && c < F.Zq.q))
          a;
        Alcotest.(check bool) "different" true (a <> b));
    Alcotest.test_case "paper base error variance" `Quick (fun () ->
        let base = mk_paper_base () in
        Alcotest.(check (float 1e-9)) "sigma_b^2 + 1/12"
          (4.0 +. (1.0 /. 12.0))
          (F.Base_sampler.error_variance base));
  ]

let codec_tests =
  [
    Alcotest.test_case "s2 compression roundtrip" `Quick (fun () ->
        let r = sm 20L in
        for _ = 1 to 50 do
          let s2 = Array.init 64 (fun _ -> Ctg_prng.Splitmix64.next_int r 601 - 300) in
          match F.Codec.decompress_s2 ~n:64 (F.Codec.compress_s2 s2) with
          | Some back -> Alcotest.(check (array int)) "roundtrip" s2 back
          | None -> Alcotest.fail "decode failed"
        done);
    Alcotest.test_case "signature encode/decode" `Quick (fun () ->
        let params = F.Params.custom ~n:64 in
        let salt = Bytes.init 40 (fun i -> Char.chr (i * 3 land 0xff)) in
        let s2 = Array.init 64 (fun i -> (i * 7 mod 300) - 150) in
        let blob = F.Codec.encode_signature ~salt ~s2 in
        (match F.Codec.decode_signature ~params blob with
        | Some (salt', s2') ->
          Alcotest.(check bytes) "salt" salt salt';
          Alcotest.(check (array int)) "s2" s2 s2'
        | None -> Alcotest.fail "decode failed"));
    Alcotest.test_case "public key encode/decode" `Quick (fun () ->
        let h = random_zq_poly (sm 21L) 64 in
        (match F.Codec.decode_public_key ~n:64 (F.Codec.encode_public_key h) with
        | Some h' -> Alcotest.(check (array int)) "roundtrip" h h'
        | None -> Alcotest.fail "decode failed");
        Alcotest.(check int) "14 bits/coeff" 112
          (F.Codec.public_key_bytes h));
    Alcotest.test_case "malformed input rejected" `Quick (fun () ->
        let params = F.Params.custom ~n:64 in
        Alcotest.(check bool) "short" true
          (F.Codec.decode_signature ~params (Bytes.create 10) = None);
        Alcotest.(check bool) "garbage pk value" true
          (F.Codec.decode_public_key ~n:4 (Bytes.make 7 '\xff') = None));
    Alcotest.test_case "oversized coefficient rejected" `Quick (fun () ->
        Alcotest.check_raises "too large"
          (Invalid_argument "Codec.compress_s2: coefficient too large")
          (fun () -> ignore (F.Codec.compress_s2 [| 1 lsl 17 |])));
    Alcotest.test_case "falcon-like signature sizes (intro claim)" `Slow
      (fun () ->
        (* The paper's intro: Falcon minimizes |pk| + |sig|.  At N=512 the
           compressed signature should land near Falcon's ~650 bytes. *)
        let params = F.Params.custom ~n:64 in
        let kp = F.Keygen.generate params (rng ()) in
        let base = F.Base_sampler.ideal () in
        let s = F.Sign.sign kp base (rng ()) ~msg:(Bytes.of_string "size") in
        let bytes = F.Codec.signature_bytes ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2 in
        (* ~1.3 bytes/coeff + salt at this reduced degree. *)
        Alcotest.(check bool) (Printf.sprintf "%d bytes" bytes) true
          (bytes > 40 && bytes < 40 + 2 + (64 * 3)));
  ]

let ffsampling_tests =
  let params = F.Params.custom ~n:32 in
  let kp = F.Keygen.generate params (rng ()) in
  [
    Alcotest.test_case "z lands near the target (nearest-plane quality)" `Quick
      (fun () ->
        (* (t - z)·B must be much shorter than a random lattice vector:
           its squared norm concentrates near (error variance)·Σd. *)
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let n = 32 in
        let qf = float_of_int params.F.Params.q in
        let acc = Ctg_stats.Moments.create () in
        for i = 1 to 30 do
          let salt = Bytes.make 40 (Char.chr i) in
          let c = F.Hash_point.hash ~n ~salt ~msg:(Bytes.of_string "t") in
          let c_fft = F.Fftc.of_int_poly c in
          let t0 = F.Fftc.scale (F.Fftc.mul c_fft kp.F.Keygen.big_f_fft) (-1.0 /. qf) in
          let t1 = F.Fftc.scale (F.Fftc.mul c_fft kp.F.Keygen.f_fft) (1.0 /. qf) in
          let z0, z1 = F.Ff_sampling.sample kp.F.Keygen.tree base r ~t0 ~t1 in
          let d0 = F.Fftc.sub t0 z0 and d1 = F.Fftc.sub t1 z1 in
          let b10, b11 = kp.F.Keygen.b1_fft and b20, b21 = kp.F.Keygen.b2_fft in
          let s1 = F.Fftc.add (F.Fftc.mul d0 b10) (F.Fftc.mul d1 b20) in
          let s2 = F.Fftc.add (F.Fftc.mul d0 b11) (F.Fftc.mul d1 b21) in
          Ctg_stats.Moments.add acc (F.Fftc.norm_sq s1 +. F.Fftc.norm_sq s2)
        done;
        (* Ideal sampler: E = 2N·sigma_sign² = 64·(1.17²·q) ≈ 1.08e6. *)
        let expected =
          float_of_int (2 * n) *. kp.F.Keygen.tree.F.Ldl.sigma_sign ** 2.0
        in
        let ratio = Ctg_stats.Moments.mean acc /. expected in
        Alcotest.(check bool)
          (Printf.sprintf "mean ratio %.2f" ratio)
          true
          (ratio > 0.6 && ratio < 1.6));
    Alcotest.test_case "z coefficients are integers in the FFT domain" `Quick
      (fun () ->
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let t0 = F.Fftc.of_real (Array.make 32 0.3) in
        let t1 = F.Fftc.of_real (Array.make 32 (-0.7)) in
        let z0, z1 = F.Ff_sampling.sample kp.F.Keygen.tree base r ~t0 ~t1 in
        List.iter
          (fun z ->
            Array.iter
              (fun c ->
                Alcotest.(check (float 1e-6)) "integral" (Float.round c) c)
              (F.Fftc.to_real z))
          [ z0; z1 ]);
    Alcotest.test_case "babai reduce shrinks oversized vectors" `Quick
      (fun () ->
        (* Blow F,G up by adding a huge multiple of (f,g); reduce must
           bring the bit size back down near the original. *)
        let f = F.Polyz.of_int_array kp.F.Keygen.secret.F.Keygen.f in
        let g = F.Polyz.of_int_array kp.F.Keygen.secret.F.Keygen.g in
        let big_f = F.Polyz.of_int_array kp.F.Keygen.secret.F.Keygen.big_f in
        let big_g = F.Polyz.of_int_array kp.F.Keygen.secret.F.Keygen.big_g in
        let huge = Ctg_bigint.Zint.shift_left Ctg_bigint.Zint.one 120 in
        let big_f' = F.Polyz.add big_f (F.Polyz.mul_scalar f huge) in
        let big_g' = F.Polyz.add big_g (F.Polyz.mul_scalar g huge) in
        Alcotest.(check bool) "blown up" true (F.Polyz.max_bits big_f' > 100);
        let rf, rg = F.Ntru_solve.reduce ~f ~g big_f' big_g' in
        Alcotest.(check bool)
          (Printf.sprintf "reduced to %d bits" (F.Polyz.max_bits rf))
          true
          (F.Polyz.max_bits rf < 40 && F.Polyz.max_bits rg < 40);
        (* The NTRU equation survives reduction (lattice-preserving op). *)
        let lhs = F.Polyz.sub (F.Polyz.mul f rg) (F.Polyz.mul g rf) in
        let expected =
          Array.init 32 (fun i ->
              if i = 0 then Ctg_bigint.Zint.of_int params.F.Params.q
              else Ctg_bigint.Zint.zero)
        in
        Alcotest.(check bool) "fG - gF = q still" true (F.Polyz.equal lhs expected));
    Alcotest.test_case "verify rejects norms just above the bound" `Quick
      (fun () ->
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let msg = Bytes.of_string "bound check" in
        let s = F.Sign.sign kp base r ~msg in
        (* Tighten the bound below this signature's norm: must reject. *)
        Alcotest.(check bool) "rejected under tight bound" false
          (F.Verify.verify ~params ~h:kp.F.Keygen.h
             ~bound_sq:(s.F.Sign.norm_sq -. 1.0) ~msg ~salt:s.F.Sign.salt
             ~s2:s.F.Sign.s2));
  ]

let keypair_codec_tests =
  [
    Alcotest.test_case "keypair binary roundtrip" `Quick (fun () ->
        let params = F.Params.custom ~n:32 in
        let kp = F.Keygen.generate params (rng ()) in
        let blob = F.Codec.encode_keypair kp in
        match F.Codec.decode_keypair blob with
        | None -> Alcotest.fail "decode failed"
        | Some kp' ->
          Alcotest.(check (array int)) "f" kp.F.Keygen.secret.F.Keygen.f
            kp'.F.Keygen.secret.F.Keygen.f;
          Alcotest.(check (array int)) "G" kp.F.Keygen.secret.F.Keygen.big_g
            kp'.F.Keygen.secret.F.Keygen.big_g;
          Alcotest.(check (array int)) "h" kp.F.Keygen.h kp'.F.Keygen.h;
          Alcotest.(check bool) "restored key still satisfies NTRU" true
            (F.Keygen.check_ntru_equation kp'));
    Alcotest.test_case "restored key signs and verifies" `Quick (fun () ->
        let params = F.Params.custom ~n:32 in
        let kp = F.Keygen.generate params (rng ()) in
        let kp' =
          match F.Codec.decode_keypair (F.Codec.encode_keypair kp) with
          | Some k -> k
          | None -> Alcotest.fail "decode failed"
        in
        let base = F.Base_sampler.ideal () in
        let r = rng () in
        let msg = Bytes.of_string "serialized key" in
        let s = F.Sign.sign kp' base r ~msg in
        Alcotest.(check bool) "verifies" true
          (F.Verify.verify ~params ~h:kp.F.Keygen.h
             ~bound_sq:(F.Sign.norm_bound_sq params) ~msg ~salt:s.F.Sign.salt
             ~s2:s.F.Sign.s2));
    Alcotest.test_case "malformed keypair blobs rejected" `Quick (fun () ->
        Alcotest.(check bool) "empty" true (F.Codec.decode_keypair Bytes.empty = None);
        Alcotest.(check bool) "bad magic" true
          (F.Codec.decode_keypair (Bytes.of_string "NOPE\x08\x00") = None);
        let params = F.Params.custom ~n:16 in
        let kp = F.Keygen.generate params (rng ()) in
        let blob = F.Codec.encode_keypair kp in
        let truncated = Bytes.sub blob 0 (Bytes.length blob - 3) in
        Alcotest.(check bool) "truncated" true
          (F.Codec.decode_keypair truncated = None));
  ]

let () =
  Alcotest.run "falcon"
    [
      ("zq", zq_tests);
      ("ntt", ntt_tests);
      ("fft", fft_tests);
      ("polyz", polyz_tests);
      ("egcd", egcd_tests);
      ("keygen", keygen_tests);
      ("signing", signing_tests);
      ("codec", codec_tests);
      ("keypair-codec", keypair_codec_tests);
      ("ffsampling", ffsampling_tests);
    ]
