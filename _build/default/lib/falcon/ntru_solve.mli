(** NTRUSolve: given small [f, g] in Z[x]/(x^n+1), find [F, G] with
    [f·G − g·F = q] — the hard half of Falcon key generation.

    Algorithm (as in the Falcon reference code): descend by the field norm
    [N(f) = f_e² − x·f_o²] to degree 1, solve the integer Bézout equation
    with an extended GCD, lift back up with [F = F'(x²)·g(−x)], and after
    every lift size-reduce [(F, G)] against [(f, g)] with Babai rounding
    computed on scaled floating-point FFTs. *)

val solve : q:int -> f:Polyz.t -> g:Polyz.t -> (Polyz.t * Polyz.t) option
(** [None] when the resultants share a factor with [q] (the caller draws a
    fresh [f, g]). *)

val egcd :
  Ctg_bigint.Zint.t ->
  Ctg_bigint.Zint.t ->
  Ctg_bigint.Zint.t * Ctg_bigint.Zint.t * Ctg_bigint.Zint.t
(** [(d, u, v)] with [u·a + v·b = d = gcd(a,b) >= 0]; iterative, safe for
    multi-thousand-bit inputs.  Exposed for tests. *)

val reduce : f:Polyz.t -> g:Polyz.t -> Polyz.t -> Polyz.t -> Polyz.t * Polyz.t
(** One full Babai size-reduction of [(F, G)] against [(f, g)]; exposed
    for tests. *)
