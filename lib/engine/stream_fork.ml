type backend = Chacha | Shake

let lane_nonce lane =
  let nonce = Bytes.make 12 '\000' in
  for i = 0 to 7 do
    Bytes.set nonce i (Char.chr ((lane lsr (8 * i)) land 0xff))
  done;
  nonce

(* SHAKE domain separation: the 0x00 byte ends the variable-length seed
   unambiguously (seeds cannot contain a shorter seed as a prefix of the
   same absorbed string), the tag separates this use from every other
   SHAKE call in the repo, and the lane is fixed-width. *)
let shake_input seed lane =
  let tag = "ctg-stream-fork" in
  let buf = Bytes.create (String.length seed + 1 + String.length tag + 8) in
  Bytes.blit_string seed 0 buf 0 (String.length seed);
  Bytes.set buf (String.length seed) '\000';
  Bytes.blit_string tag 0 buf (String.length seed + 1) (String.length tag);
  let off = String.length seed + 1 + String.length tag in
  for i = 0 to 7 do
    Bytes.set buf (off + i) (Char.chr ((lane lsr (8 * i)) land 0xff))
  done;
  buf

let bitstream ?(backend = Chacha) ?(health = true) ~seed ~lane () =
  if lane < 0 then invalid_arg "Stream_fork.bitstream: lane must be >= 0";
  let bs =
    match backend with
    | Chacha ->
      let key = Ctg_prng.Chacha20.key_of_seed seed in
      Ctg_prng.Bitstream.of_chacha
        (Ctg_prng.Chacha20.create ~key ~nonce:(lane_nonce lane))
    | Shake ->
      Ctg_prng.Bitstream.of_shake
        (Ctg_prng.Keccak.shake256 (shake_input seed lane))
  in
  if health then
    Ctg_prng.Bitstream.attach_health bs
      (Ctg_prng.Health.create ~label:(Printf.sprintf "lane %d" lane) ());
  bs
