lib/core/compile_simple.ml: Array Ctg_kyao Ctg_util Gate List Stdlib
