examples/falcon_signing.ml: Array Bytes Char Ctg_falcon Ctg_prng Ctg_samplers Ctgauss Format Sys Unix
