module Nat = Ctg_bigint.Nat

let taylor_terms = ref 0

(* e^-y for 0 <= y < 1 by the alternating Taylor series, summed as two
   non-negative partial sums so everything stays in Nat. *)
let taylor_exp_neg (y : Fixed.t) : Fixed.t =
  let f = y.Fixed.frac_bits in
  let yv = y.Fixed.v in
  let pos = ref (Nat.shift_left Nat.one f) (* term 0 = 1 *) in
  let neg = ref Nat.zero in
  let term = ref (Nat.shift_left Nat.one f) in
  let i = ref 0 in
  while not (Nat.is_zero !term) do
    incr i;
    (* term <- term * y / i *)
    term := Nat.div (Nat.shift_right (Nat.mul !term yv) f) (Nat.of_int !i);
    if !i land 1 = 1 then neg := Nat.add !neg !term
    else pos := Nat.add !pos !term
  done;
  taylor_terms := !i;
  Fixed.create ~frac_bits:f (Nat.sub !pos !neg)

let exp_neg (x : Fixed.t) : Fixed.t =
  let f = x.Fixed.frac_bits in
  let one_v = Nat.shift_left Nat.one f in
  (* Halve until the argument is below 1. *)
  let rec reduce x k =
    if Nat.compare x.Fixed.v one_v < 0 then (x, k)
    else reduce (Fixed.shift_right x 1) (k + 1)
  in
  let y, k = reduce x 0 in
  let r = ref (taylor_exp_neg y) in
  for _ = 1 to k do
    r := Fixed.mul !r !r
  done;
  !r
