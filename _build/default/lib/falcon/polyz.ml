module Z = Ctg_bigint.Zint

type t = Z.t array

let of_int_array a = Array.map Z.of_int a
let to_int_array a = Array.map Z.to_int a
let zero n = Array.make n Z.zero
let add a b = Array.map2 Z.add a b
let sub a b = Array.map2 Z.sub a b
let neg a = Array.map Z.neg a
let mul_scalar a s = Array.map (fun c -> Z.mul c s) a
let is_zero a = Array.for_all Z.is_zero a
let equal a b = Array.for_all2 Z.equal a b

(* Negacyclic schoolbook: x^n = -1. *)
let mul a b =
  let n = Array.length a in
  assert (Array.length b = n);
  let out = Array.make n Z.zero in
  for i = 0 to n - 1 do
    if not (Z.is_zero a.(i)) then
      for j = 0 to n - 1 do
        if not (Z.is_zero b.(j)) then begin
          let p = Z.mul a.(i) b.(j) in
          let k = i + j in
          if k < n then out.(k) <- Z.add out.(k) p
          else out.(k - n) <- Z.sub out.(k - n) p
        end
      done
  done;
  out

let adjoint a =
  let n = Array.length a in
  Array.init n (fun i -> if i = 0 then a.(0) else Z.neg a.(n - i))

let galois a =
  Array.mapi (fun i c -> if i land 1 = 1 then Z.neg c else c) a

let field_norm f =
  let n = Array.length f in
  assert (n land 1 = 0);
  let half = n / 2 in
  let fe = Array.init half (fun i -> f.(2 * i)) in
  let fo = Array.init half (fun i -> f.((2 * i) + 1)) in
  let fe2 = mul fe fe and fo2 = mul fo fo in
  (* x·f_o² in Z[x]/(x^half + 1): shift with wraparound sign flip. *)
  let xfo2 =
    Array.init half (fun i ->
        if i = 0 then Z.neg fo2.(half - 1) else fo2.(i - 1))
  in
  sub fe2 xfo2

let lift f =
  let n = Array.length f in
  Array.init (2 * n) (fun i -> if i land 1 = 0 then f.(i / 2) else Z.zero)

let max_bits a =
  Array.fold_left (fun acc c -> max acc (Z.num_bits c)) 0 a

let reduce_mod_q a ~q =
  let qz = Z.of_int q in
  Array.map (fun c -> Z.to_int (snd (Z.ediv_rem c qz))) a
