let t_statistic a b =
  let na = float_of_int (Moments.count a) and nb = float_of_int (Moments.count b) in
  if Moments.count a < 2 || Moments.count b < 2 then 0.0
  else begin
    let se = sqrt ((Moments.variance a /. na) +. (Moments.variance b /. nb)) in
    if se = 0.0 then 0.0 else (Moments.mean a -. Moments.mean b) /. se
  end

let leaky ?(threshold = 4.5) a b = abs_float (t_statistic a b) > threshold
