(** Streaming mean/variance (Welford) — numerically stable accumulation
    used by the timing harnesses and distribution checks. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; 0 for fewer than two observations. *)

val std_dev : t -> float
val of_array : float array -> t
