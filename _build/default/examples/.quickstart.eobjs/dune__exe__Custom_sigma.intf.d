examples/custom_sigma.mli:
