lib/prng/bitstream.mli: Chacha20 Keccak Splitmix64
