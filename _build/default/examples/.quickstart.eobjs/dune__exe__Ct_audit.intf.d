examples/ct_audit.mli:
