module Le = Ctg_kyao.Leaf_enum

(* A full-length product term: cell i is the required value of input bit
   b_i, or Free for a don't-care.  Terms come from leaf strings (length
   level+1, don't-cares beyond), then optionally get merged pairwise. *)
type cell = Zero | One | Free

let term_of_leaf ~n (leaf : Le.leaf) =
  Array.init n (fun i ->
      if i > leaf.Le.level then Free
      else if leaf.Le.bits.(i) then One
      else Zero)

(* One Quine-McCluskey adjacency pass to fixpoint: two terms agreeing
   everywhere except one position where one has Zero and the other One
   merge into the term with that position Free.  O(T²·n) per round; the
   global functions have at most ~1200 terms, so this stays fast. *)
let merge_terms ~n terms =
  let mergeable a b =
    let diff = ref (-1) in
    let rec go i =
      if i >= n then !diff >= 0
      else begin
        match (a.(i), b.(i)) with
        | Zero, Zero | One, One | Free, Free -> go (i + 1)
        | Zero, One | One, Zero ->
          if !diff >= 0 then false
          else begin
            diff := i;
            go (i + 1)
          end
        | Free, Zero | Free, One | Zero, Free | One, Free -> false
      end
    in
    if go 0 then Some !diff else None
  in
  let rec fixpoint terms =
    let arr = Array.of_list terms in
    let t = Array.length arr in
    let dead = Array.make t false in
    let fresh = ref [] in
    let merged_any = ref false in
    for i = 0 to t - 1 do
      for j = i + 1 to t - 1 do
        if (not dead.(i)) || not dead.(j) then begin
          match mergeable arr.(i) arr.(j) with
          | None -> ()
          | Some pos ->
            let m = Array.copy arr.(i) in
            m.(pos) <- Free;
            fresh := m :: !fresh;
            dead.(i) <- true;
            dead.(j) <- true;
            merged_any := true
        end
      done
    done;
    if not !merged_any then terms
    else begin
      let survivors = ref !fresh in
      Array.iteri (fun i t -> if not dead.(i) then survivors := t :: !survivors) arr;
      (* Deduplicate merged results before the next round. *)
      fixpoint (List.sort_uniq Stdlib.compare !survivors)
    end
  in
  fixpoint terms

let compile ?(with_valid = true) ?(merge_adjacent = true) (enum : Le.t) =
  let n = enum.Le.matrix.Ctg_kyao.Matrix.precision in
  let support = enum.Le.matrix.Ctg_kyao.Matrix.support in
  let sample_bits = max 1 (Ctg_util.Bits.bits_needed support) in
  let b = Gate.builder ~num_vars:n () in
  (* Emit one product term; CSE turns shared prefixes into a trie. *)
  let emit_term term =
    let acc = ref (Gate.const b true) in
    for i = 0 to n - 1 do
      (match term.(i) with
      | Free -> ()
      | One -> acc := Gate.band b !acc (Gate.var b i)
      | Zero -> acc := Gate.band b !acc (Gate.bnot b (Gate.var b i)))
    done;
    !acc
  in
  let function_of leaves_pred =
    let terms =
      Array.to_list enum.Le.leaves
      |> List.filter leaves_pred
      |> List.map (term_of_leaf ~n)
    in
    let terms = if merge_adjacent then merge_terms ~n terms else terms in
    Gate.bor_list b (List.map emit_term terms)
  in
  let outputs =
    Array.init sample_bits (fun bit ->
        function_of (fun leaf -> Le.sample_bit leaf bit))
  in
  let valid = if with_valid then Some (function_of (fun _ -> true)) else None in
  Gate.prune (Gate.finish b ~outputs ~valid)
