lib/kyao/ddg_tree.mli: Ctg_prng Format Matrix
