module Gate = Ctgauss.Gate
module Compile = Ctgauss.Compile

type target = { sigma : string; precision : int; tail_cut : int }

(* Test precision: large enough that every sigma has a non-trivial
   selector chain and payload windows, small enough that the full 8-way
   option matrix compiles and proves in seconds even at sigma = 215
   (support 2795). *)
let default_targets =
  [
    { sigma = "1"; precision = 16; tail_cut = 13 };
    { sigma = "2"; precision = 16; tail_cut = 13 };
    { sigma = "6.15543"; precision = 16; tail_cut = 13 };
    { sigma = "215"; precision = 16; tail_cut = 13 };
  ]

type result = {
  target : target;
  gates : int;
  depth : int;
  simple_gates : int;
  proofs : Report.proof list;
  findings : Report.finding list;
  bdd_nodes : int;
}

let option_matrix =
  List.concat_map
    (fun share ->
      List.concat_map
        (fun exact ->
          List.map
            (fun flatten ->
              {
                Compile.with_valid = true;
                share_selectors = share;
                exact_minimize = exact;
                flatten_onehot = flatten;
              })
            [ true; false ])
        [ true; false ])
    [ true; false ]

let options_label (o : Compile.options) =
  let flag name v = if v then name else "no-" ^ name in
  Printf.sprintf "%s,%s,%s"
    (flag "share" o.Compile.share_selectors)
    (flag "exact" o.Compile.exact_minimize)
    (flag "flat" o.Compile.flatten_onehot)

let run ?(slack_pct = 0.0) ?baseline target =
  let { sigma; precision; tail_cut } = target in
  let where = Printf.sprintf "sigma=%s n=%d" sigma precision in
  let enum =
    Ctg_kyao.Leaf_enum.enumerate
      (Ctg_kyao.Matrix.create ~sigma ~precision ~tail_cut)
  in
  let sublists = Ctgauss.Sublist.build enum in
  let simple = Ctgauss.Compile_simple.compile enum in
  let program = Compile.compile sublists in
  let man = Bdd.create ~num_vars:precision in
  let proofs = ref [] in
  let push p = proofs := p :: !proofs in
  (* Taint verification: branch-free fragment + well-formed registers. *)
  let taint_proof name p =
    match Taint.verified (Taint.analyze p) with
    | Ok () ->
      push
        (Report.proof
           ~name:(Printf.sprintf "branch-free(%s)" name)
           ~holds:true
           ~evidence:
             (Printf.sprintf
                "%d instructions, all AND/OR/XOR/NOT/const with backward \
                 register references only"
                (Array.length p.Gate.instrs)))
    | Error e ->
      push
        (Report.proof
           ~name:(Printf.sprintf "branch-free(%s)" name)
           ~holds:false ~evidence:e)
  in
  taint_proof "optimized" program;
  taint_proof "simple" simple;
  (* Equivalence of the full option matrix against the naive reference. *)
  List.iter
    (fun options ->
      let p = Compile.compile ~options sublists in
      let v = Equiv.equivalent man p simple in
      push
        (Report.proof
           ~name:(Printf.sprintf "equiv[%s]" (options_label options))
           ~holds:(v.Equiv.valid_equal && v.Equiv.outputs_equal_on_valid)
           ~evidence:v.Equiv.detail))
    option_matrix;
  (* Selector one-hotness / exhaustiveness, against the compiled valid. *)
  let _, valid_bdd = Equiv.program_bdds man program in
  (match valid_bdd with
  | None ->
    push
      (Report.proof ~name:"selectors-one-hot" ~holds:false
         ~evidence:"default-options program has no valid flag")
  | Some valid ->
    let sv =
      Equiv.selectors_one_hot man
        ~num_entries:(Array.length sublists.Ctgauss.Sublist.entries)
        ~valid
    in
    push
      (Report.proof ~name:"selectors-one-hot" ~holds:sv.Equiv.one_hot
         ~evidence:sv.Equiv.sel_detail);
    push
      (Report.proof ~name:"selectors-exhaustive"
         ~holds:sv.Equiv.exhaustive_on_valid ~evidence:sv.Equiv.sel_detail));
  (* Lints. *)
  let findings =
    Lint.lint ~name:(where ^ " optimized") program
    @ Lint.lint ~name:(where ^ " simple") simple
  in
  (* Gate budget vs the committed baseline. *)
  let measured =
    {
      Budget.sigma;
      precision;
      tail_cut;
      gates = Gate.gate_count program;
      depth = Gate.depth program;
      simple_gates = Gate.gate_count simple;
    }
  in
  let budget_findings =
    match baseline with
    | None -> []
    | Some b -> (
      match Budget.find b ~sigma ~precision ~tail_cut with
      | Some baseline -> Budget.check ~slack_pct ~baseline measured
      | None ->
        [
          Report.finding Report.Error ~rule:"gate-budget" ~where
            "no baseline entry for this target — regenerate BENCH_gates.json";
        ])
  in
  {
    target;
    gates = measured.Budget.gates;
    depth = measured.Budget.depth;
    simple_gates = measured.Budget.simple_gates;
    proofs = List.rev !proofs;
    findings = findings @ budget_findings;
    bdd_nodes = Bdd.node_count man;
  }

let ok r =
  List.for_all (fun (p : Report.proof) -> p.Report.holds) r.proofs
  && not (List.exists Report.fails_ci r.findings)

let measure target =
  Budget.measure ~sigma:target.sigma ~precision:target.precision
    ~tail_cut:target.tail_cut

let pp fmt r =
  Format.fprintf fmt "== sigma=%s n=%d tail_cut=%d ==@." r.target.sigma
    r.target.precision r.target.tail_cut;
  Format.fprintf fmt "gates=%d depth=%d simple_gates=%d (BDD nodes: %d)@."
    r.gates r.depth r.simple_gates r.bdd_nodes;
  List.iter (fun p -> Format.fprintf fmt "  %a@." Report.pp_proof p) r.proofs;
  if r.findings = [] then Format.fprintf fmt "  no findings@."
  else
    List.iter
      (fun f -> Format.fprintf fmt "  %a@." Report.pp_finding f)
      r.findings

let to_json r =
  Jsonx.Obj
    [
      ("sigma", Jsonx.Str r.target.sigma);
      ("precision", Jsonx.Num (float_of_int r.target.precision));
      ("tail_cut", Jsonx.Num (float_of_int r.target.tail_cut));
      ("gates", Jsonx.Num (float_of_int r.gates));
      ("depth", Jsonx.Num (float_of_int r.depth));
      ("simple_gates", Jsonx.Num (float_of_int r.simple_gates));
      ("bdd_nodes", Jsonx.Num (float_of_int r.bdd_nodes));
      ("ok", Jsonx.Bool (ok r));
      ("proofs", Jsonx.List (List.map Report.proof_to_json r.proofs));
      ("findings", Jsonx.List (List.map Report.finding_to_json r.findings));
    ]
