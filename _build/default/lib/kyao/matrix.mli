(** Dense boolean view of the probability matrix, plus per-column data
    needed by the Knuth-Yao walk.

    Rows are sample magnitudes [0..support]; columns are binary digit
    positions [0..precision-1] (column [i] is the [2^-(i+1)] digit). *)

type t = {
  sigma : string;
  precision : int;
  support : int;
  bits : bool array array;  (** [bits.(row).(col)] *)
  col_weight : int array;  (** [h_i] per column. *)
}

val of_table : Ctg_fixed.Gaussian_table.t -> t

val create : sigma:string -> precision:int -> tail_cut:int -> t
(** Convenience: {!Ctg_fixed.Gaussian_table.create} then {!of_table}. *)

val row_for : t -> col:int -> rank:int -> int
(** The sample value of the leaf with distance [rank] at level [col]: the
    [(rank+1)]-th set row scanning from the bottom row ([support]) upward,
    exactly as algorithm 1 subtracts.  [rank] must be in [[0, h_col)]. *)

val leaves_total : t -> int
(** Σ h_i — size of the paper's list L. *)
