(* The parallel engine: deterministic stream forking, the single-flight
   registry, pool determinism across domain counts, distribution quality of
   pooled output, metrics accounting, and parallel Falcon signing.  Small
   precisions keep the compiles fast; determinism claims are exact. *)

module E = Ctg_engine
module Bs = Ctg_prng.Bitstream
module F = Ctg_falcon

let sampler_16 =
  lazy (Ctgauss.Sampler.create ~sigma:"2" ~precision:16 ~tail_cut:13 ())

let take_bits rng n = Array.init n (fun _ -> Bs.next_bits rng 16)

let stream_fork_tests =
  [
    Alcotest.test_case "same (seed, lane) replays identically" `Quick (fun () ->
        List.iter
          (fun backend ->
            let mk () = E.Stream_fork.bitstream ~backend ~seed:"fork" ~lane:3 () in
            Alcotest.(check (array int))
              "identical" (take_bits (mk ()) 64) (take_bits (mk ()) 64))
          [ E.Stream_fork.Chacha; E.Stream_fork.Shake ]);
    Alcotest.test_case "distinct lanes and seeds give distinct streams" `Quick
      (fun () ->
        List.iter
          (fun backend ->
            let stream ~seed ~lane =
              take_bits (E.Stream_fork.bitstream ~backend ~seed ~lane ()) 32
            in
            let base = stream ~seed:"fork" ~lane:0 in
            Alcotest.(check bool) "lane 1 differs" true
              (stream ~seed:"fork" ~lane:1 <> base);
            Alcotest.(check bool) "lane 63 differs" true
              (stream ~seed:"fork" ~lane:63 <> base);
            Alcotest.(check bool) "other seed differs" true
              (stream ~seed:"fork2" ~lane:0 <> base))
          [ E.Stream_fork.Chacha; E.Stream_fork.Shake ]);
    Alcotest.test_case "chacha fork = master key + lane nonce" `Quick (fun () ->
        (* The fork must be the documented construction, not an ad-hoc one:
           lane k's stream equals ChaCha20(key_of_seed seed, nonce(k)). *)
        let seed = "construction" in
        let direct =
          Bs.of_chacha
            (Ctg_prng.Chacha20.create
               ~key:(Ctg_prng.Chacha20.key_of_seed seed)
               ~nonce:(E.Stream_fork.lane_nonce 7))
        in
        let forked = E.Stream_fork.bitstream ~seed ~lane:7 () in
        Alcotest.(check (array int))
          "equal" (take_bits direct 64) (take_bits forked 64));
    Alcotest.test_case "negative lane rejected" `Quick (fun () ->
        Alcotest.check_raises "lane -1"
          (Invalid_argument "Stream_fork.bitstream: lane must be >= 0")
          (fun () ->
            ignore (E.Stream_fork.bitstream ~seed:"x" ~lane:(-1) ())));
  ]

let registry_tests =
  [
    Alcotest.test_case "repeated lookups are physically equal" `Quick (fun () ->
        let r = E.Registry.create () in
        let get () =
          E.Registry.lookup r ~sigma:"2" ~precision:16 ~tail_cut:13 ()
        in
        let a = get () in
        let b = get () in
        Alcotest.(check bool) "physical equality" true (a == b);
        Alcotest.(check int) "one compile" 1 (E.Registry.compiles r);
        Alcotest.(check int) "one entry" 1 (E.Registry.size r));
    Alcotest.test_case "distinct keys compile separately" `Quick (fun () ->
        let r = E.Registry.create () in
        let a = E.Registry.lookup r ~sigma:"2" ~precision:16 ~tail_cut:13 () in
        let b = E.Registry.lookup r ~sigma:"2" ~precision:12 ~tail_cut:13 () in
        let c =
          E.Registry.lookup r ~method_:Ctgauss.Sampler.Simple ~sigma:"2"
            ~precision:16 ~tail_cut:13 ()
        in
        Alcotest.(check bool) "different programs" true (a != b && a != c);
        Alcotest.(check int) "three compiles" 3 (E.Registry.compiles r));
    Alcotest.test_case "single flight under concurrent lookups" `Quick
      (fun () ->
        let r = E.Registry.create () in
        let results = Array.make 4 None in
        let doms =
          List.init 4 (fun i ->
              Domain.spawn (fun () ->
                  results.(i) <-
                    Some
                      (E.Registry.lookup r ~sigma:"1.5" ~precision:16
                         ~tail_cut:13 ())))
        in
        List.iter Domain.join doms;
        let first =
          match results.(0) with Some s -> s | None -> Alcotest.fail "missing"
        in
        Array.iter
          (function
            | Some s ->
              Alcotest.(check bool) "same master" true (s == first)
            | None -> Alcotest.fail "missing result")
          results;
        Alcotest.(check int) "compiled exactly once" 1 (E.Registry.compiles r));
  ]

(* A pool over the shared precision-16 sampler; every test shuts it down. *)
let with_pool ?(domains = 1) ?(seed = "engine-tests") ?chunk_batches f =
  let pool =
    E.Pool.create ~domains ?chunk_batches ~seed (Lazy.force sampler_16)
  in
  Fun.protect ~finally:(fun () -> E.Pool.shutdown pool) (fun () -> f pool)

let pool_tests =
  [
    Alcotest.test_case "same seed, same samples for 1/2/4 domains" `Quick
      (fun () ->
        (* A non-multiple of the chunk size exercises the partial tail. *)
        let n = (63 * 40) + 17 in
        let run domains =
          with_pool ~domains ~chunk_batches:4 (fun p ->
              E.Pool.batch_parallel p ~n)
        in
        let one = run 1 in
        Alcotest.(check int) "length" n (Array.length one);
        Alcotest.(check (array int)) "2 domains" one (run 2);
        Alcotest.(check (array int)) "4 domains" one (run 4));
    Alcotest.test_case "clone of master matches sequential sampler" `Quick
      (fun () ->
        (* Chunk 0 of the first job must equal plain batch_signed on the
           same forked lane: the pool adds scheduling, not semantics. *)
        let n = 63 * 2 in
        let pooled =
          with_pool ~domains:2 ~chunk_batches:4 (fun p ->
              E.Pool.batch_parallel p ~n)
        in
        let rng =
          E.Stream_fork.bitstream ~seed:"engine-tests" ~lane:0 ()
        in
        let clone = Ctgauss.Sampler.clone (Lazy.force sampler_16) in
        let first = Ctgauss.Sampler.batch_signed clone rng in
        let second = Ctgauss.Sampler.batch_signed clone rng in
        let direct = Array.concat [ first; second ] in
        Alcotest.(check (array int)) "equal" direct pooled);
    Alcotest.test_case "successive jobs draw fresh lanes" `Quick (fun () ->
        with_pool ~domains:2 (fun p ->
            let a = E.Pool.batch_parallel p ~n:256 in
            let b = E.Pool.batch_parallel p ~n:256 in
            Alcotest.(check bool) "different randomness" true (a <> b)));
    Alcotest.test_case "iter_batches streams the batch_parallel output" `Quick
      (fun () ->
        (* Two fresh pools with the same seed start from lane 0, so the
           streamed chunks must concatenate to the batch_parallel array. *)
        let n = (63 * 24) + 5 in
        let whole =
          with_pool ~domains:3 ~chunk_batches:2 (fun p ->
              E.Pool.batch_parallel p ~n)
        in
        let streamed =
          with_pool ~domains:3 ~chunk_batches:2 (fun p ->
              let acc = ref [] in
              E.Pool.iter_batches p ~n (fun chunk -> acc := chunk :: !acc);
              Array.concat (List.rev !acc))
        in
        Alcotest.(check (array int)) "identical stream" whole streamed);
    Alcotest.test_case "n = 0 and invalid arguments" `Quick (fun () ->
        with_pool ~domains:2 (fun p ->
            Alcotest.(check (array int)) "empty" [||]
              (E.Pool.batch_parallel p ~n:0);
            Alcotest.check_raises "negative n"
              (Invalid_argument "Pool: n must be >= 0") (fun () ->
                ignore (E.Pool.batch_parallel p ~n:(-1)))));
    Alcotest.test_case "worker exception surfaces on the caller" `Quick
      (fun () ->
        (* The regression this guards: a worker dying mid-chunk used to
           leave batch_parallel blocked on the output queue forever.  Now
           the failure aborts the job and re-raises here. *)
        with_pool ~domains:2 ~chunk_batches:2 (fun p ->
            E.Pool.set_fault_hook p
              (Some (fun ~chunk:_ ~lane:_ ~attempt:_ -> failwith "dead"));
            (match E.Pool.batch_parallel p ~n:(63 * 2 * 6) with
            | _ -> Alcotest.fail "expected Chunk_failed"
            | exception E.Pool.Chunk_failed { error; _ } ->
              Alcotest.(check bool)
                "underlying error kept" true (error = Failure "dead")
            | exception e ->
              Alcotest.fail ("unexpected exception " ^ Printexc.to_string e));
            E.Pool.set_fault_hook p None;
            (* And the pool is still serviceable afterwards. *)
            Alcotest.(check int)
              "next job runs" 63
              (Array.length (E.Pool.batch_parallel p ~n:63))));
    Alcotest.test_case "iter_batches consumer exception propagates" `Quick
      (fun () ->
        with_pool ~domains:2 ~chunk_batches:2 (fun p ->
            let exception Consumer_stop in
            (match
               E.Pool.iter_batches p ~n:(63 * 2 * 8) (fun _ ->
                   raise Consumer_stop)
             with
            | () -> Alcotest.fail "expected the consumer exception"
            | exception Consumer_stop -> ());
            Alcotest.(check int)
              "next job runs" 63
              (Array.length (E.Pool.batch_parallel p ~n:63))));
    Alcotest.test_case "shutdown is idempotent and final" `Quick (fun () ->
        let p = E.Pool.create ~domains:2 ~seed:"bye" (Lazy.force sampler_16) in
        ignore (E.Pool.batch_parallel p ~n:100);
        E.Pool.shutdown p;
        E.Pool.shutdown p;
        Alcotest.check_raises "jobs after shutdown"
          (Invalid_argument "Pool: shut down") (fun () ->
            ignore (E.Pool.batch_parallel p ~n:1)));
    Alcotest.test_case "parallel_for re-raises a worker exception" `Quick
      (fun () ->
        let ran = Atomic.make 0 in
        (match
           E.Pool.parallel_for ~domains:3 ~n:200 (fun i ->
               ignore (Atomic.fetch_and_add ran 1);
               if i = 50 then failwith "iteration 50")
         with
        | () -> Alcotest.fail "expected the iteration failure"
        | exception Failure msg ->
          Alcotest.(check string) "first error wins" "iteration 50" msg);
        (* At least the failing iteration itself ran. *)
        Alcotest.(check bool) "iterations ran" true (Atomic.get ran >= 1));
    Alcotest.test_case "pooled parallel output fits the exact distribution"
      `Quick (fun () ->
        let total = 63 * 1200 in
        let samples =
          with_pool ~domains:4 (fun p -> E.Pool.batch_parallel p ~n:total)
        in
        let m = Ctgauss.Sampler.matrix (Lazy.force sampler_16) in
        let exact = Ctg_stats.Distance.exact_probabilities m in
        let support = m.Ctg_kyao.Matrix.support in
        let observed = Array.make (support + 1) 0 in
        Array.iter
          (fun v ->
            let a = abs v in
            if a <= support then observed.(a) <- observed.(a) + 1)
          samples;
        let expected =
          Array.map (fun p -> p *. float_of_int total) exact
        in
        let r = Ctg_stats.Chi_square.test ~observed ~expected in
        Alcotest.(check bool)
          (Printf.sprintf "p=%.4f above 0.001" r.Ctg_stats.Chi_square.p_value)
          true
          (r.Ctg_stats.Chi_square.p_value > 0.001));
    Alcotest.test_case "metrics account for every sample and batch" `Quick
      (fun () ->
        let n = (63 * 32) + 40 in
        with_pool ~domains:2 ~chunk_batches:4 (fun p ->
            let s0 = E.Metrics.snapshot (E.Pool.metrics p) in
            Alcotest.(check int) "starts empty" 0 s0.E.Metrics.samples;
            ignore (E.Pool.batch_parallel p ~n);
            let s = E.Metrics.snapshot (E.Pool.metrics p) in
            Alcotest.(check int) "samples" n s.E.Metrics.samples;
            (* ceil(n / 63) program runs, counted chunk by chunk. *)
            Alcotest.(check int) "batches" ((n + 62) / 63) s.E.Metrics.batches;
            let gc = Ctgauss.Sampler.gate_count (Lazy.force sampler_16) in
            Alcotest.(check int) "gate evals" (s.E.Metrics.batches * gc)
              s.E.Metrics.gate_evals;
            Alcotest.(check bool) "bits flowed" true (s.E.Metrics.bits_consumed > 0);
            Alcotest.(check bool) "prng worked" true (s.E.Metrics.prng_work > 0);
            Alcotest.(check int) "per-domain sums to total" n
              (Array.fold_left ( + ) 0 s.E.Metrics.per_domain_samples);
            E.Metrics.reset (E.Pool.metrics p);
            let z = E.Metrics.snapshot (E.Pool.metrics p) in
            Alcotest.(check int) "reset" 0 z.E.Metrics.samples));
    Alcotest.test_case "chunk observers see every sample exactly once" `Quick
      (fun () ->
        (* Observers run on worker domains in nondeterministic chunk order,
           but the multiset of (chunk, samples) deliveries is fixed: sorting
           the observed chunks by index must reassemble batch_parallel's
           array, for both sink shapes. *)
        let n = (16 * 63 * 3) + 17 in
        let observe p =
          let mutex = Mutex.create () in
          let chunks = ref [] in
          E.Pool.add_chunk_observer p (fun ~chunk ~lane samples ->
              Mutex.lock mutex;
              chunks := (chunk, lane, Array.copy samples) :: !chunks;
              Mutex.unlock mutex);
          let out = E.Pool.batch_parallel p ~n in
          (out, List.sort compare !chunks)
        in
        let reassemble chunks =
          Array.concat (List.map (fun (_, _, s) -> s) chunks)
        in
        with_pool ~domains:3 (fun p ->
            let out, chunks = observe p in
            Alcotest.(check (array int)) "array sink" out (reassemble chunks);
            (* Lanes are the job's consecutive range: chunk c -> lane_base + c. *)
            let lanes = List.map (fun (c, l, _) -> l - c) chunks in
            Alcotest.(check bool) "constant lane base" true
              (List.for_all (fun b -> b = List.hd lanes) lanes));
        with_pool ~domains:2 (fun p ->
            (* Queue sink: the observer array is the queued chunk itself. *)
            let mutex = Mutex.create () in
            let chunks = ref [] in
            E.Pool.add_chunk_observer p (fun ~chunk ~lane:_ samples ->
                Mutex.lock mutex;
                chunks := (chunk, 0, Array.copy samples) :: !chunks;
                Mutex.unlock mutex);
            let streamed = ref [] in
            E.Pool.iter_batches p ~n (fun c -> streamed := Array.copy c :: !streamed);
            let streamed = Array.concat (List.rev !streamed) in
            Alcotest.(check (array int))
              "queue sink" streamed
              (reassemble (List.sort compare !chunks))));
  ]

let sign_many_tests =
  [
    Alcotest.test_case "identical signatures for 1 and 3 domains" `Quick
      (fun () ->
        let params = F.Params.custom ~n:16 in
        let kp =
          F.Keygen.generate params
            (Bs.of_chacha (Ctg_prng.Chacha20.of_seed "sign-many-key"))
        in
        let master = Lazy.force sampler_16 in
        let make_base () =
          F.Base_sampler.of_instance
            (Ctg_samplers.Sampler_sig.of_bitsliced (Ctgauss.Sampler.clone master))
        in
        let msgs =
          Array.init 6 (fun i -> Bytes.of_string (Printf.sprintf "msg %d" i))
        in
        let run domains =
          F.Sign.sign_many ~domains kp ~make_base ~seed:"sign-many" ~msgs
        in
        let one = run 1 in
        let three = run 3 in
        Array.iteri
          (fun i (s : F.Sign.signature) ->
            Alcotest.(check (array int))
              (Printf.sprintf "s2 of message %d" i)
              s.F.Sign.s2 three.(i).F.Sign.s2;
            Alcotest.(check string)
              (Printf.sprintf "salt of message %d" i)
              (Bytes.to_string s.F.Sign.salt)
              (Bytes.to_string three.(i).F.Sign.salt))
          one;
        (* And they verify. *)
        let bound = F.Sign.norm_bound_sq params in
        Array.iteri
          (fun i (s : F.Sign.signature) ->
            Alcotest.(check bool)
              (Printf.sprintf "message %d verifies" i)
              true
              (F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound
                 ~msg:msgs.(i) ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2))
          one);
  ]

let () =
  Alcotest.run "engine"
    [
      ("stream_fork", stream_fork_tests);
      ("registry", registry_tests);
      ("pool", pool_tests);
      ("sign_many", sign_many_tests);
    ]
