type tree =
  | Leaf of { d : float; sigma' : float }
  | Node of { l : Fftc.t; left : tree; right : tree }

type t = { root : tree; sum_d : float; sigma_sign : float }

(* ffLDL on the 2x2 Gram [[g00, g01], [g01*, g11]] over size n:
   l = g01* / g00, d00 = g00, d11 = g11 − l·g01; children come from the
   split of the self-adjoint d00/d11 as [[d_e, d_o], [d_o*, d_e]]. *)
let rec ff_ldl ~sigma_sign ~sum_d g00 g01 g11 =
  let n = Array.length g00.Fftc.re in
  let l = Fftc.div (Fftc.adjoint g01) g00 in
  let d00 = g00 in
  let d11 = Fftc.sub g11 (Fftc.mul l g01) in
  if n = 1 then begin
    let leaf d =
      let d = Float.max d 1e-9 in
      sum_d := !sum_d +. d;
      Leaf { d; sigma' = sigma_sign /. sqrt d }
    in
    Node { l; left = leaf d00.Fftc.re.(0); right = leaf d11.Fftc.re.(0) }
  end
  else begin
    let child d =
      let d_e, d_o = Fftc.split d in
      (* Child Gram: [[d_e, d_o], [d_o*, d_e]]. *)
      ff_ldl ~sigma_sign ~sum_d d_e d_o d_e
    in
    Node { l; left = child d00; right = child d11 }
  end

let build ~b1 ~b2 ~sigma_sign =
  let b10, b11 = b1 and b20, b21 = b2 in
  let g00 =
    Fftc.add (Fftc.mul b10 (Fftc.adjoint b10)) (Fftc.mul b11 (Fftc.adjoint b11))
  in
  let g01 =
    Fftc.add (Fftc.mul b10 (Fftc.adjoint b20)) (Fftc.mul b11 (Fftc.adjoint b21))
  in
  let g11 =
    Fftc.add (Fftc.mul b20 (Fftc.adjoint b20)) (Fftc.mul b21 (Fftc.adjoint b21))
  in
  let sum_d = ref 0.0 in
  let root = ff_ldl ~sigma_sign ~sum_d g00 g01 g11 in
  { root; sum_d = !sum_d; sigma_sign }

let leaf_count t =
  let rec go = function
    | Leaf _ -> 1
    | Node { left; right; _ } -> go left + go right
  in
  go t.root
