type value = On | Off | Dc
type t = { vars : int; cells : value array }

let create ~vars ~default =
  if vars < 0 || vars > 20 then invalid_arg "Truth_table.create: vars";
  { vars; cells = Array.make (1 lsl vars) default }

let vars t = t.vars
let set t m v = t.cells.(m) <- v
let get t m = t.cells.(m)

let collect t want =
  let acc = ref [] in
  for m = Array.length t.cells - 1 downto 0 do
    if t.cells.(m) = want then acc := m :: !acc
  done;
  !acc

let ones t = collect t On
let dontcares t = collect t Dc

let of_cubes ~vars ~on ~dc =
  let t = create ~vars ~default:Off in
  List.iter (fun c -> List.iter (fun m -> set t m Dc) (Cube.minterms ~vars c)) dc;
  List.iter (fun c -> List.iter (fun m -> set t m On) (Cube.minterms ~vars c)) on;
  t

let equal_function a b =
  a.vars = b.vars
  && begin
       let n = 1 lsl a.vars in
       let rec go m =
         if m >= n then true
         else begin
           let ok =
             match (a.cells.(m), b.cells.(m)) with
             | On, On | Off, Off -> true
             | Dc, _ | _, Dc -> true
             | On, Off | Off, On -> false
           in
           ok && go (m + 1)
         end
       in
       go 0
     end

let implements t f =
  let n = 1 lsl t.vars in
  let rec go m =
    if m >= n then true
    else begin
      let ok =
        match t.cells.(m) with
        | Dc -> true
        | On -> f m
        | Off -> not (f m)
      in
      ok && go (m + 1)
    end
  in
  go 0
