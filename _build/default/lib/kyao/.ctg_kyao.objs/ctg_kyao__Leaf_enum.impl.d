lib/kyao/leaf_enum.ml: Array Buffer Ctg_util Format List Matrix Stdlib
