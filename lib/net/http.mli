(** Minimal stdlib-[Unix] HTTP/1.1 server shared by the metrics endpoint
    ({!Ctg_obs.Http} re-exports this module) and the [ctg_serve] signing
    daemon.

    Just enough protocol for both jobs: GET and POST, keep-alive
    ([Connection: close] honored, HTTP/1.0 defaults to close),
    [Content-Length] and chunked request bodies (bounded), responses always
    framed by [Content-Length].  An acceptor domain feeds accepted
    connections to a small team of worker domains, so [workers] requests
    can be in flight concurrently — which is what lets the signing daemon
    coalesce them into batches.  Handlers therefore must be thread-safe.
    {!stop} drains gracefully: the listener closes first, in-flight
    requests complete and are answered, idle keep-alive connections are
    shut down, then every domain is joined. *)

type request = {
  meth : string;  (** Uppercased: [GET], [POST], ... *)
  path : string;  (** Target path with the query string stripped. *)
  query : (string * string) list;  (** Decoded query parameters, in order. *)
  headers : (string * string) list;  (** Names lowercased, values trimmed. *)
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;  (** Extra response headers, as-is. *)
  body : string;
}

val response :
  ?status:int -> ?content_type:string -> ?headers:(string * string) list ->
  string -> response
(** Defaults: status 200, [text/plain; charset=utf-8], no extra headers. *)

val status_text : int -> string
(** Reason phrase for the status codes this stack emits. *)

type handler = request -> response
(** Runs on a worker domain; exceptions become a 500. *)

type route = string * (unit -> response)
(** Exact path (query string stripped before matching) and its handler —
    the legacy GET-only route table of the metrics endpoint. *)

val handler_of_routes : route list -> handler
(** GET-only routing: non-GET methods yield 405, unknown paths 404,
    handler exceptions 500. *)

val query_param : request -> string -> string option
val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val request_id : request -> string
(** The request's trace id.  Inside a handler run by {!start_handler}
    this is never empty: the server adopts a well-formed client
    [X-Request-Id] (1–64 chars of [\[A-Za-z0-9._-\]]) or generates one
    before dispatch, and echoes it on {e every} response the connection
    writes — 200s, handler errors, and 400/413 parse failures alike.
    Empty only for requests built by hand (tests). *)

val gen_request_id : unit -> string
(** A fresh process-unique id (what the server assigns when the client
    sent none) — also usable client-side to pre-assign an id. *)

val valid_request_id : string -> bool

val percent_decode : string -> string
val parse_query : string -> (string * string) list

val handle : routes:route list -> string -> response
(** Pure routing step: look up the path, run the handler, wrap handler
    exceptions as 500.  Unknown paths yield 404. *)

val handle_request : routes:route list -> string -> response
(** [handler_of_routes] applied to a raw request text; non-GET methods
    yield 405 and malformed request lines 400.  Exposed for in-process
    tests. *)

type server

val start :
  ?host:string ->
  ?backlog:int ->
  ?workers:int ->
  port:int ->
  routes:route list ->
  unit ->
  server
(** Bind ([host] defaults to 127.0.0.1), listen, and serve the GET route
    table on [workers] (default 4) worker domains.  Pass [port:0] to let
    the kernel pick a free port (tests); read it back with {!port}.
    Raises [Unix.Unix_error] if the bind fails. *)

val start_handler :
  ?host:string ->
  ?backlog:int ->
  ?workers:int ->
  ?max_body:int ->
  port:int ->
  handler ->
  server
(** Full-request server: method-aware handler, request bodies up to
    [max_body] bytes (default 1 MiB; larger gets 413). *)

val port : server -> int

val stop : server -> unit
(** Graceful drain: close the listener, let in-flight requests finish and
    be answered, shut down idle keep-alive connections, join every worker
    and the acceptor.  Idempotent. *)
