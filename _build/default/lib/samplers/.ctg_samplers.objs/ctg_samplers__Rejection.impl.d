lib/samplers/rejection.ml: Array Bytes Cdt_table Char Ctg_bigint Ctg_kyao Ctg_prng Ctg_util Sampler_sig
