(** Pearson chi-square goodness-of-fit with a p-value from the regularized
    upper incomplete gamma function (series + continued fraction, as in
    standard numerical practice). *)

type result = { statistic : float; dof : int; p_value : float }

val test : observed:int array -> expected:float array -> result
(** Bins with expected count below 5 are merged, the usual validity rule.
    Merge direction: the array is scanned {e left to right}, accumulating
    consecutive bins until the accumulated expected count reaches 5, at
    which point the group is emitted; a trailing group that never reaches 5
    (the right support edge) is folded into the {e last emitted} group
    rather than dropped, so every observation contributes to the statistic
    exactly once.  At the left edge this means small leading bins merge
    {e rightwards} into their successors; at the right edge small trailing
    bins merge {e leftwards} into the final group — the property tests in
    test_stats pin both edges down.  Degrees of freedom are
    [max 1 (groups - 1)].  [expected] are counts, not probabilities. *)

val gammq : float -> float -> float
(** Regularized upper incomplete gamma Q(a, x); exposed for testing. *)
