(** The three cumulative-distribution-table samplers the paper benchmarks
    against in Table 1.  All share one {!Cdt_table} built from the same
    probability matrix as the bitsliced sampler, so any throughput
    difference is purely algorithmic. *)

val binary_search : Cdt_table.t -> Sampler_sig.instance
(** Peikert-style CDT with binary search [26]: non-constant time (the
    search path and compare costs depend on the draw). *)

val byte_scan : Cdt_table.t -> Sampler_sig.instance
(** Byte-scanning CDT [13]: linear scan with early-exit byte compares —
    the fastest non-constant-time sampler in the paper's Table 1. *)

val linear_ct : Cdt_table.t -> Sampler_sig.instance
(** Linear-search constant-time CDT [7]: every call scans the whole table
    with branch-free full-width compares. *)
