(* ctg_serve: the multi-tenant Falcon signing daemon.

     ctg_serve run [--port 8732] [--trace] ...  # serve until SIGINT/SIGTERM
     ctg_serve client --tenant alice -m "msg"   # sign over HTTP and verify
     ctg_serve client --trace req.json          # + merged causal trace
     ctg_serve smoke [--json FILE]              # in-process e2e for CI

   [run] drains gracefully on SIGINT/SIGTERM: the listener closes,
   in-flight batches complete, the drift window flushes, then the final
   counters are printed.  [smoke] boots a daemon on an ephemeral port,
   fires concurrent clients from several tenants, verifies every returned
   signature against the advertised public key, and checks the batching
   and health invariants CI gates on. *)

open Cmdliner
module Obs = Ctg_obs
module Jsonx = Obs.Jsonx
module F = Ctg_falcon
module Serve = Ctg_serve
module Client = Ctg_net.Client

(* ------------------------------------------------------------------ *)
(* Config plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let config_of ~n ~sigma ~port ~host ~queue ~batch ~linger ~domains ~workers
    ~no_check ~trace ~rtev ~rtev_custom ~pause_budget_ms =
  {
    Serve.Daemon.default_config with
    n;
    sigma;
    port;
    host;
    queue_capacity = queue;
    max_batch = batch;
    linger;
    sign_domains = domains;
    http_workers = workers;
    check = not no_check;
    trace;
    rtev = rtev || rtev_custom || pause_budget_ms > 0.0;
    rtev_custom;
    pause_budget_ms;
  }

let common_args =
  let n =
    Arg.(value & opt int 64
         & info [ "n" ] ~docv:"N"
             ~doc:"Ring degree (power of two; 256/512/1024 = Falcon levels).")
  in
  let sigma =
    Arg.(value & opt string "2" & info [ "sigma" ] ~docv:"S"
         ~doc:"Base sampler sigma.")
  in
  n, sigma

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run n sigma host port queue batch linger domains workers no_check trace
    rtev rtev_custom pause_budget_ms =
  let config =
    config_of ~n ~sigma ~port ~host ~queue ~batch ~linger ~domains ~workers
      ~no_check ~trace ~rtev ~rtev_custom ~pause_budget_ms
  in
  Format.printf "compiling sigma=%s sampler and starting daemon...@." sigma;
  let d = Serve.Daemon.create config in
  Format.printf "ctg_serve listening on %s:%d (n=%d, queue=%d, batch<=%d)@."
    host (Serve.Daemon.port d) n queue batch;
  Format.printf "  POST /v1/sign?tenant=T   GET /v1/pubkey?tenant=T@.";
  Format.printf "  GET /metrics /healthz /drift.json /v1/tenants@.";
  if trace then
    Format.printf "  GET /v1/trace[?request_id=R]  (tracing enabled)@.";
  if config.rtev then
    Format.printf
      "  runtime telemetry: %s (gc_pause_ns, serve_gc_pause_ns%s%s)@."
      (if Serve.Daemon.rtev_active d then "on" else "UNAVAILABLE")
      (if rtev_custom then ", custom span events" else "")
      (if pause_budget_ms > 0.0 then
         Printf.sprintf ", %gms pause budget" pause_budget_ms
       else "");
  let stop_flag = Atomic.make false in
  let request_stop _ = Atomic.set stop_flag true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_flag) do
    (* sleepf returns early (EINTR) when a signal lands. *)
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Format.printf "@.draining...@.";
  let was_rtev = Serve.Daemon.rtev_active d in
  Serve.Daemon.stop d;
  Format.printf
    "served %d requests in %d batches (%d shed), healthy=%b@."
    (Serve.Daemon.requests d) (Serve.Daemon.batches d)
    (Serve.Daemon.batcher_shed d) (Serve.Daemon.healthy d);
  if was_rtev then
    Format.printf "gc pauses: %d (%d minor), total %.3fms, max %.3fms@."
      (Ctg_rtev.Rtev.pause_count ())
      (Ctg_rtev.Rtev.minor_pause_count ())
      (float_of_int (Ctg_rtev.Rtev.total_pause_ns ()) /. 1e6)
      (float_of_int (Ctg_rtev.Rtev.max_pause_ns ()) /. 1e6)

let run_cmd =
  let n, sigma = common_args in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Bind address.")
  in
  let port =
    Arg.(value & opt int 8732 & info [ "port"; "p" ] ~docv:"PORT"
         ~doc:"Listen port (0 = ephemeral).")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
         ~doc:"Sign queue capacity; excess load is shed with 429.")
  in
  let batch =
    Arg.(value & opt int 16 & info [ "max-batch" ] ~docv:"N"
         ~doc:"Max sign requests coalesced into one batch.")
  in
  let linger =
    Arg.(value & opt float 0.002 & info [ "linger" ] ~docv:"SEC"
         ~doc:"Coalescing window after the first request of a cycle.")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains"; "d" ] ~docv:"P"
         ~doc:"Signing worker domains (default: recommended count).")
  in
  let workers =
    Arg.(value & opt int 8 & info [ "http-workers" ] ~docv:"P"
         ~doc:"HTTP worker domains.")
  in
  let no_check =
    Arg.(value & flag
         & info [ "no-check" ] ~doc:"Skip verify-after-sign in the batch run.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Enable span tracing and serve GET /v1/trace (per-request \
                   Chrome trace slices).")
  in
  let rtev =
    Arg.(value & flag
         & info [ "rtev" ]
             ~doc:"Consume the OCaml Runtime_events ring: real per-domain GC \
                   pause histograms (gc_pause_ns), a pause-charged batch \
                   split (serve_gc_pause_ns), and — with $(b,--trace) — GC \
                   pause spans merged into /v1/trace slices.")
  in
  let rtev_custom =
    Arg.(value & flag
         & info [ "rtev-custom" ]
             ~doc:"Also mirror every trace span begin/end as a Runtime_events \
                   custom event (ctg.<name>) for external tooling such as \
                   olly.  Implies $(b,--rtev).")
  in
  let pause_budget_ms =
    Arg.(value & opt float 0.0
         & info [ "pause-budget-ms" ] ~docv:"MS"
             ~doc:"Fail /healthz (gc_pause_budget monitor) if any single GC \
                   pause exceeds this many milliseconds.  Implies \
                   $(b,--rtev); 0 disables.")
  in
  let doc = "serve Falcon signatures over HTTP until SIGINT/SIGTERM" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ n $ sigma $ host $ port $ queue $ batch $ linger
          $ domains $ workers $ no_check $ trace $ rtev $ rtev_custom
          $ pause_budget_ms)

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

let fail fmt = Format.kasprintf (fun s -> prerr_endline s; exit 1) fmt

let member_exn name j =
  match Jsonx.member name j with
  | Some v -> v
  | None -> fail "response is missing %S" name

let str_exn name j =
  match Jsonx.to_str (member_exn name j) with
  | Some s -> s
  | None -> fail "response field %S is not a string" name

let int_exn name j =
  match Jsonx.to_int (member_exn name j) with
  | Some i -> i
  | None -> fail "response field %S is not an int" name

let parse_json body =
  match Jsonx.parse body with
  | Ok j -> j
  | Error e -> fail "bad JSON in response: %s" e

(* Fetch a tenant's public key and return (params, h, bound_sq). *)
let fetch_pubkey c ~tenant =
  let r =
    Client.request c ~meth:"GET" ~path:("/v1/pubkey?tenant=" ^ tenant) ()
  in
  if r.Client.status <> 200 then
    fail "GET /v1/pubkey -> %d: %s" r.Client.status (String.trim r.Client.body);
  let j = parse_json r.Client.body in
  let n = int_exn "n" j in
  let params = Serve.Daemon.params_of_n n in
  let pk = Ctg_util.Hex.decode (str_exn "pk" j) in
  match F.Codec.decode_public_key ~n pk with
  | Some h -> (params, h, F.Sign.norm_bound_sq params)
  | None -> fail "could not decode public key for %s" tenant

let sign_once ?(headers = []) c ~tenant ~msg =
  let r =
    Client.request c ~headers ~meth:"POST" ~path:("/v1/sign?tenant=" ^ tenant)
      ~body:(Bytes.to_string msg) ()
  in
  if r.Client.status <> 200 then
    fail "POST /v1/sign -> %d: %s" r.Client.status (String.trim r.Client.body);
  (parse_json r.Client.body, r.Client.headers)

let verify_response ~params ~h ~bound_sq ~msg j =
  let sig_bytes = Ctg_util.Hex.decode (str_exn "sig" j) in
  match F.Codec.decode_signature ~params sig_bytes with
  | None -> fail "undecodable signature in response"
  | Some (salt, s2) ->
    if not (F.Verify.verify ~params ~h ~bound_sq ~msg ~salt ~s2) then
      fail "signature did NOT verify";
    Bytes.length sig_bytes

(* Merge the daemon's per-request trace slice with the client's own span:
   daemon events keep pid 1, client events are re-homed to pid 2, so the
   viewer shows both processes of the one causal request. *)
let merged_trace ~daemon_json rid =
  let patch_pid = function
    | Jsonx.Obj fields ->
      Jsonx.Obj
        (List.map
           (fun (k, v) -> if k = "pid" then (k, Jsonx.Num 2.0) else (k, v))
           fields)
    | j -> j
  in
  let events_of = function
    | Jsonx.Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Jsonx.List l) -> l
      | _ -> [])
    | _ -> []
  in
  let client_events = List.map patch_pid (events_of (Obs.Trace.export ())) in
  let daemon_events = events_of daemon_json in
  if daemon_events = [] then fail "daemon trace slice has no traceEvents";
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (daemon_events @ client_events));
      ("displayTimeUnit", Jsonx.Str "ms");
      ("ctg_request_id", Jsonx.Str rid);
    ]

let client host port tenant message trace_out =
  (match trace_out with Some _ -> Obs.Trace.enable () | None -> ());
  (* Retrying connect rides out a daemon still booting; the policy's
     deadline doubles as the connection's socket timeout, so a wedged
     daemon turns into an error instead of a hang. *)
  let c = Client.connect_retry ~host ~port () in
  let params, h, bound_sq = fetch_pubkey c ~tenant in
  let msg = Bytes.of_string message in
  let rid = Ctg_net.Http.gen_request_id () in
  let headers =
    match trace_out with Some _ -> [ ("X-Request-Id", rid) ] | None -> []
  in
  let j, resp_headers =
    Obs.Trace.with_span "client_request" ~cat:"client"
      ~args:(fun () -> [ ("request_id", rid); ("tenant", tenant) ])
      (fun () -> sign_once ~headers c ~tenant ~msg)
  in
  let bytes = verify_response ~params ~h ~bound_sq ~msg j in
  (match trace_out with
  | None -> ()
  | Some path ->
    (match List.assoc_opt "x-request-id" resp_headers with
    | Some echoed when echoed = rid -> ()
    | Some echoed -> fail "daemon echoed request id %S, expected %S" echoed rid
    | None -> fail "daemon response carried no X-Request-Id");
    let r =
      Client.request c ~meth:"GET" ~path:("/v1/trace?request_id=" ^ rid) ()
    in
    if r.Client.status <> 200 then
      fail "GET /v1/trace -> %d (daemon not running with --trace?): %s"
        r.Client.status (String.trim r.Client.body);
    let daemon_json = parse_json r.Client.body in
    Obs.Trace.disable ();
    let merged = merged_trace ~daemon_json rid in
    Out_channel.with_open_text path (fun oc ->
        output_string oc (Jsonx.to_string merged);
        output_char oc '\n');
    Format.printf "wrote %s (daemon slice + client span, request_id=%s)@."
      path rid);
  Client.close c;
  Format.printf
    "tenant=%s verified OK: %d signature bytes, %d attempt(s), batch=%d@."
    tenant bytes (int_exn "attempts" j) (int_exn "batch" j)

let client_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Daemon address.")
  in
  let port =
    Arg.(value & opt int 8732 & info [ "port"; "p" ] ~docv:"PORT"
         ~doc:"Daemon port.")
  in
  let tenant =
    Arg.(value & opt string "demo" & info [ "tenant"; "t" ] ~docv:"NAME"
         ~doc:"Tenant to sign as.")
  in
  let message =
    Arg.(value & opt string "hello, falcon" & info [ "message"; "m" ]
         ~docv:"MSG" ~doc:"Message to sign.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Pre-assign an X-Request-Id, fetch the daemon's trace slice \
               for it (the daemon must run with $(b,--trace)) and write the \
               merged client+daemon Chrome trace here.")
  in
  let doc = "sign one message over HTTP and verify the result locally" in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const client $ host $ port $ tenant $ message $ trace_out)

(* ------------------------------------------------------------------ *)
(* smoke                                                               *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let smoke json_out =
  let tenants = [| "alice"; "bob"; "carol" |] in
  let per_tenant = 12 in
  let config =
    { Serve.Daemon.default_config with port = 0; n = 16; queue_capacity = 64;
      max_batch = 8; linger = 0.01 }
  in
  Format.printf "booting daemon on an ephemeral port (n=%d)...@." config.n;
  let d = Serve.Daemon.create config in
  let port = Serve.Daemon.port d in
  Format.printf "up on 127.0.0.1:%d; %d tenants x %d concurrent requests@."
    port (Array.length tenants) per_tenant;
  (* One domain per tenant, each with its own keep-alive connection, all
     hammering concurrently so the linger window actually coalesces. *)
  let failures = Atomic.make 0 in
  let signers =
    Array.map
      (fun tenant ->
        Domain.spawn (fun () ->
            let c = Client.connect_retry ~port () in
            let params, h, bound_sq = fetch_pubkey c ~tenant in
            for i = 1 to per_tenant do
              let msg = Bytes.of_string (Printf.sprintf "%s-msg-%d" tenant i) in
              let j, _ = sign_once c ~tenant ~msg in
              ignore (verify_response ~params ~h ~bound_sq ~msg j : int);
              if str_exn "tenant" j <> tenant then Atomic.incr failures
            done;
            Client.close c))
      tenants
  in
  Array.iter Domain.join signers;
  (* Scrape and check the serving invariants. *)
  let metrics = Client.get_retry ~port "/metrics" in
  if metrics.Client.status <> 200 then fail "/metrics -> %d" metrics.Client.status;
  let health = Client.get_retry ~port "/healthz" in
  let requests = Serve.Daemon.requests d in
  let batches = Serve.Daemon.batches d in
  let shed = Serve.Daemon.batcher_shed d in
  let mean_batch =
    if batches = 0 then 0.0 else float_of_int requests /. float_of_int batches
  in
  Serve.Daemon.stop d;
  let expected = Array.length tenants * per_tenant in
  let checks =
    [
      ("all requests served", requests = expected && Atomic.get failures = 0);
      ("coalescing (mean batch > 1)", mean_batch > 1.0);
      ("no shedding at this load", shed = 0);
      ("/healthz 200", health.Client.status = 200);
      ( "per-tenant metrics exposed",
        Array.for_all
          (fun t ->
            contains metrics.Client.body (Printf.sprintf "tenant=\"%s\"" t))
          tenants );
    ]
  in
  List.iter
    (fun (name, ok) ->
      Format.printf "  %s %s@." (if ok then "ok  " else "FAIL") name)
    checks;
  Format.printf
    "served %d requests in %d batches (mean %.2f), %d shed, healthy=%b@."
    requests batches mean_batch shed (Serve.Daemon.healthy d);
  (match json_out with
  | Some path ->
    let j =
      Jsonx.Obj
        [
          ("requests", Jsonx.Num (float_of_int requests));
          ("batches", Jsonx.Num (float_of_int batches));
          ("mean_batch", Jsonx.Num mean_batch);
          ("shed", Jsonx.Num (float_of_int shed));
          ("healthy", Jsonx.Bool (health.Client.status = 200));
          ( "checks",
            Jsonx.Obj (List.map (fun (n, ok) -> (n, Jsonx.Bool ok)) checks) );
        ]
    in
    let oc = open_out path in
    output_string oc (Jsonx.pretty j ^ "\n");
    close_out oc;
    Format.printf "wrote %s@." path
  | None -> ());
  if not (List.for_all snd checks) then exit 1

let smoke_cmd =
  let json_out =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write the machine-readable verdict here.")
  in
  let doc =
    "in-process e2e smoke: boot a daemon, sign concurrently from several \
     tenants over HTTP, verify every signature, check batching and health"
  in
  Cmd.v (Cmd.info "smoke" ~doc) Term.(const smoke $ json_out)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "multi-tenant Falcon signing daemon with request batching" in
  let info = Cmd.info "ctg_serve" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; client_cmd; smoke_cmd ]))
