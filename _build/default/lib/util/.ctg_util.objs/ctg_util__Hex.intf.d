lib/util/hex.mli:
