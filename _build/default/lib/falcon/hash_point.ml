let hash ~n ~salt ~msg =
  let input = Bytes.cat salt msg in
  let xof = Ctg_prng.Keccak.shake128 input in
  let out = Array.make n 0 in
  (* Accept 16-bit draws below 5·q = 61445 (the largest multiple of q
     below 2^16), reducing mod q: exactly uniform. *)
  let limit = 65536 / Zq.q * Zq.q in
  let rec fill i =
    if i < n then begin
      let b = Ctg_prng.Keccak.squeeze xof 2 in
      let v = (Char.code (Bytes.get b 0) lsl 8) lor Char.code (Bytes.get b 1) in
      if v < limit then begin
        out.(i) <- v mod Zq.q;
        fill (i + 1)
      end
      else fill i
    end
  in
  fill 0;
  out
