module Jsonx = Ctg_obs.Jsonx
module Sig = Ctg_samplers.Sampler_sig
module Bs = Ctg_prng.Bitstream

type entry = {
  sigma : string;
  precision : int;
  samples : int;
  sampling_ns_per_sample : float;  (** Raw signed-draw loop (CDT linear-ct). *)
  battery_ns_per_sample : float;  (** Draw + full battery evaluation. *)
  overhead_pct : float;  (** Battery evaluation cost relative to sampling. *)
  pass : bool;  (** The timed run's own verdict — must be clean. *)
}

(* The battery is an offline acceptance gate, not an always-on monitor,
   so its budget is looser than the 3% online budgets: evaluation may
   cost up to a quarter of the sampling it judges. *)
let threshold_pct = 25.0

let default_set = [ ("1", 16); ("2", 16); ("6.15543", 16); ("215", 16) ]

let measure ?(samples = 200_000) ?(rounds = 3) ~sigma ~precision ~tail_cut ()
    =
  let matrix = Ctg_kyao.Matrix.create ~sigma ~precision ~tail_cut in
  let model = Battery.model matrix in
  let table = Ctg_samplers.Cdt_table.of_matrix matrix in
  let inst = Ctg_samplers.Cdt_samplers.linear_ct table in
  let out = Array.make samples 0 in
  let fill lane =
    let rng =
      Bs.of_chacha
        (Ctg_prng.Chacha20.of_seed (Printf.sprintf "saga-bench-%s-%d" sigma lane))
    in
    for i = 0 to samples - 1 do
      out.(i) <- Sig.sample_signed inst rng
    done
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  fill 0;
  ignore (Battery.evaluate model ~backend:inst.Sig.name ~samples:out ~len:samples);
  let best = ref infinity and best_eval = ref infinity in
  for r = 1 to rounds do
    let t_fill = time (fun () -> fill r) in
    let t_eval =
      time (fun () ->
          ignore
            (Battery.evaluate model ~backend:inst.Sig.name ~samples:out
               ~len:samples))
    in
    if t_fill < !best then best := t_fill;
    if t_eval < !best_eval then best_eval := t_eval
  done;
  let verdict =
    Battery.evaluate model ~backend:inst.Sig.name ~samples:out ~len:samples
  in
  let fs = float_of_int samples in
  {
    sigma;
    precision;
    samples;
    sampling_ns_per_sample = !best *. 1e9 /. fs;
    battery_ns_per_sample = (!best +. !best_eval) *. 1e9 /. fs;
    overhead_pct = 100.0 *. !best_eval /. !best;
    pass = verdict.Battery.pass;
  }

let run ?samples ?rounds ?(set = default_set) () =
  List.map
    (fun (sigma, precision) ->
      measure ?samples ?rounds ~sigma ~precision ~tail_cut:13 ())
    set

let ok entries =
  List.for_all (fun e -> e.overhead_pct <= threshold_pct && e.pass) entries

let entry_json e =
  Jsonx.Obj
    [
      ("sigma", Str e.sigma);
      ("precision", Num (float_of_int e.precision));
      ("samples", Num (float_of_int e.samples));
      ("sampling_ns_per_sample", Num e.sampling_ns_per_sample);
      ("battery_ns_per_sample", Num e.battery_ns_per_sample);
      ("overhead_pct", Num e.overhead_pct);
      ("pass", Bool e.pass);
    ]

let to_json entries =
  Jsonx.Obj
    [
      ("bench", Str "saga");
      ("threshold_pct", Num threshold_pct);
      ("entries", List (List.map entry_json entries));
    ]

let save path entries =
  let oc = open_out path in
  output_string oc (Jsonx.pretty (to_json entries));
  output_char oc '\n';
  close_out oc

let pp_entry fmt e =
  Format.fprintf fmt
    "sigma=%-8s prec=%-3d sampling=%7.1f ns/sample  with-battery=%7.1f \
     ns/sample  eval-overhead=%5.1f%% (budget %.0f%%)  %s"
    e.sigma e.precision e.sampling_ns_per_sample e.battery_ns_per_sample
    e.overhead_pct threshold_pct
    (if e.pass then "PASS" else "FAIL")
