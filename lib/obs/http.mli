(** Minimal stdlib-[Unix] HTTP/1.1 server for metric exposition.

    Just enough protocol to let Prometheus (or [curl]) scrape [/metrics],
    [/healthz] and [/drift.json]: GET only, one request per connection
    ([Connection: close]), handlers run on a dedicated acceptor domain.
    Handlers must therefore be thread-safe — the ctg_obs registry and the
    assure monitors already are. *)

type response = { status : int; content_type : string; body : string }

val response : ?status:int -> ?content_type:string -> string -> response
(** Defaults: status 200, [text/plain; charset=utf-8]. *)

type route = string * (unit -> response)
(** Exact path (query string stripped before matching) and its handler. *)

val handle : routes:route list -> string -> response
(** Pure routing step: look up the path, run the handler, wrap handler
    exceptions as 500.  Unknown paths yield 404. *)

val handle_request : routes:route list -> string -> response
(** [handle] applied to a raw request text; non-GET methods yield 405 and
    malformed request lines 400.  Exposed for in-process tests. *)

type server

val start :
  ?host:string -> ?backlog:int -> port:int -> routes:route list -> unit ->
  server
(** Bind ([host] defaults to 127.0.0.1), listen, and serve on a fresh
    domain.  Pass [port:0] to let the kernel pick a free port (tests);
    read it back with {!port}.  Raises [Unix.Unix_error] if the bind
    fails. *)

val port : server -> int

val stop : server -> unit
(** Close the listening socket and join the acceptor domain.  Idempotent. *)
