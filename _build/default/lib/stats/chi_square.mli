(** Pearson chi-square goodness-of-fit with a p-value from the regularized
    upper incomplete gamma function (series + continued fraction, as in
    standard numerical practice). *)

type result = { statistic : float; dof : int; p_value : float }

val test : observed:int array -> expected:float array -> result
(** Bins with expected count below 5 are merged into their neighbour, the
    usual validity rule.  [expected] are counts, not probabilities. *)

val gammq : float -> float -> float
(** Regularized upper incomplete gamma Q(a, x); exposed for testing. *)
