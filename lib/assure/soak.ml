module Bs = Ctg_prng.Bitstream
module Pool = Ctg_engine.Pool

type t = {
  sigma : string;
  pool : Pool.t;
  monitor : Monitor.t;
  leak : Leak.t;
  batch : int;
  leak_steps : int;
  mutable ticks : int;
}

(* The constant-time property under test is "every batch draws the same
   number of bits", so that is exactly what the background probe measures:
   one batch on a fixed (rebuilt-per-call) stream vs one on a live stream,
   work = consumed bits. *)
let batch_bits_probe sampler =
  let random = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "assure-rnd-probe") in
  fun (clazz : Ctg_ctcheck.Dudect.clazz) ->
    let rng =
      match clazz with
      | Ctg_ctcheck.Dudect.Fix ->
        Bs.of_chacha (Ctg_prng.Chacha20.of_seed "assure-fix-probe")
      | Ctg_ctcheck.Dudect.Random -> random
    in
    let b0 = Bs.bits_consumed rng in
    ignore (Ctgauss.Sampler.batch_signed sampler rng);
    float_of_int (Bs.bits_consumed rng - b0)

let create ?drift_config ?domains ?rng_of_lane ?(batch = 63 * 512)
    ?(leak_steps = 64) ?seed ~sigma ~precision ~tail_cut () =
  if batch < 1 then invalid_arg "Soak.create: batch must be >= 1";
  let sampler =
    Ctg_engine.Registry.lookup Ctg_engine.Registry.global ~sigma ~precision
      ~tail_cut ()
  in
  let seed = match seed with Some s -> s | None -> "assure-soak-" ^ sigma in
  let pool = Pool.create ?domains ?rng_of_lane ~seed sampler in
  let registry = Ctg_engine.Metrics.registry (Pool.metrics pool) in
  let labels = [ ("sigma", sigma) ] in
  let leak =
    Leak.create ~registry ~labels
      ~probe:(batch_bits_probe (Ctgauss.Sampler.clone sampler))
      ()
  in
  let monitor =
    Monitor.create ?config:drift_config ~registry ~labels ~leak
      ~matrix:(Ctgauss.Sampler.matrix sampler) ()
  in
  Monitor.attach_pool monitor pool;
  { sigma; pool; monitor; leak; batch; leak_steps; ticks = 0 }

let tick t =
  ignore (Pool.batch_parallel t.pool ~n:t.batch);
  Leak.step ~n:t.leak_steps t.leak;
  t.ticks <- t.ticks + 1

let run t ~duration =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < duration do
    tick t
  done

let sigma t = t.sigma
let monitor t = t.monitor
let pool t = t.pool
let leak t = t.leak
let ticks t = t.ticks
let samples t = Drift.samples (Monitor.drift t.monitor)
let registry t = Ctg_engine.Metrics.registry (Pool.metrics t.pool)
let routes t = Monitor.routes t.monitor ~registry:(registry t)
let shutdown t = Pool.shutdown t.pool
