lib/stats/moments.mli:
