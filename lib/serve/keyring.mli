(** Per-tenant Falcon keypair registry with single-flight generation.

    Mirrors {!Ctg_engine.Registry}: concurrent {!lookup}s of the same
    tenant block until the one in-flight keygen finishes and then all
    receive the {e same} keypair (physical equality); a failed keygen
    releases the claim so a later lookup retries.  Key material is derived
    deterministically from [seed_prefix ^ ":" ^ tenant], so a restarted
    daemon serves the same demo keys; {!add} installs externally loaded
    keys over that default. *)

type t

val valid_tenant : string -> bool
(** [[A-Za-z0-9_-]{1,32}] — tenant names reach metric labels and URLs,
    so both the charset and the cardinality are bounded. *)

val create :
  ?registry:Ctg_obs.Registry.t ->
  ?seed_prefix:string ->
  params:Ctg_falcon.Params.t ->
  unit ->
  t
(** Key generations are counted on [serve_keyring_keygens_total] in
    [registry] (default the process registry). *)

val lookup : t -> tenant:string -> Ctg_falcon.Keygen.keypair
(** The tenant's keypair, generated on first use (single-flight).
    @raise Invalid_argument on an invalid tenant name. *)

val add : t -> tenant:string -> Ctg_falcon.Keygen.keypair -> unit
(** Install (or replace) a tenant's keypair without generation. *)

val mem : t -> tenant:string -> bool
val tenants : t -> string list
(** Tenants with a ready keypair, sorted. *)

val keygens : t -> int
(** Generations actually performed — with single-flight this stays at one
    per tenant no matter how many lookups raced. *)

val params : t -> Ctg_falcon.Params.t
