(** Arbitrary-precision signed integers on top of {!Nat}.

    Used by Falcon key generation (NTRUSolve works on polynomials whose
    coefficients grow to thousands of bits) and by exact probability
    computations. *)

type t

val zero : t
val one : t
val minus_one : t
val of_int : int -> t
val to_int : t -> int
(** @raise Failure if the value does not fit. *)

val of_nat : Nat.t -> t
val to_nat : t -> Nat.t
(** Absolute value as a {!Nat.t}. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val shift_left : t -> int -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: [a = q*b + r] with [0 <= r < |b|]. *)

val fdiv : t -> t -> t
(** Floor division (rounds toward negative infinity). *)

val cdiv : t -> t -> t
(** Ceiling division (rounds toward positive infinity). *)

val rounded_div : t -> t -> t
(** Division rounded to the nearest integer (ties toward +inf). *)

val divexact : t -> t -> t
(** Exact division; asserts remainder is zero. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val num_bits : t -> int
val to_string : t -> string
val of_string : string -> t
val to_float : t -> float
(** Best-effort conversion; may overflow to infinity for huge values. *)

val pp : Format.formatter -> t -> unit
