open Ctg_sync.Shim

type phase = Complete | Instant | Flow_start | Flow_step | Flow_end

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  id : int;
  args : (string * string) list;
}

(* Single-writer ring with an index-attributed reader protocol, verified
   under the ctg_race model checker (harness `trace_ring`).

   Indices count events ever written; slot [i] lives at [i mod capacity].
   The pre-PR-7 protocol published only [head] (bumped after the slot
   write) and let a reader racing a wrap misattribute a *newer* event to
   an old index — the documented "accepted tracing race".  The window is
   closed by a second counter: [reserved] is bumped past [i] *before*
   slot [i mod cap] is rewritten, so a reader that loads [reserved]
   *after* gathering can discard exactly the indices whose slot may have
   been overwritten mid-read (they become drops, never misattributed).
   Slot cells are atomic so the checker sees every access; each holds a
   whole immutable record. *)
module Ring = struct
  type 'a t = {
    r_slots : 'a option Atomic.t array;
    r_reserved : int Atomic.t;  (* bumped before the slot write *)
    r_head : int Atomic.t;  (* bumped after: published prefix *)
  }

  let create cap =
    if cap < 1 then invalid_arg "Trace.Ring.create: capacity must be >= 1";
    {
      r_slots = Array.init cap (fun _ -> Atomic.make None);
      r_reserved = Atomic.make 0;
      r_head = Atomic.make 0;
    }

  let capacity r = Array.length r.r_slots
  let head r = Atomic.get r.r_head

  (* Owner domain only. *)
  let push r v =
    let i = Atomic.get r.r_head in
    Atomic.set r.r_reserved (i + 1);
    Atomic.set r.r_slots.(i mod Array.length r.r_slots) (Some v);
    Atomic.set r.r_head (i + 1)

  (* Any domain.  Returns (oldest-first [(index, value)] whose
     attribution is certain, dropped-event count). *)
  let read r =
    let cap = Array.length r.r_slots in
    let h = Atomic.get r.r_head in
    let lo = max 0 (h - cap) in
    let gathered = ref [] in
    for i = h - 1 downto lo do
      match Atomic.get r.r_slots.(i mod cap) with
      | Some v -> gathered := (i, v) :: !gathered
      | None -> ()
    done;
    (* Loaded after the gather loop: slot [i] is only rewritten by push
       [i + cap], which bumps reserved past [i + cap] first — so any
       index still >= reserved - cap was read unraced. *)
    let res = Atomic.get r.r_reserved in
    let live = List.filter (fun (i, _) -> i >= res - cap) !gathered in
    let drops = lo + (List.length !gathered - List.length live) in
    (live, drops)

  let reset r =
    Atomic.set r.r_head 0;
    Atomic.set r.r_reserved 0;
    Array.iter (fun c -> Atomic.set c None) r.r_slots
end

type ring = {
  tid : int;
  ring : event Ring.t;
}

let enabled = Atomic.make false
let default_capacity = Atomic.make 16384

let rings : ring list ref = ref []
  [@@race.guarded "rings_mutex"]

let rings_mutex = Mutex.create ()

let dls_key : ring option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let ring_for_self () =
  let cell = Domain.DLS.get dls_key in
  match !cell with
  | Some r -> r
  | None ->
    let r =
      {
        tid = (Domain.self () :> int);
        ring = Ring.create (Atomic.get default_capacity);
      }
    in
    Mutex.lock rings_mutex;
    rings := r :: !rings;
    Mutex.unlock rings_mutex;
    cell := Some r;
    r

let record ev =
  let r = ring_for_self () in
  Ring.push r.ring ev

let inject ev = if Atomic.get enabled then record ev

let enable ?capacity () =
  (match capacity with
  | Some c ->
    if c < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
    Atomic.set default_capacity c
  | None -> ());
  Atomic.set enabled true

let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let reset () =
  Mutex.lock rings_mutex;
  List.iter (fun r -> Ring.reset r.ring) !rings;
  Mutex.unlock rings_mutex

let eval_args = function None -> [] | Some f -> f ()

(* Allocation capture: when [gc_capture] is set (and tracing is enabled —
   the disabled fast path stays one atomic load), every span additionally
   samples [Gc.counters] on entry and exit and appends the per-domain
   word deltas to its args.  The counters are per-domain and monotonic,
   and a span starts and finishes on the same domain, so the deltas are
   non-negative by construction.  [gc_observer] is the hook the ctg_prof
   aggregation layer installs; it runs on the recording domain. *)
let gc_capture = Atomic.make false

type gc_observer =
  name:string -> minor:float -> promoted:float -> major:float ->
  pause_ns:int -> dur_ns:int -> unit

let gc_observer : gc_observer option Atomic.t = Atomic.make None

let set_gc_capture on = Atomic.set gc_capture on
let gc_capture_enabled () = Atomic.get gc_capture
let set_gc_observer obs = Atomic.set gc_observer obs

(* Cumulative process-wide GC pause counter, installed by Ctg_rtev.  When
   present (and gc capture is on), spans sample it on entry/exit and charge
   the delta as [gc_pause_ns] — obs cannot depend on rtev, so the wiring is
   inverted through this hook. *)
let pause_source : (unit -> int) option Atomic.t = Atomic.make None
let set_pause_source src = Atomic.set pause_source src

(* Span begin/end mirror, installed by Ctg_rtev when [--rtev-custom] asks
   for spans to be re-emitted as Runtime_events custom events.  Called as
   [sink name is_begin] on the recording domain. *)
let span_sink : (string -> bool -> unit) option Atomic.t = Atomic.make None
let set_span_sink sink = Atomic.set span_sink sink

let words w = Printf.sprintf "%.0f" w

let with_span ?(cat = "ctg") ?args name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let gc = Atomic.get gc_capture in
    let sink = Atomic.get span_sink in
    (match sink with Some s -> s name true | None -> ());
    let psrc = if gc then Atomic.get pause_source else None in
    let m0, p0, j0 = if gc then Gc.counters () else (0.0, 0.0, 0.0) in
    let z0 = match psrc with Some f -> f () | None -> 0 in
    let t0 = Clock.now_ns () in
    let finish () =
      let dur_ns = Clock.now_ns () - t0 in
      (match sink with Some s -> s name false | None -> ());
      let gc_args =
        if not gc then []
        else begin
          let m1, p1, j1 = Gc.counters () in
          let minor = m1 -. m0 and promoted = p1 -. p0 and major = j1 -. j0 in
          let pause_ns =
            match psrc with Some f -> max 0 (f () - z0) | None -> 0
          in
          (match Atomic.get gc_observer with
          | Some obs -> obs ~name ~minor ~promoted ~major ~pause_ns ~dur_ns
          | None -> ());
          let pause_arg =
            match psrc with
            | Some _ -> [ ("gc_pause_ns", string_of_int pause_ns) ]
            | None -> []
          in
          ("alloc_minor_words", words minor)
          :: ("alloc_promoted_words", words promoted)
          :: ("alloc_major_words", words major)
          :: pause_arg
        end
      in
      record
        {
          name;
          cat;
          ph = Complete;
          ts_ns = t0;
          dur_ns;
          tid = (Domain.self () :> int);
          id = -1;
          args = eval_args args @ gc_args;
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let instant ?(cat = "ctg") ?args name =
  if Atomic.get enabled then
    record
      {
        name;
        cat;
        ph = Instant;
        ts_ns = Clock.now_ns ();
        dur_ns = -1;
        tid = (Domain.self () :> int);
        id = -1;
        args = eval_args args;
      }

(* Flow events: the causal arrows binding a request span to the batch and
   per-domain chunk/sign spans that serve it.  Chrome/Perfetto attach a
   flow event to the slice enclosing its timestamp on the same track, so
   emit these *inside* the relevant [with_span] thunk; events sharing an
   [id] (and name/cat) are drawn as one arrow chain. *)
let flow_event ph ?(cat = "flow") ?args ~id name =
  if Atomic.get enabled then
    record
      {
        name;
        cat;
        ph;
        ts_ns = Clock.now_ns ();
        dur_ns = 0;
        tid = (Domain.self () :> int);
        id;
        args = eval_args args;
      }

let flow_start ?cat ?args ~id name = flow_event Flow_start ?cat ?args ~id name
let flow_step ?cat ?args ~id name = flow_event Flow_step ?cat ?args ~id name
let flow_end ?cat ?args ~id name = flow_event Flow_end ?cat ?args ~id name

let snapshot_rings () =
  Mutex.lock rings_mutex;
  let rs = !rings in
  Mutex.unlock rings_mutex;
  rs

let collect () =
  let acc = ref [] and drops = ref 0 in
  List.iter
    (fun r ->
      let live, d = Ring.read r.ring in
      drops := !drops + d;
      List.iter (fun (_, ev) -> acc := ev :: !acc) live)
    (snapshot_rings ());
  (!acc, !drops)

let events () =
  let evs, _ = collect () in
  List.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with
      | 0 -> ( match compare a.tid b.tid with 0 -> compare a.name b.name | c -> c)
      | c -> c)
    evs

let dropped () = snd (collect ())

let event_to_json ev =
  let base =
    [
      ("name", Jsonx.Str ev.name);
      ("cat", Jsonx.Str ev.cat);
      ("pid", Jsonx.Num 1.0);
      ("tid", Jsonx.Num (float_of_int ev.tid));
      ("ts", Jsonx.Num (float_of_int ev.ts_ns /. 1e3));
    ]
  in
  let flow ph extra =
    ("ph", Jsonx.Str ph) :: ("id", Jsonx.Num (float_of_int ev.id)) :: extra
  in
  let phase =
    match ev.ph with
    | Instant -> [ ("ph", Jsonx.Str "i"); ("s", Jsonx.Str "t") ]
    | Complete ->
      [ ("ph", Jsonx.Str "X"); ("dur", Jsonx.Num (float_of_int ev.dur_ns /. 1e3)) ]
    | Flow_start -> flow "s" []
    | Flow_step -> flow "t" []
    | Flow_end ->
      (* bp:"e" binds the arrow head to the *enclosing* slice rather than
         the next slice to start on the track. *)
      flow "f" [ ("bp", Jsonx.Str "e") ]
  in
  let args =
    match ev.args with
    | [] -> []
    | kvs -> [ ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) kvs)) ]
  in
  Jsonx.Obj (base @ phase @ args)

let export_events ?(dropped = 0) evs =
  let evs =
    List.sort
      (fun a b ->
        match compare a.ts_ns b.ts_ns with
        | 0 -> ( match compare a.tid b.tid with 0 -> compare a.name b.name | c -> c)
        | c -> c)
      evs
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (List.map event_to_json evs));
      ("displayTimeUnit", Jsonx.Str "ms");
      ("ctg_dropped_events", Jsonx.Num (float_of_int dropped));
    ]

let export () =
  let evs, drops = collect () in
  export_events ~dropped:drops evs

let write path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Jsonx.to_string (export ()));
      output_char oc '\n')
