lib/boolmin/cube.ml: Ctg_util Stdlib String
