(* Per-tenant Falcon keypair registry with single-flight generation,
   mirroring Engine.Registry: concurrent lookups of the same tenant block
   until the one in-flight keygen finishes and then all receive the same
   keypair (physical equality).  Keygen at serving parameters costs tens of
   milliseconds to seconds, so it must be paid once per tenant, not once
   per racing request. *)

open Ctg_sync.Shim
module F = Ctg_falcon
module Bs = Ctg_prng.Bitstream

type entry = Ready of F.Keygen.keypair | Building

type t = {
  params : F.Params.t;
  seed_prefix : string;
  mu : Mutex.t;
  cond : Condition.t;
  tbl : (string, entry) Hashtbl.t;
  mutable keygens : int;
  keygen_counter : Ctg_obs.Registry.counter;
}

let max_tenant_len = 32

let valid_tenant name =
  let n = String.length name in
  n >= 1 && n <= max_tenant_len
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
       name

let create ?(registry = Ctg_obs.Registry.default) ?(seed_prefix = "ctg-serve-key")
    ~params () =
  {
    params;
    seed_prefix;
    mu = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 8;
    keygens = 0;
    keygen_counter =
      Ctg_obs.Registry.counter registry "serve_keyring_keygens_total";
  }

let generate t tenant =
  (* Deterministic per-tenant key material: lets a restarted daemon serve
     the same demo keys, and lets tests pin expected signatures. *)
  let rng =
    Bs.of_chacha (Ctg_prng.Chacha20.of_seed (t.seed_prefix ^ ":" ^ tenant))
  in
  F.Keygen.generate t.params rng

let lookup t ~tenant =
  if not (valid_tenant tenant) then
    invalid_arg (Printf.sprintf "Keyring.lookup: invalid tenant %S" tenant);
  Mutex.lock t.mu;
  let rec wait () =
    match Hashtbl.find_opt t.tbl tenant with
    | Some (Ready kp) ->
      Mutex.unlock t.mu;
      kp
    | Some Building ->
      Condition.wait t.cond t.mu;
      wait ()
    | None ->
      Hashtbl.replace t.tbl tenant Building;
      Mutex.unlock t.mu;
      let result =
        try Ok (generate t tenant) with e -> Error e
      in
      Mutex.lock t.mu;
      (match result with
      | Ok kp ->
        Hashtbl.replace t.tbl tenant (Ready kp);
        t.keygens <- t.keygens + 1
      | Error _ -> Hashtbl.remove t.tbl tenant);
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      (match result with
      | Ok kp ->
        Ctg_obs.Registry.incr t.keygen_counter;
        kp
      | Error e -> raise e)
  in
  wait ()

let add t ~tenant kp =
  if not (valid_tenant tenant) then
    invalid_arg (Printf.sprintf "Keyring.add: invalid tenant %S" tenant);
  Mutex.lock t.mu;
  Hashtbl.replace t.tbl tenant (Ready kp);
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let mem t ~tenant =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.tbl tenant with
    | Some (Ready _) -> true
    | Some Building | None -> false
  in
  Mutex.unlock t.mu;
  r

let tenants t =
  Mutex.lock t.mu;
  let names =
    Hashtbl.fold
      (fun name entry acc ->
        match entry with Ready _ -> name :: acc | Building -> acc)
      t.tbl []
  in
  Mutex.unlock t.mu;
  List.sort compare names

let keygens t =
  Mutex.lock t.mu;
  let k = t.keygens in
  Mutex.unlock t.mu;
  k

let params t = t.params
