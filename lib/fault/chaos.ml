module Bs = Ctg_prng.Bitstream
module Sm = Ctg_prng.Splitmix64
module Obs = Ctg_obs
module Engine = Ctg_engine
module F = Ctg_falcon

type outcome = Detected | Contained | Silent

let outcome_name = function
  | Detected -> "detected"
  | Contained -> "contained"
  | Silent -> "silent"

type case = {
  name : string;
  fault_class : string;
  outcome : outcome;
  detail : string;
}

type report = {
  sigma : string;
  precision : int;
  seed : int64;
  cases : case list;
}

let count outcome r =
  List.length (List.filter (fun c -> c.outcome = outcome) r.cases)

let silent_cases reports =
  List.concat_map (fun r -> List.filter (fun c -> c.outcome = Silent) r.cases)
    reports

(* ------------------------------------------------------------------ *)

let with_pool ?rng_of_lane ?self_test ?stall_timeout ?fault_hook ~domains
    ~chunk_batches ~seed sampler f =
  let pool =
    Engine.Pool.create ~domains ~chunk_batches ?rng_of_lane ?self_test
      ?stall_timeout ~seed sampler
  in
  (match fault_hook with
  | Some h -> Engine.Pool.set_fault_hook pool (Some h)
  | None -> ());
  Fun.protect ~finally:(fun () -> Engine.Pool.shutdown pool) (fun () -> f pool)

(* The reference output every containment claim is judged against: a clean
   pool over the same seed, chunk geometry and sample count.  Pool output
   is a pure function of those, so "output equals reference" is exact. *)
let reference ~domains ~chunk_batches ~seed ~n sampler =
  with_pool ~domains ~chunk_batches ~seed sampler (fun pool ->
      Engine.Pool.batch_parallel pool ~n)

(* --- randomness faults ------------------------------------------- *)

let rng_case ~sampler ~domains ~chunk_batches ~pool_seed ~n ~reference
    ~case_seed (fault : Plan.rng_fault) ~window =
  let name = Printf.sprintf "rng-%s" (Plan.rng_fault_name fault) in
  let plan = Plan.rng_plan ~window ~seed:case_seed fault in
  let outcome, detail =
    try
      let out =
        with_pool ~domains ~chunk_batches ~seed:pool_seed
          ~rng_of_lane:(Plan.lane_factory plan ~seed:pool_seed) sampler
          (fun pool -> Engine.Pool.batch_parallel pool ~n)
      in
      if out = reference then
        (Contained, "fault window produced no corrupted bytes")
      else
        (Silent, "corrupted samples delivered without any health trip")
    with
    | Engine.Pool.Chunk_failed
        { error = Ctg_prng.Health.Entropy_failure f; chunk; attempts } ->
      ( Detected,
        Printf.sprintf "%s health test tripped on %s (chunk %d, %d attempts)"
          (Ctg_prng.Health.test_name f.Ctg_prng.Health.test)
          f.Ctg_prng.Health.label chunk attempts )
    | Engine.Pool.Chunk_failed { error; chunk; _ } ->
      ( Detected,
        Printf.sprintf "chunk %d failed: %s" chunk (Printexc.to_string error) )
  in
  { name; fault_class = "rng"; outcome; detail }

(* --- worker faults ------------------------------------------------ *)

let worker_kill_case ~sampler ~domains ~chunk_batches ~pool_seed ~n ~reference
    =
  let outcome, detail =
    try
      with_pool ~domains ~chunk_batches ~seed:pool_seed
        ~fault_hook:(Plan.pool_hook [ Plan.Kill { chunk = 1 } ]) sampler
        (fun pool ->
          let out = Engine.Pool.batch_parallel pool ~n in
          let m = Engine.Metrics.snapshot (Engine.Pool.metrics pool) in
          if out <> reference then
            (Silent, "output diverged after worker crash")
          else if m.Engine.Metrics.worker_respawns < 1 then
            (Silent, "crash left no supervision trace")
          else
            ( Contained,
              Printf.sprintf
                "respawned %d worker(s); orphaned chunk re-run bit-exact"
                m.Engine.Metrics.worker_respawns ))
    with e ->
      (Detected, "job failed instead of recovering: " ^ Printexc.to_string e)
  in
  { name = "worker-kill"; fault_class = "worker"; outcome; detail }

let worker_hang_case ~sampler ~domains ~chunk_batches ~pool_seed ~n ~reference
    =
  let outcome, detail =
    try
      let out =
        with_pool ~domains ~chunk_batches ~seed:pool_seed ~stall_timeout:0.35
          ~fault_hook:
            (Plan.pool_hook [ Plan.Hang { chunk = 1; seconds = 1.5 } ])
          sampler
          (fun pool -> Engine.Pool.batch_parallel pool ~n)
      in
      if out = reference then
        (Contained, "hang shorter than the stall deadline; output intact")
      else (Silent, "output diverged after a hang")
    with Engine.Pool.Stalled { waited_ns } ->
      ( Detected,
        Printf.sprintf "stall watchdog fired after %.0f ms without progress"
          (float_of_int waited_ns /. 1e6) )
  in
  { name = "worker-hang"; fault_class = "worker"; outcome; detail }

let worker_transient_case ~sampler ~domains ~chunk_batches ~pool_seed ~n
    ~reference =
  let outcome, detail =
    try
      with_pool ~domains ~chunk_batches ~seed:pool_seed
        ~fault_hook:
          (Plan.pool_hook
             [ Plan.Fail { chunk = 1; error = Failure "transient glitch" } ])
        sampler
        (fun pool ->
          let out = Engine.Pool.batch_parallel pool ~n in
          let m = Engine.Metrics.snapshot (Engine.Pool.metrics pool) in
          if out <> reference then
            (Silent, "retried chunk produced different output")
          else if m.Engine.Metrics.chunk_retries < 1 then
            (Silent, "no retry recorded for the failed chunk")
          else
            ( Contained,
              Printf.sprintf "chunk retried %d time(s), output bit-exact"
                m.Engine.Metrics.chunk_retries ))
    with e ->
      ( Silent,
        "transient fault escaped containment: " ^ Printexc.to_string e )
  in
  { name = "worker-transient"; fault_class = "worker"; outcome; detail }

(* --- gate-table corruption ---------------------------------------- *)

let clean_copy (p : Ctgauss.Gate.t) =
  match
    Ctgauss.Gate.make ~num_vars:p.Ctgauss.Gate.num_vars
      ~instrs:(Array.copy p.Ctgauss.Gate.instrs)
      ~outputs:(Array.copy p.Ctgauss.Gate.outputs)
      ~valid:p.Ctgauss.Gate.valid
  with
  | Ok c -> c
  | Error msg -> failwith ("Chaos.clean_copy: " ^ msg)

let gate_kat_case ~registry ~sigma ~precision ~tail_cut ~case_seed ~flips =
  let master =
    Engine.Registry.lookup registry ~sigma ~precision ~tail_cut ()
  in
  let program = Ctgauss.Sampler.program master in
  let clean = clean_copy program in
  let corruptions = Plan.corrupt_program ~seed:case_seed ~flips program in
  Fun.protect
    ~finally:(fun () -> Plan.restore_program program corruptions)
    (fun () ->
      let kat = Engine.Selftest.run master in
      let evicted = Engine.Registry.revalidate registry in
      let recompiled =
        (* After eviction the next lookup must single-flight a fresh,
           self-test-passing compile. *)
        let fresh =
          Engine.Registry.lookup registry ~sigma ~precision ~tail_cut ()
        in
        fresh != master && Engine.Selftest.run fresh = Ok ()
      in
      let outcome, detail =
        match kat with
        | Error f ->
          if evicted <> [] && recompiled then
            ( Detected,
              let caught_by =
                if f.Engine.Selftest.index < 0 then "integrity digest"
                else
                  Printf.sprintf "KAT vector %d" f.Engine.Selftest.index
              in
              Printf.sprintf
                "%s caught %d opcode flip(s); cache evicted and recompiled \
                 clean"
                caught_by flips )
          else
            ( Silent,
              "KAT fired but the registry kept serving the corrupted \
               sampler" )
        | Ok () -> (
          (* The KAT missed: either the flips only touch don't-care
             space, or we have a real gap.  Settle it for all 2^n inputs
             with the BDD equivalence prover. *)
          match
            let man =
              Ctg_analysis.Bdd.create
                ~num_vars:program.Ctgauss.Gate.num_vars
            in
            Ctg_analysis.Equiv.equivalent man clean program
          with
          | v
            when v.Ctg_analysis.Equiv.valid_equal
                 && v.Ctg_analysis.Equiv.outputs_equal_on_valid ->
            ( Contained,
              "KAT passed and BDD proves the flips semantically harmless \
               (don't-care space only)" )
          | _ ->
            (Silent, "corruption changes the distribution and no defense saw it")
          | exception e ->
            ( Silent,
              "KAT passed and equivalence proof failed: "
              ^ Printexc.to_string e ))
      in
      { name = "gate-table-flip"; fault_class = "gate"; outcome; detail })

let gate_degrade_case ~sigma ~precision ~tail_cut ~case_seed ~domains
    ~pool_seed ~n =
  (* A *private* compile is corrupted here: the degraded pool must keep
     the broken program alive for its whole lifetime, so it cannot borrow
     the registry's shared master. *)
  let sampler = Ctgauss.Sampler.create ~sigma ~precision ~tail_cut () in
  let program = Ctgauss.Sampler.program sampler in
  let _ = Plan.corrupt_program ~seed:case_seed ~flips:3 program in
  let support =
    int_of_float (ceil (float_of_string sigma *. float_of_int tail_cut)) + 1
  in
  let outcome, detail =
    with_pool ~domains ~chunk_batches:4 ~seed:pool_seed sampler (fun pool ->
        if not (Engine.Pool.degraded pool) then
          ( Silent,
            "self-test accepted a corrupted sampler; pool serving from it" )
        else begin
          let out = Engine.Pool.batch_parallel pool ~n in
          let mon = Engine.Pool.ctmon pool in
          let in_support =
            Array.for_all (fun x -> abs x <= support) out
          in
          if Obs.Ctmon.violations mon <> 0 then
            ( Silent,
              "degraded CDT fallback reported CT violations (must be \
               declared fallback)" )
          else if not in_support then
            (Silent, "degraded fallback emitted out-of-support samples")
          else
            ( Detected,
              Printf.sprintf
                "load-time self-test failed; degraded to CT linear CDT \
                 (%d fallback batches, 0 CT violations)"
                (Obs.Ctmon.fallback_batches mon) )
        end)
  in
  { name = "gate-degrade"; fault_class = "gate"; outcome; detail }

(* --- signing faults ------------------------------------------------ *)

let sign_case ~case_seed =
  let params = F.Params.custom ~n:64 in
  let rng lane =
    Engine.Stream_fork.bitstream ~seed:"chaos-falcon" ~lane ()
  in
  let kp = F.Keygen.generate params (rng 0) in
  let base () = F.Base_sampler.ideal () in
  let bound = F.Sign.norm_bound_sq params in
  let msg = Bytes.of_string "chaos harness message" in
  let rejects =
    Obs.Registry.counter Obs.Registry.default "falcon_sign_fault_rejects_total"
  in
  (* First establish the fault is real: with checks off, the corrupted
     signature must NOT verify. *)
  let unchecked =
    F.Sign.sign
      ~fault_hook:(Plan.sign_hook ~seed:case_seed ~bits:3)
      ~check:false kp (base ()) (rng 1) ~msg
  in
  let fault_effective =
    not
      (F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound ~msg
         ~salt:unchecked.F.Sign.salt ~s2:unchecked.F.Sign.s2)
  in
  let before = Obs.Registry.value rejects in
  let checked =
    F.Sign.sign
      ~fault_hook:(Plan.sign_hook ~seed:case_seed ~bits:3)
      kp (base ()) (rng 2) ~msg
  in
  let caught = Obs.Registry.value rejects - before in
  let emitted_ok =
    F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound ~msg
      ~salt:checked.F.Sign.salt ~s2:checked.F.Sign.s2
  in
  let outcome, detail =
    if not fault_effective then
      (Contained, "injected coefficient flips did not invalidate the signature")
    else if caught >= 1 && emitted_ok then
      ( Detected,
        Printf.sprintf
          "verify-after-sign rejected %d faulted signature(s); emitted \
           signature verifies (%d attempts)"
          caught checked.F.Sign.attempts )
    else if emitted_ok then
      (Silent, "faulted signature slipped past verify-after-sign uncounted")
    else (Silent, "an invalid signature was emitted")
  in
  { name = "sign-coefficient-flip"; fault_class = "sign"; outcome; detail }

(* ------------------------------------------------------------------ *)

let default_domains = 4

let run ?(seed = 0x00C0FFEE5EEDL) ?(domains = default_domains) ?registry
    ~sigma ~precision ~tail_cut () =
  let registry =
    match registry with Some r -> r | None -> Engine.Registry.create ()
  in
  let sm = Sm.create seed in
  let next_seed () = Sm.next sm in
  let sampler =
    Engine.Registry.lookup registry ~sigma ~precision ~tail_cut ()
  in
  let num_vars = (Ctgauss.Sampler.program sampler).Ctgauss.Gate.num_vars in
  (* Size chunks so each lane feeds the health tests well past the widest
     window (the ones-proportion window: 1024 sampled units = 16 KiB of
     scanned stream): low-precision programs draw few bits per batch and
     would otherwise finish a chunk before any window closes. *)
  let chunk_batches = max 16 (1 + (327680 / (num_vars * 63))) in
  let chunk_samples = chunk_batches * Ctgauss.Bitslice.lanes in
  let n = 4 * chunk_samples in
  let pool_seed = "chaos-" ^ sigma in
  let reference = reference ~domains ~chunk_batches ~seed:pool_seed ~n sampler in
  let rng_cases =
    List.map
      (fun (fault, window) ->
        rng_case ~sampler ~domains ~chunk_batches ~pool_seed ~n ~reference
          ~case_seed:(next_seed ()) fault ~window)
      [
        (Plan.Stuck_bits { and_mask = 0x00; or_mask = 0xff }, Plan.always);
        (Plan.Bias { p_one = 0.85 }, Plan.always);
        (Plan.Repeat { period = 8 }, Plan.always);
        (* Mid-stream death: the source is fine for the first KiB of every
           lane, then flatlines — the "entropy exhaustion mid-batch" model. *)
        (Plan.Exhausted, Plan.from_byte 1024);
      ]
  in
  let worker_cases =
    [
      worker_kill_case ~sampler ~domains ~chunk_batches ~pool_seed ~n
        ~reference;
      worker_hang_case ~sampler ~domains ~chunk_batches ~pool_seed ~n
        ~reference;
      worker_transient_case ~sampler ~domains ~chunk_batches ~pool_seed ~n
        ~reference;
    ]
  in
  let gate_cases =
    [
      gate_kat_case ~registry ~sigma ~precision ~tail_cut
        ~case_seed:(next_seed ()) ~flips:1;
      gate_kat_case ~registry ~sigma ~precision ~tail_cut
        ~case_seed:(next_seed ()) ~flips:3;
      gate_degrade_case ~sigma ~precision ~tail_cut ~case_seed:(next_seed ())
        ~domains ~pool_seed:(pool_seed ^ "-degraded") ~n:(4 * 63 * 4);
    ]
  in
  let sign_cases = [ sign_case ~case_seed:(next_seed ()) ] in
  {
    sigma;
    precision;
    seed;
    cases = rng_cases @ worker_cases @ gate_cases @ sign_cases;
  }

(* ------------------------------------------------------------------ *)

module Jsonx = Obs.Jsonx

let case_to_json c =
  Jsonx.Obj
    [
      ("name", Jsonx.Str c.name);
      ("fault_class", Jsonx.Str c.fault_class);
      ("outcome", Jsonx.Str (outcome_name c.outcome));
      ("detail", Jsonx.Str c.detail);
    ]

let report_to_json r =
  Jsonx.Obj
    [
      ("sigma", Jsonx.Str r.sigma);
      ("precision", Jsonx.Num (float_of_int r.precision));
      ("seed", Jsonx.Str (Printf.sprintf "0x%Lx" r.seed));
      ("detected", Jsonx.Num (float_of_int (count Detected r)));
      ("contained", Jsonx.Num (float_of_int (count Contained r)));
      ("silent", Jsonx.Num (float_of_int (count Silent r)));
      ("cases", Jsonx.List (List.map case_to_json r.cases));
    ]

let to_json reports =
  Jsonx.Obj
    [
      ("harness", Jsonx.Str "ctg-chaos");
      ("silent_total", Jsonx.Num (float_of_int (List.length (silent_cases reports))));
      ("ok", Jsonx.Bool (silent_cases reports = []));
      ("reports", Jsonx.List (List.map report_to_json reports));
    ]

let pp_case fmt c =
  Format.fprintf fmt "  [%-9s] %-22s %s"
    (outcome_name c.outcome) c.name c.detail

let pp_report fmt r =
  Format.fprintf fmt
    "sigma %s (precision %d, seed 0x%Lx): %d detected, %d contained, %d \
     silent@\n"
    r.sigma r.precision r.seed (count Detected r) (count Contained r)
    (count Silent r);
  List.iter (fun c -> Format.fprintf fmt "%a@\n" pp_case c) r.cases
