type backend =
  | Chacha of Chacha20.t
  | Shake of Keccak.xof
  | Splitmix of Splitmix64.t
  | Fixed of bool array
  | Byte_fn of (unit -> int)

type t = {
  backend : backend;
  mutable cur : int; (* bit buffer, bits served from the LSB up *)
  mutable cur_bits : int; (* bits remaining in [cur] *)
  mutable block : bytes; (* byte buffer refilled in bulk from the backend *)
  mutable block_pos : int;
  mutable consumed : int;
  mutable fixed_pos : int;
  mutable health : Health.t option;
      (* online entropy tests, fed at refill time so a tripped window
         raises before any byte of the bad block is served *)
}

let block_size = 64

let make backend =
  {
    backend;
    cur = 0;
    cur_bits = 0;
    block = Bytes.create 0;
    block_pos = 0;
    consumed = 0;
    fixed_pos = 0;
    health = None;
  }

let of_chacha c = make (Chacha c)
let of_shake x = make (Shake x)
let of_splitmix s = make (Splitmix s)
let of_bits bits = make (Fixed bits)
let of_byte_fn f = make (Byte_fn f)

let attach_health t h = t.health <- Some h
let health t = t.health

(* Next raw byte from the backend, buffered a block at a time.  A fresh
   block is health-scanned in full before its first byte is served. *)
let raw_byte t =
  match t.backend with
  | Byte_fn f ->
    let v = f () land 0xff in
    (match t.health with Some h -> Health.check_byte h v | None -> ());
    v
  | Chacha _ | Shake _ | Splitmix _ | Fixed _ ->
    if t.block_pos >= Bytes.length t.block then begin
      (match t.backend with
      | Chacha c -> t.block <- Chacha20.next_bytes c block_size
      | Shake x -> t.block <- Keccak.squeeze x block_size
      | Splitmix s ->
        let b = Bytes.create block_size in
        for i = 0 to (block_size / 8) - 1 do
          let v = ref (Splitmix64.next s) in
          for j = 0 to 7 do
            Bytes.set b ((8 * i) + j) (Char.chr (Int64.to_int !v land 0xff));
            v := Int64.shift_right_logical !v 8
          done
        done;
        t.block <- b
      | Fixed _ | Byte_fn _ -> assert false);
      (match t.health with Some h -> Health.scan_block h t.block | None -> ());
      t.block_pos <- 0
    end;
    let v = Char.code (Bytes.get t.block t.block_pos) in
    t.block_pos <- t.block_pos + 1;
    v

(* Top the bit buffer up to at least [want] bits (want <= 54). *)
let refill t want =
  match t.backend with
  | Fixed bits ->
    while t.cur_bits < want do
      if t.fixed_pos >= Array.length bits then raise End_of_file;
      let b = if bits.(t.fixed_pos) then 1 else 0 in
      t.cur <- t.cur lor (b lsl t.cur_bits);
      t.fixed_pos <- t.fixed_pos + 1;
      t.cur_bits <- t.cur_bits + 1
    done
  | Chacha _ | Shake _ | Splitmix _ | Byte_fn _ ->
    while t.cur_bits < want do
      t.cur <- t.cur lor (raw_byte t lsl t.cur_bits);
      t.cur_bits <- t.cur_bits + 8
    done

let next_bit t =
  if t.cur_bits = 0 then refill t 1;
  let b = t.cur land 1 in
  t.cur <- t.cur lsr 1;
  t.cur_bits <- t.cur_bits - 1;
  t.consumed <- t.consumed + 1;
  b

let next_bits t k =
  if k < 0 || k > 54 then invalid_arg "Bitstream.next_bits";
  if t.cur_bits < k then refill t k;
  let v = t.cur land ((1 lsl k) - 1) in
  t.cur <- t.cur lsr k;
  t.cur_bits <- t.cur_bits - k;
  t.consumed <- t.consumed + k;
  v

(* Hot path of the bitsliced sampler: one 63-bit lane word per variable.
   Real backends serve whole bytes (the 64th bit is dropped but counted);
   the Fixed backend keeps exact bit order for the equivalence tests. *)
let next_word t =
  match t.backend with
  | Fixed _ ->
    let lo = next_bits t 31 in
    let mid = next_bits t 31 in
    let hi = next_bit t in
    lo lor (mid lsl 31) lor (hi lsl 62)
  | Chacha _ | Shake _ | Splitmix _ | Byte_fn _ ->
    let acc = ref 0 in
    for i = 0 to 7 do
      acc := !acc lor (raw_byte t lsl (8 * i))
    done;
    t.consumed <- t.consumed + 64;
    !acc

let next_byte t = next_bits t 8
let bits_consumed t = t.consumed

let prng_work t =
  match t.backend with
  | Chacha c -> Chacha20.blocks_generated c
  | Shake x -> Keccak.permutations x
  | Splitmix _ | Fixed _ | Byte_fn _ -> 0

let next_bytes_into t buf =
  let n = Bytes.length buf in
  (match t.backend with
  | Fixed _ ->
    for i = 0 to n - 1 do
      Bytes.set buf i (Char.chr (next_bits t 8))
    done
  | Chacha _ | Shake _ | Splitmix _ | Byte_fn _ ->
    for i = 0 to n - 1 do
      Bytes.set buf i (Char.chr (raw_byte t))
    done;
    t.consumed <- t.consumed + (8 * n))
