(** Falcon signing: hash-to-point, target computation, ffSampling with the
    pluggable base Gaussian sampler, norm rejection, retry with a fresh
    salt — the loop whose throughput the paper's Table 1 measures. *)

type signature = {
  salt : bytes;
  s1 : int array;  (** Recomputable from s2; kept for tests/inspection. *)
  s2 : int array;
  norm_sq : float;
  attempts : int;  (** Salt draws until the norm check passed. *)
}

val norm_bound_sq : Params.t -> float
(** Acceptance bound ‖(s1,s2)‖², a scheme constant shared by signer and
    verifier: 1.6 × the expected squared norm of a signature produced with
    the fixed σ=2 base sampler (error variance σ² + 1/12 per Gram-Schmidt
    coordinate, Σ‖b̃_i‖² ≈ 2Nq).  The ideal variable-σ sampler lands well
    under it.  Calibrated for shape, not for Falcon's security-optimal
    tightness — see DESIGN.md. *)

type fault_hook = attempt:int -> s1:int array -> s2:int array -> int array * int array
(** Injection seam for the chaos harness, sitting where a computation
    glitch would: the hook sees the freshly computed coefficient vectors
    and returns the (possibly corrupted) pair the output checks then see. *)

val sign :
  ?fault_hook:fault_hook ->
  ?check:bool ->
  Keygen.keypair ->
  Base_sampler.t ->
  Ctg_prng.Bitstream.t ->
  msg:bytes ->
  signature
(** [check] (default [true]) enables verify-after-sign: the candidate
    signature is checked against the {e public} key exactly as a verifier
    would (recover [s1] from [s2] via [h], compare, then the norm bound)
    before it is returned.  A signature inconsistent with the verification
    equation — the fingerprint of a glitched FFT/ffSampling computation —
    is discarded and re-tried with a fresh salt, and
    [falcon_sign_fault_rejects_total] is bumped in
    {!Ctg_obs.Registry.default}; the faulty value is {e never} emitted
    (the Lenstra-style RSA-CRT lesson applied to Falcon). *)

val sign_many :
  ?domains:int ->
  ?backend:Ctg_engine.Stream_fork.backend ->
  ?workforce:Ctg_engine.Workforce.t ->
  ?lanes:int array ->
  ?fault_hook:fault_hook ->
  ?check:bool ->
  Keygen.keypair ->
  make_base:(unit -> Base_sampler.t) ->
  seed:string ->
  msgs:bytes array ->
  signature array
(** Sign independent messages across domains (the Table 1 workload at
    service scale).  Message [i] always draws its salt and ffSampling
    randomness from {!Ctg_engine.Stream_fork} lane [lanes.(i)] of [seed]
    (default lane [i]) and from a fresh [make_base ()] instance, so the
    result array is identical for any [domains] (default
    [Domain.recommended_domain_count ()]) — and, with explicit [lanes],
    independent of how a serving batch was composed.  [workforce] runs the
    fan-out on a persistent {!Ctg_engine.Workforce} instead of spawning
    fresh domains per call (the daemon's batching path).  [make_base]
    must return a fresh, unshared sampler on every call — pass e.g.
    [fun () -> Base_sampler.of_instance
       (Ctg_samplers.Sampler_sig.of_bitsliced (Ctgauss.Sampler.clone master))]
    to amortize one compiled program over every message and domain. *)

val signature_norm_sq : int array -> int array -> float
(** ‖(s1, s2)‖² with integer coefficients taken as given. *)
