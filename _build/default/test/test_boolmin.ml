(* Boolean minimization: cubes, Quine-McCluskey primes, Petrick covers —
   the exactness claims behind the paper's Espresso -Dso -S1 usage. *)

module Cube = Ctg_boolmin.Cube
module Tt = Ctg_boolmin.Truth_table
module Qm = Ctg_boolmin.Quine_mccluskey
module Sop = Ctg_boolmin.Sop

let cube = Alcotest.testable (fun fmt c -> Format.pp_print_string fmt (Cube.to_string ~vars:6 c)) Cube.equal

let random_table rng ~vars ~dc_rate =
  let tt = Tt.create ~vars ~default:Off in
  for m = 0 to (1 lsl vars) - 1 do
    let r = Ctg_prng.Splitmix64.next_int rng 100 in
    Tt.set tt m (if r < dc_rate then Dc else if r < 50 + (dc_rate / 2) then On else Off)
  done;
  tt

let unit_tests =
  [
    Alcotest.test_case "cube covers/subsumes" `Quick (fun () ->
        let c = Cube.make ~mask:0b011 ~value:0b001 in
        Alcotest.(check bool) "covers 0b101" true (Cube.covers c 0b101);
        Alcotest.(check bool) "covers 0b001" true (Cube.covers c 0b001);
        Alcotest.(check bool) "not 0b011" false (Cube.covers c 0b011);
        let wider = Cube.make ~mask:0b001 ~value:0b001 in
        Alcotest.(check bool) "subsumes" true (Cube.subsumes wider c);
        Alcotest.(check bool) "not reverse" false (Cube.subsumes c wider));
    Alcotest.test_case "cube merge on adjacent minterms" `Quick (fun () ->
        let a = Cube.of_minterm ~vars:3 0b101 and b = Cube.of_minterm ~vars:3 0b100 in
        (match Cube.merge a b with
        | Some m -> Alcotest.check cube "10x" (Cube.make ~mask:0b110 ~value:0b100) m
        | None -> Alcotest.fail "expected merge");
        Alcotest.(check bool) "non-adjacent" true
          (Cube.merge (Cube.of_minterm ~vars:3 0) (Cube.of_minterm ~vars:3 3) = None));
    Alcotest.test_case "cube minterms enumerates 2^free" `Quick (fun () ->
        let c = Cube.make ~mask:0b100 ~value:0b100 in
        let ms = List.sort compare (Cube.minterms ~vars:3 c) in
        Alcotest.(check (list int)) "4..7" [ 4; 5; 6; 7 ] ms);
    Alcotest.test_case "value bits outside mask are cleared" `Quick (fun () ->
        let c = Cube.make ~mask:0b010 ~value:0b111 in
        Alcotest.(check int) "normalized" 0b010 c.Cube.value);
    Alcotest.test_case "QM on XOR finds all 2-var primes" `Quick (fun () ->
        (* XOR has no merging: primes are exactly the two minterms. *)
        let tt = Tt.create ~vars:2 ~default:Off in
        Tt.set tt 0b01 On;
        Tt.set tt 0b10 On;
        let primes = List.sort Cube.compare (Qm.primes tt) in
        Alcotest.(check int) "two primes" 2 (List.length primes));
    Alcotest.test_case "QM merges a full square" `Quick (fun () ->
        (* f = x2' (minterms 0..3 of 3 vars): one prime of 1 literal. *)
        let tt = Tt.create ~vars:3 ~default:Off in
        List.iter (fun m -> Tt.set tt m On) [ 0; 1; 2; 3 ];
        let sop = Sop.minimize tt in
        Alcotest.(check int) "single term" 1 (List.length sop);
        Alcotest.(check int) "one literal" 1 (Sop.num_literals sop));
    Alcotest.test_case "don't-cares enable wider primes" `Quick (fun () ->
        (* ones {0,1}, dc {2,3}: minimal cover is the 1-literal cube x2'. *)
        let tt = Tt.create ~vars:2 ~default:Off in
        Tt.set tt 0 On;
        Tt.set tt 1 On;
        Tt.set tt 2 Dc;
        Tt.set tt 3 Dc;
        let sop = Sop.minimize tt in
        Alcotest.(check int) "terms" 1 (List.length sop);
        Alcotest.(check int) "literals" 0 (Sop.num_literals sop));
    Alcotest.test_case "classic textbook example" `Quick (fun () ->
        (* f(w,x,y,z) = Σm(4,8,10,11,12,15) + d(9,14): minimal cover has 3
           terms (a standard QM exercise). *)
        let tt = Tt.create ~vars:4 ~default:Off in
        List.iter (fun m -> Tt.set tt m On) [ 4; 8; 10; 11; 12; 15 ];
        List.iter (fun m -> Tt.set tt m Dc) [ 9; 14 ];
        let sop = Sop.minimize tt in
        Alcotest.(check int) "3 terms" 3 (List.length sop));
    Alcotest.test_case "constant functions" `Quick (fun () ->
        let empty = Tt.create ~vars:3 ~default:Off in
        Alcotest.(check int) "false" 0 (List.length (Sop.minimize empty));
        let full = Tt.create ~vars:3 ~default:On in
        let sop = Sop.minimize full in
        Alcotest.(check int) "true = 1 term" 1 (List.length sop);
        Alcotest.(check int) "true = 0 literals" 0 (Sop.num_literals sop));
    Alcotest.test_case "gate_cost counts structure" `Quick (fun () ->
        (* x0 & ~x1 | x2: 1 AND + 1 NOT + 1 OR = 3 gates. *)
        let sop =
          [ Cube.make ~mask:0b011 ~value:0b001; Cube.make ~mask:0b100 ~value:0b100 ]
        in
        Alcotest.(check int) "3 gates" 3 (Sop.gate_cost sop));
  ]

let implements_table tt sop =
  Tt.implements tt (fun m -> Sop.eval sop m)

let prop_tests =
  let open QCheck in
  let arb_table vars dc_rate =
    QCheck.make
      ~print:(fun _ -> "<table>")
      (QCheck.Gen.map
         (fun seed ->
           random_table (Ctg_prng.Splitmix64.create (Int64.of_int seed)) ~vars ~dc_rate)
         QCheck.Gen.nat)
  in
  List.map QCheck_alcotest.to_alcotest
    [
      Test.make ~name:"minimize implements the table (4 vars)" ~count:150
        (arb_table 4 20)
        (fun tt -> implements_table tt (Sop.minimize tt));
      Test.make ~name:"minimize implements the table (6 vars)" ~count:30
        (arb_table 6 30)
        (fun tt -> implements_table tt (Sop.minimize tt));
      Test.make ~name:"greedy fallback also implements (8 vars)" ~count:6
        (arb_table 8 30)
        (fun tt -> implements_table tt (Sop.minimize ~exact_vars_limit:0 tt));
      Test.make ~name:"exact never beats itself re-run (determinism)" ~count:50
        (arb_table 5 25)
        (fun tt ->
          let a = Sop.minimize tt and b = Sop.minimize tt in
          List.length a = List.length b && Sop.num_literals a = Sop.num_literals b);
      Test.make ~name:"exact cover <= greedy cover size" ~count:50
        (arb_table 5 25)
        (fun tt ->
          let exact = Sop.minimize tt in
          let greedy = Sop.minimize ~exact_vars_limit:0 tt in
          List.length exact <= List.length greedy);
      Test.make ~name:"primes cover every on-minterm" ~count:50
        (arb_table 5 20)
        (fun tt ->
          let primes = Qm.primes tt in
          List.for_all
            (fun m -> List.exists (fun c -> Cube.covers c m) primes)
            (Tt.ones tt));
      Test.make ~name:"primes are prime (no single-literal widening)" ~count:40
        (arb_table 4 20)
        (fun tt ->
          let primes = Qm.primes tt in
          let ok_cell m =
            match Tt.get tt m with Tt.On | Tt.Dc -> true | Tt.Off -> false
          in
          List.for_all
            (fun (c : Cube.t) ->
              (* Dropping any one literal must cover some off-minterm. *)
              let literals =
                List.filter (fun i -> c.Cube.mask land (1 lsl i) <> 0) [ 0; 1; 2; 3 ]
              in
              List.for_all
                (fun i ->
                  let widened =
                    Cube.make ~mask:(c.Cube.mask land lnot (1 lsl i)) ~value:c.Cube.value
                  in
                  not
                    (List.for_all ok_cell (Cube.minterms ~vars:4 widened)))
                literals)
            primes);
    ]

let () =
  Alcotest.run "boolmin" [ ("unit", unit_tests); ("properties", prop_tests) ]
