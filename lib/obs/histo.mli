(** Log-bucketed histograms for latencies and sizes.

    Buckets are geometric with four sub-buckets per power of two (values
    0–3 get exact buckets), so any recorded value lands in a bucket whose
    upper bound is at most 25% above its lower bound.  Quantile estimates
    therefore carry a bounded relative error that follows directly from
    the bucket width: a reported quantile is the upper bound of the bucket
    holding the true rank-[ceil (q·count)] value [v], and that bound is at
    most [v + v/4 + 1] (the [+1] covers integer rounding of sub-bucket
    edges), i.e. for a non-empty histogram [quantile h q] lies in
    [[v, v + v/4 + 1]].  The bound is tight at bucket boundaries — values
    of the form [(4+s)·2^(m-2)] and their off-by-one neighbours — which is
    exactly where the adversarial-input test in [test_obs] drives it.

    Merging is pointwise addition of bucket counts, which makes it
    associative and commutative: per-domain histograms recorded without
    synchronization can be folded in any order at snapshot time.

    A [t] is {e not} thread-safe; either keep one per domain and merge, or
    wrap it in a registry histogram ({!Registry.histo}) which locks. *)

type t

type summary = {
  count : int;
  sum : int;
  mean : float;
  min : int;  (** 0 when empty. *)
  max : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

val create : unit -> t
val add : t -> int -> unit
(** Record one value; negative values clamp to 0. *)

val count : t -> int
val sum : t -> int

val merge : t -> t -> t
(** A fresh histogram holding both inputs' data; the inputs are unchanged. *)

val copy : t -> t

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1]: the upper bound of the bucket holding
    the value of rank [ceil (q * count)], clamped to the observed min/max.
    0 on an empty histogram. *)

val summary : t -> summary

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], ascending — the exposition and
    test view of the internal state. *)

val equal : t -> t -> bool

val pp_summary : Format.formatter -> summary -> unit
