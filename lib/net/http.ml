(* Shared HTTP/1.1 server: grown out of the Obs.Http metrics scraper into
   the request path both the exposition endpoint and the ctg_serve signing
   daemon stand on.  Still stdlib-[Unix] only: a bounded accept queue feeds
   a small team of worker domains, each handling one connection at a time
   with keep-alive, Content-Length and chunked request bodies, and a
   graceful drain on stop. *)

open Ctg_sync.Shim

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    ?(headers = []) body =
  { status; content_type; headers; body }

(* ---------------------------------------------------------------- *)
(* Request ids                                                       *)
(* ---------------------------------------------------------------- *)

(* Every request carries an id: the client's [X-Request-Id] when it sent
   a well-formed one, a generated one otherwise.  The id is inserted
   into [req.headers] before the handler runs and echoed on *every*
   response this connection writes — including 400/413 parse failures
   and the handler's own 429/503 error bodies — so a shed or failed
   request stays joinable to its trace. *)
let request_id_header = "x-request-id"

let rid_seq = Atomic.make 0

(* Eager module-level init (no [lazy]: not domain-safe under OCaml 5).
   The prefix makes ids from successive daemon processes distinct. *)
let rid_prefix =
  Printf.sprintf "%04x%04x"
    (Unix.getpid () land 0xffff)
    (Hashtbl.hash (Unix.gettimeofday ()) land 0xffff)

let gen_request_id () =
  Printf.sprintf "r-%s-%06x" rid_prefix (Atomic.fetch_and_add rid_seq 1)

let valid_request_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true | _ -> false)
       s

let request_id (req : request) =
  match List.assoc_opt request_id_header req.headers with
  | Some id -> id
  | None -> ""

(* The id of a parsed head, when the client sent a usable one. *)
let claimed_request_id (req : request) =
  match List.assoc_opt request_id_header req.headers with
  | Some id when valid_request_id id -> Some id
  | _ -> None

let ensure_request_id (req : request) =
  match claimed_request_id req with
  | Some id -> (id, req)
  | None ->
    let id = gen_request_id () in
    (* Shadow any malformed client value: [header] lookups find the
       accepted id first. *)
    (id, { req with headers = (request_id_header, id) :: req.headers })

let with_request_id id resp =
  if
    List.exists
      (fun (k, _) -> String.lowercase_ascii k = request_id_header)
      resp.headers
  then resp
  else { resp with headers = ("X-Request-Id", id) :: resp.headers }

type handler = request -> response

type route = string * (unit -> response)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

(* ---------------------------------------------------------------- *)
(* Request-line / header / query parsing                             *)
(* ---------------------------------------------------------------- *)

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n -> (
      match (hex s.[!i + 1], hex s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char b (Char.chr ((h lsl 4) lor l));
        i := !i + 2
      | _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (percent_decode kv, "")
             | Some i ->
               Some
                 ( percent_decode (String.sub kv 0 i),
                   percent_decode
                     (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let query_param req key = List.assoc_opt key req.query

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    ( String.sub target 0 i,
      parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

let header (req : request) name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let value =
      String.trim (String.sub line (i + 1) (String.length line - i - 1))
    in
    if name = "" then None else Some (name, value)

(* [head] is the request head (request line + headers, no terminator).
   Returns the parsed request with an empty body, plus the HTTP version. *)
let parse_head head =
  let lines =
    String.split_on_char '\n' head
    |> List.map (fun l ->
           let n = String.length l in
           if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
  in
  match lines with
  | [] -> Error "empty request head"
  | request_line :: header_lines -> (
    match String.split_on_char ' ' request_line with
    | [ meth; target; version ]
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      let path, query = split_target target in
      let headers = List.filter_map parse_header_line header_lines in
      Ok
        ( { meth = String.uppercase_ascii meth; path; query; headers; body = "" },
          version )
    | _ -> Error "malformed request line")

(* ---------------------------------------------------------------- *)
(* Routing (the legacy GET-only route table)                         *)
(* ---------------------------------------------------------------- *)

let guard f =
  try f ()
  with e ->
    response ~status:500
      (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))

let handler_of_routes (routes : route list) : handler =
 fun req ->
  if req.meth <> "GET" then
    response ~status:405 (Printf.sprintf "method %s not allowed\n" req.meth)
  else
    match List.assoc_opt req.path routes with
    | None -> response ~status:404 (Printf.sprintf "no route for %s\n" req.path)
    | Some f -> guard f

let handle ~routes path =
  let path, _query = split_target path in
  match List.assoc_opt path routes with
  | None -> response ~status:404 (Printf.sprintf "no route for %s\n" path)
  | Some f -> guard f

let handle_request ~routes raw =
  let head =
    (* Everything up to the blank line; tolerate bare-\n framing. *)
    let len = String.length raw in
    let rec find i =
      if i + 1 >= len then len
      else if
        raw.[i] = '\n'
        && (raw.[i + 1] = '\n'
           || (i + 2 < len && raw.[i + 1] = '\r' && raw.[i + 2] = '\n'))
      then i
      else find (i + 1)
    in
    String.sub raw 0 (find 0)
  in
  match parse_head head with
  | Error e -> response ~status:400 (e ^ "\n")
  | Ok (req, _version) -> handler_of_routes routes req

(* ---------------------------------------------------------------- *)
(* Connection I/O                                                    *)
(* ---------------------------------------------------------------- *)

let max_head_bytes = 16 * 1024
let default_max_body = 1024 * 1024

(* A connection buffer: bytes already read but not yet consumed (keep-alive
   leaves the next pipelined request here). *)
type connbuf = { fd : Unix.file_descr; mutable pending : string }

let refill cb =
  let chunk = Bytes.create 4096 in
  match Unix.read cb.fd chunk 0 (Bytes.length chunk) with
  | 0 -> false
  | n ->
    cb.pending <- cb.pending ^ Bytes.sub_string chunk 0 n;
    true
  | exception _ -> false

let take cb n =
  let s = String.sub cb.pending 0 n in
  cb.pending <- String.sub cb.pending n (String.length cb.pending - n);
  s

(* Read until [cb.pending] contains [pat]; the offset of the pattern, or
   None on EOF or when [limit] bytes arrived without it. *)
let read_until cb pat ~limit =
  let find () =
    let p = cb.pending and n = String.length cb.pending in
    let m = String.length pat in
    let rec go i =
      if i + m > n then None else if String.sub p i m = pat then Some i else go (i + 1)
    in
    go 0
  in
  let rec loop () =
    match find () with
    | Some i -> Some i
    | None ->
      if String.length cb.pending > limit then None
      else if refill cb then loop ()
      else None
  in
  loop ()

let read_exactly cb n ~limit =
  if n > limit then None
  else
    let rec loop () =
      if String.length cb.pending >= n then Some (take cb n)
      else if refill cb then loop ()
      else None
    in
    loop ()

type body_result = Body of string | Too_large | Bad of string

let read_chunked cb ~limit =
  let buf = Buffer.create 256 in
  let rec chunks () =
    match read_until cb "\r\n" ~limit:max_head_bytes with
    | None -> Bad "chunked: missing size line"
    | Some i -> (
      let line = take cb (i + 2) in
      let size_str =
        let l = String.sub line 0 i in
        match String.index_opt l ';' with
        | Some j -> String.sub l 0 j (* drop chunk extensions *)
        | None -> l
      in
      match int_of_string_opt ("0x" ^ String.trim size_str) with
      | None -> Bad (Printf.sprintf "chunked: bad size %S" size_str)
      | Some 0 -> (
        (* Trailer section: consume lines until the blank one. *)
        let rec trailers () =
          match read_until cb "\r\n" ~limit:max_head_bytes with
          | None -> Bad "chunked: missing final CRLF"
          | Some 0 ->
            ignore (take cb 2);
            Body (Buffer.contents buf)
          | Some j ->
            ignore (take cb (j + 2));
            trailers ()
        in
        trailers ())
      | Some size ->
        if size < 0 || Buffer.length buf + size > limit then Too_large
        else (
          match read_exactly cb (size + 2) ~limit:(size + 2) with
          | None -> Bad "chunked: truncated chunk"
          | Some data ->
            Buffer.add_string buf (String.sub data 0 size);
            chunks ()))
  in
  chunks ()

type read_result =
  | Request of request * string  (** parsed request, HTTP version *)
  | Closed  (** clean EOF before any byte of a new request *)
  | Malformed of response * string option
      (** error response, plus the client's request id when the head
          parsed far enough to recover one — echoed even on 400/413 *)

let rec read_request_conn ?(max_body = default_max_body) cb =
  if cb.pending = "" && not (refill cb) then Closed
  else
    match read_until cb "\r\n\r\n" ~limit:max_head_bytes with
    | Some i ->
      let head = take cb (i + 4) in
      request_of_head cb (String.sub head 0 i) ~max_body
    | None -> (
      (* Accept bare-\n framing from hand-rolled clients. *)
      match read_until cb "\n\n" ~limit:max_head_bytes with
      | None ->
        Malformed (response ~status:400 "oversized or truncated head\n", None)
      | Some i ->
        let head = take cb (i + 2) in
        request_of_head cb (String.sub head 0 i) ~max_body)

and request_of_head cb head ~max_body =
  match parse_head head with
  | Error e -> Malformed (response ~status:400 (e ^ "\n"), None)
  | Ok (req, version) -> (
    let rid = claimed_request_id req in
    let chunked =
      match List.assoc_opt "transfer-encoding" req.headers with
      | Some v ->
        let v = String.lowercase_ascii (String.trim v) in
        v <> "" && v <> "identity"
      | None -> false
    in
    if chunked then (
      match read_chunked cb ~limit:max_body with
      | Too_large ->
        Malformed (response ~status:413 "request body too large\n", rid)
      | Bad e -> Malformed (response ~status:400 (e ^ "\n"), rid)
      | Body b -> Request ({ req with body = b }, version))
    else
      match List.assoc_opt "content-length" req.headers with
      | None -> Request (req, version)
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | None -> Malformed (response ~status:400 "bad content-length\n", rid)
        | Some n when n < 0 ->
          Malformed (response ~status:400 "bad content-length\n", rid)
        | Some n when n > max_body ->
          Malformed (response ~status:413 "request body too large\n", rid)
        | Some n -> (
          match read_exactly cb n ~limit:max_body with
          | None -> Malformed (response ~status:400 "truncated body\n", rid)
          | Some b -> Request ({ req with body = b }, version))))

let render_response ~keep_alive r =
  let extra =
    List.fold_left
      (fun acc (k, v) -> acc ^ Printf.sprintf "%s: %s\r\n" k v)
      "" r.headers
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     %s\r\n%s\r\n%s"
    r.status (status_text r.status) r.content_type
    (String.length r.body)
    (if keep_alive then "keep-alive" else "close")
    extra r.body

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write fd b !pos (n - !pos) with
    | 0 -> pos := n
    | written -> pos := !pos + written
    | exception _ -> pos := n
  done

(* ---------------------------------------------------------------- *)
(* Server: acceptor domain + worker team over a bounded fd queue     *)
(* ---------------------------------------------------------------- *)

type state = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  mu : Mutex.t;
  cond : Condition.t;
  queue : Unix.file_descr Queue.t;
  conns : (int, Unix.file_descr) Hashtbl.t;  (* live connections, by id *)
  mutable next_conn : int;
}

type server = {
  st : state;
  acceptor : unit Domain.t;
  workers : unit Domain.t list;
}

let register_conn st fd =
  Mutex.lock st.mu;
  let id = st.next_conn in
  st.next_conn <- id + 1;
  Hashtbl.replace st.conns id fd;
  Mutex.unlock st.mu;
  id

let unregister_conn st id =
  Mutex.lock st.mu;
  Hashtbl.remove st.conns id;
  Mutex.unlock st.mu

let serve_connection st ~handler ~max_body fd =
  let cb = { fd; pending = "" } in
  let continue = ref true in
  while !continue do
    match read_request_conn ~max_body cb with
    | Closed -> continue := false
    | Malformed (resp, rid) ->
      let rid = match rid with Some r -> r | None -> gen_request_id () in
      write_all fd (render_response ~keep_alive:false (with_request_id rid resp));
      continue := false
    | Request (req, version) ->
      let rid, req = ensure_request_id req in
      let resp =
        try handler req
        with e ->
          response ~status:500
            (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))
      in
      let resp = with_request_id rid resp in
      let wants_close =
        match List.assoc_opt "connection" req.headers with
        | Some v -> String.lowercase_ascii v = "close"
        | None -> version = "HTTP/1.0"
      in
      let keep_alive = (not wants_close) && not (Atomic.get st.stopping) in
      write_all fd (render_response ~keep_alive resp);
      if not keep_alive then continue := false
  done

let worker_loop st ~handler ~max_body =
  let rec next () =
    Mutex.lock st.mu;
    (* Missed-wakeup audit (ctg_race): the wait is predicate-first and
       re-checked on every wakeup while holding [st.mu], and both
       producers of the predicate (accept_loop pushing to the queue,
       stop broadcasting after setting [stopping]) signal under the
       same mutex — a wakeup can be spurious but never lost. *)
    let rec wait () =
      if not (Queue.is_empty st.queue) then Some (Queue.pop st.queue)
      else if Atomic.get st.stopping then None
      else begin
        Condition.wait st.cond st.mu;
        wait ()
      end
    in
    let fd = wait () in
    Mutex.unlock st.mu;
    match fd with
    | None -> ()
    | Some fd ->
      let id = register_conn st fd in
      (try serve_connection st ~handler ~max_body fd with _ -> ());
      unregister_conn st id;
      (try Unix.close fd with _ -> ());
      next ()
  in
  next ()

let accept_loop st =
  while not (Atomic.get st.stopping) do
    match Unix.accept st.sock with
    | client, _ ->
      Mutex.lock st.mu;
      if Atomic.get st.stopping then begin
        Mutex.unlock st.mu;
        try Unix.close client with _ -> ()
      end
      else begin
        Queue.push client st.queue;
        Condition.signal st.cond;
        Mutex.unlock st.mu
      end
    | exception _ ->
      (* [stop] closed the listening socket under us; the flag check
         terminates the loop.  Transient accept errors just retry. *)
      if not (Atomic.get st.stopping) then Unix.sleepf 0.01
  done

let start_handler ?(host = "127.0.0.1") ?(backlog = 64) ?(workers = 4)
    ?(max_body = default_max_body) ~port handler =
  if workers < 1 then invalid_arg "Http.start_handler: workers must be >= 1";
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  Unix.listen sock backlog;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let st =
    {
      sock;
      port;
      stopping = Atomic.make false;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      conns = Hashtbl.create 16;
      next_conn = 0;
    }
  in
  {
    st;
    acceptor = Domain.spawn (fun () -> accept_loop st);
    workers =
      List.init workers (fun _ ->
          Domain.spawn (fun () -> worker_loop st ~handler ~max_body));
  }

let start ?host ?backlog ?workers ~port ~routes () =
  start_handler ?host ?backlog ?workers ~port (handler_of_routes routes)

let port s = s.st.port

let stop s =
  let st = s.st in
  if not (Atomic.exchange st.stopping true) then begin
    (* Closing the socket aborts a blocked [accept]; a racing accept on
       some platforms instead returns the next connection, so poke the
       port once to guarantee a wakeup. *)
    (try Unix.close st.sock with _ -> ());
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", st.port))
        with _ -> ());
       Unix.close fd
     with _ -> ());
    Domain.join s.acceptor;
    (* Drain: wake idle workers and drop never-served queued connections.
       A worker mid-request finishes and writes its response (keep-alive is
       disabled once [stopping] is set, so the connection then closes); a
       worker parked on an idle keep-alive read sees EOF via the receive
       shutdown. *)
    Mutex.lock st.mu;
    Condition.broadcast st.cond;
    let leftover = Queue.fold (fun acc fd -> fd :: acc) [] st.queue in
    Queue.clear st.queue;
    let live = Hashtbl.fold (fun _ fd acc -> fd :: acc) st.conns [] in
    Mutex.unlock st.mu;
    List.iter (fun fd -> try Unix.close fd with _ -> ()) leftover;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      live;
    List.iter Domain.join s.workers
  end
