test/test_stats.ml: Alcotest Array Ctg_kyao Ctg_prng Ctg_stats Int64 List Printf QCheck QCheck_alcotest Test
