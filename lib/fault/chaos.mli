(** The fault matrix: inject every modeled fault end-to-end and demand a
    verdict.

    Each {!case} injects one fault from {!Plan} into a live pipeline —
    pool lanes, gate tables, worker domains, the signing loop — and
    classifies what happened:

    - {e detected}: a defense raised or flagged before any corrupted
      output was delivered (health trip, KAT failure + eviction, stall
      watchdog, verify-after-sign reject);
    - {e contained}: the fault happened but the delivered output is
      provably unaffected (crash/transient recovered bit-exact against a
      clean reference run, corruption proven semantically harmless by
      BDD, rejected signature re-signed clean);
    - {e silent}: corrupted output was (or could have been) delivered
      with no signal — the only failing verdict.  CI fails on any.

    Everything derives from the printed master [seed] (fault positions,
    bias randomness, corruption sites), so a failing case reproduces
    exactly from the report alone. *)

type outcome = Detected | Contained | Silent

val outcome_name : outcome -> string

type case = {
  name : string;
  fault_class : string;  (** ["rng"], ["gate"], ["worker"] or ["sign"]. *)
  outcome : outcome;
  detail : string;
}

type report = {
  sigma : string;
  precision : int;
  seed : int64;
  cases : case list;
}

val count : outcome -> report -> int
val silent_cases : report list -> case list

val default_domains : int

val run :
  ?seed:int64 ->
  ?domains:int ->
  ?registry:Ctg_engine.Registry.t ->
  sigma:string ->
  precision:int ->
  tail_cut:int ->
  unit ->
  report
(** The full matrix at one parameter set: 4 randomness faults (stuck
    line, bias, repeating source, mid-stream exhaustion), 3 worker faults
    (kill, hang vs. the stall watchdog, transient failure), 3 gate-table
    corruptions (KAT + registry eviction at 1 and 3 flips, degradation to
    the CT CDT on a private compile) and 1 signing fault.  [registry]
    defaults to a {e fresh} registry so eviction scenarios never touch
    {!Ctg_engine.Registry.global}. *)

val to_json : report list -> Ctg_obs.Jsonx.t
(** Top-level [ok] is [true] iff no case anywhere is silent. *)

val pp_case : Format.formatter -> case -> unit
val pp_report : Format.formatter -> report -> unit
