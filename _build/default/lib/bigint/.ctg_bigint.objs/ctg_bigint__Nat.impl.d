lib/bigint/nat.ml: Array Buffer Char Ctg_util Float Format List Printf Stdlib String
