lib/falcon/polyz.ml: Array Ctg_bigint
