include Ctg_obs.Jsonx
