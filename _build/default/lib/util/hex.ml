let encode buf =
  let hexdigit v = "0123456789abcdef".[v] in
  String.init
    (2 * Bytes.length buf)
    (fun i ->
      let byte = Char.code (Bytes.get buf (i / 2)) in
      if i mod 2 = 0 then hexdigit (byte lsr 4) else hexdigit (byte land 0xf))

let decode s =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg (Printf.sprintf "Hex.decode: %c" c)
  in
  let compact = String.to_seq s |> Seq.filter (fun c -> not (c = ' ' || c = '\n' || c = '\t' || c = '\r')) |> Array.of_seq in
  let n = Array.length compact in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd digit count";
  Bytes.init (n / 2) (fun i ->
      Char.chr ((digit compact.(2 * i) lsl 4) lor digit compact.((2 * i) + 1)))
