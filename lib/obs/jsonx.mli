(** Minimal JSON, enough for the machine-readable outputs of this repo —
    analyzer findings, gate-budget baselines, metrics exposition and Chrome
    trace files — the repo deliberately has no external JSON dependency
    (same policy as [lib/bigint] vs zarith).  Lives in [ctg_obs], the
    lowest layer that needs it; [Ctg_analysis.Jsonx] re-exports it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Strict-enough recursive-descent parser for the subset this repo
    writes: objects, arrays, strings (with the standard escapes), numbers,
    booleans, null.  Errors carry the byte offset. *)

val to_string : t -> string
(** Compact rendering (no whitespace), integral floats printed as ints. *)

val pretty : t -> string
(** Two-space indented rendering, for committed baseline files. *)

val member : string -> t -> t option
(** Object field lookup ([None] on missing field or non-object). *)

val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
