(** Thread-safe cache of compiled samplers.

    `Sampler.create` re-runs the whole Fig. 4 pipeline — Knuth–Yao table,
    leaf enumeration, sublist split, Quine–McCluskey/Petrick minimization —
    which costs seconds at Falcon parameters.  Under a parallel engine that
    cost must be paid once per parameter set, not once per domain or per
    request, so lookups are memoized behind a [Mutex] with single-flight
    semantics: concurrent lookups of the same key block until the one
    in-flight compile finishes and then all receive the {e same} sampler
    (physical equality).  Callers that need private mutable state (every
    pool worker does) take {!Ctgauss.Sampler.clone}s of the shared master. *)

type key = {
  sigma : string;
  precision : int;
  tail_cut : int;
  method_ : Ctgauss.Sampler.method_;
}

type t

val create : unit -> t

val global : t
(** Process-wide registry shared by the CLI and the benches. *)

val lookup :
  t ->
  ?method_:Ctgauss.Sampler.method_ ->
  ?self_test:bool ->
  sigma:string ->
  precision:int ->
  tail_cut:int ->
  unit ->
  Ctgauss.Sampler.t
(** The cached sampler for the key, compiling it on first use (default
    method [Split_minimized], the paper's).  Repeated lookups return the
    physically equal master instance.

    [self_test] (default [true]) runs the {!Selftest} KAT on every fresh
    compile before it is published to the cache; a failing sampler is never
    cached and the claim is released, so a later lookup retries.
    @raise Selftest.Failed when the freshly compiled sampler disagrees
    with the reference Knuth–Yao walk. *)

val revalidate : ?strings:int -> t -> (key * Selftest.failure) list
(** Re-run the {!Selftest} KAT over every cached [Ready] sampler — the
    periodic integrity sweep against in-memory gate-table corruption.
    Failing entries are evicted under the single-flight lock: concurrent
    [lookup]s of an evicted key race for one [Building] claim and
    recompile {e exactly once}.  Entries mid-compile are skipped (they
    will be self-tested by their own [lookup]).  Returns the evicted
    keys with their first failing vector; each eviction increments
    [registry_selftest_evictions_total] in {!Ctg_obs.Registry.default}. *)

val size : t -> int
(** Distinct parameter sets currently cached. *)

val compiles : t -> int
(** Pipeline runs actually performed — with single-flight this equals
    {!size} no matter how many concurrent lookups raced. *)
