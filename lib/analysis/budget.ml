module Gate = Ctgauss.Gate

type entry = {
  sigma : string;
  precision : int;
  tail_cut : int;
  gates : int;
  depth : int;
  simple_gates : int;
}

type t = { entries : entry list }

let measure ~sigma ~precision ~tail_cut =
  let enum =
    Ctg_kyao.Leaf_enum.enumerate
      (Ctg_kyao.Matrix.create ~sigma ~precision ~tail_cut)
  in
  let program = Ctgauss.Compile.compile (Ctgauss.Sublist.build enum) in
  let simple = Ctgauss.Compile_simple.compile enum in
  {
    sigma;
    precision;
    tail_cut;
    gates = Gate.gate_count program;
    depth = Gate.depth program;
    simple_gates = Gate.gate_count simple;
  }

let entry_to_json e =
  Jsonx.Obj
    [
      ("sigma", Jsonx.Str e.sigma);
      ("precision", Jsonx.Num (float_of_int e.precision));
      ("tail_cut", Jsonx.Num (float_of_int e.tail_cut));
      ("gates", Jsonx.Num (float_of_int e.gates));
      ("depth", Jsonx.Num (float_of_int e.depth));
      ("simple_gates", Jsonx.Num (float_of_int e.simple_gates));
    ]

let to_json t =
  Jsonx.Obj
    [
      ("benchmark", Jsonx.Str "gates");
      ("entries", Jsonx.List (List.map entry_to_json t.entries));
    ]

let entry_of_json j =
  let field name conv =
    match Option.bind (Jsonx.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let ( let* ) = Result.bind in
  let* sigma = field "sigma" Jsonx.to_str in
  let* precision = field "precision" Jsonx.to_int in
  let* tail_cut = field "tail_cut" Jsonx.to_int in
  let* gates = field "gates" Jsonx.to_int in
  let* depth = field "depth" Jsonx.to_int in
  let* simple_gates = field "simple_gates" Jsonx.to_int in
  Ok { sigma; precision; tail_cut; gates; depth; simple_gates }

let of_json j =
  match Option.bind (Jsonx.member "entries" j) Jsonx.to_list with
  | None -> Error "baseline: missing \"entries\" array"
  | Some items ->
    let rec go acc = function
      | [] -> Ok { entries = List.rev acc }
      | item :: rest -> (
        match entry_of_json item with
        | Ok e -> go (e :: acc) rest
        | Error e -> Error e)
    in
    go [] items

let save path t =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Jsonx.pretty (to_json t)))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> Result.bind (Jsonx.parse contents) of_json

let find t ~sigma ~precision ~tail_cut =
  List.find_opt
    (fun e -> e.sigma = sigma && e.precision = precision && e.tail_cut = tail_cut)
    t.entries

let check ?(slack_pct = 0.0) ~baseline measured =
  let where = Printf.sprintf "sigma=%s n=%d" measured.sigma measured.precision in
  if
    baseline.sigma <> measured.sigma
    || baseline.precision <> measured.precision
    || baseline.tail_cut <> measured.tail_cut
  then
    [
      Report.finding Report.Error ~rule:"gate-budget" ~where
        "baseline entry parameters do not match measurement";
    ]
  else begin
    let limit base = float_of_int base *. (1.0 +. (slack_pct /. 100.0)) in
    let over what measured base =
      if float_of_int measured > limit base then
        Some
          (Report.finding Report.Error ~rule:"gate-budget" ~where
             (Printf.sprintf "%s regression: %d measured vs %d baseline%s" what
                measured base
                (if slack_pct > 0.0 then
                   Printf.sprintf " (+%.1f%% slack)" slack_pct
                 else "")))
      else None
    in
    let improvements =
      if measured.gates < baseline.gates then
        [
          Report.finding Report.Info ~rule:"gate-budget" ~where
            (Printf.sprintf
               "gates improved: %d measured vs %d baseline — refresh \
                BENCH_gates.json to lock it in"
               measured.gates baseline.gates);
        ]
      else []
    in
    List.filter_map Fun.id
      [
        over "gates" measured.gates baseline.gates;
        over "depth" measured.depth baseline.depth;
        over "simple_gates" measured.simple_gates baseline.simple_gates;
      ]
    @ improvements
  end
