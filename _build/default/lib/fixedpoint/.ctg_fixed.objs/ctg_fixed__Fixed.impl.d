lib/fixedpoint/fixed.ml: Ctg_bigint Format String
