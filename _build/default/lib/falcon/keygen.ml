module Bs = Ctg_prng.Bitstream

type secret = {
  f : int array;
  g : int array;
  big_f : int array;
  big_g : int array;
}

type keypair = {
  params : Params.t;
  secret : secret;
  h : int array;
  tree : Ldl.t;
  b1_fft : Fftc.t * Fftc.t;
  b2_fft : Fftc.t * Fftc.t;
  f_fft : Fftc.t;
  big_f_fft : Fftc.t;
  attempts : int;
}

(* Key polynomials need a quick Gaussian of width sigma_fg (3..6): a small
   float CDT inverted with a 53-bit uniform is exact enough for key
   material in this reproduction (keys are public-randomness here). *)
let gaussian_int rng ~sigma =
  let tail = int_of_float (ceil (sigma *. 13.0)) in
  let weight z = exp (-.float_of_int (z * z) /. (2.0 *. sigma *. sigma)) in
  let total = ref (weight 0) in
  for z = 1 to tail do
    total := !total +. (2.0 *. weight z)
  done;
  let hi = Bs.next_bits rng 26 and lo = Bs.next_bits rng 27 in
  let u =
    float_of_int ((hi lsl 27) lor lo) /. 9007199254740992.0 *. !total
  in
  let rec walk z acc =
    let w = if z = 0 then weight 0 else 2.0 *. weight z in
    let acc = acc +. w in
    if u < acc || z >= tail then z else walk (z + 1) acc
  in
  let mag = walk 0 0.0 in
  if mag > 0 && Bs.next_bit rng = 1 then -mag else mag

let sigma_sign params =
  (* Round-1 Falcon scale: the signing Gaussian is a small multiple of
     sqrt(q); only the tree-leaf σ' values (ideal mode) depend on it. *)
  1.17 *. sqrt (float_of_int params.Params.q)

let generate params rng =
  let n = params.Params.n in
  let plan = Ntt.plan n in
  let rec attempt k =
    if k > 200 then failwith "Keygen.generate: no valid (f, g) in 200 draws";
    let f = Array.init n (fun _ -> gaussian_int rng ~sigma:params.Params.sigma_fg) in
    let g = Array.init n (fun _ -> gaussian_int rng ~sigma:params.Params.sigma_fg) in
    let f_q = Array.map Zq.reduce f in
    if not (Ntt.invertible plan f_q) then attempt (k + 1)
    else begin
      let zf = Polyz.of_int_array f and zg = Polyz.of_int_array g in
      match Ntru_solve.solve ~q:params.Params.q ~f:zf ~g:zg with
      | None -> attempt (k + 1)
      | Some (zbig_f, zbig_g) -> (f, g, zbig_f, zbig_g, k)
    end
  in
  let f, g, zbig_f, zbig_g, attempts = attempt 1 in
  let big_f = Polyz.to_int_array zbig_f in
  let big_g = Polyz.to_int_array zbig_g in
  let f_q = Array.map Zq.reduce f and g_q = Array.map Zq.reduce g in
  let h = Ntt.negacyclic_mul plan g_q (Ntt.ring_inv plan f_q) in
  let neg p = Array.map (fun c -> -c) p in
  let b1_fft = (Fftc.of_int_poly g, Fftc.of_int_poly (neg f)) in
  let b2_fft = (Fftc.of_int_poly big_g, Fftc.of_int_poly (neg big_f)) in
  let tree = Ldl.build ~b1:b1_fft ~b2:b2_fft ~sigma_sign:(sigma_sign params) in
  {
    params;
    secret = { f; g; big_f; big_g };
    h;
    tree;
    b1_fft;
    b2_fft;
    f_fft = Fftc.of_int_poly f;
    big_f_fft = Fftc.of_int_poly big_f;
    attempts;
  }

let restore params ~secret ~h =
  let neg p = Array.map (fun c -> -c) p in
  let b1_fft = (Fftc.of_int_poly secret.g, Fftc.of_int_poly (neg secret.f)) in
  let b2_fft =
    (Fftc.of_int_poly secret.big_g, Fftc.of_int_poly (neg secret.big_f))
  in
  let tree = Ldl.build ~b1:b1_fft ~b2:b2_fft ~sigma_sign:(sigma_sign params) in
  {
    params;
    secret;
    h;
    tree;
    b1_fft;
    b2_fft;
    f_fft = Fftc.of_int_poly secret.f;
    big_f_fft = Fftc.of_int_poly secret.big_f;
    attempts = 0;
  }

let check_ntru_equation kp =
  let f = Polyz.of_int_array kp.secret.f in
  let g = Polyz.of_int_array kp.secret.g in
  let big_f = Polyz.of_int_array kp.secret.big_f in
  let big_g = Polyz.of_int_array kp.secret.big_g in
  let lhs = Polyz.sub (Polyz.mul f big_g) (Polyz.mul g big_f) in
  let expected =
    Array.init kp.params.Params.n (fun i ->
        if i = 0 then Ctg_bigint.Zint.of_int kp.params.Params.q
        else Ctg_bigint.Zint.zero)
  in
  Polyz.equal lhs expected

let check_public_key kp =
  let plan = Ntt.plan kp.params.Params.n in
  let f_q = Array.map Zq.reduce kp.secret.f in
  let g_q = Array.map Zq.reduce kp.secret.g in
  Ntt.negacyclic_mul plan f_q kp.h = g_q
