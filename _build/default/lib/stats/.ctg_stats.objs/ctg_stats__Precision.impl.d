lib/stats/precision.ml: Array Ctg_bigint Ctg_fixed Format List
