(** ffSampling (fast Fourier nearest-plane sampling): walk the Falcon tree
    and draw one integer per leaf from the base sampler, producing an
    integer vector [z] close to the target [t] under the Gram geometry.
    This is where the paper's constant-time sampler gets exercised 2N
    times per signature attempt. *)

val sample :
  Ldl.t ->
  Base_sampler.t ->
  Ctg_prng.Bitstream.t ->
  t0:Fftc.t ->
  t1:Fftc.t ->
  Fftc.t * Fftc.t
(** [(z0, z1)] in the FFT domain; their coefficients are exact integers
    (up to FP noise). *)
