type event = {
  name : string;
  cat : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  args : (string * string) list;
}

(* head counts events ever written; slot i lives at [i mod capacity].  The
   owner domain is the only writer; readers (export) see a consistent
   prefix through the atomic head publish, and may observe a slot mid-
   overwrite only when the ring has already wrapped — an accepted tracing
   race (the event read is a whole immutable record either way). *)
type ring = {
  tid : int;
  slots : event option array;
  head : int Atomic.t;
}

let enabled = Atomic.make false
let default_capacity = ref 16384
let rings : ring list ref = ref []
let rings_mutex = Mutex.create ()

let dls_key : ring option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let ring_for_self () =
  let cell = Domain.DLS.get dls_key in
  match !cell with
  | Some r -> r
  | None ->
    let r =
      {
        tid = (Domain.self () :> int);
        slots = Array.make !default_capacity None;
        head = Atomic.make 0;
      }
    in
    Mutex.lock rings_mutex;
    rings := r :: !rings;
    Mutex.unlock rings_mutex;
    cell := Some r;
    r

let record ev =
  let r = ring_for_self () in
  let i = Atomic.get r.head in
  r.slots.(i mod Array.length r.slots) <- Some ev;
  Atomic.set r.head (i + 1)

let enable ?capacity () =
  (match capacity with
  | Some c ->
    if c < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
    default_capacity := c
  | None -> ());
  Atomic.set enabled true

let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let reset () =
  Mutex.lock rings_mutex;
  List.iter
    (fun r ->
      Atomic.set r.head 0;
      Array.fill r.slots 0 (Array.length r.slots) None)
    !rings;
  Mutex.unlock rings_mutex

let eval_args = function None -> [] | Some f -> f ()

let with_span ?(cat = "ctg") ?args name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let finish () =
      record
        {
          name;
          cat;
          ts_ns = t0;
          dur_ns = Clock.now_ns () - t0;
          tid = (Domain.self () :> int);
          args = eval_args args;
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let instant ?(cat = "ctg") ?args name =
  if Atomic.get enabled then
    record
      {
        name;
        cat;
        ts_ns = Clock.now_ns ();
        dur_ns = -1;
        tid = (Domain.self () :> int);
        args = eval_args args;
      }

let snapshot_rings () =
  Mutex.lock rings_mutex;
  let rs = !rings in
  Mutex.unlock rings_mutex;
  rs

let collect () =
  let acc = ref [] and drops = ref 0 in
  List.iter
    (fun r ->
      let head = Atomic.get r.head in
      let cap = Array.length r.slots in
      drops := !drops + max 0 (head - cap);
      for i = max 0 (head - cap) to head - 1 do
        match r.slots.(i mod cap) with
        | Some ev -> acc := ev :: !acc
        | None -> ()
      done)
    (snapshot_rings ());
  (!acc, !drops)

let events () =
  let evs, _ = collect () in
  List.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with
      | 0 -> ( match compare a.tid b.tid with 0 -> compare a.name b.name | c -> c)
      | c -> c)
    evs

let dropped () = snd (collect ())

let event_to_json ev =
  let base =
    [
      ("name", Jsonx.Str ev.name);
      ("cat", Jsonx.Str ev.cat);
      ("pid", Jsonx.Num 1.0);
      ("tid", Jsonx.Num (float_of_int ev.tid));
      ("ts", Jsonx.Num (float_of_int ev.ts_ns /. 1e3));
    ]
  in
  let phase =
    if ev.dur_ns < 0 then [ ("ph", Jsonx.Str "i"); ("s", Jsonx.Str "t") ]
    else [ ("ph", Jsonx.Str "X"); ("dur", Jsonx.Num (float_of_int ev.dur_ns /. 1e3)) ]
  in
  let args =
    match ev.args with
    | [] -> []
    | kvs -> [ ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) kvs)) ]
  in
  Jsonx.Obj (base @ phase @ args)

let export () =
  let evs, drops = collect () in
  let evs =
    List.sort
      (fun a b ->
        match compare a.ts_ns b.ts_ns with
        | 0 -> ( match compare a.tid b.tid with 0 -> compare a.name b.name | c -> c)
        | c -> c)
      evs
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (List.map event_to_json evs));
      ("displayTimeUnit", Jsonx.Str "ms");
      ("ctg_dropped_events", Jsonx.Num (float_of_int drops));
    ]

let write path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Jsonx.to_string (export ()));
      output_char oc '\n')
