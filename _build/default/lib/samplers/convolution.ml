type t = { base : Ctgauss.Sampler.t; k : int; levels : int; sigma0 : float }

let create ~base ~k ~levels =
  if k < 1 || levels < 1 then invalid_arg "Convolution.create";
  let sigma0 = float_of_string (Ctgauss.Sampler.sigma base) in
  { base; k; levels; sigma0 }

let sigma_effective t =
  t.sigma0 *. (sqrt (1.0 +. float_of_int (t.k * t.k)) ** float_of_int t.levels)

(* One signed base draw: magnitude plus an independent sign bit, matching
   the folded-table convention. *)
let rec draw t rng level =
  if level = 0 then begin
    let m = Ctgauss.Sampler.sample_magnitude t.base rng in
    (* Always consume the sign bit (constant randomness footprint). *)
    let s = Ctg_prng.Bitstream.next_bit rng in
    if m > 0 && s = 1 then -m else m
  end
  else begin
    let z1 = draw t rng (level - 1) in
    let z2 = draw t rng (level - 1) in
    z1 + (t.k * z2)
  end

let sample t rng = draw t rng t.levels
let base_samples_per_output t = 1 lsl t.levels

let instance t =
  {
    Sampler_sig.name =
      Printf.sprintf "convolution(sigma0=%s,k=%d,levels=%d)"
        (Ctgauss.Sampler.sigma t.base) t.k t.levels;
    constant_time = true;
    sample_magnitude = (fun rng -> abs (sample t rng));
    sample_traced =
      (fun rng ->
        let v = sample t rng in
        (abs v, base_samples_per_output t));
  }
