open Ctg_sync.Shim

type labels = (string * string) list

(* The outer Atomic is the reset indirection: handles survive a reset, the
   cell behind them is swapped.  Updates racing a reset may hit the old
   cell and be dropped with it — readers are protected by the seqlock. *)
type counter = int Atomic.t Atomic.t
type gauge = float Atomic.t Atomic.t

(* [h_ex] are the histogram's exemplars: the ids (request ids, in the
   serving path) of the largest observations seen since the last reset,
   value-descending — the link from a p99 outlier in /metrics to its
   trace.  Kept tiny and updated under the same mutex as the cell. *)
type histo = {
  h_mutex : Mutex.t;
  mutable cell : Histo.t;
  mutable h_ex : (int * string) list;
}

let max_exemplars = 4

type metric = C of counter | G of gauge | H of histo
type kind = Kcounter | Kgauge | Khisto

type t = {
  mutex : Mutex.t;  (* guards table, kinds and the reset sequence *)
  gen : int Atomic.t;  (* seqlock: odd while a reset is swapping cells *)
  table : (string * labels, metric) Hashtbl.t;
  kinds : (string, kind) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    gen = Atomic.make 0;
    table = Hashtbl.create 32;
    kinds = Hashtbl.create 16;
  }

let default = create ()

let canon_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then invalid_arg ("Registry: duplicate label key " ^ a);
      check rest
    | _ -> ()
  in
  check sorted;
  sorted

let kind_name = function Kcounter -> "counter" | Kgauge -> "gauge" | Khisto -> "histogram"

let find_or_create t name labels kind make unpack =
  let labels = canon_labels labels in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.kinds name with
  | Some k when k <> kind ->
    Mutex.unlock t.mutex;
    invalid_arg
      (Printf.sprintf "Registry: %s already registered as a %s" name (kind_name k))
  | _ ->
    let m =
      match Hashtbl.find_opt t.table (name, labels) with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace t.table (name, labels) m;
        Hashtbl.replace t.kinds name kind;
        m
    in
    Mutex.unlock t.mutex;
    (match unpack m with Some v -> v | None -> assert false (* kinds table rules this out *))

let counter t ?(labels = []) name =
  find_or_create t name labels Kcounter
    (fun () -> C (Atomic.make (Atomic.make 0)))
    (function C c -> Some c | _ -> None)

let add (c : counter) n = ignore (Atomic.fetch_and_add (Atomic.get c) n)
let incr c = add c 1
let value (c : counter) = Atomic.get (Atomic.get c)

let gauge t ?(labels = []) name =
  find_or_create t name labels Kgauge
    (fun () -> G (Atomic.make (Atomic.make 0.0)))
    (function G g -> Some g | _ -> None)

let set_gauge (g : gauge) v = Atomic.set (Atomic.get g) v
let gauge_value (g : gauge) = Atomic.get (Atomic.get g)

let histo t ?(labels = []) name =
  find_or_create t name labels Khisto
    (fun () -> H { h_mutex = Mutex.create (); cell = Histo.create (); h_ex = [] })
    (function H h -> Some h | _ -> None)

let observe (h : histo) v =
  Mutex.lock h.h_mutex;
  Histo.add h.cell v;
  Mutex.unlock h.h_mutex

let rec take n = function
  | [] -> []
  | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl

let observe_exemplar (h : histo) v id =
  Mutex.lock h.h_mutex;
  Histo.add h.cell v;
  if id <> "" then begin
    (* Insert-sorted, value-descending, recency breaking ties — so the
       retained set is always the current maxima and a repeated max keeps
       its newest id first. *)
    let ex = (v, id) :: h.h_ex in
    let ex = List.stable_sort (fun (a, _) (b, _) -> compare b a) ex in
    h.h_ex <- take max_exemplars ex
  end;
  Mutex.unlock h.h_mutex

let exemplars (h : histo) =
  Mutex.lock h.h_mutex;
  let ex = h.h_ex in
  Mutex.unlock h.h_mutex;
  ex

let histo_summary (h : histo) =
  Mutex.lock h.h_mutex;
  let s = Histo.summary h.cell in
  Mutex.unlock h.h_mutex;
  s

let reset t =
  Mutex.lock t.mutex;
  Atomic.incr t.gen (* odd: readers back off *);
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c (Atomic.make 0)
      | G g -> Atomic.set g (Atomic.make 0.0)
      | H h ->
        Mutex.lock h.h_mutex;
        h.cell <- Histo.create ();
        h.h_ex <- [];
        Mutex.unlock h.h_mutex)
    t.table;
  Atomic.incr t.gen;
  Mutex.unlock t.mutex

let generation t = Atomic.get t.gen / 2

let rec read_consistent t f =
  let g1 = Atomic.get t.gen in
  if g1 land 1 = 1 then begin
    Domain.cpu_relax ();
    read_consistent t f
  end
  else begin
    let v = f () in
    if Atomic.get t.gen = g1 then v else read_consistent t f
  end

(* ---------------------------------------------------------------- *)
(* Exposition                                                        *)
(* ---------------------------------------------------------------- *)

let sorted_entries t =
  Mutex.lock t.mutex;
  let entries = Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.table [] in
  Mutex.unlock t.mutex;
  List.sort (fun ((na, la), _) ((nb, lb), _) -> compare (na, la) (nb, lb)) entries

let metric_kind = function C _ -> Kcounter | G _ -> Kgauge | H _ -> Khisto

let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_text = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
    ^ "}"

let num_text f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let expose_text t =
  let entries = sorted_entries t in
  read_consistent t (fun () ->
      let buf = Buffer.create 1024 in
      let last_name = ref "" in
      List.iter
        (fun ((name, labels), m) ->
          if name <> !last_name then begin
            Buffer.add_string buf
              (Printf.sprintf "# TYPE %s %s\n" name (kind_name (metric_kind m)));
            last_name := name
          end;
          let l = labels_text labels in
          match m with
          | C c -> Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name l (value c))
          | G g ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name l (num_text (gauge_value g)))
          | H h ->
            let s = histo_summary h in
            List.iter
              (fun (suffix, v) ->
                Buffer.add_string buf (Printf.sprintf "%s_%s%s %d\n" name suffix l v))
              [
                ("count", s.Histo.count);
                ("sum", s.Histo.sum);
                ("min", s.Histo.min);
                ("max", s.Histo.max);
                ("p50", s.Histo.p50);
                ("p90", s.Histo.p90);
                ("p99", s.Histo.p99);
              ])
        entries;
      Buffer.contents buf)

let to_json t =
  let entries = sorted_entries t in
  read_consistent t (fun () ->
      let metric ((name, labels), m) =
        let base =
          [
            ("name", Jsonx.Str name);
            ("type", Jsonx.Str (kind_name (metric_kind m)));
            ("labels", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) labels));
          ]
        in
        let payload =
          match m with
          | C c -> [ ("value", Jsonx.Num (float_of_int (value c))) ]
          | G g -> [ ("value", Jsonx.Num (gauge_value g)) ]
          | H h ->
            let s = histo_summary h in
            let ex = exemplars h in
            let fields =
              [
                ("count", Jsonx.Num (float_of_int s.Histo.count));
                ("sum", Jsonx.Num (float_of_int s.Histo.sum));
                ("mean", Jsonx.Num s.Histo.mean);
                ("min", Jsonx.Num (float_of_int s.Histo.min));
                ("max", Jsonx.Num (float_of_int s.Histo.max));
                ("p50", Jsonx.Num (float_of_int s.Histo.p50));
                ("p90", Jsonx.Num (float_of_int s.Histo.p90));
                ("p99", Jsonx.Num (float_of_int s.Histo.p99));
              ]
            in
            let fields =
              if ex = [] then fields
              else
                fields
                @ [
                    ( "exemplars",
                      Jsonx.List
                        (List.map
                           (fun (v, id) ->
                             Jsonx.Obj
                               [
                                 ("value", Jsonx.Num (float_of_int v));
                                 ("id", Jsonx.Str id);
                               ])
                           ex) );
                  ]
            in
            [ ("histogram", Jsonx.Obj fields) ]
        in
        Jsonx.Obj (base @ payload)
      in
      Jsonx.Obj [ ("metrics", Jsonx.List (List.map metric entries)) ])
