(* Bounded concurrency harnesses for the production protocols, run under
   the {!Model} DPOR checker.  Each harness is a closed program over the
   real modules (not re-implementations): the checker explores every
   inequivalent interleaving of its Sync operations and fails on an
   assertion, deadlock or livelock.

   Harnesses are deliberately tiny — two or three fibers, single-digit
   item counts — because DPOR cost grows with the number of conflicting
   operations, and the protocols under test are data-size-independent:
   a two-element queue exercises the same lock/wait/signal structure as
   a thousand-element one.

   The [mutants] list holds known-broken variants; the checker must flag
   every one (that is the test that the checker still has teeth). *)

open Ctg_sync.Shim
module Model = Model

type harness = {
  h_name : string;
  h_descr : string;
  h_expect_violation : bool;  (* mutants: the checker must flag these *)
  h_fn : unit -> unit;
  h_max_execs : int;  (* exploration budget; tuned per harness *)
  h_spin_limit : int;
  (* Re-reads of an already-seen object before a fiber is spin-parked.
     The default (8) catches retry loops fast; harnesses whose payload
     legitimately re-reads an unwritten flag (the registry compile reads
     Trace's [enabled] once per internal span) raise it — sound there
     because those reads conflict with nothing and the harness's real
     blocking is all modeled Condition parking. *)
}

(* ---------------------------------------------------------------- *)
(* 1. Obs.Registry seqlock: a reset swapping cells concurrently with  *)
(*    a [read_consistent] reader must never yield a torn snapshot.    *)
(* ---------------------------------------------------------------- *)

let seqlock () =
  let reg = Ctg_obs.Registry.create () in
  let a = Ctg_obs.Registry.counter reg "a" in
  let b = Ctg_obs.Registry.counter reg "b" in
  (* Establish the invariant a = b = 1 before racing. *)
  Ctg_obs.Registry.incr a;
  Ctg_obs.Registry.incr b;
  let resetter = Domain.spawn (fun () -> Ctg_obs.Registry.reset reg) in
  let reader =
    Domain.spawn (fun () ->
        let va, vb =
          Ctg_obs.Registry.read_consistent reg (fun () ->
              (Ctg_obs.Registry.value a, Ctg_obs.Registry.value b))
        in
        (* Either both pre-reset or both post-reset; (1, 0) / (0, 1)
           would be a torn snapshot across the cell swap. *)
        assert ((va, vb) = (1, 1) || (va, vb) = (0, 0)))
  in
  Domain.join resetter;
  Domain.join reader

(* ---------------------------------------------------------------- *)
(* 2. Engine.Pool chunk queue: bounded push/pop with abortable waits. *)
(*    Every pushed item is popped exactly once, in order; an abort     *)
(*    never leaves producer or consumer parked.                        *)
(* ---------------------------------------------------------------- *)

let pool_chunkq () =
  let module P = Ctg_engine.Pool in
  let q = P.Chunkq.create ~capacity:1 in
  let no_abort () = false in
  let producer =
    Domain.spawn (fun () ->
        P.Chunkq.push q ~should_abort:no_abort 10;
        P.Chunkq.push q ~should_abort:no_abort 11)
  in
  let got = ref [] in
  let consumer =
    Domain.spawn (fun () ->
        for _ = 1 to 2 do
          match P.Chunkq.pop q ~should_abort:no_abort with
          | Some v -> got := v :: !got
          | None -> assert false
        done)
  in
  Domain.join producer;
  Domain.join consumer;
  assert (List.rev !got = [ 10; 11 ])

let pool_chunkq_abort () =
  let module P = Ctg_engine.Pool in
  let q = P.Chunkq.create ~capacity:1 in
  let aborted = Atomic.make false in
  let should_abort () = Atomic.get aborted in
  (* Producer tries to push two items into a one-slot queue that nobody
     drains; the abort must unblock it. *)
  let producer =
    Domain.spawn (fun () ->
        P.Chunkq.push q ~should_abort 1;
        P.Chunkq.push q ~should_abort 2)
  in
  let killer =
    Domain.spawn (fun () ->
        Atomic.set aborted true;
        P.Chunkq.wake q)
  in
  Domain.join producer;
  Domain.join killer

(* ---------------------------------------------------------------- *)
(* 3. Engine.Pool work accounting: cursor + orphan re-queue +          *)
(*    completion wakeup.  Every chunk completes exactly once even      *)
(*    when one worker crashes at a chunk boundary; first failure wins  *)
(*    and unblocks everyone.                                           *)
(* ---------------------------------------------------------------- *)

let pool_cursor () =
  let module W = Ctg_engine.Pool.Workq in
  let wq = W.create ~total:2 ~stamp:0 in
  let drain () =
    let continue = ref true in
    while !continue do
      match W.claim wq with
      | Some _ -> W.complete wq ~stamp:1
      | None -> continue := false
    done
  in
  (* w1 crashes on its first chunk (orphans it), then — like a respawned
     domain — rejoins the drain loop.  w2 just drains. *)
  let w1 =
    Domain.spawn (fun () ->
        (match W.claim wq with
        | Some c -> W.orphan wq c
        | None -> ());
        drain ())
  in
  let w2 = Domain.spawn drain in
  Domain.join w1;
  Domain.join w2;
  assert (W.wait wq ~stall:(fun () -> None) = None);
  assert (W.done_count wq = 2)

let pool_cursor_fail () =
  let module W = Ctg_engine.Pool.Workq in
  let wq = W.create ~total:2 ~stamp:0 in
  let boom = Failure "chunk failed" in
  let w1 =
    Domain.spawn (fun () ->
        match W.claim wq with
        | Some _ -> W.fail wq boom
        | None -> ())
  in
  let w2 =
    Domain.spawn (fun () ->
        let continue = ref true in
        while !continue do
          match W.claim wq with
          | Some _ -> W.complete wq ~stamp:1
          | None -> continue := false
        done)
  in
  Domain.join w1;
  Domain.join w2;
  (* The waiter must be released by either completion or failure, and a
     recorded failure must be the first one. *)
  (match W.wait wq ~stall:(fun () -> None) with
  | Some e -> assert (e == boom)
  | None -> assert (W.done_count wq = 2))

(* ---------------------------------------------------------------- *)
(* 4. Engine.Workforce: parked helpers, generation wakeup, first       *)
(*    error wins, no lost indices.                                     *)
(* ---------------------------------------------------------------- *)

let workforce () =
  let module Wf = Ctg_engine.Workforce in
  let wf = Wf.create ~domains:2 () in
  let hits = Array.init 2 (fun _ -> Atomic.make 0) in
  Wf.run wf ~n:2 (fun i -> Atomic.incr hits.(i));
  Wf.shutdown wf;
  Array.iter (fun h -> assert (Atomic.get h = 1)) hits

let workforce_error () =
  let module Wf = Ctg_engine.Workforce in
  let wf = Wf.create ~domains:2 () in
  let boom = Failure "iteration failed" in
  let raised =
    match Wf.run wf ~n:2 (fun i -> if i = 0 then raise boom) with
    | () -> false
    | exception e -> e == boom
  in
  Wf.shutdown wf;
  assert raised

(* ---------------------------------------------------------------- *)
(* 5. Serve.Batcher: bounded pending queue, exact shed accounting,     *)
(*    every accepted request fulfilled exactly once, drain on stop.    *)
(* ---------------------------------------------------------------- *)

let batcher () =
  let module B = Ctg_serve.Batcher in
  let t =
    B.create ~linger:0.0 ~capacity:1 ~max_batch:2
      ~run:(fun reqs -> Array.map (fun r -> r * 10) reqs)
      ()
  in
  let outcomes = Array.make 2 B.Shed in
  let submitters =
    List.init 2 (fun i ->
        Domain.spawn (fun () -> outcomes.(i) <- B.submit t (i + 1)))
  in
  List.iter Domain.join submitters;
  B.shutdown t;
  let dones = ref 0 and sheds = ref 0 in
  Array.iteri
    (fun i o ->
      match o with
      | B.Done r ->
        incr dones;
        assert (r = (i + 1) * 10)
      | B.Shed -> incr sheds
      | B.Failed _ -> assert false)
    outcomes;
  assert (!dones + !sheds = 2);
  assert (B.shed_count t = !sheds);
  assert (B.submitted t = !dones)

let batcher_stop () =
  let module B = Ctg_serve.Batcher in
  let t =
    B.create ~linger:0.0 ~capacity:2 ~max_batch:1
      ~run:(fun reqs -> Array.map (fun r -> -r) reqs)
      ()
  in
  (* A submit racing shutdown is either served (drain) or shed (stopping
     flag) — never dropped-and-acked, never deadlocked. *)
  let submitter = Domain.spawn (fun () -> B.submit t 7) in
  B.shutdown t;
  (match Domain.join submitter with
  | B.Done r -> assert (r = -7)
  | B.Shed -> ()
  | B.Failed _ -> assert false)

(* ---------------------------------------------------------------- *)
(* 6. Single-flight: Engine.Registry compile cache and Serve.Keyring   *)
(*    keygen cache — two racing lookups of the same key must share     *)
(*    one compile/keygen and receive physically equal results.         *)
(* ---------------------------------------------------------------- *)

let engine_registry () =
  let module R = Ctg_engine.Registry in
  (* Warm the process-wide metric handles (hit/miss counters, compile
     histogram) sequentially so the racing part only explores the
     single-flight protocol itself. *)
  let reg = R.create () in
  ignore
    (R.lookup reg ~self_test:false ~sigma:"2" ~precision:16 ~tail_cut:13 ());
  let reg = R.create () in
  let out = Array.make 2 None in
  let fibers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            out.(i) <-
              Some
                (R.lookup reg ~self_test:false ~sigma:"2" ~precision:16
                   ~tail_cut:13 ())))
  in
  List.iter Domain.join fibers;
  (match (out.(0), out.(1)) with
  | Some a, Some b -> assert (a == b)
  | _ -> assert false);
  assert (R.compiles reg = 1)

let keyring () =
  let module K = Ctg_serve.Keyring in
  let kr =
    K.create
      ~registry:(Ctg_obs.Registry.create ())
      ~params:(Ctg_falcon.Params.custom ~n:8)
      ()
  in
  let out = Array.make 2 None in
  let fibers =
    List.init 2 (fun i ->
        Domain.spawn (fun () -> out.(i) <- Some (K.lookup kr ~tenant:"alice")))
  in
  List.iter Domain.join fibers;
  (match (out.(0), out.(1)) with
  | Some a, Some b -> assert (a == b)
  | _ -> assert false);
  assert (K.keygens kr = 1)

(* ---------------------------------------------------------------- *)
(* 7. Obs.Trace ring: reader concurrent with a wrapping writer never   *)
(*    misattributes an overwritten slot.                               *)
(* ---------------------------------------------------------------- *)

let trace_ring () =
  let module Ring = Ctg_obs.Trace.Ring in
  let r = Ring.create 2 in
  Ring.push r 100;
  let writer =
    Domain.spawn (fun () ->
        Ring.push r 101;
        Ring.push r 102)
  in
  let reader =
    Domain.spawn (fun () ->
        let live, dropped = Ring.read r in
        (* Every surviving (index, value) pair must carry the value that
           was pushed at that index — attribution is certain — and
           nothing is double-counted. *)
        List.iter (fun (idx, v) -> assert (v = 100 + idx)) live;
        assert (List.length live + dropped <= 3))
  in
  Domain.join writer;
  Domain.join reader;
  let live, dropped = Ring.read r in
  assert (List.length live = 2);
  assert (dropped = 1);
  List.iter (fun (idx, v) -> assert (v = 100 + idx)) live

(* ---------------------------------------------------------------- *)
(* Mutants: known-broken programs the checker must flag.              *)
(* ---------------------------------------------------------------- *)

let racy_counter () =
  let c = Atomic.make 0 in
  let incr_racy () =
    let v = Atomic.get c in
    Atomic.set c (v + 1)
  in
  let d1 = Domain.spawn incr_racy in
  let d2 = Domain.spawn incr_racy in
  Domain.join d1;
  Domain.join d2;
  assert (Atomic.get c = 2)

(* The Obs.Registry seqlock with the generation bump removed: the reset
   cell-swap becomes invisible to the reader's validation. *)
let seqlock_nogen () =
  let a = Atomic.make 1 and b = Atomic.make 1 in
  let resetter =
    Domain.spawn (fun () ->
        Atomic.set a 0;
        Atomic.set b 0)
  in
  let reader =
    Domain.spawn (fun () ->
        let va = Atomic.get a in
        let vb = Atomic.get b in
        assert ((va, vb) = (1, 1) || (va, vb) = (0, 0)))
  in
  Domain.join resetter;
  Domain.join reader

let wait_no_predicate () =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let ready = ref false in
  let waiter =
    Domain.spawn (fun () ->
        Mutex.lock mu;
        Condition.wait cond mu;
        assert !ready;
        Mutex.unlock mu)
  in
  let signaller =
    Domain.spawn (fun () ->
        Mutex.lock mu;
        ready := true;
        Condition.signal cond;
        Mutex.unlock mu)
  in
  Domain.join waiter;
  Domain.join signaller

(* The pre-PR-7 trace ring: head published before the slot write, no
   reserved counter — a reader racing a wrapping writer can attribute a
   new value to an old index (or see a stale value at a new index). *)
let trace_ring_mutant () =
  let cap = 2 in
  let slots = Array.init cap (fun _ -> Atomic.make None) in
  let head = Atomic.make 0 in
  let push v =
    let i = Atomic.get head in
    Atomic.set head (i + 1);  (* published before the slot is written *)
    Atomic.set slots.(i mod cap) (Some (i, v))
  in
  push 100;
  let writer =
    Domain.spawn (fun () ->
        push 101;
        push 102)
  in
  let reader =
    Domain.spawn (fun () ->
        let h = Atomic.get head in
        for idx = max 0 (h - cap) to h - 1 do
          match Atomic.get slots.(idx mod cap) with
          | Some (stored, v) ->
            if stored = idx then
              (* Claimed attribution must be truthful. *)
              assert (v = 100 + idx)
          | None -> assert false
        done)
  in
  Domain.join writer;
  Domain.join reader

(* ---------------------------------------------------------------- *)
(* Catalogue                                                          *)
(* ---------------------------------------------------------------- *)

let harnesses =
  [
    {
      h_name = "seqlock";
      h_descr = "Obs.Registry reset vs read_consistent: no torn snapshot";
      h_expect_violation = false;
      h_fn = seqlock;
      h_max_execs = 200_000;
      h_spin_limit = 8;
    };
    {
      h_name = "pool_chunkq";
      h_descr = "Engine.Pool.Chunkq bounded queue: exactly-once, in order";
      h_expect_violation = false;
      h_fn = pool_chunkq;
      h_max_execs = 100_000;
      h_spin_limit = 8;
    };
    {
      h_name = "pool_chunkq_abort";
      h_descr = "Engine.Pool.Chunkq: abort unblocks a parked producer";
      h_expect_violation = false;
      h_fn = pool_chunkq_abort;
      h_max_execs = 100_000;
      h_spin_limit = 8;
    };
    {
      h_name = "pool_cursor";
      h_descr =
        "Engine.Pool.Workq: orphaned chunk re-run, all complete exactly once";
      h_expect_violation = false;
      h_fn = pool_cursor;
      h_max_execs = 200_000;
      h_spin_limit = 8;
    };
    {
      h_name = "pool_cursor_fail";
      h_descr = "Engine.Pool.Workq: first failure wins and releases waiter";
      h_expect_violation = false;
      h_fn = pool_cursor_fail;
      h_max_execs = 200_000;
      h_spin_limit = 8;
    };
    {
      h_name = "workforce";
      h_descr = "Engine.Workforce: parked helpers, no lost indices";
      h_expect_violation = false;
      h_fn = workforce;
      h_max_execs = 400_000;
      h_spin_limit = 8;
    };
    {
      h_name = "workforce_error";
      h_descr = "Engine.Workforce: first iteration error wins and cancels";
      h_expect_violation = false;
      h_fn = workforce_error;
      h_max_execs = 400_000;
      h_spin_limit = 8;
    };
    {
      h_name = "batcher";
      h_descr = "Serve.Batcher: capacity bound, exact shed count, no drops";
      h_expect_violation = false;
      h_fn = batcher;
      h_max_execs = 400_000;
      h_spin_limit = 8;
    };
    {
      h_name = "batcher_stop";
      h_descr = "Serve.Batcher: submit racing shutdown drains or sheds";
      h_expect_violation = false;
      h_fn = batcher_stop;
      h_max_execs = 200_000;
      h_spin_limit = 8;
    };
    {
      h_name = "engine_registry";
      h_descr = "Engine.Registry: racing lookups share one compile";
      h_expect_violation = false;
      h_fn = engine_registry;
      h_max_execs = 100_000;
      h_spin_limit = 1_000_000;
    };
    {
      h_name = "keyring";
      h_descr = "Serve.Keyring: racing lookups share one keygen";
      h_expect_violation = false;
      h_fn = keyring;
      h_max_execs = 100_000;
      h_spin_limit = 8;
    };
    {
      h_name = "trace_ring";
      h_descr = "Obs.Trace.Ring: wrap-racing reader never misattributes";
      h_expect_violation = false;
      h_fn = trace_ring;
      h_max_execs = 100_000;
      h_spin_limit = 8;
    };
  ]

let mutants =
  [
    {
      h_name = "racy_counter";
      h_descr = "read-then-write increment (mutant: must be flagged)";
      h_expect_violation = true;
      h_fn = racy_counter;
      h_max_execs = 10_000;
      h_spin_limit = 8;
    };
    {
      h_name = "seqlock_nogen";
      h_descr = "seqlock without generation bump (mutant: must be flagged)";
      h_expect_violation = true;
      h_fn = seqlock_nogen;
      h_max_execs = 10_000;
      h_spin_limit = 8;
    };
    {
      h_name = "wait_no_predicate";
      h_descr = "Condition.wait without predicate (mutant: must be flagged)";
      h_expect_violation = true;
      h_fn = wait_no_predicate;
      h_max_execs = 10_000;
      h_spin_limit = 8;
    };
    {
      h_name = "trace_ring_mutant";
      h_descr = "head-first ring publish (mutant: must be flagged)";
      h_expect_violation = true;
      h_fn = trace_ring_mutant;
      h_max_execs = 10_000;
      h_spin_limit = 8;
    };
  ]

let all = harnesses @ mutants
let find name = List.find_opt (fun h -> h.h_name = name) all
