(* Runtime_events consumer: real per-domain GC pause spans folded into
   the registry/trace plumbing.  See rtev.mli for the design notes. *)

open Ctg_sync.Shim
module Obs = Ctg_obs
module RE = Runtime_events

(* ------------------------------------------------------------------ *)
(* Pure decoder                                                        *)
(* ------------------------------------------------------------------ *)

module Decode = struct
  type cls = Gc | Minor | Excluded

  type pause = {
    ring : int;
    start_ns : int;
    dur_ns : int;
    minor : bool;
    phase : string;
  }

  (* Per-ring decode state.  Runtime phases nest; only the depth-0 frame
     carries timing. *)
  type frame = {
    mutable depth : int;
    mutable t0 : int;
    mutable phase : string;
    mutable minor_seen : bool;
    mutable excluded : bool;
  }

  type t = { frames : (int, frame) Hashtbl.t }

  let create () = { frames = Hashtbl.create 8 }

  let classify (ph : RE.runtime_phase) =
    match ph with
    | RE.EV_MINOR | RE.EV_MINOR_LOCAL_ROOTS | RE.EV_MINOR_FINALIZED
    | RE.EV_MINOR_CLEAR | RE.EV_MINOR_FINALIZERS_OLDIFY
    | RE.EV_MINOR_GLOBAL_ROOTS | RE.EV_MINOR_LEAVE_BARRIER
    | RE.EV_MINOR_FINALIZERS_ADMIN | RE.EV_MINOR_REMEMBERED_SET
    | RE.EV_MINOR_REMEMBERED_SET_PROMOTE | RE.EV_MINOR_LOCAL_ROOTS_PROMOTE
    | RE.EV_EXPLICIT_GC_MINOR ->
      Minor
    (* An idle domain parks in a condition wait; Gc.set is a settings
       call.  Both are top-level runtime phases but not mutator pauses. *)
    | RE.EV_DOMAIN_CONDITION_WAIT | RE.EV_EXPLICIT_GC_SET -> Excluded
    | _ -> Gc

  let frame t ring =
    match Hashtbl.find_opt t.frames ring with
    | Some f -> f
    | None ->
      let f =
        { depth = 0; t0 = 0; phase = ""; minor_seen = false; excluded = false }
      in
      Hashtbl.add t.frames ring f;
      f

  let on_begin t ~ring ~ts_ns ~phase ~cls =
    let f = frame t ring in
    if f.depth = 0 then begin
      f.t0 <- ts_ns;
      f.phase <- phase;
      f.minor_seen <- cls = Minor;
      f.excluded <- cls = Excluded
    end
    else if cls = Minor then f.minor_seen <- true;
    f.depth <- f.depth + 1

  let on_end t ~ring ~ts_ns =
    let f = frame t ring in
    (* depth 0: an end without a begin — the begin predates the cursor or
       was discarded by on_lost.  Can't time it truthfully; drop. *)
    if f.depth = 0 then None
    else begin
      f.depth <- f.depth - 1;
      if f.depth > 0 || f.excluded then None
      else
        let dur_ns = ts_ns - f.t0 in
        if dur_ns <= 0 then None
        else
          Some { ring; start_ns = f.t0; dur_ns; minor = f.minor_seen; phase = f.phase }
    end

  let on_lost t ~ring =
    let f = frame t ring in
    f.depth <- 0;
    f.excluded <- false;
    f.minor_seen <- false
end

(* ------------------------------------------------------------------ *)
(* Consumer state                                                      *)
(* ------------------------------------------------------------------ *)

type domain_stats = {
  ring : int;
  pauses : int;
  minor_pauses : int;
  total_ns : int;
  max_ns : int;
}

type ring_acc = {
  mutable a_pauses : int;
  mutable a_minor : int;
  mutable a_total : int;
  mutable a_max : int;
}

type ring_handles = {
  h_pause : Obs.Registry.histo;
  h_minor : Obs.Registry.histo;
  h_count : Obs.Registry.counter;
}

type agg_handles = {
  g_pause : Obs.Registry.histo;
  g_minor : Obs.Registry.histo;
  g_lost : Obs.Registry.counter;
  g_breach : Obs.Registry.counter;
  g_max : Obs.Registry.gauge;
}

type state = {
  mu : Mutex.t;
  mutable ring_started : bool;  (* RE.start has succeeded in this process *)
  mutable suspended : bool;
  mutable active : bool;
  mutable cursor : RE.cursor option;
  mutable callbacks : RE.Callbacks.t option;
  mutable registry : Obs.Registry.t;
  mutable trace : bool;
  mutable offset_ns : int option;  (* Obs clock - runtime clock *)
  mutable decode : Decode.t;
  mutable per_ring : (int * ring_acc) list;
  mutable handles : (int * ring_handles) list;
  mutable agg : agg_handles option;
  mutable pending_trace : Decode.pause list;  (* pauses awaiting the offset *)
  mutable budget_ns : int option;
  mutable rid_source : (unit -> string option) option;
  mutable pause_observer : (Decode.pause -> unit) option;
  mutable custom_counts : (string * int ref) list;
  mutable poller : unit Domain.t option;
  poller_stop : bool Atomic.t;
  (* Readable without the lock (trace pause source, /metrics glue). *)
  c_total : int Atomic.t;
  c_count : int Atomic.t;
  c_minor : int Atomic.t;
  c_max : int Atomic.t;
  c_lost : int Atomic.t;
  c_breach : int Atomic.t;
}

let st =
  {
    mu = Mutex.create ();
    ring_started = false;
    suspended = false;
    active = false;
    cursor = None;
    callbacks = None;
    registry = Obs.Registry.default;
    trace = false;
    offset_ns = None;
    decode = Decode.create ();
    per_ring = [];
    handles = [];
    agg = None;
    pending_trace = [];
    budget_ns = None;
    rid_source = None;
    pause_observer = None;
    custom_counts = [];
    poller = None;
    poller_stop = Atomic.make false;
    c_total = Atomic.make 0;
    c_count = Atomic.make 0;
    c_minor = Atomic.make 0;
    c_max = Atomic.make 0;
    c_lost = Atomic.make 0;
    c_breach = Atomic.make 0;
  }

(* Custom-event tags.  [Ctg_clock_sync] carries an Obs.Clock timestamp to
   solve the monotonic-vs-epoch clock offset; [Ctg_span] mirrors trace
   spans for external tooling. *)
type RE.User.tag += Ctg_clock_sync | Ctg_span

let sync_event = lazy (RE.User.register "ctg.sync" Ctg_clock_sync RE.Type.int)

let span_events : (string, RE.Type.span RE.User.t) Hashtbl.t = Hashtbl.create 32
let span_events_mu = Mutex.create ()

let span_event name =
  Mutex.lock span_events_mu;
  let ev =
    match Hashtbl.find_opt span_events name with
    | Some ev -> ev
    | None ->
      let ev = RE.User.register ("ctg." ^ name) Ctg_span RE.Type.span in
      Hashtbl.add span_events name ev;
      ev
  in
  Mutex.unlock span_events_mu;
  ev

let ts_to_ns ts = Int64.to_int (RE.Timestamp.to_int64 ts)

(* ---------------- metric handles (lazily per ring) ----------------- *)

let agg_handles () =
  match st.agg with
  | Some h -> h
  | None ->
    let r = st.registry in
    let h =
      {
        g_pause = Obs.Registry.histo r "gc_pause_ns";
        g_minor = Obs.Registry.histo r "gc_minor_pause_ns";
        g_lost = Obs.Registry.counter r "rtev_lost_events_total";
        g_breach = Obs.Registry.counter r "gc_pause_budget_breaches_total";
        g_max = Obs.Registry.gauge r "gc_max_pause_ns";
      }
    in
    st.agg <- Some h;
    h

let ring_handles ring =
  match List.assoc_opt ring st.handles with
  | Some h -> h
  | None ->
    let r = st.registry in
    let labels = [ ("domain", string_of_int ring) ] in
    let h =
      {
        h_pause = Obs.Registry.histo r ~labels "gc_pause_ns";
        h_minor = Obs.Registry.histo r ~labels "gc_minor_pause_ns";
        h_count = Obs.Registry.counter r ~labels "gc_pauses_total";
      }
    in
    st.handles <- (ring, h) :: st.handles;
    h

let ring_acc ring =
  match List.assoc_opt ring st.per_ring with
  | Some a -> a
  | None ->
    let a = { a_pauses = 0; a_minor = 0; a_total = 0; a_max = 0 } in
    st.per_ring <- (ring, a) :: st.per_ring;
    a

(* ---------------- pause handling (under st.mu) --------------------- *)

let inject_pause (p : Decode.pause) offset =
  Obs.Trace.inject
    {
      Obs.Trace.name = "gc:" ^ p.phase;
      cat = "gc";
      ph = Obs.Trace.Complete;
      ts_ns = p.start_ns + offset;
      dur_ns = p.dur_ns;
      tid = 1000 + p.ring;
      id = -1;
      args =
        [
          ("ring", string_of_int p.ring);
          ("class", if p.minor then "minor" else "major");
        ];
    }

let handle_pause (p : Decode.pause) =
  Atomic.set st.c_total (Atomic.get st.c_total + p.dur_ns);
  Atomic.set st.c_count (Atomic.get st.c_count + 1);
  if p.minor then Atomic.set st.c_minor (Atomic.get st.c_minor + 1);
  if p.dur_ns > Atomic.get st.c_max then Atomic.set st.c_max p.dur_ns;
  let acc = ring_acc p.ring in
  acc.a_pauses <- acc.a_pauses + 1;
  if p.minor then acc.a_minor <- acc.a_minor + 1;
  acc.a_total <- acc.a_total + p.dur_ns;
  if p.dur_ns > acc.a_max then acc.a_max <- p.dur_ns;
  let agg = agg_handles () in
  let h = ring_handles p.ring in
  let rid =
    match st.rid_source with
    | None -> ""
    | Some f -> ( match f () with Some rid -> rid | None -> "")
  in
  Obs.Registry.observe_exemplar agg.g_pause p.dur_ns rid;
  Obs.Registry.observe h.h_pause p.dur_ns;
  Obs.Registry.incr h.h_count;
  if p.minor then begin
    Obs.Registry.observe agg.g_minor p.dur_ns;
    Obs.Registry.observe h.h_minor p.dur_ns
  end;
  Obs.Registry.set_gauge agg.g_max (float_of_int (Atomic.get st.c_max));
  (match st.budget_ns with
  | Some b when p.dur_ns > b ->
    Atomic.set st.c_breach (Atomic.get st.c_breach + 1);
    Obs.Registry.incr agg.g_breach
  | _ -> ());
  if st.trace then begin
    match st.offset_ns with
    | Some off -> inject_pause p off
    | None -> st.pending_trace <- p :: st.pending_trace
  end;
  match st.pause_observer with Some f -> f p | None -> ()

let bump_custom name =
  match List.assoc_opt name st.custom_counts with
  | Some r -> incr r
  | None -> st.custom_counts <- (name, ref 1) :: st.custom_counts

let make_callbacks () =
  let consumed = ref 0 in
  let cb =
    RE.Callbacks.create
      ~runtime_begin:(fun ring ts phase ->
        incr consumed;
        Decode.on_begin st.decode ~ring ~ts_ns:(ts_to_ns ts)
          ~phase:(RE.runtime_phase_name phase)
          ~cls:(Decode.classify phase))
      ~runtime_end:(fun ring ts _phase ->
        incr consumed;
        match Decode.on_end st.decode ~ring ~ts_ns:(ts_to_ns ts) with
        | Some p -> handle_pause p
        | None -> ())
      ~lost_events:(fun ring n ->
        Decode.on_lost st.decode ~ring;
        Atomic.set st.c_lost (Atomic.get st.c_lost + n);
        Obs.Registry.add (agg_handles ()).g_lost n)
      ()
  in
  let cb =
    (* Clock sync: payload is Obs.Clock.now_ns at write time; the event's
       own timestamp is the runtime clock — their difference is the
       offset trace injection needs. *)
    RE.Callbacks.add_user_event RE.Type.int
      (fun _ring ts user v ->
        incr consumed;
        match RE.User.tag user with
        | Ctg_clock_sync -> st.offset_ns <- Some (v - ts_to_ns ts)
        | _ -> ())
      cb
  in
  let cb =
    RE.Callbacks.add_user_event RE.Type.span
      (fun _ring _ts user _v ->
        incr consumed;
        match RE.User.tag user with
        | Ctg_span -> bump_custom (RE.User.name user)
        | _ -> ())
      cb
  in
  (cb, consumed)

(* ---------------- polling ------------------------------------------ *)

(* Requires st.mu. *)
let poll_locked () =
  match (st.cursor, st.callbacks) with
  | Some cursor, Some cb ->
    (try RE.User.write (Lazy.force sync_event) (Obs.Clock.now_ns ())
     with _ -> ());
    let n = try RE.read_poll cursor cb None with _ -> 0 in
    (match (st.offset_ns, st.pending_trace) with
    | Some off, (_ :: _ as pending) ->
      List.iter (fun p -> inject_pause p off) (List.rev pending);
      st.pending_trace <- []
    | _ -> ());
    n
  | _ -> 0

let poll () =
  if not st.active then 0
  else begin
    Mutex.lock st.mu;
    let n = poll_locked () in
    Mutex.unlock st.mu;
    n
  end

let pause_source_value () =
  if st.active && Mutex.try_lock st.mu then begin
    ignore (poll_locked ());
    Mutex.unlock st.mu
  end;
  Atomic.get st.c_total

let install_trace_pause_source () =
  Obs.Trace.set_pause_source (Some pause_source_value)

(* ---------------- lifecycle ---------------------------------------- *)

let ensure_ring_started () =
  if not st.ring_started then begin
    RE.start ();
    st.ring_started <- true
  end
  else if st.suspended then begin
    (try RE.resume () with _ -> ());
    st.suspended <- false
  end

let start ?registry ?(trace = false) () =
  Mutex.lock st.mu;
  let ok =
    try
      ensure_ring_started ();
      (match st.cursor with
      | Some _ -> ()
      | None -> st.cursor <- Some (RE.create_cursor None));
      (match registry with
      | Some r ->
        if r != st.registry then begin
          (* Rebinding registries (a fresh daemon in the same process)
             invalidates the cached metric handles. *)
          st.registry <- r;
          st.agg <- None;
          st.handles <- []
        end
      | None -> ());
      st.trace <- trace;
      (match st.callbacks with
      | Some _ -> ()
      | None ->
        let cb, _consumed = make_callbacks () in
        st.callbacks <- Some cb);
      ignore (agg_handles ());
      st.active <- true;
      ignore (poll_locked ());
      true
    with _ -> false
  in
  Mutex.unlock st.mu;
  ok

let active () = st.active

let start_poller ?(interval_s = 0.05) () =
  Mutex.lock st.mu;
  (match st.poller with
  | Some _ -> ()
  | None ->
    Atomic.set st.poller_stop false;
    st.poller <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get st.poller_stop) do
               ignore (poll ());
               Unix.sleepf interval_s
             done)));
  Mutex.unlock st.mu

let stop () =
  (* Join the poller before taking the lock for teardown: its poll loop
     needs st.mu. *)
  let poller =
    Mutex.lock st.mu;
    let p = st.poller in
    st.poller <- None;
    Mutex.unlock st.mu;
    p
  in
  (match poller with
  | Some d ->
    Atomic.set st.poller_stop true;
    Domain.join d
  | None -> ());
  Mutex.lock st.mu;
  ignore (poll_locked ());
  (match st.cursor with
  | Some c ->
    (try RE.free_cursor c with _ -> ());
    st.cursor <- None
  | None -> ());
  st.callbacks <- None;
  st.active <- false;
  if st.ring_started && not st.suspended then begin
    (try RE.pause () with _ -> ());
    st.suspended <- true
  end;
  Mutex.unlock st.mu

(* ---------------- accessors ---------------------------------------- *)

let pause_count () = Atomic.get st.c_count
let minor_pause_count () = Atomic.get st.c_minor
let total_pause_ns () = Atomic.get st.c_total
let max_pause_ns () = Atomic.get st.c_max
let lost_events () = Atomic.get st.c_lost
let budget_breaches () = Atomic.get st.c_breach

let domain_stats () =
  Mutex.lock st.mu;
  let rows =
    List.map
      (fun (ring, a) ->
        {
          ring;
          pauses = a.a_pauses;
          minor_pauses = a.a_minor;
          total_ns = a.a_total;
          max_ns = a.a_max;
        })
      st.per_ring
  in
  Mutex.unlock st.mu;
  List.sort (fun a b -> compare a.ring b.ring) rows

let reset_stats () =
  Mutex.lock st.mu;
  Atomic.set st.c_total 0;
  Atomic.set st.c_count 0;
  Atomic.set st.c_minor 0;
  Atomic.set st.c_max 0;
  Atomic.set st.c_lost 0;
  Atomic.set st.c_breach 0;
  st.per_ring <- [];
  Mutex.unlock st.mu

let set_rid_source src =
  Mutex.lock st.mu;
  st.rid_source <- src;
  Mutex.unlock st.mu

let set_pause_budget_ns b =
  Mutex.lock st.mu;
  st.budget_ns <- b;
  Mutex.unlock st.mu

let set_pause_observer obs =
  Mutex.lock st.mu;
  st.pause_observer <- obs;
  Mutex.unlock st.mu

(* ---------------- custom span mirroring ---------------------------- *)

let span_sink name is_begin =
  if st.ring_started then
    try
      RE.User.write (span_event name)
        (if is_begin then RE.Type.Begin else RE.Type.End)
    with _ -> ()

let enable_custom_spans () =
  Mutex.lock st.mu;
  (try ensure_ring_started () with _ -> ());
  Mutex.unlock st.mu;
  Obs.Trace.set_span_sink (Some span_sink)

let disable_custom_spans () = Obs.Trace.set_span_sink None

let custom_span_counts () =
  Mutex.lock st.mu;
  let counts = List.map (fun (n, r) -> (n, !r)) st.custom_counts in
  Mutex.unlock st.mu;
  List.sort compare counts

(* ---------------- overhead-bench toggles --------------------------- *)

let suspend_collection () =
  Mutex.lock st.mu;
  if st.ring_started && not st.suspended then begin
    (try RE.pause () with _ -> ());
    st.suspended <- true
  end;
  Mutex.unlock st.mu

let resume_collection () =
  Mutex.lock st.mu;
  if st.ring_started && st.suspended then begin
    (try RE.resume () with _ -> ());
    st.suspended <- false
  end;
  Mutex.unlock st.mu
