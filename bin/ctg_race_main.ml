(* ctg_race: DPOR model checking of the engine's concurrency protocols.

     ctg_race list                    # catalogue of bundled harnesses
     ctg_race check                   # CI gate: all harnesses + mutants
     ctg_race check --json            # machine-readable report
     ctg_race explore seqlock         # one harness, with statistics
     ctg_race explore seqlock --replay 0,1,1,0   # force a schedule
     ctg_race stats                   # exploration counts per harness

   Exit status 0 iff every non-mutant harness passes within budget and
   every mutant is flagged.  A violation prints its kind, the replay
   schedule (the seed: pass it to --replay to reproduce the identical
   interleaving) and the step-by-step trace. *)

open Cmdliner
module Model = Ctg_race.Model
module Harness = Ctg_race.Harness
module Jsonx = Ctg_obs.Jsonx

type result = {
  h : Harness.harness;
  outcome : Model.outcome;
  elapsed : float;
}

let run_harness (h : Harness.harness) =
  let t0 = Unix.gettimeofday () in
  let outcome =
    Model.check ~max_execs:h.h_max_execs ~spin_limit:h.h_spin_limit h.h_fn
  in
  { h; outcome; elapsed = Unix.gettimeofday () -. t0 }

(* A harness is green when it meets its expectation: plain harnesses
   must pass exhaustively, mutants must be flagged. *)
let green r =
  match (r.outcome, r.h.h_expect_violation) with
  | Model.Passed _, false -> true
  | Model.Flagged _, true -> true
  | _ -> false

let outcome_json (o : Model.outcome) =
  let stats_fields (s : Model.stats) =
    [
      ("executions", Jsonx.Num (float_of_int s.Model.execs));
      ("steps", Jsonx.Num (float_of_int s.Model.steps));
      ("max_depth", Jsonx.Num (float_of_int s.Model.max_depth));
    ]
  in
  match o with
  | Model.Passed s -> Jsonx.Obj (("status", Jsonx.Str "passed") :: stats_fields s)
  | Model.Budget_exceeded s ->
    Jsonx.Obj (("status", Jsonx.Str "budget_exceeded") :: stats_fields s)
  | Model.Flagged v ->
    Jsonx.Obj
      [
        ("status", Jsonx.Str "flagged");
        ("kind", Jsonx.Str (Model.vkind_to_string v.Model.v_kind));
        ("schedule", Jsonx.Str (Model.schedule_to_string v.Model.v_schedule));
        ("executions", Jsonx.Num (float_of_int v.Model.v_execs));
        ("trace", Jsonx.List (List.map (fun l -> Jsonx.Str l) v.Model.v_trace));
      ]

let result_json r =
  Jsonx.Obj
    [
      ("name", Jsonx.Str r.h.Harness.h_name);
      ("description", Jsonx.Str r.h.Harness.h_descr);
      ("mutant", Jsonx.Bool r.h.Harness.h_expect_violation);
      ("ok", Jsonx.Bool (green r));
      ("elapsed_s", Jsonx.Num r.elapsed);
      ("outcome", outcome_json r.outcome);
    ]

let print_result r =
  let status =
    match r.outcome with
    | Model.Passed s ->
      Printf.sprintf "passed   %7d interleavings" s.Model.execs
    | Model.Budget_exceeded s ->
      Printf.sprintf "BUDGET   %7d interleavings (limit hit)" s.Model.execs
    | Model.Flagged v ->
      Printf.sprintf "flagged  %s after %d interleavings"
        (Model.vkind_to_string v.Model.v_kind)
        v.Model.v_execs
  in
  Printf.printf "%-18s %s  %s  [%.2fs]\n" r.h.Harness.h_name
    (if green r then "ok " else "FAIL")
    status r.elapsed;
  match r.outcome with
  | Model.Flagged v when not r.h.Harness.h_expect_violation ->
    Printf.printf "  schedule (replay seed): %s\n"
      (Model.schedule_to_string v.Model.v_schedule);
    List.iter (fun l -> Printf.printf "    %s\n" l) v.Model.v_trace
  | _ -> ()

let json_arg =
  let doc = "Emit a JSON report instead of human output." in
  Arg.(value & flag & info [ "json" ] ~doc)

let check_cmd =
  let doc = "run every bundled harness and mutant (the CI gate)" in
  let run json =
    let results = List.map run_harness Harness.all in
    let all_ok = List.for_all green results in
    if json then
      print_string
        (Jsonx.pretty
           (Jsonx.Obj
              [
                ("tool", Jsonx.Str "ctg_race");
                ("ok", Jsonx.Bool all_ok);
                ("harnesses", Jsonx.List (List.map result_json results));
              ]))
    else begin
      List.iter print_result results;
      Printf.printf "%s\n"
        (if all_ok then
           "OK: all harnesses explored exhaustively, all mutants flagged"
         else "FAILED: see above")
    end;
    if all_ok then 0 else 1
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ json_arg)

let harness_arg =
  let doc = "Harness name (see `ctg_race list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"HARNESS" ~doc)

let replay_arg =
  let doc =
    "Comma-separated fiber schedule from a previous violation: replays \
     that exact interleaving and prints the trace."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"SCHEDULE" ~doc)

let explore_cmd =
  let doc = "explore (or replay) a single harness, with statistics" in
  let run name replay json =
    match Harness.find name with
    | None ->
      Printf.eprintf "ctg_race: unknown harness %S (try `ctg_race list`)\n"
        name;
      2
    | Some h -> (
      match replay with
      | Some sched ->
        let schedule = Model.schedule_of_string sched in
        let kind, trace = Model.replay h.Harness.h_fn schedule in
        List.iter (fun l -> Printf.printf "%s\n" l) trace;
        (match kind with
        | Some k ->
          Printf.printf "replay reproduced: %s\n" (Model.vkind_to_string k);
          0
        | None ->
          Printf.printf "replay completed without violation\n";
          0)
      | None ->
        let r = run_harness h in
        if json then print_string (Jsonx.pretty (result_json r))
        else print_result r;
        if green r then 0 else 1)
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ harness_arg $ replay_arg $ json_arg)

let stats_cmd =
  let doc = "exploration statistics per harness (interleavings, steps)" in
  let run json =
    let results = List.map run_harness Harness.all in
    if json then
      print_string
        (Jsonx.pretty (Jsonx.List (List.map result_json results)))
    else begin
      Printf.printf "%-18s %-7s %12s %10s %9s\n" "harness" "mutant"
        "interleavings" "steps" "depth";
      List.iter
        (fun r ->
          let s =
            match r.outcome with
            | Model.Passed s | Model.Budget_exceeded s -> s
            | Model.Flagged v ->
              {
                Model.execs = v.Model.v_execs;
                steps = 0;
                max_depth = List.length v.Model.v_trace;
              }
          in
          Printf.printf "%-18s %-7s %12d %10d %9d\n" r.h.Harness.h_name
            (if r.h.Harness.h_expect_violation then "yes" else "no")
            s.Model.execs s.Model.steps s.Model.max_depth)
        results
    end;
    0
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ json_arg)

let list_cmd =
  let doc = "list the bundled harnesses and mutants" in
  let run () =
    List.iter
      (fun (h : Harness.harness) ->
        Printf.printf "%-18s %s%s\n" h.Harness.h_name h.Harness.h_descr
          (if h.Harness.h_expect_violation then "  [mutant]" else ""))
      Harness.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let cmd =
  let doc =
    "model-check the engine's concurrency protocols (DPOR over the \
     Ctg_sync shim)"
  in
  Cmd.group (Cmd.info "ctg_race" ~version:"1.0" ~doc)
    [ check_cmd; explore_cmd; stats_cmd; list_cmd ]

let () = exit (Cmd.eval' cmd)
