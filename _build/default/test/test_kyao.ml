(* Knuth-Yao machinery: matrix/DDG consistency, Algorithm 1 against the
   explicit tree and against Eqn. 1's GAP function, leaf enumeration and
   Theorem 1. *)

module Matrix = Ctg_kyao.Matrix
module Cs = Ctg_kyao.Column_sampler
module Le = Ctg_kyao.Leaf_enum
module Ddg = Ctg_kyao.Ddg_tree
module Gap = Ctg_kyao.Gap
module Bs = Ctg_prng.Bitstream

let m_small = Matrix.create ~sigma:"2" ~precision:6 ~tail_cut:13
let m_mid = Matrix.create ~sigma:"2" ~precision:24 ~tail_cut:13
let m_wide = Matrix.create ~sigma:"6.15543" ~precision:20 ~tail_cut:13

let random_bits rng n =
  Array.init n (fun _ -> Ctg_prng.Splitmix64.next_int rng 2 = 1)

let unit_tests =
  [
    Alcotest.test_case "DDG leaf counts equal column weights" `Quick (fun () ->
        List.iter
          (fun m ->
            Alcotest.(check (array int))
              "h_i" m.Matrix.col_weight
              (Ddg.leaf_count_per_level m))
          [ m_small; m_mid; m_wide ]);
    Alcotest.test_case "row_for scans from the bottom" `Quick (fun () ->
        (* Column 1 of the sigma=2, n=6 matrix has a single set row: P1. *)
        Alcotest.(check int) "col1 rank0" 1 (Matrix.row_for m_small ~col:1 ~rank:0);
        (* Column 2 has rows 0,2,3 set; rank 0 is the bottom-most (3). *)
        Alcotest.(check int) "col2 rank0" 3 (Matrix.row_for m_small ~col:2 ~rank:0);
        Alcotest.(check int) "col2 rank2" 0 (Matrix.row_for m_small ~col:2 ~rank:2));
    Alcotest.test_case "walk agrees with explicit tree walk" `Quick (fun () ->
        let tree = Ddg.build m_mid in
        let rng = Ctg_prng.Splitmix64.create 5L in
        for _ = 1 to 2000 do
          let bits = random_bits rng 24 in
          let via_alg1 = Cs.walk_bits m_mid bits in
          let via_tree = Ddg.walk_tree tree (Bs.of_bits bits) in
          match (via_alg1, via_tree) with
          | Cs.Hit { value; _ }, Some v ->
            Alcotest.(check int) "same sample" value v
          | Cs.Exhausted, None -> ()
          | Cs.Hit _, None | Cs.Exhausted, Some _ ->
            Alcotest.fail "tree and Alg.1 disagree on termination"
        done);
    Alcotest.test_case "walk agrees with GAP (Eqn. 1)" `Quick (fun () ->
        let rng = Ctg_prng.Splitmix64.create 17L in
        for _ = 1 to 300 do
          let bits = random_bits rng 24 in
          let hit_level =
            match Cs.walk_bits m_mid bits with
            | Cs.Hit { level; _ } -> Some level
            | Cs.Exhausted -> None
          in
          Alcotest.(check (option int))
            "first negative GAP = hit level" hit_level
            (Gap.first_negative m_mid bits)
        done);
    Alcotest.test_case "Theorem 1 holds across sigmas" `Quick (fun () ->
        List.iter
          (fun m ->
            let e = Le.enumerate m in
            Alcotest.(check bool) "no all-ones leaf" true (Le.check_theorem1 e))
          [ m_small; m_mid; m_wide ]);
    Alcotest.test_case "leaf count equals sum of column weights" `Quick
      (fun () ->
        List.iter
          (fun m ->
            let e = Le.enumerate m in
            Alcotest.(check int) "sum h_i" (Matrix.leaves_total m)
              (Array.length e.Le.leaves))
          [ m_small; m_mid; m_wide ]);
    Alcotest.test_case "every enumerated leaf replays to its value" `Quick
      (fun () ->
        let e = Le.enumerate m_mid in
        Array.iter
          (fun (leaf : Le.leaf) ->
            match Cs.walk_bits m_mid leaf.Le.bits with
            | Cs.Hit { value; level } ->
              Alcotest.(check int) "value" leaf.Le.value value;
              Alcotest.(check int) "level" leaf.Le.level level
            | Cs.Exhausted -> Alcotest.fail "leaf string does not terminate")
          e.Le.leaves);
    Alcotest.test_case "leaf structure x^i (0/1)^j 0 1^k" `Quick (fun () ->
        let e = Le.enumerate m_mid in
        Array.iter
          (fun (leaf : Le.leaf) ->
            (* First [ones] bits are 1, then a 0. *)
            for i = 0 to leaf.Le.ones - 1 do
              Alcotest.(check bool) "prefix ones" true leaf.Le.bits.(i)
            done;
            Alcotest.(check bool) "separator zero" false leaf.Le.bits.(leaf.Le.ones);
            Alcotest.(check int) "payload length" leaf.Le.payload
              (leaf.Le.level - leaf.Le.ones))
          e.Le.leaves);
    Alcotest.test_case "delta is small (paper Sec. 5)" `Quick (fun () ->
        let check sigma expected_max =
          let m = Matrix.create ~sigma ~precision:64 ~tail_cut:13 in
          let e = Le.enumerate m in
          Alcotest.(check bool)
            (Printf.sprintf "delta(%s)=%d <= %d" sigma e.Le.delta expected_max)
            true
            (e.Le.delta <= expected_max)
        in
        check "1" 5;
        check "2" 6;
        check "6.15543" 8);
    Alcotest.test_case "unresolved count equals scaled residual" `Quick
      (fun () ->
        let gt = Ctg_fixed.Gaussian_table.create ~sigma:"2" ~precision:12 ~tail_cut:13 in
        let m = Matrix.of_table gt in
        let e = Le.enumerate m in
        Alcotest.(check int) "residual"
          (Ctg_bigint.Nat.to_int (Ctg_fixed.Gaussian_table.residual gt))
          e.Le.unresolved);
    Alcotest.test_case "sampling distribution matches probabilities" `Quick
      (fun () ->
        let bs = Bs.of_splitmix (Ctg_prng.Splitmix64.create 23L) in
        let trials = 60_000 in
        let counts = Array.make (m_mid.Matrix.support + 1) 0 in
        for _ = 1 to trials do
          let v = Cs.sample_magnitude m_mid bs in
          counts.(v) <- counts.(v) + 1
        done;
        let expected = Ctg_stats.Distance.exact_probabilities m_mid in
        let r =
          Ctg_stats.Chi_square.test ~observed:counts
            ~expected:(Array.map (fun p -> p *. float_of_int trials) expected)
        in
        Alcotest.(check bool)
          (Printf.sprintf "chi2 p=%.4f" r.Ctg_stats.Chi_square.p_value)
          true
          (r.Ctg_stats.Chi_square.p_value > 0.001));
    Alcotest.test_case "signed sampling is symmetric" `Quick (fun () ->
        let bs = Bs.of_splitmix (Ctg_prng.Splitmix64.create 29L) in
        let pos = ref 0 and neg = ref 0 in
        for _ = 1 to 40_000 do
          let v = Cs.sample_signed m_mid bs in
          if v > 0 then incr pos else if v < 0 then incr neg
        done;
        let ratio = float_of_int !pos /. float_of_int !neg in
        Alcotest.(check bool) "balanced" true (ratio > 0.95 && ratio < 1.05));
  ]

let prop_tests =
  let open QCheck in
  List.map QCheck_alcotest.to_alcotest
    [
      Test.make ~name:"walk_bits is a function of its bits only" ~count:100
        small_nat
        (fun seed ->
          let rng = Ctg_prng.Splitmix64.create (Int64.of_int seed) in
          let bits = random_bits rng 24 in
          Cs.walk_bits m_mid bits = Cs.walk_bits m_mid (Array.copy bits));
      Test.make ~name:"hit value always within support" ~count:300 small_nat
        (fun seed ->
          let rng = Ctg_prng.Splitmix64.create (Int64.of_int (seed * 31 + 1)) in
          let bits = random_bits rng 24 in
          match Cs.walk_bits m_mid bits with
          | Cs.Hit { value; level } ->
            value >= 0 && value <= m_mid.Matrix.support && level < 24
          | Cs.Exhausted -> true);
      Test.make ~name:"GAP is negative exactly at hits" ~count:100 small_nat
        (fun seed ->
          let rng = Ctg_prng.Splitmix64.create (Int64.of_int (seed + 977)) in
          let bits = random_bits rng 20 in
          let m = m_wide in
          match Cs.walk_bits m bits with
          | Cs.Hit { level; _ } ->
            Ctg_bigint.Zint.sign (Gap.gap m bits level) < 0
            && (level = 0
               || Ctg_bigint.Zint.sign (Gap.gap m bits (level - 1)) >= 0)
          | Cs.Exhausted ->
            Ctg_bigint.Zint.sign (Gap.gap m bits (Array.length bits - 1)) >= 0);
    ]

let () =
  Alcotest.run "kyao" [ ("unit", unit_tests); ("properties", prop_tests) ]
