(* The fault-injection harness and the defenses it exercises: plan
   reproducibility and windowing, gate-table corruption with digest
   detection, health trips on faulted lanes, pool supervision (retry,
   respawn, stall) with bit-exact recovery, CT degradation, and the
   verify-after-sign barrier.  Everything runs at precision 16 so the
   compiles stay fast; the claims are exact, not statistical. *)

module E = Ctg_engine
module Bs = Ctg_prng.Bitstream
module Health = Ctg_prng.Health
module Plan = Ctg_fault.Plan
module F = Ctg_falcon

let sampler_16 =
  lazy (Ctgauss.Sampler.create ~sigma:"2" ~precision:16 ~tail_cut:13 ())

let inner () = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "fault-tests")
let take_bytes rng n = Array.init n (fun _ -> Bs.next_byte rng)

let plan_tests =
  [
    Alcotest.test_case "wrap replays identically for the same seed" `Quick
      (fun () ->
        let mk () =
          let plan =
            Plan.rng_plan ~seed:7L (Plan.Bias { p_one = 0.9 })
          in
          Plan.wrap plan ~lane:0 (inner ())
        in
        Alcotest.(check (array int))
          "identical" (take_bytes (mk ()) 256) (take_bytes (mk ()) 256));
    Alcotest.test_case "stuck-bits applies the masks inside the window" `Quick
      (fun () ->
        let plan =
          Plan.rng_plan ~window:(Plan.from_byte 4) ~seed:1L
            (Plan.Stuck_bits { and_mask = 0xf0; or_mask = 0x0f })
        in
        let clean = take_bytes (inner ()) 32 in
        let faulty = take_bytes (Plan.wrap plan ~lane:0 (inner ())) 32 in
        Array.iteri
          (fun i b ->
            let want =
              if i < 4 then clean.(i) else clean.(i) land 0xf0 lor 0x0f
            in
            Alcotest.(check int) (Printf.sprintf "byte %d" i) want b)
          faulty);
    Alcotest.test_case "repeat replays the first period forever" `Quick
      (fun () ->
        let plan = Plan.rng_plan ~seed:2L (Plan.Repeat { period = 3 }) in
        let faulty = take_bytes (Plan.wrap plan ~lane:0 (inner ())) 30 in
        Array.iteri
          (fun i b ->
            Alcotest.(check int)
              (Printf.sprintf "byte %d" i)
              faulty.(i mod 3) b)
          faulty);
    Alcotest.test_case "untargeted lanes are untouched" `Quick (fun () ->
        let plan = Plan.rng_plan ~lanes:[ 2 ] ~seed:3L Plan.Exhausted in
        Alcotest.(check bool) "lane 2 targeted" true (Plan.applies plan ~lane:2);
        Alcotest.(check bool) "lane 1 not" false (Plan.applies plan ~lane:1);
        Alcotest.(check (array int))
          "lane 1 bytes clean" (take_bytes (inner ()) 64)
          (take_bytes (Plan.wrap plan ~lane:1 (inner ())) 64));
    Alcotest.test_case "corrupt/restore round-trips the digest" `Quick
      (fun () ->
        let sampler = Ctgauss.Sampler.clone (Lazy.force sampler_16) in
        let program = Ctgauss.Sampler.program sampler in
        let d0 = Ctgauss.Gate.digest program in
        let cs = Plan.corrupt_program ~seed:11L ~flips:2 program in
        Alcotest.(check int) "two flips" 2 (List.length cs);
        Alcotest.(check bool)
          "distinct sites" true
          (match cs with
          | [ a; b ] -> a.Plan.index <> b.Plan.index
          | _ -> false);
        Alcotest.(check bool)
          "still structurally valid" true
          (Ctgauss.Gate.validate program = Ok ());
        Alcotest.(check bool)
          "digest moved" true
          (Ctgauss.Gate.digest program <> d0);
        Alcotest.(check bool)
          "integrity flags it" false
          (Ctgauss.Sampler.integrity_ok sampler);
        Plan.restore_program program cs;
        Alcotest.(check bool)
          "digest restored" true
          (Ctgauss.Gate.digest program = d0);
        Alcotest.(check bool)
          "integrity clean again" true
          (Ctgauss.Sampler.integrity_ok sampler));
  ]

let selftest_tests =
  [
    Alcotest.test_case "clean sampler passes" `Quick (fun () ->
        Alcotest.(check bool)
          "ok" true
          (E.Selftest.run (Lazy.force sampler_16) = Ok ()));
    Alcotest.test_case "digest check fires before any KAT vector" `Quick
      (fun () ->
        let sampler = Ctgauss.Sampler.clone (Lazy.force sampler_16) in
        let program = Ctgauss.Sampler.program sampler in
        let cs = Plan.corrupt_program ~seed:21L ~flips:1 program in
        Fun.protect
          ~finally:(fun () -> Plan.restore_program program cs)
          (fun () ->
            match E.Selftest.run sampler with
            | Ok () -> Alcotest.fail "corruption not detected"
            | Error f ->
              Alcotest.(check int) "digest failure" (-1) f.E.Selftest.index));
  ]

(* Health tests observe the faulty byte flow because the lane factory
   attaches them to the wrapper, not the clean inner stream. *)
let health_integration_tests =
  [
    Alcotest.test_case "exhausted lane trips repetition-count" `Quick
      (fun () ->
        let plan = Plan.rng_plan ~lanes:[ 0 ] ~seed:5L Plan.Exhausted in
        let rng = Plan.lane_factory plan ~seed:"health-int" 0 in
        let tripped =
          try
            for _ = 1 to 100 do
              ignore (Bs.next_word rng)
            done;
            None
          with Health.Entropy_failure f -> Some f.Health.test
        in
        Alcotest.(check bool)
          "repetition-count tripped" true
          (tripped = Some Health.Repetition));
    Alcotest.test_case "clean lane under the same factory survives" `Quick
      (fun () ->
        let plan = Plan.rng_plan ~lanes:[ 0 ] ~seed:5L Plan.Exhausted in
        let rng = Plan.lane_factory plan ~seed:"health-int" 1 in
        for _ = 1 to 2000 do
          ignore (Bs.next_word rng)
        done);
  ]

let with_pool ?(domains = 2) ?(seed = "fault-pool") ?(chunk_batches = 2)
    ?stall_timeout ?max_chunk_retries ?hook f =
  let pool =
    E.Pool.create ~domains ~chunk_batches ?stall_timeout ?max_chunk_retries
      ~seed (Lazy.force sampler_16)
  in
  E.Pool.set_fault_hook pool hook;
  Fun.protect ~finally:(fun () -> E.Pool.shutdown pool) (fun () -> f pool)

let reference_output n = with_pool (fun p -> E.Pool.batch_parallel p ~n)

let pool_tests =
  [
    Alcotest.test_case "killed worker: chunk re-run bit-exact, respawned"
      `Quick (fun () ->
        let n = 63 * 2 * 4 in
        let reference = reference_output n in
        let hook = Plan.pool_hook [ Plan.Kill { chunk = 1 } ] in
        with_pool ~hook (fun p ->
            Alcotest.(check (array int))
              "output unchanged" reference
              (E.Pool.batch_parallel p ~n);
            let s = E.Metrics.snapshot (E.Pool.metrics p) in
            Alcotest.(check int) "one respawn" 1 s.E.Metrics.worker_respawns));
    Alcotest.test_case "transient failure: retried in place, bit-exact"
      `Quick (fun () ->
        let n = 63 * 2 * 4 in
        let reference = reference_output n in
        let hook =
          Plan.pool_hook [ Plan.Fail { chunk = 2; error = Failure "glitch" } ]
        in
        with_pool ~hook (fun p ->
            Alcotest.(check (array int))
              "output unchanged" reference
              (E.Pool.batch_parallel p ~n);
            let s = E.Metrics.snapshot (E.Pool.metrics p) in
            Alcotest.(check bool)
              "retry counted" true
              (s.E.Metrics.chunk_retries >= 1)));
    Alcotest.test_case "persistent failure surfaces as Chunk_failed" `Quick
      (fun () ->
        (* Satellite check from the pool side: a chunk that always fails
           must raise on the caller, not leave it blocked on the queue. *)
        let hook ~chunk ~lane:_ ~attempt:_ =
          if chunk = 0 then failwith "permanent"
        in
        with_pool ~max_chunk_retries:1 ~hook (fun p ->
            match E.Pool.batch_parallel p ~n:(63 * 2 * 4) with
            | _ -> Alcotest.fail "expected Chunk_failed"
            | exception E.Pool.Chunk_failed { chunk; attempts; error } ->
              Alcotest.(check int) "chunk" 0 chunk;
              Alcotest.(check int) "attempts = retries + 1" 2 attempts;
              Alcotest.(check bool)
                "underlying error kept" true
                (error = Failure "permanent")));
    Alcotest.test_case "hung worker: stall watchdog raises Stalled" `Quick
      (fun () ->
        let hook =
          Plan.pool_hook [ Plan.Hang { chunk = 0; seconds = 1.2 } ]
        in
        with_pool ~domains:1 ~stall_timeout:0.25 ~hook (fun p ->
            match E.Pool.batch_parallel p ~n:(63 * 2 * 2) with
            | _ -> Alcotest.fail "expected Stalled"
            | exception E.Pool.Stalled _ -> ()));
    Alcotest.test_case "pool survives a fault and serves the next job"
      `Quick (fun () ->
        let n = 63 * 2 * 2 in
        let hook =
          Plan.pool_hook [ Plan.Fail { chunk = 0; error = Failure "once" } ]
        in
        with_pool ~hook (fun p ->
            ignore (E.Pool.batch_parallel p ~n);
            (* Second job on the same pool: supervision must leave the
               workers healthy. *)
            Alcotest.(check int)
              "second job full length" n
              (Array.length (E.Pool.batch_parallel p ~n))));
  ]

let degrade_tests =
  [
    Alcotest.test_case "corrupted sampler degrades to the CT CDT" `Quick
      (fun () ->
        (* Private compile: the degraded pool keeps the broken program
           alive, so it must not share the lazy master. *)
        let sampler =
          Ctgauss.Sampler.create ~sigma:"2" ~precision:16 ~tail_cut:13 ()
        in
        let _ =
          Plan.corrupt_program ~seed:31L ~flips:3
            (Ctgauss.Sampler.program sampler)
        in
        let pool =
          E.Pool.create ~domains:2 ~chunk_batches:2 ~seed:"degrade" sampler
        in
        Fun.protect
          ~finally:(fun () -> E.Pool.shutdown pool)
          (fun () ->
            Alcotest.(check bool) "degraded" true (E.Pool.degraded pool);
            let n = 63 * 2 * 4 in
            let out = E.Pool.batch_parallel pool ~n in
            let support =
              (Ctgauss.Sampler.matrix sampler).Ctg_kyao.Matrix.support
            in
            Alcotest.(check bool)
              "all samples in support" true
              (Array.for_all (fun x -> abs x <= support) out);
            let mon = E.Pool.ctmon pool in
            Alcotest.(check int)
              "no CT violations" 0
              (Ctg_obs.Ctmon.violations mon);
            (* Degraded mode draws scalar CT-CDT samples, so every sample
               is one declared-fallback "batch". *)
            Alcotest.(check int)
              "every draw declared fallback" n
              (Ctg_obs.Ctmon.fallback_batches mon);
            let s = E.Metrics.snapshot (E.Pool.metrics pool) in
            Alcotest.(check bool) "gauge raised" true s.E.Metrics.degraded));
    Alcotest.test_case "healthy sampler does not degrade" `Quick (fun () ->
        with_pool (fun p ->
            Alcotest.(check bool) "not degraded" false (E.Pool.degraded p)));
  ]

let registry_tests =
  [
    Alcotest.test_case "revalidate evicts a corrupted master" `Quick
      (fun () ->
        let r = E.Registry.create () in
        let get () =
          E.Registry.lookup r ~sigma:"2" ~precision:16 ~tail_cut:13 ()
        in
        let master = get () in
        let _ =
          Plan.corrupt_program ~seed:41L ~flips:1
            (Ctgauss.Sampler.program master)
        in
        (match E.Registry.revalidate r with
        | [ (_, f) ] ->
          Alcotest.(check int) "digest caught it" (-1) f.E.Selftest.index
        | l ->
          Alcotest.fail
            (Printf.sprintf "expected one eviction, got %d" (List.length l)));
        let fresh = get () in
        Alcotest.(check bool) "recompiled" true (fresh != master);
        Alcotest.(check bool) "fresh one passes" true
          (E.Selftest.run fresh = Ok ());
        Alcotest.(check int) "exactly two compiles" 2 (E.Registry.compiles r));
    Alcotest.test_case "post-eviction lookups single-flight the recompile"
      `Quick (fun () ->
        let r = E.Registry.create () in
        let get () =
          E.Registry.lookup r ~sigma:"2" ~precision:16 ~tail_cut:13 ()
        in
        let master = get () in
        let _ =
          Plan.corrupt_program ~seed:43L ~flips:1
            (Ctgauss.Sampler.program master)
        in
        ignore (E.Registry.revalidate r);
        let results = Array.make 4 None in
        let doms =
          List.init 4 (fun i ->
              Domain.spawn (fun () -> results.(i) <- Some (get ())))
        in
        List.iter Domain.join doms;
        let fresh =
          match results.(0) with Some s -> s | None -> Alcotest.fail "missing"
        in
        Array.iter
          (function
            | Some s ->
              Alcotest.(check bool) "same new master" true (s == fresh)
            | None -> Alcotest.fail "missing result")
          results;
        Alcotest.(check bool) "not the corrupted one" true (fresh != master);
        Alcotest.(check int)
          "recompiled exactly once" 2 (E.Registry.compiles r));
  ]

let sign_tests =
  [
    Alcotest.test_case "verify-after-sign rejects a faulted signature"
      `Quick (fun () ->
        let params = F.Params.custom ~n:16 in
        let kp =
          F.Keygen.generate params
            (Bs.of_chacha (Ctg_prng.Chacha20.of_seed "fault-sign-key"))
        in
        let msg = Bytes.of_string "fault sign test" in
        let bound = F.Sign.norm_bound_sq params in
        let verify (s : F.Sign.signature) =
          F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound ~msg
            ~salt:s.F.Sign.salt ~s2:s.F.Sign.s2
        in
        let sign ~check =
          let rng = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "fault-sign") in
          let base = F.Base_sampler.ideal () in
          F.Sign.sign ~fault_hook:(Plan.sign_hook ~seed:51L ~bits:2) ~check kp
            base rng ~msg
        in
        (* The fault must actually matter: unchecked, the corrupted
           signature escapes and fails public verification. *)
        Alcotest.(check bool)
          "unchecked faulted signature is invalid" false
          (verify (sign ~check:false));
        (* Checked, the barrier rejects it and re-signs clean. *)
        let s = sign ~check:true in
        Alcotest.(check bool) "checked signature verifies" true (verify s));
  ]

(* Value faults at the Falcon sigma (215): each bias primitive must move
   the moment it claims to move, in the right direction and by the
   predicted amount.  Paired-stream design: the transform is applied to
   the same clean draws, so the shift estimators are exact differences
   with tiny standard errors and the bands below are many sigmas wide. *)
let value_fault_tests =
  let clean_draws n =
    let matrix = Ctg_kyao.Matrix.create ~sigma:"215" ~precision:16 ~tail_cut:13 in
    let inst =
      Ctg_samplers.Cdt_samplers.linear_ct (Ctg_samplers.Cdt_table.of_matrix matrix)
    in
    let rng = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "value-fault-215") in
    ( matrix,
      Array.init n (fun _ -> Ctg_samplers.Sampler_sig.sample_signed inst rng) )
  in
  let apply fault ~seed xs =
    let f = Plan.value_transform (Plan.value_plan ~seed fault) in
    Array.map f xs
  in
  let mean xs =
    Array.fold_left (fun a x -> a +. float_of_int x) 0.0 xs
    /. float_of_int (Array.length xs)
  in
  let variance xs =
    let m = mean xs in
    Array.fold_left (fun a x -> a +. ((float_of_int x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (Array.length xs)
  in
  let n = 20_000 in
  [
    Alcotest.test_case "center shift moves the mean by delta" `Quick (fun () ->
        let delta = 0.05 in
        let _, clean = clean_draws n in
        let faulted = apply (Plan.Center_shift { delta }) ~seed:21L clean in
        let shift = mean faulted -. mean clean in
        (* Paired estimator: the shift is a Bernoulli(delta) mean with
           SE ~ 0.0015 at this n, so [delta +- 0.02] is > 10 SE wide. *)
        if shift < delta -. 0.02 || shift > delta +. 0.02 then
          Alcotest.failf "mean shift %.4f outside [%.3f, %.3f]" shift
            (delta -. 0.02) (delta +. 0.02));
    Alcotest.test_case "variance deflation shrinks the variance as predicted"
      `Quick (fun () ->
        let p = 0.15 in
        let _, clean = clean_draws n in
        let faulted = apply (Plan.Variance_deflate { p }) ~seed:22L clean in
        let deficit = variance clean -. variance faulted in
        (* Each deflated draw loses 2|x|-1 from the sum of squares, so
           the expected per-sample deficit is p * (2 E|x| - 1). *)
        let mean_abs =
          Array.fold_left (fun a x -> a +. float_of_int (abs x)) 0.0 clean
          /. float_of_int n
        in
        let predicted = p *. ((2.0 *. mean_abs) -. 1.0) in
        Alcotest.(check bool) "variance strictly decreases" true (deficit > 0.0);
        if deficit < 0.6 *. predicted || deficit > 1.4 *. predicted then
          Alcotest.failf "variance deficit %.1f outside [0.6, 1.4] x %.1f"
            deficit predicted);
    Alcotest.test_case "sticky replay sets lag-1 autocorrelation to p" `Quick
      (fun () ->
        let p = 0.25 in
        let _, clean = clean_draws n in
        let faulted = apply (Plan.Sticky { p }) ~seed:23L clean in
        let corr xs =
          let m = mean xs and v = variance xs in
          let acc = ref 0.0 in
          for i = 1 to Array.length xs - 1 do
            acc :=
              !acc
              +. ((float_of_int xs.(i) -. m) *. (float_of_int xs.(i - 1) -. m))
          done;
          !acc /. (float_of_int (Array.length xs - 1) *. v)
        in
        (* A replay chain has corr(y_i, y_{i-1}) = p exactly; SE ~ 0.007
           at this n.  The clean stream must sit near zero. *)
        let r_f = corr faulted and r_c = corr clean in
        Alcotest.(check bool) "clean stream uncorrelated" true (abs_float r_c < 0.05);
        if r_f < p -. 0.1 || r_f > p +. 0.1 then
          Alcotest.failf "lag-1 corr %.3f outside [%.2f, %.2f]" r_f (p -. 0.1)
            (p +. 0.1));
    Alcotest.test_case "outliers land beyond the support at rate p" `Quick
      (fun () ->
        let p = 0.002 in
        let matrix, clean = clean_draws n in
        let magnitude = matrix.Ctg_kyao.Matrix.support + 5 in
        let faulted = apply (Plan.Outlier { p; magnitude }) ~seed:24L clean in
        let beyond =
          Array.fold_left
            (fun a x ->
              if abs x > matrix.Ctg_kyao.Matrix.support then a + 1 else a)
            0 faulted
        in
        Array.iter
          (fun x ->
            if abs x > matrix.Ctg_kyao.Matrix.support && abs x <> magnitude
            then Alcotest.failf "stray out-of-support value %d" x)
          faulted;
        (* Binomial(n, p): mean 40, SD ~ 6.3; [15, 70] is ~4 SD wide. *)
        if beyond < 15 || beyond > 70 then
          Alcotest.failf "%d outliers, expected ~%.0f" beyond
            (float_of_int n *. p));
  ]

let () =
  Alcotest.run "fault"
    [
      ("plan", plan_tests);
      ("selftest", selftest_tests);
      ("health-integration", health_integration_tests);
      ("pool-supervision", pool_tests);
      ("degradation", degrade_tests);
      ("registry", registry_tests);
      ("sign", sign_tests);
      ("value-faults", value_fault_tests);
    ]
