(** Cumulative distribution table shared by the three CDT samplers of the
    paper's Table 1.  Entry [v] is [Σ_{u<=v} p_u] as an n-bit big-endian
    byte string; a uniform n-bit [r] maps to the smallest [v] with
    [r < cdf v]. *)

type t

val of_matrix : Ctg_kyao.Matrix.t -> t
val size : t -> int
(** Number of entries (support + 1). *)

val entry_bytes : t -> int
(** ceil(precision / 8): width of every entry and of the random draw. *)

val cdf : t -> int -> bytes

val draw : t -> Ctg_prng.Bitstream.t -> bytes
(** A fresh uniform value of [entry_bytes] bytes. *)

val lt_early_exit : bytes -> bytes -> bool * int
(** Big-endian lexicographic [a < b] with byte-level early exit (data-
    dependent time); also returns the number of byte comparisons. *)

val lt_ct : bytes -> bytes -> bool * int
(** Same predicate, branch-free over all bytes: the comparison count is a
    constant equal to the width. *)
