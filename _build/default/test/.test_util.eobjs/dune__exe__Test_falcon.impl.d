test/test_falcon.ml: Alcotest Array Bytes Char Ctg_bigint Ctg_falcon Ctg_prng Ctg_samplers Ctg_stats Ctgauss Float List Printf
