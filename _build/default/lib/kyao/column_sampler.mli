(** Algorithm 1 of the paper: column-scanning Knuth-Yao sampling.  Builds
    the DDG tree on the fly; this is the {e reference} (non-constant-time)
    sampler every compiled sampler is validated against. *)

type outcome =
  | Hit of { value : int; level : int }
      (** Sample magnitude [value] found at DDG level [level] (i.e. after
          consuming [level + 1] random bits). *)
  | Exhausted
      (** The walk consumed all [precision] columns without hitting a leaf
          (Theorem 1's residual mass, probability < (support+1)·2^-n). *)

val walk : Matrix.t -> Ctg_prng.Bitstream.t -> outcome
(** One pass over the columns, consuming one bit per column until a hit. *)

val walk_bits : Matrix.t -> bool array -> outcome
(** Same walk driven by an explicit bit string ([b_0] at index 0); consumes
    at most [Array.length] bits and returns [Exhausted] if they run out or
    the matrix is exhausted. *)

val sample_magnitude : Matrix.t -> Ctg_prng.Bitstream.t -> int
(** Restart until a hit. *)

val sample_signed : Matrix.t -> Ctg_prng.Bitstream.t -> int
(** Magnitude with a uniform sign bit: the paper's folded representation
    (row 0 keeps full weight, other rows carry 2·D(v), so flipping a fair
    sign yields the symmetric distribution). *)
