type reg = int

type instr =
  | And of reg * reg
  | Or of reg * reg
  | Xor of reg * reg
  | Not of reg
  | Const of bool

type t = {
  num_vars : int;
  instrs : instr array;
  outputs : reg array;
  valid : reg option;
}

type builder = {
  num_vars : int;
  cse : bool;
  mutable rev_instrs : instr list;
  mutable next : reg;
  memo : (instr, reg) Hashtbl.t;
}

let builder ?(cse = true) ~num_vars () =
  {
    num_vars;
    cse;
    rev_instrs = [];
    next = num_vars;
    memo = Hashtbl.create 256;
  }

let var b i =
  assert (i >= 0 && i < b.num_vars);
  i

let emit b instr =
  match if b.cse then Hashtbl.find_opt b.memo instr else None with
  | Some r -> r
  | None ->
    let r = b.next in
    b.next <- r + 1;
    b.rev_instrs <- instr :: b.rev_instrs;
    if b.cse then Hashtbl.replace b.memo instr r;
    r

let const b v = emit b (Const v)

(* Constant registers are recognized structurally: with CSE on, [const]
   always returns the same register for the same Boolean, so we can track
   the two possible constants for simplification. *)
let is_const b r =
  match Hashtbl.find_opt b.memo (Const true) with
  | Some r' when r' = r -> Some true
  | _ -> (
    match Hashtbl.find_opt b.memo (Const false) with
    | Some r' when r' = r -> Some false
    | _ -> None)

let norm2 x y = if x <= y then (x, y) else (y, x)

let band b x y =
  match (is_const b x, is_const b y) with
  | Some true, _ -> y
  | _, Some true -> x
  | Some false, _ | _, Some false -> const b false
  | None, None ->
    if x = y then x
    else begin
      let x, y = norm2 x y in
      emit b (And (x, y))
    end

let bor b x y =
  match (is_const b x, is_const b y) with
  | Some false, _ -> y
  | _, Some false -> x
  | Some true, _ | _, Some true -> const b true
  | None, None ->
    if x = y then x
    else begin
      let x, y = norm2 x y in
      emit b (Or (x, y))
    end

let bxor b x y =
  match (is_const b x, is_const b y) with
  | Some false, _ -> y
  | _, Some false -> x
  | Some true, _ -> emit b (Not y)
  | _, Some true -> emit b (Not x)
  | None, None ->
    if x = y then const b false
    else begin
      let x, y = norm2 x y in
      emit b (Xor (x, y))
    end

let bnot b x =
  match is_const b x with
  | Some v -> const b (not v)
  | None -> emit b (Not x)

let mux b ~sel ~if_one ~if_zero =
  if if_one = if_zero then if_one
  else bor b (band b sel if_one) (band b (bnot b sel) if_zero)

let band_list b = function
  | [] -> const b true
  | r :: rest -> List.fold_left (band b) r rest

let bor_list b = function
  | [] -> const b false
  | r :: rest -> List.fold_left (bor b) r rest

let finish b ~outputs ~valid =
  {
    num_vars = b.num_vars;
    instrs = Array.of_list (List.rev b.rev_instrs);
    outputs;
    valid;
  }

let gate_count (t : t) =
  Array.fold_left
    (fun acc i -> match i with Const _ -> acc | And _ | Or _ | Xor _ | Not _ -> acc + 1)
    0 t.instrs

let depth (t : t) =
  let d = Array.make (t.num_vars + Array.length t.instrs) 0 in
  Array.iteri
    (fun i instr ->
      let r = t.num_vars + i in
      d.(r) <-
        (match instr with
        | Const _ -> 0
        | Not x -> d.(x) + 1
        | And (x, y) | Or (x, y) | Xor (x, y) -> max d.(x) d.(y) + 1))
    t.instrs;
  Array.fold_left max 0 d

let pp_stats fmt (t : t) =
  Format.fprintf fmt "vars=%d gates=%d depth=%d outputs=%d valid=%b"
    t.num_vars (gate_count t) (depth t) (Array.length t.outputs)
    (t.valid <> None)
