type result = { statistic : float; dof : int; p_value : float }

let gammln x =
  (* Lanczos approximation. *)
  let cof =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
       -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    cof;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

(* Series representation of P(a,x), valid for x < a+1. *)
let gser a x =
  let itmax = 200 and eps = 3e-9 in
  if x <= 0.0 then 0.0
  else begin
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    let rec go i =
      if i > itmax then !sum
      else begin
        ap := !ap +. 1.0;
        del := !del *. x /. !ap;
        sum := !sum +. !del;
        if abs_float !del < abs_float !sum *. eps then !sum else go (i + 1)
      end
    in
    let s = go 1 in
    s *. exp ((-.x) +. (a *. log x) -. gammln a)
  end

(* Continued fraction for Q(a,x), valid for x >= a+1. *)
let gcf a x =
  let itmax = 200 and eps = 3e-9 and fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let rec go i =
    if i > itmax then ()
    else begin
      let an = -.float_of_int i *. (float_of_int i -. a) in
      b := !b +. 2.0;
      d := (an *. !d) +. !b;
      if abs_float !d < fpmin then d := fpmin;
      c := !b +. (an /. !c);
      if abs_float !c < fpmin then c := fpmin;
      d := 1.0 /. !d;
      let del = !d *. !c in
      h := !h *. del;
      if abs_float (del -. 1.0) < eps then () else go (i + 1)
    end
  in
  go 1;
  exp ((-.x) +. (a *. log x) -. gammln a) *. !h

let gammq a x =
  if x < 0.0 || a <= 0.0 then invalid_arg "Chi_square.gammq";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gser a x
  else gcf a x

let test ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Chi_square.test: length mismatch";
  (* Merge low-expectation bins left to right into an accumulator. *)
  let bins = ref [] in
  let acc_o = ref 0 and acc_e = ref 0.0 in
  Array.iteri
    (fun i o ->
      acc_o := !acc_o + o;
      acc_e := !acc_e +. expected.(i);
      if !acc_e >= 5.0 then begin
        bins := (!acc_o, !acc_e) :: !bins;
        acc_o := 0;
        acc_e := 0.0
      end)
    observed;
  (* Whatever is left joins the last bin. *)
  let bins =
    match (!bins, (!acc_o, !acc_e)) with
    | [], leftover -> [ leftover ]
    | (o, e) :: rest, (lo, le) when le > 0.0 || lo > 0 ->
      (o + lo, e +. le) :: rest
    | l, _ -> l
  in
  let stat =
    List.fold_left
      (fun s (o, e) ->
        if e <= 0.0 then s
        else begin
          let d = float_of_int o -. e in
          s +. (d *. d /. e)
        end)
      0.0 bins
  in
  let dof = max 1 (List.length bins - 1) in
  { statistic = stat; dof; p_value = gammq (float_of_int dof /. 2.0) (stat /. 2.0) }
