(** Welch's t-test for unequal variances — the statistic behind dudect's
    leakage detection (Reparaz et al., DATE 2017, the paper's Sec. 5.2). *)

val t_statistic : Moments.t -> Moments.t -> float
(** [t = (μ₁ − μ₂) / sqrt(s₁²/n₁ + s₂²/n₂)]; 0 when degenerate. *)

val leaky : ?threshold:float -> Moments.t -> Moments.t -> bool
(** dudect's decision rule: [|t| > threshold] (default 4.5). *)
