lib/kyao/gap.mli: Ctg_bigint Matrix
