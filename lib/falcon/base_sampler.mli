(** The experiment knob of the paper's Table 1: the base integer Gaussian
    sampler that ffSampling calls at every tree leaf (2N times per
    signature attempt).

    [Paper]-mode plugs in any fixed-σ sampler behind the common
    {!Ctg_samplers.Sampler_sig.instance} interface, handling the leaf
    center by rounding (the σ' of the leaf is ignored, as when the DAC
    authors plugged their σ=2 sampler into the Falcon reference code; see
    DESIGN.md).  [Ideal]-mode is a floating-point reference with the exact
    per-leaf σ', used to quantify the quality cost of the substitution. *)

type t

val of_instance :
  ?observe:(int -> unit) ->
  ?bias:(int -> int) ->
  Ctg_samplers.Sampler_sig.instance ->
  t
(** [observe] (when given) sees every raw signed base sample {e before}
    the center shift is applied — in paper mode the base draws are i.i.d.
    from the fixed-σ sampler law regardless of the leaf centers, which is
    what lets a serving daemon feed its {!Ctg_assure.Drift} monitor from
    live signing traffic.  The callback runs on the signing domain and
    must not touch the bitstream.

    [bias] (fault injection only; e.g. {!Ctg_fault.Plan.value_transform})
    corrupts each signed base draw before use.  It models a {e biased
    sampler implementation}, so [observe] taps the faulted value — the
    monitors see what such a sampler would actually emit. *)

val ideal : unit -> t
(** Box-Muller rounding with the leaf's σ'; not constant time. *)

val name : t -> string

val sample_around :
  t -> Ctg_prng.Bitstream.t -> center:float -> sigma':float -> int

val calls : t -> int
(** Total leaf samples drawn through this instance. *)

val reset_calls : t -> unit

val error_variance : t -> float
(** Approximate variance of [z − center] per call: [σ_b² + 1/12] in paper
    mode (base σ_b = 2 plus rounding), [σ'²] nominal in ideal mode (the
    caller substitutes the actual σ').  Drives the signature norm bound. *)
