(** The multi-tenant Falcon signing daemon.

    Wires the whole stack into one long-running process: the shared
    {!Ctg_net.Http} server for the request path, a per-tenant {!Keyring},
    a {!Batcher} that coalesces concurrent sign requests into
    {!Ctg_falcon.Sign.sign_many} runs on a persistent
    {!Ctg_engine.Workforce}, and the PR-5 assurance monitors
    ({!Ctg_assure.Monitor}) fed from {e live} signing traffic — every
    base-sampler draw made while signing streams into the drift
    chi-square, and dudect leak probes interleave with real batches, so
    [/healthz] guards the actual serving path.

    HTTP surface:
    - [POST /v1/sign?tenant=T] (body = message bytes) → JSON with the
      hex-encoded signature, attempt count, lane, and coalesced batch
      size; [429] when the queue sheds, [503] while draining.
    - [GET /v1/pubkey?tenant=T] → hex public key + parameters.
    - [GET /v1/tenants] → tenants with ready keys.
    - [GET /v1/trace?request_id=R] (when [config.trace]) → the Chrome
      trace slice of one request: its request span, the batch span it
      coalesced into, and the per-domain sign span, linked by flow
      events ("ph":"s"/"t"/"f") whose id is the request's lane.  Without
      [request_id], the full buffered trace.  404 when tracing is off or
      the id has aged out of the ring.
    - [GET /metrics], [/healthz], [/drift.json] — from
      {!Ctg_assure.Monitor.routes} over the daemon's registry.

    Every [POST /v1/sign] response carries [X-Request-Id] (adopted from
    the client or generated — see {!Ctg_net.Http.request_id}); the
    latency histogram keeps the ids of its largest observations as
    exemplars, so a p99 outlier in [/metrics] links to its trace slice.

    Determinism: each request gets a {!Ctg_engine.Stream_fork} lane from
    an atomic counter at submit time, so its signature depends only on
    (seed, lane, key, message) — never on batch composition. *)

type config = {
  n : int;  (** Ring degree (power of two ≥ 4); 256/512/1024 = Falcon. *)
  sigma : string;
  precision : int;
  tail_cut : int;
  host : string;
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  http_workers : int;
  queue_capacity : int;  (** Bound on queued sign requests; excess sheds. *)
  max_batch : int;
  linger : float;  (** Coalescing window in seconds. *)
  sign_domains : int option;  (** Workforce size; default [Pool] default. *)
  check : bool;  (** Verify-after-sign inside the batch run. *)
  drift_window : int;
  leak_steps : int;  (** Dudect probes interleaved per batch cycle. *)
  seed : string;  (** Master signing seed (lanes fork from it). *)
  key_seed : string;  (** Keyring derivation prefix. *)
  trace : bool;
      (** Enable {!Ctg_obs.Trace} at startup and serve [/v1/trace].
          Default off — spans cost one ring write each when on. *)
  rtev : bool;
      (** Consume the Runtime_events ring ({!Ctg_rtev.Rtev}): real
          per-domain GC pause histograms in the registry, a
          [serve_gc_pause_ns] pause-charged split per batch (first
          request id as exemplar), a background poller, and — with
          [trace] — GC pause spans merged into [/v1/trace] slices.
          Default off. *)
  rtev_custom : bool;
      (** Additionally mirror every trace span begin/end as a
          Runtime_events {e custom} event ([ctg.<name>], type [span])
          for external tooling such as olly.  Implies nothing without
          [rtev]. *)
  pause_budget_ms : float;
      (** When > 0 (and [rtev]), any single GC pause longer than this
          budget registers a [gc_pause_budget] monitor failure — i.e.
          [/healthz] flips 503 — and bumps
          [gc_pause_budget_breaches_total]. *)
}

val default_config : config
(** [n = 64], σ = 2 at 16-bit precision, queue 64 / batch 16 / linger
    2 ms, port 8732 on 127.0.0.1 — demo-sized signing on serving-shaped
    plumbing. *)

val params_of_n : int -> Ctg_falcon.Params.t
(** 256/512/1024 map to the named Falcon levels, anything else to
    {!Ctg_falcon.Params.custom} — the mapping clients need to rebuild
    [params] from the ring degree advertised by [/v1/pubkey]. *)

type t

val create : ?listen:bool -> config -> t
(** Compile (or reuse) the sampler via {!Ctg_engine.Registry.global},
    start monitors, keyring, workforce, batcher — and, when [listen]
    (default), the HTTP server.  [~listen:false] runs the daemon
    in-process for tests: drive {!handler} directly. *)

val handler : t -> Ctg_net.Http.handler
(** The daemon's full HTTP handler (also what the live server runs). *)

val port : t -> int
(** The bound port — the actual one when [config.port = 0]. *)

val registry : t -> Ctg_obs.Registry.t
val monitor : t -> Ctg_assure.Monitor.t

val rtev_active : t -> bool
(** [config.rtev] and the Runtime_events ring actually started. *)

val trace_slice_events :
  rid:string -> Ctg_obs.Trace.event list -> Ctg_obs.Trace.event list option
(** The pure slice filter behind [/v1/trace?request_id=R]: the events
    carrying the request id or riding its lane's flow, plus every GC
    pause span (cat ["gc"], complete) overlapping the slice's wall-clock
    window.  [None] when the id matches nothing buffered. *)

val keyring : t -> Keyring.t
val config : t -> config

val healthy : t -> bool
(** Current {!Ctg_assure.Monitor.verdict}; [/healthz] status mirrors it. *)

val requests : t -> int
(** Requests accepted into the queue (not shed). *)

val batches : t -> int
val batcher_shed : t -> int

val stop : t -> unit
(** Graceful drain, idempotent: stop the HTTP listener (in-flight
    requests finish), drain the batch queue to completion, flush the
    partial drift window, park the workforce. *)
