(** Complex FFT for the negacyclic ring R[x]/(x^n + 1): evaluations at the
    n odd powers of the 2n-th root of unity.  Full-complex storage (no
    Hermitian packing) keeps split/merge — the recursions of ffSampling —
    simple; see DESIGN.md.

    Arrays [re]/[im] have length n; all operations are out-of-place. *)

type t = { re : float array; im : float array }

val of_real : float array -> t
(** Forward FFT of real coefficients. *)

val of_int_poly : int array -> t
val to_real : t -> float array
(** Inverse FFT, real parts (imaginary residue is FP noise). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Pointwise (ring product). *)

val div : t -> t -> t
val adjoint : t -> t
(** Pointwise conjugate = FFT of [f*(x^-1)]. *)

val scale : t -> float -> t

val split : t -> t * t
(** Falcon's splitfft: [f(x) = f0(x²) + x·f1(x²)], both halves in the
    FFT domain of size n/2.  Requires n ≥ 2. *)

val merge : t -> t -> t
(** Inverse of {!split}. *)

val norm_sq : t -> float
(** Σ|f_j|² over coefficients = (1/n)·Σ|FFT_j|² (Parseval). *)

(** {2 In-place variants for the signing hot path}

    ffSampling visits ~2N nodes per signature; these write into caller
    buffers so the walk allocates nothing. *)

val create : int -> t
(** Zeroed buffer of size n. *)

val blit : t -> t -> unit
(** [blit src dst]. *)

val split_into : t -> t * t -> unit
(** As {!split}, into two preallocated half-size buffers. *)

val merge_into : t * t -> t -> unit
(** As {!merge}, into a preallocated full-size buffer. *)
