lib/core/gate.ml: Array Format Hashtbl List
