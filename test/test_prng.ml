(* PRNG substrate: official test vectors for ChaCha20 (RFC 7539) and
   SHAKE128/256 (NIST FIPS 202 examples), plus Bitstream accounting. *)

module Hex = Ctg_util.Hex
module Chacha = Ctg_prng.Chacha20
module Keccak = Ctg_prng.Keccak
module Bs = Ctg_prng.Bitstream

let hex = Alcotest.(check string)

let chacha_tests =
  [
    Alcotest.test_case "RFC 7539 block function vector" `Quick (fun () ->
        let key =
          Hex.decode
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        in
        let nonce = Hex.decode "000000090000004a00000000" in
        let c = Chacha.create ~key ~nonce in
        hex "block 1"
          ("10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
         ^ "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
          (Hex.encode (Chacha.block c 1)));
    Alcotest.test_case "RFC 7539 keystream (encryption vector)" `Quick
      (fun () ->
        (* Section 2.4.2: key 00..1f, nonce 000000000000004a00000000,
           counter starts at 1. *)
        let key =
          Hex.decode
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        in
        let nonce = Hex.decode "000000000000004a00000000" in
        let c = Chacha.create ~key ~nonce in
        let ks1 = Chacha.block c 1 in
        (* First bytes of the counter-1 keystream from the RFC's
           intermediate values. *)
        hex "keystream head" "224f51f3401bd9e12fde276fb8631ded"
          (Hex.encode (Bytes.sub ks1 0 16)));
    Alcotest.test_case "bad key/nonce lengths rejected" `Quick (fun () ->
        Alcotest.check_raises "key" (Invalid_argument "Chacha20.create: key must be 32 bytes")
          (fun () -> ignore (Chacha.create ~key:(Bytes.create 31) ~nonce:(Bytes.create 12)));
        Alcotest.check_raises "nonce" (Invalid_argument "Chacha20.create: nonce must be 12 bytes")
          (fun () -> ignore (Chacha.create ~key:(Bytes.create 32) ~nonce:(Bytes.create 11))));
    Alcotest.test_case "next_bytes = concatenated blocks" `Quick (fun () ->
        let mk () = Chacha.of_seed "stream-test" in
        let c1 = mk () and c2 = mk () in
        let a = Chacha.next_bytes c1 100 in
        let b1 = Chacha.next_bytes c2 37 in
        let b2 = Chacha.next_bytes c2 63 in
        let b = Bytes.cat b1 b2 in
        hex "split agnostic" (Hex.encode a) (Hex.encode b));
    Alcotest.test_case "block accounting" `Quick (fun () ->
        let c = Chacha.of_seed "count" in
        ignore (Chacha.next_bytes c 129);
        Alcotest.(check int) "3 blocks for 129 bytes" 3 (Chacha.blocks_generated c));
  ]

let keccak_tests =
  [
    Alcotest.test_case "SHAKE128(empty) first 32 bytes" `Quick (fun () ->
        hex "digest"
          "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
          (Hex.encode (Keccak.shake128_digest (Bytes.create 0) 32)));
    Alcotest.test_case "SHAKE256(empty) first 32 bytes" `Quick (fun () ->
        hex "digest"
          "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
          (Hex.encode (Keccak.shake256_digest (Bytes.create 0) 32)));
    Alcotest.test_case "SHAKE128(\"abc\")" `Quick (fun () ->
        hex "digest" "5881092dd818bf5cf8a3ddb793fbcba74097d5c526a6d35f97b83351940f2cc8"
          (Hex.encode (Keccak.shake128_digest (Bytes.of_string "abc") 32)));
    Alcotest.test_case "incremental squeeze = one-shot" `Quick (fun () ->
        let msg = Bytes.of_string "incremental squeezing" in
        let x = Keccak.shake128 msg in
        let p1 = Keccak.squeeze x 7 in
        let p2 = Keccak.squeeze x 170 in
        let p3 = Keccak.squeeze x 23 in
        let parts = Bytes.concat Bytes.empty [ p1; p2; p3 ] in
        hex "equal" (Hex.encode (Keccak.shake128_digest msg 200)) (Hex.encode parts));
    Alcotest.test_case "long input crosses the rate boundary" `Quick (fun () ->
        (* 200 bytes > rate 168: exercises multi-block absorption. *)
        let msg = Bytes.make 200 '\x5a' in
        let d = Keccak.shake128_digest msg 16 in
        Alcotest.(check int) "16 bytes" 16 (Bytes.length d);
        (* Deterministic: same input, same output. *)
        hex "stable" (Hex.encode d) (Hex.encode (Keccak.shake128_digest msg 16)));
  ]

let bitstream_tests =
  [
    Alcotest.test_case "of_bits replay and End_of_file" `Quick (fun () ->
        let bs = Bs.of_bits [| true; false; true; true |] in
        Alcotest.(check int) "b0" 1 (Bs.next_bit bs);
        Alcotest.(check int) "b1" 0 (Bs.next_bit bs);
        Alcotest.(check int) "b2" 1 (Bs.next_bit bs);
        Alcotest.(check int) "b3" 1 (Bs.next_bit bs);
        Alcotest.check_raises "exhausted" End_of_file (fun () ->
            ignore (Bs.next_bit bs)));
    Alcotest.test_case "next_bits packs LSB-first" `Quick (fun () ->
        let bs = Bs.of_bits [| true; false; true; true; false |] in
        Alcotest.(check int) "11012 reversed" 0b1101 (Bs.next_bits bs 4));
    Alcotest.test_case "bits_consumed accounting" `Quick (fun () ->
        let bs = Bs.of_chacha (Chacha.of_seed "acct") in
        ignore (Bs.next_bits bs 13);
        ignore (Bs.next_bit bs);
        ignore (Bs.next_word bs);
        Alcotest.(check int) "13+1+64" 78 (Bs.bits_consumed bs));
    Alcotest.test_case "chacha bitstream deterministic per seed" `Quick
      (fun () ->
        let a = Bs.of_chacha (Chacha.of_seed "det") in
        let b = Bs.of_chacha (Chacha.of_seed "det") in
        for _ = 1 to 100 do
          Alcotest.(check int) "same" (Bs.next_bits a 11) (Bs.next_bits b 11)
        done);
    Alcotest.test_case "prng_work reports backend blocks" `Quick (fun () ->
        let bs = Bs.of_chacha (Chacha.of_seed "work") in
        ignore (Bs.next_bits bs 8);
        Alcotest.(check bool) "some work" true (Bs.prng_work bs >= 1));
  ]

(* Cost accounting is a measured quantity in the paper's Sec. 7 experiment,
   so it gets its own contract tests: identical draw sequences must report
   identical bits_consumed on every backend, and the bit-packing edge cases
   must hold exactly. *)
let accounting_tests =
  let backends () =
    [
      ("chacha", Bs.of_chacha (Chacha.of_seed "acct-x"));
      ("shake", Bs.of_shake (Keccak.shake128 (Bytes.of_string "acct-x")));
      ("splitmix", Bs.of_splitmix (Ctg_prng.Splitmix64.create 99L));
      ("fixed", Bs.of_bits (Array.make 4096 true));
    ]
  in
  [
    Alcotest.test_case "bits_consumed agrees across backends" `Quick (fun () ->
        (* One mixed draw sequence; the accounted total is backend-free
           even though byte-oriented backends round refills up. *)
        let draw bs =
          ignore (Bs.next_bit bs);
          ignore (Bs.next_bits bs 13);
          ignore (Bs.next_byte bs);
          ignore (Bs.next_bits bs 54);
          ignore (Bs.next_bits bs 0);
          Bs.next_bytes_into bs (Bytes.create 5);
          Bs.bits_consumed bs
        in
        let totals = List.map (fun (name, bs) -> (name, draw bs)) (backends ()) in
        let expected = 1 + 13 + 8 + 54 + 0 + 40 in
        List.iter
          (fun (name, total) -> Alcotest.(check int) name expected total)
          totals);
    Alcotest.test_case "next_word accounting per backend" `Quick (fun () ->
        (* Real backends draw a whole 64-bit pattern and discard one bit;
           the Fixed backend replays exactly 63 — both are documented, and
           both must be what bits_consumed reports. *)
        List.iter
          (fun (name, bs) ->
            ignore (Bs.next_word bs);
            let expected = if name = "fixed" then 63 else 64 in
            Alcotest.(check int) name expected (Bs.bits_consumed bs))
          (backends ()));
    Alcotest.test_case "next_bits k = 0 consumes nothing" `Quick (fun () ->
        List.iter
          (fun (name, bs) ->
            Alcotest.(check int) (name ^ " value") 0 (Bs.next_bits bs 0);
            Alcotest.(check int) (name ^ " consumed") 0 (Bs.bits_consumed bs))
          (backends ()));
    Alcotest.test_case "next_bits k = 54 boundary" `Quick (fun () ->
        (* All-ones fixed stream: the maximal legal draw is exact. *)
        let bs = Bs.of_bits (Array.make 54 true) in
        Alcotest.(check int) "full word" ((1 lsl 54) - 1) (Bs.next_bits bs 54);
        Alcotest.(check int) "consumed" 54 (Bs.bits_consumed bs));
    Alcotest.test_case "next_bits out-of-range k raises" `Quick (fun () ->
        List.iter
          (fun k ->
            List.iter
              (fun (name, bs) ->
                Alcotest.check_raises
                  (Printf.sprintf "%s k=%d" name k)
                  (Invalid_argument "Bitstream.next_bits")
                  (fun () -> ignore (Bs.next_bits bs k)))
              (backends ()))
          [ -1; 55; 63 ]);
    Alcotest.test_case "of_bits end-of-stream behaviour" `Quick (fun () ->
        (* A partial refill must not strand the position: after End_of_file
           the remaining bits are still gone (the draw was attempted). *)
        let bs = Bs.of_bits [| true; false; true |] in
        Alcotest.(check int) "first two" 0b01 (Bs.next_bits bs 2);
        Alcotest.check_raises "3 bits left of 1" End_of_file (fun () ->
            ignore (Bs.next_bits bs 2));
        let bs2 = Bs.of_bits [| true; true |] in
        Alcotest.(check int) "exact drain" 0b11 (Bs.next_bits bs2 2);
        Alcotest.check_raises "then empty" End_of_file (fun () ->
            ignore (Bs.next_bit bs2));
        let bs3 = Bs.of_bits (Array.make 10 true) in
        Alcotest.check_raises "word needs 63" End_of_file (fun () ->
            ignore (Bs.next_word bs3)));
    Alcotest.test_case "prng_work matches backend block sizes" `Quick (fun () ->
        (* 100 bytes = 2 ChaCha blocks (64 B) but only 1 SHAKE128 squeeze
           block (168 B rate): the unit really is backend-specific. *)
        let chacha = Bs.of_chacha (Chacha.of_seed "work-cmp") in
        let shake = Bs.of_shake (Keccak.shake128 (Bytes.of_string "work-cmp")) in
        Bs.next_bytes_into chacha (Bytes.create 100);
        Bs.next_bytes_into shake (Bytes.create 100);
        Alcotest.(check int) "chacha blocks" 2 (Bs.prng_work chacha);
        Alcotest.(check int) "keccak permutations" 1 (Bs.prng_work shake));
  ]

let prop_tests =
  let open QCheck in
  List.map QCheck_alcotest.to_alcotest
    [
      Test.make ~name:"next_bits value fits in k bits" ~count:200
        (pair small_nat (int_bound 54))
        (fun (seed, k) ->
          let bs = Bs.of_splitmix (Ctg_prng.Splitmix64.create (Int64.of_int seed)) in
          let v = Bs.next_bits bs k in
          v >= 0 && (k = 0 || v < 1 lsl k || k >= 54));
      Test.make ~name:"splitmix bounded draws in range" ~count:200
        (pair small_nat (int_range 1 1000))
        (fun (seed, bound) ->
          let rng = Ctg_prng.Splitmix64.create (Int64.of_int seed) in
          let v = Ctg_prng.Splitmix64.next_int rng bound in
          v >= 0 && v < bound);
      Test.make ~name:"fixed bitstream word matches bit order" ~count:50
        small_nat
        (fun seed ->
          let rng = Ctg_prng.Splitmix64.create (Int64.of_int seed) in
          let bits = Array.init 63 (fun _ -> Ctg_prng.Splitmix64.next_int rng 2 = 1) in
          let bs = Bs.of_bits bits in
          let w = Bs.next_word bs in
          let ok = ref true in
          for i = 0 to 62 do
            if (w lsr i) land 1 = 1 <> bits.(i) then ok := false
          done;
          !ok);
    ]

(* SP 800-90B-style health tests: each defect class must trip its matching
   test, and a fair source must sail through every window. *)
module Health = Ctg_prng.Health

let unit32 sm =
  Int64.to_int (Int64.shift_right_logical (Ctg_prng.Splitmix64.next sm) 32)

let expect_trip name want feed =
  let h = Health.create ~label:name () in
  match feed h with
  | () -> Alcotest.failf "%s: no health test tripped" name
  | exception Health.Entropy_failure f ->
    Alcotest.(check string)
      (name ^ " tripped the right test")
      (Health.test_name want) (Health.test_name f.Health.test)

let health_tests =
  [
    Alcotest.test_case "repetition-count trips on a stuck source" `Quick
      (fun () ->
        expect_trip "rct" Health.Repetition (fun h ->
            for _ = 1 to Health.rct_cutoff + 1 do
              Health.check_unit h 0xDEAD
            done));
    Alcotest.test_case "adaptive-proportion trips on periodic repetition"
      `Quick (fun () ->
        (* Period 4: no two consecutive units are equal (RCT blind), but
           the window's first unit keeps recurring. *)
        let cycle = [| 0x1111; 0x2222; 0x3333; 0x4444 |] in
        expect_trip "apt" Health.Adaptive_proportion (fun h ->
            for i = 0 to (Health.apt_window * 2) - 1 do
              Health.check_unit h cycle.(i mod 4)
            done));
    Alcotest.test_case "stuck-bit trips on a frozen line" `Quick (fun () ->
        let sm = Ctg_prng.Splitmix64.create 0xBEEFL in
        expect_trip "stuck" Health.Stuck_bit (fun h ->
            (* The stuck/ones tests sample one unit in four, so a full
               window spans 4x its length in scanned units. *)
            for _ = 1 to (4 * Health.stuck_window) + 4 do
              (* Bit 5 welded to one; everything else random. *)
              Health.check_unit h (unit32 sm lor 0x20)
            done));
    Alcotest.test_case "ones-proportion trips on global bias" `Quick
      (fun () ->
        let sm = Ctg_prng.Splitmix64.create 0xB1A5L in
        expect_trip "ones" Health.Ones_proportion (fun h ->
            for _ = 1 to (4 * Health.ones_window_units) + 4 do
              (* OR of two draws: every bit one with probability 3/4 —
                 no single bit frozen, no repetition, just bias. *)
              Health.check_unit h (unit32 sm lor unit32 sm)
            done));
    Alcotest.test_case "fair source passes multiple full windows" `Quick
      (fun () ->
        let sm = Ctg_prng.Splitmix64.create 0xFA1EL in
        let h = Health.create () in
        for _ = 1 to 4 * Health.ones_window_units do
          Health.check_unit h (unit32 sm)
        done;
        Alcotest.(check int)
          "all units counted"
          (4 * Health.ones_window_units)
          (Health.units_checked h));
    Alcotest.test_case "bytes pack LSB-first into units" `Quick (fun () ->
        let h = Health.create () in
        List.iter (Health.check_byte h) [ 0x78; 0x56; 0x34; 0x12 ];
        Alcotest.(check int) "one unit" 1 (Health.units_checked h);
        let h2 = Health.create () in
        Health.scan_block h2 (Bytes.of_string "\x78\x56\x34\x12");
        Alcotest.(check int) "block = bytes" 1 (Health.units_checked h2));
    Alcotest.test_case "attached to a bitstream, trips before serving bits"
      `Quick (fun () ->
        let bs = Bs.of_byte_fn (fun () -> 0xAA) in
        Bs.attach_health bs (Health.create ~label:"lane-test" ());
        match
          for _ = 1 to 100 do
            ignore (Bs.next_word bs)
          done
        with
        | () -> Alcotest.fail "stuck stream served bits unchallenged"
        | exception Health.Entropy_failure f ->
          Alcotest.(check string) "lane label" "lane-test" f.Health.label);
  ]

let () =
  Alcotest.run "prng"
    [
      ("chacha20", chacha_tests);
      ("keccak", keccak_tests);
      ("bitstream", bitstream_tests);
      ("accounting", accounting_tests);
      ("health", health_tests);
      ("properties", prop_tests);
    ]
