test/test_prng.ml: Alcotest Array Bytes Ctg_prng Ctg_util Int64 List QCheck QCheck_alcotest Test
