(* Thin re-export: the HTTP server grew into the shared Ctg_net.Http stack
   (keep-alive, request bodies, worker team, graceful drain) so the signing
   daemon and the metrics endpoint serve from one implementation.  Existing
   Obs.Http callers — Monitor.routes, ctg_stats serve, the tests — keep
   working unchanged. *)

include Ctg_net.Http
