lib/bigint/zint.ml: Format Nat String
