(* The static analyzer: the BDD engine itself against brute force, the
   symbolic program evaluation against the concrete interpreter, the
   equivalence/one-hot proofs against truth-table enumeration, and the
   negative paths — mutants and malformed programs the passes must
   reject.  The BDD proofs cover all 2^n inputs, so the brute-force
   cross-checks here are what grounds trust in the prover. *)

module Gate = Ctgauss.Gate
module Bitslice = Ctgauss.Bitslice
module Sublist = Ctgauss.Sublist
module Compile = Ctgauss.Compile
module Compile_simple = Ctgauss.Compile_simple
module Matrix = Ctg_kyao.Matrix
module Le = Ctg_kyao.Leaf_enum
module Bdd = Ctg_analysis.Bdd
module Equiv = Ctg_analysis.Equiv
module Taint = Ctg_analysis.Taint
module Lint = Ctg_analysis.Lint
module Budget = Ctg_analysis.Budget
module Analyze = Ctg_analysis.Analyze
module Jsonx = Ctg_analysis.Jsonx
module Report = Ctg_analysis.Report

let enum_of ?(tail_cut = 13) sigma precision =
  Le.enumerate (Matrix.create ~sigma ~precision ~tail_cut)

let bits_of_int n x = Array.init n (fun i -> x lsr i land 1 = 1)

(* ------------------------------------------------------------------ *)
(* BDD engine vs. brute force on random expressions.                   *)

let bdd_tests =
  [
    Alcotest.test_case "terminals and variables" `Quick (fun () ->
        let man = Bdd.create ~num_vars:4 in
        Alcotest.(check bool) "zero" true (Bdd.is_zero Bdd.zero);
        Alcotest.(check bool) "one" true (Bdd.is_one Bdd.one);
        let x = Bdd.var man 2 in
        Alcotest.(check bool) "x(1)" true
          (Bdd.eval man x [| false; false; true; false |]);
        Alcotest.(check bool) "x(0)" false
          (Bdd.eval man x [| true; true; false; true |]));
    Alcotest.test_case "random expressions vs truth tables" `Quick (fun () ->
        (* Build the same random expression as a BDD and as a bitmask
           truth table over n variables; they must agree pointwise. *)
        (* Truth tables are int bitmasks over 2^n minterms, so n <= 5 on
           a 63-bit OCaml int. *)
        let n = 5 in
        let rng = Ctg_prng.Splitmix64.create 0x5eedL in
        let man = Bdd.create ~num_vars:n in
        let full = (1 lsl (1 lsl n)) - 1 in
        (* truth table of variable i: bit m is m>>i land 1 *)
        let var_tt i =
          let t = ref 0 in
          for m = 0 to (1 lsl n) - 1 do
            if m lsr i land 1 = 1 then t := !t lor (1 lsl m)
          done;
          !t
        in
        for _trial = 1 to 50 do
          let pool = ref [] in
          for i = 0 to n - 1 do
            pool := (Bdd.var man i, var_tt i) :: !pool
          done;
          for _step = 1 to 25 do
            let pick () =
              List.nth !pool
                (Ctg_prng.Splitmix64.next_int rng (List.length !pool))
            in
            let a, ta = pick () and b, tb = pick () in
            let node =
              match Ctg_prng.Splitmix64.next_int rng 4 with
              | 0 -> (Bdd.band man a b, ta land tb)
              | 1 -> (Bdd.bor man a b, ta lor tb)
              | 2 -> (Bdd.bxor man a b, ta lxor tb)
              | _ -> (Bdd.bnot man a, lnot ta land full)
            in
            pool := node :: !pool
          done;
          List.iter
            (fun (f, tt) ->
              (* Handle equality must match truth-table equality against
                 every other pool member (hash-consing canonicity). *)
              for m = 0 to (1 lsl n) - 1 do
                let want = tt lsr m land 1 = 1 in
                if Bdd.eval man f (bits_of_int n m) <> want then
                  Alcotest.failf "eval mismatch at minterm %d" m
              done;
              let cnt = int_of_float (Bdd.sat_count man f) in
              let brute = Ctg_util.Bits.popcount tt in
              Alcotest.(check int) "sat_count" brute cnt;
              match Bdd.any_sat man f with
              | None -> Alcotest.(check int) "unsat iff tt=0" 0 tt
              | Some a ->
                Alcotest.(check bool) "witness satisfies" true
                  (Bdd.eval man f a))
            !pool
        done);
    Alcotest.test_case "hash-consing canonicity" `Quick (fun () ->
        let man = Bdd.create ~num_vars:3 in
        let x = Bdd.var man 0 and y = Bdd.var man 1 in
        (* De Morgan: ~(x & y) = ~x | ~y, as handle equality. *)
        let lhs = Bdd.bnot man (Bdd.band man x y) in
        let rhs = Bdd.bor man (Bdd.bnot man x) (Bdd.bnot man y) in
        Alcotest.(check bool) "de morgan" true (Bdd.equal lhs rhs);
        let xx = Bdd.bxor man x x in
        Alcotest.(check bool) "x^x = 0" true (Bdd.is_zero xx));
  ]

(* ------------------------------------------------------------------ *)
(* Symbolic program evaluation vs. the concrete interpreter.           *)

let exhaustive_agree man p (outs, valid) =
  let n = p.Gate.num_vars in
  for m = 0 to (1 lsl n) - 1 do
    let bits = bits_of_int n m in
    let mag, ok = Bitslice.eval_single p bits in
    (match valid with
    | Some v ->
      if Bdd.eval man v bits <> ok then
        Alcotest.failf "valid mismatch at input %d" m
    | None -> ());
    Array.iteri
      (fun i f ->
        let want = mag lsr i land 1 = 1 in
        if Bdd.eval man f bits <> want then
          Alcotest.failf "output %d mismatch at input %d" i m)
      outs
  done

let symbolic_tests =
  [
    Alcotest.test_case "program_bdds == eval_single (sigma=1 n=8)" `Quick
      (fun () ->
        let enum = enum_of "1" 8 in
        let p = Compile.compile (Sublist.build enum) in
        let man = Bdd.create ~num_vars:p.Gate.num_vars in
        exhaustive_agree man p (Equiv.program_bdds man p));
    Alcotest.test_case "program_bdds == eval_single (simple, sigma=2 n=9)"
      `Quick (fun () ->
        let enum = enum_of "2" 9 in
        let p = Compile_simple.compile enum in
        let man = Bdd.create ~num_vars:p.Gate.num_vars in
        exhaustive_agree man p (Equiv.program_bdds man p));
  ]

(* ------------------------------------------------------------------ *)
(* Equivalence proofs vs. brute-force truth-table enumeration, over    *)
(* the full option matrix.                                             *)

let brute_equivalent a b =
  (* Ground truth for Equiv.equivalent at small n: enumerate all
     strings; valid flags must agree everywhere, outputs wherever valid
     holds. *)
  let n = max a.Gate.num_vars b.Gate.num_vars in
  let pad p bits = Array.sub bits 0 p.Gate.num_vars in
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let bits = bits_of_int n m in
    let ma, va = Bitslice.eval_single a (pad a bits) in
    let mb, vb = Bitslice.eval_single b (pad b bits) in
    if va <> vb then ok := false;
    if va && vb && ma <> mb then ok := false
  done;
  !ok

let option_labels =
  List.map
    (fun (opts, label) -> (opts, label))
    [
      (Compile.default_options, "default");
      ({ Compile.default_options with share_selectors = false }, "noshare");
      ({ Compile.default_options with exact_minimize = false }, "greedy");
      ({ Compile.default_options with flatten_onehot = false }, "nested");
      ( {
          Compile.default_options with
          share_selectors = false;
          exact_minimize = false;
          flatten_onehot = false;
        },
        "all-off" );
    ]

let equiv_tests =
  [
    Alcotest.test_case "all option combos == simple (BDD and brute)" `Quick
      (fun () ->
        let enum = enum_of "2" 10 in
        let simple = Compile_simple.compile enum in
        let sublists = Sublist.build enum in
        let man = Bdd.create ~num_vars:10 in
        List.iter
          (fun (options, label) ->
            let p = Compile.compile ~options sublists in
            let v = Equiv.equivalent man p simple in
            Alcotest.(check bool)
              (label ^ ": valid_equal") true v.Equiv.valid_equal;
            Alcotest.(check bool)
              (label ^ ": outputs_equal_on_valid")
              true v.Equiv.outputs_equal_on_valid;
            Alcotest.(check bool)
              (label ^ ": matches brute force") true (brute_equivalent p simple))
          option_labels);
    Alcotest.test_case "mutant is refuted with a counterexample" `Quick
      (fun () ->
        let enum = enum_of "1" 8 in
        let p = Compile.compile (Sublist.build enum) in
        (* Flip one live AND to OR: the programs must no longer be
           equivalent, and the counterexample must actually witness the
           disagreement. *)
        let taint = Taint.analyze p in
        let live = Taint.live taint in
        let idx = ref (-1) in
        Array.iteri
          (fun i instr ->
            if !idx < 0 && live.(i) then
              match instr with Gate.And (a, b) when a <> b -> idx := i | _ -> ())
          p.Gate.instrs;
        if !idx < 0 then Alcotest.fail "no live AND gate to mutate";
        let instrs = Array.copy p.Gate.instrs in
        (match instrs.(!idx) with
        | Gate.And (a, b) -> instrs.(!idx) <- Gate.Or (a, b)
        | _ -> assert false);
        let mutant =
          match
            Gate.make ~num_vars:p.Gate.num_vars ~instrs ~outputs:p.Gate.outputs
              ~valid:p.Gate.valid
          with
          | Ok m -> m
          | Error e -> Alcotest.failf "mutant should validate: %s" e
        in
        let man = Bdd.create ~num_vars:p.Gate.num_vars in
        let v = Equiv.equivalent man p mutant in
        Alcotest.(check bool)
          "mutant detected" false
          (v.Equiv.valid_equal && v.Equiv.outputs_equal_on_valid);
        match v.Equiv.counterexample with
        | None -> Alcotest.fail "expected a counterexample"
        | Some bits ->
          let bits_a = Array.sub bits 0 p.Gate.num_vars in
          let ma, va = Bitslice.eval_single p bits_a in
          let mb, vb = Bitslice.eval_single mutant bits_a in
          Alcotest.(check bool)
            "counterexample witnesses disagreement" true
            (va <> vb || (va && ma <> mb)));
    Alcotest.test_case "selectors one-hot + exhaustive (sigma=2 n=10)" `Quick
      (fun () ->
        let enum = enum_of "2" 10 in
        let sublists = Sublist.build enum in
        let p = Compile.compile sublists in
        let man = Bdd.create ~num_vars:10 in
        let _, valid = Equiv.program_bdds man p in
        let valid = Option.get valid in
        let sv =
          Equiv.selectors_one_hot man
            ~num_entries:(Array.length sublists.Sublist.entries)
            ~valid
        in
        Alcotest.(check bool) "one-hot" true sv.Equiv.one_hot;
        Alcotest.(check bool) "exhaustive" true sv.Equiv.exhaustive_on_valid;
        (* Brute-force the same two facts. *)
        let n = 10 in
        let k = Array.length sublists.Sublist.entries in
        for m = 0 to (1 lsl n) - 1 do
          let bits = bits_of_int n m in
          let sel kappa =
            (* c_k = b_0 & ... & b_{k-1} & ~b_k *)
            let prefix = ref true in
            for i = 0 to kappa - 1 do
              if not bits.(i) then prefix := false
            done;
            !prefix && kappa < n && not bits.(kappa)
          in
          let fired = ref 0 in
          for kappa = 0 to k - 1 do
            if sel kappa then incr fired
          done;
          if !fired > 1 then Alcotest.failf "not one-hot at input %d" m;
          let _, valid_here = Bitslice.eval_single p bits in
          if valid_here && !fired = 0 then
            Alcotest.failf "terminating string %d claimed by no selector" m
        done);
  ]

(* ------------------------------------------------------------------ *)
(* validate/make negative paths and taint facts.                       *)

let mk ~num_vars ~instrs ~outputs ~valid =
  Gate.make ~num_vars ~instrs ~outputs ~valid

let structure_tests =
  [
    Alcotest.test_case "make rejects forward references" `Quick (fun () ->
        (* Instruction 0 reads register num_vars+1, defined by
           instruction 1: a forward reference. *)
        let r =
          mk ~num_vars:2
            ~instrs:[| Gate.And (0, 3); Gate.Not 1 |]
            ~outputs:[| 2 |] ~valid:None
        in
        Alcotest.(check bool) "rejected" true (Result.is_error r));
    Alcotest.test_case "make rejects out-of-range outputs" `Quick (fun () ->
        let r =
          mk ~num_vars:2 ~instrs:[| Gate.And (0, 1) |] ~outputs:[| 7 |]
            ~valid:None
        in
        Alcotest.(check bool) "rejected" true (Result.is_error r));
    Alcotest.test_case "make rejects negative operands and bad valid" `Quick
      (fun () ->
        let r =
          mk ~num_vars:2 ~instrs:[| Gate.Not (-1) |] ~outputs:[| 2 |]
            ~valid:None
        in
        Alcotest.(check bool) "negative operand" true (Result.is_error r);
        let r =
          mk ~num_vars:2 ~instrs:[| Gate.Not 0 |] ~outputs:[| 2 |]
            ~valid:(Some 99)
        in
        Alcotest.(check bool) "bad valid sink" true (Result.is_error r));
    Alcotest.test_case "make accepts a well-formed program" `Quick (fun () ->
        let r =
          mk ~num_vars:2
            ~instrs:[| Gate.And (0, 1); Gate.Not 2 |]
            ~outputs:[| 3 |] ~valid:(Some 2)
        in
        Alcotest.(check bool) "accepted" true (Result.is_ok r));
    Alcotest.test_case "taint finds dead gates, prune removes them" `Quick
      (fun () ->
        (* Instruction 1 (Xor) reaches nothing. *)
        let p =
          match
            mk ~num_vars:2
              ~instrs:[| Gate.And (0, 1); Gate.Xor (0, 1); Gate.Not 2 |]
              ~outputs:[| 4 |] ~valid:None
          with
          | Ok p -> p
          | Error e -> Alcotest.failf "should validate: %s" e
        in
        let t = Taint.analyze p in
        Alcotest.(check (list int)) "dead instr" [ 1 ] (Taint.dead_instrs t);
        let pruned = Gate.prune p in
        Alcotest.(check int) "pruned count" 2 (Array.length pruned.Gate.instrs);
        Alcotest.(check (list int))
          "pruned is clean" []
          (Taint.dead_instrs (Taint.analyze pruned));
        (* Same function after renumbering. *)
        for m = 0 to 3 do
          let bits = bits_of_int 2 m in
          Alcotest.(check int)
            "semantics preserved"
            (fst (Bitslice.eval_single p bits))
            (fst (Bitslice.eval_single pruned bits))
        done);
    Alcotest.test_case "lint flags the dead gate, clean on default compile"
      `Quick (fun () ->
        let dirty =
          match
            mk ~num_vars:2
              ~instrs:[| Gate.And (0, 1); Gate.Xor (0, 1) |]
              ~outputs:[| 2 |] ~valid:None
          with
          | Ok p -> p
          | Error e -> Alcotest.failf "should validate: %s" e
        in
        let findings = Lint.lint ~name:"dirty" dirty in
        Alcotest.(check bool)
          "dead-gate fires" true
          (List.exists (fun f -> f.Report.rule = "dead-gate") findings);
        let enum = enum_of "2" 10 in
        let p = Compile.compile (Sublist.build enum) in
        let clean = Lint.lint ~name:"clean" p in
        Alcotest.(check (list string))
          "default compile lint-clean (no CI-failing findings)" []
          (List.filter Report.fails_ci clean
          |> List.map (fun f -> f.Report.rule)));
    Alcotest.test_case "taint census matches gate kinds" `Quick (fun () ->
        let p =
          match
            mk ~num_vars:3
              ~instrs:
                [| Gate.And (0, 1); Gate.Or (3, 2); Gate.Not 4; Gate.Xor (5, 0) |]
              ~outputs:[| 6 |] ~valid:None
          with
          | Ok p -> p
          | Error e -> Alcotest.failf "should validate: %s" e
        in
        let c = Taint.census (Taint.analyze p) in
        Alcotest.(check int) "ands" 1 c.Taint.ands;
        Alcotest.(check int) "ors" 1 c.Taint.ors;
        Alcotest.(check int) "xors" 1 c.Taint.xors;
        Alcotest.(check int) "nots" 1 c.Taint.nots);
  ]

(* ------------------------------------------------------------------ *)
(* Budget baseline: JSON roundtrip and regression detection.           *)

let budget_tests =
  [
    Alcotest.test_case "json roundtrip" `Quick (fun () ->
        let b =
          {
            Budget.entries =
              [
                {
                  Budget.sigma = "2";
                  precision = 16;
                  tail_cut = 13;
                  gates = 154;
                  depth = 15;
                  simple_gates = 159;
                };
              ];
          }
        in
        match Budget.of_json (Budget.to_json b) with
        | Error e -> Alcotest.failf "roundtrip: %s" e
        | Ok b' -> Alcotest.(check bool) "equal" true (b = b'));
    Alcotest.test_case "parse of pretty output" `Quick (fun () ->
        let b =
          {
            Budget.entries =
              [
                {
                  Budget.sigma = "6.15543";
                  precision = 16;
                  tail_cut = 13;
                  gates = 452;
                  depth = 17;
                  simple_gates = 573;
                };
              ];
          }
        in
        let s = Jsonx.pretty (Budget.to_json b) in
        match Jsonx.parse s with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok j -> (
          match Budget.of_json j with
          | Error e -> Alcotest.failf "of_json: %s" e
          | Ok b' -> Alcotest.(check bool) "equal" true (b = b')));
    Alcotest.test_case "regression detection" `Quick (fun () ->
        let base =
          {
            Budget.sigma = "2";
            precision = 16;
            tail_cut = 13;
            gates = 150;
            depth = 15;
            simple_gates = 159;
          }
        in
        let measured = { base with Budget.gates = 154 } in
        let findings = Budget.check ~baseline:base measured in
        Alcotest.(check bool)
          "regression is an error" true
          (List.exists
             (fun f ->
               f.Report.rule = "gate-budget" && f.Report.severity = Report.Error)
             findings);
        (* Exact match: no findings at all. *)
        Alcotest.(check int)
          "exact match clean" 0
          (List.length (Budget.check ~baseline:base base));
        (* Improvement: informational only. *)
        let better = { base with Budget.gates = 140 } in
        let findings = Budget.check ~baseline:base better in
        Alcotest.(check bool)
          "improvement does not fail CI" false
          (List.exists Report.fails_ci findings));
    Alcotest.test_case "analyze run: proofs hold at small precision" `Quick
      (fun () ->
        let r =
          Analyze.run { Analyze.sigma = "2"; precision = 10; tail_cut = 13 }
        in
        Alcotest.(check bool) "ok" true (Analyze.ok r);
        Alcotest.(check bool)
          "has equivalence proofs" true
          (List.length r.Analyze.proofs >= 4);
        List.iter
          (fun p ->
            if not p.Report.holds then
              Alcotest.failf "proof %s failed: %s" p.Report.name
                p.Report.evidence)
          r.Analyze.proofs);
  ]

(* ------------------------------------------------------------------ *)
(* DOT emission: deterministic and escaped.                            *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let dot_tests =
  [
    Alcotest.test_case "to_dot is deterministic" `Quick (fun () ->
        let enum = enum_of "2" 10 in
        let p = Compile.compile (Sublist.build enum) in
        let a = Ctgauss.Codegen.to_dot ~name:"sampler" p in
        let b = Ctgauss.Codegen.to_dot ~name:"sampler" p in
        Alcotest.(check string) "same program, same text" a b);
    Alcotest.test_case "to_dot escapes the graph name" `Quick (fun () ->
        let p =
          match
            mk ~num_vars:1 ~instrs:[| Gate.Not 0 |] ~outputs:[| 1 |] ~valid:None
          with
          | Ok p -> p
          | Error e -> Alcotest.failf "should validate: %s" e
        in
        let dot = Ctgauss.Codegen.to_dot ~name:{|bad"name\with
newline|} p in
        Alcotest.(check bool) "escaped quote" true (contains_sub dot {|\"|});
        Alcotest.(check bool)
          "no raw newline inside quoted name" false
          (contains_sub dot "bad\"name"));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("bdd", bdd_tests);
      ("symbolic", symbolic_tests);
      ("equiv", equiv_tests);
      ("structure", structure_tests);
      ("budget", budget_tests);
      ("dot", dot_tests);
    ]
