let t0 = Unix.gettimeofday ()
let now_ns () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
let now_us () = (Unix.gettimeofday () -. t0) *. 1e6
