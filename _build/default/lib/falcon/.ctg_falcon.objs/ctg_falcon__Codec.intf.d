lib/falcon/codec.mli: Keygen Params
