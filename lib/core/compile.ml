module Sop = Ctg_boolmin.Sop
module Cube = Ctg_boolmin.Cube
module Trace = Ctg_obs.Trace

type options = {
  with_valid : bool;
  share_selectors : bool;
  exact_minimize : bool;
  flatten_onehot : bool;
}

let default_options =
  {
    with_valid = true;
    share_selectors = true;
    exact_minimize = true;
    flatten_onehot = true;
  }

let minimize ~options tt =
  let exact_vars_limit = if options.exact_minimize then 12 else -1 in
  Sop.minimize ~exact_vars_limit tt

(* Emit a SOP whose variable p is input bit b_{base+p}. *)
let emit_sop b ~base sop =
  let emit_cube (c : Cube.t) =
    let lits = ref [] in
    for p = 29 downto 0 do
      if c.Cube.mask land (1 lsl p) <> 0 then begin
        let v = Gate.var b (base + p) in
        let lit =
          if c.Cube.value land (1 lsl p) <> 0 then v else Gate.bnot b v
        in
        lits := lit :: !lits
      end
    done;
    Gate.band_list b !lits
  in
  Gate.bor_list b (List.map emit_cube sop)

let selector_chain b ~options ~num_entries =
  (* prefix.(k) = b_0 & ... & b_{k-1}; c_k = prefix.(k) & ~b_k. *)
  let prefix = Array.make num_entries (Gate.const b true) in
  for k = 1 to num_entries - 1 do
    prefix.(k) <-
      (if options.share_selectors then Gate.band b prefix.(k - 1) (Gate.var b (k - 1))
       else
         Gate.band_list b (List.init k (fun i -> Gate.var b i)))
  done;
  Array.init num_entries (fun k ->
      Gate.band b prefix.(k) (Gate.bnot b (Gate.var b k)))

let compile ?(options = default_options) (s : Sublist.t) =
  let n = s.Sublist.enum.Ctg_kyao.Leaf_enum.matrix.Ctg_kyao.Matrix.precision in
  let entries = s.Sublist.entries in
  let num_entries = Array.length entries in
  (* share_selectors=false is the A2 ablation: no incremental prefix chain
     and no structural hashing to silently rebuild it. *)
  let b = Gate.builder ~cse:options.share_selectors ~num_vars:n () in
  let selectors =
    Trace.with_span "selector_assembly" ~cat:"compile"
      ~args:(fun () -> [ ("entries", string_of_int num_entries) ])
      (fun () -> selector_chain b ~options ~num_entries)
  in
  let payload_reg kappa tt =
    emit_sop b ~base:(kappa + 1) (minimize ~options tt)
  in
  (* Two equivalent combiners (selectors are one-hot on every terminating
     string): the paper-literal nested if-elseif chain of Eqn. 2, and the
     flattened OR of guarded terms. *)
  let chain_nested per_entry =
    (* The last sublist is the final else (no selector test). *)
    let acc = ref (per_entry (num_entries - 1)) in
    for k = num_entries - 2 downto 0 do
      acc := Gate.mux b ~sel:selectors.(k) ~if_one:(per_entry k) ~if_zero:!acc
    done;
    !acc
  in
  let chain_flat per_entry =
    let terms =
      List.init num_entries (fun k -> Gate.band b selectors.(k) (per_entry k))
    in
    Gate.bor_list b terms
  in
  let chain per_entry =
    if options.flatten_onehot then chain_flat per_entry else chain_nested per_entry
  in
  let outputs =
    Trace.with_span "emit_outputs" ~cat:"compile"
      ~args:(fun () -> [ ("bits", string_of_int s.Sublist.sample_bits) ])
      (fun () ->
        Array.init s.Sublist.sample_bits (fun bit ->
            chain (fun k -> payload_reg k entries.(k).Sublist.bit_tables.(bit))))
  in
  let valid =
    if not options.with_valid then None
    else begin
      (* Strings with more than max κ leading ones never terminate
         (Theorem 1's residual), so the hit chain ends in false. *)
      let hit k = payload_reg k entries.(k).Sublist.hit_table in
      if options.flatten_onehot then Some (chain_flat hit)
      else begin
        let acc = ref (Gate.const b false) in
        for k = num_entries - 1 downto 0 do
          acc := Gate.mux b ~sel:selectors.(k) ~if_one:(hit k) ~if_zero:!acc
        done;
        Some !acc
      end
    end
  in
  (* Constant folding can orphan selector gates of empty sublists (their
     payload SOPs collapse to false); prune so the gate count reported to
     Table 2 and checked by ctg_lint counts only reachable work. *)
  Trace.with_span "prune" ~cat:"compile" (fun () ->
      Gate.prune (Gate.finish b ~outputs ~valid))

let sop_report ?(options = default_options) (s : Sublist.t) =
  Array.map
    (fun (e : Sublist.entry) ->
      let sops =
        Array.to_list (Array.map (minimize ~options) e.Sublist.bit_tables)
      in
      let terms = List.fold_left (fun a sop -> a + Sop.num_terms sop) 0 sops in
      let lits = List.fold_left (fun a sop -> a + Sop.num_literals sop) 0 sops in
      (e.Sublist.kappa, terms, lits))
    s.Sublist.entries
