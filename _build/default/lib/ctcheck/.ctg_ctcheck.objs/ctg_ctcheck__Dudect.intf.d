lib/ctcheck/dudect.mli: Format
