type severity = Info | Warning | Error

type finding = {
  severity : severity;
  rule : string;
  where : string;
  detail : string;
}

type proof = { name : string; holds : bool; evidence : string }

let finding severity ~rule ~where detail = { severity; rule; where; detail }
let proof ~name ~holds ~evidence = { name; holds; evidence }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let fails_ci f = match f.severity with Info -> false | Warning | Error -> true

let pp_finding fmt f =
  Format.fprintf fmt "%-7s %-16s %s: %s"
    (severity_to_string f.severity)
    f.rule f.where f.detail

let pp_proof fmt p =
  Format.fprintf fmt "%s %s — %s"
    (if p.holds then "PROVED " else "REFUTED")
    p.name p.evidence

let finding_to_json f =
  Jsonx.Obj
    [
      ("severity", Jsonx.Str (severity_to_string f.severity));
      ("rule", Jsonx.Str f.rule);
      ("where", Jsonx.Str f.where);
      ("detail", Jsonx.Str f.detail);
    ]

let proof_to_json p =
  Jsonx.Obj
    [
      ("name", Jsonx.Str p.name);
      ("holds", Jsonx.Bool p.holds);
      ("evidence", Jsonx.Str p.evidence);
    ]
