(* Known-answer tests: deterministic seeds pin the exact behaviour of the
   whole stack (probability pipeline, compiler, bitsliced evaluator,
   ChaCha20 stream, Falcon keygen/sign).  Any change to rounding, gate
   ordering or randomness consumption shows up here first — on purpose.
   If a change is intended, regenerate the constants and say so in the
   commit. *)

let kat_sigma2 =
  [| -3; 1; 0; 3; 2; 0; 1; 1; 0; 1; -1; 1; -2; 1; 0; -1; 0; 1; -3; -1; -3; 0;
     1; 1; 2; -1; -1; -2; 1; 0; 3; 1; -2; -1; -1; 0; 0; 2; 1; -2; -3; 0; -5;
     2; 1; -3; -4; -1; 0; 2; -1; -1; 0; 0; 1; 4; -3; 3; 3; 1; -1; 0; 1 |]

let kat_sigma6 =
  [| 3; 11; 3; -5; 6; 6; -2; -8; 8; 0; -1; -4; -10; 1; 4; -5; -5; 0; 4; -2;
     -3; -2; 4; -3; -6; 3; 3; 5; -7; -1; 3; -3; -1; 9; 0; 0; 3; 14; 7; -5;
     10; 4; -5; -3; 11; -2; 1; 0; -2; 5; -4; -8; 9; 5; -3; 3; 18; -1; 0; 6;
     -6; 8; 1 |]

let sampler sigma =
  Ctgauss.Sampler.create ~sigma ~precision:128 ~tail_cut:13 ()

let tests =
  [
    Alcotest.test_case "first batch, sigma=2, seed kat-sigma2" `Quick (fun () ->
        let s = sampler "2" in
        let rng =
          Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "kat-sigma2")
        in
        Alcotest.(check (array int)) "batch" kat_sigma2
          (Ctgauss.Sampler.batch_signed s rng));
    Alcotest.test_case "first batch, sigma=6.15543, seed kat-sigma6" `Quick
      (fun () ->
        let s = sampler "6.15543" in
        let rng =
          Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "kat-sigma6")
        in
        Alcotest.(check (array int)) "batch" kat_sigma6
          (Ctgauss.Sampler.batch_signed s rng));
    Alcotest.test_case "gate counts of the default compiler" `Quick (fun () ->
        Alcotest.(check int) "sigma 2" 3706 (Ctgauss.Sampler.gate_count (sampler "2"));
        Alcotest.(check int) "sigma 6.15543" 10793
          (Ctgauss.Sampler.gate_count (sampler "6.15543")));
    Alcotest.test_case "falcon keygen + signature, seed kat-falcon" `Quick
      (fun () ->
        let params = Ctg_falcon.Params.custom ~n:64 in
        let rng =
          Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "kat-falcon")
        in
        let kp = Ctg_falcon.Keygen.generate params rng in
        Alcotest.(check int) "h[0]" 1572 kp.Ctg_falcon.Keygen.h.(0);
        Alcotest.(check int) "h[1]" 1966 kp.Ctg_falcon.Keygen.h.(1);
        let s = sampler "2" in
        let base =
          Ctg_falcon.Base_sampler.of_instance
            (Ctg_samplers.Sampler_sig.of_bitsliced s)
        in
        let sg = Ctg_falcon.Sign.sign kp base rng ~msg:(Bytes.of_string "kat") in
        Alcotest.(check int) "s2[0]" 104 sg.Ctg_falcon.Sign.s2.(0);
        Alcotest.(check int) "s2[1]" (-61) sg.Ctg_falcon.Sign.s2.(1);
        Alcotest.(check (float 0.5)) "norm^2" 6666281.0 sg.Ctg_falcon.Sign.norm_sq);
  ]

let () = Alcotest.run "kat" [ ("known-answer", tests) ]
