lib/falcon/ldl.mli: Fftc
