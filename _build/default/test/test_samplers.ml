(* CDT baseline samplers: table construction, comparison primitives, and
   the guarantee that all four samplers draw from the same distribution. *)

module Table = Ctg_samplers.Cdt_table
module Cdt = Ctg_samplers.Cdt_samplers
module Sig = Ctg_samplers.Sampler_sig
module Matrix = Ctg_kyao.Matrix
module Bs = Ctg_prng.Bitstream

let m = Matrix.create ~sigma:"2" ~precision:24 ~tail_cut:13
let table = Table.of_matrix m

let table_tests =
  [
    Alcotest.test_case "size and width" `Quick (fun () ->
        Alcotest.(check int) "entries" 27 (Table.size table);
        Alcotest.(check int) "bytes" 3 (Table.entry_bytes table));
    Alcotest.test_case "CDF is monotone" `Quick (fun () ->
        for v = 0 to Table.size table - 2 do
          let lt, _ = Table.lt_early_exit (Table.cdf table v) (Table.cdf table (v + 1)) in
          let eq = Bytes.equal (Table.cdf table v) (Table.cdf table (v + 1)) in
          Alcotest.(check bool) (Printf.sprintf "cdf %d <= cdf %d" v (v + 1)) true (lt || eq)
        done);
    Alcotest.test_case "last entry is nearly full" `Quick (fun () ->
        let top = Table.cdf table (Table.size table - 1) in
        (* Residual < support+1 out of 2^24, so the top byte is 0xff. *)
        Alcotest.(check int) "top byte" 0xff (Char.code (Bytes.get top 0)));
    Alcotest.test_case "ct compare agrees with early-exit compare" `Quick
      (fun () ->
        let rng = Ctg_prng.Splitmix64.create 99L in
        for _ = 1 to 2000 do
          let mk () =
            Bytes.init 3 (fun _ -> Char.chr (Ctg_prng.Splitmix64.next_int rng 256))
          in
          let a = mk () and b = mk () in
          let r1, _ = Table.lt_early_exit a b in
          let r2, ops = Table.lt_ct a b in
          Alcotest.(check bool) "same predicate" r1 r2;
          Alcotest.(check int) "constant ops" 3 ops
        done);
    Alcotest.test_case "ct compare equals byte order" `Quick (fun () ->
        let a = Bytes.of_string "\x01\xff\xff" and b = Bytes.of_string "\x02\x00\x00" in
        Alcotest.(check bool) "a < b" true (fst (Table.lt_ct a b));
        Alcotest.(check bool) "not b < a" false (fst (Table.lt_ct b a));
        Alcotest.(check bool) "not a < a" false (fst (Table.lt_ct a a)));
  ]

let instances () =
  [
    Cdt.binary_search table;
    Cdt.byte_scan table;
    Cdt.linear_ct table;
    Sig.knuth_yao_reference m;
  ]

let sampler_tests =
  [
    Alcotest.test_case "all CDT variants agree sample-for-sample" `Quick
      (fun () ->
        (* Same PRNG bytes, same algorithmic answer. *)
        let a = Cdt.binary_search table and b = Cdt.byte_scan table in
        let c = Cdt.linear_ct table in
        let mk () = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "agree") in
        let ra = mk () and rb = mk () and rc = mk () in
        for _ = 1 to 3000 do
          let va = a.Sig.sample_magnitude ra in
          let vb = b.Sig.sample_magnitude rb in
          let vc = c.Sig.sample_magnitude rc in
          Alcotest.(check int) "binary=byte" va vb;
          Alcotest.(check int) "binary=linear" va vc
        done);
    Alcotest.test_case "linear CT scan cost is input-independent" `Quick
      (fun () ->
        let inst = Cdt.linear_ct table in
        let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "ops") in
        let costs = Hashtbl.create 4 in
        for _ = 1 to 1000 do
          let _, ops = inst.Sig.sample_traced bs in
          Hashtbl.replace costs ops ()
        done;
        (* All traces identical (up to the astronomically-rare redraw). *)
        Alcotest.(check int) "single cost" 1 (Hashtbl.length costs));
    Alcotest.test_case "byte-scan cost varies with the draw" `Quick (fun () ->
        let inst = Cdt.byte_scan table in
        let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "varies") in
        let costs = Hashtbl.create 16 in
        for _ = 1 to 1000 do
          let _, ops = inst.Sig.sample_traced bs in
          Hashtbl.replace costs ops ()
        done;
        Alcotest.(check bool) "several costs" true (Hashtbl.length costs > 3));
    Alcotest.test_case "constant_time flags match the paper" `Quick (fun () ->
        List.iter
          (fun (inst : Sig.instance) ->
            let expect =
              match inst.Sig.name with
              | "cdt-linear-ct" -> true
              | _ -> false
            in
            Alcotest.(check bool) inst.Sig.name expect inst.Sig.constant_time)
          (instances ()));
    Alcotest.test_case "signed wrapper is symmetric" `Quick (fun () ->
        let inst = Cdt.byte_scan table in
        let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "sign") in
        let pos = ref 0 and neg = ref 0 in
        for _ = 1 to 30_000 do
          let v = Sig.sample_signed inst bs in
          if v > 0 then incr pos else if v < 0 then incr neg
        done;
        let ratio = float_of_int !pos /. float_of_int !neg in
        Alcotest.(check bool) "balanced" true (ratio > 0.93 && ratio < 1.07));
    Alcotest.test_case "every sampler matches exact probabilities" `Slow
      (fun () ->
        let exact = Ctg_stats.Distance.exact_probabilities m in
        List.iter
          (fun (inst : Sig.instance) ->
            let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed inst.Sig.name) in
            let trials = 40_000 in
            let counts = Array.make (m.Matrix.support + 1) 0 in
            for _ = 1 to trials do
              let v = inst.Sig.sample_magnitude bs in
              counts.(v) <- counts.(v) + 1
            done;
            let r =
              Ctg_stats.Chi_square.test ~observed:counts
                ~expected:(Array.map (fun p -> p *. float_of_int trials) exact)
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s p=%.4f" inst.Sig.name r.Ctg_stats.Chi_square.p_value)
              true
              (r.Ctg_stats.Chi_square.p_value > 0.001))
          (instances ()));
    Alcotest.test_case "bitsliced wrapper agrees with its sampler" `Quick
      (fun () ->
        let enum = Ctg_kyao.Leaf_enum.enumerate m in
        let s = Ctgauss.Sampler.of_enum enum in
        let inst = Sig.of_bitsliced s in
        let bs = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "wrap") in
        for _ = 1 to 100 do
          let v = inst.Sig.sample_magnitude bs in
          Alcotest.(check bool) "in support" true (v >= 0 && v <= m.Matrix.support)
        done);
  ]

let convolution_tests =
  [
    Alcotest.test_case "effective sigma formula" `Quick (fun () ->
        let base = Ctgauss.Sampler.of_enum (Ctg_kyao.Leaf_enum.enumerate m) in
        let c = Ctg_samplers.Convolution.create ~base ~k:3 ~levels:2 in
        Alcotest.(check (float 1e-9)) "sigma" (2.0 *. 10.0)
          (Ctg_samplers.Convolution.sigma_effective c);
        Alcotest.(check int) "4 base samples" 4
          (Ctg_samplers.Convolution.base_samples_per_output c));
    Alcotest.test_case "empirical sigma matches" `Slow (fun () ->
        let base = Ctgauss.Sampler.of_enum (Ctg_kyao.Leaf_enum.enumerate m) in
        let c = Ctg_samplers.Convolution.create ~base ~k:4 ~levels:1 in
        let rng = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "conv-test") in
        let mom = Ctg_stats.Moments.create () in
        for _ = 1 to 60_000 do
          Ctg_stats.Moments.add mom
            (float_of_int (Ctg_samplers.Convolution.sample c rng))
        done;
        let target = Ctg_samplers.Convolution.sigma_effective c in
        let ratio = Ctg_stats.Moments.std_dev mom /. target in
        Alcotest.(check bool)
          (Printf.sprintf "std ratio %.3f" ratio)
          true
          (ratio > 0.98 && ratio < 1.02);
        Alcotest.(check bool) "mean near zero" true
          (abs_float (Ctg_stats.Moments.mean mom) < 0.2));
    Alcotest.test_case "rejects bad parameters" `Quick (fun () ->
        let base = Ctgauss.Sampler.of_enum (Ctg_kyao.Leaf_enum.enumerate m) in
        Alcotest.check_raises "k=0" (Invalid_argument "Convolution.create")
          (fun () ->
            ignore (Ctg_samplers.Convolution.create ~base ~k:0 ~levels:1)));
  ]

let rejection_tests =
  [
    Alcotest.test_case "acceptance rate is sane" `Quick (fun () ->
        let rate = Ctg_samplers.Rejection.acceptance_rate m in
        Alcotest.(check bool)
          (Printf.sprintf "rate %.3f" rate)
          true
          (rate > 0.02 && rate < 0.5));
    Alcotest.test_case "distribution matches the table" `Slow (fun () ->
        let inst = Ctg_samplers.Rejection.create m in
        let rng = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "rejection-test") in
        let trials = 50_000 in
        let counts = Array.make (m.Matrix.support + 1) 0 in
        for _ = 1 to trials do
          let v = inst.Sig.sample_magnitude rng in
          counts.(v) <- counts.(v) + 1
        done;
        let exact = Ctg_stats.Distance.exact_probabilities m in
        let r =
          Ctg_stats.Chi_square.test ~observed:counts
            ~expected:(Array.map (fun p -> p *. float_of_int trials) exact)
        in
        Alcotest.(check bool)
          (Printf.sprintf "p=%.4f" r.Ctg_stats.Chi_square.p_value)
          true
          (r.Ctg_stats.Chi_square.p_value > 0.001));
    Alcotest.test_case "iteration count varies (non-CT by nature)" `Quick
      (fun () ->
        let inst = Ctg_samplers.Rejection.create m in
        let rng = Bs.of_chacha (Ctg_prng.Chacha20.of_seed "rej-trace") in
        let seen = Hashtbl.create 8 in
        for _ = 1 to 500 do
          Hashtbl.replace seen (snd (inst.Sig.sample_traced rng)) ()
        done;
        Alcotest.(check bool) "many iteration counts" true (Hashtbl.length seen > 3));
  ]

let () =
  Alcotest.run "samplers"
    [
      ("cdt-table", table_tests);
      ("samplers", sampler_tests);
      ("convolution", convolution_tests);
      ("rejection", rejection_tests);
    ]
