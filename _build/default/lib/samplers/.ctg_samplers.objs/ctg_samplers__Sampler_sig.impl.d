lib/samplers/sampler_sig.ml: Ctg_kyao Ctg_prng Ctgauss
