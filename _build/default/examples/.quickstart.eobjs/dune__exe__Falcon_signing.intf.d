examples/falcon_signing.mli:
