lib/boolmin/quine_mccluskey.mli: Cube Truth_table
