(** Falcon parameter sets (round-1 style, binary number fields, σ = 2 base
    sampler), matching the paper's Table 1 rows.

    These parameters reproduce the scheme's {e shape} — ring degree, q,
    sampler call counts, signature sizes; they are NOT a security-audited
    Falcon implementation (see DESIGN.md: the base-sampler plug replaces
    Falcon's variable-σ SamplerZ with the paper's fixed-σ sampler and
    randomized center rounding). *)

type level = Level1 | Level2 | Level3

type t = {
  level : level;
  n : int;  (** Ring degree N: 256 / 512 / 1024. *)
  q : int;  (** Modulus 12289. *)
  sigma_fg : float;  (** Key polynomial std dev: 1.17·sqrt(q / 2N). *)
  salt_bytes : int;  (** 40, as in Falcon. *)
  max_sign_attempts : int;
}

val level1 : t
val level2 : t
val level3 : t
val of_level : level -> t
val all : t list
val name : t -> string

val custom : n:int -> t
(** Reduced-degree instance (N a power of two ≥ 4) for fast tests. *)
