type reg = int

type instr =
  | And of reg * reg
  | Or of reg * reg
  | Xor of reg * reg
  | Not of reg
  | Const of bool

type t = {
  num_vars : int;
  instrs : instr array;
  outputs : reg array;
  valid : reg option;
}

type builder = {
  num_vars : int;
  cse : bool;
  mutable rev_instrs : instr list;
  mutable next : reg;
  memo : (instr, reg) Hashtbl.t;
}

let builder ?(cse = true) ~num_vars () =
  {
    num_vars;
    cse;
    rev_instrs = [];
    next = num_vars;
    memo = Hashtbl.create 256;
  }

let var b i =
  assert (i >= 0 && i < b.num_vars);
  i

let emit b instr =
  match if b.cse then Hashtbl.find_opt b.memo instr else None with
  | Some r -> r
  | None ->
    let r = b.next in
    b.next <- r + 1;
    b.rev_instrs <- instr :: b.rev_instrs;
    if b.cse then Hashtbl.replace b.memo instr r;
    r

let const b v = emit b (Const v)

(* Constant registers are recognized structurally: with CSE on, [const]
   always returns the same register for the same Boolean, so we can track
   the two possible constants for simplification. *)
let is_const b r =
  match Hashtbl.find_opt b.memo (Const true) with
  | Some r' when r' = r -> Some true
  | _ -> (
    match Hashtbl.find_opt b.memo (Const false) with
    | Some r' when r' = r -> Some false
    | _ -> None)

let norm2 x y = if x <= y then (x, y) else (y, x)

let band b x y =
  match (is_const b x, is_const b y) with
  | Some true, _ -> y
  | _, Some true -> x
  | Some false, _ | _, Some false -> const b false
  | None, None ->
    if x = y then x
    else begin
      let x, y = norm2 x y in
      emit b (And (x, y))
    end

let bor b x y =
  match (is_const b x, is_const b y) with
  | Some false, _ -> y
  | _, Some false -> x
  | Some true, _ | _, Some true -> const b true
  | None, None ->
    if x = y then x
    else begin
      let x, y = norm2 x y in
      emit b (Or (x, y))
    end

let bxor b x y =
  match (is_const b x, is_const b y) with
  | Some false, _ -> y
  | _, Some false -> x
  | Some true, _ -> emit b (Not y)
  | _, Some true -> emit b (Not x)
  | None, None ->
    if x = y then const b false
    else begin
      let x, y = norm2 x y in
      emit b (Xor (x, y))
    end

let bnot b x =
  match is_const b x with
  | Some v -> const b (not v)
  | None -> emit b (Not x)

let mux b ~sel ~if_one ~if_zero =
  if if_one = if_zero then if_one
  else bor b (band b sel if_one) (band b (bnot b sel) if_zero)

let band_list b = function
  | [] -> const b true
  | r :: rest -> List.fold_left (band b) r rest

let bor_list b = function
  | [] -> const b false
  | r :: rest -> List.fold_left (bor b) r rest

let validate (t : t) =
  if t.num_vars < 0 then Error "negative num_vars"
  else begin
    let n = Array.length t.instrs in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
    (* Operands of instruction i may only name registers defined before it:
       inputs [0, num_vars) and results of instructions [0, i). *)
    let operand i r =
      if r < 0 then fail "instr %d: negative operand r%d" i r
      else if r >= t.num_vars + i then
        fail "instr %d: forward/self reference to r%d (defined registers: %d)"
          i r (t.num_vars + i)
    in
    Array.iteri
      (fun i instr ->
        match instr with
        | And (x, y) | Or (x, y) | Xor (x, y) ->
          operand i x;
          operand i y
        | Not x -> operand i x
        | Const _ -> ())
      t.instrs;
    let sink what r =
      if r < 0 || r >= t.num_vars + n then
        fail "%s register r%d out of range (registers: %d)" what r
          (t.num_vars + n)
    in
    Array.iteri (fun i r -> sink (Printf.sprintf "output %d" i) r) t.outputs;
    (match t.valid with Some r -> sink "valid" r | None -> ());
    match !err with None -> Ok () | Some e -> Error e
  end

let make ~num_vars ~instrs ~outputs ~valid =
  let t = { num_vars; instrs; outputs; valid } in
  match validate t with Ok () -> Ok t | Error e -> Error e

let finish b ~outputs ~valid =
  let t =
    {
      num_vars = b.num_vars;
      instrs = Array.of_list (List.rev b.rev_instrs);
      outputs;
      valid;
    }
  in
  match validate t with
  | Ok () -> t
  | Error e -> invalid_arg ("Gate.finish: " ^ e)

let prune (t : t) =
  let n = Array.length t.instrs in
  let nv = t.num_vars in
  let live = Array.make n false in
  let stack = ref [] in
  let touch r =
    if r >= nv then begin
      let i = r - nv in
      if not live.(i) then begin
        live.(i) <- true;
        stack := i :: !stack
      end
    end
  in
  Array.iter touch t.outputs;
  (match t.valid with Some r -> touch r | None -> ());
  let rec drain () =
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      (match t.instrs.(i) with
      | And (x, y) | Or (x, y) | Xor (x, y) ->
        touch x;
        touch y
      | Not x -> touch x
      | Const _ -> ());
      drain ()
  in
  drain ();
  let map = Array.make (nv + n) (-1) in
  for v = 0 to nv - 1 do
    map.(v) <- v
  done;
  let rev = ref [] in
  let next = ref nv in
  for i = 0 to n - 1 do
    if live.(i) then begin
      let f r = map.(r) in
      let instr =
        match t.instrs.(i) with
        | And (x, y) -> And (f x, f y)
        | Or (x, y) -> Or (f x, f y)
        | Xor (x, y) -> Xor (f x, f y)
        | Not x -> Not (f x)
        | Const v -> Const v
      in
      map.(nv + i) <- !next;
      incr next;
      rev := instr :: !rev
    end
  done;
  {
    t with
    instrs = Array.of_list (List.rev !rev);
    outputs = Array.map (fun r -> map.(r)) t.outputs;
    valid = Option.map (fun r -> map.(r)) t.valid;
  }

(* FNV-1a over the complete structure.  Computed once at compile time
   (the trusted moment) and re-checked by integrity monitors: any later
   in-memory corruption of the table — opcode flips included — changes
   the digest, independently of whether a sampled input would expose it. *)
let digest (t : t) =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001b3L
  in
  mix t.num_vars;
  Array.iter
    (fun instr ->
      match instr with
      | And (x, y) ->
        mix 1;
        mix x;
        mix y
      | Or (x, y) ->
        mix 2;
        mix x;
        mix y
      | Xor (x, y) ->
        mix 3;
        mix x;
        mix y
      | Not x ->
        mix 4;
        mix x
      | Const b ->
        mix 5;
        mix (Bool.to_int b))
    t.instrs;
  Array.iter mix t.outputs;
  (match t.valid with None -> mix (-7) | Some r -> mix r);
  !h

let gate_count (t : t) =
  Array.fold_left
    (fun acc i -> match i with Const _ -> acc | And _ | Or _ | Xor _ | Not _ -> acc + 1)
    0 t.instrs

let depth (t : t) =
  let d = Array.make (t.num_vars + Array.length t.instrs) 0 in
  Array.iteri
    (fun i instr ->
      let r = t.num_vars + i in
      d.(r) <-
        (match instr with
        | Const _ -> 0
        | Not x -> d.(x) + 1
        | And (x, y) | Or (x, y) | Xor (x, y) -> max d.(x) d.(y) + 1))
    t.instrs;
  Array.fold_left max 0 d

let pp_stats fmt (t : t) =
  Format.fprintf fmt "vars=%d gates=%d depth=%d outputs=%d valid=%b"
    t.num_vars (gate_count t) (depth t) (Array.length t.outputs)
    (t.valid <> None)
