(* Tests for the ctg_obs observability layer: histogram merge algebra and
   quantile error bounds, registry exposition and reset atomicity, trace
   JSON parse-back, CT/entropy monitors, and the Engine.Metrics
   snapshot-vs-reset torn-read guarantee. *)

module Obs = Ctg_obs
module Histo = Ctg_obs.Histo
module Registry = Ctg_obs.Registry
module Trace = Ctg_obs.Trace
module Jsonx = Ctg_obs.Jsonx
module Ctmon = Ctg_obs.Ctmon
module Promtext = Ctg_obs.Promtext
module Prof = Ctg_prof.Prof

(* --------------------------------------------------------------------- *)
(* Histograms *)

let histo_of_list xs =
  let h = Histo.create () in
  List.iter (Histo.add h) xs;
  h

let values_gen = QCheck.(list_of_size Gen.(0 -- 200) (int_bound 100_000))

let test_histo_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"Histo.merge commutative"
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      let a = histo_of_list xs and b = histo_of_list ys in
      Histo.equal (Histo.merge a b) (Histo.merge b a))

let test_histo_merge_associative =
  QCheck.Test.make ~count:200 ~name:"Histo.merge associative"
    QCheck.(triple values_gen values_gen values_gen)
    (fun (xs, ys, zs) ->
      let a = histo_of_list xs
      and b = histo_of_list ys
      and c = histo_of_list zs in
      Histo.equal
        (Histo.merge (Histo.merge a b) c)
        (Histo.merge a (Histo.merge b c)))

let test_histo_merge_counts =
  QCheck.Test.make ~count:200 ~name:"Histo.merge adds counts and sums"
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      let a = histo_of_list xs and b = histo_of_list ys in
      let m = Histo.merge a b in
      Histo.count m = Histo.count a + Histo.count b
      && Histo.sum m = Histo.sum a + Histo.sum b
      (* merge leaves its inputs unchanged *)
      && Histo.count a = List.length xs
      && Histo.count b = List.length ys)

(* The documented error bound: for a non-empty histogram the estimate for
   quantile q lies in [v, v + v/4 + 1] where v is the exact q-quantile
   (rank ceil(q*count), 1-based, clamped to [1, count]). *)
let exact_quantile xs q =
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  List.nth sorted (rank - 1)

let test_histo_quantile_bound =
  QCheck.Test.make ~count:300 ~name:"Histo.quantile within [v, v + v/4 + 1]"
    QCheck.(list_of_size Gen.(1 -- 300) (int_bound 1_000_000))
    (fun xs ->
      let h = histo_of_list xs in
      List.for_all
        (fun q ->
          let v = exact_quantile xs q in
          let e = Histo.quantile h q in
          v <= e && e <= v + (v / 4) + 1)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

let test_histo_edge_cases () =
  let h = Histo.create () in
  Alcotest.(check int) "empty quantile" 0 (Histo.quantile h 0.5);
  Alcotest.(check int) "empty count" 0 (Histo.count h);
  Histo.add h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Histo.quantile h 1.0);
  Alcotest.(check int) "clamped sum" 0 (Histo.sum h);
  let c = Histo.copy h in
  Histo.add c 7;
  Alcotest.(check int) "copy is independent" 1 (Histo.count h);
  Alcotest.(check int) "copy got the value" 2 (Histo.count c);
  let s = Histo.summary c in
  Alcotest.(check int) "summary min" 0 s.Histo.min;
  Alcotest.(check int) "summary max" 7 s.Histo.max;
  (* buckets are ascending and cover every recorded value *)
  let b = Histo.buckets c in
  Alcotest.(check int) "bucket total" 2
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 b);
  ignore
    (List.fold_left
       (fun prev (lo, hi, _) ->
         Alcotest.(check bool) "lo <= hi" true (lo <= hi);
         Alcotest.(check bool) "ascending" true (prev <= lo);
         hi)
       (-1) b)

(* Adversarial inputs for the quantile bound: the log-bucket boundaries
   (4+s)*2^(m-2) and their off-by-one neighbours, which is exactly where
   the relative bucket width — and hence the documented error v/4 + 1 —
   peaks.  A random values_gen draw almost never lands on these. *)
let test_histo_adversarial_boundaries () =
  let xs = ref [] in
  for m = 2 to 24 do
    for s = 0 to 3 do
      let b = (4 + s) * (1 lsl (m - 2)) in
      xs := (b - 1) :: b :: (b + 1) :: !xs
    done
  done;
  let xs = !xs in
  let h = histo_of_list xs in
  List.iter
    (fun q ->
      let v = exact_quantile xs q in
      let e = Histo.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%g: estimate %d within [%d, %d]" q e v
           (v + (v / 4) + 1))
        true
        (v <= e && e <= v + (v / 4) + 1))
    [ 0.0; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

(* --------------------------------------------------------------------- *)
(* Registry *)

let test_registry_basics () =
  let r = Registry.create () in
  let c = Registry.counter r ~labels:[ ("sigma", "2") ] "samples_total" in
  Registry.add c 40;
  Registry.incr c;
  Alcotest.(check int) "counter value" 41 (Registry.value c);
  let c' = Registry.counter r ~labels:[ ("sigma", "2") ] "samples_total" in
  Registry.incr c';
  Alcotest.(check int) "same handle for same (name, labels)" 42
    (Registry.value c);
  let g = Registry.gauge r "entropy_bits" in
  Registry.set_gauge g 8.5;
  Alcotest.(check (float 1e-9)) "gauge" 8.5 (Registry.gauge_value g)

let test_registry_label_canonicalization () =
  let r = Registry.create () in
  let a = Registry.counter r ~labels:[ ("b", "2"); ("a", "1") ] "x_total" in
  let b = Registry.counter r ~labels:[ ("a", "1"); ("b", "2") ] "x_total" in
  Registry.incr a;
  Registry.incr b;
  Alcotest.(check int) "label order irrelevant" 2 (Registry.value a)

let test_registry_kind_mismatch () =
  let r = Registry.create () in
  ignore (Registry.counter r "metric_x");
  Alcotest.check_raises "histo under a counter name"
    (Invalid_argument "Registry: metric_x already registered as a counter")
    (fun () -> ignore (Registry.histo r "metric_x"))

let test_registry_exposition_deterministic () =
  (* Same metrics registered in different orders expose identically. *)
  let build order =
    let r = Registry.create () in
    List.iter
      (fun name ->
        let c = Registry.counter r ~labels:[ ("sigma", "2") ] name in
        Registry.add c (String.length name))
      order;
    Registry.set_gauge (Registry.gauge r "ct_entropy_bits_per_sample") 7.25;
    Registry.observe (Registry.histo r "chunk_service_ns") 1000;
    Registry.expose_text r
  in
  let t1 = build [ "alpha_total"; "beta_total"; "gamma_total" ] in
  let t2 = build [ "gamma_total"; "alpha_total"; "beta_total" ] in
  Alcotest.(check string) "order-independent exposition" t1 t2;
  Alcotest.(check bool) "has TYPE comments" true
    (String.length t1 > 0
    && List.exists
         (fun line -> String.starts_with ~prefix:"# TYPE" line)
         (String.split_on_char '\n' t1))

let test_registry_json_parses_back () =
  let r = Registry.create () in
  Registry.add (Registry.counter r ~labels:[ ("sigma", "215") ] "samples_total") 63;
  Registry.observe (Registry.histo r "service_ns") 12345;
  let j = Registry.to_json r in
  match Jsonx.parse (Jsonx.to_string j) with
  | Error e -> Alcotest.failf "exposition JSON does not parse: %s" e
  | Ok parsed ->
    let metrics =
      match Option.bind (Jsonx.member "metrics" parsed) Jsonx.to_list with
      | Some l -> l
      | None -> Alcotest.fail "missing metrics array"
    in
    Alcotest.(check int) "two metrics" 2 (List.length metrics)

let test_promtext_roundtrip () =
  (* The /metrics contract: Promtext.parse consumes exactly what
     Registry.expose_text writes, and render inverts it byte-for-byte —
     including escaped label values and histogram expansion. *)
  let r = Registry.create () in
  Registry.add
    (Registry.counter r
       ~labels:[ ("lane", "3"); ("sigma", "6.15543") ]
       "assure_samples_total")
    12345;
  Registry.add (Registry.counter r "plain_total") 1;
  Registry.set_gauge
    (Registry.gauge r ~labels:[ ("probe", "a\"b\\c\nd") ] "leak_t")
    (-3.75);
  let h = Registry.histo r "service_ns" in
  List.iter (Registry.observe h) [ 1; 5; 17; 4096 ];
  let text = Registry.expose_text r in
  match Promtext.parse text with
  | Error e -> Alcotest.failf "Promtext.parse rejected expose_text: %s" e
  | Ok items ->
    Alcotest.(check string) "render inverts parse" text (Promtext.render items);
    Alcotest.(check (option (float 1e-9)))
      "labeled counter readable" (Some 12345.0)
      (Promtext.value items ~name:"assure_samples_total"
         ~labels:[ ("lane", "3"); ("sigma", "6.15543") ]);
    Alcotest.(check (option (float 1e-9)))
      "escapes survive the trip" (Some (-3.75))
      (Promtext.value items ~name:"leak_t"
         ~labels:[ ("probe", "a\"b\\c\nd") ]);
    Alcotest.(check (option (float 1e-9)))
      "histogram count expanded" (Some 4.0)
      (Promtext.value items ~name:"service_ns_count" ~labels:[]);
    let names =
      List.filter_map (function
        | Promtext.Type { name; _ } -> Some name
        | Promtext.Sample _ -> None)
      items
    in
    Alcotest.(check bool) "one TYPE per family" true
      (List.length names = List.length (List.sort_uniq compare names))

let test_promtext_rejects_garbage () =
  (match Promtext.parse "this is { not metrics" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
    Alcotest.(check bool) "error names a line" true
      (String.length e > 0));
  match Promtext.parse "x_total nan_but_not 1" with
  | Ok _ -> Alcotest.fail "accepted a non-float sample"
  | Error _ -> ()

let test_registry_reset_generation () =
  let r = Registry.create () in
  let c = Registry.counter r "n_total" in
  Registry.add c 5;
  Alcotest.(check int) "gen 0" 0 (Registry.generation r);
  Registry.reset r;
  Alcotest.(check int) "gen 1" 1 (Registry.generation r);
  Alcotest.(check int) "counter zeroed" 0 (Registry.value c);
  Registry.reset r;
  Alcotest.(check int) "gen 2" 2 (Registry.generation r)

(* Snapshot racing reset must observe all-old or all-zero, never a mix.
   Populate two counters with equal values, then race one reset against a
   read_consistent reader, many times. *)
let test_registry_reset_not_torn () =
  let r = Registry.create () in
  let a = Registry.counter r "a_total" and b = Registry.counter r "b_total" in
  for _trial = 1 to 200 do
    Registry.add a 1_000_000;
    Registry.add b 1_000_000;
    let resetter = Domain.spawn (fun () -> Registry.reset r) in
    let va, vb =
      Registry.read_consistent r (fun () ->
          (Registry.value a, Registry.value b))
    in
    Domain.join resetter;
    if va <> vb then
      Alcotest.failf "torn snapshot: a_total=%d b_total=%d" va vb;
    Registry.reset r
  done

(* --------------------------------------------------------------------- *)
(* Engine.Metrics snapshot vs reset *)

let test_engine_metrics_snapshot_not_torn () =
  let m = Ctg_engine.Metrics.create ~domains:2 () in
  let populate () =
    Ctg_engine.Metrics.record m ~domain:0 ~samples:63 ~batches:1 ~bits:6300
      ~work:100 ~gates:5000;
    Ctg_engine.Metrics.record m ~domain:1 ~samples:63 ~batches:1 ~bits:6300
      ~work:100 ~gates:5000
  in
  for _trial = 1 to 100 do
    populate ();
    let resetter = Domain.spawn (fun () -> Ctg_engine.Metrics.reset m) in
    let s = Ctg_engine.Metrics.snapshot m in
    Domain.join resetter;
    (* Either the pre-reset state (2 batches, proportional counters) or
       the post-reset state (all zero) — never a half-zeroed mix. *)
    let all_old =
      s.Ctg_engine.Metrics.samples = 126
      && s.Ctg_engine.Metrics.batches = 2
      && s.Ctg_engine.Metrics.bits_consumed = 12600
      && s.Ctg_engine.Metrics.gate_evals = 10000
    and all_zero =
      s.Ctg_engine.Metrics.samples = 0
      && s.Ctg_engine.Metrics.batches = 0
      && s.Ctg_engine.Metrics.bits_consumed = 0
      && s.Ctg_engine.Metrics.gate_evals = 0
    in
    if not (all_old || all_zero) then
      Alcotest.failf
        "torn engine snapshot: samples=%d batches=%d bits=%d gates=%d"
        s.Ctg_engine.Metrics.samples s.Ctg_engine.Metrics.batches
        s.Ctg_engine.Metrics.bits_consumed s.Ctg_engine.Metrics.gate_evals;
    Ctg_engine.Metrics.reset m
  done

let test_engine_metrics_accounting () =
  let m = Ctg_engine.Metrics.create ~domains:2 () in
  Ctg_engine.Metrics.record m ~domain:1 ~samples:63 ~batches:1 ~bits:6300
    ~work:42 ~gates:3706;
  Ctg_engine.Metrics.add_fallback m 2;
  Ctg_engine.Metrics.observe_chunk_service m 1_000_000;
  let s = Ctg_engine.Metrics.snapshot m in
  Alcotest.(check int) "samples" 63 s.Ctg_engine.Metrics.samples;
  Alcotest.(check int) "per-domain attribution" 63
    s.Ctg_engine.Metrics.per_domain_samples.(1);
  Alcotest.(check int) "idle domain" 0
    s.Ctg_engine.Metrics.per_domain_samples.(0);
  Alcotest.(check int) "fallbacks" 2 s.Ctg_engine.Metrics.fallback_resamples;
  Alcotest.(check int) "service histo count" 1
    s.Ctg_engine.Metrics.chunk_service.Histo.count

(* --------------------------------------------------------------------- *)
(* Trace *)

let with_tracing f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:(fun () -> Trace.disable ()) f

let test_trace_spans_and_export () =
  with_tracing (fun () ->
      let result =
        Trace.with_span "outer" ~cat:"test" (fun () ->
            Trace.with_span "inner" ~cat:"test"
              ~args:(fun () -> [ ("k", "v") ])
              (fun () -> 1 + 1))
      in
      Alcotest.(check int) "with_span returns" 2 result;
      Trace.instant "marker" ~cat:"test";
      let evs = Trace.events () in
      Alcotest.(check int) "three events" 3 (List.length evs);
      let names = List.map (fun e -> e.Trace.name) evs in
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " recorded") true (List.mem n names))
        [ "outer"; "inner"; "marker" ];
      let inner = List.find (fun e -> e.Trace.name = "inner") evs in
      let outer = List.find (fun e -> e.Trace.name = "outer") evs in
      let marker = List.find (fun e -> e.Trace.name = "marker") evs in
      Alcotest.(check bool) "inner nested in outer" true
        (inner.Trace.ts_ns >= outer.Trace.ts_ns
        && inner.Trace.dur_ns <= outer.Trace.dur_ns);
      Alcotest.(check int) "instant has dur -1" (-1) marker.Trace.dur_ns;
      Alcotest.(check (list (pair string string))) "span args" [ ("k", "v") ]
        inner.Trace.args;
      (* Chrome JSON parses back and has the right shape. *)
      match Jsonx.parse (Jsonx.to_string (Trace.export ())) with
      | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
      | Ok j ->
        let evs_json =
          match Option.bind (Jsonx.member "traceEvents" j) Jsonx.to_list with
          | Some l -> l
          | None -> Alcotest.fail "missing traceEvents"
        in
        Alcotest.(check int) "traceEvents count" 3 (List.length evs_json);
        List.iter
          (fun e ->
            let field name = Option.bind (Jsonx.member name e) Jsonx.to_str in
            let ph =
              match field "ph" with
              | Some p -> p
              | None -> Alcotest.fail "event without ph"
            in
            Alcotest.(check bool) "ph is X or i" true (ph = "X" || ph = "i");
            Alcotest.(check bool) "has ts" true
              (Option.is_some (Jsonx.member "ts" e));
            Alcotest.(check bool) "has tid" true
              (Option.is_some (Jsonx.member "tid" e)))
          evs_json;
        Alcotest.(check (option int)) "no drops" (Some 0)
          (Option.bind (Jsonx.member "ctg_dropped_events" j) Jsonx.to_int))

let test_trace_disabled_is_free_of_effects () =
  Trace.reset ();
  Alcotest.(check bool) "disabled" false (Trace.is_enabled ());
  let r = Trace.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "still runs the thunk" 7 r;
  Alcotest.(check int) "records nothing" 0 (List.length (Trace.events ()))

let test_trace_exception_still_records () =
  with_tracing (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "x") with _ -> ());
      let evs = Trace.events () in
      Alcotest.(check int) "span recorded on exception" 1 (List.length evs))

(* The causal chain of one request: flow start inside the request span,
   a step inside the batch span, the end inside the sign span — all
   sharing one id, with the terminator bound to its enclosing slice. *)
let test_trace_flow_events () =
  with_tracing (fun () ->
      Trace.with_span "request" ~cat:"serve" (fun () ->
          Trace.flow_start ~id:7 "sig");
      Trace.with_span "batch" ~cat:"serve" (fun () ->
          Trace.flow_step ~id:7 "sig");
      Trace.with_span "sign" ~cat:"falcon" (fun () ->
          Trace.flow_end ~id:7 "sig");
      let evs = Trace.events () in
      Alcotest.(check int) "three spans + three flow events" 6
        (List.length evs);
      let flow ph =
        List.find (fun e -> e.Trace.ph = ph && e.Trace.name = "sig") evs
      in
      List.iter
        (fun e -> Alcotest.(check int) "flow id shared" 7 e.Trace.id)
        [ flow Trace.Flow_start; flow Trace.Flow_step; flow Trace.Flow_end ];
      List.iter
        (fun e ->
          Alcotest.(check bool) "spans carry no flow id" true
            (e.Trace.ph <> Trace.Complete || e.Trace.id = -1))
        evs;
      match Jsonx.parse (Jsonx.to_string (Trace.export ())) with
      | Error e -> Alcotest.failf "flow trace JSON does not parse: %s" e
      | Ok j ->
        let evs_json =
          match Option.bind (Jsonx.member "traceEvents" j) Jsonx.to_list with
          | Some l -> l
          | None -> Alcotest.fail "missing traceEvents"
        in
        let with_ph p =
          List.filter
            (fun e -> Jsonx.member "ph" e = Some (Jsonx.Str p))
            evs_json
        in
        List.iter
          (fun (p, label) ->
            match with_ph p with
            | [ e ] ->
              Alcotest.(check (option int)) (label ^ " keeps the flow id")
                (Some 7)
                (Option.bind (Jsonx.member "id" e) Jsonx.to_int)
            | l -> Alcotest.failf "expected one %s event, got %d" label
                     (List.length l))
          [ ("s", "flow start"); ("t", "flow step"); ("f", "flow end") ];
        (match with_ph "f" with
        | [ e ] ->
          Alcotest.(check (option string))
            "flow end binds to enclosing slice" (Some "e")
            (Option.bind (Jsonx.member "bp" e) Jsonx.to_str)
        | _ -> assert false))

(* Multi-domain emission into deliberately tiny rings: whatever survives
   the wrap must be whole (args still matching) and come from the newest
   window, with every overwritten event counted as dropped. *)
let test_trace_ring_wraparound () =
  Trace.reset ();
  Trace.enable ~capacity:32 ();
  Fun.protect
    ~finally:(fun () -> Trace.disable ())
    (fun () ->
      let per_domain = 100 in
      let doms =
        Array.init 2 (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to per_domain - 1 do
                  Trace.instant "wrap" ~cat:"test"
                    ~args:(fun () ->
                      [ ("k", string_of_int ((d * 1000) + i)) ])
                done))
      in
      Array.iter Domain.join doms;
      let evs =
        List.filter (fun e -> e.Trace.name = "wrap") (Trace.events ())
      in
      let dropped = Trace.dropped () in
      Alcotest.(check bool) "rings overwrote" true
        (dropped >= 2 * (per_domain - 32));
      Alcotest.(check bool) "survivors remain" true (List.length evs > 0);
      Alcotest.(check int) "survivors + drops = emitted" (2 * per_domain)
        (List.length evs + dropped);
      List.iter
        (fun e ->
          match e.Trace.args with
          | [ ("k", v) ] ->
            let k = int_of_string v in
            Alcotest.(check bool) "survivor is from the newest window" true
              (k mod 1000 >= per_domain - 32)
          | args ->
            Alcotest.failf "torn event args (%d pairs)" (List.length args))
        evs)

(* Per-span Gc capture: a span that allocates a 10k-word array must show
   it in its deltas, every delta is non-negative, and the observer hook
   sees each captured span.  Arrays over 256 words allocate directly on
   the major heap, so the assertion checks the minor+major sum. *)
let test_trace_gc_capture_args () =
  with_tracing (fun () ->
      Trace.set_gc_capture true;
      let observed = ref 0 in
      Trace.set_gc_observer
        (Some
           (fun ~name:_ ~minor ~promoted ~major ~pause_ns ~dur_ns ->
             Alcotest.(check bool) "observer deltas non-negative" true
               (minor >= 0.0 && promoted >= 0.0 && major >= 0.0
              && pause_ns >= 0 && dur_ns >= 0);
             incr observed));
      Fun.protect
        ~finally:(fun () ->
          Trace.set_gc_observer None;
          Trace.set_gc_capture false)
        (fun () ->
          Trace.with_span "alloc_heavy" (fun () ->
              ignore (Sys.opaque_identity (Array.make 10_000 0.0)));
          Trace.with_span "alloc_light" (fun () -> ());
          let evs = Trace.events () in
          let span name = List.find (fun e -> e.Trace.name = name) evs in
          let words e key =
            match List.assoc_opt key e.Trace.args with
            | Some v -> float_of_string v
            | None -> Alcotest.failf "%s missing %s" e.Trace.name key
          in
          List.iter
            (fun e ->
              List.iter
                (fun key ->
                  Alcotest.(check bool)
                    (e.Trace.name ^ " " ^ key ^ " non-negative") true
                    (words e key >= 0.0))
                [
                  "alloc_minor_words";
                  "alloc_promoted_words";
                  "alloc_major_words";
                ])
            [ span "alloc_heavy"; span "alloc_light" ];
          Alcotest.(check bool) "10k-word array visible in span deltas" true
            (words (span "alloc_heavy") "alloc_minor_words"
             +. words (span "alloc_heavy") "alloc_major_words"
             >= 10_000.0);
          Alcotest.(check int) "observer saw both spans" 2 !observed))

(* The ctg_prof aggregation on top: labels ranked by minor words. *)
let test_prof_report_ranking () =
  let was_tracing = Trace.is_enabled () in
  Trace.reset ();
  Prof.enable ();
  Prof.reset ();
  Fun.protect
    ~finally:(fun () ->
      Prof.disable ();
      if not was_tracing then Trace.disable ())
    (fun () ->
      Alcotest.(check bool) "profiling active" true (Prof.active ());
      for _ = 1 to 3 do
        Trace.with_span "hungry" (fun () ->
            (* 100-word arrays stay in the minor heap. *)
            for _ = 1 to 100 do
              ignore (Sys.opaque_identity (Array.make 100 0.0))
            done)
      done;
      Trace.with_span "frugal" (fun () ->
          ignore (Sys.opaque_identity (ref 0)));
      let rows = Prof.report () in
      let row label =
        match List.find_opt (fun r -> r.Prof.label = label) rows with
        | Some r -> r
        | None -> Alcotest.failf "missing row %s" label
      in
      Alcotest.(check int) "hungry span count" 3 (row "hungry").Prof.spans;
      Alcotest.(check int) "frugal span count" 1 (row "frugal").Prof.spans;
      Alcotest.(check bool) "hungry out-allocates frugal" true
        ((row "hungry").Prof.minor_words > (row "frugal").Prof.minor_words);
      let pos label =
        let rec go i = function
          | [] -> Alcotest.failf "row %s not ranked" label
          | r :: _ when r.Prof.label = label -> i
          | _ :: tl -> go (i + 1) tl
        in
        go 0 rows
      in
      Alcotest.(check bool) "ranked by minor words" true
        (pos "hungry" < pos "frugal");
      match Jsonx.parse (Jsonx.to_string (Prof.report_json ())) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "prof report JSON does not parse: %s" e);
  Prof.reset ()

(* --------------------------------------------------------------------- *)
(* Jsonx *)

let test_jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("s", Jsonx.Str "a\"b\\c\nd");
        ("n", Jsonx.Num 1.5);
        ("i", Jsonx.Num 42.0);
        ("b", Jsonx.Bool true);
        ("z", Jsonx.Null);
        ("l", Jsonx.List [ Jsonx.Num 1.0; Jsonx.Str "x"; Jsonx.Bool false ]);
      ]
  in
  (match Jsonx.parse (Jsonx.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact roundtrip" true (v = v')
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  match Jsonx.parse (Jsonx.pretty v) with
  | Ok v' -> Alcotest.(check bool) "pretty roundtrip" true (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let test_jsonx_rejects_garbage () =
  List.iter
    (fun s ->
      match Jsonx.parse s with
      | Ok _ -> Alcotest.failf "parsed garbage: %s" s
      | Error _ -> ())
    [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "" ]

(* --------------------------------------------------------------------- *)
(* CT / entropy monitor *)

let test_ctmon_constant_time_clean () =
  let m = Ctmon.create ~registry:(Registry.create ()) () in
  Alcotest.(check int) "unlearned" 0 (Ctmon.expected_bits m);
  for _ = 1 to 100 do
    Ctmon.observe_batch m ~bits:6300 ~samples:63 ()
  done;
  Alcotest.(check int) "learned bits" 6300 (Ctmon.expected_bits m);
  Alcotest.(check int) "no violations" 0 (Ctmon.violations m);
  Alcotest.(check int) "no fallbacks" 0 (Ctmon.fallback_batches m);
  Alcotest.(check (float 1e-6)) "entropy bits/sample" 100.0
    (Ctmon.entropy_bits_per_sample m)

(* A non-constant-time sampler stub: per-batch bit counts vary without a
   declared fallback — the monitor must fire. *)
let test_ctmon_fires_on_non_ct_stub () =
  let m = Ctmon.create ~registry:(Registry.create ()) () in
  Ctmon.observe_batch m ~bits:100 ~samples:1 ();
  Ctmon.observe_batch m ~bits:100 ~samples:1 ();
  Ctmon.observe_batch m ~bits:107 ~samples:1 ();
  Ctmon.observe_batch m ~bits:93 ~samples:1 ();
  Alcotest.(check int) "two violations" 2 (Ctmon.violations m);
  Alcotest.(check int) "no fallbacks claimed" 0 (Ctmon.fallback_batches m)

let test_ctmon_fallback_classification () =
  let m = Ctmon.create ~registry:(Registry.create ()) () in
  Ctmon.observe_batch m ~bits:6300 ~samples:63 ();
  Ctmon.observe_batch m ~bits:6350 ~samples:63 ~fallback:true ();
  Alcotest.(check int) "declared fallback is not a violation" 0
    (Ctmon.violations m);
  Alcotest.(check int) "fallback counted" 1 (Ctmon.fallback_batches m)

(* Degraded-engine edge cases: fallback batches may arrive first, last,
   alternating or exclusively, and must never teach the expectation. *)

let test_ctmon_first_batch_is_fallback () =
  let m = Ctmon.create ~registry:(Registry.create ()) () in
  Ctmon.observe_batch m ~bits:7777 ~samples:63 ~fallback:true ();
  Alcotest.(check int) "fallback did not teach" 0 (Ctmon.expected_bits m);
  (* The first *normal* batch teaches, and is judged against itself. *)
  Ctmon.observe_batch m ~bits:6300 ~samples:63 ();
  Alcotest.(check int) "normal batch taught" 6300 (Ctmon.expected_bits m);
  Ctmon.observe_batch m ~bits:6300 ~samples:63 ();
  Alcotest.(check int) "no violations" 0 (Ctmon.violations m);
  Alcotest.(check int) "one fallback" 1 (Ctmon.fallback_batches m)

let test_ctmon_alternating_fallback_normal () =
  let m = Ctmon.create ~registry:(Registry.create ()) () in
  for i = 1 to 10 do
    if i mod 2 = 0 then
      (* Data-dependent fallback draws, all different. *)
      Ctmon.observe_batch m ~bits:(6300 + (i * 17)) ~samples:63 ~fallback:true
        ()
    else Ctmon.observe_batch m ~bits:6300 ~samples:63 ()
  done;
  Alcotest.(check int) "alternation stays clean" 0 (Ctmon.violations m);
  Alcotest.(check int) "five fallbacks" 5 (Ctmon.fallback_batches m);
  Alcotest.(check int) "expectation untouched" 6300 (Ctmon.expected_bits m)

let test_ctmon_fallback_only_then_deviating_normal () =
  let m = Ctmon.create ~registry:(Registry.create ()) () in
  (* A degraded pool's whole life: nothing but fallback batches. *)
  for i = 1 to 20 do
    Ctmon.observe_batch m ~bits:(100 + i) ~samples:1 ~fallback:true ()
  done;
  Alcotest.(check int) "still unlearned" 0 (Ctmon.expected_bits m);
  Alcotest.(check int) "no violations" 0 (Ctmon.violations m);
  (* Had any fallback taught, this first normal batch would be flagged. *)
  Ctmon.observe_batch m ~bits:6300 ~samples:63 ();
  Alcotest.(check int) "first normal batch clean" 0 (Ctmon.violations m);
  (* ... and a genuinely deviating normal batch still is. *)
  Ctmon.observe_batch m ~bits:6301 ~samples:63 ();
  Alcotest.(check int) "real deviation flagged" 1 (Ctmon.violations m)

let test_ctmon_record_chunk () =
  let m = Ctmon.create ~registry:(Registry.create ()) () in
  Ctmon.record_chunk m ~batches:16 ~bits:100_800 ~samples:1008 ~deviations:3
    ~fallbacks:2;
  Alcotest.(check int) "bulk violations" 3 (Ctmon.violations m);
  Alcotest.(check int) "bulk fallbacks" 2 (Ctmon.fallback_batches m);
  Alcotest.(check (float 1e-6)) "bulk entropy" 100.0
    (Ctmon.entropy_bits_per_sample m)

(* --------------------------------------------------------------------- *)
(* Overhead benchmark plumbing (tiny run: field sanity, not timing) *)

let test_obs_bench_entry_sane () =
  let e =
    Ctg_engine.Obs_bench.measure ~samples:(63 * 10) ~rounds:1 ~min_time:0.01
      ~sigma:"2" ~precision:16 ~tail_cut:13 ()
  in
  Alcotest.(check bool) "plain_ns > 0" true (e.Ctg_engine.Obs_bench.plain_ns > 0.0);
  Alcotest.(check bool) "metered_ns > 0" true
    (e.Ctg_engine.Obs_bench.metered_ns > 0.0);
  Alcotest.(check int) "bitsliced sampler is CT" 0
    e.Ctg_engine.Obs_bench.ct_violations;
  Alcotest.(check bool) "entropy measured" true
    (e.Ctg_engine.Obs_bench.entropy_bits_per_sample > 0.0);
  match Jsonx.parse (Jsonx.to_string (Ctg_engine.Obs_bench.to_json [ e ])) with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "BENCH_obs JSON does not parse: %s" err

(* --------------------------------------------------------------------- *)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "histo",
        qcheck
          [
            test_histo_merge_commutative;
            test_histo_merge_associative;
            test_histo_merge_counts;
            test_histo_quantile_bound;
          ]
        @ [
            Alcotest.test_case "edge cases" `Quick test_histo_edge_cases;
            Alcotest.test_case "adversarial bucket boundaries" `Quick
              test_histo_adversarial_boundaries;
          ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_basics;
          Alcotest.test_case "label canonicalization" `Quick
            test_registry_label_canonicalization;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_registry_kind_mismatch;
          Alcotest.test_case "deterministic exposition" `Quick
            test_registry_exposition_deterministic;
          Alcotest.test_case "JSON exposition parses" `Quick
            test_registry_json_parses_back;
          Alcotest.test_case "reset generation" `Quick
            test_registry_reset_generation;
          Alcotest.test_case "reset is not torn" `Quick
            test_registry_reset_not_torn;
        ] );
      ( "engine-metrics",
        [
          Alcotest.test_case "accounting" `Quick test_engine_metrics_accounting;
          Alcotest.test_case "snapshot vs reset not torn" `Quick
            test_engine_metrics_snapshot_not_torn;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans and Chrome export" `Quick
            test_trace_spans_and_export;
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_is_free_of_effects;
          Alcotest.test_case "exception still records" `Quick
            test_trace_exception_still_records;
          Alcotest.test_case "flow events chain with one id" `Quick
            test_trace_flow_events;
          Alcotest.test_case "ring wrap-around stays whole" `Quick
            test_trace_ring_wraparound;
          Alcotest.test_case "gc capture per span" `Quick
            test_trace_gc_capture_args;
        ] );
      ( "prof",
        [
          Alcotest.test_case "report ranks labels by allocation" `Quick
            test_prof_report_ranking;
        ] );
      ( "promtext",
        [
          Alcotest.test_case "expose_text round-trips" `Quick
            test_promtext_roundtrip;
          Alcotest.test_case "rejects malformed text" `Quick
            test_promtext_rejects_garbage;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonx_rejects_garbage;
        ] );
      ( "ctmon",
        [
          Alcotest.test_case "constant-time sampler is clean" `Quick
            test_ctmon_constant_time_clean;
          Alcotest.test_case "fires on a non-CT stub" `Quick
            test_ctmon_fires_on_non_ct_stub;
          Alcotest.test_case "declared fallback classified" `Quick
            test_ctmon_fallback_classification;
          Alcotest.test_case "first batch is a fallback" `Quick
            test_ctmon_first_batch_is_fallback;
          Alcotest.test_case "alternating fallback/normal" `Quick
            test_ctmon_alternating_fallback_normal;
          Alcotest.test_case "fallback never teaches the expectation" `Quick
            test_ctmon_fallback_only_then_deviating_normal;
          Alcotest.test_case "bulk chunk accounting" `Quick
            test_ctmon_record_chunk;
        ] );
      ( "obs-bench",
        [
          Alcotest.test_case "tiny measure is sane" `Quick
            test_obs_bench_entry_sane;
        ] );
    ]
