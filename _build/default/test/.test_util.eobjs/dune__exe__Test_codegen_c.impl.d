test/test_codegen_c.ml: Alcotest Array Ctg_kyao Ctg_prng Ctgauss Filename Int64 List Out_channel Printf Sys Unix
