(** Falcon verification: recompute [c], recover [s1 = c − s2·h mod q]
    (centered), and check the squared norm of [(s1, s2)]. *)

val verify :
  params:Params.t ->
  h:int array ->
  bound_sq:float ->
  msg:bytes ->
  salt:bytes ->
  s2:int array ->
  bool

val recover_s1 :
  params:Params.t -> h:int array -> c:int array -> s2:int array -> int array
(** Centered representatives of [c − s2·h mod q]. *)
