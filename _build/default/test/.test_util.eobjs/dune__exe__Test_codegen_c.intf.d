test/test_codegen_c.mli:
