(** Uniform wrapper over every sampler in the repo so the Falcon signer,
    the benchmarks and the dudect harness can swap them freely (the
    experiment knob of Table 1). *)

type instance = {
  name : string;
  constant_time : bool;  (** By construction; dudect re-checks empirically. *)
  sample_magnitude : Ctg_prng.Bitstream.t -> int;
  sample_traced : Ctg_prng.Bitstream.t -> int * int;
      (** [(value, data-dependent work units)] — byte comparisons for CDT
          samplers, consumed bits for Knuth-Yao, gates for bitsliced. *)
}

val sample_signed : instance -> Ctg_prng.Bitstream.t -> int
(** Magnitude plus a uniform sign bit (folded distribution). *)

val of_bitsliced : Ctgauss.Sampler.t -> instance
(** Per-sample view of a batch sampler (internal 63-sample buffer); the
    trace reports the amortized gate count. *)

val knuth_yao_reference : Ctg_kyao.Matrix.t -> instance
(** The non-constant-time Alg. 1 walk, traced by bits consumed. *)
