(* Allocation-free tree walk: per depth we keep two pairs of scratch
   buffers — the split of the current target (consumed immediately by the
   child call) and the child's z outputs (merged into the parent's output
   buffer right after).  Buffers of depth d are dead across the two child
   calls, so one set per depth suffices. *)

type workspace = {
  t_split : (Fftc.t * Fftc.t) array; (* indexed by depth, size n/2^(d+1) *)
  z_out : (Fftc.t * Fftc.t) array;
}

let workspace_cache : (int, workspace) Hashtbl.t = Hashtbl.create 8

let workspace n =
  match Hashtbl.find_opt workspace_cache n with
  | Some w -> w
  | None ->
    let depths =
      let rec go d v = if v <= 1 then d else go (d + 1) (v / 2) in
      go 0 n
    in
    let pair d = (Fftc.create (n lsr (d + 1)), Fftc.create (n lsr (d + 1))) in
    let w =
      {
        t_split = Array.init depths pair;
        z_out = Array.init depths pair;
      }
    in
    Hashtbl.replace workspace_cache n w;
    w

(* out_t0' = t0 + (t1 - z1)·l, fused. *)
let babai_adjust ~t0 ~t1 ~z1 ~l ~out =
  let n = Array.length t0.Fftc.re in
  for i = 0 to n - 1 do
    let dr = t1.Fftc.re.(i) -. z1.Fftc.re.(i) in
    let di = t1.Fftc.im.(i) -. z1.Fftc.im.(i) in
    out.Fftc.re.(i) <-
      t0.Fftc.re.(i) +. ((dr *. l.Fftc.re.(i)) -. (di *. l.Fftc.im.(i)));
    out.Fftc.im.(i) <-
      t0.Fftc.im.(i) +. ((dr *. l.Fftc.im.(i)) +. (di *. l.Fftc.re.(i)))
  done

let rec sample_rec ws depth tree base rng ~t0 ~t1 ~z0 ~z1 =
  match tree with
  | Ldl.Leaf _ -> assert false (* the recursion bottoms inside Node *)
  | Ldl.Node { l; left; right } ->
    let n = Array.length t0.Fftc.re in
    if n = 1 then begin
      let leaf_sigma = function
        | Ldl.Leaf { sigma'; _ } -> sigma'
        | Ldl.Node _ -> assert false
      in
      let v1 =
        Base_sampler.sample_around base rng ~center:t1.Fftc.re.(0)
          ~sigma':(leaf_sigma right)
      in
      z1.Fftc.re.(0) <- float_of_int v1;
      z1.Fftc.im.(0) <- 0.0;
      let c0 =
        t0.Fftc.re.(0)
        +. ((t1.Fftc.re.(0) -. z1.Fftc.re.(0)) *. l.Fftc.re.(0))
        -. ((t1.Fftc.im.(0) -. z1.Fftc.im.(0)) *. l.Fftc.im.(0))
      in
      let v0 =
        Base_sampler.sample_around base rng ~center:c0 ~sigma':(leaf_sigma left)
      in
      z0.Fftc.re.(0) <- float_of_int v0;
      z0.Fftc.im.(0) <- 0.0
    end
    else begin
      let ts = ws.t_split.(depth) and zs = ws.z_out.(depth) in
      Fftc.split_into t1 ts;
      let a, b = ts and za, zb = zs in
      sample_rec ws (depth + 1) right base rng ~t0:a ~t1:b ~z0:za ~z1:zb;
      Fftc.merge_into zs z1;
      (* t0' = t0 + (t1 - z1)·l, reusing t0 as the output buffer. *)
      babai_adjust ~t0 ~t1 ~z1 ~l ~out:t0;
      Fftc.split_into t0 ts;
      sample_rec ws (depth + 1) left base rng ~t0:a ~t1:b ~z0:za ~z1:zb;
      Fftc.merge_into zs z0
    end

let sample (t : Ldl.t) base rng ~t0 ~t1 =
  let n = Array.length t0.Fftc.re in
  let ws = workspace n in
  let z0 = Fftc.create n and z1 = Fftc.create n in
  (* The walk clobbers its targets; keep the caller's intact. *)
  let t0c = Fftc.create n and t1c = Fftc.create n in
  Fftc.blit t0 t0c;
  Fftc.blit t1 t1c;
  sample_rec ws 0 t.Ldl.root base rng ~t0:t0c ~t1:t1c ~z0 ~z1;
  (z0, z1)
