module Nat = Ctg_bigint.Nat

type t = {
  sigma : string;
  precision : int;
  tail_cut : int;
  support : int;
  prob : Nat.t array;
}

let guard_bits = 96

let create ~sigma ~precision ~tail_cut =
  if precision < 4 then invalid_arg "Gaussian_table.create: precision < 4";
  let f = precision + guard_bits in
  let sigma_fx = Fixed.of_decimal_string ~frac_bits:f sigma in
  if Fixed.is_zero sigma_fx then invalid_arg "Gaussian_table.create: sigma = 0";
  let tau_sigma = Fixed.mul (Fixed.of_int ~frac_bits:f tail_cut) sigma_fx in
  let support = Nat.to_int (Nat.shift_right tau_sigma.Fixed.v f) in
  let two_sigma_sq = Fixed.shift_left (Fixed.mul sigma_fx sigma_fx) 1 in
  let weight v =
    let x = Fixed.div (Fixed.of_int ~frac_bits:f (v * v)) two_sigma_sq in
    let rho = Exp.exp_neg x in
    if v = 0 then rho else Fixed.shift_left rho 1
  in
  let weights = Array.init (support + 1) weight in
  let total =
    Array.fold_left (fun acc w -> Nat.add acc w.Fixed.v) Nat.zero weights
  in
  let scale w = Nat.div (Nat.shift_left w.Fixed.v precision) total in
  let prob = Array.map scale weights in
  { sigma; precision; tail_cut; support; prob }

let row_bit t ~row ~col =
  assert (row >= 0 && row <= t.support && col >= 0 && col < t.precision);
  if Nat.testbit t.prob.(row) (t.precision - 1 - col) then 1 else 0

let column_weight t col =
  let acc = ref 0 in
  for row = 0 to t.support do
    acc := !acc + row_bit t ~row ~col
  done;
  !acc

let residual t =
  let sum = Array.fold_left Nat.add Nat.zero t.prob in
  Nat.sub (Nat.shift_left Nat.one t.precision) sum

let pp_matrix fmt t =
  for row = 0 to t.support do
    Format.fprintf fmt "P%-3d " row;
    for col = 0 to t.precision - 1 do
      Format.fprintf fmt "%d" (row_bit t ~row ~col)
    done;
    Format.pp_print_newline fmt ()
  done
