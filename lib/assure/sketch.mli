(** Magnitude-count sketches — the state the drift monitors accumulate.

    A sketch is a plain count vector over the folded support [0..support]
    plus an overflow bin for magnitudes beyond it, so it is exact (no
    approximation), O(support) in memory, and {e mergeable}: [merge] is
    pointwise addition, hence commutative and associative.  That is the
    property the engine hook leans on — per-chunk contributions folded in
    any order, from any number of worker domains, produce the same sketch
    as a single-domain pass over the same samples (test_assure pins this
    down).

    A [t] is not thread-safe on its own; {!Drift} serializes access with a
    mutex. *)

type t

val create : support:int -> t
(** All-zero sketch for magnitudes [0..support]. *)

val support : t -> int

val add : t -> int -> unit
(** Fold one {e signed} sample; the magnitude is its absolute value
    (folded distribution, matching {!Ctg_stats.Distance.exact_probabilities}'s
    indexing). *)

val add_all : t -> int array -> unit

val add_sub : t -> int array -> pos:int -> len:int -> unit
(** [add_all] over the slice [a.(pos) .. a.(pos+len-1)] without copying —
    the allocation-free path behind {!Drift.observe_sub}.
    @raise Invalid_argument when the range does not fit [a]. *)

val total : t -> int
(** Samples folded so far (including overflow). *)

val overflow : t -> int
(** Samples whose magnitude exceeded [support]. *)

val count : t -> int -> int
(** Occurrences of one magnitude. *)

val copy : t -> t

val merge : t -> t -> t
(** Fresh sketch holding both inputs' counts; inputs unchanged.
    @raise Invalid_argument on support mismatch. *)

val absorb : t -> t -> unit
(** [absorb dst src] folds [src]'s counts into [dst] in place ([src]
    unchanged) — the allocation-free merge the drift monitor uses at
    window boundaries.
    @raise Invalid_argument on support mismatch. *)

val equal : t -> t -> bool

val reset : t -> unit

val observed : t -> int array
(** Counts over [0..support] with the overflow bin appended — the
    observed vector handed to {!Ctg_stats.Chi_square.test}. *)

val empirical : t -> float array
(** Relative frequencies over [0..support] (overflow excluded); zeros when
    empty. *)

val pp : Format.formatter -> t -> unit
