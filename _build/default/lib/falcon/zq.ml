let q = 12289
let reduce x = ((x mod q) + q) mod q
let add a b = (a + b) mod q
let sub a b = (a - b + q) mod q
let mul a b = a * b mod q

let pow base e =
  let rec go acc base e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
    end
  in
  go 1 (reduce base) e

let inv a =
  let a = reduce a in
  if a = 0 then raise Division_by_zero;
  pow a (q - 2)

let centered x =
  let x = reduce x in
  if x > q / 2 then x - q else x

(* q - 1 = 2^12 · 3; g is a generator iff g^((q-1)/2) and g^((q-1)/3)
   both differ from 1. *)
let generator =
  lazy
    (let rec find g =
       if g >= q then failwith "Zq.generator: none found"
       else if pow g ((q - 1) / 2) <> 1 && pow g ((q - 1) / 3) <> 1 then g
       else find (g + 1)
     in
     find 2)

let primitive_root_2n n =
  let two_n = 2 * n in
  if (q - 1) mod two_n <> 0 then invalid_arg "Zq.primitive_root_2n";
  pow (Lazy.force generator) ((q - 1) / two_n)
