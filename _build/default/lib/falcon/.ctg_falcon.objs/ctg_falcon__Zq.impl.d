lib/falcon/zq.ml: Lazy
