(** Allocation baselines + profiling-overhead gate (the numbers behind
    [BENCH_alloc.json]).

    Per (sigma, precision): words allocated per signed sample by the
    single-domain batch fill loop, words per [Falcon.Sign.sign] call,
    and the paired-pass timing of the fill loop with the full profiling
    arm on vs off.  Single-domain throughout because [Gc.counters] is
    per-domain — a pool fan-out would silently under-count.

    The acceptance budget is [prof_overhead_pct < threshold_pct] (3%):
    profiling you can leave on while measuring. *)

type entry = {
  sigma : string;
  precision : int;
  samples : int;  (** Samples per timing/alloc window. *)
  msgs : int;  (** Signatures in the per-signature measurement. *)
  alloc_words_per_sample : float;
  alloc_words_per_signature : float;
  plain_ns : float;  (** ns/sample, profiling off. *)
  prof_ns : float;  (** ns/sample, tracing + Gc capture + observer on. *)
  prof_overhead_pct : float;
}

val threshold_pct : float
(** 3.0 — looser than the 2% metered-obs budget: the profiling arm adds
    two [Gc.counters] calls and a ring write per span, and is opt-in. *)

val default_set : (string * int) list
(** Same Table-2 σ set as {!Ctg_engine.Obs_bench.default_set}. *)

val measure :
  ?samples:int -> ?msgs:int -> ?rounds:int -> ?min_time:float ->
  sigma:string -> precision:int -> tail_cut:int -> unit -> entry
(** Defaults: 63 × 1000 samples per window, 16 signatures, paired passes
    until 5 groups and [rounds × min_time] (5 × 0.4 s) elapse.  Restores
    the tracer's enabled state; leaves {!Prof} disabled. *)

val run :
  ?samples:int -> ?msgs:int -> ?rounds:int -> ?min_time:float ->
  ?set:(string * int) list -> unit -> entry list

val ok : entry list -> bool
(** Every entry under {!threshold_pct} with non-negative alloc counts. *)

val to_json : entry list -> Ctg_obs.Jsonx.t
val save : string -> entry list -> unit
val pp_entry : Format.formatter -> entry -> unit
