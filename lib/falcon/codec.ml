type writer = { buf : Buffer.t; mutable acc : int; mutable nbits : int }

let writer () = { buf = Buffer.create 256; acc = 0; nbits = 0 }

let put w bit =
  w.acc <- (w.acc lsl 1) lor (bit land 1);
  w.nbits <- w.nbits + 1;
  if w.nbits = 8 then begin
    Buffer.add_char w.buf (Char.chr w.acc);
    w.acc <- 0;
    w.nbits <- 0
  end

let put_bits w v k =
  for i = k - 1 downto 0 do
    put w ((v lsr i) land 1)
  done

let finish w =
  if w.nbits > 0 then begin
    Buffer.add_char w.buf (Char.chr (w.acc lsl (8 - w.nbits)));
    w.acc <- 0;
    w.nbits <- 0
  end;
  Buffer.to_bytes w.buf

type reader = { data : bytes; mutable pos : int }

let reader data = { data; pos = 0 }

let get r =
  let byte = r.pos lsr 3 in
  if byte >= Bytes.length r.data then None
  else begin
    let bit = (Char.code (Bytes.get r.data byte) lsr (7 - (r.pos land 7))) land 1 in
    r.pos <- r.pos + 1;
    Some bit
  end

let get_bits r k =
  let rec go acc i =
    if i = k then Some acc
    else match get r with None -> None | Some b -> go ((acc lsl 1) lor b) (i + 1)
  in
  go 0 0

(* Falcon's coefficient coding: sign, 7 low magnitude bits, then the high
   part in unary (that many 1s, closed by a 0). *)
let compress_s2 s2 =
  let w = writer () in
  Array.iter
    (fun c ->
      let mag = abs c in
      if mag >= 1 lsl 17 then invalid_arg "Codec.compress_s2: coefficient too large";
      put w (if c < 0 then 1 else 0);
      put_bits w (mag land 0x7f) 7;
      let high = mag lsr 7 in
      for _ = 1 to high do
        put w 1
      done;
      put w 0)
    s2;
  finish w

let decompress_s2 ~n data =
  let r = reader data in
  let out = Array.make n 0 in
  let rec unary acc =
    match get r with
    | None -> None
    | Some 0 -> Some acc
    | Some _ -> if acc > 1 lsl 10 then None else unary (acc + 1)
  in
  let rec go i =
    if i = n then Some out
    else
      match (get r, get_bits r 7) with
      | Some sign, Some low -> (
        match unary 0 with
        | None -> None
        | Some high ->
          let mag = (high lsl 7) lor low in
          out.(i) <- (if sign = 1 then -mag else mag);
          go (i + 1))
      | _, _ -> None
  in
  go 0

let encode_signature ~salt ~s2 =
  let h =
    Ctg_obs.Registry.histo Ctg_obs.Registry.default
      ~labels:[ ("stage", "encode") ]
      "falcon_sign_stage_ns"
  in
  let t0 = Ctg_obs.Clock.now_ns () in
  let out =
    Ctg_obs.Trace.with_span "encode" ~cat:"falcon" (fun () ->
        let body = compress_s2 s2 in
        let len = Bytes.length body in
        let out = Bytes.create (Bytes.length salt + 2 + len) in
        Bytes.blit salt 0 out 0 (Bytes.length salt);
        Bytes.set out (Bytes.length salt) (Char.chr (len lsr 8));
        Bytes.set out (Bytes.length salt + 1) (Char.chr (len land 0xff));
        Bytes.blit body 0 out (Bytes.length salt + 2) len;
        out)
  in
  Ctg_obs.Registry.observe h (Ctg_obs.Clock.now_ns () - t0);
  out

let decode_signature ~params data =
  let sb = params.Params.salt_bytes in
  if Bytes.length data < sb + 2 then None
  else begin
    let salt = Bytes.sub data 0 sb in
    let len =
      (Char.code (Bytes.get data sb) lsl 8) lor Char.code (Bytes.get data (sb + 1))
    in
    if Bytes.length data <> sb + 2 + len then None
    else
      match decompress_s2 ~n:params.Params.n (Bytes.sub data (sb + 2) len) with
      | None -> None
      | Some s2 -> Some (salt, s2)
  end

let encode_public_key h =
  let w = writer () in
  Array.iter (fun c -> put_bits w (Zq.reduce c) 14) h;
  finish w

let decode_public_key ~n data =
  let r = reader data in
  let out = Array.make n 0 in
  let rec go i =
    if i = n then Some out
    else
      match get_bits r 14 with
      | None -> None
      | Some v -> if v >= Zq.q then None else (out.(i) <- v; go (i + 1))
  in
  go 0

let signature_bytes ~salt ~s2 = Bytes.length (encode_signature ~salt ~s2)
let public_key_bytes h = Bytes.length (encode_public_key h)

(* Binary keypair format:
   "FKR1" | n/4 (1 byte) | f (n signed bytes) | g (n signed bytes)
   | F (3 bytes/coeff, two's complement) | G (same) | h (14-bit packed). *)
let keypair_magic = "FKR1"

let encode_keypair (kp : Keygen.keypair) =
  let n = kp.Keygen.params.Params.n in
  let buf = Buffer.create (1024 + (8 * n)) in
  Buffer.add_string buf keypair_magic;
  Buffer.add_char buf (Char.chr (n / 4 land 0xff));
  Buffer.add_char buf (Char.chr (n / 1024));
  let small p =
    Array.iter
      (fun c ->
        if c < -128 || c > 127 then invalid_arg "Codec.encode_keypair: f/g range";
        Buffer.add_char buf (Char.chr (c land 0xff)))
      p
  in
  let wide p =
    Array.iter
      (fun c ->
        if c < -(1 lsl 23) || c >= 1 lsl 23 then
          invalid_arg "Codec.encode_keypair: F/G range";
        let u = c land 0xFFFFFF in
        Buffer.add_char buf (Char.chr (u land 0xff));
        Buffer.add_char buf (Char.chr ((u lsr 8) land 0xff));
        Buffer.add_char buf (Char.chr ((u lsr 16) land 0xff)))
      p
  in
  small kp.Keygen.secret.Keygen.f;
  small kp.Keygen.secret.Keygen.g;
  wide kp.Keygen.secret.Keygen.big_f;
  wide kp.Keygen.secret.Keygen.big_g;
  Buffer.add_bytes buf (encode_public_key kp.Keygen.h);
  Buffer.to_bytes buf

let decode_keypair data =
  let len = Bytes.length data in
  if len < 6 || Bytes.sub_string data 0 4 <> keypair_magic then None
  else begin
    let n = (Char.code (Bytes.get data 4) * 4) + (Char.code (Bytes.get data 5) * 1024) in
    if n < 4 || n > 4096 || n land (n - 1) <> 0 then None
    else begin
      let pos = ref 6 in
      let take k f =
        if !pos + k > len then None
        else begin
          let v = f !pos in
          pos := !pos + k;
          Some v
        end
      in
      let small () =
        take n (fun base ->
            Array.init n (fun i ->
                let u = Char.code (Bytes.get data (base + i)) in
                if u > 127 then u - 256 else u))
      in
      let wide () =
        take (3 * n) (fun base ->
            Array.init n (fun i ->
                let b k = Char.code (Bytes.get data (base + (3 * i) + k)) in
                let u = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) in
                if u >= 1 lsl 23 then u - (1 lsl 24) else u))
      in
      match (small (), small (), wide (), wide ()) with
      | Some f, Some g, Some big_f, Some big_g ->
        let h_bytes = ((14 * n) + 7) / 8 in
        if !pos + h_bytes <> len then None
        else begin
          match decode_public_key ~n (Bytes.sub data !pos h_bytes) with
          | None -> None
          | Some h ->
            let params =
              match n with
              | 256 -> Params.level1
              | 512 -> Params.level2
              | 1024 -> Params.level3
              | _ -> Params.custom ~n
            in
            Some (Keygen.restore params ~secret:{ Keygen.f; g; big_f; big_g } ~h)
        end
      | _, _, _, _ -> None
    end
  end
