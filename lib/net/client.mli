(** Minimal HTTP/1.1 client over one keep-alive connection (blocking,
    stdlib-[Unix]) — for the smoke clients, the serve bench and tests.
    Not a general client: responses must be [Content-Length]-framed or
    close-delimited, which is all {!Http} emits. *)

type response = {
  status : int;
  headers : (string * string) list;  (** Names lowercased. *)
  body : string;
}

type t

val connect : ?host:string -> port:int -> unit -> t
(** TCP connect (default host 127.0.0.1).
    Raises [Unix.Unix_error] on failure. *)

val close : t -> unit

val request :
  t ->
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  path:string ->
  unit ->
  response
(** One request/response on the connection; reusable while the server
    keeps the connection alive.  [Content-Length] is added automatically
    for non-empty bodies and every non-GET request.  Raises [Failure] on
    protocol errors and [Unix.Unix_error] on transport errors. *)

val one_shot :
  ?host:string ->
  port:int ->
  ?headers:(string * string) list ->
  ?body:string ->
  meth:string ->
  path:string ->
  unit ->
  response
(** Connect, send one request, read the response, close. *)

val get : ?host:string -> port:int -> string -> response
val post : ?host:string -> port:int -> ?body:string -> string -> response
