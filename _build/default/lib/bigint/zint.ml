type t = { neg : bool; mag : Nat.t }
(* Invariant: [neg] is false when [mag] is zero. *)

let make neg mag = { neg = neg && not (Nat.is_zero mag); mag }
let zero = { neg = false; mag = Nat.zero }
let one = { neg = false; mag = Nat.one }
let minus_one = { neg = true; mag = Nat.one }

let of_int v =
  if v >= 0 then { neg = false; mag = Nat.of_int v }
  else { neg = true; mag = Nat.of_int (-v) }

let to_int v =
  let m = Nat.to_int v.mag in
  if v.neg then -m else m

let of_nat mag = { neg = false; mag }
let to_nat v = v.mag
let sign v = if v.neg then -1 else if Nat.is_zero v.mag then 0 else 1
let neg v = make (not v.neg) v.mag
let abs v = { v with neg = false }
let is_zero v = Nat.is_zero v.mag

let add a b =
  if a.neg = b.neg then make a.neg (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.neg (Nat.sub a.mag b.mag)
    else make b.neg (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = make (a.neg <> b.neg) (Nat.mul a.mag b.mag)

let mul_int a v =
  if v >= 0 then make a.neg (Nat.mul_int a.mag v)
  else make (not a.neg) (Nat.mul_int a.mag (-v))

let shift_left a k = make a.neg (Nat.shift_left a.mag k)

(* Euclidean: remainder always in [0, |b|). *)
let ediv_rem a b =
  let q, r = Nat.divmod a.mag b.mag in
  match (a.neg, Nat.is_zero r) with
  | false, _ -> (make b.neg q, of_nat r)
  | true, true -> (make (not b.neg) q, zero)
  | true, false ->
    (* a = -(q*|b| + r) = (-q-1)*|b| + (|b| - r). *)
    let q1 = Nat.add q Nat.one in
    (make (not b.neg) q1, of_nat (Nat.sub b.mag r))

let fdiv a b =
  let q, r = ediv_rem a b in
  if is_zero r || not b.neg then q else sub q one

let cdiv a b =
  let q, r = ediv_rem a b in
  if is_zero r || b.neg then q else add q one

(* Nearest integer, ties toward +infinity: floor((2a + b) / 2b) when b > 0. *)
let rounded_div a b =
  let b_pos = if sign b >= 0 then b else neg b in
  let a_adj = if sign b >= 0 then a else neg a in
  fdiv (add (shift_left a_adj 1) b_pos) (shift_left b_pos 1)

let divexact a b =
  let q, r = ediv_rem a b in
  assert (is_zero r);
  q

let equal a b = a.neg = b.neg && Nat.equal a.mag b.mag

let compare a b =
  match (a.neg, b.neg) with
  | false, false -> Nat.compare a.mag b.mag
  | true, true -> Nat.compare b.mag a.mag
  | true, false -> -1
  | false, true -> 1

let num_bits v = Nat.num_bits v.mag

let to_string v = if v.neg then "-" ^ Nat.to_string v.mag else Nat.to_string v.mag

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    make true (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else of_nat (Nat.of_string s)

let to_float v =
  let m, e = Nat.to_float_exp v.mag in
  let f = ldexp m e in
  if v.neg then -.f else f

let pp fmt v = Format.pp_print_string fmt (to_string v)
