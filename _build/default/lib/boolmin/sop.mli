(** Sums of products: the minimizer's public entry point and cost model. *)

type t = Cube.t list
(** Disjunction of product terms; [[]] is the constant false and a list
    containing {!Cube.universal} is the constant true. *)

val minimize : ?exact_vars_limit:int -> Truth_table.t -> t
(** Two-level minimization: Quine-McCluskey primes, then exact cover
    (Petrick) when the table has at most [exact_vars_limit] variables
    (default 12), greedy otherwise.  The result implements the table
    (asserted in debug builds). *)

val eval : t -> int -> bool
(** Evaluate on a minterm (variable [i] = bit [i]). *)

val gate_cost : t -> int
(** Two-input gate count when evaluated bitsliced: (literals - 1) AND
    gates per term plus NOT gates for complemented literals, plus
    (terms - 1) OR gates. *)

val num_terms : t -> int
val num_literals : t -> int
val to_string : vars:int -> t -> string
