lib/samplers/cdt_table.ml: Array Bytes Char Ctg_bigint Ctg_kyao Ctg_prng
