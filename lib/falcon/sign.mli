(** Falcon signing: hash-to-point, target computation, ffSampling with the
    pluggable base Gaussian sampler, norm rejection, retry with a fresh
    salt — the loop whose throughput the paper's Table 1 measures. *)

type signature = {
  salt : bytes;
  s1 : int array;  (** Recomputable from s2; kept for tests/inspection. *)
  s2 : int array;
  norm_sq : float;
  attempts : int;  (** Salt draws until the norm check passed. *)
}

val norm_bound_sq : Params.t -> float
(** Acceptance bound ‖(s1,s2)‖², a scheme constant shared by signer and
    verifier: 1.6 × the expected squared norm of a signature produced with
    the fixed σ=2 base sampler (error variance σ² + 1/12 per Gram-Schmidt
    coordinate, Σ‖b̃_i‖² ≈ 2Nq).  The ideal variable-σ sampler lands well
    under it.  Calibrated for shape, not for Falcon's security-optimal
    tightness — see DESIGN.md. *)

val sign :
  Keygen.keypair ->
  Base_sampler.t ->
  Ctg_prng.Bitstream.t ->
  msg:bytes ->
  signature

val sign_many :
  ?domains:int ->
  ?backend:Ctg_engine.Stream_fork.backend ->
  Keygen.keypair ->
  make_base:(unit -> Base_sampler.t) ->
  seed:string ->
  msgs:bytes array ->
  signature array
(** Sign independent messages across domains (the Table 1 workload at
    service scale).  Message [i] always draws its salt and ffSampling
    randomness from {!Ctg_engine.Stream_fork} lane [i] of [seed] and from a
    fresh [make_base ()] instance, so the result array is identical for any
    [domains] (default [Domain.recommended_domain_count ()]).  [make_base]
    must return a fresh, unshared sampler on every call — pass e.g.
    [fun () -> Base_sampler.of_instance
       (Ctg_samplers.Sampler_sig.of_bitsliced (Ctgauss.Sampler.clone master))]
    to amortize one compiled program over every message and domain. *)

val signature_norm_sq : int array -> int array -> float
(** ‖(s1, s2)‖² with integer coefficients taken as given. *)
