type t = { mask : int; value : int }

let make ~mask ~value = { mask; value = value land mask }
let universal = { mask = 0; value = 0 }

let of_minterm ~vars m =
  let mask = (1 lsl vars) - 1 in
  { mask; value = m land mask }

let num_literals c = Ctg_util.Bits.popcount c.mask
let covers c m = m land c.mask = c.value

(* a subsumes b iff a's specified variables are a subset of b's and agree. *)
let subsumes a b = a.mask land b.mask = a.mask && b.value land a.mask = a.value

let merge a b =
  if a.mask <> b.mask then None
  else begin
    let diff = a.value lxor b.value in
    if diff <> 0 && diff land (diff - 1) = 0 then
      Some { mask = a.mask land lnot diff; value = a.value land lnot diff }
    else None
  end

let minterms ~vars c =
  let free = lnot c.mask land ((1 lsl vars) - 1) in
  (* Enumerate submasks of [free] and OR them into the fixed part. *)
  let rec go sub acc =
    let acc = (c.value lor sub) :: acc in
    if sub = 0 then acc else go ((sub - 1) land free) acc
  in
  go free []

let compare a b =
  if a.mask <> b.mask then Stdlib.compare a.mask b.mask
  else Stdlib.compare a.value b.value

let equal a b = a.mask = b.mask && a.value = b.value

let to_string ~vars c =
  String.init vars (fun i ->
      if c.mask land (1 lsl i) = 0 then 'x'
      else if c.value land (1 lsl i) <> 0 then '1'
      else '0')
