(* Falcon signing end-to-end with the paper's constant-time sampler
   plugged into the signer (the scenario of the paper's Table 1).

     dune exec examples/falcon_signing.exe            # Falcon-256
     dune exec examples/falcon_signing.exe -- 512     # Falcon-512
*)

module F = Ctg_falcon

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 256 in
  let params =
    match n with
    | 256 -> F.Params.level1
    | 512 -> F.Params.level2
    | 1024 -> F.Params.level3
    | _ -> F.Params.custom ~n
  in
  Format.printf "== %s ==@.@." (F.Params.name params);

  let rng = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed "falcon-example") in

  Format.printf "key generation (NTRUSolve: exact fG - gF = q over Z[x]/(x^N+1))...@.";
  let t0 = Unix.gettimeofday () in
  let kp = F.Keygen.generate params rng in
  Format.printf "  done in %.2fs after %d (f,g) draw(s)@." (Unix.gettimeofday () -. t0)
    kp.F.Keygen.attempts;
  Format.printf "  NTRU equation check: %b; public key check: %b@."
    (F.Keygen.check_ntru_equation kp)
    (F.Keygen.check_public_key kp);
  Format.printf "  public key: %d bytes (14-bit packed)@.@."
    (F.Codec.public_key_bytes kp.F.Keygen.h);

  (* The experiment knob: the base Gaussian sampler inside ffSampling. *)
  Format.printf "building the paper's sigma=2 constant-time sampler (n=128)...@.";
  let ct_sampler = Ctgauss.Sampler.create ~sigma:"2" ~precision:128 ~tail_cut:13 () in
  let base =
    F.Base_sampler.of_instance (Ctg_samplers.Sampler_sig.of_bitsliced ct_sampler)
  in
  Format.printf "  %d gates, %d samples per bitsliced batch@.@."
    (Ctgauss.Sampler.gate_count ct_sampler)
    Ctgauss.Bitslice.lanes;

  let msg = Bytes.of_string "the quick brown fox signs a lattice" in
  let bound = F.Sign.norm_bound_sq params in
  let signature = F.Sign.sign kp base rng ~msg in
  Format.printf "signed: |s|=%.0f (bound %.0f), %d attempt(s), %d base-sampler calls@."
    (sqrt signature.F.Sign.norm_sq) (sqrt bound) signature.F.Sign.attempts
    (F.Base_sampler.calls base);
  let blob = F.Codec.encode_signature ~salt:signature.F.Sign.salt ~s2:signature.F.Sign.s2 in
  Format.printf "signature: %d bytes (salt + compressed s2)@.@." (Bytes.length blob);

  (* Verify through the wire format, then check tamper rejection. *)
  (match F.Codec.decode_signature ~params blob with
  | None -> failwith "decode failed"
  | Some (salt, s2) ->
    let ok = F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound ~msg ~salt ~s2 in
    Format.printf "verification: %b@." ok;
    let forged =
      F.Verify.verify ~params ~h:kp.F.Keygen.h ~bound_sq:bound
        ~msg:(Bytes.of_string "a different message") ~salt ~s2
    in
    Format.printf "forged message rejected: %b@.@." (not forged));

  (* Small throughput taste (the real Table 1 lives in bench/main.exe). *)
  let iters = 30 in
  F.Base_sampler.reset_calls base;
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    let m = Bytes.cat msg (Bytes.make 1 (Char.chr i)) in
    ignore (F.Sign.sign kp base rng ~msg:m)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%d signatures in %.2fs: %.1f signs/sec (%d sampler calls)@."
    iters dt (float_of_int iters /. dt) (F.Base_sampler.calls base)
