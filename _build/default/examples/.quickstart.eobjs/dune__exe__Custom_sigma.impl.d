examples/custom_sigma.ml: Array Ctg_kyao Ctg_prng Ctg_stats Ctgauss Format Out_channel Printf String Sys
