module Jsonx = Ctg_obs.Jsonx

type fingerprint = {
  host : string;
  ocaml_version : string;
  word_size : int;
  domains : int;
}

let fingerprint () =
  {
    host = Unix.gethostname ();
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    domains = Domain.recommended_domain_count ();
  }

type record = {
  time : string;
  fp : fingerprint;
  metrics : (string * float) list;
}

let default_files =
  [
    "BENCH_gates.json";
    "BENCH_engine.json";
    "BENCH_obs.json";
    "BENCH_fault.json";
    "BENCH_assure.json";
    "BENCH_serve.json";
    "BENCH_alloc.json";
    "BENCH_saga.json";
    "BENCH_pauses.json";
  ]

(* Flatten every numeric leaf of a baseline file to (path, value).  List
   elements carrying a "sigma" field are keyed by it — refined by the
   discriminators benches sweep alongside sigma (precision, domains) —
   rather than by position, so entry reordering between runs does not
   shuffle the keys.  Keys must come out unique: a collision would be
   silently collapsed by the JSON-object serialization and then compare
   one duplicate against another across runs; any remaining duplicate
   within one list is suffixed with its position. *)
let rec flatten prefix j acc =
  match (j : Jsonx.t) with
  | Num v -> (prefix, v) :: acc
  | Obj fields ->
    List.fold_left
      (fun acc (k, v) -> flatten (prefix ^ "." ^ k) v acc)
      acc fields
  | List items ->
    let seen = Hashtbl.create 8 in
    snd
      (List.fold_left
         (fun (i, acc) item ->
           let field k =
             match Jsonx.member k item with
             | Some (Jsonx.Str s) -> Some s
             | Some (Jsonx.Num v) ->
               Some
                 (if Float.is_integer v then string_of_int (int_of_float v)
                  else string_of_float v)
             | _ -> None
           in
           let seg =
             match field "sigma" with
             | None -> string_of_int i
             | Some s ->
               List.fold_left
                 (fun seg k ->
                   match field k with
                   | Some v -> seg ^ "," ^ k ^ "=" ^ v
                   | None -> seg)
                 ("sigma=" ^ s)
                 [ "precision"; "domains" ]
           in
           let seg =
             if Hashtbl.mem seen seg then seg ^ "#" ^ string_of_int i
             else begin
               Hashtbl.add seen seg ();
               seg
             end
           in
           (i + 1, flatten (prefix ^ "[" ^ seg ^ "]") item acc))
         (0, acc) items)
  | Null | Bool _ | Str _ -> acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let iso_time epoch =
  let tm = Unix.gmtime epoch in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let collect ?(files = default_files) ~dir () =
  let metrics =
    List.concat_map
      (fun file ->
        let path = Filename.concat dir file in
        if not (Sys.file_exists path) then []
        else
          match Jsonx.parse (read_file path) with
          | Error _ -> []
          | Ok j -> List.rev (flatten file j []))
      files
  in
  { time = iso_time (Unix.time ()); fp = fingerprint (); metrics }

let to_json r =
  Jsonx.Obj
    [
      ("time", Str r.time);
      ("host", Str r.fp.host);
      ("ocaml", Str r.fp.ocaml_version);
      ("word_size", Num (float_of_int r.fp.word_size));
      ("domains", Num (float_of_int r.fp.domains));
      ("metrics", Obj (List.map (fun (k, v) -> (k, Jsonx.Num v)) r.metrics));
    ]

let of_json j =
  let str k = Option.bind (Jsonx.member k j) Jsonx.to_str in
  let num k = Option.bind (Jsonx.member k j) Jsonx.to_float in
  match (str "time", str "host", str "ocaml", num "word_size", num "domains") with
  | Some time, Some host, Some ocaml_version, Some ws, Some d ->
    let metrics =
      match Jsonx.member "metrics" j with
      | Some (Jsonx.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match Jsonx.to_float v with Some f -> Some (k, f) | None -> None)
          fields
      | _ -> []
    in
    Some
      {
        time;
        fp =
          {
            host;
            ocaml_version;
            word_size = int_of_float ws;
            domains = int_of_float d;
          };
        metrics;
      }
  | _ -> None

let append ~path r =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Jsonx.to_string (to_json r));
      output_char oc '\n')

let load ~path =
  if not (Sys.file_exists path) then []
  else
    let lines = String.split_on_char '\n' (read_file path) in
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match Jsonx.parse line with
          | Error _ -> None
          | Ok j -> of_json j)
      lines

let baseline_for fp records =
  List.fold_left
    (fun best r -> if r.fp = fp then Some r else best)
    None records

type delta = { key : string; base : float; current : float; pct : float }

let deltas ~baseline current =
  List.filter_map
    (fun (key, cur) ->
      match List.assoc_opt key baseline.metrics with
      | None -> None
      | Some base ->
        let pct =
          if base = 0.0 then if cur = 0.0 then 0.0 else infinity
          else 100.0 *. (cur -. base) /. abs_float base
        in
        Some { key; base; current = cur; pct })
    current.metrics

(* Only latency-like series gate the build — plus the allocation
   baselines, where growth past the tolerance means a stage started
   allocating more per unit of work.  Counters, percentages and gate
   counts move for legitimate reasons and stay advisory. *)
let is_latency_key key =
  let suffixes =
    [ "_ns"; "_ns_per_sample"; "_words_per_sample"; "_words_per_signature" ]
  in
  List.exists
    (fun s ->
      String.length key >= String.length s
      && String.sub key (String.length key - String.length s) (String.length s)
         = s)
    suffixes

let regressions ?(tolerance_pct = 25.0) ~baseline current =
  List.filter
    (fun d -> is_latency_key d.key && d.pct > tolerance_pct)
    (deltas ~baseline current)

let pp_delta fmt d =
  Format.fprintf fmt "%-60s %10.2f -> %10.2f  (%+.1f%%)" d.key d.base
    d.current d.pct

let pp_fingerprint fmt fp =
  Format.fprintf fmt "%s ocaml-%s %d-bit %d-core" fp.host fp.ocaml_version
    fp.word_size fp.domains
