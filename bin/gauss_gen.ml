(* gauss_gen: the command-line tool the paper promises — instantiate a
   constant-time discrete Gaussian sampler for an arbitrary sigma and
   precision, inspect the pipeline, and emit portable source code.

     gauss_gen analyze --sigma 2 --precision 128
     gauss_gen emit --sigma 6.15543 --lang c -o sampler.c
     gauss_gen sample --sigma 2 -n 100
     gauss_gen table --sigma 2 --precision 16        # probability matrix
     gauss_gen throughput --sigma 2 --domains 4 -n 1000000
*)

open Cmdliner

let sigma_arg =
  let doc = "Standard deviation of the target discrete Gaussian (decimal)." in
  Arg.(value & opt string "2" & info [ "sigma" ] ~docv:"SIGMA" ~doc)

let precision_arg =
  let doc = "Binary precision n of the probabilities." in
  Arg.(value & opt int 128 & info [ "precision"; "p" ] ~docv:"N" ~doc)

let tail_cut_arg =
  let doc = "Tail cut factor tau; the support is [0, tau*sigma]." in
  Arg.(value & opt int 13 & info [ "tail-cut" ] ~docv:"TAU" ~doc)

let build_enum sigma precision tail_cut =
  Ctg_kyao.Leaf_enum.enumerate
    (Ctg_kyao.Matrix.create ~sigma ~precision ~tail_cut)

let trace_arg =
  let doc =
    "Record spans (compile pipeline, engine chunks) and write a Chrome \
     trace_event JSON file on exit; open it in chrome://tracing or Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Ctg_obs.Trace.enable ();
    Fun.protect
      ~finally:(fun () ->
        Ctg_obs.Trace.disable ();
        Ctg_obs.Trace.write path;
        Format.printf "wrote trace to %s (%d dropped)@." path
          (Ctg_obs.Trace.dropped ()))
      f

(* ------------------------------------------------------------------ *)

let analyze sigma precision tail_cut =
  let p = Ctgauss.Pipeline.run ~sigma ~precision ~tail_cut () in
  Format.printf "%a@." Ctgauss.Pipeline.pp p;
  let e = p.Ctgauss.Pipeline.enum in
  Format.printf "delta=%d n'=%d leaves=%d unresolved=%d theorem1=%b@."
    e.Ctg_kyao.Leaf_enum.delta e.Ctg_kyao.Leaf_enum.max_ones
    (Array.length e.Ctg_kyao.Leaf_enum.leaves)
    e.Ctg_kyao.Leaf_enum.unresolved
    (Ctg_kyao.Leaf_enum.check_theorem1 e);
  Format.printf "program: %a@." Ctgauss.Gate.pp_stats p.Ctgauss.Pipeline.program;
  Format.printf "baseline (simple minimization): %a@." Ctgauss.Gate.pp_stats
    p.Ctgauss.Pipeline.simple_program

let analyze_cmd =
  let doc = "Run the full pipeline and report every stage (paper Fig. 4)." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const analyze $ sigma_arg $ precision_arg $ tail_cut_arg)

(* ------------------------------------------------------------------ *)

let emit sigma precision tail_cut lang output method_ =
  let enum = build_enum sigma precision tail_cut in
  let program =
    match method_ with
    | "split" -> Ctgauss.Compile.compile (Ctgauss.Sublist.build enum)
    | "simple" -> Ctgauss.Compile_simple.compile enum
    | other -> failwith (Printf.sprintf "unknown method %S" other)
  in
  let name = "ct_gauss_sample" in
  let code =
    match lang with
    | "c" -> Ctgauss.Codegen.to_c ~name program
    | "ocaml" -> Ctgauss.Codegen.to_ocaml ~name program
    | "dot" -> Ctgauss.Codegen.to_dot ~name program
    | other -> failwith (Printf.sprintf "unknown language %S" other)
  in
  (match output with
  | None -> print_string code
  | Some file ->
    Out_channel.with_open_text file (fun oc -> output_string oc code);
    Format.printf "wrote %s: sigma=%s n=%d %a@." file sigma precision
      Ctgauss.Gate.pp_stats program)

let emit_cmd =
  let lang =
    Arg.(value & opt string "c" & info [ "lang"; "l" ] ~docv:"LANG"
           ~doc:"Output language: c, ocaml or dot.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Output file (stdout when omitted).")
  in
  let method_ =
    Arg.(value & opt string "split" & info [ "method" ] ~docv:"METHOD"
           ~doc:"Compiler: split (this paper) or simple (the [21] baseline).")
  in
  let doc = "Emit the compiled constant-time sampler as source code." in
  Cmd.v
    (Cmd.info "emit" ~doc)
    Term.(const emit $ sigma_arg $ precision_arg $ tail_cut_arg $ lang $ output $ method_)

(* ------------------------------------------------------------------ *)

let sample sigma precision tail_cut count seed histogram trace =
  with_trace trace @@ fun () ->
  let enum = build_enum sigma precision tail_cut in
  let s = Ctgauss.Sampler.of_enum enum in
  let rng = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed seed) in
  let samples = Array.init count (fun _ -> Ctgauss.Sampler.sample s rng) in
  if histogram then begin
    let hist = Ctg_stats.Histogram.of_samples samples in
    Format.printf "%a" (Ctg_stats.Histogram.pp_bars ~width:50) hist;
    Format.printf "mean=%+.4f std=%.4f (target sigma %s)@."
      (Ctg_stats.Histogram.mean hist)
      (Ctg_stats.Histogram.std_dev hist)
      sigma
  end
  else
    Array.iteri
      (fun i v ->
        Format.printf "%d%s" v (if (i + 1) mod 20 = 0 then "\n" else " "))
      samples;
  if not histogram then Format.printf "@."

let sample_cmd =
  let count =
    Arg.(value & opt int 63 & info [ "count"; "n" ] ~docv:"COUNT"
           ~doc:"Number of samples to draw.")
  in
  let seed =
    Arg.(value & opt string "gauss_gen" & info [ "seed" ] ~docv:"SEED"
           ~doc:"Deterministic ChaCha20 seed string.")
  in
  let histogram =
    Arg.(value & flag & info [ "histogram" ] ~doc:"Print a histogram instead of raw values.")
  in
  let doc = "Draw signed samples from the compiled sampler." in
  Cmd.v
    (Cmd.info "sample" ~doc)
    Term.(const sample $ sigma_arg $ precision_arg $ tail_cut_arg $ count $ seed
          $ histogram $ trace_arg)

(* ------------------------------------------------------------------ *)

let table sigma precision tail_cut =
  let gt = Ctg_fixed.Gaussian_table.create ~sigma ~precision ~tail_cut in
  Format.printf "%a" Ctg_fixed.Gaussian_table.pp_matrix gt;
  Format.printf "support=%d residual=%s/2^%d@." gt.Ctg_fixed.Gaussian_table.support
    (Ctg_bigint.Nat.to_string (Ctg_fixed.Gaussian_table.residual gt))
    precision

let table_cmd =
  let doc = "Print the probability matrix (paper Fig. 1)." in
  Cmd.v
    (Cmd.info "table" ~doc)
    Term.(const table $ sigma_arg $ precision_arg $ tail_cut_arg)

(* ------------------------------------------------------------------ *)

let throughput sigma precision tail_cut count domains seed backend_name
    chunk_batches trace interval =
  with_trace trace @@ fun () ->
  let backend =
    match backend_name with
    | "chacha" -> Ctg_engine.Stream_fork.Chacha
    | "shake" -> Ctg_engine.Stream_fork.Shake
    | other -> failwith (Printf.sprintf "unknown backend %S" other)
  in
  let t0 = Unix.gettimeofday () in
  let sampler =
    Ctg_engine.Registry.lookup Ctg_engine.Registry.global ~sigma ~precision
      ~tail_cut ()
  in
  let t_compile = Unix.gettimeofday () -. t0 in
  Format.printf "sampler: sigma=%s n=%d gates=%d (compiled in %.2fs)@." sigma
    precision
    (Ctgauss.Sampler.gate_count sampler)
    t_compile;
  let pool =
    Ctg_engine.Pool.create ~domains ~backend ~chunk_batches ~seed sampler
  in
  (* Warm up workers and code paths outside the timed window. *)
  ignore (Ctg_engine.Pool.batch_parallel pool ~n:(63 * domains));
  Ctg_engine.Metrics.reset (Ctg_engine.Pool.metrics pool);
  (* Periodic progress: a ticker domain snapshots the registry-backed
     metrics and prints the rate since its previous tick. *)
  let ticking = Atomic.make (interval > 0.0) in
  let ticker =
    if interval <= 0.0 then None
    else
      Some
        (Domain.spawn (fun () ->
             let last = ref 0 in
             let t_start = Unix.gettimeofday () in
             while Atomic.get ticking do
               Unix.sleepf interval;
               if Atomic.get ticking then begin
                 let s =
                   Ctg_engine.Metrics.snapshot (Ctg_engine.Pool.metrics pool)
                 in
                 let total = s.Ctg_engine.Metrics.samples in
                 Format.printf "  [%6.1fs] %d samples (+%.0f/s)@."
                   (Unix.gettimeofday () -. t_start)
                   total
                   (float_of_int (total - !last) /. interval);
                 last := total
               end
             done))
  in
  let t1 = Unix.gettimeofday () in
  let samples = Ctg_engine.Pool.batch_parallel pool ~n:count in
  let dt = Unix.gettimeofday () -. t1 in
  Atomic.set ticking false;
  Option.iter Domain.join ticker;
  let m = Ctg_engine.Metrics.snapshot (Ctg_engine.Pool.metrics pool) in
  Ctg_engine.Pool.shutdown pool;
  let mean, var =
    let s = ref 0.0 and s2 = ref 0.0 in
    Array.iter
      (fun v ->
        let f = float_of_int v in
        s := !s +. f;
        s2 := !s2 +. (f *. f))
      samples;
    let n = float_of_int (Array.length samples) in
    (!s /. n, (!s2 /. n) -. (!s /. n *. (!s /. n)))
  in
  Format.printf "domains=%d backend=%s chunk=%d samples@." domains backend_name
    (Ctg_engine.Pool.chunk_samples pool);
  Format.printf "%d samples in %.3fs -> %.0f samples/sec@." count dt
    (float_of_int count /. dt);
  Format.printf "sample mean %+.4f, std %.4f (target sigma %s)@." mean
    (sqrt var) sigma;
  Format.printf "--- metrics ---@.%a" Ctg_engine.Metrics.pp m

let throughput_cmd =
  let count =
    Arg.(value & opt int 1_000_000 & info [ "count"; "n" ] ~docv:"COUNT"
           ~doc:"Number of samples to draw in the timed run.")
  in
  let domains =
    Arg.(value & opt int (Domain.recommended_domain_count ())
         & info [ "domains"; "d" ] ~docv:"P"
             ~doc:"Worker domains (defaults to the recommended count).")
  in
  let seed =
    Arg.(value & opt string "gauss_gen" & info [ "seed" ] ~docv:"SEED"
           ~doc:"Master seed; forked deterministically per chunk lane.")
  in
  let backend =
    Arg.(value & opt string "chacha" & info [ "backend" ] ~docv:"PRNG"
           ~doc:"PRNG backend: chacha or shake.")
  in
  let chunk_batches =
    Arg.(value & opt int 16 & info [ "chunk-batches" ] ~docv:"B"
           ~doc:"63-sample program runs per work chunk.")
  in
  let interval =
    Arg.(value & opt float 0.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Print a periodic snapshot line (samples so far and the \
                 rate since the previous tick) every $(docv); 0 disables.")
  in
  let doc =
    "Measure multicore batch-sampling throughput (samples/sec + metrics)."
  in
  Cmd.v
    (Cmd.info "throughput" ~doc)
    Term.(const throughput $ sigma_arg $ precision_arg $ tail_cut_arg $ count
          $ domains $ seed $ backend $ chunk_batches $ trace_arg $ interval)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "constant-time discrete Gaussian sampler generator (DAC 2019 reproduction)"
  in
  let info = Cmd.info "gauss_gen" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; emit_cmd; sample_cmd; table_cmd; throughput_cmd ]))
