module Gate = Ctgauss.Gate

let summarize_ints ?(max_shown = 8) is =
  let shown = List.filteri (fun i _ -> i < max_shown) is in
  let s = String.concat ", " (List.map string_of_int shown) in
  if List.length is > max_shown then s ^ ", ..." else s

let lint ~name (p : Gate.t) =
  let t = Taint.analyze p in
  let findings = ref [] in
  let add sev rule detail =
    findings := Report.finding sev ~rule ~where:name detail :: !findings
  in
  (match Taint.verified t with
  | Ok () -> ()
  | Error e -> add Report.Error "well-formed" e);
  let live = Taint.live t in
  (* dead-gate *)
  (match Taint.dead_instrs t with
  | [] -> ()
  | dead ->
    add Report.Warning "dead-gate"
      (Printf.sprintf "%d instruction(s) unreachable from outputs/valid: %s"
         (List.length dead) (summarize_ints dead)));
  (* duplicate-gate: commutativity-normalized structural hash over live
     instructions. *)
  let norm instr =
    match instr with
    | Gate.And (x, y) when x > y -> Gate.And (y, x)
    | Gate.Or (x, y) when x > y -> Gate.Or (y, x)
    | Gate.Xor (x, y) when x > y -> Gate.Xor (y, x)
    | i -> i
  in
  let seen : (Gate.instr, int) Hashtbl.t = Hashtbl.create 256 in
  let dups = ref [] in
  Array.iteri
    (fun i instr ->
      if live.(i) then begin
        let key = norm instr in
        match Hashtbl.find_opt seen key with
        | Some first -> dups := (first, i) :: !dups
        | None -> Hashtbl.add seen key i
      end)
    p.Gate.instrs;
  (match List.rev !dups with
  | [] -> ()
  | dups ->
    add Report.Warning "duplicate-gate"
      (Printf.sprintf "%d structurally duplicate live instruction(s): %s"
         (List.length dups)
         (summarize_ints (List.map snd dups))));
  (* const-fold: a live gate reading a Const-defined register. *)
  let nv = p.Gate.num_vars in
  let const_reg = Array.make (nv + Array.length p.Gate.instrs) false in
  Array.iteri
    (fun i instr ->
      match instr with
      | Gate.Const _ -> const_reg.(nv + i) <- true
      | _ -> ())
    p.Gate.instrs;
  let foldable = ref [] in
  Array.iteri
    (fun i instr ->
      if live.(i) then begin
        let reads_const =
          match instr with
          | Gate.And (x, y) | Gate.Or (x, y) | Gate.Xor (x, y) ->
            const_reg.(x) || const_reg.(y)
          | Gate.Not x -> const_reg.(x)
          | Gate.Const _ -> false
        in
        if reads_const then foldable := i :: !foldable
      end)
    p.Gate.instrs;
  (match List.rev !foldable with
  | [] -> ()
  | fs ->
    add Report.Warning "const-fold"
      (Printf.sprintf "%d live gate(s) read a constant register: %s"
         (List.length fs) (summarize_ints fs)));
  (* unused-input (informational) *)
  (match Taint.unused_inputs t with
  | [] -> ()
  | unused ->
    add Report.Info "unused-input"
      (Printf.sprintf
         "%d of %d input bits unused (expected at full precision): %s"
         (List.length unused) nv (summarize_ints unused)));
  List.rev !findings
