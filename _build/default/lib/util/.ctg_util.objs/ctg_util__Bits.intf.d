lib/util/bits.mli:
