(* Unit and property tests for the arbitrary-precision integers that
   everything else (probability tables, NTRUSolve) stands on. *)

module Nat = Ctg_bigint.Nat
module Z = Ctg_bigint.Zint

let nat = Alcotest.testable Nat.pp Nat.equal
let zint = Alcotest.testable Z.pp Z.equal

(* Random Nat of up to [bits] bits, derived from a qcheck-provided seed. *)
let random_nat rng bits =
  let n = 1 + Ctg_prng.Splitmix64.next_int rng bits in
  let acc = ref Nat.zero in
  for _ = 1 to (n + 29) / 30 do
    acc :=
      Nat.add
        (Nat.shift_left !acc 30)
        (Nat.of_int (Ctg_prng.Splitmix64.next_int rng (1 lsl 30)))
  done;
  !acc

let arb_nat bits =
  QCheck.make
    ~print:(fun n -> Nat.to_string n)
    (QCheck.Gen.map
       (fun seed -> random_nat (Ctg_prng.Splitmix64.create (Int64.of_int seed)) bits)
       QCheck.Gen.nat)

let arb_zint bits =
  QCheck.make
    ~print:(fun z -> Z.to_string z)
    (QCheck.Gen.map
       (fun seed ->
         let rng = Ctg_prng.Splitmix64.create (Int64.of_int (seed + 7919)) in
         let m = random_nat rng bits in
         if Ctg_prng.Splitmix64.next_int rng 2 = 0 then Z.of_nat m
         else Z.neg (Z.of_nat m))
       QCheck.Gen.nat)

let unit_tests =
  [
    Alcotest.test_case "of_int/to_int roundtrip" `Quick (fun () ->
        List.iter
          (fun v -> Alcotest.(check int) "roundtrip" v (Nat.to_int (Nat.of_int v)))
          [ 0; 1; 2; 12289; max_int; max_int - 1; 1 lsl 31; (1 lsl 31) - 1 ]);
    Alcotest.test_case "decimal strings" `Quick (fun () ->
        let s = "123456789012345678901234567890123456789" in
        Alcotest.(check string) "roundtrip" s (Nat.to_string (Nat.of_string s));
        Alcotest.(check string) "zero" "0" (Nat.to_string Nat.zero));
    Alcotest.test_case "sub underflow raises" `Quick (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "Nat.sub: negative result")
          (fun () -> ignore (Nat.sub (Nat.of_int 3) (Nat.of_int 5))));
    Alcotest.test_case "divmod by zero raises" `Quick (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Nat.divmod Nat.one Nat.zero)));
    Alcotest.test_case "pow" `Quick (fun () ->
        Alcotest.check nat "2^100"
          (Nat.of_string "1267650600228229401496703205376")
          (Nat.pow (Nat.of_int 2) 100);
        Alcotest.check nat "x^0" Nat.one (Nat.pow (Nat.of_int 12345) 0));
    Alcotest.test_case "num_bits / testbit" `Quick (fun () ->
        Alcotest.(check int) "bits of 0" 0 (Nat.num_bits Nat.zero);
        Alcotest.(check int) "bits of 255" 8 (Nat.num_bits (Nat.of_int 255));
        Alcotest.(check int) "bits of 256" 9 (Nat.num_bits (Nat.of_int 256));
        Alcotest.(check bool) "bit 8 of 256" true (Nat.testbit (Nat.of_int 256) 8);
        Alcotest.(check bool) "bit 7 of 256" false (Nat.testbit (Nat.of_int 256) 7));
    Alcotest.test_case "shift identity" `Quick (fun () ->
        let v = Nat.of_string "98765432109876543210" in
        Alcotest.check nat "l/r" v (Nat.shift_right (Nat.shift_left v 137) 137));
    Alcotest.test_case "to_float_exp" `Quick (fun () ->
        let v = Nat.pow (Nat.of_int 2) 200 in
        let m, e = Nat.to_float_exp v in
        Alcotest.(check (float 1e-12)) "mantissa" 0.5 m;
        Alcotest.(check int) "exponent" 201 e);
    Alcotest.test_case "zint ediv_rem signs" `Quick (fun () ->
        List.iter
          (fun (a, b) ->
            let az = Z.of_int a and bz = Z.of_int b in
            let q, r = Z.ediv_rem az bz in
            Alcotest.check zint "recompose" az (Z.add (Z.mul q bz) r);
            Alcotest.(check bool) "0 <= r" true (Z.sign r >= 0);
            Alcotest.(check bool) "r < |b|" true (Z.compare r (Z.abs bz) < 0))
          [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3); (0, 5) ]);
    Alcotest.test_case "zint fdiv/cdiv/rounded" `Quick (fun () ->
        let check name f a b expected =
          Alcotest.check zint name (Z.of_int expected) (f (Z.of_int a) (Z.of_int b))
        in
        check "fdiv 7/2" Z.fdiv 7 2 3;
        check "fdiv -7/2" Z.fdiv (-7) 2 (-4);
        check "cdiv 7/2" Z.cdiv 7 2 4;
        check "cdiv -7/2" Z.cdiv (-7) 2 (-3);
        check "round 7/2" Z.rounded_div 7 2 4;
        check "round 5/2" Z.rounded_div 5 2 3;
        check "round -5/2" Z.rounded_div (-5) 2 (-2);
        check "round -7/3" Z.rounded_div (-7) 3 (-2));
    Alcotest.test_case "karatsuba threshold crossing" `Quick (fun () ->
        (* Operands straddling the 32-limb Karatsuba cutoff. *)
        let a = Nat.pow (Nat.of_int 12345) 150 in
        let b = Nat.pow (Nat.of_int 98765) 120 in
        let prod = Nat.mul a b in
        Alcotest.check nat "commutative" prod (Nat.mul b a);
        Alcotest.check nat "divides back" a (Nat.div prod b));
  ]

let prop_tests =
  let open QCheck in
  List.map QCheck_alcotest.to_alcotest
    [
      Test.make ~name:"nat add commutative" ~count:200
        (pair (arb_nat 300) (arb_nat 300))
        (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a));
      Test.make ~name:"nat mul commutative+assoc" ~count:100
        (triple (arb_nat 200) (arb_nat 200) (arb_nat 200))
        (fun (a, b, c) ->
          Nat.equal (Nat.mul a b) (Nat.mul b a)
          && Nat.equal (Nat.mul a (Nat.mul b c)) (Nat.mul (Nat.mul a b) c));
      Test.make ~name:"nat distributive" ~count:200
        (triple (arb_nat 250) (arb_nat 250) (arb_nat 250))
        (fun (a, b, c) ->
          Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
      Test.make ~name:"nat divmod recomposition" ~count:300
        (pair (arb_nat 400) (arb_nat 150))
        (fun (a, b) ->
          QCheck.assume (not (Nat.is_zero b));
          let q, r = Nat.divmod a b in
          Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
      Test.make ~name:"nat add/sub inverse" ~count:300
        (pair (arb_nat 300) (arb_nat 300))
        (fun (a, b) -> Nat.equal a (Nat.sub (Nat.add a b) b));
      Test.make ~name:"nat string roundtrip" ~count:100 (arb_nat 300) (fun a ->
          Nat.equal a (Nat.of_string (Nat.to_string a)));
      Test.make ~name:"nat shift = mul by power of two" ~count:200
        (pair (arb_nat 200) small_nat)
        (fun (a, k) ->
          let k = k mod 100 in
          Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.pow (Nat.of_int 2) k)));
      Test.make ~name:"zint ring laws" ~count:200
        (triple (arb_zint 200) (arb_zint 200) (arb_zint 200))
        (fun (a, b, c) ->
          Z.equal (Z.mul a (Z.add b c)) (Z.add (Z.mul a b) (Z.mul a c))
          && Z.equal (Z.add a (Z.neg a)) Z.zero);
      Test.make ~name:"zint ediv_rem euclidean" ~count:300
        (pair (arb_zint 300) (arb_zint 120))
        (fun (a, b) ->
          QCheck.assume (not (Z.is_zero b));
          let q, r = Z.ediv_rem a b in
          Z.equal a (Z.add (Z.mul q b) r)
          && Z.sign r >= 0
          && Z.compare r (Z.abs b) < 0);
      Test.make ~name:"zint string roundtrip" ~count:100 (arb_zint 250) (fun a ->
          Z.equal a (Z.of_string (Z.to_string a)));
      Test.make ~name:"zint rounded_div error <= 1/2" ~count:200
        (pair (arb_zint 100) (arb_zint 40))
        (fun (a, b) ->
          QCheck.assume (not (Z.is_zero b));
          let k = Z.rounded_div a b in
          (* |a - k·b| <= |b|/2, i.e. 2|a - kb| <= |b| *)
          let err = Z.abs (Z.sub a (Z.mul k b)) in
          Z.compare (Z.shift_left err 1) (Z.abs b) <= 0);
    ]

let () =
  Alcotest.run "bigint"
    [ ("unit", unit_tests); ("properties", prop_tests) ]
