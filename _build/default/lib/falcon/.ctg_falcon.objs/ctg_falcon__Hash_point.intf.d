lib/falcon/hash_point.mli:
