lib/kyao/column_sampler.mli: Ctg_prng Matrix
