test/test_samplers.ml: Alcotest Array Bytes Char Ctg_kyao Ctg_prng Ctg_samplers Ctg_stats Ctgauss Hashtbl List Printf
