(** Span tracing with per-domain lock-free ring buffers and Chrome
    [trace_event] JSON export.

    A process holds one global recorder, off by default: when disabled,
    {!with_span} costs one atomic load and a closure call, which is why the
    hot paths can stay instrumented unconditionally.  When enabled, each
    domain records into its own fixed-capacity ring (registered once, on
    the domain's first event, under a mutex; every subsequent record is a
    plain single-writer store plus one atomic publish).  Rings overwrite
    their oldest events when full and count the drops — tracing never
    blocks or allocates unboundedly in a worker.

    Exported files load in [chrome://tracing] / Perfetto: spans become
    complete ("ph":"X") events with microsecond [ts]/[dur], the recording
    domain as [tid]; instants become "ph":"i". *)

type event = {
  name : string;
  cat : string;
  ts_ns : int;
  dur_ns : int;  (** [-1] for an instant event. *)
  tid : int;  (** Recording domain id. *)
  args : (string * string) list;
}

val enable : ?capacity:int -> unit -> unit
(** Start recording.  [capacity] (default 16384) sizes rings created from
    now on; existing rings keep their size. *)

val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events and drop counts; rings stay registered. *)

val with_span : ?cat:string -> ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** Time [f] and record one complete event (also on exception).  [args] is
    evaluated only when tracing is enabled, after [f] returns — so it can
    report results. *)

val instant : ?cat:string -> ?args:(unit -> (string * string) list) -> string -> unit

val events : unit -> event list
(** Everything currently buffered, sorted by [(ts_ns, tid, name)]. *)

val dropped : unit -> int
(** Events lost to ring overwrite since the last {!reset}. *)

val export : unit -> Jsonx.t
(** The Chrome trace object:
    [{"traceEvents": [...], "displayTimeUnit": "ms", "ctg_dropped_events": n}]. *)

val write : string -> unit
(** [write path] saves {!export} (compact JSON) to [path]. *)
