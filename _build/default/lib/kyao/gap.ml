module Z = Ctg_bigint.Zint

let gap (m : Matrix.t) bits i =
  assert (i < Array.length bits && i < m.Matrix.precision);
  let acc = ref Z.zero in
  for j = 0 to i do
    let b = if bits.(j) then 1 else 0 in
    let term = Z.of_int (b - m.Matrix.col_weight.(j)) in
    acc := Z.add !acc (Z.shift_left term (i - j))
  done;
  !acc

let first_negative m bits =
  let n = min (Array.length bits) m.Matrix.precision in
  let rec go i =
    if i >= n then None
    else if Z.sign (gap m bits i) < 0 then Some i
    else go (i + 1)
  in
  go 0
