(* Bucket layout: values 0..3 are exact (indices 0..3); a value v >= 4 with
   msb position m >= 2 falls in index 4*(m-1) + s where s is the two bits
   after the leading one.  Bucket [4*(m-1)+s] covers
   [(4+s)*2^(m-2), (5+s)*2^(m-2) - 1], so hi <= 1.25*lo. *)

let num_buckets = 4 + (4 * 61) (* msb position 2..62 on 63-bit ints *)

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  counts : int array;
}

type summary = {
  count : int;
  sum : int;
  mean : float;
  min : int;
  max : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

let create () =
  { count = 0; sum = 0; min_v = max_int; max_v = 0; counts = Array.make num_buckets 0 }

let bucket_index v =
  if v < 4 then v
  else begin
    let m = ref 0 and x = ref v in
    while !x > 1 do
      incr m;
      x := !x lsr 1
    done;
    (4 * (!m - 1)) + ((v lsr (!m - 2)) land 3)
  end

let bucket_bounds idx =
  if idx < 4 then (idx, idx)
  else begin
    let m = (idx / 4) + 1 and s = idx land 3 in
    ((4 + s) lsl (m - 2), ((5 + s) lsl (m - 2)) - 1)
  end

let add (t : t) v =
  let v = max 0 v in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let i = bucket_index v in
  t.counts.(i) <- t.counts.(i) + 1

let count (t : t) = t.count
let sum (t : t) = t.sum

let merge (a : t) (b : t) : t =
  {
    count = a.count + b.count;
    sum = a.sum + b.sum;
    min_v = min a.min_v b.min_v;
    max_v = max a.max_v b.max_v;
    counts = Array.init num_buckets (fun i -> a.counts.(i) + b.counts.(i));
  }

let copy t = { t with counts = Array.copy t.counts }

let quantile (t : t) q =
  if t.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let rank = min rank t.count in
    let cum = ref 0 and i = ref 0 in
    while !cum < rank do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    let _, hi = bucket_bounds (!i - 1) in
    min t.max_v (max t.min_v hi)
  end

let summary (t : t) : summary =
  {
    count = t.count;
    sum = t.sum;
    mean = (if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count);
    min = (if t.count = 0 then 0 else t.min_v);
    max = t.max_v;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
  }

let buckets t =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc

let equal (a : t) (b : t) =
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && a.counts = b.counts

let pp_summary fmt s =
  Format.fprintf fmt "count=%d sum=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d"
    s.count s.sum s.mean s.min s.p50 s.p90 s.p99 s.max
