lib/falcon/params.mli:
