lib/kyao/matrix.mli: Ctg_fixed
