lib/ctcheck/dudect.ml: Array Ctg_prng Ctg_stats Format List Stdlib Unix
