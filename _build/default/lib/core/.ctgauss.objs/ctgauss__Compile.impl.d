lib/core/compile.ml: Array Ctg_boolmin Ctg_kyao Gate List Sublist
