lib/kyao/ddg_tree.ml: Array Ctg_prng Format Matrix
