(* Cross-language validation of the emitted C (the paper's tool output):
   compile the generated sampler with the system C compiler, drive it on
   random bitsliced inputs, and require bit-identical outputs with the
   OCaml evaluator.  Skipped cleanly when no C compiler is present. *)

let cc_available () = Sys.command "command -v cc >/dev/null 2>&1" = 0

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> output_string oc contents)

(* A C main() that reads input words on stdin (one hex per line), runs the
   generated sampler once per batch of num_vars words, and prints the
   output words. *)
let harness ~num_vars ~num_outputs =
  Printf.sprintf
    {|
#include <stdio.h>
#include <stdint.h>
#include <inttypes.h>

void ct_gauss_sample(const uint64_t *b, uint64_t *out);

int main(void)
{
  uint64_t b[%d], out[%d];
  for (;;) {
    for (int i = 0; i < %d; i++)
      if (scanf("%%" SCNx64, &b[i]) != 1) return 0;
    ct_gauss_sample(b, out);
    for (int i = 0; i < %d; i++)
      printf("%%" PRIx64 "\n", out[i]);
    fflush(stdout);
  }
}
|}
    num_vars num_outputs num_vars num_outputs

let mask63 = Int64.of_string "0x7FFFFFFFFFFFFFFF"

let run_c_sampler exe inputs_batches ~num_outputs =
  let cmd_in, cmd_out = Unix.open_process exe in
  List.iter
    (fun inputs ->
      Array.iter
        (fun w -> Printf.fprintf cmd_out "%Lx\n" (Int64.of_int w))
        inputs)
    inputs_batches;
  close_out cmd_out;
  let outputs = ref [] in
  (try
     while true do
       let line = input_line cmd_in in
       outputs := Int64.of_string ("0x" ^ line) :: !outputs
     done
   with End_of_file -> ());
  ignore (Unix.close_process (cmd_in, cmd_out));
  let arr = Array.of_list (List.rev !outputs) in
  List.mapi
    (fun i _ -> Array.sub arr (i * num_outputs) num_outputs)
    inputs_batches

let test_roundtrip () =
  if not (cc_available ()) then
    Alcotest.skip ()
  else begin
    let enum =
      Ctg_kyao.Leaf_enum.enumerate
        (Ctg_kyao.Matrix.create ~sigma:"2" ~precision:24 ~tail_cut:13)
    in
    let program = Ctgauss.Compile.compile (Ctgauss.Sublist.build enum) in
    let num_vars = program.Ctgauss.Gate.num_vars in
    let num_outputs =
      Array.length program.Ctgauss.Gate.outputs
      + (match program.Ctgauss.Gate.valid with Some _ -> 1 | None -> 0)
    in
    let dir = Filename.temp_file "ctgauss" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let c_file = Filename.concat dir "sampler.c" in
    let main_file = Filename.concat dir "main.c" in
    let exe = Filename.concat dir "sampler" in
    write_file c_file (Ctgauss.Codegen.to_c ~name:"ct_gauss_sample" program);
    write_file main_file (harness ~num_vars ~num_outputs);
    let cmd = Printf.sprintf "cc -O1 -o %s %s %s 2>/dev/null" exe c_file main_file in
    Alcotest.(check int) "cc exit code" 0 (Sys.command cmd);
    (* Random batches through both implementations. *)
    let rng = Ctg_prng.Splitmix64.create 77L in
    let batches =
      List.init 20 (fun _ ->
          Array.init num_vars (fun _ ->
              Int64.to_int (Ctg_prng.Splitmix64.next rng) land max_int))
    in
    let c_results = run_c_sampler exe batches ~num_outputs in
    let scratch = Ctgauss.Bitslice.scratch program in
    List.iter2
      (fun inputs c_out ->
        Ctgauss.Bitslice.eval program scratch ~inputs;
        Array.iteri
          (fun i reg ->
            let ours = Int64.logand (Int64.of_int (Ctgauss.Bitslice.output program scratch i)) mask63 in
            ignore reg;
            let theirs = Int64.logand c_out.(i) mask63 in
            Alcotest.(check int64) (Printf.sprintf "output %d" i) ours theirs)
          program.Ctgauss.Gate.outputs;
        (match program.Ctgauss.Gate.valid with
        | Some _ ->
          let ours =
            Int64.logand
              (Int64.of_int (Ctgauss.Bitslice.valid_word program scratch))
              mask63
          in
          let theirs =
            Int64.logand c_out.(Array.length program.Ctgauss.Gate.outputs) mask63
          in
          Alcotest.(check int64) "valid word" ours theirs
        | None -> ()))
      batches c_results
  end

let () =
  Alcotest.run "codegen-c"
    [
      ( "cross-validation",
        [ Alcotest.test_case "generated C = OCaml evaluator" `Slow test_roundtrip ] );
    ]
