(** The statistical-assurance bundle for one sampler: a {!Drift} monitor,
    an optional background {!Leak} assessor, and the CT monitors of every
    attached engine pool, rolled into one health verdict and the JSON
    bodies the {!Ctg_obs.Http} endpoint serves. *)

type t

val create :
  ?config:Drift.config ->
  ?registry:Ctg_obs.Registry.t ->
  ?labels:Ctg_obs.Registry.labels ->
  ?leak:Leak.t ->
  matrix:Ctg_kyao.Matrix.t ->
  unit ->
  t

val drift : t -> Drift.t
val leak : t -> Leak.t option

val attach_pool : t -> Ctg_engine.Pool.t -> unit
(** Register a chunk observer on [pool] feeding the drift monitor, and
    include the pool's CT monitor and degradation flag in the verdict.
    Attach while the pool is idle (see
    {!Ctg_engine.Pool.add_chunk_observer}). *)

val add_check : t -> name:string -> (unit -> string option) -> unit
(** Register a custom named probe in the verdict: [probe ()] returns
    [Some reason] while failing, [None] while healthy.  Probes run on
    every verdict/healthz evaluation (keep them cheap and thread-safe; a
    raising probe counts as failing).  The daemon uses this to surface
    its GC pause-budget alarm on [/healthz]. *)

type verdict = Healthy | Failing of string list

val verdict : t -> verdict
(** Healthy iff: no drift window alarm, the leak assessor (when present)
    is under its |t| threshold, every attached pool has zero CT-monitor
    violations and is not degraded, and every {!add_check} probe returns
    [None]. *)

val healthy : t -> bool

val failing_monitors : t -> string list
(** Short names of the monitors currently failing, in a fixed order:
    ["drift"], ["leak"], ["ct"], ["degraded"], then failing
    {!add_check} names in registration order.  Empty iff [healthy]. *)

(** [healthz_json] is the [/healthz] body.  On failure it carries, beyond
    the human-readable [failures] strings, the structured
    [failing_monitors] names and the drift monitor's [first_alarm_window]
    so operators can triage a 503 without scraping [/drift.json]. *)
val healthz_json : t -> Ctg_obs.Jsonx.t
val drift_json : t -> Ctg_obs.Jsonx.t

val routes : t -> registry:Ctg_obs.Registry.t -> Ctg_obs.Http.route list
(** The three endpoint routes: [/metrics] (Prometheus text from
    [registry]), [/healthz] (verdict JSON, HTTP 503 when failing) and
    [/drift.json] (retained window results).  Handlers are thread-safe and
    run on the {!Ctg_obs.Http} acceptor domain. *)
