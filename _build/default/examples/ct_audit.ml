(* dudect-style constant-time audit of every sampler in the repo (the
   paper's Sec. 5.2 validation): fix-vs-random input classes compared
   with Welch's t-test on deterministic operation counts.

     dune exec examples/ct_audit.exe
*)

module Dudect = Ctg_ctcheck.Dudect
module Sig = Ctg_samplers.Sampler_sig

let audit_instance (inst : Sig.instance) =
  (* Fix class: a PRNG pinned to all-zero bytes (worst-case fast path for
     early-exit samplers); Random class: real ChaCha output. *)
  let zero = Ctg_prng.Bitstream.of_bits (Array.make 50_000_000 false) in
  let rnd = Ctg_prng.Bitstream.of_chacha (Ctg_prng.Chacha20.of_seed inst.Sig.name) in
  let measure clazz =
    let bs = match clazz with Dudect.Fix -> zero | Dudect.Random -> rnd in
    snd (inst.Sig.sample_traced bs)
  in
  let config = { Dudect.default_config with measurements = 20_000 } in
  let report = Dudect.test_ops ~config measure in
  Format.printf "  %-16s claimed-ct=%-5b  %a@." inst.Sig.name
    inst.Sig.constant_time Dudect.pp_report report;
  (inst.Sig.constant_time, report.Dudect.leaky)

let () =
  Format.printf "== dudect audit (operation-count traces) ==@.@.";
  Format.printf "sigma=2, n=128, tau=13 — the Falcon base-sampler setting@.@.";
  let m = Ctg_kyao.Matrix.create ~sigma:"2" ~precision:128 ~tail_cut:13 in
  let table = Ctg_samplers.Cdt_table.of_matrix m in
  let enum = Ctg_kyao.Leaf_enum.enumerate m in
  let bitsliced = Ctgauss.Sampler.of_enum enum in
  let instances =
    [
      Ctg_samplers.Cdt_samplers.byte_scan table;
      Ctg_samplers.Cdt_samplers.binary_search table;
      Ctg_samplers.Cdt_samplers.linear_ct table;
      Sig.knuth_yao_reference m;
    ]
  in
  let results = List.map audit_instance instances in

  (* The bitsliced sampler is audited at the gate level: every evaluation
     executes the identical instruction sequence, so its trace is the gate
     count by construction — dudect confirms the tautology. *)
  let p = Ctgauss.Sampler.program bitsliced in
  let gates = Ctgauss.Gate.gate_count p in
  let rng = Ctg_prng.Splitmix64.create 42L in
  let f clazz =
    let bits =
      match clazz with
      | Dudect.Fix -> Array.make 128 false
      | Dudect.Random -> Array.init 128 (fun _ -> Ctg_prng.Splitmix64.next_int rng 2 = 1)
    in
    ignore (Ctgauss.Sampler.eval_bits bitsliced bits);
    gates
  in
  let config = { Dudect.default_config with measurements = 5_000 } in
  let r = Dudect.test_ops ~config f in
  Format.printf "  %-16s claimed-ct=true   %a@." "bitsliced(2)" Dudect.pp_report r;

  Format.printf "@.summary:@.";
  List.iter2
    (fun (inst : Sig.instance) (claimed, leaky) ->
      let verdict =
        match (claimed, leaky) with
        | true, false -> "constant time, as claimed"
        | false, true -> "leaks, as expected for a non-CT sampler"
        | true, true -> "UNEXPECTED LEAK"
        | false, false ->
          "no leak detected (non-CT sampler; classes may be too similar)"
      in
      Format.printf "  %-16s %s@." inst.Sig.name verdict)
    instances results
