(* Limbs are 31-bit, little-endian, normalized (no trailing zero limb).
   31-bit limbs keep every intermediate product below OCaml's native
   max_int = 2^62 - 1: limb*limb + limb + limb <= 2^62 - 1 exactly. *)

type t = int array

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1
let zero : t = [||]
let one : t = [| 1 |]

let normalize (a : int array) : t =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let m = top n in
  if m = n then a else Array.sub a 0 m

let of_int v =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  if v = 0 then zero
  else begin
    let l0 = v land mask in
    let v1 = v lsr limb_bits in
    if v1 = 0 then [| l0 |] else [| l0; v1 |]
  end

let to_int (a : t) =
  match Array.length a with
  | 0 -> 0
  | 1 -> a.(0)
  | 2 -> a.(0) lor (a.(1) lsl limb_bits)
  | _ -> failwith "Nat.to_int: overflow"

let is_zero a = Array.length a = 0
let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0 else ((n - 1) * limb_bits) + Ctg_util.Bits.bits_needed a.(n - 1)

let testbit (a : t) i =
  let limb = i / limb_bits in
  limb < Array.length a && (a.(limb) lsr (i mod limb_bits)) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let t = av + bv + !carry in
    out.(i) <- t land mask;
    carry := t lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: negative result";
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let t = a.(i) - bv - !borrow in
    if t < 0 then begin
      out.(i) <- t + base;
      borrow := 1
    end
    else begin
      out.(i) <- t;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: negative result";
  normalize out

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = out.(i + j) + (ai * b.(j)) + !carry in
          out.(i + j) <- t land mask;
          carry := t lsr limb_bits
        done;
        out.(i + lb) <- out.(i + lb) + !carry
      end
    done;
    normalize out
  end

let karatsuba_threshold = 32

let shift_limbs (a : t) k : t =
  if is_zero a then zero
  else Array.append (Array.make k 0) a

let low_limbs (a : t) k : t =
  if Array.length a <= k then a else normalize (Array.sub a 0 k)

let high_limbs (a : t) k : t =
  if Array.length a <= k then zero
  else Array.sub a k (Array.length a - k)

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if min la lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    (* Karatsuba: a = a1*B^k + a0, b = b1*B^k + b0. *)
    let k = (max la lb + 1) / 2 in
    let a0 = low_limbs a k and a1 = high_limbs a k in
    let b0 = low_limbs b k and b1 = high_limbs b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let mul_int (a : t) v =
  if v < 0 || v >= base then invalid_arg "Nat.mul_int: out of limb range";
  if v = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let out = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * v) + !carry in
      out.(i) <- t land mask;
      carry := t lsr limb_bits
    done;
    out.(la) <- !carry;
    normalize out
  end

let shift_left (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_left: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      out.(i + limbs) <- out.(i + limbs) lor (v land mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_right: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

(* Division by a single limb; returns (quotient, remainder). *)
let divmod_limb (a : t) v =
  let la = Array.length a in
  let out = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    out.(i) <- cur / v;
    r := cur mod v
  done;
  (normalize out, !r)

(* Knuth TAOCP vol. 2, algorithm D. *)
let divmod (a : t) (b : t) =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else begin
    (* Normalize so the top limb of the divisor has its high bit set. *)
    let shift = limb_bits - Ctg_util.Bits.bits_needed b.(Array.length b - 1) in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u - n in
    let u = Array.append u (Array.make (m + n + 1 - Array.length u) 0) in
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vnext = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      let two = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (two / vtop) in
      let rhat = ref (two mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := two - (!qhat * vtop)
      end;
      (* Refine qhat: at most two decrements. *)
      while
        !rhat < base
        && !qhat * vnext > (!rhat lsl limb_bits) lor u.(j + n - 2)
      do
        decr qhat;
        rhat := !rhat + vtop
      done;
      (* Multiply-subtract u[j..j+n] -= qhat * v. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let t = u.(i + j) - (p land mask) - !borrow in
        if t < 0 then begin
          u.(i + j) <- t + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- t;
          borrow := 0
        end
      done;
      let t = u.(j + n) - !carry - !borrow in
      if t < 0 then begin
        (* qhat was one too large: add back. *)
        u.(j + n) <- t + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s land mask;
          c := s lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land mask
      end
      else u.(j + n) <- t;
      q.(j) <- !qhat
    done;
    let r = shift_right (normalize (Array.sub u 0 n)) shift in
    (normalize q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
    end
  in
  go one a k

let to_string a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_limb !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
        acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg (Printf.sprintf "Nat.of_string: %c" c))
    s;
  !acc

let to_float_exp a =
  let bits = num_bits a in
  if bits = 0 then (0.0, 0)
  else begin
    (* Take the top 53 bits as the mantissa. *)
    let take = min bits 53 in
    let top = shift_right a (bits - take) in
    let m = float_of_int (to_int top) /. Float.of_int (1 lsl take) in
    (m, bits)
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)
