(** Product terms (cubes) over up to 30 Boolean variables.

    A cube is a pair of bit masks: [mask] marks the specified variables and
    [value] their required polarity.  [mask = 0] is the universal cube. *)

type t = private { mask : int; value : int }

val make : mask:int -> value:int -> t
(** Normalizes: bits of [value] outside [mask] are cleared. *)

val universal : t
val of_minterm : vars:int -> int -> t
(** Fully-specified cube for minterm [m] over [vars] variables. *)

val num_literals : t -> int
val covers : t -> int -> bool
(** [covers c m]: minterm [m] satisfies every literal of [c]. *)

val subsumes : t -> t -> bool
(** [subsumes a b]: every minterm of [b] is covered by [a]. *)

val merge : t -> t -> t option
(** Adjacency merge (the Quine-McCluskey step): defined when both cubes
    specify the same variables and differ in exactly one polarity. *)

val minterms : vars:int -> t -> int list
(** All covered minterms — exponential in free variables; tests only. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : vars:int -> t -> string
(** E.g. ["1x0"]: variable 0 leftmost, ['x'] for unspecified. *)
