lib/kyao/leaf_enum.mli: Format Matrix
