lib/samplers/sampler_sig.mli: Ctg_kyao Ctg_prng Ctgauss
