lib/core/compile.mli: Gate Sublist
