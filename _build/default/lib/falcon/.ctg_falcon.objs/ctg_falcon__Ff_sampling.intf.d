lib/falcon/ff_sampling.mli: Base_sampler Ctg_prng Fftc Ldl
