(** Greedy set-cover fallback: repeatedly take the prime covering the most
    still-uncovered minterms (ties: fewer literals).  Used when Petrick's
    expansion would explode; at most a logarithmic factor from optimal. *)

val cover : ones:int list -> primes:Cube.t list -> Cube.t list
