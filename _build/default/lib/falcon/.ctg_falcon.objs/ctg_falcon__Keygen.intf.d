lib/falcon/keygen.mli: Ctg_prng Fftc Ldl Params
