(* The concurrency shim the whole engine/net/serve/obs stack goes through.

   Production mode (the default, [Internal.active] = false): every wrapper
   compiles to the raw stdlib primitive behind one predictable branch on a
   never-written ref — the paired-pass bench gates (`bench sync`) verify
   the overhead is not measurable on the hot paths.

   Checked mode (set only by the ctg_race model checker, single-domain):
   every operation first performs an effect carrying the identity of the
   touched primitive, so a recorded scheduler can (a) pick which fiber
   runs at every shared-memory event and (b) model blocking primitives
   (Mutex/Condition/Domain.join) without ever really blocking — the whole
   harness runs cooperatively on one domain, which is what makes
   exhaustive interleaving exploration possible.

   The mode flag is a plain ref on purpose: it is only ever written by
   the checker while no other domain exists in the process (checked
   harnesses are fibers, not domains), so production reads race with
   nothing. *)

module Internal = struct
  let active = ref false

  let set_active b = active := b
  let is_active () = !active

  type kind = Read | Write | Rmw | Relax

  type _ Effect.t +=
    | Op : kind * Obj.t -> unit Effect.t
    | Lock_op : Obj.t -> unit Effect.t
    | Try_lock_op : Obj.t -> bool Effect.t
    | Unlock_op : Obj.t -> unit Effect.t
    | Wait_op : Obj.t * Obj.t -> unit Effect.t  (* cond, mutex *)
    | Signal_op : Obj.t -> unit Effect.t
    | Broadcast_op : Obj.t -> unit Effect.t
    | Spawn_op : (unit -> unit) -> int Effect.t
    | Join_op : int -> unit Effect.t

  (* Identity token for operations with no meaningful object (cpu_relax). *)
  let relax_token = Obj.repr (ref 0)
end

module I = Internal

module Atomic = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make

  (* The effect performs live in [@inline never] slow paths so the fast
     wrappers stay below the cross-module inlining threshold: production
     callers then compile each op to the raw atomic instruction behind
     one predicted-not-taken branch (gated by `bench sync`). *)
  let[@inline never] announce k a = Effect.perform (I.Op (k, Obj.repr a))

  let[@inline] get a =
    if !I.active then announce I.Read a;
    Stdlib.Atomic.get a

  let[@inline] set a v =
    if !I.active then announce I.Write a;
    Stdlib.Atomic.set a v

  let[@inline] exchange a v =
    if !I.active then announce I.Rmw a;
    Stdlib.Atomic.exchange a v

  let[@inline] compare_and_set a old new_ =
    if !I.active then announce I.Rmw a;
    Stdlib.Atomic.compare_and_set a old new_

  let[@inline] fetch_and_add a n =
    if !I.active then announce I.Rmw a;
    Stdlib.Atomic.fetch_and_add a n

  let[@inline] incr a = ignore (fetch_and_add a 1)
  let[@inline] decr a = ignore (fetch_and_add a (-1))
end

module Mutex = struct
  type t = Stdlib.Mutex.t

  let create = Stdlib.Mutex.create

  let lock m =
    if !I.active then Effect.perform (I.Lock_op (Obj.repr m))
    else Stdlib.Mutex.lock m

  let try_lock m =
    if !I.active then Effect.perform (I.Try_lock_op (Obj.repr m))
    else Stdlib.Mutex.try_lock m

  let unlock m =
    if !I.active then Effect.perform (I.Unlock_op (Obj.repr m))
    else Stdlib.Mutex.unlock m

  let protect m f =
    lock m;
    Fun.protect ~finally:(fun () -> unlock m) f
end

module Condition = struct
  type t = Stdlib.Condition.t

  let create = Stdlib.Condition.create

  let wait c m =
    if !I.active then Effect.perform (I.Wait_op (Obj.repr c, Obj.repr m))
    else Stdlib.Condition.wait c m

  let signal c =
    if !I.active then Effect.perform (I.Signal_op (Obj.repr c))
    else Stdlib.Condition.signal c

  let broadcast c =
    if !I.active then Effect.perform (I.Broadcast_op (Obj.repr c))
    else Stdlib.Condition.broadcast c
end

module Domain = struct
  (* The [Model] arm exists only under the checker; production spawns pay
     one constructor allocation per domain spawn, which is noise next to
     the spawn itself. *)
  type 'a t =
    | Real of 'a Stdlib.Domain.t
    | Model of int * 'a option ref

  let spawn (type a) (f : unit -> a) : a t =
    if not !I.active then Real (Stdlib.Domain.spawn f)
    else begin
      let cell = ref None in
      let id = Effect.perform (I.Spawn_op (fun () -> cell := Some (f ()))) in
      Model (id, cell)
    end

  let join (type a) (d : a t) : a =
    match d with
    | Real d -> Stdlib.Domain.join d
    | Model (id, cell) -> (
      Effect.perform (I.Join_op id);
      (* A model join only resumes after the fiber finished; if it raised,
         the scheduler re-raises into us instead of resuming. *)
      match !cell with Some v -> v | None -> assert false)

  let self = Stdlib.Domain.self
  let self_index () = (Stdlib.Domain.self () :> int)
  let is_main_domain = Stdlib.Domain.is_main_domain
  let recommended_domain_count = Stdlib.Domain.recommended_domain_count

  let cpu_relax () =
    if !I.active then Effect.perform (I.Op (I.Relax, I.relax_token))
    else Stdlib.Domain.cpu_relax ()

  module DLS = Stdlib.Domain.DLS
end
