(** Hexadecimal encoding/decoding for test vectors and CLI output. *)

val encode : bytes -> string
(** Lowercase hex, two characters per byte. *)

val decode : string -> bytes
(** Inverse of {!encode}; ignores ASCII whitespace.
    @raise Invalid_argument on non-hex characters or odd digit count. *)
