(** Integer histograms, used to regenerate the paper's Fig. 5. *)

type t = private { min_value : int; counts : int array; total : int }

val of_samples : int array -> t
val count : t -> int -> int
val frequency : t -> int -> float
val range : t -> int * int
val mean : t -> float
val std_dev : t -> float

val pp_bars : ?width:int -> Format.formatter -> t -> unit
(** Horizontal ASCII bar chart, one row per value. *)
