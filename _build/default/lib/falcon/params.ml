type level = Level1 | Level2 | Level3

type t = {
  level : level;
  n : int;
  q : int;
  sigma_fg : float;
  salt_bytes : int;
  max_sign_attempts : int;
}

let q = 12289

let make level n =
  {
    level;
    n;
    q;
    sigma_fg = 1.17 *. sqrt (float_of_int q /. float_of_int (2 * n));
    salt_bytes = 40;
    max_sign_attempts = 64;
  }

let level1 = make Level1 256
let level2 = make Level2 512
let level3 = make Level3 1024
let of_level = function Level1 -> level1 | Level2 -> level2 | Level3 -> level3
let all = [ level1; level2; level3 ]

let name t =
  match t.level with
  | Level1 -> "falcon-256 (level 1)"
  | Level2 -> "falcon-512 (level 2)"
  | Level3 -> "falcon-1024 (level 3)"

let custom ~n =
  if n < 4 || n land (n - 1) <> 0 then invalid_arg "Params.custom: n";
  make Level1 n
