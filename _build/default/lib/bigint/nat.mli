(** Arbitrary-precision unsigned integers.

    Values are immutable arrays of 31-bit limbs, little-endian, normalized
    (no trailing zero limb).  The empty array is zero.  All operations are
    purely functional.  This module exists because the sealed build
    environment has no [zarith]; see DESIGN.md. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val testbit : t -> int -> bool
val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
(** Schoolbook below 32 limbs, Karatsuba above. *)

val mul_int : t -> int -> t
(** Multiply by a small non-negative integer (< 2^31). *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b] (Knuth alg. D).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val pow : t -> int -> t

val to_string : t -> string
(** Decimal representation. *)

val of_string : string -> t
(** Parse decimal digits. @raise Invalid_argument on other input. *)

val to_float_exp : t -> float * int
(** [to_float_exp v = (m, e)] with [v = m * 2^e] approximately and
    [0.5 <= m < 1] (or [m = 0]).  Used for floating-point estimates of huge
    values in Falcon key generation. *)

val pp : Format.formatter -> t -> unit
