(** Online entropy health tests (NIST SP 800-90B Sec. 4.4 style).

    The exact-sampling guarantees of every sampler in this repo hold only
    when the entropy source actually delivers fair bits; a silently biased
    or stuck PRNG lane turns distributional defects into key-recovery
    material.  A [Health.t] attached to a {!Bitstream} (see
    {!Bitstream.attach_health}) watches the raw byte flow {e as it is
    generated} — the scan runs on each fresh backend block before any bit
    of it is served — and raises {!Entropy_failure} on the first window
    that fails, so a tripped lane errors out instead of emitting samples.

    Tests, all over 32-bit units with per-window false-alarm probability
    ~2^-40 on a fair source:

    - {e repetition-count} (4.4.1): [rct_cutoff] identical consecutive
      units — catches stuck-at-constant sources within 12 bytes;
    - {e adaptive-proportion} (4.4.2): the first unit of each 512-unit
      window recurring [apt_cutoff] times — catches periodic repetition
      (replayed blocks, short-cycle generators) up to 2 KiB periods;
    - {e stuck-bit}: AND/OR accumulators over windows of 256 sampled
      units — catches any bit position frozen at 0 or 1;
    - {e ones-proportion}: windowed monobit count over 32768 sampled
      bits — catches global bias beyond ~53/47 per window.

    The two consecutive-unit tests (RCT, APT) see every unit; the two
    stationary-defect tests (stuck-bit, ones-proportion) see a 1-in-4
    systematic sample of the units, which preserves their per-window
    statistical power — a frozen line or a DC bias is in every unit —
    while keeping the always-on scan inside the engine's <3%
    defense-overhead budget (`bench fault`).

    Detection is statistical: a fault must persist for at most one window
    (16 KiB of stream for the sampled tests) before tripping, which is
    inside a single engine chunk at Falcon precisions, so a faulty chunk
    fails rather than being delivered. *)

type test = Repetition | Adaptive_proportion | Stuck_bit | Ones_proportion

val test_name : test -> string

type failure = { test : test; label : string; detail : string }

exception Entropy_failure of failure

type t

val create : ?label:string -> unit -> t
(** Fresh test state; [label] names the lane in failure reports. *)

val check_unit : t -> int -> unit
(** Feed one 32-bit unit.  @raise Entropy_failure on a tripped test. *)

val check_byte : t -> int -> unit
(** Feed one byte; bytes are packed LSB-first into 32-bit units. *)

val scan_block : t -> bytes -> unit
(** Feed a whole backend block (multiples of 4 bytes). *)

val units_checked : t -> int

val rct_cutoff : int
val apt_window : int
val apt_cutoff : int

val stuck_window : int
(** In sampled units: one window spans [4 * stuck_window] scanned units. *)

val ones_window_units : int
(** In sampled units: one window spans [4 * ones_window_units] scanned
    units. *)

val ones_slack : int
